package temporalkcore_test

import (
	"sort"
	"testing"

	tkc "temporalkcore"
)

func TestKHCoreAPI(t *testing.T) {
	// Triangle with doubled edges plus a one-off attachment.
	edges := []tkc.Edge{
		{U: 1, V: 2, Time: 1}, {U: 1, V: 2, Time: 2},
		{U: 2, V: 3, Time: 1}, {U: 2, V: 3, Time: 2},
		{U: 1, V: 3, Time: 1}, {U: 1, V: 3, Time: 2},
		{U: 3, V: 4, Time: 1},
	}
	g, err := tkc.NewGraph(edges)
	if err != nil {
		t.Fatal(err)
	}
	members, err := g.KHCore(2, 2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
	if len(members) != 3 || members[0] != 1 || members[2] != 3 {
		t.Errorf("(2,2)-core = %v, want [1 2 3]", members)
	}
	// h=1 degenerates to the plain 2-core, which picks up vertex 4? No:
	// vertex 4 has one neighbour only, so it still peels.
	members1, err := g.KHCore(2, 1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(members1) != 3 {
		t.Errorf("(2,1)-core = %v, want the triangle", members1)
	}
	coreEdges, err := g.KHCoreEdges(2, 2, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(coreEdges) != 6 {
		t.Errorf("(2,2)-core edges = %d, want 6", len(coreEdges))
	}
	// Validation.
	if _, err := g.KHCore(0, 1, 1, 2); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := g.KHCore(1, 0, 1, 2); err == nil {
		t.Error("h=0 accepted")
	}
	if _, err := g.KHCore(1, 1, 50, 60); err != tkc.ErrNoTimestamps {
		t.Errorf("empty range: %v", err)
	}
	if _, err := g.KHCoreEdges(0, 1, 1, 2); err == nil {
		t.Error("edges k=0 accepted")
	}
	if _, err := g.KHCoreEdges(1, 1, 50, 60); err != tkc.ErrNoTimestamps {
		t.Errorf("edges empty range: %v", err)
	}
}
