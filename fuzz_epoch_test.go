package temporalkcore_test

import (
	"context"
	"fmt"
	"testing"

	tkc "temporalkcore"
)

// epochProbe renders every cheap observable dimension of a graph state —
// shape counters, time span, and the k=2 full-range core count stats —
// into one comparable string. Any torn segment read (a snapshot directory
// pointing into writer-mutated memory) perturbs at least one of them.
func epochProbe(g *tkc.Graph) (string, error) {
	lo, hi := g.TimeSpan()
	qs, err := g.Query(2).Window(lo, hi).Count(context.Background())
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("v=%d e=%d t=%d span=[%d,%d] cores=%d r=%d",
		g.NumVertices(), g.NumEdges(), g.TimestampCount(), lo, hi, qs.Cores, qs.Edges), nil
}

// FuzzEpochPublish drives a fuzzed deterministic schedule of
// append/publish/freeze/query operations against one graph and asserts
// the two epoch invariants: no torn reads (every snapshot, probed at any
// later point of the schedule, answers byte-identically to its probe at
// freeze time AND to a quiesced graph rebuilt from its exact edge prefix)
// and monotone epoch visibility (Latest never goes backwards).
func FuzzEpochPublish(f *testing.F) {
	f.Add([]byte{0, 1, 3, 0, 0, 2, 4, 0, 1, 3, 4, 2, 0, 0, 1, 3})
	f.Add([]byte{2, 0, 4, 0, 4, 1, 0, 3, 0, 2, 0, 4, 1, 3})
	f.Add([]byte{1, 1, 0, 3, 3, 0, 0, 0, 2, 2, 4, 4, 0, 1, 0, 3, 4})
	f.Fuzz(func(t *testing.T, schedule []byte) {
		if len(schedule) > 64 {
			schedule = schedule[:64]
		}
		// A deterministic time-ordered edge stream with unique (u,v,t)
		// triples: timestamps strictly increase, so appends never collapse
		// duplicates and a prefix length pins a graph state exactly.
		stream := make([]tkc.Edge, 600)
		for i := range stream {
			u := int64(i*7%23) + 1
			v := int64(i*11%19) + 24
			stream[i] = tkc.Edge{U: u, V: v, Time: int64(100 + i)}
		}
		next := 40 // edges applied so far
		g, err := tkc.NewGraph(stream[:next])
		if err != nil {
			t.Fatal(err)
		}

		type frozen struct {
			s     *tkc.Snapshot
			edges int
			probe string
		}
		var held []frozen
		freeze := func(s *tkc.Snapshot) {
			p, err := epochProbe(s.Graph)
			if err != nil {
				t.Fatalf("probe at freeze: %v", err)
			}
			held = append(held, frozen{s: s, edges: s.NumEdges(), probe: p})
		}
		recheck := func(fi int) {
			fz := held[fi]
			p, err := epochProbe(fz.s.Graph)
			if err != nil {
				t.Fatalf("probe of held snapshot %d: %v", fi, err)
			}
			if p != fz.probe {
				t.Fatalf("torn read: snapshot %d drifted under later ops:\n got %s\nwant %s", fi, p, fz.probe)
			}
		}

		lastSeq := int64(-1)
		for oi, op := range schedule {
			switch op % 5 {
			case 0: // append a batch
				n := 1 + int(op)/16
				if next+n > len(stream) {
					continue
				}
				if _, err := g.Append(stream[next : next+n]...); err != nil {
					t.Fatal(err)
				}
				next += n
			case 1: // publish the current state
				freeze(g.Publish())
			case 2: // freeze without publishing
				freeze(g.Freeze())
			case 3: // observe the latest published epoch
				s := g.Latest()
				if s == nil {
					continue
				}
				if s.Seq() < lastSeq {
					t.Fatalf("epoch visibility went backwards: %d after %d", s.Seq(), lastSeq)
				}
				lastSeq = s.Seq()
				if s.NumEdges() > g.NumEdges() {
					t.Fatalf("published epoch ahead of the live graph: %d > %d edges", s.NumEdges(), g.NumEdges())
				}
			case 4: // re-probe a held snapshot
				if len(held) > 0 {
					recheck(int(op/5) % len(held))
				}
			}
			_ = oi
		}

		// Epilogue: every held snapshot must still probe identically, and
		// must match a quiesced graph rebuilt from its exact edge prefix.
		for fi := range held {
			recheck(fi)
			fz := held[fi]
			rebuilt, err := tkc.NewGraph(stream[:fz.edges])
			if err != nil {
				t.Fatal(err)
			}
			want, err := epochProbe(rebuilt)
			if err != nil {
				t.Fatal(err)
			}
			if fz.probe != want {
				t.Fatalf("snapshot %d differs from quiesced rebuild of its prefix (%d edges):\n got %s\nwant %s",
					fi, fz.edges, fz.probe, want)
			}
		}
	})
}
