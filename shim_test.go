package temporalkcore_test

import (
	"os/exec"
	"testing"

	tkc "temporalkcore"
)

// TestOldAPIExamplesCompile is the deprecation-shim smoke test: the
// pre-v2 example programs (contact tracing, fraud rings, misinformation,
// historical, streaming fraud) are kept on the v1 surface on purpose and
// must keep compiling unchanged against the shims.
func TestOldAPIExamplesCompile(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cmd := exec.Command("go", "build", "./examples/...")
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("old-API examples no longer compile: %v\n%s", err, out)
	}
}

// TestShimsDelegateToV2 spot-checks that every deprecated entry point
// still answers and agrees with its v2 replacement on a tiny graph, so a
// shim can never silently drift from the engine it delegates to.
func TestShimsDelegateToV2(t *testing.T) {
	g, err := tkc.NewGraph([]tkc.Edge{
		{U: 1, V: 2, Time: 1}, {U: 2, V: 3, Time: 2}, {U: 1, V: 3, Time: 3},
		{U: 3, V: 4, Time: 4}, {U: 1, V: 4, Time: 5}, {U: 2, V: 4, Time: 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := g.TimeSpan()

	v1, err := g.Cores(2, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := g.CountCores(2, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(v1)) != qs.Cores {
		t.Fatalf("Cores (%d) and CountCores (%d) disagree", len(v1), qs.Cores)
	}
	var streamed int
	if _, err := g.CoresFunc(2, lo, hi, func(tkc.Core) bool { streamed++; return true }); err != nil {
		t.Fatal(err)
	}
	if streamed != len(v1) {
		t.Fatalf("CoresFunc streamed %d, Cores returned %d", streamed, len(v1))
	}

	p, err := g.Prepare(2, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := p.Cores()
	if err != nil || len(pc) != len(v1) {
		t.Fatalf("PreparedQuery.Cores = %d cores, err %v; want %d", len(pc), err, len(v1))
	}

	batch := g.QueryBatch([]tkc.QuerySpec{{K: 2, Start: lo, End: hi}})
	if batch[0].Err != nil || len(batch[0].Cores) != len(v1) {
		t.Fatalf("QueryBatch = %d cores, err %v; want %d", len(batch[0].Cores), batch[0].Err, len(v1))
	}
	cb := g.CountBatch([]tkc.QuerySpec{{K: 2, Start: lo, End: hi}}, 1)
	if cb[0].Err != nil || cb[0].Stats.Cores != qs.Cores {
		t.Fatalf("CountBatch = %+v; want %d cores", cb[0], qs.Cores)
	}

	if _, err := g.KHCore(2, 1, lo, hi); err != nil {
		t.Fatalf("KHCore: %v", err)
	}
	h, err := g.BuildHistoricalIndex(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.CoreMembers(2, lo, hi); err != nil {
		t.Fatalf("CoreMembers: %v", err)
	}
	w, err := g.Watch(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	wc, err := w.Cores()
	if err != nil || len(wc) != len(v1) {
		t.Fatalf("Watcher.Cores = %d cores, err %v; want %d", len(wc), err, len(v1))
	}
}
