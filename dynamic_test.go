package temporalkcore_test

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strings"
	"testing"

	tkc "temporalkcore"
)

func TestGraphAppend(t *testing.T) {
	g, err := tkc.NewGraph([]tkc.Edge{
		{U: 1, V: 2, Time: 10}, {U: 2, V: 3, Time: 11}, {U: 1, V: 3, Time: 12},
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := g.Append(tkc.Edge{U: 2, V: 3, Time: 12}, tkc.Edge{U: 1, V: 2, Time: 13})
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("Append added %d, want 2", n)
	}
	if g.NumEdges() != 5 || g.TimestampCount() != 4 {
		t.Fatalf("after append: %d edges, %d timestamps", g.NumEdges(), g.TimestampCount())
	}
	// Appended edges take part in queries like built ones.
	want, err := tkc.NewGraph([]tkc.Edge{
		{U: 1, V: 2, Time: 10}, {U: 2, V: 3, Time: 11}, {U: 1, V: 3, Time: 12},
		{U: 2, V: 3, Time: 12}, {U: 1, V: 2, Time: 13},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Cores(2, 10, 13)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := want.Cores(2, 10, 13)
	if err != nil {
		t.Fatal(err)
	}
	if coreSetString(got) != coreSetString(exp) {
		t.Fatalf("append-path cores differ from build-path cores:\n%s\nvs\n%s", coreSetString(got), coreSetString(exp))
	}
	// Time-order violations are rejected.
	if _, err := g.Append(tkc.Edge{U: 5, V: 6, Time: 1}); err == nil {
		t.Fatal("out-of-order append succeeded")
	}
}

// coreSetString renders cores order-independently: each edge's undirected
// orientation is canonicalised (the dense-id mapping behind Label order
// depends on build order), each core's edges are sorted, then the cores
// themselves.
func coreSetString(cores []tkc.Core) string {
	lines := make([]string, len(cores))
	for i, c := range cores {
		es := append([]tkc.Edge(nil), c.Edges...)
		for j, e := range es {
			if e.U > e.V {
				es[j].U, es[j].V = e.V, e.U
			}
		}
		sort.Slice(es, func(a, b int) bool {
			x, y := es[a], es[b]
			if x.Time != y.Time {
				return x.Time < y.Time
			}
			if x.U != y.U {
				return x.U < y.U
			}
			return x.V < y.V
		})
		lines[i] = fmt.Sprintf("[%d,%d] %v", c.Start, c.End, es)
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

func TestAppendReaderFormats(t *testing.T) {
	g, err := tkc.NewGraph([]tkc.Edge{{U: 1, V: 2, Time: 1}})
	if err != nil {
		t.Fatal(err)
	}
	stream := strings.Join([]string{
		"# comment",
		`{"u": 2, "v": 3, "t": 2}`,
		"",
		"3 4 2",
		"% another comment",
		"1 4 9 3", // KONECT style, weight ignored
		`{"u": 4, "v": 2, "t": 4}`,
	}, "\n")
	ar := tkc.NewAppendReader(g, strings.NewReader(stream))
	ar.BatchSize = 2
	total, batches := 0, 0
	for {
		n, err := ar.ReadBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		total += n
		batches++
	}
	if total != 4 || ar.Total() != 4 {
		t.Fatalf("appended %d (reader says %d), want 4", total, ar.Total())
	}
	if batches != 2 {
		t.Fatalf("batches = %d, want 2", batches)
	}
	if g.NumEdges() != 5 || g.NumVertices() != 4 {
		t.Fatalf("graph has %d edges, %d vertices", g.NumEdges(), g.NumVertices())
	}

	// Malformed lines surface with their line number.
	bad := tkc.NewAppendReader(g, strings.NewReader("5 6\n"))
	if _, err := bad.ReadBatch(); err == nil || !strings.Contains(err.Error(), "line 1") {
		t.Fatalf("bad line error = %v", err)
	}
	badJSON := tkc.NewAppendReader(g, strings.NewReader(`{"u": 5, "t": 9}`))
	if _, err := badJSON.ReadBatch(); err == nil {
		t.Fatal("NDJSON edge without v accepted")
	}
}

// TestWatcherFollowsStream drives a watcher through random append batches
// and checks every answer against a one-shot query on an equivalent
// freshly built graph.
func TestWatcherFollowsStream(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 6 + r.Intn(14)
		var all []tkc.Edge
		time := int64(1)
		for len(all) < 150 {
			if r.Intn(3) == 0 {
				time++
			}
			all = append(all, tkc.Edge{U: int64(r.Intn(n)), V: int64(r.Intn(n)), Time: time})
		}
		cut := 40
		g, err := tkc.NewGraph(all[:cut])
		if err != nil {
			t.Fatal(err)
		}
		span := time / 2
		w, err := g.Watch(2, span)
		if err != nil {
			t.Fatal(err)
		}
		for i := cut; i < len(all); i += 25 {
			j := i + 25
			if j > len(all) {
				j = len(all)
			}
			if _, err := w.Append(all[i:j]...); err != nil {
				t.Fatalf("seed %d: watcher append: %v", seed, err)
			}
			ws, we, err := w.Window()
			if err != nil {
				t.Fatal(err)
			}
			got, err := w.Cores()
			if err != nil {
				t.Fatalf("seed %d: watcher cores: %v", seed, err)
			}
			fresh, err := tkc.NewGraph(all[:j])
			if err != nil {
				t.Fatal(err)
			}
			want, err := fresh.Cores(2, ws, we)
			if err != nil && err != tkc.ErrNoTimestamps {
				t.Fatal(err)
			}
			if coreSetString(got) != coreSetString(want) {
				t.Fatalf("seed %d after batch ending %d: watcher window [%d,%d] cores diverge from fresh build",
					seed, j, ws, we)
			}
			// Count-only agrees with materialisation.
			qs, err := w.CountCores()
			if err != nil {
				t.Fatal(err)
			}
			if int(qs.Cores) != len(got) {
				t.Fatalf("seed %d: CountCores=%d, len(Cores())=%d", seed, qs.Cores, len(got))
			}
		}
		st := w.Stats()
		if st.Patches == 0 {
			t.Fatalf("seed %d: watcher never patched (stats %+v)", seed, st)
		}
	}
}

// TestWatcherRepairsDirectAppend checks that appends bypassing the watcher
// are observed on the next query.
func TestWatcherRepairsDirectAppend(t *testing.T) {
	g, err := tkc.NewGraph([]tkc.Edge{
		{U: 1, V: 2, Time: 1}, {U: 2, V: 3, Time: 1}, {U: 1, V: 3, Time: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	w, err := g.Watch(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	before, err := w.CountCores()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Append(tkc.Edge{U: 3, V: 4, Time: 2}, tkc.Edge{U: 2, V: 4, Time: 2}, tkc.Edge{U: 2, V: 3, Time: 2}); err != nil {
		t.Fatal(err)
	}
	after, err := w.CountCores()
	if err != nil {
		t.Fatal(err)
	}
	if after.Cores <= before.Cores {
		t.Fatalf("watcher missed direct append: %d -> %d cores", before.Cores, after.Cores)
	}
}
