package temporalkcore

import (
	"context"
	"errors"
	"time"

	"temporalkcore/internal/core"
	"temporalkcore/internal/qcache"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// DefaultCacheMaxBytes is the serving cache's byte budget when
// CacheOptions.MaxBytes is unset: enough to keep the CoreTime tables of a
// few dozen hot (epoch, k, window) combinations resident on a typical
// serving graph without competing with the graph itself for memory.
const DefaultCacheMaxBytes = 64 << 20

// CacheOptions configures the graph's serving cache; see SetCacheOptions.
type CacheOptions struct {
	// MaxBytes bounds the estimated resident cost of cached CoreTime
	// tables; the least recently used entries are evicted beyond it.
	// <= 0 means DefaultCacheMaxBytes.
	MaxBytes int64

	// Disable turns the cache off: every query runs its own CoreTime
	// phase on pooled scratch (the pre-cache behaviour). Disable when the
	// workload never repeats an (epoch, k, window) combination — a
	// one-shot analytical sweep over distinct windows — so misses don't
	// pay the cache's insert-and-evict bookkeeping for entries nothing
	// will ever hit.
	Disable bool
}

// CacheStats reports the serving cache's counters; see Graph.CacheStats.
type CacheStats struct {
	Hits   int64 // queries served from a resident entry (CoreTime skipped)
	Misses int64 // queries that ran a CoreTime build
	// SingleflightShared counts queries that found an identical build in
	// flight and shared its result instead of building — N concurrent
	// identical queries under load cost one CoreTime phase.
	SingleflightShared int64
	Evictions          int64 // entries dropped by the MaxBytes LRU bound
	Retired            int64 // entries dropped because their epoch was retired
	// Oversize counts builds whose tables exceeded the whole MaxBytes
	// budget and were refused admission; repeat queries on such keys take
	// the uncached pooled-scratch path instead of rebuilding.
	Oversize int64

	Entries int   // resident entries
	Bytes   int64 // estimated resident bytes
}

// SetCacheOptions reconfigures the serving cache shared by the graph, its
// snapshots and its watchers. The cache memoises compiled CoreTime results
// — the vertex core time index and edge core window skylines, not
// materialised cores — keyed by (epoch seq, k, window, algorithm), so a
// repeated serving query on the same epoch skips the CoreTime phase
// entirely and pays only the output-proportional enumeration.
//
// Keys embed the epoch sequence number (see Snapshot.Seq), which on an
// append-only graph identifies the graph state exactly: entries can never
// go stale, appends simply mint new keys, and entries of retired epochs
// are dropped when the serving layer drains them. The cache is enabled by
// default with DefaultCacheMaxBytes; replacing the configuration resets
// the counters and drops every resident entry. Safe to call from any
// goroutine, though entries built under the old configuration are lost,
// and a Watcher keeps using the cache instance captured when Watch was
// called — reconfigure before creating watchers.
func (g *Graph) SetCacheOptions(o CacheOptions) {
	if o.Disable {
		g.hub.cache.Store(nil)
		return
	}
	max := o.MaxBytes
	if max <= 0 {
		max = DefaultCacheMaxBytes
	}
	g.hub.cache.Store(qcache.New(max))
}

// CacheStats returns the serving cache's counters since the graph (or the
// last SetCacheOptions call) was created. All zero when the cache is
// disabled. Safe from any goroutine.
func (g *Graph) CacheStats() CacheStats {
	c := g.cache()
	if c == nil {
		return CacheStats{}
	}
	st := c.Stats()
	return CacheStats{
		Hits:               st.Hits,
		Misses:             st.Misses,
		SingleflightShared: st.SingleflightShared,
		Evictions:          st.Evictions,
		Retired:            st.Retired,
		Oversize:           st.Oversize,
		Entries:            st.Entries,
		Bytes:              st.Bytes,
	}
}

// cache returns the hub's serving cache, or nil when disabled.
func (g *Graph) cache() *qcache.Cache { return g.hub.cache.Load() }

// cacheKey is the serving-cache key of a compiled (k, window) plan on this
// graph state. Every caller gates on cacheable() first, so the only
// algorithm that reaches here is AlgoEnum; the discriminator is qcache's
// canonical constant — shared with the dyn refresh path — rather than the
// public iota, so keys stay stable if Algorithm values are ever
// reordered.
func (g *Graph) cacheKey(k int, w tgraph.Window, algo Algorithm) qcache.Key {
	_ = algo // gated to AlgoEnum by cacheable()
	return qcache.Key{Seq: g.g.MutSeq(), K: k, W: w, Algo: qcache.AlgoEnum}
}

// cacheable reports whether an algorithm's CoreTime phase is memoised.
// Only the optimal Enum is: OTCD has no CoreTime phase at all, and
// EnumBase exists to be measured against Enum, which double-serving it
// from Enum's cache entries would defeat.
func cacheable(a Algorithm) bool { return a == AlgoEnum }

// buildCacheEntry runs the CoreTime phase for (k, w) with self-owned
// outputs, as a qcache build function: cancellation arrives as ctx's error.
func (g *Graph) buildCacheEntry(ctx context.Context, k int, w tgraph.Window) (*qcache.Entry, error) {
	began := time.Now()
	ix, ecs, err := vct.BuildStop(g.g, k, w, core.StopFromCtx(ctx))
	if err != nil {
		if errors.Is(err, vct.ErrStopped) {
			if cerr := ctx.Err(); cerr != nil {
				err = cerr
			}
		}
		return nil, err
	}
	return qcache.NewEntry(ix, ecs, time.Since(began)), nil
}
