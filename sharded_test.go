package temporalkcore_test

import (
	"context"
	"reflect"
	"sort"
	"testing"

	tkc "temporalkcore"
)

// shardedMustMatch runs the same query sharded (through v) and unsharded
// (through v's pinned snapshot — the same epoch, so the comparison is
// exact) and requires identical results under every projection.
func shardedMustMatch(t *testing.T, v *tkc.ShardedView, k int, start, end int64) tkc.QueryStats {
	t.Helper()
	var qs tkc.QueryStats
	for _, proj := range []tkc.Projection{tkc.ProjectEdges, tkc.ProjectVertices, tkc.ProjectCount} {
		want, err := v.Snapshot().Query(k).Window(start, end).Project(proj).Collect(context.Background())
		if err != nil {
			t.Fatalf("oracle: %v", err)
		}
		var st tkc.QueryStats
		got, err := v.Query(k).Window(start, end).Project(proj).Stats(&st).Collect(context.Background())
		if err != nil {
			t.Fatalf("sharded: %v", err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("sharded/unsharded mismatch (k=%d w=[%d,%d] proj=%d): %d vs %d cores",
				k, start, end, proj, len(got), len(want))
		}
		if st.Shards < 1 {
			t.Fatalf("sharded query reported %d shard spans", st.Shards)
		}
		qs = st
	}
	return qs
}

func TestShardedMatchesUnsharded(t *testing.T) {
	edges := randomEdges(11, 18, 900, 40)
	g, err := tkc.NewGraph(edges)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := g.TimeSpan()
	for _, parts := range []int{1, 3, 5} {
		sg, err := tkc.ShardGraph(g, tkc.ShardOptions{Shards: parts, Replicas: 2})
		if err != nil {
			t.Fatal(err)
		}
		if parts > 1 && sg.NumShards() < 2 {
			t.Fatalf("ShardGraph(%d) produced %d shards", parts, sg.NumShards())
		}
		v := sg.Latest()
		for k := 1; k <= 3; k++ {
			shardedMustMatch(t, v, k, lo, hi)
			shardedMustMatch(t, v, k, lo+(hi-lo)/4, lo+3*(hi-lo)/4)
			shardedMustMatch(t, v, k, lo, lo+(hi-lo)/2)
		}
		sg.Close()
	}
}

// TestShardedBoundarySpanningCores builds a window that crosses every cut
// and requires the boundary re-settle to have run — the stitched path, not
// a fresh rebuild — while still matching the oracle.
func TestShardedBoundarySpanningCores(t *testing.T) {
	edges := randomEdges(23, 12, 1200, 30) // dense: cores span wide windows
	sg, err := tkc.NewSharded(edges, tkc.ShardOptions{Shards: 4, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sg.Close()
	v := sg.Latest()
	lo, hi := sg.Spine().TimeSpan()

	// Warm the shard-local indexes, then query across the cuts.
	shardedMustMatch(t, v, 2, lo, hi)
	st := shardedMustMatch(t, v, 2, lo, hi)
	if !st.CacheHit {
		t.Fatalf("warm cross-shard query missed the cache: %+v", st)
	}
	if st.Patched == 0 {
		t.Fatalf("cross-shard query ran no boundary re-settle: %+v", st)
	}

	// At least one result core must itself span a cut.
	cores, err := v.Query(2).Window(lo, hi).Collect(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	stats := sg.ShardStats()
	spanning := false
	for _, c := range cores {
		for _, s := range stats {
			if s.Sealed && c.Start <= s.EndTime && c.End > s.EndTime {
				spanning = true
			}
		}
	}
	if !spanning {
		t.Fatal("no result core spans a shard cut; the boundary case is untested")
	}
}

func TestShardedAppendSealLifecycle(t *testing.T) {
	edges := randomEdges(5, 14, 1400, 60)
	sort.Slice(edges, func(i, j int) bool { return edges[i].Time < edges[j].Time })
	base, rest := edges[:300], edges[300:]

	sg, err := tkc.NewSharded(base, tkc.ShardOptions{MaxShardEdges: 250, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sg.Close()
	var reader *tkc.ShardedGraph = sg
	var _ tkc.AppendSink = reader // compile-time: streams ingest through it

	before := sg.NumShards()
	for i := 0; i < len(rest); i += 100 {
		j := i + 100
		if j > len(rest) {
			j = len(rest)
		}
		if _, err := sg.Append(rest[i:j]...); err != nil {
			t.Fatalf("append batch at %d: %v", i, err)
		}
		v := sg.Latest()
		lo, hi := sg.Spine().TimeSpan()
		shardedMustMatch(t, v, 2, lo, hi)
	}
	if sg.NumShards() <= before {
		t.Fatalf("auto-seal never fired: %d shards before, %d after", before, sg.NumShards())
	}

	// A manual seal freezes the rest of the frontier (all but the newest
	// rank) and a second seal with nothing new is a no-op.
	if _, err := sg.Seal(); err != nil {
		t.Fatal(err)
	}
	sealed, err := sg.Seal()
	if err != nil {
		t.Fatal(err)
	}
	if sealed {
		t.Fatal("second Seal with no new ranks reported a seal")
	}

	stats := sg.ShardStats()
	if len(stats) != sg.NumShards() {
		t.Fatalf("ShardStats has %d entries for %d shards", len(stats), sg.NumShards())
	}
	total := 0
	for i, s := range stats {
		if s.ID != i {
			t.Fatalf("ShardStats[%d].ID = %d", i, s.ID)
		}
		if s.Sealed != (i < len(stats)-1) {
			t.Fatalf("ShardStats[%d].Sealed = %v", i, s.Sealed)
		}
		if i > 0 && s.Edges > 0 && stats[i-1].Edges > 0 && s.StartTime <= stats[i-1].EndTime {
			t.Fatalf("shard %d overlaps its predecessor: %+v then %+v", i, stats[i-1], s)
		}
		total += s.Edges
	}
	if total != sg.Spine().NumEdges() {
		t.Fatalf("shard edge counts sum to %d, graph has %d", total, sg.Spine().NumEdges())
	}

	lo, hi := sg.Spine().TimeSpan()
	shardedMustMatch(t, sg.Latest(), 2, lo, hi)
}

func TestShardedBuilderGuards(t *testing.T) {
	sg, err := tkc.NewSharded(randomEdges(2, 10, 200, 12), tkc.ShardOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sg.Close()
	ctx := context.Background()
	if _, err := sg.Query(2).Algorithm(tkc.AlgoOTCD).Collect(ctx); err == nil {
		t.Fatal("Algorithm accepted on a sharded request")
	}
	if _, err := sg.Query(2).Snapshot(1).Collect(ctx); err == nil {
		t.Fatal("Snapshot accepted on a sharded request")
	}
	if _, err := sg.Query(0).Collect(ctx); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestShardedEarlyStopAndSeq(t *testing.T) {
	sg, err := tkc.NewSharded(randomEdges(31, 14, 700, 30), tkc.ShardOptions{Shards: 3, Replicas: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer sg.Close()
	v := sg.Latest()
	lo, hi := sg.Spine().TimeSpan()
	ctx := context.Background()

	all, err := v.Query(2).Window(lo, hi).Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) < 4 {
		t.Skip("graph too sparse for an early-stop test")
	}
	few, err := v.Query(2).Window(lo, hi).EarlyStop(3).Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(few, all[:3]) {
		t.Fatal("EarlyStop(3) is not the 3-core prefix of the full result")
	}

	// Seq streaming with a mid-stream break matches the prefix too.
	var streamed []tkc.Core
	for c, err := range v.Query(2).Window(lo, hi).Seq(ctx) {
		if err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, c)
		if len(streamed) == 2 {
			break
		}
	}
	if !reflect.DeepEqual(streamed, all[:2]) {
		t.Fatal("broken Seq stream is not the 2-core prefix")
	}

	// QueryJSON compiles against the view through RequestFrom.
	req, err := tkc.QueryJSON{K: 2, EarlyStop: 3}.RequestFrom(v)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := req.Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wire, all[:3]) {
		t.Fatal("RequestFrom(view) result differs from the builder path")
	}
	if _, err := (tkc.QueryJSON{K: 2, Algorithm: "otcd"}).RequestFrom(v); err == nil {
		t.Fatal("RequestFrom accepted an algorithm override on a sharded source")
	}
}
