package temporalkcore_test

import (
	"math/rand"
	"testing"

	tkc "temporalkcore"

	"temporalkcore/internal/gen"
	"temporalkcore/internal/tgraph"
)

// diffGraph synthesises one small seeded graph (internal/gen's hub-core +
// community-burst model) and returns it as a public Graph plus its raw
// edge list in time order.
func diffGraph(t *testing.T, seed int64) (*tkc.Graph, []tkc.Edge) {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	cfg := gen.Config{
		Name:        "difftest",
		Seed:        seed,
		Vertices:    25 + r.Intn(50),
		Edges:       120 + r.Intn(220),
		Timestamps:  15 + r.Intn(40),
		HubEdgeProb: 0.2 + 0.3*r.Float64(),
		MixEdgeProb: 0.25,
		Burstiness:  0.4 * r.Float64(),
		Communities: 1 + r.Intn(3),
	}
	ig, err := gen.Generate(cfg)
	if err != nil {
		t.Fatalf("seed %d: gen: %v", seed, err)
	}
	edges := make([]tkc.Edge, ig.NumEdges())
	for i := range edges {
		te := ig.Edge(tgraph.EID(i))
		edges[i] = tkc.Edge{U: ig.Label(te.U), V: ig.Label(te.V), Time: ig.RawTime(te.T)}
	}
	g, err := tkc.NewGraph(edges)
	if err != nil {
		t.Fatalf("seed %d: NewGraph: %v", seed, err)
	}
	return g, edges
}

// diffQueries samples query ranges across the graph's time span.
func diffQueries(g *tkc.Graph, r *rand.Rand) [][2]int64 {
	lo, hi := g.TimeSpan()
	span := hi - lo
	qs := [][2]int64{{lo, hi}}
	for i := 0; i < 2; i++ {
		s := lo + r.Int63n(span/2+1)
		e := s + span/4 + r.Int63n(span/2+1)
		if e > hi {
			e = hi
		}
		qs = append(qs, [2]int64{s, e})
	}
	return qs
}

// TestAlgorithmsAgree is the differential harness across enumeration
// algorithms: on ~50 seeded random temporal graphs, the optimal Enum, the
// straightforward EnumBase and the OTCD baseline must produce identical
// core sets for identical (k, start, end) queries.
func TestAlgorithmsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("differential harness is slow")
	}
	algos := []struct {
		name string
		algo tkc.Algorithm
	}{
		{"Enum", tkc.AlgoEnum},
		{"EnumBase", tkc.AlgoEnumBase},
		{"OTCD", tkc.AlgoOTCD},
	}
	for seed := int64(0); seed < 50; seed++ {
		g, _ := diffGraph(t, seed)
		r := rand.New(rand.NewSource(seed * 7919))
		for _, q := range diffQueries(g, r) {
			for _, k := range []int{2, 3} {
				var ref string
				for i, a := range algos {
					cores, err := g.Cores(k, q[0], q[1], tkc.Options{Algorithm: a.algo})
					if err != nil {
						t.Fatalf("seed %d %s k=%d [%d,%d]: %v", seed, a.name, k, q[0], q[1], err)
					}
					cs := coreSetString(cores)
					if i == 0 {
						ref = cs
						continue
					}
					if cs != ref {
						t.Fatalf("seed %d k=%d [%d,%d]: %s disagrees with Enum\n--- %s (%d cores) ---\n%.2000s\n--- Enum ---\n%.2000s",
							seed, k, q[0], q[1], a.name, a.name, len(cores), cs, ref)
					}
				}
			}
		}
	}
}

// TestAppendEqualsScratchBuild is the differential harness across build
// paths: on seeded random graphs, splitting the time-ordered edge list at
// a random point, building the prefix and appending the suffix must
// answer every query exactly like a one-shot build.
func TestAppendEqualsScratchBuild(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		full, edges := diffGraph(t, seed+1000)
		r := rand.New(rand.NewSource(seed * 104729))
		cut := 1 + r.Intn(len(edges)-1)
		appended, err := tkc.NewGraph(edges[:cut])
		if err != nil {
			t.Fatalf("seed %d: prefix build: %v", seed, err)
		}
		// Append the suffix in 1-3 batches.
		batches := 1 + r.Intn(3)
		per := (len(edges) - cut + batches - 1) / batches
		for i := cut; i < len(edges); i += per {
			j := i + per
			if j > len(edges) {
				j = len(edges)
			}
			if _, err := appended.Append(edges[i:j]...); err != nil {
				t.Fatalf("seed %d: append: %v", seed, err)
			}
		}
		if appended.NumEdges() != full.NumEdges() || appended.TimestampCount() != full.TimestampCount() {
			t.Fatalf("seed %d: appended shape %d/%d != full %d/%d", seed,
				appended.NumEdges(), appended.TimestampCount(), full.NumEdges(), full.TimestampCount())
		}
		for _, q := range diffQueries(full, r) {
			for _, k := range []int{2, 3} {
				got, err := appended.Cores(k, q[0], q[1])
				if err != nil {
					t.Fatalf("seed %d append-path k=%d: %v", seed, k, err)
				}
				want, err := full.Cores(k, q[0], q[1])
				if err != nil {
					t.Fatalf("seed %d scratch-path k=%d: %v", seed, k, err)
				}
				if coreSetString(got) != coreSetString(want) {
					t.Fatalf("seed %d k=%d [%d,%d]: append-then-query differs from build-from-scratch",
						seed, k, q[0], q[1])
				}
				gq, err := appended.CountCores(k, q[0], q[1])
				if err != nil {
					t.Fatal(err)
				}
				wq, err := full.CountCores(k, q[0], q[1])
				if err != nil {
					t.Fatal(err)
				}
				if gq.Cores != wq.Cores || gq.Edges != wq.Edges || gq.VCTSize != wq.VCTSize || gq.ECSSize != wq.ECSSize {
					t.Fatalf("seed %d k=%d: append-path stats {%d %d %d %d} != scratch {%d %d %d %d}",
						seed, k, gq.Cores, gq.Edges, gq.VCTSize, gq.ECSSize, wq.Cores, wq.Edges, wq.VCTSize, wq.ECSSize)
				}
			}
		}
	}
}
