package temporalkcore

import (
	"fmt"
	"sync"

	"temporalkcore/internal/phc"
	"temporalkcore/internal/store"
	"temporalkcore/internal/tgraph"
)

// DurableGraph couples a Graph with an on-disk data directory
// (internal/store): every Bootstrap/Append batch is logged to an append WAL
// before it is applied, Snapshot persists the whole graph as a flat segment
// image cut from a copy-on-write freeze — plus a spill of the serving
// cache's resident entries — and OpenDir recovers all of it. Because WAL
// replay runs batches through the exact code paths the original writer
// used, the recovered graph is byte-identical to the pre-crash state up to
// the last durable record (vertex ids, ranks and the mutation sequence all
// agree), which is what lets the spilled cache entries — keyed and
// fingerprinted by that state — be re-admitted instead of rebuilt: the
// first repeat query after a restart is a cache hit.
//
// The crash model is kill -9: batches are flushed to the OS before they are
// applied, snapshots are written to a temp file, fsynced and renamed. A
// torn WAL tail truncates cleanly to the last whole record.
//
// Concurrency follows Graph: DurableGraph serialises its own writer-side
// methods (Bootstrap, Append, the snapshot cut, Close) against each other,
// so any one goroutine may call them while readers query published epochs
// of Graph(). Snapshot's expensive serialization runs outside the writer
// lock — appends proceed while the frozen image is written.
type DurableGraph struct {
	// mu serialises writer-side operations; queries never take it.
	mu sync.Mutex
	// snapMu serialises whole snapshots against each other, so overlapping
	// timers cannot interleave their commit and compaction phases.
	snapMu sync.Mutex

	st   *store.Store
	g    *Graph // nil until bootstrapped; guarded by mu for writes
	warm int
}

// OpenDir opens (creating if needed) the data directory at dir and recovers
// its graph: newest snapshot, then WAL replay to the exact last durable
// batch. Spilled serving-cache entries whose fingerprint matches the
// recovered state are re-admitted into the graph's (default-configured)
// cache — see WarmEntries. An empty directory yields a DurableGraph with a
// nil Graph awaiting Bootstrap.
func OpenDir(dir string) (*DurableGraph, error) {
	st, err := store.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("temporalkcore: %w", err)
	}
	d := &DurableGraph{st: st}
	if tg := st.Graph(); tg != nil {
		d.g = newGraph(tg)
		d.warm, _ = d.reloadWarmLocked()
	}
	return d, nil
}

// Graph returns the live graph backing the store, nil while the directory
// is empty (no Bootstrap yet). The graph supports the full query API; route
// every mutation through DurableGraph so it is logged.
func (d *DurableGraph) Graph() *Graph { return d.g }

// Seq returns the current mutation sequence (-1 while empty): the exact
// state a crash right now would recover to, given the WAL is flushed
// through this sequence.
func (d *DurableGraph) Seq() int64 { return d.st.Seq() }

// Dir returns the data directory path.
func (d *DurableGraph) Dir() string { return d.st.Dir() }

// WarmEntries returns how many spilled cache entries the last open (or
// ReloadWarm) re-admitted.
func (d *DurableGraph) WarmEntries() int { return d.warm }

// ReloadWarm re-admits the on-disk cache spill into the graph's current
// serving cache. OpenDir does this automatically; call it again after
// SetCacheOptions, which replaces the cache and drops resident entries.
func (d *DurableGraph) ReloadWarm() (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n, err := d.reloadWarmLocked()
	d.warm = n
	return n, err
}

func (d *DurableGraph) reloadWarmLocked() (int, error) {
	if d.g == nil {
		return 0, nil
	}
	c := d.g.cache()
	if c == nil {
		return 0, nil
	}
	// Admitted PHC indexes also seed the historical tier's patch oracle, so
	// the first post-restart historical build on a moved window patches
	// instead of rebuilding.
	return d.st.LoadWarm(c, func(ix *phc.Index) { d.g.hub.lastHist.Store(ix) })
}

// Bootstrap creates the graph from an initial edge list, WAL-logged first.
// The store must be empty.
func (d *DurableGraph) Bootstrap(edges []Edge) (*Graph, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.g != nil {
		return nil, fmt.Errorf("temporalkcore: data directory %s already holds a graph (seq %d)", d.st.Dir(), d.st.Seq())
	}
	tg, err := d.st.Bootstrap(rawEdges(edges))
	if err != nil {
		return nil, fmt.Errorf("temporalkcore: %w", err)
	}
	d.g = newGraph(tg)
	return d.g, nil
}

// Append logs the batch to the WAL, then applies it to the graph; see
// Graph.Append for batch semantics (atomicity, ordering, deduplication).
// The WAL write comes first, so a batch that cannot be made durable is
// never applied. DurableGraph implements AppendSink.
//
// tkc:mutates
func (d *DurableGraph) Append(edges ...Edge) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.g == nil {
		return 0, fmt.Errorf("temporalkcore: data directory %s is empty: Bootstrap first", d.st.Dir())
	}
	st, err := d.st.Append(rawEdges(edges))
	if err != nil {
		return 0, fmt.Errorf("temporalkcore: %w", err)
	}
	return st.Added, nil
}

// Snapshot persists the current graph state: it cuts a copy-on-write freeze
// and rotates the WAL under the writer lock (cheap), then — with appends
// already proceeding — spills the serving cache's entries for the frozen
// sequence, writes the segment image atomically and compacts files the
// snapshot made redundant (older snapshots, fully-covered WALs, stale
// spills). It returns the persisted sequence number.
func (d *DurableGraph) Snapshot() (int64, error) {
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	d.mu.Lock()
	p, err := d.st.BeginSnapshot()
	d.mu.Unlock()
	if err != nil {
		return -1, fmt.Errorf("temporalkcore: %w", err)
	}
	if c := d.g.cache(); c != nil {
		p.WriteWarm(c) // advisory: a failed spill costs only cold first queries
	}
	if err := p.Commit(); err != nil {
		return p.Seq(), fmt.Errorf("temporalkcore: %w", err)
	}
	return p.Seq(), nil
}

// Close syncs and closes the WAL. The graph stays queryable in memory;
// further mutations error. Callers wanting a warm next start should
// Snapshot first (the serving layer does this on graceful shutdown).
func (d *DurableGraph) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.st.Close(); err != nil {
		return fmt.Errorf("temporalkcore: %w", err)
	}
	return nil
}

func rawEdges(edges []Edge) []tgraph.RawEdge {
	raw := make([]tgraph.RawEdge, len(edges))
	for i, e := range edges {
		raw[i] = tgraph.RawEdge{U: e.U, V: e.V, Time: e.Time}
	}
	return raw
}
