package temporalkcore_test

import (
	"context"
	"testing"

	tkc "temporalkcore"
	"temporalkcore/internal/bench"
)

// cmReplica loads the benchEdges-scale CM replica as a public graph plus a
// seeded 10% query window — the largest window on which full
// materialisation is still feasible (at full range the CM replica's |R| is
// ~10.8 billion edges, ~250 GB materialised, which is precisely the
// asymmetry the streaming iterator exists for).
func cmReplica(b *testing.B) (g *tkc.Graph, k int, ws, we, lo, hi int64) {
	b.Helper()
	d, err := bench.LoadDataset("CM", benchEdges, 42)
	if err != nil {
		b.Fatal(err)
	}
	raw := make([]tkc.Edge, 0, d.G.NumEdges())
	for _, te := range d.G.Edges() {
		raw = append(raw, tkc.Edge{U: d.G.Label(te.U), V: d.G.Label(te.V), Time: d.G.RawTime(te.T)})
	}
	g, err = tkc.NewGraph(raw)
	if err != nil {
		b.Fatal(err)
	}
	k = d.K(30)
	w := d.Queries(k, 10, 1, 7)[0]
	ws, we = d.G.RawWindow(w)
	lo, hi = g.TimeSpan()
	return g, k, ws, we, lo, hi
}

// BenchmarkIteratorEarlyStop compares the v2 iterator's early-stop path
// against full materialisation on the CM replica: First pays the CoreTime
// phase plus O(1) enumeration, while Collect pays CoreTime plus the full
// O(|R|) result. This is the output-proportional claim of the paper
// surfaced as an API property: breaking the loop is the push-down.
func BenchmarkIteratorEarlyStop(b *testing.B) {
	g, k, ws, we, lo, hi := cmReplica(b)
	ctx := context.Background()

	b.Run("First", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok, err := g.Query(k).Window(ws, we).First(ctx); err != nil || !ok {
				b.Fatalf("ok=%v err=%v", ok, err)
			}
		}
	})
	b.Run("SeqFirst10", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n := 0
			for _, err := range g.Query(k).Window(ws, we).Seq(ctx) {
				if err != nil {
					b.Fatal(err)
				}
				if n++; n == 10 {
					break
				}
			}
		}
	})
	b.Run("CollectAll", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cores, err := g.Query(k).Window(ws, we).Collect(ctx)
			if err != nil || len(cores) == 0 {
				b.Fatalf("%d cores, err=%v", len(cores), err)
			}
		}
	})
	b.Run("CoresV1", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cores, err := g.Cores(k, ws, we)
			if err != nil || len(cores) == 0 {
				b.Fatalf("%d cores, err=%v", len(cores), err)
			}
		}
	})
	// Full-range references: First streams its one core out of a window
	// whose |R| (~10.8B edges on this replica) could never be materialised;
	// Count streams the whole result without retaining it.
	b.Run("FullRangeFirst", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok, err := g.Query(k).Window(lo, hi).First(ctx); err != nil || !ok {
				b.Fatalf("ok=%v err=%v", ok, err)
			}
		}
	})
	b.Run("FullRangeCount", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := g.Query(k).Window(lo, hi).Count(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
}
