package temporalkcore

import (
	"context"
	"errors"
	"fmt"
	"time"

	"temporalkcore/internal/core"
	"temporalkcore/internal/qcache"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// PreparedQuery holds the CoreTime phase of a query (the vertex core time
// index and the edge core window skylines) so that several enumerations —
// full scans, early-stopping scans, counts, vertex-set projections — can
// share one O(|VCT|·deg_avg) construction. A PreparedQuery is immutable and
// safe for concurrent use.
//
// A PreparedQuery pins the graph state it was prepared on: prepare on a
// Snapshot (frozen epoch) to keep enumerating that exact state — safely
// and lock-free — while the live graph appends concurrently; prepare on
// the live Graph only if no Append will run during enumerations.
type PreparedQuery struct {
	g        *Graph
	k        int
	w        tgraph.Window
	ix       *vct.Index
	ecs      *vct.ECS
	coreTime time.Duration // CoreTime phase cost paid by Prepare
}

// Prepare runs the CoreTime phase for (k, [start, end]) and returns a
// reusable query handle. With the serving cache enabled, Prepare first
// consults it under (epoch seq, k, window): a hit adopts the cached tables
// without recomputing anything (PrepareTime then reports ~zero — the cost
// was paid by whichever execution built the entry), and a miss inserts the
// freshly built tables so later queries on the same graph state hit.
//
// Prepare is not cancellable; a cold prepare on a large window runs its
// full CoreTime build. Use PrepareContext to bound it with a deadline.
//
// tkc:allow-background: ctx-less convenience form of PrepareContext
func (g *Graph) Prepare(k int, start, end int64) (*PreparedQuery, error) {
	return g.PrepareContext(context.Background(), k, start, end)
}

// PrepareContext is Prepare with cancellation: a cold prepare polls ctx
// inside the CoreTime settle loop with a bounded stride and returns
// ctx.Err() when it fires, leaving the cache untouched; a cache hit costs
// one lookup and never blocks on ctx. A nil ctx means context.Background.
//
// tkc:allow-background: tolerates nil ctx from v1 callers
func (g *Graph) PrepareContext(ctx context.Context, k int, start, end int64) (*PreparedQuery, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if k < 1 {
		return nil, fmt.Errorf("temporalkcore: k must be >= 1, got %d", k)
	}
	w, err := g.window(start, end)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if c := g.cache(); c != nil {
		ent, how, err := c.GetOrBuild(ctx, g.cacheKey(k, w, AlgoEnum), func() (*qcache.Entry, error) {
			return g.buildCacheEntry(ctx, k, w)
		})
		if err != nil {
			return nil, err
		}
		coreTime := time.Duration(0)
		if how == qcache.Built {
			coreTime = ent.CoreTime
		}
		return &PreparedQuery{g: g, k: k, w: w, ix: ent.Ix, ecs: ent.Ecs, coreTime: coreTime}, nil
	}
	began := time.Now()
	ix, ecs, err := vct.BuildStop(g.g, k, w, core.StopFromCtx(ctx))
	if err != nil {
		if errors.Is(err, vct.ErrStopped) {
			if cerr := ctx.Err(); cerr != nil {
				err = cerr
			}
		}
		return nil, err
	}
	return &PreparedQuery{g: g, k: k, w: w, ix: ix, ecs: ecs, coreTime: time.Since(began)}, nil
}

// K returns the query's core parameter.
func (p *PreparedQuery) K() int { return p.k }

// Range returns the query range in raw timestamps.
func (p *PreparedQuery) Range() (start, end int64) { return p.g.g.RawWindow(p.w) }

// VCTSize returns |VCT|, the number of core-time index entries.
func (p *PreparedQuery) VCTSize() int { return p.ix.Size() }

// ECSSize returns |ECS|, the number of minimal core windows.
func (p *PreparedQuery) ECSSize() int { return p.ecs.Size() }

// PrepareTime returns the wall time the CoreTime phase took in Prepare.
// It is deliberately not repeated in each CoresFunc call's QueryStats:
// the cost was paid once, and summing per-call stats would over-count it.
func (p *PreparedQuery) PrepareTime() time.Duration { return p.coreTime }

// CoresFunc streams every distinct temporal k-core to fn; see
// Graph.CoresFunc. Safe to call concurrently: each call draws its own
// enumeration scratch from the shared pool, so repeated calls on a warm
// process allocate almost nothing. QueryStats.CoreTime stays zero — the
// CoreTime phase ran in Prepare; see PrepareTime.
//
// Deprecated: use the v2 builder, which adds context cancellation and
// projections: for c, err := range p.Query().Seq(ctx).
//
// tkc:allow-background: deprecated v1 shim; the v2 builder threads ctx
func (p *PreparedQuery) CoresFunc(fn func(Core) bool) (QueryStats, error) {
	return p.Query().run(context.Background(), fn)
}

// Cores materialises every distinct temporal k-core.
//
// Deprecated: use the v2 builder: p.Query().Collect(ctx).
//
// tkc:allow-background: deprecated v1 shim; the v2 builder threads ctx
func (p *PreparedQuery) Cores() ([]Core, error) {
	return p.Query().Collect(context.Background())
}

// Count counts cores and |R| without materialising anything.
//
// Deprecated: use the v2 builder: p.Query().Count(ctx).
//
// tkc:allow-background: deprecated v1 shim; the v2 builder threads ctx
func (p *PreparedQuery) Count() (QueryStats, error) {
	return p.Query().Count(context.Background())
}

// CoreTime returns the core time of a vertex label for a raw start time:
// the earliest raw end time te such that the vertex is in the k-core of
// [ts, te], with infinite=true when there is none. ts is clamped into the
// prepared range.
func (p *PreparedQuery) CoreTime(label int64, ts int64) (te int64, infinite bool, err error) {
	v, ok := p.g.g.VertexOf(label)
	if !ok {
		return 0, false, fmt.Errorf("temporalkcore: unknown vertex %d", label)
	}
	rank := p.g.g.RankCeil(ts)
	if rank < p.w.Start {
		rank = p.w.Start
	}
	if rank > p.w.End {
		return 0, true, nil
	}
	ct := p.ix.CoreTime(v, rank)
	if ct == tgraph.InfTime {
		return 0, true, nil
	}
	return p.g.g.RawTime(ct), false, nil
}
