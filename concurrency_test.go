package temporalkcore_test

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	tkc "temporalkcore"
	"temporalkcore/internal/gen"
	"temporalkcore/internal/tgraph"
)

// cmEdges synthesises the CM (CollegeMsg) replica at the given scale and
// returns its canonical time-ordered edge list (no self loops, no exact
// duplicates), so any prefix length identifies a graph state exactly.
func cmEdges(t testing.TB, edges int) []tkc.Edge {
	t.Helper()
	rep, err := gen.ReplicaByCode("CM")
	if err != nil {
		t.Fatal(err)
	}
	g, err := rep.Generate(edges, 42)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]tkc.Edge, g.NumEdges())
	for i := range all {
		te := g.Edge(tgraph.EID(i))
		all[i] = tkc.Edge{U: g.Label(te.U), V: g.Label(te.V), Time: g.RawTime(te.T)}
	}
	return all
}

// coreFingerprint renders a query's full observable result — count stats
// over the whole history plus every materialised core of the trailing
// window — into one canonical, byte-comparable string.
func coreFingerprint(g *tkc.Graph, k int) (string, error) {
	return fingerprintFrom(g, g, k)
}

// fingerprintFrom is coreFingerprint with the execution source decoupled
// from the graph whose state it describes, so the sharded differential can
// fingerprint a ShardedView's scatter-gather results in exactly the format
// an unsharded rebuild produces.
func fingerprintFrom(g *tkc.Graph, src tkc.Querier, k int) (string, error) {
	ctx := context.Background()
	lo, hi := g.TimeSpan()
	qs, err := src.Query(k).Window(lo, hi).Count(ctx)
	if err != nil {
		return "", err
	}
	ws := hi - (hi-lo)/10 // trailing tenth: small enough to materialise
	cores, err := src.Query(k).Window(ws, hi).Collect(ctx)
	if err != nil {
		return "", err
	}
	for _, c := range cores {
		sort.Slice(c.Edges, func(a, b int) bool {
			x, y := c.Edges[a], c.Edges[b]
			if x.Time != y.Time {
				return x.Time < y.Time
			}
			if x.U != y.U {
				return x.U < y.U
			}
			return x.V < y.V
		})
	}
	sort.Slice(cores, func(a, b int) bool {
		x, y := cores[a], cores[b]
		if x.Start != y.Start {
			return x.Start < y.Start
		}
		if x.End != y.End {
			return x.End < y.End
		}
		return len(x.Edges) < len(y.Edges)
	})
	return fmt.Sprintf("v=%d e=%d t=%d full=%d/%d tail=%v",
		g.NumVertices(), g.NumEdges(), g.TimestampCount(), qs.Cores, qs.Edges, cores), nil
}

// TestConcurrentAppendVsQueryDifferential is the racing differential suite
// of the epoch layer: reader goroutines continuously pin the latest
// published epoch and query it while the writer appends ≥1% of the CM
// replica through a Watcher (which publishes per batch). Every result is
// recorded with the epoch's sequence number, and afterwards each must
// byte-match the same query on a quiesced graph rebuilt from scratch to
// exactly that epoch's edge prefix. Run under -race this also proves the
// reader/writer memory-model claims.
func TestConcurrentAppendVsQueryDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const k = 8
	all := cmEdges(t, 2000)
	cut := len(all) * 98 / 100 // 2% appended while readers run
	g, err := tkc.NewGraph(all[:cut])
	if err != nil {
		t.Fatal(err)
	}
	w, err := g.Watch(k, 0)
	if err != nil {
		t.Fatal(err)
	}

	type obs struct {
		seq   int64
		edges int
		fp    string
	}
	var mu sync.Mutex
	seen := map[int64]obs{}
	observed := func(seq int64) bool {
		mu.Lock()
		defer mu.Unlock()
		_, ok := seen[seq]
		return ok
	}
	record := func(o obs) error {
		mu.Lock()
		defer mu.Unlock()
		if prev, ok := seen[o.seq]; ok {
			if prev.edges != o.edges || prev.fp != o.fp {
				return fmt.Errorf("epoch %d served two different results:\n%q (%d edges)\n%q (%d edges)",
					o.seq, prev.fp, prev.edges, o.fp, o.edges)
			}
			return nil
		}
		seen[o.seq] = o
		return nil
	}

	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastSeq := int64(-1)
			for {
				select {
				case <-done:
					return
				default:
				}
				s := g.Latest()
				if s == nil {
					t.Error("no published epoch while serving")
					return
				}
				if s.Seq() < lastSeq {
					t.Errorf("epoch visibility went backwards: %d after %d", s.Seq(), lastSeq)
					return
				}
				lastSeq = s.Seq()
				fp, err := coreFingerprint(s.Graph, k)
				if err != nil {
					t.Errorf("query on pinned epoch %d: %v", s.Seq(), err)
					return
				}
				if err := record(obs{seq: s.Seq(), edges: s.NumEdges(), fp: fp}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	// Writer: append the tail through the watcher in small batches, each
	// publishing a new epoch. Between batches the writer waits (bounded)
	// for some reader to serve the epoch it just published, so the readers
	// provably observe many distinct epochs mid-churn rather than racing
	// straight to the final state.
	const batch = 8
	for i := cut; i < len(all); i += batch {
		j := min(i+batch, len(all))
		if _, err := w.Append(all[i:j]...); err != nil {
			t.Fatal(err)
		}
		seq := g.Latest().Seq()
		for wait := 0; wait < 20000 && !observed(seq) && !t.Failed(); wait++ {
			time.Sleep(time.Millisecond)
		}
	}
	close(done)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Quiesced verification: rebuild every observed epoch from scratch and
	// demand byte-identical fingerprints.
	if len(seen) < 2 {
		t.Fatalf("readers observed only %d distinct epochs; the race window never opened", len(seen))
	}
	for seq, o := range seen {
		rebuilt, err := tkc.NewGraph(all[:o.edges])
		if err != nil {
			t.Fatal(err)
		}
		want, err := coreFingerprint(rebuilt, k)
		if err != nil {
			t.Fatal(err)
		}
		if o.fp != want {
			t.Fatalf("epoch %d (%d edges): concurrent result differs from quiesced rebuild:\n got %q\nwant %q",
				seq, o.edges, o.fp, want)
		}
	}
	t.Logf("verified %d distinct epochs against quiesced rebuilds", len(seen))
}

// TestConcurrentWatcherReaders hammers the watcher's lock-free read path —
// Query().Count, Window, Stats — from several goroutines while the writer
// streams appends through Watcher.Append. Every read must succeed, window
// ends must be monotone per reader (batches are time-ordered), and after
// the stream the watcher must agree exactly with a one-shot query on the
// final graph.
func TestConcurrentWatcherReaders(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const k = 8
	all := cmEdges(t, 2000)
	cut := len(all) * 97 / 100
	g, err := tkc.NewGraph(all[:cut])
	if err != nil {
		t.Fatal(err)
	}
	w, err := g.Watch(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	done := make(chan struct{})
	var wg sync.WaitGroup
	var reads atomic.Int64
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastEnd := int64(0)
			for {
				select {
				case <-done:
					return
				default:
				}
				if _, err := w.Query().Count(ctx); err != nil {
					t.Errorf("watcher count: %v", err)
					return
				}
				_, we, err := w.Window()
				if err != nil {
					t.Errorf("watcher window: %v", err)
					return
				}
				if we < lastEnd {
					t.Errorf("watch window end went backwards: %d after %d", we, lastEnd)
					return
				}
				lastEnd = we
				_ = w.Stats()
				reads.Add(1)
			}
		}()
	}
	for i := cut; i < len(all); i += 8 {
		j := min(i+8, len(all))
		if _, err := w.Append(all[i:j]...); err != nil {
			t.Fatal(err)
		}
		// Bounded wait for read progress, so reads demonstrably interleave
		// with the churn instead of all landing after it.
		before := reads.Load()
		for wait := 0; wait < 20000 && reads.Load() == before && !t.Failed(); wait++ {
			time.Sleep(time.Millisecond)
		}
	}
	close(done)
	wg.Wait()
	if t.Failed() {
		return
	}
	if reads.Load() == 0 {
		t.Fatal("no concurrent read completed")
	}

	// Quiesced agreement on the final state.
	lo, hi := g.TimeSpan()
	want, err := g.Query(k).Window(lo, hi).Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := w.Query().Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cores != want.Cores || got.Edges != want.Edges {
		t.Fatalf("final watcher view cores=%d |R|=%d, one-shot cores=%d |R|=%d",
			got.Cores, got.Edges, want.Cores, want.Edges)
	}
}

// TestBatchAcrossEpochs: one RunBatch may mix requests pinned to
// different epochs of the same graph; each item answers for its own
// epoch's state.
func TestBatchAcrossEpochs(t *testing.T) {
	all := cmEdges(t, 1200)
	cut := len(all) * 3 / 4
	g, err := tkc.NewGraph(all[:cut])
	if err != nil {
		t.Fatal(err)
	}
	epochA := g.Publish()
	if _, err := g.Append(all[cut:]...); err != nil {
		t.Fatal(err)
	}
	epochB := g.Publish()
	if epochB.Seq() != epochA.Seq()+1 {
		t.Fatalf("epoch seqs %d -> %d", epochA.Seq(), epochB.Seq())
	}

	ctx := context.Background()
	mkReq := func(s *tkc.Snapshot) *tkc.Request {
		lo, hi := s.TimeSpan()
		return s.Query(2).Window(lo, hi).Project(tkc.ProjectCount)
	}
	res := g.RunBatch(ctx, []*tkc.Request{mkReq(epochA), mkReq(epochB)})
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
	}
	wantA, err := epochA.Query(2).Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantB, err := epochB.Query(2).Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res[0].Stats.Cores != wantA.Cores || res[0].Stats.Edges != wantA.Edges {
		t.Errorf("epoch A batch item: cores=%d |R|=%d, want %d/%d", res[0].Stats.Cores, res[0].Stats.Edges, wantA.Cores, wantA.Edges)
	}
	if res[1].Stats.Cores != wantB.Cores || res[1].Stats.Edges != wantB.Edges {
		t.Errorf("epoch B batch item: cores=%d |R|=%d, want %d/%d", res[1].Stats.Cores, res[1].Stats.Edges, wantB.Cores, wantB.Edges)
	}
	if wantA.Cores == wantB.Cores && wantA.Edges == wantB.Edges {
		t.Log("note: epochs A and B coincidentally agree; differential weak for this seed")
	}

	// A request from an unrelated graph still fails validation.
	other := reqGraph(t, 1, 10, 50)
	lo, hi := other.TimeSpan()
	bad := g.RunBatch(ctx, []*tkc.Request{other.Query(2).Window(lo, hi)})
	if bad[0].Err == nil {
		t.Error("request from a different graph was accepted into the batch")
	}
}

// TestSnapshotPinsPreparedAndStream: prepared queries and NDJSON streaming
// on a snapshot keep answering for the frozen epoch after the live graph
// moves on.
//
// tkc:mutates-frozen-ok: asserts that Append on a Snapshot is rejected with an error
func TestSnapshotPinsPreparedAndStream(t *testing.T) {
	all := cmEdges(t, 800)
	cut := len(all) * 3 / 4
	g, err := tkc.NewGraph(all[:cut])
	if err != nil {
		t.Fatal(err)
	}
	snap := g.Freeze()
	lo, hi := snap.TimeSpan()
	p, err := snap.Prepare(2, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	before, err := p.Query().Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantFP, err := coreFingerprint(snap.Graph, 2)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := g.Append(all[cut:]...); err != nil {
		t.Fatal(err)
	}
	if _, err := snap.Append(tkc.Edge{U: 1, V: 2, Time: hi + 100}); err == nil {
		t.Fatal("Append on a Snapshot succeeded")
	}

	after, err := p.Query().Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if before.Cores != after.Cores || before.Edges != after.Edges {
		t.Fatalf("prepared-on-snapshot drifted after live appends: %d/%d -> %d/%d",
			before.Cores, before.Edges, after.Cores, after.Edges)
	}
	gotFP, err := coreFingerprint(snap.Graph, 2)
	if err != nil {
		t.Fatal(err)
	}
	if gotFP != wantFP {
		t.Fatalf("snapshot drifted after live appends:\n got %q\nwant %q", gotFP, wantFP)
	}
	if g.NumEdges() == snap.NumEdges() {
		t.Fatal("live graph did not move past the snapshot; test is vacuous")
	}
	if g.Latest() != nil && g.Latest().Seq() < snap.Seq() {
		t.Fatal("published epoch older than an earlier freeze")
	}
}
