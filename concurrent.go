package temporalkcore

import (
	"sync/atomic"

	"temporalkcore/internal/phc"
	"temporalkcore/internal/qcache"
	"temporalkcore/internal/tgraph"
)

// epochHub carries the epoch-publication state shared between a live Graph
// and every Snapshot derived from it: the atomically published latest
// epoch readers serve from, and the serving cache of compiled CoreTime
// results every epoch's queries consult (nil when disabled).
type epochHub struct {
	latest atomic.Pointer[Snapshot]
	cache  atomic.Pointer[qcache.Cache]

	// lastHist is the most recently constructed historical PHC index of
	// this graph lineage, the patch oracle of the next HistoricalIndex
	// call: the index fingerprint pins the graph state it answers for, so
	// after an append the next build re-settles only the dirty
	// time-suffix past that state's frontier instead of rebuilding every
	// k slice. One index is retained per graph (the serving cache holds
	// any others); it is replaced wholesale on each build, never mutated.
	lastHist atomic.Pointer[phc.Index]

	// lastPin memoises the frozen epoch the historical tier most recently
	// pinned, so repeat pins of an unchanged never-published graph reuse
	// one freeze instead of copying the segment directories per call.
	lastPin atomic.Pointer[tgraph.Graph]
}

// newGraph wraps an internal graph as a public one with a fresh epoch hub.
// The serving cache starts enabled at its default budget; see
// SetCacheOptions.
func newGraph(tg *tgraph.Graph) *Graph {
	g := &Graph{g: tg, hub: &epochHub{}, origin: tg}
	g.hub.cache.Store(qcache.New(DefaultCacheMaxBytes))
	return g
}

// Snapshot is an immutable point-in-time view of a Graph under the
// snapshot-isolation model: the entire read API — Query and every
// execution mode, Prepare, RunBatch, Watch, CoreTimes, stats accessors —
// works on a Snapshot exactly as on the Graph it was frozen from, and
// keeps answering for that exact state while the live graph appends
// concurrently. Plans compiled from a Snapshot (requests, prepared
// queries, batches) are pinned to its epoch for their whole execution.
//
// A Snapshot is cheap: it copies only the graph's segment directories
// (O(V + pairs + timestamps) words) and shares the edge history arrays
// with the live graph; see the internal Freeze documentation for the
// memory model that makes the sharing safe. Snapshots need no explicit
// release — a retired epoch is reclaimed by the garbage collector once the
// last reader drops it (the refresh-table arenas inside a Watcher are
// refcounted and recycled more aggressively; see Watcher).
//
// Appending to a Snapshot returns an error; append to the live Graph and
// freeze again.
type Snapshot struct {
	*Graph
}

// Seq returns the epoch's mutation sequence number: the number of
// edge-adding appends the live graph had absorbed when this snapshot was
// frozen. It is the key callers use to pair a served result with the
// exact graph state that produced it.
func (s *Snapshot) Seq() int64 { return s.g.MutSeq() }

// Freeze returns a Snapshot of the graph's current state without
// publishing it. Freeze reads the mutable graph, so it must be called from
// the writer goroutine (or while no Append runs); the returned Snapshot
// may then be read from any goroutine, concurrently with further appends.
//
// tkc:frozensource
func (g *Graph) Freeze() *Snapshot {
	return &Snapshot{Graph: &Graph{g: g.g.Freeze(), hub: g.hub, origin: g.origin}}
}

// Publish freezes the graph's current state and publishes it as the
// latest epoch, retiring the previous one; it returns the new Snapshot.
// Like Freeze it is writer-only. Readers obtain the published epoch with
// Latest, so the writer's cadence of Publish calls is the granularity at
// which appended edges become visible to concurrent readers.
//
// Publishing also retires serving-cache entries of epochs older than the
// one being replaced: no Latest call can return those epochs anymore, so
// only a long-held Snapshot could still ask for them (it stays correct —
// its queries just rebuild instead of hitting the cache).
func (g *Graph) Publish() *Snapshot {
	prev := g.hub.latest.Load()
	s := g.Freeze()
	g.hub.latest.Store(s)
	if prev != nil {
		if c := g.cache(); c != nil {
			c.RetireBelow(prev.Seq())
		}
	}
	return s
}

// Latest returns the most recently published epoch, or nil when the graph
// has never been published. It is a single atomic load — safe from any
// goroutine, any number of times, concurrently with the writer — and the
// returned Snapshot stays consistent no matter how far the live graph
// moves on. Epoch visibility is monotone: once a reader has seen sequence
// number S, no later Latest call returns an older epoch.
//
// tkc:frozensource
func (g *Graph) Latest() *Snapshot { return g.hub.latest.Load() }
