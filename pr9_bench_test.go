package temporalkcore_test

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	tkc "temporalkcore"
)

// BenchmarkOpenWarm measures what the durability tier buys a restart on
// the CM replica: open a data directory and answer the first full-range
// historical query.
//
//   - warm: the directory holds a snapshot plus the warm cache spill, so
//     the open re-admits the persisted PHC entry and the first
//     HistoricalIndex call is a cache hit.
//   - cold: the same directory with the warm spill stripped — the open
//     recovers the graph identically but the first query pays a full PHC
//     build.
//
// Both subtests time OpenDir + HistoricalIndex; the ratio is the PR's
// ≥5x warm-restart acceptance criterion, gated in bench_gate.sh.
func BenchmarkOpenWarm(b *testing.B) {
	ctx := context.Background()
	base, tail := cmStream(b)
	full := append(append([]tkc.Edge(nil), base...), tail...)

	// prep builds a data directory holding the CM replica, a resident
	// full-range PHC index, and a snapshot (which spills the index).
	prep := func(b *testing.B) (dir string, lo, hi int64) {
		b.Helper()
		dir = b.TempDir()
		d, err := tkc.OpenDir(dir)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := d.Bootstrap(full); err != nil {
			b.Fatal(err)
		}
		lo, hi = d.Graph().TimeSpan()
		if _, err := d.Graph().HistoricalIndex(ctx, lo, hi); err != nil {
			b.Fatal(err)
		}
		if _, err := d.Snapshot(); err != nil {
			b.Fatal(err)
		}
		if err := d.Close(); err != nil {
			b.Fatal(err)
		}
		return dir, lo, hi
	}

	b.Run("warm", func(b *testing.B) {
		dir, lo, hi := prep(b)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d, err := tkc.OpenDir(dir)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := d.Graph().HistoricalIndex(ctx, lo, hi); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if d.WarmEntries() < 1 {
				b.Fatal("warm open re-admitted no cache entries")
			}
			d.Close()
			b.StartTimer()
		}
	})

	b.Run("cold", func(b *testing.B) {
		dir, lo, hi := prep(b)
		warm, err := filepath.Glob(filepath.Join(dir, "*.tkcc"))
		if err != nil || len(warm) == 0 {
			b.Fatalf("no warm spill to strip (%v, %v)", warm, err)
		}
		for _, f := range warm {
			if err := os.Remove(f); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d, err := tkc.OpenDir(dir)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := d.Graph().HistoricalIndex(ctx, lo, hi); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if d.WarmEntries() != 0 {
				b.Fatal("cold open unexpectedly found warm entries")
			}
			d.Close()
			b.StartTimer()
		}
	})
}

// BenchmarkPHCPartialRangePatch is the regression benchmark for the
// partial-range patch fix: an index covering only a time-suffix of the
// requested window must still serve as a patch oracle — rebuilding the
// uncovered prefix and reusing the clean overlap — instead of silently
// producing labels derived from out-of-range state.
//
// Setup builds the oracle on the ~90% time-suffix of the CM replica;
// the timed call asks for the full range, which extends backwards past
// the indexed start. patch times that call with the oracle in place,
// rebuild times the identical call on a lineage with no oracle. The
// ratio is the fix's ≥2x acceptance criterion, gated in bench_gate.sh.
func BenchmarkPHCPartialRangePatch(b *testing.B) {
	ctx := context.Background()
	base, tail := cmStream(b)
	full := append(append([]tkc.Edge(nil), base...), tail...)
	subLo := full[len(full)/10].Time // oracle range starts ~10% in

	probe, err := tkc.NewGraph(full)
	if err != nil {
		b.Fatal(err)
	}
	lo, hi := probe.TimeSpan()
	if subLo <= lo || subLo >= hi {
		b.Fatalf("degenerate sub-range start %d for span [%d, %d]", subLo, lo, hi)
	}

	b.Run("patch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			g, err := tkc.NewGraph(full)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := g.HistoricalIndex(ctx, subLo, hi); err != nil { // the sub-range oracle
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := g.HistoricalIndex(ctx, lo, hi); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			g, err := tkc.NewGraph(full)
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if _, err := g.HistoricalIndex(ctx, lo, hi); err != nil {
				b.Fatal(err)
			}
		}
	})
}
