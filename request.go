package temporalkcore

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"math"
	"sort"
	"time"

	"temporalkcore/internal/core"
	"temporalkcore/internal/enum"
	"temporalkcore/internal/qcache"
	"temporalkcore/internal/shard"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// Projection selects what each result Core carries. Narrower projections
// skip the label/time conversion work entirely, so counting workloads pay
// no materialisation cost.
type Projection int

const (
	// ProjectEdges populates Core.Edges (the default).
	ProjectEdges Projection = iota
	// ProjectVertices populates Core.Vertices with the core's distinct
	// vertex labels, sorted ascending.
	ProjectVertices
	// ProjectCount populates neither: only the tightest time interval and
	// the query statistics are reported.
	ProjectCount
)

// Request is the composable query builder of API v2: one request type that
// every execution engine shares. Build it with Graph.Query (one-shot),
// PreparedQuery.Query (reusing a CoreTime phase), Watcher.Query (the live
// sliding window), or HistoricalIndex.Query (snapshot k-cores from the PHC
// index), chain options, then execute with Seq, Collect, First or Count —
// all of which take a context.Context that cancels both query phases with
// a bounded poll stride.
//
//	cores, err := g.Query(3).Window(t0, t1).Collect(ctx)
//
//	for c, err := range g.Query(3).Window(t0, t1).Project(temporalkcore.ProjectVertices).Seq(ctx) {
//	    ...
//	    break // stops the engine; only consumed cores are materialised
//	}
//
// A Request is a mutable builder: chain methods from a single goroutine
// and do not share one Request between concurrent executions. Executing
// twice re-runs the query. Builder errors (bad k, conflicting options) are
// deferred and returned by the execution call.
//
// A compiled plan pins the graph epoch it started on: a request built from
// a Snapshot (or a PreparedQuery prepared on one) executes every phase
// against that frozen state, and a watcher request pins the watcher's
// current published view for its whole execution — concurrent appends
// never shift the data under a running query.
type Request struct {
	g *Graph
	k int

	start, end int64
	windowSet  bool

	proj    Projection
	algo    Algorithm
	algoSet bool
	limit   int

	h     int // > 0: snapshot (k,h)-core mode
	hix   *HistoricalIndex
	prep  *PreparedQuery
	watch *Watcher
	sview *ShardedView // non-nil: scatter-gather across the view's shards

	statsDst *QueryStats
	err      error
}

// Query starts a one-shot request for temporal k-cores over the whole
// graph history; narrow it with Window.
func (g *Graph) Query(k int) *Request {
	r := &Request{g: g, k: k, start: math.MinInt64, end: math.MaxInt64}
	if k < 1 {
		r.err = fmt.Errorf("temporalkcore: k must be >= 1, got %d", k)
	}
	return r
}

// Query starts a request that enumerates from the prepared CoreTime phase:
// the request's k and window are fixed to the prepared ones and only the
// enumeration runs per execution.
func (p *PreparedQuery) Query() *Request {
	start, end := p.Range()
	return &Request{g: p.g, k: p.k, start: start, end: end, prep: p}
}

// Query starts a request against the watcher's current sliding window. The
// view is refreshed (incrementally patched) before enumerating.
func (w *Watcher) Query() *Request {
	return &Request{g: w.g, k: w.k, watch: w}
}

// Query starts a snapshot k-core request answered from the historical PHC
// index: the single k-core of the snapshot over the requested window.
func (h *HistoricalIndex) Query(k int) *Request {
	r := h.g.Query(k)
	r.hix = h
	return r
}

// fail records the first builder error.
func (r *Request) fail(format string, args ...any) *Request {
	if r.err == nil {
		r.err = fmt.Errorf("temporalkcore: "+format, args...)
	}
	return r
}

// Window restricts the query to the raw (inclusive) time range
// [start, end]. Prepared and watcher requests have a fixed window and
// reject it.
func (r *Request) Window(start, end int64) *Request {
	if r.prep != nil {
		return r.fail("prepared queries fix the window at Prepare time")
	}
	if r.watch != nil {
		return r.fail("watcher queries follow the watch window")
	}
	r.start, r.end, r.windowSet = start, end, true
	return r
}

// Project selects what each result Core carries; see Projection.
func (r *Request) Project(p Projection) *Request {
	if p < ProjectEdges || p > ProjectCount {
		return r.fail("unknown projection %d", int(p))
	}
	r.proj = p
	return r
}

// Algorithm pins the enumeration strategy (AlgoEnum, AlgoEnumBase,
// AlgoOTCD) for one-shot requests. Prepared, watcher, snapshot and
// historical requests always use their own engine and reject it.
func (r *Request) Algorithm(a Algorithm) *Request {
	if r.prep != nil || r.watch != nil || r.hix != nil || r.h > 0 || r.sview != nil {
		return r.fail("Algorithm applies only to one-shot enumeration requests")
	}
	r.algo, r.algoSet = a, true
	return r
}

// EarlyStop stops the enumeration after n cores have been emitted. It is
// equivalent to breaking out of Seq after n results — the engine stops,
// remaining cores are never materialised — packaged for Collect/Count.
// n <= 0 removes the limit.
func (r *Request) EarlyStop(n int) *Request {
	if n < 0 {
		n = 0
	}
	r.limit = n
	return r
}

// Snapshot switches the request to the (k, h)-core model of Wu et al.: the
// single maximal subgraph of the snapshot over the window in which every
// vertex has >= k neighbours with >= h interactions each. h = 1 is the
// ordinary snapshot k-core. The result stream carries at most one Core.
// Cancellation is checked before the peel starts; the single O(E) peeling
// pass itself runs to completion (unlike the enumeration engines, it has
// no per-start-time stride to poll on).
func (r *Request) Snapshot(h int) *Request {
	if r.prep != nil || r.watch != nil || r.hix != nil || r.sview != nil {
		return r.fail("Snapshot applies only to one-shot requests")
	}
	if r.algoSet {
		return r.fail("Snapshot conflicts with Algorithm")
	}
	if h < 1 {
		return r.fail("h must be >= 1, got %d", h)
	}
	r.h = h
	return r
}

// Using answers the request from a prebuilt historical PHC index instead
// of enumerating: the single k-core of the snapshot over the window.
// Cancellation is checked before the index walk; the single bounded
// lookup pass itself runs to completion.
func (r *Request) Using(h *HistoricalIndex) *Request {
	if r.prep != nil || r.watch != nil || r.h > 0 || r.sview != nil {
		return r.fail("Using applies only to one-shot requests")
	}
	if r.algoSet {
		return r.fail("Using conflicts with Algorithm")
	}
	if h == nil {
		return r.fail("Using(nil) historical index")
	}
	if h.g.origin != r.g.origin {
		return r.fail("historical index belongs to a different graph")
	}
	r.hix = h
	return r
}

// Stats records the execution's QueryStats into dst when the stream ends
// (normally, early-stopped or cancelled), for executions like Seq and
// Collect that have no stats return value.
func (r *Request) Stats(dst *QueryStats) *Request {
	r.statsDst = dst
	return r
}

// Seq executes the request and returns the results as a pull stream: cores
// are produced one at a time as the loop consumes them, each Core (and its
// slices) owned by the consumer. Breaking out of the loop stops the engine,
// so early termination pays only for the cores actually consumed. A
// cancellation or engine error arrives as the final (Core{}, err) element.
func (r *Request) Seq(ctx context.Context) iter.Seq2[Core, error] {
	return func(yield func(Core, error) bool) {
		broke := false
		_, err := r.run(ctx, func(c Core) bool {
			cp := c
			cp.Edges = append([]Edge(nil), c.Edges...)
			cp.Vertices = append([]int64(nil), c.Vertices...)
			if !yield(cp, nil) {
				broke = true
				return false
			}
			return true
		})
		if err != nil && !broke {
			yield(Core{}, err)
		}
	}
}

// Collect executes the request and materialises every result. On error
// (including cancellation) it returns the cores collected so far together
// with the error.
func (r *Request) Collect(ctx context.Context) ([]Core, error) {
	var out []Core
	_, err := r.run(ctx, func(c Core) bool {
		cp := c
		cp.Edges = append([]Edge(nil), c.Edges...)
		cp.Vertices = append([]int64(nil), c.Vertices...)
		out = append(out, cp)
		return true
	})
	return out, err
}

// First executes the request with an implicit EarlyStop(1) and returns the
// first core, if any. The engine stops as soon as it is emitted, so on
// large result sets this costs the CoreTime phase plus O(1) enumeration.
func (r *Request) First(ctx context.Context) (Core, bool, error) {
	var first Core
	found := false
	_, err := r.run(ctx, func(c Core) bool {
		first = c
		first.Edges = append([]Edge(nil), c.Edges...)
		first.Vertices = append([]int64(nil), c.Vertices...)
		found = true
		return false
	})
	return first, found, err
}

// Count executes the request without materialising results and returns the
// statistics (distinct cores, |R|, index sizes, phase timings).
func (r *Request) Count(ctx context.Context) (QueryStats, error) {
	save := r.proj
	r.proj = ProjectCount
	qs, err := r.run(ctx, func(Core) bool { return true })
	r.proj = save
	return qs, err
}

// run compiles the request and executes it on its engine, pushing each
// result core to fn. The Core passed to fn reuses buffers between calls;
// public executors copy before handing cores out.
//
// tkc:allow-background: tolerates nil ctx from v1 callers
func (r *Request) run(ctx context.Context, fn func(Core) bool) (QueryStats, error) {
	var qs QueryStats
	if r.statsDst != nil {
		defer func() { *r.statsDst = qs }()
	}
	if r.err != nil {
		return qs, r.err
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if r.limit > 0 {
		inner := fn
		left := r.limit
		fn = func(c Core) bool {
			if !inner(c) {
				return false
			}
			left--
			return left > 0
		}
	}
	switch {
	case r.sview != nil:
		return r.runSharded(ctx, &qs, fn)
	case r.hix != nil:
		return r.runHistorical(ctx, &qs, fn)
	case r.h > 0:
		return r.runSnapshot(ctx, &qs, fn)
	case r.prep != nil:
		return r.runPrepared(ctx, &qs, fn)
	case r.watch != nil:
		return r.runWatch(ctx, &qs, fn)
	default:
		return r.runOneShot(ctx, &qs, fn)
	}
}

// projSink converts engine emissions (compressed windows + edge ids) into
// public Cores under the request's projection and forwards them to fn.
type projSink struct {
	g    *tgraph.Graph
	proj Projection
	fn   func(Core) bool
	qs   *QueryStats

	ebuf []Edge
	vbuf []int64
	mark []bool
}

func (s *projSink) Emit(tti tgraph.Window, eids []tgraph.EID) bool {
	s.qs.Cores++
	s.qs.Edges += int64(len(eids))
	rs, re := s.g.RawWindow(tti)
	c := Core{Start: rs, End: re}
	switch s.proj {
	case ProjectEdges:
		s.ebuf = s.ebuf[:0]
		for _, e := range eids {
			te := s.g.Edge(e)
			s.ebuf = append(s.ebuf, Edge{
				U:    s.g.Label(te.U),
				V:    s.g.Label(te.V),
				Time: s.g.RawTime(te.T),
			})
		}
		c.Edges = s.ebuf
	case ProjectVertices:
		if s.mark == nil {
			s.mark = make([]bool, s.g.NumVertices())
		}
		s.vbuf = s.vbuf[:0]
		for _, e := range eids {
			te := s.g.Edge(e)
			if !s.mark[te.U] {
				s.mark[te.U] = true
				s.vbuf = append(s.vbuf, s.g.Label(te.U))
			}
			if !s.mark[te.V] {
				s.mark[te.V] = true
				s.vbuf = append(s.vbuf, s.g.Label(te.V))
			}
		}
		for _, e := range eids { // reset marks for the next core
			te := s.g.Edge(e)
			s.mark[te.U], s.mark[te.V] = false, false
		}
		sort.Slice(s.vbuf, func(a, b int) bool { return s.vbuf[a] < s.vbuf[b] })
		c.Vertices = s.vbuf
	}
	return s.fn(c)
}

// runSharded executes the request as a scatter-gather over the view's
// shards: the plan pins the view's epoch and directory, each overlapping
// shard runs its span on its replica pool (cached local CoreTime index +
// boundary re-settle for sealed shards), and the gathered stream — merged
// in shard order — is byte-identical to the unsharded enumeration of the
// same window on the same epoch.
func (r *Request) runSharded(ctx context.Context, qs *QueryStats, fn func(Core) bool) (QueryStats, error) {
	v := r.sview
	w, err := r.g.window(r.start, r.end)
	if err != nil {
		return *qs, err
	}
	sink := &projSink{g: r.g.g, proj: r.proj, fn: fn, qs: qs}
	st, err := v.sg.rt.Query(ctx, shard.Params{
		G: r.g.g, K: r.k, W: w, Dir: v.dir, Cache: r.g.cache(),
	}, sink.Emit)
	qs.Shards, qs.Patched = st.Spans, st.Patched
	qs.CoreTime, qs.EnumTime = st.CoreTime, st.EnumTime
	qs.CacheHit = st.Spans > 0 && st.CacheHits == st.Spans
	return *qs, err
}

// runOneShot executes the request through the core engine: CoreTime phase
// plus enumeration, both on pooled scratch and cancellable via ctx. With
// the serving cache enabled, the CoreTime phase is consulted from — and on
// a miss inserted into — the cache under (epoch seq, k, window, algo), so
// a repeat query on the same graph state pays only the enumeration.
func (r *Request) runOneShot(ctx context.Context, qs *QueryStats, fn func(Core) bool) (QueryStats, error) {
	w, err := r.g.window(r.start, r.end)
	if err != nil {
		return *qs, err
	}
	sink := &projSink{g: r.g.g, proj: r.proj, fn: fn, qs: qs}
	// A key whose tables are known to exceed the whole cache budget takes
	// the uncached pooled-scratch path below: rebuilding retained tables
	// that can never be admitted would be strictly worse than both.
	if c := r.g.cache(); c != nil && cacheable(r.algo) {
		if key := r.g.cacheKey(r.k, w, r.algo); !c.Uncacheable(key) {
			ent, how, err := c.GetOrBuild(ctx, key, func() (*qcache.Entry, error) {
				return r.g.buildCacheEntry(ctx, r.k, w)
			})
			if err != nil {
				return *qs, err
			}
			qs.CacheHit = how != qcache.Built
			qs.CacheShared = how == qcache.Shared
			if how == qcache.Built {
				qs.CoreTime = ent.CoreTime
			}
			qs.VCTSize, qs.ECSSize = ent.Ix.Size(), ent.Ecs.Size()
			s := core.GetScratch()
			defer core.PutScratch(s)
			st, err := core.EnumeratePrebuilt(r.g.g, ent.Ix, ent.Ecs, sink, core.Options{Ctx: ctx}, s)
			qs.EnumTime = st.EnumTime
			return *qs, err
		}
	}
	st, err := core.Query(r.g.g, r.k, w, sink, core.Options{Algorithm: r.algo, Ctx: ctx})
	if err != nil {
		return *qs, err
	}
	qs.VCTSize, qs.ECSSize = st.VCTSize, st.ECSSize
	qs.CoreTime, qs.EnumTime = st.CoreTime, st.EnumTime
	return *qs, nil
}

// runPrepared re-enumerates the prepared CoreTime tables; only EnumTime is
// paid per execution (see PreparedQuery.PrepareTime).
func (r *Request) runPrepared(ctx context.Context, qs *QueryStats, fn func(Core) bool) (QueryStats, error) {
	p := r.prep
	qs.VCTSize, qs.ECSSize = p.ix.Size(), p.ecs.Size()
	if err := ctx.Err(); err != nil {
		return *qs, err
	}
	sink := &projSink{g: p.g.g, proj: r.proj, fn: fn, qs: qs}
	s := enum.GetScratch()
	defer enum.PutScratch(s)
	began := time.Now()
	_, cancelled := enum.EnumerateStop(p.g.g, p.ecs, sink, s, core.StopFromCtx(ctx))
	qs.EnumTime = time.Since(began)
	if cancelled {
		return *qs, ctx.Err()
	}
	return *qs, nil
}

// runWatch pins the watcher's current table view — the epoch the compiled
// plan executes against, held stable across concurrent writer refreshes —
// and enumerates it with pooled per-call scratch, so any number of watcher
// queries run concurrently with each other and with the appending writer.
// A stale view is repaired first (incrementally patched, cancellable via
// ctx with a bounded poll stride).
func (r *Request) runWatch(ctx context.Context, qs *QueryStats, fn func(Core) bool) (QueryStats, error) {
	w := r.watch
	if err := ctx.Err(); err != nil {
		return *qs, err
	}
	v, release, err := w.acquireView(core.StopFromCtx(ctx))
	if err != nil {
		if errors.Is(err, vct.ErrStopped) {
			if cerr := ctx.Err(); cerr != nil {
				err = cerr
			}
		}
		return *qs, err
	}
	defer release()
	qs.VCTSize, qs.ECSSize = v.Ix.Size(), v.Ecs.Size()
	sink := &projSink{g: v.G, proj: r.proj, fn: fn, qs: qs}
	s := enum.GetScratch()
	defer enum.PutScratch(s)
	began := time.Now()
	_, cancelled := enum.EnumerateStop(v.G, v.Ecs, sink, s, core.StopFromCtx(ctx))
	qs.EnumTime = time.Since(began)
	if cancelled {
		return *qs, ctx.Err()
	}
	return *qs, nil
}

// emitSnapshot assembles the single snapshot core of a window from its
// vertex ids or edge ids (whichever the projection needs) and emits it —
// the shared tail of the (k, h)-core and historical PHC engines. An empty
// core emits nothing. g is the graph state the ids refer to — the live
// epoch for (k, h)-cores, the pinned epoch for historical indexes.
func (r *Request) emitSnapshot(qs *QueryStats, fn func(Core) bool, g *tgraph.Graph, w tgraph.Window, vids []tgraph.VID, eids []tgraph.EID) {
	rs, re := g.RawWindow(w)
	c := Core{Start: rs, End: re}
	if r.proj == ProjectVertices {
		if len(vids) == 0 {
			return
		}
		labels := make([]int64, len(vids))
		for i, v := range vids {
			labels[i] = g.Label(v)
		}
		sort.Slice(labels, func(a, b int) bool { return labels[a] < labels[b] })
		c.Vertices = labels
	} else {
		if len(eids) == 0 {
			return
		}
		qs.Edges = int64(len(eids))
		if r.proj == ProjectEdges {
			edges := make([]Edge, len(eids))
			for i, e := range eids {
				te := g.Edge(e)
				edges[i] = Edge{U: g.Label(te.U), V: g.Label(te.V), Time: g.RawTime(te.T)}
			}
			c.Edges = edges
		}
	}
	qs.Cores = 1
	fn(c)
}
