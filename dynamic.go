package temporalkcore

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"temporalkcore/internal/dyn"
	"temporalkcore/internal/tgraph"
)

// Append extends the graph in place with a batch of edges whose timestamps
// are all at or after the graph's current maximum (streams must arrive in
// non-decreasing time order; an out-of-order batch is rejected and leaves
// the graph untouched). Self loops are dropped and exact (u,v,t)
// duplicates are collapsed, matching NewGraph. It returns the number of
// temporal edges actually added.
//
// Append must not run concurrently with queries on the same Graph.
// PreparedQuery and HistoricalIndex values built before an Append keep
// answering for the graph as of their construction; windows touching the
// append frontier may be stale. Use Watch for a view that follows appends
// incrementally.
func (g *Graph) Append(edges ...Edge) (int, error) {
	raw := make([]tgraph.RawEdge, len(edges))
	for i, e := range edges {
		raw[i] = tgraph.RawEdge{U: e.U, V: e.V, Time: e.Time}
	}
	st, err := g.g.Append(raw)
	if err != nil {
		return 0, fmt.Errorf("temporalkcore: %w", err)
	}
	return st.Added, nil
}

// AppendReader incrementally parses an edge stream and appends it to a
// graph in batches. Two line formats are auto-detected per line:
//
//   - NDJSON: {"u": 1, "v": 2, "t": 42}
//   - text:   "u v t" (or "u v w t" with the weight ignored),
//     whitespace-separated
//
// Blank lines and lines starting with '#' or '%' are skipped. Timestamps
// must be non-decreasing across the stream, as required by Append.
type AppendReader struct {
	g *Graph

	// BatchSize caps the number of edges one ReadBatch call appends.
	// Defaults to 1024.
	BatchSize int

	sc     *bufio.Scanner
	lineNo int
	total  int
	buf    []Edge
}

// NewAppendReader wraps r for batched appends into g.
func NewAppendReader(g *Graph, r io.Reader) *AppendReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	return &AppendReader{g: g, BatchSize: 1024, sc: sc}
}

// ReadBatch parses up to BatchSize edges and appends them as one batch.
// It returns the number of edges added (after self-loop and duplicate
// collapsing) and io.EOF once the stream is exhausted and nothing was
// appended.
func (ar *AppendReader) ReadBatch() (int, error) {
	limit := ar.BatchSize
	if limit <= 0 {
		limit = 1024
	}
	ar.buf = ar.buf[:0]
	for len(ar.buf) < limit && ar.sc.Scan() {
		ar.lineNo++
		line := strings.TrimSpace(ar.sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		e, err := parseEdgeLine(line)
		if err != nil {
			return 0, fmt.Errorf("temporalkcore: stream line %d: %w", ar.lineNo, err)
		}
		ar.buf = append(ar.buf, e)
	}
	if err := ar.sc.Err(); err != nil {
		return 0, fmt.Errorf("temporalkcore: reading edge stream: %w", err)
	}
	if len(ar.buf) == 0 {
		return 0, io.EOF
	}
	added, err := ar.g.Append(ar.buf...)
	if err != nil {
		return 0, err
	}
	ar.total += added
	return added, nil
}

// Total returns the number of edges appended so far.
func (ar *AppendReader) Total() int { return ar.total }

// ParseEdgeLine parses one line of an edge stream in the formats accepted
// by AppendReader (NDJSON or whitespace text). ok is false for blank and
// comment lines, which carry no edge. Tools tailing streams themselves
// (for example to bootstrap a graph before switching to an AppendReader)
// share the format through this function.
func ParseEdgeLine(line string) (e Edge, ok bool, err error) {
	line = strings.TrimSpace(line)
	if line == "" || line[0] == '#' || line[0] == '%' {
		return Edge{}, false, nil
	}
	e, err = parseEdgeLine(line)
	return e, err == nil, err
}

func parseEdgeLine(line string) (Edge, error) {
	if line[0] == '{' {
		var rec struct {
			U *int64 `json:"u"`
			V *int64 `json:"v"`
			T *int64 `json:"t"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return Edge{}, fmt.Errorf("bad NDJSON edge: %w", err)
		}
		if rec.U == nil || rec.V == nil || rec.T == nil {
			return Edge{}, fmt.Errorf("NDJSON edge needs \"u\", \"v\" and \"t\" fields")
		}
		return Edge{U: *rec.U, V: *rec.V, Time: *rec.T}, nil
	}
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Edge{}, fmt.Errorf("want >= 3 columns (u v t), got %d", len(fields))
	}
	tcol := 2
	if len(fields) >= 4 {
		tcol = 3 // KONECT style "u v w t"
	}
	u, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return Edge{}, fmt.Errorf("bad vertex %q: %v", fields[0], err)
	}
	v, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Edge{}, fmt.Errorf("bad vertex %q: %v", fields[1], err)
	}
	t, err := strconv.ParseInt(fields[tcol], 10, 64)
	if err != nil {
		return Edge{}, fmt.Errorf("bad timestamp %q: %v", fields[tcol], err)
	}
	return Edge{U: u, V: v, Time: t}, nil
}

// Watcher is a live view of the temporal k-cores in a sliding window at
// the graph's time frontier. After each append it re-targets the window to
// the trailing Span raw timestamps and patches its CoreTime tables
// incrementally (internal/dyn) instead of rebuilding them, so per-batch
// refresh cost follows the size of the change, not the history.
//
// A Watcher is single-writer: its methods must not run concurrently with
// each other or with appends to the underlying graph.
type Watcher struct {
	g    *Graph
	k    int
	span int64
	dix  *dyn.Index
}

// WatchStats counts how the watcher's refreshes were served.
type WatchStats struct {
	Patches  int // incremental patched refreshes
	Rebuilds int // full table rebuilds (the initial build included)
	Noops    int // refreshes that found the tables current

	PatchTime   time.Duration
	RebuildTime time.Duration
}

// Watch creates a live view of the temporal k-cores in the trailing span
// raw timestamps (for example, span=3600 on second-resolution data watches
// the last hour). span <= 0 watches the entire history.
func (g *Graph) Watch(k int, span int64) (*Watcher, error) {
	if k < 1 {
		return nil, fmt.Errorf("temporalkcore: k must be >= 1, got %d", k)
	}
	w := &Watcher{g: g, k: k, span: span}
	dix, err := dyn.New(g.g, k, w.target())
	if err != nil {
		return nil, err
	}
	w.dix = dix
	return w, nil
}

// target is the compressed window currently covered by the watch span.
func (w *Watcher) target() tgraph.Window {
	tg := w.g.g
	if w.span <= 0 {
		return tg.FullWindow()
	}
	maxRaw := tg.RawTime(tg.TMax())
	s := tg.RankCeil(maxRaw - w.span + 1)
	if s < 1 {
		s = 1
	}
	return tgraph.Window{Start: s, End: tg.TMax()}
}

// Append appends a batch of edges to the underlying graph (see
// Graph.Append) and refreshes the view to the new time frontier.
func (w *Watcher) Append(edges ...Edge) (int, error) {
	n, err := w.g.Append(edges...)
	if err != nil {
		return n, err
	}
	return n, w.dix.Refresh(w.target())
}

// refresh brings the tables current; it also repairs staleness caused by
// appends that bypassed the watcher (direct Graph.Append calls).
func (w *Watcher) refresh() error {
	t := w.target()
	if !w.dix.Stale(t) {
		return nil
	}
	return w.dix.Refresh(t)
}

// K returns the watched core parameter.
func (w *Watcher) K() int { return w.k }

// Span returns the watched raw-time span (0 = entire history).
func (w *Watcher) Span() int64 { return w.span }

// Window returns the raw time range the view currently covers.
func (w *Watcher) Window() (start, end int64, err error) {
	if err := w.refresh(); err != nil {
		return 0, 0, err
	}
	start, end = w.g.g.RawWindow(w.dix.Window())
	return start, end, nil
}

// CoresFunc streams every distinct temporal k-core of the current window
// to fn; see Graph.CoresFunc. The view is refreshed first if stale.
//
// Deprecated: use the v2 builder, which adds context cancellation and
// projections: for c, err := range w.Query().Seq(ctx).
func (w *Watcher) CoresFunc(fn func(Core) bool) (QueryStats, error) {
	return w.Query().run(context.Background(), fn)
}

// Cores materialises every distinct temporal k-core of the current window.
//
// Deprecated: use the v2 builder: w.Query().Collect(ctx).
func (w *Watcher) Cores() ([]Core, error) {
	out, err := w.Query().Collect(context.Background())
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CountCores counts the distinct temporal k-cores of the current window
// and their total edge size without materialising results.
//
// Deprecated: use the v2 builder: w.Query().Count(ctx).
func (w *Watcher) CountCores() (QueryStats, error) {
	return w.Query().Count(context.Background())
}

// Stats returns counters describing how refreshes were served; a healthy
// streaming workload shows mostly patches.
func (w *Watcher) Stats() WatchStats {
	st := w.dix.Stats()
	return WatchStats{
		Patches:     st.Patches,
		Rebuilds:    st.Rebuilds,
		Noops:       st.Noops,
		PatchTime:   st.PatchTime,
		RebuildTime: st.RebuildTime,
	}
}
