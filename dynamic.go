package temporalkcore

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"temporalkcore/internal/dyn"
	"temporalkcore/internal/tgraph"
)

// Append extends the graph in place with a batch of edges whose timestamps
// are all at or after the graph's current maximum (streams must arrive in
// non-decreasing time order; an out-of-order batch is rejected and leaves
// the graph untouched). Self loops are dropped and exact (u,v,t)
// duplicates are collapsed, matching NewGraph. It returns the number of
// temporal edges actually added.
//
// Memory model: Append must not run concurrently with queries on the same
// Graph value — but it never disturbs a Snapshot. Append writes only
// memory no frozen epoch references (array growth past frozen lengths,
// per-segment gap capacity beyond frozen segment ends), so one goroutine
// may Append while any number of goroutines query epochs obtained from
// Freeze, Publish or Latest, with no locking. Appended edges become
// visible to those readers only at the next Publish (or Watcher.Append,
// which publishes internally). Appending to a frozen Snapshot is an error.
//
// PreparedQuery and HistoricalIndex values built before an Append keep
// answering for the graph as of their construction; windows touching the
// append frontier may be stale. Use Watch for a view that follows appends
// incrementally.
//
// tkc:mutates
func (g *Graph) Append(edges ...Edge) (int, error) {
	raw := make([]tgraph.RawEdge, len(edges))
	for i, e := range edges {
		raw[i] = tgraph.RawEdge{U: e.U, V: e.V, Time: e.Time}
	}
	st, err := g.g.Append(raw)
	if err != nil {
		return 0, fmt.Errorf("temporalkcore: %w", err)
	}
	return st.Added, nil
}

// AppendSink is anything that can absorb an append batch with Graph.Append
// semantics: *Graph, *Watcher and *DurableGraph all implement it, so stream
// ingestion (AppendReader) and the serving layer route batches through
// whichever tier the deployment uses — plain in-memory, live-view
// publishing, or WAL-logged durable — without caring which.
type AppendSink interface {
	Append(edges ...Edge) (int, error)
}

// AppendReader incrementally parses an edge stream and appends it to a
// graph in batches. Two line formats are auto-detected per line:
//
//   - NDJSON: {"u": 1, "v": 2, "t": 42}
//   - text:   "u v t" (or "u v w t" with the weight ignored),
//     whitespace-separated
//
// Blank lines and lines starting with '#' or '%' are skipped. Timestamps
// must be non-decreasing across the stream, as required by Append.
type AppendReader struct {
	g *Graph

	// BatchSize caps the number of edges one ReadBatch call appends.
	// Defaults to 1024.
	BatchSize int

	// Via, when non-nil, routes every batch through Watcher.Append instead
	// of Graph.Append, so each batch publishes a fresh epoch and refreshes
	// the watch window — required when concurrent readers serve queries
	// while the stream is ingested. Via takes precedence over Sink.
	Via *Watcher

	// Sink, when non-nil (and Via is nil), receives every batch instead of
	// the graph — typically a *DurableGraph, so each batch is WAL-logged
	// before it is applied.
	Sink AppendSink

	sc     *bufio.Scanner
	lineNo int
	total  int
	buf    []Edge
}

// NewAppendReader wraps r for batched appends into g.
func NewAppendReader(g *Graph, r io.Reader) *AppendReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	return &AppendReader{g: g, BatchSize: 1024, sc: sc}
}

// ReadBatch parses up to BatchSize edges and appends them as one batch.
// It returns the number of edges added (after self-loop and duplicate
// collapsing) and io.EOF once the stream is exhausted and nothing was
// appended.
func (ar *AppendReader) ReadBatch() (int, error) {
	limit := ar.BatchSize
	if limit <= 0 {
		limit = 1024
	}
	ar.buf = ar.buf[:0]
	for len(ar.buf) < limit && ar.sc.Scan() {
		ar.lineNo++
		line := strings.TrimSpace(ar.sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		e, err := parseEdgeLine(line)
		if err != nil {
			return 0, fmt.Errorf("temporalkcore: stream line %d: %w", ar.lineNo, err)
		}
		ar.buf = append(ar.buf, e)
	}
	if err := ar.sc.Err(); err != nil {
		return 0, fmt.Errorf("temporalkcore: reading edge stream: %w", err)
	}
	if len(ar.buf) == 0 {
		return 0, io.EOF
	}
	var added int
	var err error
	switch {
	case ar.Via != nil:
		added, err = ar.Via.Append(ar.buf...)
	case ar.Sink != nil:
		added, err = ar.Sink.Append(ar.buf...)
	default:
		added, err = ar.g.Append(ar.buf...)
	}
	if err != nil {
		return 0, err
	}
	ar.total += added
	return added, nil
}

// Total returns the number of edges appended so far.
func (ar *AppendReader) Total() int { return ar.total }

// ParseEdgeLine parses one line of an edge stream in the formats accepted
// by AppendReader (NDJSON or whitespace text). ok is false for blank and
// comment lines, which carry no edge. Tools tailing streams themselves
// (for example to bootstrap a graph before switching to an AppendReader)
// share the format through this function.
func ParseEdgeLine(line string) (e Edge, ok bool, err error) {
	line = strings.TrimSpace(line)
	if line == "" || line[0] == '#' || line[0] == '%' {
		return Edge{}, false, nil
	}
	e, err = parseEdgeLine(line)
	return e, err == nil, err
}

func parseEdgeLine(line string) (Edge, error) {
	if line[0] == '{' {
		var rec struct {
			U *int64 `json:"u"`
			V *int64 `json:"v"`
			T *int64 `json:"t"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return Edge{}, fmt.Errorf("bad NDJSON edge: %w", err)
		}
		if rec.U == nil || rec.V == nil || rec.T == nil {
			return Edge{}, fmt.Errorf("NDJSON edge needs \"u\", \"v\" and \"t\" fields")
		}
		return Edge{U: *rec.U, V: *rec.V, Time: *rec.T}, nil
	}
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Edge{}, fmt.Errorf("want >= 3 columns (u v t), got %d", len(fields))
	}
	tcol := 2
	if len(fields) >= 4 {
		tcol = 3 // KONECT style "u v w t"
	}
	u, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return Edge{}, fmt.Errorf("bad vertex %q: %v", fields[0], err)
	}
	v, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Edge{}, fmt.Errorf("bad vertex %q: %v", fields[1], err)
	}
	t, err := strconv.ParseInt(fields[tcol], 10, 64)
	if err != nil {
		return Edge{}, fmt.Errorf("bad timestamp %q: %v", fields[tcol], err)
	}
	return Edge{U: u, V: v, Time: t}, nil
}

// Watcher is a live view of the temporal k-cores in a sliding window at
// the graph's time frontier. After each append it re-targets the window to
// the trailing Span raw timestamps and patches its CoreTime tables
// incrementally (internal/dyn) instead of rebuilding them, so per-batch
// refresh cost follows the size of the change, not the history.
//
// Concurrency: a Watcher separates one writer from many readers. Append
// (and implicit stale-repair) is writer-side — one goroutine at a time,
// the same one that appends the graph. The query methods (Query and the
// deprecated Cores/CoresFunc/CountCores, Window) are the read path: they
// are safe from any number of goroutines concurrently with the writer, and
// in steady state they are lock-free — each query pins the current
// refcounted table view (built against a published graph epoch) with one
// atomic operation, serves from it even if the writer publishes newer
// views meanwhile, and releases it when done; a retired view's arena is
// recycled when its last reader drains. Readers observe batches atomically
// (a query sees a batch entirely or not at all) with monotone visibility.
//
// The one exception to lock-freedom is repairing staleness caused by
// appends that bypassed the watcher (direct Graph.Append): a reader then
// patches the tables itself under the writer lock, which is only safe when
// no concurrent writer exists — under concurrent serving, route every
// append through Watcher.Append.
type Watcher struct {
	g    *Graph
	k    int
	span int64
	dix  *dyn.Index

	// mu is the writer lock: it serialises Append, explicit refreshes and
	// reader-side stale repair. The steady-state read path never takes it.
	mu sync.Mutex
}

// WatchStats counts how the watcher's refreshes were served.
type WatchStats struct {
	Patches  int // incremental patched refreshes
	Rebuilds int // full table rebuilds (the initial build included)
	Noops    int // refreshes that found the tables current
	// CacheAdopts counts refreshes served straight from the graph's
	// serving cache: the tables for the exact (epoch seq, k, window)
	// target were resident, so nothing was patched or rebuilt.
	CacheAdopts int

	PatchTime   time.Duration
	RebuildTime time.Duration
}

// Watch creates a live view of the temporal k-cores in the trailing span
// raw timestamps (for example, span=3600 on second-resolution data watches
// the last hour). span <= 0 watches the entire history.
//
// Watch is writer-side: on a live graph it publishes the current state as
// an epoch (see Publish) and binds the initial table view to it, so
// concurrent readers never touch the mutable graph.
func (g *Graph) Watch(k int, span int64) (*Watcher, error) {
	if k < 1 {
		return nil, fmt.Errorf("temporalkcore: k must be >= 1, got %d", k)
	}
	w := &Watcher{g: g, k: k, span: span}
	at := g.g
	if !at.Frozen() {
		at = g.Publish().Graph.g
	}
	dix, err := dyn.New(at, k, w.targetAt(at))
	if err != nil {
		return nil, err
	}
	// The watcher and the one-shot/prepared/batch paths share the graph's
	// serving cache: refreshes insert their patched tables (and adopt
	// resident entries), so snapshot queries on the watch window skip
	// their CoreTime phase, and reader-side repairs reuse builds done by
	// anyone else.
	dix.SetCache(g.cache())
	w.dix = dix
	return w, nil
}

// targetAt is the compressed window covered by the watch span on graph
// state tg (the live graph under the writer lock, or a frozen epoch).
func (w *Watcher) targetAt(tg *tgraph.Graph) tgraph.Window {
	if w.span <= 0 {
		return tg.FullWindow()
	}
	maxRaw := tg.RawTime(tg.TMax())
	s := tg.RankCeil(maxRaw - w.span + 1)
	if s < 1 {
		s = 1
	}
	return tgraph.Window{Start: s, End: tg.TMax()}
}

// Append appends a batch of edges to the underlying graph (see
// Graph.Append), publishes the new state as the graph's latest epoch and
// refreshes the view to the new time frontier. Readers keep serving the
// previous epoch lock-free until the refreshed view is published, then
// pick up the new one — they never block on the writer and never see a
// partially applied batch.
func (w *Watcher) Append(edges ...Edge) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	n, err := w.g.Append(edges...)
	if err != nil || n == 0 {
		return n, err
	}
	ep := w.g.Publish()
	return n, w.dix.RefreshAt(ep.Graph.g, w.targetAt(ep.Graph.g), nil)
}

// acquireView pins the current table view for a reader, returning the
// release closure the reader must call when done. The fast path — the view
// is current — is lock-free. A stale view (the graph advanced without the
// watcher noticing, i.e. a direct Graph.Append) is repaired under the
// writer lock first; while a concurrent writer holds that lock the reader
// instead serves the still-published previous epoch rather than blocking.
// stop cancels a repair patch mid-settle (the caller maps vct.ErrStopped
// to its context error).
func (w *Watcher) acquireView(stop func() bool) (*dyn.View, func(), error) {
	for {
		v, release := w.dix.Acquire()
		if v.Seq == w.g.g.MutSeq() {
			return v, release, nil
		}
		if w.mu.TryLock() {
			release()
		} else {
			// A writer is mid-append or mid-refresh. Its batch becomes
			// visible when it publishes; snapshot isolation lets us serve
			// the current epoch-bound view meanwhile.
			if v.G.Frozen() {
				return v, release, nil
			}
			// The view is bound to the mutable graph (never-published
			// usage): wait for the writer rather than race it.
			release()
			w.mu.Lock()
		}
		// Under the writer lock: repair if still stale, then retry. The
		// repair publishes the graph's current state as a fresh epoch and
		// binds the new view to it, never to the mutable graph — a view
		// published here must stay safe for fast-path readers even if the
		// caller later goes concurrent.
		var err error
		if w.dix.StaleAt(w.g.g, w.targetAt(w.g.g)) {
			at := w.g.g
			if !at.Frozen() {
				at = w.g.Publish().Graph.g
			}
			err = w.dix.RefreshAt(at, w.targetAt(at), stop)
		}
		w.mu.Unlock()
		if err != nil {
			return nil, nil, err
		}
	}
}

// K returns the watched core parameter.
func (w *Watcher) K() int { return w.k }

// Span returns the watched raw-time span (0 = entire history).
func (w *Watcher) Span() int64 { return w.span }

// Window returns the raw time range the view currently covers. Like the
// query methods it serves from the pinned view, so it is safe for
// concurrent use with the writer.
func (w *Watcher) Window() (start, end int64, err error) {
	v, release, err := w.acquireView(nil)
	if err != nil {
		return 0, 0, err
	}
	defer release()
	start, end = v.G.RawWindow(v.W)
	return start, end, nil
}

// CoresFunc streams every distinct temporal k-core of the current window
// to fn; see Graph.CoresFunc. The view is refreshed first if stale.
//
// Deprecated: use the v2 builder, which adds context cancellation and
// projections: for c, err := range w.Query().Seq(ctx).
//
// tkc:allow-background: deprecated v1 shim; the v2 builder threads ctx
func (w *Watcher) CoresFunc(fn func(Core) bool) (QueryStats, error) {
	return w.Query().run(context.Background(), fn)
}

// Cores materialises every distinct temporal k-core of the current window.
//
// Deprecated: use the v2 builder: w.Query().Collect(ctx).
//
// tkc:allow-background: deprecated v1 shim; the v2 builder threads ctx
func (w *Watcher) Cores() ([]Core, error) {
	out, err := w.Query().Collect(context.Background())
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CountCores counts the distinct temporal k-cores of the current window
// and their total edge size without materialising results.
//
// Deprecated: use the v2 builder: w.Query().Count(ctx).
//
// tkc:allow-background: deprecated v1 shim; the v2 builder threads ctx
func (w *Watcher) CountCores() (QueryStats, error) {
	return w.Query().Count(context.Background())
}

// Stats returns counters describing how refreshes were served; a healthy
// streaming workload shows mostly patches. It takes the writer lock
// briefly, so it may be called from any goroutine.
func (w *Watcher) Stats() WatchStats {
	w.mu.Lock()
	st := w.dix.Stats()
	w.mu.Unlock()
	return WatchStats{
		Patches:     st.Patches,
		Rebuilds:    st.Rebuilds,
		Noops:       st.Noops,
		CacheAdopts: st.CacheAdopts,
		PatchTime:   st.PatchTime,
		RebuildTime: st.RebuildTime,
	}
}
