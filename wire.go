package temporalkcore

import (
	"fmt"
	"math"
)

// QueryJSON is the wire-format description of a one-shot Request: the JSON
// body a serving layer accepts over the network and compiles into the v2
// builder. Fields mirror the builder verbs — k, an optional inclusive raw
// time window (omitted bounds default to the whole history), a projection,
// an algorithm and an early-stop limit. The zero value of every optional
// field means "builder default", so the minimal useful body is {"k": 3}.
//
// Serving layers may extend the body with transport concerns (epoch
// pinning, deadlines) by embedding QueryJSON in their own request struct;
// the mapping here covers exactly what the engine needs.
type QueryJSON struct {
	K         int    `json:"k"`
	Start     *int64 `json:"start,omitempty"`
	End       *int64 `json:"end,omitempty"`
	Project   string `json:"project,omitempty"`   // "edges" (default), "vertices", "count"
	Algorithm string `json:"algorithm,omitempty"` // "enum" (default), "base", "otcd"
	EarlyStop int    `json:"earlyStop,omitempty"` // stop after this many cores; <= 0 = all
}

// ParseProjection maps a wire projection name to its Projection. The empty
// string is ProjectEdges, the builder default.
func ParseProjection(s string) (Projection, error) {
	switch s {
	case "", "edges":
		return ProjectEdges, nil
	case "vertices":
		return ProjectVertices, nil
	case "count":
		return ProjectCount, nil
	}
	return 0, fmt.Errorf("temporalkcore: unknown projection %q (want edges, vertices or count)", s)
}

// ParseAlgorithm maps a wire algorithm name to its Algorithm. The empty
// string is AlgoEnum, the builder default.
func ParseAlgorithm(s string) (Algorithm, error) {
	switch s {
	case "", "enum":
		return AlgoEnum, nil
	case "base":
		return AlgoEnumBase, nil
	case "otcd":
		return AlgoOTCD, nil
	}
	return 0, fmt.Errorf("temporalkcore: unknown algorithm %q (want enum, base or otcd)", s)
}

// Querier is anything that can start a v2 Request: a live *Graph, a pinned
// Snapshot's Graph, a *ShardedGraph (latest view) or a *ShardedView.
type Querier interface {
	Query(k int) *Request
}

// Request compiles the wire description into a v2 Request against g (a live
// graph or a pinned Snapshot's graph), validating eagerly: builder errors
// that Seq/Collect/WriteTo would normally defer — bad k, an unknown
// projection or algorithm — are returned here, so a serving layer can
// reject a bad request with a structured error before committing to a
// response stream. Window errors that depend on the graph's time span
// (ErrEmptyRange, ErrNoTimestamps) still surface at execution time.
func (q QueryJSON) Request(g *Graph) (*Request, error) { return q.RequestFrom(g) }

// RequestFrom is Request for any Querier — in particular a *ShardedView,
// whose requests scatter-gather across the view's shards. Note a sharded
// request rejects the Algorithm verb (the scatter-gather path has one
// engine), so a body naming an algorithm fails eagerly here against a
// sharded source.
func (q QueryJSON) RequestFrom(g Querier) (*Request, error) {
	r := g.Query(q.K)
	start, end := int64(math.MinInt64), int64(math.MaxInt64)
	if q.Start != nil {
		start = *q.Start
	}
	if q.End != nil {
		end = *q.End
	}
	if q.Start != nil || q.End != nil {
		r.Window(start, end)
	}
	proj, err := ParseProjection(q.Project)
	if err != nil {
		return nil, err
	}
	r.Project(proj)
	if q.Algorithm != "" {
		algo, err := ParseAlgorithm(q.Algorithm)
		if err != nil {
			return nil, err
		}
		r.Algorithm(algo)
	}
	if q.EarlyStop > 0 {
		r.EarlyStop(q.EarlyStop)
	}
	if r.err != nil {
		return nil, r.err
	}
	return r, nil
}
