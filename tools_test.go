package temporalkcore_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestCommandLineTools builds the three binaries and exercises their happy
// paths end to end: generate a replica, query it, run one experiment table.
func TestCommandLineTools(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()

	build := func(name string) string {
		t.Helper()
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		cmd.Dir = "."
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("build %s: %v\n%s", name, err, out)
		}
		return bin
	}
	tkcgen := build("tkcgen")
	tkcBin := build("tkc")
	tkcbench := build("tkcbench")

	// tkcgen -list
	out, err := exec.Command(tkcgen, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("tkcgen -list: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "CollegeMsg") {
		t.Errorf("tkcgen -list output missing datasets:\n%s", out)
	}

	// tkcgen: generate a small replica.
	edges := filepath.Join(dir, "fb.txt")
	out, err = exec.Command(tkcgen, "-dataset", "FB", "-edges", "800", "-seed", "1", "-out", edges).CombinedOutput()
	if err != nil {
		t.Fatalf("tkcgen: %v\n%s", err, out)
	}
	if fi, err := os.Stat(edges); err != nil || fi.Size() == 0 {
		t.Fatalf("no edge file written: %v", err)
	}

	// tkc: query the generated graph.
	out, err = exec.Command(tkcBin, "-graph", edges, "-k", "3", "-count").CombinedOutput()
	if err != nil {
		t.Fatalf("tkc: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "distinct temporal 3-cores") {
		t.Errorf("tkc output unexpected:\n%s", out)
	}

	// tkc with a baseline algorithm and a limit.
	out, err = exec.Command(tkcBin, "-graph", edges, "-k", "3", "-algo", "otcd", "-limit", "2", "-q").CombinedOutput()
	if err != nil {
		t.Fatalf("tkc otcd: %v\n%s", err, out)
	}

	// tkcbench: one tiny table.
	out, err = exec.Command(tkcbench, "-fig", "table3", "-edges", "600", "-queries", "1", "-datasets", "FB").CombinedOutput()
	if err != nil {
		t.Fatalf("tkcbench: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "Table III") {
		t.Errorf("tkcbench output unexpected:\n%s", out)
	}

	// Error paths.
	if err := exec.Command(tkcBin, "-graph", edges, "-algo", "bogus").Run(); err == nil {
		t.Error("tkc accepted a bogus algorithm")
	}
	if err := exec.Command(tkcgen, "-dataset", "XX").Run(); err == nil {
		t.Error("tkcgen accepted an unknown dataset")
	}
	if err := exec.Command(tkcbench, "-fig", "nope").Run(); err == nil {
		t.Error("tkcbench accepted an unknown figure")
	}
}
