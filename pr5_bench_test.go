package temporalkcore_test

import (
	"context"
	"testing"

	tkc "temporalkcore"
)

// BenchmarkServingCacheHit measures what the serving cache converts repeat
// queries into, on the CM replica's seeded 10% window (the same window the
// PR 3 iterator benchmarks use):
//
//   - cold / warm: a full Count of the window, uncached vs cache hit. The
//     hit skips the CoreTime phase but still pays the output-proportional
//     enumeration, so this ratio is bounded by |R|'s share of the query.
//   - cold-first / warm-first: the point-query serving pattern ("is there
//     a dense community in this window right now"): First pays CoreTime +
//     O(1) enumeration uncached, and O(lookup) on a hit — this isolates
//     exactly what the cache removes and is the ≥10x acceptance criterion.
//   - warm-batch: a 4-item batch of identical warm queries, the
//     shared-hit path RunBatch uses.
//
// Results are recorded in BENCH_PR5.json; the bench-regression gate
// tracks the warm ns/op so the O(lookup) property cannot silently rot.
func BenchmarkServingCacheHit(b *testing.B) {
	ctx := context.Background()

	b.Run("cold", func(b *testing.B) {
		g, k, ws, we, _, _ := cmReplica(b)
		g.SetCacheOptions(tkc.CacheOptions{Disable: true})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			qs, err := g.Query(k).Window(ws, we).Count(ctx)
			if err != nil || qs.Cores == 0 {
				b.Fatalf("cores=%d err=%v", qs.Cores, err)
			}
			if qs.CacheHit {
				b.Fatal("disabled cache reported a hit")
			}
		}
	})

	b.Run("warm", func(b *testing.B) {
		g, k, ws, we, _, _ := cmReplica(b)
		if _, err := g.Query(k).Window(ws, we).Count(ctx); err != nil {
			b.Fatal(err) // prime the cache
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			qs, err := g.Query(k).Window(ws, we).Count(ctx)
			if err != nil || qs.Cores == 0 {
				b.Fatalf("cores=%d err=%v", qs.Cores, err)
			}
			if !qs.CacheHit {
				b.Fatal("warm query missed")
			}
		}
	})

	b.Run("cold-first", func(b *testing.B) {
		g, k, ws, we, _, _ := cmReplica(b)
		g.SetCacheOptions(tkc.CacheOptions{Disable: true})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok, err := g.Query(k).Window(ws, we).First(ctx); err != nil || !ok {
				b.Fatalf("ok=%v err=%v", ok, err)
			}
		}
	})

	b.Run("warm-first", func(b *testing.B) {
		g, k, ws, we, _, _ := cmReplica(b)
		if _, _, err := g.Query(k).Window(ws, we).First(ctx); err != nil {
			b.Fatal(err) // prime the cache
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok, err := g.Query(k).Window(ws, we).First(ctx); err != nil || !ok {
				b.Fatalf("ok=%v err=%v", ok, err)
			}
		}
	})

	b.Run("warm-batch", func(b *testing.B) {
		g, k, ws, we, _, _ := cmReplica(b)
		if _, err := g.Query(k).Window(ws, we).Count(ctx); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			reqs := []*tkc.Request{
				g.Query(k).Window(ws, we).Project(tkc.ProjectCount),
				g.Query(k).Window(ws, we).Project(tkc.ProjectCount),
				g.Query(k).Window(ws, we).Project(tkc.ProjectCount),
				g.Query(k).Window(ws, we).Project(tkc.ProjectCount),
			}
			for j, r := range g.RunBatch(ctx, reqs) {
				if r.Err != nil || !r.Stats.CacheHit {
					b.Fatalf("item %d: err=%v hit=%v", j, r.Err, r.Stats.CacheHit)
				}
			}
		}
	})
}
