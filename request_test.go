package temporalkcore_test

import (
	"context"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	tkc "temporalkcore"
)

// reqGraph builds a random graph that is dense enough to hold several
// 2-cores and 3-cores across many windows.
func reqGraph(t testing.TB, seed int64, n, m int) *tkc.Graph {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	edges := make([]tkc.Edge, 0, m)
	tme := int64(0)
	for len(edges) < m {
		u, v := int64(r.Intn(n)), int64(r.Intn(n))
		if u == v {
			continue
		}
		if r.Intn(3) == 0 {
			tme++
		}
		edges = append(edges, tkc.Edge{U: u, V: v, Time: tme})
	}
	g, err := tkc.NewGraph(edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func coresEqual(t *testing.T, what string, got, want []tkc.Core) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d cores, want %d", what, len(got), len(want))
	}
	for i := range got {
		if got[i].Start != want[i].Start || got[i].End != want[i].End {
			t.Fatalf("%s: core %d TTI [%d,%d], want [%d,%d]", what, i, got[i].Start, got[i].End, want[i].Start, want[i].End)
		}
		if !reflect.DeepEqual(got[i].Edges, want[i].Edges) {
			t.Fatalf("%s: core %d edges differ", what, i)
		}
	}
}

// TestRequestOneShotMatchesV1 locks the v2 builder's one-shot engine to
// the v1 methods it replaces.
func TestRequestOneShotMatchesV1(t *testing.T) {
	g := reqGraph(t, 1, 40, 400)
	ctx := context.Background()
	lo, hi := g.TimeSpan()

	want, err := g.Cores(2, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	got, err := g.Query(2).Window(lo, hi).Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	coresEqual(t, "Collect", got, want)

	// Default window == whole history.
	got, err = g.Query(2).Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	coresEqual(t, "Collect default window", got, want)

	// Count matches CountCores.
	wantQS, err := g.CountCores(2, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	gotQS, err := g.Query(2).Window(lo, hi).Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if gotQS.Cores != wantQS.Cores || gotQS.Edges != wantQS.Edges ||
		gotQS.VCTSize != wantQS.VCTSize || gotQS.ECSSize != wantQS.ECSSize {
		t.Fatalf("Count = %+v, want %+v", gotQS, wantQS)
	}

	// Seq streams the same cores in the same order; stats arrive via Stats.
	var qs tkc.QueryStats
	var streamed []tkc.Core
	for c, err := range g.Query(2).Window(lo, hi).Stats(&qs).Seq(ctx) {
		if err != nil {
			t.Fatal(err)
		}
		streamed = append(streamed, c)
	}
	coresEqual(t, "Seq", streamed, want)
	if qs.Cores != wantQS.Cores {
		t.Fatalf("Stats dst after Seq = %+v, want %d cores", qs, wantQS.Cores)
	}

	// Breaking the Seq loop early stops the engine; EarlyStop(n) and First
	// agree with the prefix.
	var prefix []tkc.Core
	for c, err := range g.Query(2).Window(lo, hi).Seq(ctx) {
		if err != nil {
			t.Fatal(err)
		}
		prefix = append(prefix, c)
		if len(prefix) == 3 {
			break
		}
	}
	coresEqual(t, "Seq break", prefix, want[:3])
	limited, err := g.Query(2).Window(lo, hi).EarlyStop(3).Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	coresEqual(t, "EarlyStop", limited, want[:3])
	first, ok, err := g.Query(2).Window(lo, hi).First(ctx)
	if err != nil || !ok {
		t.Fatalf("First: ok=%v err=%v", ok, err)
	}
	coresEqual(t, "First", []tkc.Core{first}, want[:1])

	// Algorithms agree through the builder.
	for _, algo := range []tkc.Algorithm{tkc.AlgoEnumBase, tkc.AlgoOTCD} {
		alt, err := g.Query(2).Window(lo, hi).Algorithm(algo).Count(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if alt.Cores != wantQS.Cores || alt.Edges != wantQS.Edges {
			t.Fatalf("algorithm %v: %d cores |R|=%d, want %d/%d", algo, alt.Cores, alt.Edges, wantQS.Cores, wantQS.Edges)
		}
	}
}

// TestRequestProjections checks the three projections against each other.
func TestRequestProjections(t *testing.T) {
	g := reqGraph(t, 2, 30, 300)
	ctx := context.Background()

	edgesProj, err := g.Query(2).Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	vertsProj, err := g.Query(2).Project(tkc.ProjectVertices).Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	countProj, err := g.Query(2).Project(tkc.ProjectCount).Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(edgesProj) != len(vertsProj) || len(edgesProj) != len(countProj) {
		t.Fatalf("projection cardinalities differ: %d/%d/%d", len(edgesProj), len(vertsProj), len(countProj))
	}
	for i := range edgesProj {
		// Vertices projection == sorted distinct endpoints of the edges.
		seen := map[int64]bool{}
		var want []int64
		for _, e := range edgesProj[i].Edges {
			for _, v := range []int64{e.U, e.V} {
				if !seen[v] {
					seen[v] = true
					want = append(want, v)
				}
			}
		}
		sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
		if !reflect.DeepEqual(vertsProj[i].Vertices, want) {
			t.Fatalf("core %d: vertices %v, want %v", i, vertsProj[i].Vertices, want)
		}
		if vertsProj[i].Edges != nil || countProj[i].Edges != nil || countProj[i].Vertices != nil {
			t.Fatalf("core %d: projection leaked the wrong slices", i)
		}
		if countProj[i].Start != edgesProj[i].Start || countProj[i].End != edgesProj[i].End {
			t.Fatalf("core %d: count projection TTI differs", i)
		}
	}
}

// TestRequestEngines drives the prepared, watcher, snapshot and historical
// engines through the same builder and compares them with their v1
// counterparts.
func TestRequestEngines(t *testing.T) {
	g := reqGraph(t, 3, 30, 300)
	ctx := context.Background()
	lo, hi := g.TimeSpan()

	want, err := g.Query(2).Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Prepared.
	p, err := g.Prepare(2, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Query().Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	coresEqual(t, "prepared", got, want)

	// Watcher over the whole history.
	w, err := g.Watch(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err = w.Query().Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	coresEqual(t, "watcher", got, want)

	// Snapshot (k,h)-core vs KHCore.
	wantMembers, err := g.KHCore(2, 2, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	c, ok, err := g.Query(2).Window(lo, hi).Snapshot(2).Project(tkc.ProjectVertices).First(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !ok && len(wantMembers) > 0 {
		t.Fatalf("snapshot: no core, KHCore found %d members", len(wantMembers))
	}
	if ok && !reflect.DeepEqual(c.Vertices, wantMembers) {
		t.Fatalf("snapshot vertices %v, want %v", c.Vertices, wantMembers)
	}

	// Historical index.
	h, err := g.BuildHistoricalIndex(lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	wantHist, err := h.CoreMembers(3, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	hc, ok, err := h.Query(3).Window(lo, hi).Project(tkc.ProjectVertices).First(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !ok && len(wantHist) > 0 {
		t.Fatalf("historical: no core, CoreMembers found %d", len(wantHist))
	}
	if ok && !reflect.DeepEqual(hc.Vertices, wantHist) {
		t.Fatalf("historical vertices %v, want %v", hc.Vertices, wantHist)
	}
}

// TestRequestBuilderValidation locks the builder's conflict and argument
// errors to execution time.
func TestRequestBuilderValidation(t *testing.T) {
	g := reqGraph(t, 4, 20, 120)
	ctx := context.Background()
	lo, hi := g.TimeSpan()
	p, err := g.Prepare(2, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	w, err := g.Watch(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	other := reqGraph(t, 5, 10, 60)
	h, err := other.BuildHistoricalIndex(other.TimeSpan())
	if err != nil {
		t.Fatal(err)
	}

	bad := map[string]*tkc.Request{
		"k < 1":                   g.Query(0),
		"window on prepared":      p.Query().Window(lo, hi),
		"window on watcher":       w.Query().Window(lo, hi),
		"algorithm on prepared":   p.Query().Algorithm(tkc.AlgoOTCD),
		"algorithm then snapshot": g.Query(2).Algorithm(tkc.AlgoOTCD).Snapshot(1),
		"snapshot h < 1":          g.Query(2).Snapshot(0),
		"snapshot then using":     g.Query(2).Snapshot(1).Using(h),
		"using wrong graph":       g.Query(2).Using(h),
		"unknown projection":      g.Query(2).Project(tkc.Projection(99)),
		"algorithm on historical": h.Query(2).Algorithm(tkc.AlgoEnumBase),
	}
	for name, r := range bad {
		if _, err := r.Collect(ctx); err == nil {
			t.Errorf("%s: no error", name)
		}
	}

	// A builder error does not panic Seq and surfaces as the only element.
	n := 0
	for _, err := range g.Query(0).Seq(ctx) {
		n++
		if err == nil {
			t.Error("Seq on invalid request yielded a core")
		}
	}
	if n != 1 {
		t.Errorf("Seq on invalid request yielded %d elements, want 1", n)
	}
}

// TestRunBatchMixed drives RunBatch with heterogeneous per-request options
// and checks spec-order delivery and per-item validation errors.
func TestRunBatchMixed(t *testing.T) {
	g := reqGraph(t, 6, 40, 500)
	ctx := context.Background()
	lo, hi := g.TimeSpan()

	wantCores, err := g.Query(2).Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	wantQS, err := g.Query(3).Count(ctx)
	if err != nil {
		t.Fatal(err)
	}

	res := g.RunBatch(ctx, []*tkc.Request{
		g.Query(2).Window(lo, hi),
		g.Query(3).Window(lo, hi).Project(tkc.ProjectCount),
		g.Query(0),                // invalid k
		g.Query(2).Window(hi, lo), // inverted range
		g.Query(2).Window(lo, hi).EarlyStop(2),
		g.Query(2).Window(lo, hi).Project(tkc.ProjectVertices),
	}, tkc.BatchOptions{Parallelism: 2})

	coresEqual(t, "batch[0]", res[0].Cores, wantCores)
	if res[1].Stats.Cores != wantQS.Cores || res[1].Cores != nil {
		t.Fatalf("batch[1] count = %+v cores=%v", res[1].Stats, res[1].Cores)
	}
	if res[2].Err == nil {
		t.Fatal("batch[2]: invalid k accepted")
	}
	if res[3].Err != tkc.ErrEmptyRange {
		t.Fatalf("batch[3]: err = %v, want ErrEmptyRange", res[3].Err)
	}
	if len(res[4].Cores) != 2 {
		t.Fatalf("batch[4]: %d cores, want 2 (EarlyStop)", len(res[4].Cores))
	}
	if len(res[5].Cores) != len(wantCores) || res[5].Cores[0].Vertices == nil {
		t.Fatalf("batch[5]: vertices projection missing")
	}

	// The deprecated spec API delegates to the same engine.
	old := g.QueryBatch([]tkc.QuerySpec{{K: 2, Start: lo, End: hi}})
	coresEqual(t, "QueryBatch shim", old[0].Cores, wantCores)

	// Per-request Stats destinations are honoured in batches too.
	var qs tkc.QueryStats
	g.RunBatch(ctx, []*tkc.Request{g.Query(3).Window(lo, hi).Project(tkc.ProjectCount).Stats(&qs)})
	if qs.Cores != wantQS.Cores {
		t.Fatalf("batched Stats dst = %+v, want %d cores", qs, wantQS.Cores)
	}
}
