package temporalkcore_test

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	tkc "temporalkcore"
)

func TestWriteReadCoresRoundTrip(t *testing.T) {
	g, err := tkc.NewGraph(paperEdges(false))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	qs, err := g.WriteCores(&buf, 2, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if qs.Cores == 0 {
		t.Fatal("no cores written")
	}

	var got []tkc.Core
	if err := tkc.ReadCores(&buf, func(c tkc.Core) bool {
		got = append(got, c)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if int64(len(got)) != qs.Cores {
		t.Fatalf("read %d cores, wrote %d", len(got), qs.Cores)
	}
	var edges int64
	for _, c := range got {
		if c.Start < 1 || c.End > 7 || c.Start > c.End {
			t.Errorf("bad TTI %d..%d", c.Start, c.End)
		}
		edges += int64(len(c.Edges))
	}
	if edges != qs.Edges {
		t.Errorf("read %d edges, wrote %d", edges, qs.Edges)
	}
}

func TestReadCoresEarlyStop(t *testing.T) {
	g, err := tkc.NewGraph(paperEdges(false))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := g.WriteCores(&buf, 2, 1, 7); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := tkc.ReadCores(&buf, func(tkc.Core) bool {
		n++
		return n < 3
	}); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("visited %d, want 3", n)
	}
}

func TestReadCoresRejectsGarbage(t *testing.T) {
	err := tkc.ReadCores(strings.NewReader("{\"start\": 1,\n---garbage---\n"), func(tkc.Core) bool { return true })
	if err == nil {
		t.Error("garbage stream accepted")
	}
	// Empty stream is fine.
	if err := tkc.ReadCores(strings.NewReader(""), func(tkc.Core) bool { return true }); err != nil {
		t.Errorf("empty stream: %v", err)
	}
}

func TestWriteCoresPropagatesQueryErrors(t *testing.T) {
	g, err := tkc.NewGraph(paperEdges(false))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := g.WriteCores(&buf, 0, 1, 7); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := g.WriteCores(&buf, 2, 90, 99); err != tkc.ErrNoTimestamps {
		t.Errorf("empty range: %v", err)
	}
}

// failWriter fails every Write after the first n bytes were accepted.
type failWriter struct {
	n      int
	wrote  int
	failed bool
}

func (f *failWriter) Write(p []byte) (int, error) {
	if f.wrote+len(p) > f.n {
		f.failed = true
		return 0, errWriterBroken
	}
	f.wrote += len(p)
	return len(p), nil
}

var errWriterBroken = errors.New("writer broken")

// TestWriteToEncodeError: a writer failing mid-stream (the NDJSON output
// exceeds the buffer, so Encode hits the error before the final flush)
// surfaces as a wrapped encoding error and stops the engine early.
func TestWriteToEncodeError(t *testing.T) {
	g := reqGraph(t, 11, 60, 2000)
	lo, hi := g.TimeSpan()
	fw := &failWriter{n: 1 << 16} // accept one buffer, then fail
	_, err := g.Query(2).Window(lo, hi).WriteTo(context.Background(), fw)
	if err == nil {
		t.Fatal("WriteTo on a failing writer succeeded")
	}
	if !errors.Is(err, errWriterBroken) {
		t.Fatalf("WriteTo error %v does not wrap the writer error", err)
	}
	if !strings.Contains(err.Error(), "encoding cores") {
		t.Fatalf("WriteTo error %q is not the encoding-path error", err)
	}
	if !fw.failed {
		t.Fatal("writer never saw the failure")
	}
}

// TestWriteToFlushError: when the whole result fits the buffer, the
// writer's failure only surfaces at the final flush — that error must not
// be swallowed.
func TestWriteToFlushError(t *testing.T) {
	g, err := tkc.NewGraph(paperEdges(false))
	if err != nil {
		t.Fatal(err)
	}
	fw := &failWriter{n: 0} // fail on the very first byte, i.e. at flush
	_, err = g.Query(2).Window(1, 7).WriteTo(context.Background(), fw)
	if !errors.Is(err, errWriterBroken) {
		t.Fatalf("WriteTo = %v, want the flush error", err)
	}
}

// TestWriteToCancelPartialDelivery: cancelling mid-stream flushes the
// complete lines written so far (partial delivery) and reports ctx.Err().
func TestWriteToCancelPartialDelivery(t *testing.T) {
	g := reqGraph(t, 11, 40, 600)
	lo, hi := g.TimeSpan()
	ctx, cancel := context.WithCancel(context.Background())
	var buf bytes.Buffer
	lines := 0
	// Cancel from inside the stream via a limited reader trick: run Seq
	// alongside is complex, so instead cancel after a time slice.
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err := g.Query(2).Window(lo, hi).WriteTo(ctx, &buf)
	if err == nil {
		// The query may legitimately finish before the cancel lands; only
		// assert the error when it was cancelled.
		t.Skip("query finished before cancellation")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("WriteTo = %v, want context.Canceled", err)
	}
	if err := tkc.ReadCores(bytes.NewReader(buf.Bytes()), func(tkc.Core) bool { lines++; return true }); err != nil {
		t.Fatalf("partial output is not valid NDJSON: %v", err)
	}
}
