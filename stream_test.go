package temporalkcore_test

import (
	"bytes"
	"strings"
	"testing"

	tkc "temporalkcore"
)

func TestWriteReadCoresRoundTrip(t *testing.T) {
	g, err := tkc.NewGraph(paperEdges(false))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	qs, err := g.WriteCores(&buf, 2, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if qs.Cores == 0 {
		t.Fatal("no cores written")
	}

	var got []tkc.Core
	if err := tkc.ReadCores(&buf, func(c tkc.Core) bool {
		got = append(got, c)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if int64(len(got)) != qs.Cores {
		t.Fatalf("read %d cores, wrote %d", len(got), qs.Cores)
	}
	var edges int64
	for _, c := range got {
		if c.Start < 1 || c.End > 7 || c.Start > c.End {
			t.Errorf("bad TTI %d..%d", c.Start, c.End)
		}
		edges += int64(len(c.Edges))
	}
	if edges != qs.Edges {
		t.Errorf("read %d edges, wrote %d", edges, qs.Edges)
	}
}

func TestReadCoresEarlyStop(t *testing.T) {
	g, err := tkc.NewGraph(paperEdges(false))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := g.WriteCores(&buf, 2, 1, 7); err != nil {
		t.Fatal(err)
	}
	n := 0
	if err := tkc.ReadCores(&buf, func(tkc.Core) bool {
		n++
		return n < 3
	}); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("visited %d, want 3", n)
	}
}

func TestReadCoresRejectsGarbage(t *testing.T) {
	err := tkc.ReadCores(strings.NewReader("{\"start\": 1,\n---garbage---\n"), func(tkc.Core) bool { return true })
	if err == nil {
		t.Error("garbage stream accepted")
	}
	// Empty stream is fine.
	if err := tkc.ReadCores(strings.NewReader(""), func(tkc.Core) bool { return true }); err != nil {
		t.Errorf("empty stream: %v", err)
	}
}

func TestWriteCoresPropagatesQueryErrors(t *testing.T) {
	g, err := tkc.NewGraph(paperEdges(false))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := g.WriteCores(&buf, 0, 1, 7); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := g.WriteCores(&buf, 2, 90, 99); err != tkc.ErrNoTimestamps {
		t.Errorf("empty range: %v", err)
	}
}
