package temporalkcore_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
	"time"
)

// buildTool builds one cmd/<name> binary into dir and returns its path.
func buildTool(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("build %s: %v\n%s", name, err, out)
	}
	return bin
}

// genEdgeFile writes a small generated replica via tkcgen.
func genEdgeFile(t *testing.T, tkcgen, dir string) string {
	t.Helper()
	path := filepath.Join(dir, "edges.txt")
	out, err := exec.Command(tkcgen, "-dataset", "FB", "-edges", "800", "-seed", "1", "-out", path).CombinedOutput()
	if err != nil {
		t.Fatalf("tkcgen: %v\n%s", err, out)
	}
	return path
}

// TestQuerySubcommandCompat is the flag-split shim test: the new explicit
// "tkc query" subcommand and the legacy bare-flag invocation must produce
// identical output for the same flags — scripts written against the
// pre-subcommand CLI keep working unchanged.
func TestQuerySubcommandCompat(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	tkcgen := buildTool(t, dir, "tkcgen")
	tkcBin := buildTool(t, dir, "tkc")
	edges := genEdgeFile(t, tkcgen, dir)

	// Wall-clock figures in the reports vary run to run; blank them before
	// comparing.
	timings := regexp.MustCompile(`[0-9]+\.[0-9]+s?`)
	normalize := func(b []byte) string { return timings.ReplaceAllString(string(b), "#") }

	for _, flags := range [][]string{
		{"-graph", edges, "-k", "3", "-count"},
		{"-graph", edges, "-k", "2", "-limit", "2", "-q"},
		{"-graph", edges, "-ks", "2,3", "-count"},
	} {
		legacy, err := exec.Command(tkcBin, flags...).CombinedOutput()
		if err != nil {
			t.Fatalf("legacy tkc %v: %v\n%s", flags, err, legacy)
		}
		sub, err := exec.Command(tkcBin, append([]string{"query"}, flags...)...).CombinedOutput()
		if err != nil {
			t.Fatalf("tkc query %v: %v\n%s", flags, err, sub)
		}
		if normalize(legacy) != normalize(sub) {
			t.Errorf("tkc %v and tkc query %v diverge:\n--- legacy ---\n%s--- query ---\n%s",
				flags, flags, legacy, sub)
		}
	}

	// Unknown subcommands fail loudly rather than being parsed as flags.
	if err := exec.Command(tkcBin, "serv", "-graph", edges).Run(); err == nil {
		t.Error("tkc accepted an unknown subcommand")
	}
}

// TestServeCommandRoundTrip boots the real `tkc serve` binary on a free
// port, drives a query/append/metrics round-trip plus a short tkcload run
// against it, and shuts it down with SIGINT, checking the graceful-drain
// path end to end.
func TestServeCommandRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	tkcgen := buildTool(t, dir, "tkcgen")
	tkcBin := buildTool(t, dir, "tkc")
	tkcload := buildTool(t, dir, "tkcload")
	edges := genEdgeFile(t, tkcgen, dir)

	cmd := exec.Command(tkcBin, "serve", "-graph", edges, "-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The listening line is a printed contract; parse the bound address.
	var base string
	sc := bufio.NewScanner(stdout)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "serve: listening on "); ok {
			base = addr
			break
		}
	}
	if base == "" {
		t.Fatalf("serve never printed its listening line (scan err %v)", sc.Err())
	}
	go io.Copy(io.Discard, stdout) // keep the pipe drained

	// Query round-trip.
	resp, err := http.Post(base+"/v1/query", "application/json",
		strings.NewReader(`{"k":3,"project":"count"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"stats"`)) {
		t.Fatalf("query: status %d body %.200s", resp.StatusCode, body)
	}

	// Append round-trip: two fresh edges past the frontier.
	var appendBody bytes.Buffer
	st := fetchServerStats(t, base)
	fmt.Fprintf(&appendBody, "{\"u\":1,\"v\":2,\"t\":%d}\n{\"u\":2,\"v\":3,\"t\":%d}\n", st.End+1, st.End+1)
	resp, err = http.Post(base+"/v1/append", "application/x-ndjson", &appendBody)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Contains(body, []byte(`"added":2`)) {
		t.Fatalf("append: status %d body %.200s", resp.StatusCode, body)
	}

	// Metrics scrape.
	mresp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !bytes.Contains(body, []byte("tkc_requests_total")) || !bytes.Contains(body, []byte("tkc_epoch_seq 1")) {
		t.Fatalf("metrics missing expected series:\n%.500s", body)
	}

	// Load-generator smoke: short mixed run against the live server.
	addr := strings.TrimPrefix(base, "http://")
	out, err := exec.Command(tkcload, "-addr", addr, "-duration", "1s", "-readers", "2",
		"-k", "3", "-append", "-append-batch", "50", "-append-every", "100ms").CombinedOutput()
	if err != nil {
		t.Fatalf("tkcload: %v\n%s", err, out)
	}
	for _, want := range []string{"tkcload: query", "p50=", "qps=", "tkcload: append"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("tkcload report missing %q:\n%s", want, out)
		}
	}

	// Graceful shutdown on SIGINT.
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("serve exited non-zero after SIGINT: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Error("serve did not exit within 15s of SIGINT")
	}
}

type cliServerStats struct {
	Epoch int64 `json:"epoch"`
	End   int64 `json:"end"`
}

func fetchServerStats(t *testing.T, base string) cliServerStats {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st cliServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}
