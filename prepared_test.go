package temporalkcore_test

import (
	"sync"
	"testing"

	tkc "temporalkcore"
)

func TestPreparedQueryMatchesDirect(t *testing.T) {
	g, err := tkc.NewGraph(paperEdges(false))
	if err != nil {
		t.Fatal(err)
	}
	p, err := g.Prepare(2, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := g.Cores(2, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	prepared, err := p.Cores()
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != len(prepared) {
		t.Fatalf("prepared %d cores, direct %d", len(prepared), len(direct))
	}
	if p.K() != 2 {
		t.Errorf("K = %d", p.K())
	}
	if s, e := p.Range(); s != 1 || e != 7 {
		t.Errorf("Range = %d..%d", s, e)
	}
	if p.VCTSize() != 24 || p.ECSSize() != 18 {
		t.Errorf("sizes %d/%d, want 24/18", p.VCTSize(), p.ECSSize())
	}
	qs, err := p.Count()
	if err != nil {
		t.Fatal(err)
	}
	if qs.Cores != int64(len(direct)) {
		t.Errorf("Count = %d, want %d", qs.Cores, len(direct))
	}
}

func TestPreparedCoreTime(t *testing.T) {
	g, err := tkc.NewGraph(paperEdges(false))
	if err != nil {
		t.Fatal(err)
	}
	p, err := g.Prepare(2, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Example 2 of the paper: CT_1(v1)=3, CT_3(v1)=5.
	te, inf, err := p.CoreTime(1, 1)
	if err != nil || inf || te != 3 {
		t.Errorf("CoreTime(v1, 1) = %d,%v,%v, want 3", te, inf, err)
	}
	te, inf, err = p.CoreTime(1, 3)
	if err != nil || inf || te != 5 {
		t.Errorf("CoreTime(v1, 3) = %d,%v,%v, want 5", te, inf, err)
	}
	_, inf, err = p.CoreTime(1, 7)
	if err != nil || !inf {
		t.Errorf("CoreTime(v1, 7) should be infinite, got inf=%v err=%v", inf, err)
	}
	// Past the range end.
	_, inf, _ = p.CoreTime(1, 99)
	if !inf {
		t.Error("CoreTime past range should be infinite")
	}
	if _, _, err := p.CoreTime(12345, 1); err == nil {
		t.Error("unknown vertex accepted")
	}
}

func TestPreparedValidation(t *testing.T) {
	g, err := tkc.NewGraph(paperEdges(false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Prepare(0, 1, 7); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := g.Prepare(2, 50, 60); err != tkc.ErrNoTimestamps {
		t.Errorf("empty range: %v", err)
	}
}

// TestPreparedConcurrent checks that one PreparedQuery can serve many
// goroutines (run with -race).
func TestPreparedConcurrent(t *testing.T) {
	g, err := tkc.NewGraph(paperEdges(false))
	if err != nil {
		t.Fatal(err)
	}
	p, err := g.Prepare(2, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	counts := make([]int64, 8)
	for i := range counts {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			qs, err := p.Count()
			if err != nil {
				t.Error(err)
				return
			}
			counts[slot] = qs.Cores
		}(i)
	}
	wg.Wait()
	for _, c := range counts {
		if c != counts[0] {
			t.Fatalf("concurrent counts differ: %v", counts)
		}
	}
}

// TestConcurrentGraphQueries checks that the Graph itself is safe for
// concurrent independent queries.
func TestConcurrentGraphQueries(t *testing.T) {
	g, err := tkc.NewGraph(paperEdges(false))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			if _, err := g.CountCores(1+k%2, 1, 7); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
}
