module temporalkcore

go 1.24
