module temporalkcore

go 1.23
