// Allocation benchmarks for the repeated-query hot paths. The seed tree
// paid ~5k allocs and ~2.8 MB per repeated query (CoreTime setup plus the
// enumerator's per-timestamp buckets); the pooled scratch engine is
// expected to keep the steady state within a few dozen allocations.
package temporalkcore_test

import (
	"fmt"
	"runtime"
	"testing"

	tkc "temporalkcore"
	"temporalkcore/internal/bench"
)

// apiGraph rebuilds a scaled dataset replica through the public API.
func apiGraph(b *testing.B, code string, edges int) (*tkc.Graph, int) {
	b.Helper()
	d, err := bench.LoadDataset(code, edges, 1)
	if err != nil {
		b.Fatal(err)
	}
	raw := make([]tkc.Edge, 0, d.G.NumEdges())
	for _, te := range d.G.Edges() {
		raw = append(raw, tkc.Edge{U: d.G.Label(te.U), V: d.G.Label(te.V), Time: d.G.RawTime(te.T)})
	}
	g, err := tkc.NewGraph(raw)
	if err != nil {
		b.Fatal(err)
	}
	return g, d.K(bench.DefaultKPct)
}

// BenchmarkCoresFuncRepeat measures the full repeated-query hot path —
// CoreTime phase plus enumeration — through Graph.CountCores.
func BenchmarkCoresFuncRepeat(b *testing.B) {
	g, k := apiGraph(b, "CM", 6000)
	lo, hi := g.TimeSpan()
	span := hi - lo
	start, end := lo+span/4, lo+span/2
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.CountCores(k, start, end); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreparedCoresFunc measures re-enumeration of a prepared query,
// the pattern of a server answering the same (k, window) repeatedly.
func BenchmarkPreparedCoresFunc(b *testing.B) {
	g, k := apiGraph(b, "CM", 6000)
	lo, hi := g.TimeSpan()
	span := hi - lo
	p, err := g.Prepare(k, lo+span/4, lo+span/2)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.CoresFunc(func(tkc.Core) bool { return true }); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryBatch compares a sequential loop against the parallel
// batch layer over a mixed workload of windows and k values.
func BenchmarkQueryBatch(b *testing.B) {
	g, k := apiGraph(b, "CM", 6000)
	lo, hi := g.TimeSpan()
	span := hi - lo
	var specs []tkc.QuerySpec
	for i := 0; i < 16; i++ {
		s := lo + span*int64(i)/32
		specs = append(specs, tkc.QuerySpec{K: 2 + (k-2)*(i%4)/3, Start: s, End: s + span/4})
	}
	for _, par := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("parallel=%d", par), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, r := range g.CountBatch(specs, par) {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
		})
	}
}
