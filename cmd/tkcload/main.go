// Command tkcload drives mixed read/append traffic against a running
// `tkc serve` instance and reports client-side latency percentiles,
// throughput and allocation behaviour — the load-vs-latency harness for
// the HTTP serving layer.
//
//	tkc serve -graph edges.txt -addr 127.0.0.1:8177 &
//	tkcload -addr 127.0.0.1:8177 -duration 10s -readers 4 -append
//
// Readers issue point count-queries over a set of -spread trailing
// windows (so a spread of 1 exercises the warm serving-cache path and a
// larger spread forces CoreTime builds); the optional writer appends
// batches of synthetic edges at the time frontier, publishing an epoch
// per batch, so the read side continuously re-keys onto fresh epochs.
// 503 responses (admission control shedding load) are counted separately
// from errors: a saturated server refusing quickly is the behaviour the
// admission controller exists to provide.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"encoding/json"
)

type stats struct {
	mu    sync.Mutex
	lat   []time.Duration
	ok    int64
	n503  int64
	n504  int64
	errs  int64
	other int64
}

func (s *stats) record(code int, d time.Duration, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lat = append(s.lat, d)
	switch {
	case err != nil:
		s.errs++
	case code == http.StatusOK:
		s.ok++
	case code == http.StatusServiceUnavailable:
		s.n503++
	case code == http.StatusGatewayTimeout:
		s.n504++
	default:
		s.other++
	}
}

func (s *stats) report(name string, wall time.Duration) (line string, failed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.lat)
	if n == 0 {
		return fmt.Sprintf("tkcload: %-6s n=0", name), false
	}
	sort.Slice(s.lat, func(i, j int) bool { return s.lat[i] < s.lat[j] })
	pct := func(p float64) time.Duration { return s.lat[int(p*float64(n-1))] }
	line = fmt.Sprintf("tkcload: %-6s n=%d ok=%d 503=%d 504=%d err=%d p50=%.3fms p99=%.3fms qps=%.1f",
		name, n, s.ok, s.n503, s.n504, s.errs+s.other,
		float64(pct(0.50))/float64(time.Millisecond),
		float64(pct(0.99))/float64(time.Millisecond),
		float64(n)/wall.Seconds())
	return line, s.errs+s.other > 0
}

type serverStats struct {
	Epoch    int64 `json:"epoch"`
	Vertices int   `json:"vertices"`
	Edges    int   `json:"edges"`
	Start    int64 `json:"start"`
	End      int64 `json:"end"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("tkcload: ")
	var (
		addr        = flag.String("addr", "127.0.0.1:8177", "tkc serve address (host:port)")
		duration    = flag.Duration("duration", 10*time.Second, "how long to drive load")
		readers     = flag.Int("readers", 4, "concurrent query clients")
		k           = flag.Int("k", 3, "core parameter k for the read queries")
		window      = flag.Float64("window", 0.2, "query window length as a fraction of the graph's time span")
		spread      = flag.Int("spread", 1, "distinct query windows cycled per reader (1 = one hot window, maximally cacheable)")
		earlyStop   = flag.Int("early-stop", 1, "earlyStop per query (1 = point query; 0 = full enumeration)")
		deadlineMS  = flag.Int64("deadline-ms", 0, "per-query deadlineMs (0 = server default)")
		appendOn    = flag.Bool("append", false, "run one writer appending synthetic edges at the time frontier")
		appendBatch = flag.Int("append-batch", 200, "edges per append request")
		appendEvery = flag.Duration("append-every", 200*time.Millisecond, "pause between append requests")
		seed        = flag.Int64("seed", 1, "PRNG seed for windows and synthetic edges")
	)
	flag.Parse()

	base := "http://" + strings.TrimPrefix(*addr, "http://")
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: *readers + 2}}

	ss, err := fetchStats(client, base)
	if err != nil {
		log.Fatal(err)
	}
	if ss.Epoch < 0 {
		log.Fatal("server has no graph yet (start tkc serve with -graph, or append first)")
	}
	fmt.Printf("tkcload: target %s: %d edges, %d vertices, span [%d, %d], epoch %d\n",
		base, ss.Edges, ss.Vertices, ss.Start, ss.End, ss.Epoch)

	// Pre-compute the query bodies: -spread trailing windows of the
	// configured fractional length, ending inside the graph's current span
	// so they stay valid while the writer extends the frontier.
	span := ss.End - ss.Start
	if span < 1 {
		span = 1
	}
	wlen := int64(float64(span) * *window)
	if wlen < 1 {
		wlen = 1
	}
	rng := rand.New(rand.NewSource(*seed))
	bodies := make([][]byte, *spread)
	for i := range bodies {
		end := ss.End - rng.Int63n(span/2+1)
		q := map[string]any{"k": *k, "start": end - wlen, "end": end, "project": "count"}
		if *earlyStop > 0 {
			q["earlyStop"] = *earlyStop
		}
		if *deadlineMS > 0 {
			q["deadlineMs"] = *deadlineMS
		}
		bodies[i], _ = json.Marshal(q)
	}

	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)

	var qstats, astats stats
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for ri := 0; ri < *readers; ri++ {
		wg.Add(1)
		go func(ri int) {
			defer wg.Done()
			for i := ri; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				t0 := time.Now()
				code, err := post(client, base+"/v1/query", "application/json", bodies[i%len(bodies)])
				qstats.record(code, time.Since(t0), err)
			}
		}(ri)
	}
	if *appendOn {
		wg.Add(1)
		go func() {
			defer wg.Done()
			erng := rand.New(rand.NewSource(*seed + 1))
			next := ss.End + 1
			for {
				select {
				case <-stop:
					return
				default:
				}
				var b bytes.Buffer
				for i := 0; i < *appendBatch; i++ {
					u := erng.Int63n(int64(ss.Vertices) + 1)
					v := erng.Int63n(int64(ss.Vertices) + 1)
					if u == v {
						v++
					}
					fmt.Fprintf(&b, "{\"u\":%d,\"v\":%d,\"t\":%d}\n", u, v, next)
					if erng.Intn(4) == 0 {
						next++ // several edges per timestamp, like real streams
					}
				}
				next++
				t0 := time.Now()
				code, err := post(client, base+"/v1/append", "application/x-ndjson", b.Bytes())
				astats.record(code, time.Since(t0), err)
				select {
				case <-stop:
					return
				case <-time.After(*appendEvery):
				}
			}
		}()
	}

	time.Sleep(*duration)
	close(stop)
	wg.Wait()

	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)

	failed := false
	line, bad := qstats.report("query", *duration)
	fmt.Println(line)
	failed = failed || bad
	if *appendOn {
		line, bad = astats.report("append", *duration)
		fmt.Println(line)
		failed = failed || bad
	}
	reqs := int64(len(qstats.lat) + len(astats.lat))
	if reqs > 0 {
		fmt.Printf("tkcload: client allocs/req=%d B gcs=%d\n",
			int64(ms1.TotalAlloc-ms0.TotalAlloc)/reqs, ms1.NumGC-ms0.NumGC)
	}
	if ss, err := fetchStats(client, base); err == nil {
		fmt.Printf("tkcload: server now at epoch %d, %d edges\n", ss.Epoch, ss.Edges)
	}
	if failed {
		os.Exit(1)
	}
}

// post issues one request and drains the response body (keeping the
// connection reusable), returning the status code.
func post(client *http.Client, url, contentType string, body []byte) (int, error) {
	resp, err := client.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

func fetchStats(client *http.Client, base string) (serverStats, error) {
	var ss serverStats
	resp, err := client.Get(base + "/v1/stats")
	if err != nil {
		return ss, fmt.Errorf("GET /v1/stats: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ss, fmt.Errorf("GET /v1/stats: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ss); err != nil {
		return ss, fmt.Errorf("decoding /v1/stats: %w", err)
	}
	return ss, nil
}
