// Command tkcgen generates the synthetic dataset replicas used by the
// benchmark suite (scaled stand-ins for the paper's Table III datasets) and
// writes them as "u v t" edge lists.
//
// Usage:
//
//	tkcgen -list
//	tkcgen -dataset CM -edges 20000 -seed 1 -out cm.txt
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"temporalkcore/internal/gen"
	"temporalkcore/internal/kcore"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tkcgen: ")

	var (
		list    = flag.Bool("list", false, "list available dataset replicas")
		dataset = flag.String("dataset", "", "dataset code (see -list)")
		edges   = flag.Int("edges", 20000, "approximate edge count of the replica")
		seed    = flag.Int64("seed", 1, "generator seed")
		out     = flag.String("out", "", "output file (default: stdout)")
	)
	flag.Parse()

	if *list {
		fmt.Println("code  full name      paper |V|  paper |E|  paper tmax  paper kmax")
		for _, r := range gen.Replicas() {
			fmt.Printf("%-5s %-14s %9d  %9d  %10d  %10d\n",
				r.Code, r.FullName, r.Paper.Vertices, r.Paper.Edges, r.Paper.Timestamps, r.Paper.KMax)
		}
		return
	}
	if *dataset == "" {
		flag.Usage()
		os.Exit(2)
	}
	rep, err := gen.ReplicaByCode(*dataset)
	if err != nil {
		log.Fatal(err)
	}
	g, err := rep.Generate(*edges, *seed)
	if err != nil {
		log.Fatal(err)
	}
	st := g.ComputeStats()
	fmt.Fprintf(os.Stderr, "generated %s replica: %s kmax=%d\n", rep.Code, st, kcore.KMax(g))

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				log.Fatal(err)
			}
		}()
		w = f
	}
	if err := g.WriteText(w); err != nil {
		log.Fatal(err)
	}
}
