// Command tkcbench regenerates the tables and figures of the paper's
// evaluation section on scaled synthetic dataset replicas.
//
// Usage:
//
//	tkcbench -fig all                      # every table/figure
//	tkcbench -fig 6 -edges 20000 -queries 3
//	tkcbench -fig 7 -datasets CM,PL -timeout 10s
//
// Figure ids: table3, 4, 6, 7, 8, 9, 10, 11, 12.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"temporalkcore/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tkcbench: ")

	var (
		fig      = flag.String("fig", "all", "figure to regenerate (table3, 4, 6-12, or all)")
		edges    = flag.Int("edges", 20000, "target edges per dataset replica")
		queries  = flag.Int("queries", 3, "random query ranges per data point (paper: 100)")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-query time limit for EnumBase/OTCD (paper: 6h)")
		seed     = flag.Int64("seed", 1, "replica and workload seed")
		datasets = flag.String("datasets", "", "comma-separated dataset codes (default: figure's own set)")
		asCSV    = flag.Bool("csv", false, "emit CSV instead of aligned tables")
	)
	flag.Parse()

	s := &bench.Suite{
		TargetEdges:     *edges,
		QueriesPerPoint: *queries,
		Timeout:         *timeout,
		Seed:            *seed,
	}
	if *datasets != "" {
		s.Datasets = strings.Split(*datasets, ",")
	}

	figs := s.Figures()
	ids := []string{*fig}
	if *fig == "all" {
		ids = bench.FigureOrder
	}
	for _, id := range ids {
		run, ok := figs[id]
		if !ok {
			log.Fatalf("unknown figure %q (want one of %v)", id, bench.FigureOrder)
		}
		started := time.Now()
		tbl, err := run()
		if err != nil {
			log.Fatal(err)
		}
		tbl.AddNote("wall time for this table: %.1fs", time.Since(started).Seconds())
		render := tbl.Render
		if *asCSV {
			render = tbl.RenderCSV
		}
		if err := render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "done (edges=%d queries=%d timeout=%v seed=%d)\n", *edges, *queries, *timeout, *seed)
}
