// Command tkcbench regenerates the tables and figures of the paper's
// evaluation section on scaled synthetic dataset replicas.
//
// Usage:
//
//	tkcbench -fig all                      # every table/figure
//	tkcbench -fig 6 -edges 20000 -queries 3
//	tkcbench -fig 7 -datasets CM,PL -timeout 10s
//
// Figure ids: table3, 4, 6, 7, 8, 9, 10, 11, 12.
//
// With -snapshot FILE the figure run is replaced by a machine-readable
// perf snapshot: each dataset's default workload is measured with the
// sequential loop and with the -parallel worker pool, and the
// measurements are written as JSON (the format committed as BENCH_*.json
// records).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"strings"
	"time"

	"temporalkcore/internal/bench"
	"temporalkcore/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tkcbench: ")

	var (
		fig      = flag.String("fig", "all", "figure to regenerate (table3, 4, 6-12, or all)")
		edges    = flag.Int("edges", 20000, "target edges per dataset replica")
		queries  = flag.Int("queries", 3, "random query ranges per data point (paper: 100)")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-query time limit for EnumBase/OTCD (paper: 6h)")
		seed     = flag.Int64("seed", 1, "replica and workload seed")
		datasets = flag.String("datasets", "", "comma-separated dataset codes (default: figure's own set)")
		asCSV    = flag.Bool("csv", false, "emit CSV instead of aligned tables")
		parallel = flag.Int("parallel", 1, "worker-pool size per workload (1 = sequential, -1 = all CPUs)")
		snapshot = flag.String("snapshot", "", "write a JSON perf snapshot to this file instead of rendering figures")
	)
	flag.Parse()

	s := &bench.Suite{
		TargetEdges:     *edges,
		QueriesPerPoint: *queries,
		Timeout:         *timeout,
		Seed:            *seed,
		Parallelism:     *parallel,
	}
	if *datasets != "" {
		s.Datasets = strings.Split(*datasets, ",")
	}

	if *snapshot != "" {
		if err := writeSnapshot(*snapshot, s, *parallel); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "snapshot written to %s\n", *snapshot)
		return
	}

	figs := s.Figures()
	ids := []string{*fig}
	if *fig == "all" {
		ids = bench.FigureOrder
	}
	for _, id := range ids {
		run, ok := figs[id]
		if !ok {
			log.Fatalf("unknown figure %q (want one of %v)", id, bench.FigureOrder)
		}
		started := time.Now()
		tbl, err := run()
		if err != nil {
			log.Fatal(err)
		}
		tbl.AddNote("wall time for this table: %.1fs", time.Since(started).Seconds())
		render := tbl.Render
		if *asCSV {
			render = tbl.RenderCSV
		}
		if err := render(os.Stdout); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Fprintf(os.Stderr, "done (edges=%d queries=%d timeout=%v seed=%d)\n", *edges, *queries, *timeout, *seed)
}

// snapshotMeasurement is one workload measurement in milliseconds.
type snapshotMeasurement struct {
	CoreTimeMS float64 `json:"core_time_ms"`
	EnumTimeMS float64 `json:"enum_time_ms"`
	WallMS     float64 `json:"wall_ms"`
	Cores      int64   `json:"cores"`
	REdges     int64   `json:"r_edges"`
	VCTSize    int     `json:"vct_size"`
	ECSSize    int     `json:"ecs_size"`
}

type snapshotDataset struct {
	Code       string              `json:"code"`
	K          int                 `json:"k"`
	Queries    int                 `json:"queries"`
	Sequential snapshotMeasurement `json:"sequential"`
	Parallel   snapshotMeasurement `json:"parallel"`
}

type snapshotFile struct {
	TargetEdges int               `json:"target_edges"`
	Seed        int64             `json:"seed"`
	Parallelism int               `json:"parallelism"`
	GOMAXPROCS  int               `json:"gomaxprocs"`
	Datasets    []snapshotDataset `json:"datasets"`
}

func toSnapshot(m bench.Measurement) snapshotMeasurement {
	return snapshotMeasurement{
		CoreTimeMS: float64(m.CoreTime) / float64(time.Millisecond),
		EnumTimeMS: float64(m.EnumTime) / float64(time.Millisecond),
		WallMS:     float64(m.Total) / float64(time.Millisecond),
		Cores:      m.Cores,
		REdges:     m.REdges,
		VCTSize:    m.VCTSize,
		ECSSize:    m.ECSSize,
	}
}

// writeSnapshot measures the default Enum workload per dataset with the
// sequential loop and the worker pool, and writes the results as JSON.
func writeSnapshot(path string, s *bench.Suite, parallel int) error {
	if parallel == 0 || parallel == 1 {
		// 0 and 1 both mean "sequential" to the harness, which would make
		// the snapshot's parallel section a second sequential run; measure
		// a real pool instead.
		parallel = -1
	}
	codes := s.Datasets
	if len(codes) == 0 {
		codes = bench.SweepDatasets
	}
	out := snapshotFile{
		TargetEdges: s.TargetEdges,
		Seed:        s.Seed,
		Parallelism: parallel,
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
	}
	for _, code := range codes {
		d, err := bench.LoadDataset(code, s.TargetEdges, s.Seed)
		if err != nil {
			return err
		}
		k := d.K(bench.DefaultKPct)
		qs := d.Queries(k, bench.DefaultRangePct, s.QueriesPerPoint, s.Seed)
		if len(qs) == 0 {
			log.Printf("snapshot: no query ranges for %s, skipping", code)
			continue
		}
		seq, err := bench.Run(d, k, qs, core.AlgoEnum, bench.RunOptions{Timeout: s.Timeout})
		if err != nil {
			return err
		}
		par, err := bench.Run(d, k, qs, core.AlgoEnum, bench.RunOptions{Timeout: s.Timeout, Parallelism: parallel})
		if err != nil {
			return err
		}
		out.Datasets = append(out.Datasets, snapshotDataset{
			Code: code, K: k, Queries: len(qs),
			Sequential: toSnapshot(seq), Parallel: toSnapshot(par),
		})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
