// Command tkcvet is the repository's invariant checker: a `go vet
// -vettool` binary bundling the four custom analyzers in
// internal/analysis. Run it over the whole module with
//
//	scripts/lint.sh        # builds tkcvet, runs it + gofmt + vet
//
// or directly:
//
//	go build -o /tmp/tkcvet ./cmd/tkcvet
//	go vet -vettool=/tmp/tkcvet ./...
//
// The unitchecker driver speaks go vet's JSON protocol, so facts flow
// between packages exactly as they do for the standard vet analyzers —
// annotations on tgraph and epoch internals are enforced against the
// public layer without any shared configuration.
package main

import (
	"temporalkcore/internal/analysis/ctxpropagate"
	"temporalkcore/internal/analysis/epochsafety"
	"temporalkcore/internal/analysis/guardedby"
	"temporalkcore/internal/analysis/poolhygiene"
	"temporalkcore/internal/xtools/go/analysis/unitchecker"
)

func main() {
	unitchecker.Main(
		epochsafety.Analyzer,
		guardedby.Analyzer,
		poolhygiene.Analyzer,
		ctxpropagate.Analyzer,
	)
}
