package main

import (
	"strings"
	"testing"
)

// TestUsageMentions pins the help text's contract: every subcommand is
// listed, the -h escape hatch is pointed at, and the local lint
// one-liner (scripts/lint.sh driving the tkcvet invariant analyzers) is
// advertised to contributors.
func TestUsageMentions(t *testing.T) {
	var sb strings.Builder
	usageTo(&sb)
	out := sb.String()
	for _, want := range []string{
		"tkc query",
		"tkc serve",
		"tkc snapshot",
		"tkc help",
		`"tkc query -h"`,
		`"tkc serve -h"`,
		`"tkc snapshot -h"`,
		"-data",
		"scripts/lint.sh",
		"tkcvet",
		"cmd/tkcvet",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("usage output does not mention %q:\n%s", want, out)
		}
	}
}
