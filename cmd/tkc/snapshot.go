package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"

	tkc "temporalkcore"
)

// runSnapshot is the snapshot subcommand: it opens (recovering) a data
// directory, optionally bootstraps it from an edge-list file when empty,
// persists a segment snapshot of the current state and compacts the WAL
// chain behind it. Useful for converting a flat edge file into a data
// directory, and for forcing compaction on a directory a crashed server
// left with a long WAL suffix.
func runSnapshot(args []string) {
	fs := flag.NewFlagSet("tkc snapshot", flag.ExitOnError)
	var (
		dataDir   = fs.String("data", "", "data directory to open (required)")
		graphPath = fs.String("graph", "", "edge-list file to bootstrap an empty directory from")
	)
	fs.Parse(args)
	if *dataDir == "" {
		log.Fatal("snapshot: -data is required")
	}

	d, err := tkc.OpenDir(*dataDir)
	if err != nil {
		log.Fatal(err)
	}
	defer d.Close()

	if d.Graph() == nil {
		if *graphPath == "" {
			log.Fatalf("snapshot: %s is empty and no -graph was given to bootstrap it", *dataDir)
		}
		edges, err := loadEdgeFile(*graphPath)
		if err != nil {
			log.Fatal(err)
		}
		g, err := d.Bootstrap(edges)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("snapshot: bootstrapped %s from %s: %d vertices, %d edges\n",
			*dataDir, *graphPath, g.NumVertices(), g.NumEdges())
	} else if *graphPath != "" {
		log.Printf("snapshot: %s already holds a graph (seq %d); ignoring -graph", *dataDir, d.Seq())
	}

	seq, err := d.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	g := d.Graph()
	fmt.Printf("snapshot: persisted seq %d (%d vertices, %d edges) to %s\n",
		seq, g.NumVertices(), g.NumEdges(), *dataDir)
}

// loadEdgeFile parses a whole edge-list file ("u v t" / KONECT / NDJSON
// lines, the AppendReader formats) into edges in file order.
func loadEdgeFile(path string) ([]tkc.Edge, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	var edges []tkc.Edge
	lineNo := 0
	for sc.Scan() {
		lineNo++
		e, ok, err := tkc.ParseEdgeLine(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("%s line %d: %w", path, lineNo, err)
		}
		if ok {
			edges = append(edges, e)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	return edges, nil
}
