// Command tkc runs time-range temporal k-core queries on an edge-list file.
//
// Usage:
//
//	tkc -graph edges.txt -k 3 -start 0 -end 99999999 [-algo enum|base|otcd] [-count] [-limit 10]
//
// The graph file holds "u v t" (or KONECT "u v w t") lines. With -count only
// the number of distinct cores and the total result size are reported; the
// default prints every core's tightest time interval, vertices and edges.
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"sort"
	"time"

	tkc "temporalkcore"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tkc: ")

	var (
		graphPath = flag.String("graph", "", "temporal edge list file (u v t per line)")
		k         = flag.Int("k", 2, "core parameter k")
		start     = flag.Int64("start", math.MinInt64, "query range start (raw timestamp, default: whole graph)")
		end       = flag.Int64("end", math.MaxInt64, "query range end (raw timestamp, default: whole graph)")
		algoName  = flag.String("algo", "enum", "algorithm: enum, base, or otcd")
		countOnly = flag.Bool("count", false, "only count results")
		limit     = flag.Int("limit", 0, "stop after this many cores (0 = all)")
		quiet     = flag.Bool("q", false, "do not print per-core edge lists")
	)
	flag.Parse()

	if *graphPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	var algo tkc.Algorithm
	switch *algoName {
	case "enum":
		algo = tkc.AlgoEnum
	case "base":
		algo = tkc.AlgoEnumBase
	case "otcd":
		algo = tkc.AlgoOTCD
	default:
		log.Fatalf("unknown algorithm %q (want enum, base, or otcd)", *algoName)
	}

	g, err := tkc.LoadFile(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := g.TimeSpan()
	fmt.Printf("graph: %d vertices, %d edges, %d distinct timestamps in [%d, %d], kmax=%d\n",
		g.NumVertices(), g.NumEdges(), g.TimestampCount(), lo, hi, g.KMax())

	t0 := time.Now()
	n := 0
	qs, err := g.CoresFunc(*k, *start, *end, func(c tkc.Core) bool {
		n++
		if !*countOnly {
			printCore(n, c, *quiet)
		}
		return *limit == 0 || n < *limit
	}, tkc.Options{Algorithm: algo})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d distinct temporal %d-cores, |R|=%d edges, |VCT|=%d, |ECS|=%d, %.3fs (%s)\n",
		qs.Cores, *k, qs.Edges, qs.VCTSize, qs.ECSSize, time.Since(t0).Seconds(), *algoName)
}

func printCore(i int, c tkc.Core, quiet bool) {
	verts := map[int64]bool{}
	for _, e := range c.Edges {
		verts[e.U] = true
		verts[e.V] = true
	}
	vs := make([]int64, 0, len(verts))
	for v := range verts {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(a, b int) bool { return vs[a] < vs[b] })
	fmt.Printf("core %d: TTI=[%d,%d] %d vertices %d edges\n  vertices: %v\n", i, c.Start, c.End, len(vs), len(c.Edges), vs)
	if !quiet {
		fmt.Print("  edges:")
		for _, e := range c.Edges {
			fmt.Printf(" (%d,%d)@%d", e.U, e.V, e.Time)
		}
		fmt.Println()
	}
}
