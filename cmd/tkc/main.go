// Command tkc runs and serves time-range temporal k-core queries.
//
// Subcommands:
//
//	tkc query    -graph edges.txt -k 3 [...]   one-shot / batch / follow queries
//	tkc serve    -graph edges.txt -addr :8177  HTTP serving layer (see below)
//	tkc snapshot -data dir [-graph edges.txt]  persist/bootstrap a data directory
//	tkc help                                   this text
//
// For compatibility with pre-subcommand invocations, running tkc with
// flags directly (tkc -graph ... -k 3, tail -f s | tkc -follow ...) is
// equivalent to tkc query with the same flags.
//
// Query mode:
//
//	tkc query -graph edges.txt -k 3 -start 0 -end 99999999 [-algo enum|base|otcd] [-count] [-limit 10]
//	tkc query -graph edges.txt -ks 2,3,4,5 -count [-parallel 4]
//	tail -f stream.ndjson | tkc query -follow -k 3 -span 3600 -every 500 [-readers 4] [-cache-mb 64]
//
// The graph file holds "u v t" (or KONECT "u v w t") lines. With -count only
// the number of distinct cores and the total result size are reported; the
// default prints every core's tightest time interval, vertices and edges.
// -ks runs one query per listed k over the same range as a parallel batch
// (Graph.QueryBatch) and prints a per-k summary table.
//
// -follow tails a live edge stream from stdin ("u v t" text or NDJSON
// {"u":..,"v":..,"t":..} lines, timestamps non-decreasing), appends it to
// the graph in batches of -every edges, and reports the k-core count over
// the trailing -span raw timestamps after each batch, with the CoreTime
// tables patched incrementally (Graph.Watch) rather than rebuilt. Without
// -graph the first batch bootstraps the graph.
//
// Serve mode exposes the query engine over HTTP — POST /v1/query (chunked
// NDJSON core streams), POST /v1/append (batched edge ingest, one epoch
// published per batch), GET /v1/stats and GET /metrics — with admission
// control, per-request deadlines and graceful shutdown; see the
// "Serving over HTTP" section of the README and cmd/tkcload for the load
// generator that drives it.
package main

import (
	"fmt"
	"io"
	"log"
	"os"
	"strings"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tkc: ")

	args := os.Args[1:]
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		switch args[0] {
		case "query":
			runQuery(args[1:])
		case "serve":
			runServe(args[1:])
		case "snapshot":
			runSnapshot(args[1:])
		case "help", "-h", "--help":
			usage()
		default:
			log.Printf("unknown subcommand %q", args[0])
			usage()
			os.Exit(2)
		}
		return
	}
	// Legacy invocation: bare flags mean the query subcommand.
	runQuery(args)
}

func usage() { usageTo(os.Stderr) }

func usageTo(w io.Writer) {
	fmt.Fprintf(w, `usage:
  tkc query -graph edges.txt -k 3 [...]    run queries (also: bare "tkc -graph ...")
  tkc serve -graph edges.txt -addr :8177   serve queries over HTTP
  tkc serve -data dir [...]                serve durably: WAL-logged appends,
                                           snapshots, warm restarts
  tkc snapshot -data dir [-graph edges]    persist a snapshot / bootstrap a
                                           data directory from an edge file
  tkc help                                 show this text

Run "tkc query -h", "tkc serve -h" or "tkc snapshot -h" for the full flag
list.

Developing against this repo? scripts/lint.sh runs gofmt, go vet and the
tkcvet invariant analyzers (cmd/tkcvet) — the same gate CI enforces.
`)
}
