package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	tkc "temporalkcore"
	"temporalkcore/internal/serve"
)

// runServe is the serve subcommand: the HTTP serving layer over Query API
// v2. It loads (or waits for /v1/append to bootstrap) a graph, binds the
// listener, prints the bound address — so scripts can use -addr :0 — and
// serves until SIGINT/SIGTERM, then drains in-flight streams.
func runServe(args []string) {
	fs := flag.NewFlagSet("tkc serve", flag.ExitOnError)
	var (
		addr          = fs.String("addr", "127.0.0.1:8177", "listen address (host:port; port 0 picks a free port)")
		graphPath     = fs.String("graph", "", "temporal edge list file to serve (empty: bootstrap from the first /v1/append)")
		cacheMB       = fs.Int("cache-mb", 64, "serving-cache budget in MiB (0 disables)")
		maxInflight   = fs.Int("max-inflight", 0, "max concurrent query/append requests (0 = 8 per CPU); excess gets 503")
		admissionWait = fs.Duration("admission-wait", 10*time.Millisecond, "how long a request may wait for an admission slot before 503")
		deadline      = fs.Duration("deadline", 30*time.Second, "default per-query deadline (overridable per request via deadlineMs)")
		maxDeadline   = fs.Duration("max-deadline", 5*time.Minute, "cap on per-request deadlines")
		batch         = fs.Int("batch", 1024, "append: edges per batch (one epoch published per batch)")
		epochRetain   = fs.Int("epoch-retain", 8, "recently published epochs kept addressable via the epoch request field")
		drain         = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain budget for in-flight streams")
	)
	fs.Parse(args)

	cfg := serve.Config{
		Cache:           &tkc.CacheOptions{MaxBytes: int64(*cacheMB) << 20, Disable: *cacheMB <= 0},
		MaxInFlight:     *maxInflight,
		AdmissionWait:   *admissionWait,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		AppendBatch:     *batch,
		EpochRetain:     *epochRetain,
	}
	if *graphPath != "" {
		g, err := tkc.LoadFile(*graphPath)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Graph = g
		lo, hi := g.TimeSpan()
		fmt.Printf("serve: graph %s: %d vertices, %d edges, %d distinct timestamps in [%d, %d]\n",
			*graphPath, g.NumVertices(), g.NumEdges(), g.TimestampCount(), lo, hi)
	} else {
		fmt.Println("serve: no graph loaded; waiting for the first POST /v1/append to bootstrap")
	}

	s := serve.New(cfg)
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// The listening line is a contract: smoke scripts and tests parse the
	// bound address from it (so -addr :0 works).
	fmt.Printf("serve: listening on http://%s\n", l.Addr())
	os.Stdout.Sync()

	errc := make(chan error, 1)
	go func() { errc <- s.Serve(l) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	case <-sig:
		fmt.Println("serve: shutting down, draining in-flight streams")
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		<-errc
	}
	fmt.Println("serve: bye")
}
