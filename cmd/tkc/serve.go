package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	tkc "temporalkcore"
	"temporalkcore/internal/serve"
)

// runServe is the serve subcommand: the HTTP serving layer over Query API
// v2. It loads (or waits for /v1/append to bootstrap) a graph, binds the
// listener, prints the bound address — so scripts can use -addr :0 — and
// serves until SIGINT/SIGTERM, then drains in-flight streams.
func runServe(args []string) {
	fs := flag.NewFlagSet("tkc serve", flag.ExitOnError)
	var (
		addr          = fs.String("addr", "127.0.0.1:8177", "listen address (host:port; port 0 picks a free port)")
		graphPath     = fs.String("graph", "", "temporal edge list file to serve (empty: bootstrap from the first /v1/append)")
		cacheMB       = fs.Int("cache-mb", 64, "serving-cache budget in MiB (0 disables)")
		maxInflight   = fs.Int("max-inflight", 0, "max concurrent query/append requests (0 = 8 per CPU); excess gets 503")
		admissionWait = fs.Duration("admission-wait", 10*time.Millisecond, "how long a request may wait for an admission slot before 503")
		deadline      = fs.Duration("deadline", 30*time.Second, "default per-query deadline (overridable per request via deadlineMs)")
		maxDeadline   = fs.Duration("max-deadline", 5*time.Minute, "cap on per-request deadlines")
		batch         = fs.Int("batch", 1024, "append: edges per batch (one epoch published per batch)")
		epochRetain   = fs.Int("epoch-retain", 8, "recently published epochs kept addressable via the epoch request field")
		drain         = fs.Duration("drain", 10*time.Second, "graceful-shutdown drain budget for in-flight streams")
		dataDir       = fs.String("data", "", "data directory for durability: WAL-logged appends, snapshots, warm restarts")
		snapEvery     = fs.Duration("snapshot-every", 0, "background snapshot interval with -data (0: only on shutdown and POST /v1/snapshot)")
		shards        = fs.Int("shards", 0, "serve time-range shards: initial partition count (0: unsharded; requires -graph or a sharded -data dir)")
		shardReplicas = fs.Int("shard-replicas", 0, "reader replicas per shard (0: default)")
		maxShardEdges = fs.Int("max-shard-edges", 0, "auto-seal the frontier shard once it holds this many edges (0: manual/initial partition only)")
	)
	fs.Parse(args)

	cfg := serve.Config{
		Cache:           &tkc.CacheOptions{MaxBytes: int64(*cacheMB) << 20, Disable: *cacheMB <= 0},
		MaxInFlight:     *maxInflight,
		AdmissionWait:   *admissionWait,
		DefaultDeadline: *deadline,
		MaxDeadline:     *maxDeadline,
		AppendBatch:     *batch,
		EpochRetain:     *epochRetain,
	}
	var durable *tkc.DurableGraph
	var sharded *tkc.ShardedGraph
	if *shards > 0 {
		so := tkc.ShardOptions{Shards: *shards, Replicas: *shardReplicas, MaxShardEdges: *maxShardEdges}
		switch {
		case *dataDir != "":
			sg, err := tkc.OpenShardedDir(*dataDir, so)
			if err != nil && *graphPath != "" {
				// Not an openable sharded directory; bootstrap it from the
				// edge file (fails loudly when the directory is non-empty).
				edges, lerr := loadEdgeFile(*graphPath)
				if lerr != nil {
					log.Fatal(lerr)
				}
				sg, lerr = tkc.BootstrapShardedDir(*dataDir, edges, so)
				if lerr != nil {
					log.Fatalf("open sharded %s: %v; bootstrap from %s: %v", *dataDir, err, *graphPath, lerr)
				}
				fmt.Printf("serve: bootstrapped sharded %s from %s: %d shards, %d edges\n",
					*dataDir, *graphPath, sg.NumShards(), sg.Spine().NumEdges())
			} else if err != nil {
				log.Fatalf("open sharded %s: %v (an empty directory needs -graph to bootstrap)", *dataDir, err)
			} else {
				if *graphPath != "" {
					log.Printf("serve: %s already holds a graph; ignoring -graph", *dataDir)
				}
				fmt.Printf("serve: recovered sharded %s at seq %d: %d shards, %d edges\n",
					*dataDir, sg.Latest().Seq(), sg.NumShards(), sg.Spine().NumEdges())
			}
			sharded = sg
		case *graphPath != "":
			g, err := tkc.LoadFile(*graphPath)
			if err != nil {
				log.Fatal(err)
			}
			sg, err := tkc.ShardGraph(g, so)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("serve: graph %s in %d time-range shards: %d vertices, %d edges\n",
				*graphPath, sg.NumShards(), g.NumVertices(), g.NumEdges())
			sharded = sg
		default:
			log.Fatal("serve: -shards needs -graph or a sharded -data directory")
		}
		cfg.Sharded = sharded
	} else if *dataDir != "" {
		d, err := tkc.OpenDir(*dataDir)
		if err != nil {
			log.Fatal(err)
		}
		durable = d
		cfg.Durable = d
		switch {
		case d.Graph() != nil:
			if *graphPath != "" {
				log.Printf("serve: %s already holds a graph (seq %d); ignoring -graph", *dataDir, d.Seq())
			}
			fmt.Printf("serve: recovered %s at seq %d: %d vertices, %d edges, %d warm cache entries\n",
				*dataDir, d.Seq(), d.Graph().NumVertices(), d.Graph().NumEdges(), d.WarmEntries())
		case *graphPath != "":
			edges, err := loadEdgeFile(*graphPath)
			if err != nil {
				log.Fatal(err)
			}
			g, err := d.Bootstrap(edges)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("serve: bootstrapped %s from %s: %d vertices, %d edges\n",
				*dataDir, *graphPath, g.NumVertices(), g.NumEdges())
		default:
			fmt.Printf("serve: %s is empty; waiting for the first POST /v1/append to bootstrap\n", *dataDir)
		}
	} else if *graphPath != "" {
		g, err := tkc.LoadFile(*graphPath)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Graph = g
		lo, hi := g.TimeSpan()
		fmt.Printf("serve: graph %s: %d vertices, %d edges, %d distinct timestamps in [%d, %d]\n",
			*graphPath, g.NumVertices(), g.NumEdges(), g.TimestampCount(), lo, hi)
	} else {
		fmt.Println("serve: no graph loaded; waiting for the first POST /v1/append to bootstrap")
	}

	s := serve.New(cfg)
	l, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	// The listening line is a contract: smoke scripts and tests parse the
	// bound address from it (so -addr :0 works).
	fmt.Printf("serve: listening on http://%s\n", l.Addr())
	os.Stdout.Sync()

	errc := make(chan error, 1)
	go func() { errc <- s.Serve(l) }()

	// Background snapshot cadence: the cut is cheap (copy-on-write freeze +
	// WAL rotation) and the serialization runs off the writer path, so the
	// timer never stalls appends.
	stopSnap := make(chan struct{})
	if (durable != nil || (sharded != nil && sharded.Durable())) && *snapEvery > 0 {
		go func() {
			t := time.NewTicker(*snapEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if seq, err := s.Snapshot(); err == nil {
						fmt.Printf("serve: snapshot at seq %d\n", seq)
					}
				case <-stopSnap:
					return
				}
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			log.Fatal(err)
		}
	case <-sig:
		fmt.Println("serve: shutting down, draining in-flight streams")
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			log.Printf("shutdown: %v", err)
		}
		<-errc
	}
	close(stopSnap)
	if sharded != nil {
		if sharded.Durable() {
			// Final snapshot (spine only — sealed shard segments are already
			// durable) so the next start recovers without WAL replay.
			if seq, err := s.Snapshot(); err != nil {
				log.Printf("final snapshot: %v", err)
			} else {
				fmt.Printf("serve: final snapshot at seq %d\n", seq)
			}
		}
		if err := sharded.Close(); err != nil {
			log.Printf("closing sharded graph: %v", err)
		}
	}
	if durable != nil {
		// Final snapshot so the next start recovers without WAL replay and
		// with a warm cache spill of the state being served right now.
		if durable.Graph() != nil {
			if seq, err := s.Snapshot(); err != nil {
				log.Printf("final snapshot: %v", err)
			} else {
				fmt.Printf("serve: final snapshot at seq %d\n", seq)
			}
		}
		if err := durable.Close(); err != nil {
			log.Printf("closing %s: %v", *dataDir, err)
		}
	}
	fmt.Println("serve: bye")
}
