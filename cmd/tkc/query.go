package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	tkc "temporalkcore"
)

// runQuery is the query subcommand (and the legacy bare-flag mode): one-shot
// and batch queries on an edge-list file, or -follow streaming ingest.
func runQuery(args []string) {
	fs := flag.NewFlagSet("tkc query", flag.ExitOnError)
	var (
		graphPath = fs.String("graph", "", "temporal edge list file (u v t per line)")
		k         = fs.Int("k", 2, "core parameter k")
		start     = fs.Int64("start", math.MinInt64, "query range start (raw timestamp, default: whole graph)")
		end       = fs.Int64("end", math.MaxInt64, "query range end (raw timestamp, default: whole graph)")
		algoName  = fs.String("algo", "enum", "algorithm: enum, base, or otcd")
		countOnly = fs.Bool("count", false, "only count results")
		limit     = fs.Int("limit", 0, "stop after this many cores (0 = all)")
		quiet     = fs.Bool("q", false, "do not print per-core edge lists")
		ks        = fs.String("ks", "", "comma-separated k values run as one parallel batch (overrides -k)")
		parallel  = fs.Int("parallel", -1, "batch worker-pool size for -ks (-1 = all CPUs)")
		follow    = fs.Bool("follow", false, "tail an edge stream from stdin and report trailing-window cores per batch")
		span      = fs.Int64("span", 0, "follow: trailing window span in raw time units (0 = entire history)")
		every     = fs.Int("every", 1000, "follow: append batch size in edges")
		readers   = fs.Int("readers", 0, "follow: serve this many concurrent query readers during ingest (0 = report inline only)")
		cacheMB   = fs.Int("cache-mb", 64, "serving-cache budget in MiB for repeated (epoch, k, window) queries (0 disables)")
	)
	fs.Parse(args)

	cacheOpts := tkc.CacheOptions{MaxBytes: int64(*cacheMB) << 20, Disable: *cacheMB <= 0}

	if *follow {
		runFollow(*graphPath, *k, *span, *every, *readers, cacheOpts)
		return
	}
	if *graphPath == "" {
		fs.Usage()
		os.Exit(2)
	}
	algo, err := tkc.ParseAlgorithm(*algoName)
	if err != nil {
		log.Fatalf("unknown algorithm %q (want enum, base, or otcd)", *algoName)
	}

	g, err := tkc.LoadFile(*graphPath)
	if err != nil {
		log.Fatal(err)
	}
	g.SetCacheOptions(cacheOpts)
	lo, hi := g.TimeSpan()
	fmt.Printf("graph: %d vertices, %d edges, %d distinct timestamps in [%d, %d], kmax=%d\n",
		g.NumVertices(), g.NumEdges(), g.TimestampCount(), lo, hi, g.KMax())

	// Ctrl-C cancels the running query through the v2 context plumbing:
	// both phases poll the context and return promptly with partial output.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if *ks != "" {
		runBatch(ctx, g, *ks, *start, *end, algo, *parallel)
		return
	}

	req := g.Query(*k).Window(*start, *end).Algorithm(algo)
	if *countOnly {
		req.Project(tkc.ProjectCount)
	}
	if *limit > 0 {
		req.EarlyStop(*limit)
	}
	var qs tkc.QueryStats
	req.Stats(&qs)
	t0 := time.Now()
	n := 0
	for c, err := range req.Seq(ctx) {
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Printf("\ninterrupted after %d cores\n", n)
				break
			}
			log.Fatal(err)
		}
		n++
		if !*countOnly {
			printCore(n, c, *quiet)
		}
	}
	fmt.Printf("\n%d distinct temporal %d-cores, |R|=%d edges, |VCT|=%d, |ECS|=%d, %.3fs (core %.3fs + enum %.3fs, %s)\n",
		qs.Cores, *k, qs.Edges, qs.VCTSize, qs.ECSSize, time.Since(t0).Seconds(),
		qs.CoreTime.Seconds(), qs.EnumTime.Seconds(), *algoName)
}

// runBatch executes one query per k value over the same range as a parallel
// batch and prints a per-k summary. Only the counts are reported, so the
// batch always runs in count-only mode regardless of -count: materialising
// every core of every k just to discard it could exhaust memory on large
// graphs.
func runBatch(ctx context.Context, g *tkc.Graph, ks string, start, end int64, algo tkc.Algorithm, parallel int) {
	var reqs []*tkc.Request
	var kvals []int
	for _, f := range strings.Split(ks, ",") {
		k, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			log.Fatalf("bad -ks entry %q: %v", f, err)
		}
		kvals = append(kvals, k)
		reqs = append(reqs, g.Query(k).Window(start, end).Algorithm(algo).Project(tkc.ProjectCount))
	}
	t0 := time.Now()
	res := g.RunBatch(ctx, reqs, tkc.BatchOptions{Parallelism: parallel})
	wall := time.Since(t0)
	fmt.Printf("\n%6s %10s %12s %8s %8s %10s %10s\n", "k", "cores", "|R|", "|VCT|", "|ECS|", "core(s)", "enum(s)")
	for i, r := range res {
		if r.Cancelled {
			fmt.Printf("%6d interrupted\n", kvals[i])
			continue
		}
		if r.Err != nil {
			fmt.Printf("%6d error: %v\n", r.Spec.K, r.Err)
			continue
		}
		fmt.Printf("%6d %10d %12d %8d %8d %10.3f %10.3f\n",
			r.Spec.K, r.Stats.Cores, r.Stats.Edges, r.Stats.VCTSize, r.Stats.ECSSize,
			r.Stats.CoreTime.Seconds(), r.Stats.EnumTime.Seconds())
	}
	fmt.Printf("batch of %d queries in %.3fs wall\n", len(reqs), wall.Seconds())
}

// runFollow tails an edge stream from stdin. With -graph the stream
// appends to a loaded graph; otherwise the first -every edges bootstrap
// one. After each appended batch the trailing-window core count is
// refreshed through a Watcher, so the CoreTime tables are patched for the
// dirty time-suffix instead of rebuilt.
//
// With -readers N the command also serves queries concurrently with the
// ingest: N goroutines continuously run trailing-window count queries
// against the latest published epoch (each query pins the epoch published
// by the last batch), demonstrating snapshot-isolated serving — readers
// never block the appending writer and never see a half-applied batch.
// With the serving cache enabled (-cache-mb > 0), each batch's refreshed
// CoreTime tables are shared through the cache, so the readers' repeat
// queries on a hot window skip the CoreTime phase; the end-of-stream
// summary reports the hit rate alongside per-reader query counts and
// aggregate QPS.
func runFollow(graphPath string, k int, span int64, every, readers int, cacheOpts tkc.CacheOptions) {
	if every < 1 {
		every = 1
	}
	in := bufio.NewReaderSize(os.Stdin, 1<<16)

	var g *tkc.Graph
	var err error
	if graphPath != "" {
		if g, err = tkc.LoadFile(graphPath); err != nil {
			log.Fatal(err)
		}
	} else {
		var boot []tkc.Edge
		for len(boot) < every {
			line, rerr := in.ReadString('\n')
			if line != "" {
				e, ok, perr := tkc.ParseEdgeLine(line)
				if perr != nil {
					log.Fatalf("stdin: %v", perr)
				}
				if ok {
					boot = append(boot, e)
				}
			}
			if rerr != nil {
				break
			}
		}
		if len(boot) == 0 {
			log.Fatal("follow: no edges on stdin to bootstrap a graph (pipe a stream or pass -graph)")
		}
		if g, err = tkc.NewGraph(boot); err != nil {
			log.Fatal(err)
		}
	}
	g.SetCacheOptions(cacheOpts)
	w, err := g.Watch(k, span)
	if err != nil {
		log.Fatal(err)
	}
	report := func(appended int, total int) {
		t0 := time.Now()
		qs, err := w.CountCores()
		if err != nil {
			log.Fatal(err)
		}
		ws, we, err := w.Window()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("+%5d edges (total %8d): window [%d,%d] %d-cores=%d |R|=%d refresh+count %.1fms\n",
			appended, total, ws, we, k, qs.Cores, qs.Edges, float64(time.Since(t0).Microseconds())/1000)
	}
	report(g.NumEdges(), g.NumEdges())

	// Concurrent serving: readers hammer the watcher's lock-free read path
	// while the loop below keeps appending.
	ctx, stopServe := context.WithCancel(context.Background())
	var served sync.WaitGroup
	queries := make([]int64, readers)
	serveStart := time.Now()
	for ri := 0; ri < readers; ri++ {
		served.Add(1)
		go func(ri int) {
			defer served.Done()
			for ctx.Err() == nil {
				// Query the latest published epoch's trailing window as a
				// one-shot snapshot request: it resolves to the same
				// (epoch seq, k, window) key the watcher's refresh
				// inserted, so under a hot window these queries are
				// serving-cache hits that skip the CoreTime phase. Before
				// the first publish, fall back to the watcher's pinned
				// view.
				var err error
				if s := g.Latest(); s != nil {
					slo, shi := s.TimeSpan()
					if span > 0 && shi-span+1 > slo {
						slo = shi - span + 1
					}
					_, err = s.Query(k).Window(slo, shi).Count(ctx)
				} else {
					_, err = w.Query().Count(ctx)
				}
				if err != nil {
					if ctx.Err() != nil {
						return
					}
					log.Fatalf("reader %d: %v", ri, err)
				}
				queries[ri]++
			}
		}(ri)
	}

	ar := tkc.NewAppendReader(g, in)
	ar.BatchSize = every
	ar.Via = w // batches publish epochs, so the readers above stay isolated
	for {
		n, err := ar.ReadBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			log.Fatal(err)
		}
		report(n, g.NumEdges())
	}
	stopServe()
	served.Wait()
	st := w.Stats()
	fmt.Printf("stream done: %d edges appended, %d patched refreshes (%.1fms) / %d rebuilds (%.1fms) / %d cache adopts\n",
		ar.Total(), st.Patches, float64(st.PatchTime.Microseconds())/1000,
		st.Rebuilds, float64(st.RebuildTime.Microseconds())/1000, st.CacheAdopts)
	if readers > 0 {
		var total int64
		for _, q := range queries {
			total += q
		}
		secs := time.Since(serveStart).Seconds()
		fmt.Printf("served %d concurrent queries from %d readers during ingest (%.0f QPS, per-reader %v)\n",
			total, readers, float64(total)/secs, queries)
	}
	if !cacheOpts.Disable {
		cs := g.CacheStats()
		rate := 0.0
		if looked := cs.Hits + cs.Misses; looked > 0 {
			rate = 100 * float64(cs.Hits) / float64(looked)
		}
		fmt.Printf("cache: %d hits / %d misses (%.1f%% hit rate), %d singleflight-shared, %d evicted, %d retired, %d entries / %.1f MiB resident\n",
			cs.Hits, cs.Misses, rate, cs.SingleflightShared, cs.Evictions, cs.Retired,
			cs.Entries, float64(cs.Bytes)/(1<<20))
	}
}

func printCore(i int, c tkc.Core, quiet bool) {
	verts := map[int64]bool{}
	for _, e := range c.Edges {
		verts[e.U] = true
		verts[e.V] = true
	}
	vs := make([]int64, 0, len(verts))
	for v := range verts {
		vs = append(vs, v)
	}
	sort.Slice(vs, func(a, b int) bool { return vs[a] < vs[b] })
	fmt.Printf("core %d: TTI=[%d,%d] %d vertices %d edges\n  vertices: %v\n", i, c.Start, c.End, len(vs), len(c.Edges), vs)
	if !quiet {
		fmt.Print("  edges:")
		for _, e := range c.Edges {
			fmt.Printf(" (%d,%d)@%d", e.U, e.V, e.Time)
		}
		fmt.Println()
	}
}
