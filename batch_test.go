package temporalkcore_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"testing"

	tkc "temporalkcore"
)

// randomEdges draws a reproducible random temporal graph through the public
// API, dense enough that small k values have non-trivial cores.
func randomEdges(seed int64, n, m, tmax int) []tkc.Edge {
	r := rand.New(rand.NewSource(seed))
	edges := make([]tkc.Edge, 0, m)
	for i := 0; i < m; i++ {
		u := int64(r.Intn(n))
		v := int64(r.Intn(n))
		if u == v {
			continue
		}
		edges = append(edges, tkc.Edge{U: u, V: v, Time: int64(1 + r.Intn(tmax))})
	}
	return edges
}

func batchSpecs(g *tkc.Graph) []tkc.QuerySpec {
	lo, hi := g.TimeSpan()
	span := hi - lo
	var specs []tkc.QuerySpec
	for k := 1; k <= 4; k++ {
		specs = append(specs,
			tkc.QuerySpec{K: k, Start: lo, End: hi},
			tkc.QuerySpec{K: k, Start: lo + span/4, End: lo + 3*span/4},
			tkc.QuerySpec{K: k, Start: lo, End: lo + span/2},
		)
	}
	return specs
}

// TestQueryBatchMatchesSequential checks that a parallel batch returns,
// query for query, exactly what the sequential API returns — for every
// parallelism level and in original spec order.
func TestQueryBatchMatchesSequential(t *testing.T) {
	g, err := tkc.NewGraph(randomEdges(7, 30, 400, 60))
	if err != nil {
		t.Fatal(err)
	}
	specs := batchSpecs(g)

	want := make([][]tkc.Core, len(specs))
	for i, sp := range specs {
		cores, err := g.Cores(sp.K, sp.Start, sp.End)
		if err != nil {
			t.Fatalf("sequential spec %d: %v", i, err)
		}
		want[i] = cores
	}

	for _, par := range []int{1, 2, 3, runtime.NumCPU(), -1} {
		t.Run(fmt.Sprintf("parallel=%d", par), func(t *testing.T) {
			res := g.QueryBatch(specs, tkc.BatchOptions{Parallelism: par})
			if len(res) != len(specs) {
				t.Fatalf("got %d results, want %d", len(res), len(specs))
			}
			for i, r := range res {
				if r.Err != nil {
					t.Fatalf("spec %d: %v", i, r.Err)
				}
				if r.Spec != specs[i] {
					t.Errorf("result %d carries spec %+v, want %+v", i, r.Spec, specs[i])
				}
				if !reflect.DeepEqual(r.Cores, want[i]) {
					t.Errorf("spec %d: batch cores differ from sequential (%d vs %d cores)", i, len(r.Cores), len(want[i]))
				}
				if int64(len(r.Cores)) != r.Stats.Cores {
					t.Errorf("spec %d: %d cores but Stats.Cores=%d", i, len(r.Cores), r.Stats.Cores)
				}
			}
		})
	}
}

// TestQueryBatchCountOnly checks the count-only mode against full results.
func TestQueryBatchCountOnly(t *testing.T) {
	g, err := tkc.NewGraph(randomEdges(11, 25, 300, 50))
	if err != nil {
		t.Fatal(err)
	}
	specs := batchSpecs(g)
	full := g.QueryBatch(specs, tkc.BatchOptions{Parallelism: -1})
	counted := g.CountBatch(specs, -1)
	for i := range specs {
		if counted[i].Err != nil {
			t.Fatalf("spec %d: %v", i, counted[i].Err)
		}
		if counted[i].Cores != nil {
			t.Errorf("spec %d: CountOnly materialised %d cores", i, len(counted[i].Cores))
		}
		if counted[i].Stats.Cores != full[i].Stats.Cores || counted[i].Stats.Edges != full[i].Stats.Edges {
			t.Errorf("spec %d: count-only stats %+v differ from full %+v", i, counted[i].Stats, full[i].Stats)
		}
	}
}

// TestQueryBatchBadSpecs checks that invalid specs fail individually
// without poisoning their neighbours.
func TestQueryBatchBadSpecs(t *testing.T) {
	g, err := tkc.NewGraph(paperEdges(false))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := g.TimeSpan()
	specs := []tkc.QuerySpec{
		{K: 0, Start: lo, End: hi},             // invalid k
		{K: 2, Start: lo, End: hi},             // fine
		{K: 2, Start: hi + 100, End: hi + 200}, // no timestamps
		{K: 2, Start: lo, End: hi},             // fine
	}
	res := g.QueryBatch(specs)
	if res[0].Err == nil {
		t.Error("k=0 spec succeeded")
	}
	if res[2].Err != tkc.ErrNoTimestamps {
		t.Errorf("empty-range spec: got %v, want ErrNoTimestamps", res[2].Err)
	}
	for _, i := range []int{1, 3} {
		if res[i].Err != nil {
			t.Errorf("spec %d: %v", i, res[i].Err)
		}
		if len(res[i].Cores) == 0 {
			t.Errorf("spec %d returned no cores", i)
		}
	}
	if !reflect.DeepEqual(res[1].Cores, res[3].Cores) {
		t.Error("identical specs returned different cores")
	}
	if got := g.QueryBatch(nil); len(got) != 0 {
		t.Errorf("empty batch returned %d results", len(got))
	}
}

// TestQueryBatchTimings checks the phase-timing satellite: a successful
// Enum query must report a positive CoreTime when it actually runs the
// phase, and a zero CoreTime (plus the CacheHit flag) when the serving
// cache supplies the tables instead.
func TestQueryBatchTimings(t *testing.T) {
	g, err := tkc.NewGraph(randomEdges(3, 30, 400, 60))
	if err != nil {
		t.Fatal(err)
	}
	g.SetCacheOptions(tkc.CacheOptions{Disable: true})
	lo, hi := g.TimeSpan()
	qs, err := g.CountCores(2, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if qs.CoreTime <= 0 {
		t.Errorf("CoresFunc reported CoreTime %v, want > 0", qs.CoreTime)
	}
	if qs.CacheHit {
		t.Error("cache-disabled query reported CacheHit")
	}
	res := g.CountBatch([]tkc.QuerySpec{{K: 2, Start: lo, End: hi}}, 1)
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	if res[0].Stats.CoreTime <= 0 {
		t.Errorf("batch reported CoreTime %v, want > 0", res[0].Stats.CoreTime)
	}

	// With the cache enabled, the same repeated query skips the phase:
	// the first execution pays (and reports) the build, the repeat is a
	// hit with CoreTime zero.
	g.SetCacheOptions(tkc.CacheOptions{})
	if qs, err = g.CountCores(2, lo, hi); err != nil {
		t.Fatal(err)
	}
	if qs.CacheHit || qs.CoreTime <= 0 {
		t.Errorf("first cached run: CacheHit=%v CoreTime=%v, want miss with CoreTime > 0", qs.CacheHit, qs.CoreTime)
	}
	if qs, err = g.CountCores(2, lo, hi); err != nil {
		t.Fatal(err)
	}
	if !qs.CacheHit || qs.CoreTime != 0 {
		t.Errorf("repeat cached run: CacheHit=%v CoreTime=%v, want hit with CoreTime 0", qs.CacheHit, qs.CoreTime)
	}
}

// TestConcurrentBatchAndPrepared hammers the scratch pools from many
// goroutines at once — batches, prepared queries and one-shot queries
// interleaved — and checks every result. Run under -race this is the
// concurrency-safety proof for the pooled engine.
func TestConcurrentBatchAndPrepared(t *testing.T) {
	g, err := tkc.NewGraph(randomEdges(19, 30, 500, 70))
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := g.TimeSpan()
	specs := batchSpecs(g)
	want := g.QueryBatch(specs, tkc.BatchOptions{Parallelism: 1})

	p, err := g.Prepare(2, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	wantPrepared, err := p.Count()
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for iter := 0; iter < 5; iter++ {
				switch (w + iter) % 3 {
				case 0:
					res := g.QueryBatch(specs, tkc.BatchOptions{Parallelism: 2})
					for i := range res {
						if res[i].Err != nil {
							errs <- fmt.Errorf("batch spec %d: %v", i, res[i].Err)
							return
						}
						if !reflect.DeepEqual(res[i].Cores, want[i].Cores) {
							errs <- fmt.Errorf("batch spec %d diverged", i)
							return
						}
					}
				case 1:
					qs, err := p.Count()
					if err != nil {
						errs <- err
						return
					}
					if qs.Cores != wantPrepared.Cores || qs.Edges != wantPrepared.Edges {
						errs <- fmt.Errorf("prepared count diverged: %+v vs %+v", qs, wantPrepared)
						return
					}
				default:
					qs, err := g.CountCores(2, lo, hi)
					if err != nil {
						errs <- err
						return
					}
					if qs.Cores != wantPrepared.Cores {
						errs <- fmt.Errorf("one-shot count diverged: %d vs %d", qs.Cores, wantPrepared.Cores)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
