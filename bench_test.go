// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section VI) at laptop scale. Run with:
//
//	go test -bench=. -benchmem
//
// Each BenchmarkFigN corresponds to one figure of the paper; the reported
// metrics (ns/op for runtime figures, B/op for the memory figure,
// cores/query and R-edges/query as custom metrics for the count figures)
// are the series the paper plots. cmd/tkcbench renders the same experiments
// as human-readable tables, and EXPERIMENTS.md records paper-vs-measured.
package temporalkcore_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"temporalkcore/internal/bench"
	"temporalkcore/internal/core"
	"temporalkcore/internal/enum"
	"temporalkcore/internal/gen"
	"temporalkcore/internal/otcd"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// benchEdges is the replica scale for benchmarks: small enough that the
// whole suite finishes in minutes, large enough that the asymptotic gaps
// between the algorithms show.
const benchEdges = 6000

var (
	dsCache   = map[string]*bench.Dataset{}
	dsCacheMu sync.Mutex
)

func dataset(b *testing.B, code string) *bench.Dataset {
	b.Helper()
	dsCacheMu.Lock()
	defer dsCacheMu.Unlock()
	if d, ok := dsCache[code]; ok {
		return d
	}
	d, err := bench.LoadDataset(code, benchEdges, 1)
	if err != nil {
		b.Fatal(err)
	}
	dsCache[code] = d
	return d
}

func queriesFor(b *testing.B, d *bench.Dataset, kPct, rangePct int) (int, []tgraph.Window) {
	b.Helper()
	k := d.K(kPct)
	qs := d.Queries(k, rangePct, 2, 7)
	if len(qs) == 0 {
		b.Skipf("no non-empty query ranges for %s k=%d range=%d%%", d.Code, k, rangePct)
	}
	return k, qs
}

func runAlgo(b *testing.B, d *bench.Dataset, k int, qs []tgraph.Window, algo core.Algorithm) {
	b.Helper()
	var cores, redges int64
	for i := 0; i < b.N; i++ {
		// The quadratic baselines can exceed any reasonable budget on the
		// largest sweep points (the paper's own figures show them timing
		// out); cap each query so those sub-benchmarks skip cleanly.
		m, err := bench.Run(d, k, qs, algo, bench.RunOptions{Timeout: 20 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		if m.TimedOut {
			b.Skipf("%v hit the time limit at bench scale", algo)
		}
		cores, redges = m.Cores, m.REdges
	}
	b.ReportMetric(float64(cores)/float64(len(qs)), "cores/query")
	b.ReportMetric(float64(redges)/float64(len(qs)), "R-edges/query")
}

// BenchmarkTable3Replicas measures dataset replica generation (the
// substrate substituted for the paper's SNAP/KONECT downloads).
func BenchmarkTable3Replicas(b *testing.B) {
	for _, code := range []string{"FB", "CM", "WT", "PL"} {
		b.Run(code, func(b *testing.B) {
			rep, err := gen.ReplicaByCode(code)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, err := rep.Generate(benchEdges, 1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig4Sizes measures the CoreTime phase and reports |VCT|, |ECS|
// and |R| — the quantities of Figure 4.
func BenchmarkFig4Sizes(b *testing.B) {
	for _, code := range bench.Fig4Datasets {
		b.Run(code, func(b *testing.B) {
			d := dataset(b, code)
			k, qs := queriesFor(b, d, bench.DefaultKPct, bench.DefaultRangePct)
			var vctSize, ecsSize, redges int64
			for i := 0; i < b.N; i++ {
				vctSize, ecsSize, redges = 0, 0, 0
				for _, w := range qs {
					ix, ecs, err := vct.Build(d.G, k, w)
					if err != nil {
						b.Fatal(err)
					}
					var sink enum.CountSink
					enum.Enumerate(d.G, ecs, &sink)
					vctSize += int64(ix.Size())
					ecsSize += int64(ecs.Size())
					redges += sink.EdgeTotal
				}
			}
			n := float64(len(qs))
			b.ReportMetric(float64(vctSize)/n, "VCT/query")
			b.ReportMetric(float64(ecsSize)/n, "ECS/query")
			b.ReportMetric(float64(redges)/n, "R-edges/query")
		})
	}
}

// BenchmarkFig6 is the headline comparison: every dataset, every algorithm,
// default parameters.
func BenchmarkFig6(b *testing.B) {
	for _, code := range bench.AllDatasets {
		for _, algo := range []core.Algorithm{core.AlgoOTCD, core.AlgoEnumBase, core.AlgoEnum} {
			b.Run(fmt.Sprintf("%s/%v", code, algo), func(b *testing.B) {
				d := dataset(b, code)
				k, qs := queriesFor(b, d, bench.DefaultKPct, bench.DefaultRangePct)
				runAlgo(b, d, k, qs, algo)
			})
		}
	}
}

// BenchmarkFig7 varies k between 10% and 40% of kmax (Figure 7).
func BenchmarkFig7(b *testing.B) {
	for _, code := range bench.SweepDatasets {
		for _, kPct := range []int{10, 20, 30, 40} {
			for _, algo := range []core.Algorithm{core.AlgoEnum, core.AlgoEnumBase, core.AlgoOTCD} {
				b.Run(fmt.Sprintf("%s/k=%d%%/%v", code, kPct, algo), func(b *testing.B) {
					d := dataset(b, code)
					k, qs := queriesFor(b, d, kPct, bench.DefaultRangePct)
					runAlgo(b, d, k, qs, algo)
				})
			}
		}
	}
}

// BenchmarkFig8 varies the query range between 5% and 40% of tmax
// (Figure 8).
func BenchmarkFig8(b *testing.B) {
	for _, code := range bench.SweepDatasets {
		for _, rangePct := range []int{5, 10, 20, 40} {
			for _, algo := range []core.Algorithm{core.AlgoEnum, core.AlgoEnumBase, core.AlgoOTCD} {
				b.Run(fmt.Sprintf("%s/range=%d%%/%v", code, rangePct, algo), func(b *testing.B) {
					d := dataset(b, code)
					k, qs := queriesFor(b, d, bench.DefaultKPct, rangePct)
					runAlgo(b, d, k, qs, algo)
				})
			}
		}
	}
}

// BenchmarkFig9Counts reports the number of temporal k-cores per dataset
// (Figure 9) via the cores/query metric.
func BenchmarkFig9Counts(b *testing.B) {
	for _, code := range bench.AllDatasets {
		b.Run(code, func(b *testing.B) {
			d := dataset(b, code)
			k, qs := queriesFor(b, d, bench.DefaultKPct, bench.DefaultRangePct)
			runAlgo(b, d, k, qs, core.AlgoEnum)
		})
	}
}

// BenchmarkFig10Counts / BenchmarkFig11Counts report result counts under
// the k and range sweeps (Figures 10 and 11).
func BenchmarkFig10Counts(b *testing.B) {
	for _, code := range bench.SweepDatasets {
		for _, kPct := range []int{10, 20, 30, 40} {
			b.Run(fmt.Sprintf("%s/k=%d%%", code, kPct), func(b *testing.B) {
				d := dataset(b, code)
				k, qs := queriesFor(b, d, kPct, bench.DefaultRangePct)
				runAlgo(b, d, k, qs, core.AlgoEnum)
			})
		}
	}
}

func BenchmarkFig11Counts(b *testing.B) {
	for _, code := range bench.SweepDatasets {
		for _, rangePct := range []int{5, 10, 20, 40} {
			b.Run(fmt.Sprintf("%s/range=%d%%", code, rangePct), func(b *testing.B) {
				d := dataset(b, code)
				k, qs := queriesFor(b, d, bench.DefaultKPct, rangePct)
				runAlgo(b, d, k, qs, core.AlgoEnum)
			})
		}
	}
}

// BenchmarkFig12Memory mirrors Figure 12: with -benchmem, B/op is the
// allocation footprint of each algorithm per query batch.
func BenchmarkFig12Memory(b *testing.B) {
	for _, code := range []string{"FB", "CM", "EM", "PL"} {
		for _, algo := range []core.Algorithm{core.AlgoOTCD, core.AlgoEnumBase, core.AlgoEnum} {
			b.Run(fmt.Sprintf("%s/%v", code, algo), func(b *testing.B) {
				d := dataset(b, code)
				k, qs := queriesFor(b, d, bench.DefaultKPct, bench.DefaultRangePct)
				b.ReportAllocs()
				runAlgo(b, d, k, qs, algo)
			})
		}
	}
}

// BenchmarkAblationOTCDJumps quantifies the two pruning rules of the OTCD
// baseline (DESIGN.md: TTI jump = PoR, row jump = PoU/PoL).
func BenchmarkAblationOTCDJumps(b *testing.B) {
	variants := []struct {
		name string
		opts otcd.Options
	}{
		{"full", otcd.Options{}},
		{"noTTIJump", otcd.Options{DisableTTIJump: true}},
		{"noRowJump", otcd.Options{DisableRowJump: true}},
		{"none", otcd.Options{DisableTTIJump: true, DisableRowJump: true}},
	}
	d := dataset(b, "FB")
	k, qs := queriesFor(b, d, bench.DefaultKPct, bench.DefaultRangePct)
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, w := range qs {
					var sink enum.CountSink
					if !otcd.Enumerate(d.G, k, w, &sink, v.opts) {
						b.Fatal("stopped")
					}
				}
			}
		})
	}
}

// BenchmarkAblationEnumBaseDedup compares the baseline's exact duplicate
// store with hash-only dedup.
func BenchmarkAblationEnumBaseDedup(b *testing.B) {
	d := dataset(b, "FB")
	k, qs := queriesFor(b, d, bench.DefaultKPct, bench.DefaultRangePct)
	for _, hashOnly := range []bool{false, true} {
		name := "exactStore"
		if hashOnly {
			name = "hashOnly"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for _, w := range qs {
					_, ecs, err := vct.Build(d.G, k, w)
					if err != nil {
						b.Fatal(err)
					}
					var sink enum.CountSink
					enum.EnumerateBase(d.G, ecs, &sink, enum.BaseOptions{HashOnlyDedup: hashOnly})
				}
			}
		})
	}
}

// BenchmarkCoreTimePhase isolates the shared VCT+ECS construction cost (the
// blue bars of Figure 6).
func BenchmarkCoreTimePhase(b *testing.B) {
	for _, code := range []string{"CM", "EM", "PL"} {
		b.Run(code, func(b *testing.B) {
			d := dataset(b, code)
			k, qs := queriesFor(b, d, bench.DefaultKPct, bench.DefaultRangePct)
			for i := 0; i < b.N; i++ {
				for _, w := range qs {
					if _, _, err := vct.Build(d.G, k, w); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
