package temporalkcore

import (
	"fmt"

	"temporalkcore/internal/phc"
	"temporalkcore/internal/shard"
	"temporalkcore/internal/store"
	"temporalkcore/internal/tgraph"
)

// shardStore couples a ShardedGraph with an open data directory: appends
// are WAL-logged before they apply (DurableGraph semantics), and each seal
// persists the sealed shard's standalone segment image exactly once plus
// the cut manifest. Writer-side calls arrive under the ShardedGraph's
// writer lock.
type shardStore struct {
	st *store.Store
}

func (ss *shardStore) append(edges []Edge) (int, error) {
	st, err := ss.st.Append(rawEdges(edges))
	if err != nil {
		return 0, fmt.Errorf("temporalkcore: %w", err)
	}
	return st.Added, nil
}

func (ss *shardStore) syncShards(d *shard.Directory) error {
	if err := ss.st.SyncShards(manifestCuts(d)); err != nil {
		return fmt.Errorf("temporalkcore: %w", err)
	}
	return nil
}

func (ss *shardStore) Close() error {
	if err := ss.st.Close(); err != nil {
		return fmt.Errorf("temporalkcore: %w", err)
	}
	return nil
}

func manifestCuts(d *shard.Directory) []store.ShardCut {
	cuts := d.Cuts()
	out := make([]store.ShardCut, len(cuts))
	for i, c := range cuts {
		out[i] = store.ShardCut{ID: i, RawEnd: c.RawEnd, End: int64(c.End), Seq: c.Seq}
	}
	return out
}

// BootstrapShardedDir creates a durable sharded graph in an empty data
// directory: the edge list is WAL-logged and applied, the initial
// partition's sealed shards get their segment images, and every later
// Append/Seal through the returned graph is persisted the same way. The
// directory must not already hold a graph.
func BootstrapShardedDir(dir string, edges []Edge, o ShardOptions) (*ShardedGraph, error) {
	st, err := store.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("temporalkcore: %w", err)
	}
	if st.Graph() != nil {
		st.Close()
		return nil, fmt.Errorf("temporalkcore: data directory %s already holds a graph (seq %d): use OpenShardedDir", dir, st.Seq())
	}
	tg, err := st.Bootstrap(rawEdges(edges))
	if err != nil {
		st.Close()
		return nil, fmt.Errorf("temporalkcore: %w", err)
	}
	sg, err := ShardGraph(newGraph(tg), o)
	if err != nil {
		st.Close()
		return nil, err
	}
	sg.mu.Lock()
	sg.st = &shardStore{st: st}
	err = sg.st.syncShards(sg.dir)
	sg.mu.Unlock()
	if err != nil {
		sg.Close()
		return nil, err
	}
	return sg, nil
}

// OpenShardedDir reopens a durable sharded graph: the spine recovers
// byte-identically through the newest snapshot plus WAL replay (see
// OpenDir), the shard directory is rebuilt from the cut manifest and
// validated against the recovered graph, and spilled serving-cache
// entries are re-admitted. o.Shards is ignored — the partition is
// whatever was sealed — while o.MaxShardEdges and o.Replicas configure
// the reopened graph as usual.
func OpenShardedDir(dir string, o ShardOptions) (*ShardedGraph, error) {
	st, err := store.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("temporalkcore: %w", err)
	}
	tg := st.Graph()
	if tg == nil {
		st.Close()
		return nil, fmt.Errorf("temporalkcore: data directory %s is empty: use BootstrapShardedDir", dir)
	}
	manifest, err := st.ShardManifest()
	if err != nil {
		st.Close()
		return nil, fmt.Errorf("temporalkcore: %w", err)
	}
	cuts := make([]shard.Cut, len(manifest))
	for i, c := range manifest {
		// Recovery is byte-identical, so every sealed rank must still map
		// to its raw time; a mismatch means the directory belongs to a
		// different history.
		if c.End < 1 || tgraph.TS(c.End) > tg.TMax() || tg.RawTime(tgraph.TS(c.End)) != c.RawEnd {
			st.Close()
			return nil, fmt.Errorf("temporalkcore: shard manifest cut %d (raw %d, rank %d) does not match the recovered graph", i, c.RawEnd, c.End)
		}
		cuts[i] = shard.Cut{RawEnd: c.RawEnd, End: tgraph.TS(c.End), Seq: c.Seq}
	}
	g := newGraph(tg)
	if c := g.cache(); c != nil {
		// Advisory, like OpenDir: a failed warm load costs only cold
		// first queries.
		st.LoadWarm(c, func(ix *phc.Index) { g.hub.lastHist.Store(ix) })
	}
	o.Shards = 0 // partition comes from the manifest
	sg, err := ShardGraph(g, o)
	if err != nil {
		st.Close()
		return nil, err
	}
	if len(cuts) > 0 {
		d, derr := shard.NewDirectory(cuts)
		if derr != nil {
			st.Close()
			return nil, fmt.Errorf("temporalkcore: %w", derr)
		}
		sg.mu.Lock()
		sg.dir = d
		sg.publishLocked()
		sg.mu.Unlock()
	}
	sg.mu.Lock()
	sg.st = &shardStore{st: st}
	sg.mu.Unlock()
	return sg, nil
}

// Durable reports whether the sharded graph is backed by a data directory
// (built with BootstrapShardedDir or OpenShardedDir).
func (sg *ShardedGraph) Durable() bool {
	sg.mu.Lock()
	defer sg.mu.Unlock()
	return sg.st != nil
}

// SnapshotDurable persists the spine like DurableGraph.Snapshot — freeze,
// WAL rotation, atomic segment write, warm-cache spill, compaction — and
// returns the persisted sequence. Sealed shard segments are already
// durable and are never rewritten; compaction leaves them (and the
// manifest) alone. Errors when the graph is not durable.
func (sg *ShardedGraph) SnapshotDurable() (int64, error) {
	sg.mu.Lock()
	ss := sg.st
	if ss == nil {
		sg.mu.Unlock()
		return -1, fmt.Errorf("temporalkcore: sharded graph has no data directory")
	}
	p, err := ss.st.BeginSnapshot()
	sg.mu.Unlock()
	if err != nil {
		return -1, fmt.Errorf("temporalkcore: %w", err)
	}
	if c := sg.spine.cache(); c != nil {
		p.WriteWarm(c) // advisory: a failed spill costs only cold first queries
	}
	if err := p.Commit(); err != nil {
		return p.Seq(), fmt.Errorf("temporalkcore: %w", err)
	}
	return p.Seq(), nil
}
