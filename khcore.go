package temporalkcore

import (
	"fmt"

	"temporalkcore/internal/khcore"
	"temporalkcore/internal/tgraph"
)

// KHCore returns the members of the (k, h)-core of the snapshot over the
// raw range [start, end]: the maximal subgraph in which every vertex has
// at least k neighbours with at least h temporal interactions each inside
// the range. It implements the related temporal cohesion model of Wu et
// al. (IEEE BigData 2015), surveyed in Section III-B of the reproduced
// paper; (k, 1)-cores coincide with ordinary snapshot k-cores.
func (g *Graph) KHCore(k, h int, start, end int64) ([]int64, error) {
	if k < 1 || h < 1 {
		return nil, fmt.Errorf("temporalkcore: k and h must be >= 1, got k=%d h=%d", k, h)
	}
	w, err := g.window(start, end)
	if err != nil {
		return nil, err
	}
	p := khcore.NewPeeler(g.g)
	inCore, n := p.CoreOfWindow(k, h, w)
	out := make([]int64, 0, n)
	for v, in := range inCore {
		if in {
			out = append(out, g.g.Label(tgraph.VID(v)))
		}
	}
	return out, nil
}

// KHCoreEdges returns the temporal edges of the (k, h)-core over the raw
// range [start, end]; see KHCore.
func (g *Graph) KHCoreEdges(k, h int, start, end int64) ([]Edge, error) {
	if k < 1 || h < 1 {
		return nil, fmt.Errorf("temporalkcore: k and h must be >= 1, got k=%d h=%d", k, h)
	}
	w, err := g.window(start, end)
	if err != nil {
		return nil, err
	}
	p := khcore.NewPeeler(g.g)
	eids := p.CoreEdges(k, h, w, nil)
	out := make([]Edge, len(eids))
	for i, e := range eids {
		te := g.g.Edge(e)
		out[i] = Edge{U: g.g.Label(te.U), V: g.g.Label(te.V), Time: g.g.RawTime(te.T)}
	}
	return out, nil
}
