package temporalkcore

import (
	"context"
	"time"

	"temporalkcore/internal/khcore"
	"temporalkcore/internal/tgraph"
)

// runSnapshot executes a Snapshot(h) request: the single (k, h)-core of
// the snapshot over the window, emitted as one Core (or none when empty).
func (r *Request) runSnapshot(ctx context.Context, qs *QueryStats, fn func(Core) bool) (QueryStats, error) {
	w, err := r.g.window(r.start, r.end)
	if err != nil {
		return *qs, err
	}
	if err := ctx.Err(); err != nil {
		return *qs, err
	}
	began := time.Now()
	p := khcore.NewPeeler(r.g.g)
	var vids []tgraph.VID
	var eids []tgraph.EID
	if r.proj == ProjectVertices {
		inCore, n := p.CoreOfWindow(r.k, r.h, w)
		vids = make([]tgraph.VID, 0, n)
		for v, in := range inCore {
			if in {
				vids = append(vids, tgraph.VID(v))
			}
		}
	} else {
		eids = p.CoreEdges(r.k, r.h, w, nil)
	}
	r.emitSnapshot(qs, fn, r.g.g, w, vids, eids)
	qs.EnumTime = time.Since(began)
	return *qs, nil
}

// KHCore returns the members of the (k, h)-core of the snapshot over the
// raw range [start, end]: the maximal subgraph in which every vertex has
// at least k neighbours with at least h temporal interactions each inside
// the range. It implements the related temporal cohesion model of Wu et
// al. (IEEE BigData 2015), surveyed in Section III-B of the reproduced
// paper; (k, 1)-cores coincide with ordinary snapshot k-cores.
//
// Deprecated: use the v2 builder, which adds context cancellation and
// projections: g.Query(k).Window(start, end).Snapshot(h).First(ctx).
// Since v2 the returned labels are sorted ascending (pre-v2 they followed
// internal vertex-id order).
//
// tkc:allow-background: deprecated v1 shim; the v2 builder threads ctx
func (g *Graph) KHCore(k, h int, start, end int64) ([]int64, error) {
	c, ok, err := g.Query(k).Window(start, end).Snapshot(h).Project(ProjectVertices).First(context.Background())
	if err != nil {
		return nil, err
	}
	if !ok {
		return []int64{}, nil
	}
	return c.Vertices, nil
}

// KHCoreEdges returns the temporal edges of the (k, h)-core over the raw
// range [start, end]; see KHCore.
//
// Deprecated: use the v2 builder:
// g.Query(k).Window(start, end).Snapshot(h).First(ctx).
//
// tkc:allow-background: deprecated v1 shim; the v2 builder threads ctx
func (g *Graph) KHCoreEdges(k, h int, start, end int64) ([]Edge, error) {
	c, ok, err := g.Query(k).Window(start, end).Snapshot(h).First(context.Background())
	if err != nil {
		return nil, err
	}
	if !ok {
		return []Edge{}, nil
	}
	return c.Edges, nil
}
