package temporalkcore_test

import (
	"context"
	"fmt"
	"io"
	"strings"
	"testing"

	tkc "temporalkcore"
)

// TestDurableLifecycle drives the public durability tier end to end:
// bootstrap + appends into a data directory, query equivalence against an
// in-memory build of the same stream, snapshot, close, recover, and keep
// appending — across two process generations of the same directory.
func TestDurableLifecycle(t *testing.T) {
	ref, edges := diffGraph(t, 71)
	dir := t.TempDir()

	d, err := tkc.OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	if d.Graph() != nil || d.Seq() != -1 {
		t.Fatalf("fresh dir: Graph=%v Seq=%d", d.Graph(), d.Seq())
	}
	if _, err := d.Append(edges[0]); err == nil {
		t.Fatal("Append before Bootstrap succeeded")
	}
	if _, err := d.Bootstrap(edges[:100]); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	if _, err := d.Bootstrap(edges[:100]); err == nil {
		t.Fatal("second Bootstrap succeeded")
	}
	for i := 100; i < len(edges); i += 64 {
		j := min(i+64, len(edges))
		if _, err := d.Append(edges[i:j]...); err != nil {
			t.Fatalf("Append [%d:%d): %v", i, j, err)
		}
	}

	ctx := context.Background()
	want, err := ref.Query(2).Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	got, err := d.Graph().Query(2).Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cores != want.Cores || got.Edges != want.Edges {
		t.Fatalf("durable build answers %+v, in-memory build %+v", got, want)
	}

	seq, err := d.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if seq != d.Seq() {
		t.Fatalf("snapshot seq %d, live seq %d", seq, d.Seq())
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := d.Append(edges[0]); err == nil {
		t.Fatal("Append after Close succeeded")
	}

	d2, err := tkc.OpenDir(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	if d2.Seq() != seq || d2.Graph().NumEdges() != ref.NumEdges() {
		t.Fatalf("recovered seq %d edges %d, want %d/%d", d2.Seq(), d2.Graph().NumEdges(), seq, ref.NumEdges())
	}
	got, err = d2.Graph().Query(2).Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cores != want.Cores || got.Edges != want.Edges {
		t.Fatalf("recovered graph answers %+v, want %+v", got, want)
	}
	_, hi := d2.Graph().TimeSpan()
	if _, err := d2.Append(tkc.Edge{U: 1, V: 2, Time: hi + 10}); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

// TestDurableWarmHistoricalOracle: a PHC index built before the snapshot is
// spilled with it, and after a restart the same historical query is a cache
// hit — with the recovered index also seeding the patch oracle for moved
// windows.
func TestDurableWarmHistoricalOracle(t *testing.T) {
	_, edges := diffGraph(t, 72)
	dir := t.TempDir()
	d, err := tkc.OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	if _, err := d.Bootstrap(edges); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}
	ctx := context.Background()
	lo, hi := d.Graph().TimeSpan()
	hx, err := d.Graph().HistoricalIndex(ctx, lo, hi)
	if err != nil {
		t.Fatalf("HistoricalIndex: %v", err)
	}
	coldCT, err := hx.CoreMembers(3, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if cs := d.Graph().CacheStats(); cs.Misses < 1 {
		t.Fatalf("cold historical build recorded no cache miss: %+v", cs)
	}

	if _, err := d.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	d2, err := tkc.OpenDir(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	if d2.WarmEntries() < 1 {
		t.Fatalf("warm spill re-admitted %d entries, want >= 1", d2.WarmEntries())
	}
	hx2, err := d2.Graph().HistoricalIndex(ctx, lo, hi)
	if err != nil {
		t.Fatalf("post-restart HistoricalIndex: %v", err)
	}
	cs := d2.Graph().CacheStats()
	if cs.Hits < 1 || cs.Misses != 0 {
		t.Fatalf("post-restart historical query was not a warm hit: %+v", cs)
	}
	warmCT, err := hx2.CoreMembers(3, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if len(coldCT) != len(warmCT) {
		t.Fatalf("core members %d vs %d", len(warmCT), len(coldCT))
	}
	for i := range coldCT {
		if coldCT[i] != warmCT[i] {
			t.Fatalf("member %d: recovered %d, want %d", i, warmCT[i], coldCT[i])
		}
	}
}

// TestAppendReaderSink: an AppendReader with Sink set routes every batch
// through the durable tier, so a stream ingested this way survives a
// reopen.
func TestAppendReaderSink(t *testing.T) {
	_, edges := diffGraph(t, 73)
	dir := t.TempDir()
	d, err := tkc.OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	if _, err := d.Bootstrap(edges[:50]); err != nil {
		t.Fatalf("Bootstrap: %v", err)
	}

	var sb strings.Builder
	for _, e := range edges[50:] {
		fmt.Fprintf(&sb, "%d %d %d\n", e.U, e.V, e.Time)
	}
	ar := tkc.NewAppendReader(d.Graph(), strings.NewReader(sb.String()))
	ar.BatchSize = 32
	ar.Sink = d
	for {
		_, err := ar.ReadBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("ReadBatch: %v", err)
		}
	}
	wantEdges := d.Graph().NumEdges()
	wantSeq := d.Seq()
	if wantSeq < 1 {
		t.Fatalf("sink routed no batches (seq %d)", wantSeq)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	d2, err := tkc.OpenDir(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	if d2.Seq() != wantSeq || d2.Graph().NumEdges() != wantEdges {
		t.Fatalf("recovered seq %d edges %d, want %d/%d", d2.Seq(), d2.Graph().NumEdges(), wantSeq, wantEdges)
	}
}
