#!/usr/bin/env bash
# Coverage ratchet: runs per-package coverage and fails the build if any
# package drops more than 1.0 percentage point below the baseline recorded
# in .github/coverage-baseline.txt. Packages added since the baseline are
# reported but do not fail the build (add them via -update).
#
#   scripts/coverage_ratchet.sh          # check against the baseline
#   scripts/coverage_ratchet.sh -update  # rewrite the baseline from HEAD
set -euo pipefail
cd "$(dirname "$0")/.."
baseline=.github/coverage-baseline.txt

out=$(go test -count=1 -cover ./... | grep -v 'no test files' || true)
echo "$out"
current=$(echo "$out" | awk '{
  # "ok <pkg> <time> coverage: X% of statements" for tested packages;
  # "<pkg> coverage: 0.0% of statements" for build-only ones.
  p = ($1 == "ok") ? $2 : $1
  for (i = 1; i <= NF; i++) if ($i == "coverage:") { v = $(i+1); gsub(/%/, "", v); print p, v }
}' | sort)

if [[ "${1:-}" == "-update" ]]; then
  echo "$current" > "$baseline"
  echo "coverage baseline updated:"
  cat "$baseline"
  exit 0
fi

if [[ ! -f "$baseline" ]]; then
  echo "RATCHET: missing $baseline (run scripts/coverage_ratchet.sh -update)" >&2
  exit 1
fi

fail=0
while read -r pkg base; do
  [[ -z "$pkg" ]] && continue
  cur=$(echo "$current" | awk -v p="$pkg" '$1 == p { print $2 }')
  if [[ -z "$cur" ]]; then
    echo "RATCHET FAIL: package $pkg (baseline ${base}%) missing from the coverage run" >&2
    fail=1
    continue
  fi
  if ! awk -v c="$cur" -v b="$base" 'BEGIN { exit !(c >= b - 1.0) }'; then
    echo "RATCHET FAIL: $pkg coverage ${cur}% is more than 1pt below the ${base}% baseline" >&2
    fail=1
  fi
done < "$baseline"

new=$(comm -13 <(awk '{print $1}' "$baseline") <(echo "$current" | awk '{print $1}'))
if [[ -n "$new" ]]; then
  echo "RATCHET NOTE: packages not yet in the baseline (add with -update):" $new
fi

if [[ "$fail" == 0 ]]; then
  echo "coverage ratchet OK"
fi
exit $fail
