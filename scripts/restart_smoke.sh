#!/usr/bin/env bash
# Restart smoke: end-to-end durability check on the real `tkc serve`
# binary, across three process generations of one -data directory.
#
#   gen 1: bootstrap + append over HTTP, then SIGKILL before any snapshot
#          — recovery must replay the acknowledged batches from the WAL.
#   gen 2: verify the recovered epoch, run a query (populating the
#          cache), snapshot via POST /v1/snapshot, SIGKILL again.
#   gen 3: the FIRST repeat of that query must already be a cache hit
#          served from the persisted warm spill; then a SIGINT shutdown
#          must write a final snapshot.
#
# CI runs this as the durability tier's end-to-end check outside the Go
# test harness.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
server_pid=""
cleanup() {
  [[ -n "$server_pid" ]] && kill -9 "$server_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

# start_server LOGFILE: boots `tkc serve -data` and sets $server_pid and
# $base (parsed from the listening line, so -addr :0 works).
start_server() {
  "$workdir/tkc" serve -data "$workdir/data" -addr 127.0.0.1:0 >"$1" 2>&1 &
  server_pid=$!
  base=""
  for _ in $(seq 1 50); do
    base=$(sed -n 's/^serve: listening on //p' "$1" | head -1)
    [[ -n "$base" ]] && break
    kill -0 "$server_pid" 2>/dev/null || { cat "$1"; echo "server died"; exit 1; }
    sleep 0.1
  done
  [[ -n "$base" ]] || { cat "$1"; echo "no listening line"; exit 1; }
  echo "   serving at $base"
}

hard_kill() {
  kill -9 "$server_pid"
  wait "$server_pid" 2>/dev/null || true
  server_pid=""
}

stat_field() { # stat_field NAME -> value from /v1/stats
  curl -sS "$base/v1/stats" | sed -n "s/.*\"$1\":\\([0-9-]*\\).*/\\1/p"
}

echo "== build"
go build -o "$workdir/tkc" ./cmd/tkc
go build -o "$workdir/tkcgen" ./cmd/tkcgen

echo "== generate graph"
"$workdir/tkcgen" -dataset FB -edges 2000 -seed 7 -out "$workdir/edges.txt"

echo "== generation 1: bootstrap + append, then SIGKILL (WAL only)"
start_server "$workdir/serve1.log"
curl -sS --fail-with-body -X POST "$base/v1/append" \
  --data-binary @"$workdir/edges.txt" | grep -q '"added":' ||
  { echo "bootstrap append failed"; exit 1; }
frontier=$(stat_field end)
printf '{"u":9001,"v":9002,"t":%d}\n{"u":9002,"v":9003,"t":%d}\n' \
  "$((frontier + 1))" "$((frontier + 1))" |
  curl -sS --fail-with-body -X POST "$base/v1/append" --data-binary @- |
  grep -q '"added":2' || { echo "post-bootstrap append failed"; exit 1; }
epoch=$(stat_field epoch)
edges=$(stat_field edges)
hard_kill

echo "== generation 2: WAL replay recovered every acknowledged batch"
start_server "$workdir/serve2.log"
grep -q "serve: recovered" "$workdir/serve2.log" ||
  { cat "$workdir/serve2.log"; echo "no recovery line"; exit 1; }
[[ "$(stat_field epoch)" == "$epoch" && "$(stat_field edges)" == "$edges" ]] ||
  { echo "recovered epoch/edges $(stat_field epoch)/$(stat_field edges), want $epoch/$edges"; exit 1; }

echo "== query (cold) + snapshot, then SIGKILL"
query='{"k":3,"project":"count"}'
cold=$(curl -sS --fail-with-body -X POST "$base/v1/query" \
  -H 'Content-Type: application/json' -d "$query" | tail -1)
grep -q '"stats"' <<<"$cold" || { echo "no stats trailer: $cold"; exit 1; }
snap=$(curl -sS --fail-with-body -X POST "$base/v1/snapshot")
seq=$(sed -n 's/.*"snapshot":\([0-9]*\).*/\1/p' <<<"$snap")
[[ "$seq" == "$epoch" ]] || { echo "snapshot seq $seq, want epoch $epoch: $snap"; exit 1; }
hard_kill

echo "== generation 3: first repeat query is served from the warm spill"
start_server "$workdir/serve3.log"
grep -q "warm cache entries" "$workdir/serve3.log" ||
  { cat "$workdir/serve3.log"; echo "no warm-entries recovery line"; exit 1; }
warm=$(curl -sS --fail-with-body -X POST "$base/v1/query" \
  -H 'Content-Type: application/json' -d "$query" | tail -1)
grep -q '"cacheHit":true' <<<"$warm" ||
  { echo "first post-restart query was not a warm hit: $warm"; exit 1; }

echo "== graceful shutdown writes a final snapshot"
kill -INT "$server_pid"
for _ in $(seq 1 100); do
  kill -0 "$server_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$server_pid" 2>/dev/null; then
  echo "server ignored SIGINT"
  exit 1
fi
wait "$server_pid" || { echo "server exited non-zero"; cat "$workdir/serve3.log"; exit 1; }
server_pid=""
grep -q "serve: final snapshot" "$workdir/serve3.log" ||
  { cat "$workdir/serve3.log"; echo "no final snapshot on shutdown"; exit 1; }

echo "restart smoke OK"
