#!/usr/bin/env bash
# Bench-regression gate: runs the smoke benchmarks that guard the
# repository's headline performance properties, parses ns/op and
# allocs/op, and fails the build when either regresses more than the
# tolerance (default 30%) against the baseline recorded in
# .github/bench-baseline.json. Benchmarks added since the baseline are
# reported but do not fail the build (add them via -update).
#
#   scripts/bench_gate.sh          # check against the baseline
#   scripts/bench_gate.sh -update  # rewrite the baseline from HEAD
#
# The current run is always written to bench-results.json (override with
# BENCH_GATE_OUT) so CI can upload it as an artifact; the tolerance is
# overridable with BENCH_GATE_TOLERANCE (percent).
set -euo pipefail
cd "$(dirname "$0")/.."
baseline=.github/bench-baseline.json
out=${BENCH_GATE_OUT:-bench-results.json}
tol=${BENCH_GATE_TOLERANCE:-30}

# The guarded benchmarks: zero-alloc warm CoreTime builds (PR 1),
# amortised O(1) single-edge appends (PR 3), the lock-free concurrent read
# path and lock-free append latency under analytical load (PR 4),
# O(lookup) warm serving-cache hits (PR 5), incremental historical
# index maintenance plus O(lookup) historical cache hits (PR 6), the
# HTTP serving layer's warm point-query round-trip (PR 7), the
# durability tier's warm restart plus the PHC partial-range patch fix
# (PR 9), and the sharded scatter-gather serving path with its replica
# pools (PR 10). Fixed iteration counts keep run-to-run variance inside
# the tolerance.
raw=$(
  go test -run=NONE -bench='BenchmarkBuildScratchReuse$' -benchtime=3x -benchmem ./internal/vct/
  go test -run=NONE -bench='BenchmarkAppendOneByOne$' -benchtime=20000x -benchmem ./internal/tgraph/
  go test -run=NONE -bench='BenchmarkConcurrentServe$' -benchtime=500x -benchmem .
  go test -run=NONE -bench='BenchmarkAppendUnderAnalytics/epoch$' -benchtime=30x -benchmem .
  go test -run=NONE -bench='BenchmarkServingCacheHit$' -benchtime=100x -benchmem .
  go test -run=NONE -bench='BenchmarkHistoricalPatchVsRebuild$' -benchtime=5x -benchmem .
  go test -run=NONE -bench='BenchmarkHistoricalCacheHit$' -benchtime=100x -benchmem .
  go test -run=NONE -bench='BenchmarkServeQueryWarm$' -benchtime=200x -benchmem ./internal/serve/
  go test -run=NONE -bench='BenchmarkOpenWarm$' -benchtime=3x -benchmem .
  go test -run=NONE -bench='BenchmarkPHCPartialRangePatch$' -benchtime=3x -benchmem .
  go test -run=NONE -bench='BenchmarkShardedScatterGather$' -benchtime=20x -benchmem .
  go test -run=NONE -bench='BenchmarkReplicaReadScaling$' -benchtime=20x -benchmem .
)
echo "$raw"

# Flatten to "name ns_per_op allocs_per_op", dropping the -GOMAXPROCS
# suffix so baselines transfer between machines with different CPU counts.
current=$(echo "$raw" | awk '
  /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    ns = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
      if ($i == "ns/op") ns = $(i - 1)
      if ($i == "allocs/op") allocs = $(i - 1)
    }
    if (ns != "") printf "%s %s %s\n", name, ns, (allocs == "" ? 0 : allocs)
  }' | sort)

if [[ -z "$current" ]]; then
  echo "BENCH GATE: no benchmark output parsed" >&2
  exit 1
fi

# Render the flat list as the checked-in JSON layout (one benchmark per
# line, so the checker below can parse it without a JSON tool).
{
  echo '{'
  echo '  "benchmarks": {'
  first=1
  while read -r name ns allocs; do
    [[ -z "$name" ]] && continue
    [[ $first == 0 ]] && printf ',\n'
    printf '    "%s": {"ns_per_op": %s, "allocs_per_op": %s}' "$name" "$ns" "$allocs"
    first=0
  done <<<"$current"
  printf '\n  }\n}\n'
} >"$out"
echo "bench results written to $out"

if [[ "${1:-}" == "-update" ]]; then
  cp "$out" "$baseline"
  echo "bench baseline updated:"
  cat "$baseline"
  exit 0
fi

if [[ ! -f "$baseline" ]]; then
  echo "BENCH GATE: missing $baseline (run scripts/bench_gate.sh -update)" >&2
  exit 1
fi

base=$(awk '/"ns_per_op"/ {
  line = $0
  sub(/^[ \t]*"/, "", line)
  name = line; sub(/".*/, "", name)
  ns = line; sub(/.*"ns_per_op": */, "", ns); sub(/[^0-9.].*/, "", ns)
  al = line; sub(/.*"allocs_per_op": */, "", al); sub(/[^0-9.].*/, "", al)
  print name, ns, al
}' "$baseline" | sort)

fail=0
while read -r name bns bal; do
  [[ -z "$name" ]] && continue
  cur=$(awk -v n="$name" '$1 == n { print $2, $3 }' <<<"$current")
  if [[ -z "$cur" ]]; then
    echo "BENCH GATE FAIL: $name (baseline ${bns} ns/op) missing from the run" >&2
    fail=1
    continue
  fi
  read -r cns cal <<<"$cur"
  # ns/op: relative tolerance — but only for the deterministic benches.
  # The two contention benches (a reader racing a churner, an appender
  # racing an analytical reader) are scheduler-bound: their ns/op swings
  # several-fold between idle runs on shared machines, so for them only
  # allocs/op (the structural lock-freedom property) is gated and ns/op
  # is recorded informationally.
  # BenchmarkServeQueryWarm is a full loopback HTTP round-trip — kernel
  # scheduling and the network stack dominate, so it too is alloc-gated
  # with ns/op recorded informationally. BenchmarkOpenWarm/warm is
  # fsync-bound (the open rotates a WAL with a durability barrier), so
  # shared-runner disk latency dominates its few-ms ns/op; the cold
  # subtest is a compute-bound PHC rebuild and stays ns-gated.
  # The sharded serving benches run spans on replica goroutine pools, so
  # their wall time is scheduler-bound on shared 1-CPU runners; their
  # structural property is the bounded per-query allocation budget, which
  # stays gated. The unsharded ScatterGather subtests are single-threaded
  # and stay ns-gated as the comparison floor.
  nscheck=1
  case "$name" in
  BenchmarkConcurrentServe/* | BenchmarkAppendUnderAnalytics/* | BenchmarkServeQueryWarm | BenchmarkOpenWarm/warm) nscheck=0 ;;
  BenchmarkShardedScatterGather/sharded/* | BenchmarkReplicaReadScaling/*) nscheck=0 ;;
  esac
  if [[ $nscheck == 1 ]] && ! awk -v c="$cns" -v b="$bns" -v t="$tol" 'BEGIN { exit !(c <= b * (1 + t / 100)) }'; then
    echo "BENCH GATE FAIL: $name ns/op ${cns} is more than ${tol}% above the ${bns} baseline" >&2
    fail=1
  fi
  # allocs/op: relative tolerance plus an absolute slack of 2, so
  # near-zero baselines don't flag on noise.
  if ! awk -v c="$cal" -v b="$bal" -v t="$tol" 'BEGIN { exit !(c <= b * (1 + t / 100) + 2) }'; then
    echo "BENCH GATE FAIL: $name allocs/op ${cal} regressed vs the ${bal} baseline" >&2
    fail=1
  fi
done <<<"$base"

new=$(comm -13 <(awk '{print $1}' <<<"$base") <(awk '{print $1}' <<<"$current"))
if [[ -n "$new" ]]; then
  echo "BENCH GATE NOTE: benchmarks not yet in the baseline (add with -update):" $new
fi

if [[ "$fail" == 0 ]]; then
  echo "bench gate OK"
fi
exit $fail
