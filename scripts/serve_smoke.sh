#!/usr/bin/env bash
# Server smoke: boots the real `tkc serve` binary on a free port, drives a
# query + append + stats/metrics round-trip with curl, runs the load
# generator briefly against it, and shuts the server down with SIGINT
# (exercising the graceful drain path). Fails on any non-2xx answer or a
# missing metric. CI runs this as the serving layer's end-to-end check
# outside the Go test harness.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
server_pid=""
cleanup() {
  [[ -n "$server_pid" ]] && kill "$server_pid" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

echo "== build"
go build -o "$workdir/tkc" ./cmd/tkc
go build -o "$workdir/tkcgen" ./cmd/tkcgen
go build -o "$workdir/tkcload" ./cmd/tkcload

echo "== generate graph"
"$workdir/tkcgen" -dataset FB -edges 2000 -seed 1 -out "$workdir/edges.txt"

echo "== start server"
"$workdir/tkc" serve -graph "$workdir/edges.txt" -addr 127.0.0.1:0 >"$workdir/serve.log" 2>&1 &
server_pid=$!

base=""
for _ in $(seq 1 50); do
  base=$(sed -n 's/^serve: listening on //p' "$workdir/serve.log" | head -1)
  [[ -n "$base" ]] && break
  kill -0 "$server_pid" 2>/dev/null || { cat "$workdir/serve.log"; echo "server died"; exit 1; }
  sleep 0.1
done
[[ -n "$base" ]] || { cat "$workdir/serve.log"; echo "no listening line"; exit 1; }
echo "   serving at $base"

echo "== query round-trip"
body=$(curl -sS --fail-with-body -X POST "$base/v1/query" \
  -H 'Content-Type: application/json' -d '{"k":3,"project":"count","earlyStop":5}')
echo "$body" | tail -1 | grep -q '"stats"' || { echo "no stats trailer: $body"; exit 1; }

echo "== append round-trip"
frontier=$(curl -sS "$base/v1/stats" | sed -n 's/.*"end":\([0-9-]*\).*/\1/p')
printf '{"u":9001,"v":9002,"t":%d}\n{"u":9002,"v":9003,"t":%d}\n' \
  "$((frontier + 1))" "$((frontier + 1))" |
  curl -sS --fail-with-body -X POST "$base/v1/append" --data-binary @- |
  grep -q '"added":2' || { echo "append failed"; exit 1; }

echo "== stats + metrics"
curl -sS "$base/v1/stats" | grep -q '"epoch":1' || { echo "epoch did not advance"; exit 1; }
metrics=$(curl -sS "$base/metrics")
for m in tkc_requests_total tkc_epoch_seq tkc_graph_edges tkc_cache_hits_total; do
  grep -q "$m" <<<"$metrics" || { echo "metrics missing $m"; exit 1; }
done

echo "== load generator"
"$workdir/tkcload" -addr "${base#http://}" -duration 2s -readers 2 -append \
  -append-batch 100 -append-every 200ms

echo "== graceful shutdown"
kill -INT "$server_pid"
for _ in $(seq 1 100); do
  kill -0 "$server_pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$server_pid" 2>/dev/null; then
  echo "server ignored SIGINT"
  exit 1
fi
wait "$server_pid" || { echo "server exited non-zero"; cat "$workdir/serve.log"; exit 1; }
server_pid=""
grep -q "serve: bye" "$workdir/serve.log" || { echo "no clean shutdown line"; cat "$workdir/serve.log"; exit 1; }

echo "serve smoke OK"
