#!/usr/bin/env bash
# Lint gate: everything a reviewer would bounce a PR for, in one command.
#
#   scripts/lint.sh            # gofmt + go vet + tkcvet over the module
#
# tkcvet is the repo's own invariant checker (cmd/tkcvet): epoch-safety,
# lock-guard, pool-hygiene and ctx-propagation analyzers driven through
# the `go vet -vettool` protocol so annotation facts flow across
# packages. See "Static analysis & invariants" in README.md for the
# tkc: annotation grammar these analyzers enforce.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0

echo "== gofmt"
out=$(gofmt -l .)
if [ -n "$out" ]; then
  echo "gofmt needed on:" $out
  fail=1
fi

echo "== go vet"
go vet ./... || fail=1

echo "== tkcvet (epoch-safety, lock-guard, pool-hygiene, ctx-propagation)"
tkcvet=$(mktemp -t tkcvet.XXXXXX)
trap 'rm -f "$tkcvet"' EXIT
go build -o "$tkcvet" ./cmd/tkcvet
go vet -vettool="$tkcvet" ./... || fail=1

if [ "$fail" -ne 0 ]; then
  echo "lint: FAIL"
  exit 1
fi
echo "lint: OK"
