#!/usr/bin/env bash
# Refreshes internal/xtools from the running toolchain's vendored copy of
# golang.org/x/tools ($GOROOT/src/cmd/vendor/golang.org/x/tools — the
# exact sources `go vet` itself is built from), rewriting the import
# prefix to temporalkcore/internal/xtools. This is the only supported way
# to change internal/xtools; never edit those files by hand.
#
#   scripts/sync_xtools.sh   # re-copy, rewrite imports, build-check
set -euo pipefail
cd "$(dirname "$0")/.."

src="$(go env GOROOT)/src/cmd/vendor/golang.org/x/tools"
dst=internal/xtools
if [ ! -d "$src" ]; then
  echo "sync_xtools: $src not found (toolchain without vendored x/tools?)" >&2
  exit 1
fi

# The transitive closure of the packages cmd/tkcvet and internal/analysis
# need: analysis + unitchecker + inspect + ctrlflow + inspector + cfg.
pkgs=(
  go/analysis
  go/analysis/internal/analysisflags
  go/analysis/passes/ctrlflow
  go/analysis/passes/inspect
  go/analysis/unitchecker
  go/ast/inspector
  go/cfg
  go/types/objectpath
  go/types/typeutil
  internal/aliases
  internal/analysisinternal
  internal/facts
  internal/stdlib
  internal/typeparams
  internal/typesinternal
  internal/versions
)

for p in "${pkgs[@]}"; do
  if [ ! -d "$src/$p" ]; then
    echo "sync_xtools: package $p missing from $src; update the list" >&2
    exit 1
  fi
  rm -rf "$dst/$p"
  mkdir -p "$dst/$p"
  # Top-level files only: subpackages are synced by their own list entry,
  # so a closure change shows up as a build failure, not a silent copy.
  find "$src/$p" -maxdepth 1 -type f \( -name '*.go' -o -name '*.md' \) \
    ! -name '*_test.go' -exec cp {} "$dst/$p/" \;
done
cp "$src/LICENSE" "$src/PATENTS" "$dst/"

# Rewrite the import prefix; nothing else changes.
find "$dst" -name '*.go' -exec sed -i \
  's#"golang.org/x/tools/#"temporalkcore/internal/xtools/#g' {} +

gofmt -l "$dst" >/dev/null
go build ./cmd/tkcvet ./internal/analysis/...
echo "sync_xtools: refreshed from $(go env GOROOT) and build-checked"
