package temporalkcore_test

import (
	"context"
	"fmt"
	"testing"

	tkc "temporalkcore"
)

// shardedBenchWindows derives the two serving-shaped windows the sharded
// benchmarks use on a graph with raw span [lo, hi]: the trailing tenth
// (the fresh-data window every serving workload polls) and a window of the
// same width centred on `cut` (a query that must stitch across a sealed
// shard boundary). Full-span enumeration is deliberately not benchmarked:
// its cost is the size of its own output (millions of cores on the CM
// replica), which drowns the serving-path costs these benches guard.
func shardedBenchWindows(lo, hi, cut int64) (tlo, thi, clo, chi int64) {
	w := (hi - lo) / 10
	return hi - w, hi, cut - w/2, cut + w/2
}

// BenchmarkShardedScatterGather measures the steady-state cost of warm
// count queries against a time-range sharded CM replica, next to the
// unsharded path on the same graph: a trailing-window query (served
// entirely by the frontier shard) and a cut-crossing query (scattered to
// two shards and stitched with a boundary re-settle over cached tables).
//
// On a multi-core host the scattered spans run concurrently; this
// repository's CI runs in a 1-CPU container, where the spans serialise
// and the benchmark instead bounds the overhead of the scatter-gather
// machinery. The bench gate therefore checks allocs/op (warm sharded
// serving must stay within a bounded per-query allocation budget) and
// records ns/op informationally.
func BenchmarkShardedScatterGather(b *testing.B) {
	ctx := context.Background()
	base, tail := cmStream(b)
	full := append(append([]tkc.Edge(nil), base...), tail...)
	g, err := tkc.NewGraph(full)
	if err != nil {
		b.Fatal(err)
	}
	lo, hi := g.TimeSpan()
	const k = 5

	run := func(src tkc.Querier, ws, we int64) func(b *testing.B) {
		return func(b *testing.B) {
			// Warm pass: populate the shard-local (or unsharded) cache so
			// the loop measures steady-state serving, not index builds.
			if _, err := src.Query(k).Window(ws, we).Count(ctx); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := src.Query(k).Window(ws, we).Count(ctx); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	sg, err := tkc.ShardGraph(g, tkc.ShardOptions{Shards: 3, Replicas: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer sg.Close()
	stats := sg.ShardStats()
	cut := stats[len(stats)-2].EndTime // newest sealed boundary
	tlo, thi, clo, chi := shardedBenchWindows(lo, hi, cut)
	v := sg.Latest()

	b.Run("unsharded/trailing", run(g, tlo, thi))
	b.Run("unsharded/cross-cut", run(g, clo, chi))
	b.Run("sharded/trailing", run(v, tlo, thi))
	b.Run("sharded/cross-cut", run(v, clo, chi))
}

// BenchmarkReplicaReadScaling measures warm sharded read throughput as the
// per-shard replica pool grows: parallel client goroutines issue the same
// warm cut-crossing count query against a 3-shard graph served by 1, 2
// and 4 replicas per shard.
//
// The point of replication is concurrent span execution across readers,
// so on a multi-core host throughput rises with the replica count until
// cores run out. CI's 1-CPU container cannot show that scaling — every
// replica shares one core — so there the subtests should track each
// other, and the bench gate checks only allocs/op (replication must not
// add per-query allocation) with ns/op recorded informationally.
func BenchmarkReplicaReadScaling(b *testing.B) {
	ctx := context.Background()
	base, tail := cmStream(b)
	full := append(append([]tkc.Edge(nil), base...), tail...)
	const k = 5

	for _, reps := range []int{1, 2, 4} {
		g, err := tkc.NewGraph(full)
		if err != nil {
			b.Fatal(err)
		}
		lo, hi := g.TimeSpan()
		sg, err := tkc.ShardGraph(g, tkc.ShardOptions{Shards: 3, Replicas: reps})
		if err != nil {
			b.Fatal(err)
		}
		stats := sg.ShardStats()
		_, _, clo, chi := shardedBenchWindows(lo, hi, stats[len(stats)-2].EndTime)
		b.Run(fmt.Sprintf("replicas=%d", reps), func(b *testing.B) {
			v := sg.Latest()
			if _, err := v.Query(k).Window(clo, chi).Count(ctx); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := v.Query(k).Window(clo, chi).Count(ctx); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
		sg.Close()
	}
}
