package temporalkcore

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
)

// WriteTo executes the request and streams every result core to w as
// NDJSON (one JSON object per line, in emission order). Because |R| can
// exceed the graph size by orders of magnitude, results are serialised as
// they are produced and never accumulated; cancelling ctx stops the
// stream after the line being written. The wire format matches WriteCores
// (Vertices appear as a "vertices" field under ProjectVertices).
func (r *Request) WriteTo(ctx context.Context, w io.Writer) (QueryStats, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	enc := json.NewEncoder(bw)
	var encErr error
	qs, err := r.run(ctx, func(c Core) bool {
		if err := enc.Encode(coreJSON{Start: c.Start, End: c.End, Edges: edgeJSONs(c.Edges), Vertices: c.Vertices}); err != nil {
			encErr = err
			return false
		}
		return true
	})
	if err != nil {
		// Deliver the complete lines already encoded (partial-delivery
		// contract, matching Collect/RunBatch); the engine error wins
		// over any flush failure.
		bw.Flush()
		return qs, err
	}
	if encErr != nil {
		bw.Flush()
		return qs, fmt.Errorf("temporalkcore: encoding cores: %w", encErr)
	}
	return qs, bw.Flush()
}

// WriteCores streams every distinct temporal k-core of [start, end] to w
// as NDJSON; see Request.WriteTo. It returns the query stats.
//
// Deprecated: use the v2 builder, which adds context cancellation and
// projections: g.Query(k).Window(start, end).WriteTo(ctx, w).
//
// tkc:allow-background: deprecated v1 shim; the v2 builder threads ctx
func (g *Graph) WriteCores(w io.Writer, k int, start, end int64, opts ...Options) (QueryStats, error) {
	return g.request(k, start, end, opts).WriteTo(context.Background(), w)
}

// ReadCores parses an NDJSON stream written by WriteCores, invoking fn per
// core. fn may return false to stop early.
func ReadCores(r io.Reader, fn func(Core) bool) error {
	dec := json.NewDecoder(r)
	for {
		var cj coreJSON
		if err := dec.Decode(&cj); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("temporalkcore: decoding cores: %w", err)
		}
		c := Core{Start: cj.Start, End: cj.End, Edges: make([]Edge, len(cj.Edges))}
		for i, e := range cj.Edges {
			c.Edges[i] = Edge{U: e[0], V: e[1], Time: e[2]}
		}
		if !fn(c) {
			return nil
		}
	}
}

// coreJSON is the NDJSON schema: the TTI plus [u, v, t] edge triples.
// Vertices appears only under ProjectVertices (WriteCores never sets it,
// keeping its golden wire format unchanged).
type coreJSON struct {
	Start    int64      `json:"start"`
	End      int64      `json:"end"`
	Edges    [][3]int64 `json:"edges"`
	Vertices []int64    `json:"vertices,omitempty"`
}

func edgeJSONs(edges []Edge) [][3]int64 {
	out := make([][3]int64, len(edges))
	for i, e := range edges {
		out[i] = [3]int64{e.U, e.V, e.Time}
	}
	return out
}
