package temporalkcore_test

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"

	tkc "temporalkcore"
	"temporalkcore/internal/gen"
	"temporalkcore/internal/tgraph"
)

// seededEdges synthesises the CM replica at the given scale and seed; see
// cmEdges.
func seededEdges(t testing.TB, edges int, seed int64) []tkc.Edge {
	t.Helper()
	rep, err := gen.ReplicaByCode("CM")
	if err != nil {
		t.Fatal(err)
	}
	g, err := rep.Generate(edges, seed)
	if err != nil {
		t.Fatal(err)
	}
	all := make([]tkc.Edge, g.NumEdges())
	for i := range all {
		te := g.Edge(tgraph.EID(i))
		all[i] = tkc.Edge{U: g.Label(te.U), V: g.Label(te.V), Time: g.RawTime(te.T)}
	}
	return all
}

// TestCachedVsUncachedDifferential is the serving cache's correctness
// suite: across 50 seeded graphs, reader goroutines query the latest
// published epoch through the cache while the writer churns appends in
// (publishing per batch through a Watcher, so epochs — and cache retirement
// — happen under the readers). Every observed (epoch seq, fingerprint)
// pair must be byte-identical to the same queries on a quiesced,
// cache-disabled graph rebuilt from exactly that epoch's edge prefix. Run
// under -race this also exercises the cache's concurrent paths.
func TestCachedVsUncachedDifferential(t *testing.T) {
	seeds := 50
	if testing.Short() {
		seeds = 8
	}
	const k = 3
	for seed := 1; seed <= seeds; seed++ {
		t.Run(fmt.Sprintf("seed%02d", seed), func(t *testing.T) {
			t.Parallel() // each seed is self-contained; multi-core CI overlaps them
			all := seededEdges(t, 300+seed*7, int64(seed))
			cut := len(all) * 9 / 10
			g, err := tkc.NewGraph(all[:cut])
			if err != nil {
				t.Fatal(err)
			}
			w, err := g.Watch(k, 0)
			if err != nil {
				t.Fatal(err)
			}

			// prefix maps every published epoch seq to its exact edge
			// count; written by the writer goroutine only, read after Wait.
			prefix := map[int64]int{g.Latest().Seq(): g.NumEdges()}

			type obs struct {
				seq int64
				fp  string
			}
			var mu sync.Mutex
			var seen []obs
			stop := make(chan struct{})

			var readers sync.WaitGroup
			for ri := 0; ri < 2; ri++ {
				readers.Add(1)
				go func() {
					defer readers.Done()
					for {
						select {
						case <-stop:
							return
						default:
						}
						s := g.Latest()
						fp, err := coreFingerprint(s.Graph, k)
						if err != nil {
							t.Error(err)
							return
						}
						mu.Lock()
						seen = append(seen, obs{seq: s.Seq(), fp: fp})
						mu.Unlock()
					}
				}()
			}

			// Churn: append the remaining 10% in 4 batches through the
			// watcher (each publishes an epoch and refreshes the tables,
			// inserting them into the cache). After each batch the writer
			// itself observes the published epoch once, so every seed
			// records observations even when the readers lose the race to
			// the short churn.
			step := (len(all) - cut + 3) / 4
			for i := cut; i < len(all); i += step {
				j := min(i+step, len(all))
				if _, err := w.Append(all[i:j]...); err != nil {
					t.Fatal(err)
				}
				prefix[g.Latest().Seq()] = g.NumEdges()
				s := g.Latest()
				fp, err := coreFingerprint(s.Graph, k)
				if err != nil {
					t.Fatal(err)
				}
				mu.Lock()
				seen = append(seen, obs{seq: s.Seq(), fp: fp})
				mu.Unlock()
			}
			close(stop)
			readers.Wait()

			// Quiesced replay: each observed epoch must match a fresh,
			// cache-disabled rebuild of its exact prefix.
			replayed := map[int64]string{}
			for _, o := range seen {
				want, ok := replayed[o.seq]
				if !ok {
					n, known := prefix[o.seq]
					if !known {
						t.Fatalf("observed unknown epoch seq %d", o.seq)
					}
					// The canonical edge list has no duplicates, so the
					// prefix length equals the appended edge count.
					g2, err := tkc.NewGraph(all[:n])
					if err != nil {
						t.Fatal(err)
					}
					g2.SetCacheOptions(tkc.CacheOptions{Disable: true})
					if want, err = coreFingerprint(g2, k); err != nil {
						t.Fatal(err)
					}
					replayed[o.seq] = want
				}
				if o.fp != want {
					t.Fatalf("seq %d: cached result diverged\n cached: %s\nreplay: %s", o.seq, o.fp, want)
				}
			}
			if len(seen) == 0 {
				t.Fatal("readers observed nothing")
			}
		})
	}
}

// TestCacheHitRepeatQuery pins the hit semantics of the one-shot path:
// identical repeat queries skip the CoreTime phase, report CacheHit, and
// return byte-identical results.
func TestCacheHitRepeatQuery(t *testing.T) {
	ctx := context.Background()
	all := seededEdges(t, 800, 3)
	g, err := tkc.NewGraph(all)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := g.TimeSpan()

	var first, repeat tkc.QueryStats
	cores1, err := g.Query(3).Window(lo, hi).Stats(&first).Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	cores2, err := g.Query(3).Window(lo, hi).Stats(&repeat).Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Errorf("first query reported CacheHit")
	}
	if !repeat.CacheHit || repeat.CoreTime != 0 {
		t.Errorf("repeat query: CacheHit=%v CoreTime=%v, want hit with zero CoreTime", repeat.CacheHit, repeat.CoreTime)
	}
	if repeat.VCTSize != first.VCTSize || repeat.ECSSize != first.ECSSize {
		t.Errorf("index sizes diverged: %+v vs %+v", repeat, first)
	}
	if !reflect.DeepEqual(cores1, cores2) {
		t.Error("cached repeat returned different cores")
	}

	cs := g.CacheStats()
	if cs.Hits < 1 || cs.Misses < 1 || cs.Entries < 1 {
		t.Errorf("cache stats did not record the flow: %+v", cs)
	}

	// A different epoch mints a different key: append + repeat = miss.
	if _, err := g.Append(tkc.Edge{U: 1, V: 2, Time: hi + 1}); err != nil {
		t.Fatal(err)
	}
	var after tkc.QueryStats
	if _, err := g.Query(3).Window(lo, hi).Stats(&after).Collect(ctx); err != nil {
		t.Fatal(err)
	}
	if after.CacheHit {
		t.Error("query on the appended graph hit a stale-epoch entry")
	}
}

// TestPreparedUsesCache pins the Prepare integration: preparing the same
// (k, window) twice builds once, and a prior one-shot query's entry is
// adopted by Prepare (and vice versa).
func TestPreparedUsesCache(t *testing.T) {
	ctx := context.Background()
	all := seededEdges(t, 800, 4)
	g, err := tkc.NewGraph(all)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := g.TimeSpan()

	p1, err := g.Prepare(3, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if p1.PrepareTime() <= 0 {
		t.Error("first Prepare reported zero PrepareTime (it ran the build)")
	}
	p2, err := g.Prepare(3, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if p2.PrepareTime() != 0 {
		t.Errorf("second Prepare reported PrepareTime %v, want 0 (cache adopt)", p2.PrepareTime())
	}
	c1, err := p1.Query().Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	c2, err := p2.Query().Collect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c1, c2) {
		t.Error("cache-adopted prepared query returned different cores")
	}

	// A one-shot query on the prepared (k, window) is a hit too.
	var qs tkc.QueryStats
	if _, err := g.Query(3).Window(lo, hi).Stats(&qs).Count(ctx); err != nil {
		t.Fatal(err)
	}
	if !qs.CacheHit {
		t.Error("one-shot query missed the entry Prepare inserted")
	}
}

// TestRunBatchSharesHits pins the batch integration: N identical requests
// in one batch resolve their CoreTime tables with a single build, the
// remaining items reporting shared hits, with identical results.
func TestRunBatchSharesHits(t *testing.T) {
	ctx := context.Background()
	all := seededEdges(t, 800, 5)
	g, err := tkc.NewGraph(all)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := g.TimeSpan()

	const dup = 6
	var reqs []*tkc.Request
	for i := 0; i < dup; i++ {
		reqs = append(reqs, g.Query(3).Window(lo, hi))
	}
	reqs = append(reqs, g.Query(2).Window(lo, hi)) // a distinct key rides along

	res := g.RunBatch(ctx, reqs)
	built, shared := 0, 0
	for i := 0; i < dup; i++ {
		r := res[i]
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		if r.Stats.CacheHit {
			shared++
		} else {
			built++
		}
		if !reflect.DeepEqual(r.Cores, res[0].Cores) {
			t.Fatalf("item %d returned different cores", i)
		}
	}
	if built != 1 || shared != dup-1 {
		t.Errorf("identical group: %d built / %d shared, want 1 / %d", built, shared, dup-1)
	}
	if res[dup].Err != nil {
		t.Fatalf("distinct item: %v", res[dup].Err)
	}
	cs := g.CacheStats()
	if cs.Misses != 2 {
		t.Errorf("batch ran %d builds, want 2 (one per distinct key); stats %+v", cs.Misses, cs)
	}

	// The whole batch repeated is all hits.
	res2 := g.RunBatch(ctx, []*tkc.Request{g.Query(3).Window(lo, hi), g.Query(2).Window(lo, hi)})
	for i, r := range res2 {
		if r.Err != nil || !r.Stats.CacheHit {
			t.Errorf("repeat item %d: err=%v hit=%v", i, r.Err, r.Stats.CacheHit)
		}
	}
}

// TestWatcherAdoptsCacheEntry pins the watcher integration: a reader-side
// stale repair whose exact (epoch seq, k, window) tables are already
// cached adopts them instead of patching.
func TestWatcherAdoptsCacheEntry(t *testing.T) {
	ctx := context.Background()
	all := seededEdges(t, 900, 6)
	cut := len(all) * 9 / 10
	g, err := tkc.NewGraph(all[:cut])
	if err != nil {
		t.Fatal(err)
	}
	const k = 3
	w, err := g.Watch(k, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Appends that bypass the watcher leave it stale; a one-shot query on
	// the newly published epoch's full window seeds the cache with exactly
	// the tables the repair needs.
	if _, err := g.Append(all[cut:]...); err != nil {
		t.Fatal(err)
	}
	s := g.Publish()
	lo, hi := s.TimeSpan()
	var qs tkc.QueryStats
	if _, err := s.Query(k).Window(lo, hi).Stats(&qs).Count(ctx); err != nil {
		t.Fatal(err)
	}
	if qs.CacheHit {
		t.Fatal("seeding query was unexpectedly a hit")
	}

	want, err := w.Query().Count(ctx) // stale: repairs by adopting the entry
	if err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.CacheAdopts != 1 {
		t.Errorf("repair did not adopt the cached tables: %+v", st)
	}
	if want.Cores != qs.Cores || want.Edges != qs.Edges {
		t.Errorf("adopted watcher answer %+v differs from the seeding query %+v", want, qs)
	}
}

// TestSnapshotPinnedCacheHitAndRetire pins epoch-keyed invalidation at the
// public layer: a snapshot keeps hitting its own epoch's entries while the
// live graph moves on, until publishing retires epochs older than the
// previous latest.
func TestSnapshotPinnedCacheHitAndRetire(t *testing.T) {
	ctx := context.Background()
	all := seededEdges(t, 800, 8)
	cut := len(all) * 8 / 10
	g, err := tkc.NewGraph(all[:cut])
	if err != nil {
		t.Fatal(err)
	}
	const k = 3
	s1 := g.Publish()
	lo, hi := s1.TimeSpan()

	var qs tkc.QueryStats
	if _, err := s1.Query(k).Window(lo, hi).Stats(&qs).Count(ctx); err != nil {
		t.Fatal(err)
	}
	if qs.CacheHit {
		t.Fatal("first snapshot query was a hit on an empty cache")
	}

	// The live graph moves on; the pinned snapshot still hits its entry
	// (publish retires only below the PREVIOUS latest, which s1 still is).
	mid := cut + (len(all)-cut)/2
	if _, err := g.Append(all[cut:mid]...); err != nil {
		t.Fatal(err)
	}
	g.Publish()
	if _, err := s1.Query(k).Window(lo, hi).Stats(&qs).Count(ctx); err != nil {
		t.Fatal(err)
	}
	if !qs.CacheHit {
		t.Error("pinned snapshot missed its own epoch's entry after one publish")
	}

	// A second publish retires s1's epoch: the entry is dropped, but the
	// snapshot stays correct — it rebuilds on miss.
	if _, err := g.Append(all[mid:]...); err != nil {
		t.Fatal(err)
	}
	g.Publish()
	if cs := g.CacheStats(); cs.Retired == 0 {
		t.Errorf("second publish retired nothing: %+v", cs)
	}
	before, err := s1.Query(k).Window(lo, hi).Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if before.CacheHit {
		t.Error("query on a retired epoch reported a hit")
	}

	// Differential anchor: the retired-epoch rebuild equals a quiesced
	// cache-disabled rebuild of the same prefix.
	g2, err := tkc.NewGraph(all[:cut])
	if err != nil {
		t.Fatal(err)
	}
	g2.SetCacheOptions(tkc.CacheOptions{Disable: true})
	want, err := g2.Query(k).Window(lo, hi).Count(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if before.Cores != want.Cores || before.Edges != want.Edges {
		t.Errorf("retired-epoch answer %+v != quiesced %+v", before, want)
	}
}

// TestCacheEvictionKeepsServing pins the LRU bound at the public layer: a
// tiny budget forces evictions across many distinct windows, and every
// query — evicted, resident or never admitted — still answers exactly
// like the cache-disabled path.
func TestCacheEvictionKeepsServing(t *testing.T) {
	ctx := context.Background()
	all := seededEdges(t, 900, 9)
	g, err := tkc.NewGraph(all)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := tkc.NewGraph(all)
	if err != nil {
		t.Fatal(err)
	}
	ref.SetCacheOptions(tkc.CacheOptions{Disable: true})

	lo, hi := g.TimeSpan()
	span := hi - lo

	// Size the budget off a real entry: room for ~3 full-window entries, so
	// a dozen distinct windows must cycle through eviction.
	ctxBg := context.Background()
	if _, err := g.Query(2).Window(lo, hi).Count(ctxBg); err != nil {
		t.Fatal(err)
	}
	budget := 3 * g.CacheStats().Bytes
	if budget == 0 {
		t.Fatal("sizing query cached nothing")
	}
	g.SetCacheOptions(tkc.CacheOptions{MaxBytes: budget})
	for round := 0; round < 2; round++ {
		for i := 0; i < 12; i++ {
			ws := lo + span*int64(i)/24
			got, err := g.Query(2).Window(ws, hi).Count(ctx)
			if err != nil {
				t.Fatal(err)
			}
			want, err := ref.Query(2).Window(ws, hi).Count(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cores != want.Cores || got.Edges != want.Edges {
				t.Fatalf("window %d: cached %+v != uncached %+v", i, got, want)
			}
		}
	}
	cs := g.CacheStats()
	if cs.Evictions == 0 {
		t.Errorf("12 windows under a ~3-entry budget evicted nothing: %+v", cs)
	}
	if cs.Bytes > budget {
		t.Errorf("resident bytes %d exceed the %d budget", cs.Bytes, budget)
	}
}

// TestCacheDisable pins the opt-out: no stats move, no hits appear.
func TestCacheDisable(t *testing.T) {
	ctx := context.Background()
	all := seededEdges(t, 600, 10)
	g, err := tkc.NewGraph(all)
	if err != nil {
		t.Fatal(err)
	}
	g.SetCacheOptions(tkc.CacheOptions{Disable: true})
	lo, hi := g.TimeSpan()
	var qs tkc.QueryStats
	for i := 0; i < 2; i++ {
		if _, err := g.Query(2).Window(lo, hi).Stats(&qs).Count(ctx); err != nil {
			t.Fatal(err)
		}
		if qs.CacheHit || qs.CacheShared {
			t.Fatalf("run %d on a disabled cache reported a hit", i)
		}
		if qs.CoreTime <= 0 {
			t.Fatalf("run %d skipped the CoreTime phase with the cache disabled", i)
		}
	}
	if cs := g.CacheStats(); cs != (tkc.CacheStats{}) {
		t.Errorf("disabled cache reported stats %+v", cs)
	}
}
