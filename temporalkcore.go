// Package temporalkcore enumerates temporal k-cores in time-range queries
// on temporal graphs. It implements "Accelerating K-Core Computation in
// Temporal Graphs" (EDBT 2026): given a temporal graph, an integer k and a
// time range [start, end], it streams every distinct k-core appearing in
// the snapshot of any sub-window, each exactly once, in time proportional
// to the size of the output.
//
// Quick start:
//
//	g, err := temporalkcore.NewGraph([]temporalkcore.Edge{
//		{U: 1, V: 2, Time: 10}, {U: 2, V: 3, Time: 11}, {U: 1, V: 3, Time: 12},
//	})
//	cores, err := g.Cores(2, 10, 12)
//
// The package speaks raw timestamps and vertex labels; compression to the
// dense ranks the algorithms need happens internally. Algorithms other than
// the default optimal one (the EnumBase strawman and the OTCD baseline from
// the literature) are exposed for comparison via Options.
package temporalkcore

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"temporalkcore/internal/core"
	"temporalkcore/internal/enum"
	"temporalkcore/internal/kcore"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// Edge is one undirected temporal interaction between two vertex labels at
// a raw timestamp.
type Edge struct {
	U, V int64
	Time int64
}

// Graph is an immutable temporal graph ready for time-range k-core queries.
type Graph struct {
	g *tgraph.Graph
}

// ErrNoTimestamps is returned when a query range covers no timestamp of the
// graph.
var ErrNoTimestamps = errors.New("temporalkcore: query range covers no timestamp of the graph")

// ErrEmptyRange is returned when a query range has start > end. An inverted
// range is a caller bug, distinguished from a well-formed range that merely
// misses every timestamp (ErrNoTimestamps).
var ErrEmptyRange = errors.New("temporalkcore: query range start exceeds end")

// window validates a raw query range and compresses it. Every public entry
// point that takes a (start, end) range resolves it here, so the error
// contract is uniform: ErrEmptyRange for inverted ranges, ErrNoTimestamps
// for ranges covering no timestamp.
func (g *Graph) window(start, end int64) (tgraph.Window, error) {
	if start > end {
		return tgraph.Window{}, ErrEmptyRange
	}
	w, ok := g.g.CompressRange(start, end)
	if !ok {
		return tgraph.Window{}, ErrNoTimestamps
	}
	return w, nil
}

// NewGraph builds a graph from raw edges. Self loops are dropped and exact
// duplicate edges are collapsed (the paper models the edge set as a set).
func NewGraph(edges []Edge) (*Graph, error) {
	var b tgraph.Builder
	for _, e := range edges {
		b.Add(e.U, e.V, e.Time)
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// Load reads a whitespace-separated temporal edge list ("u v t", or
// "u v w t" with the weight ignored; '#'/'%' comments allowed).
func Load(r io.Reader) (*Graph, error) {
	g, err := tgraph.LoadText(r, tgraph.LoadOptions{})
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// LoadFile reads an edge-list file; see Load.
func LoadFile(path string) (*Graph, error) {
	g, err := tgraph.LoadTextFile(path, tgraph.LoadOptions{})
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// Internal returns the underlying internal graph. It is exported for the
// repository's own benchmarks and tools.
func (g *Graph) Internal() *tgraph.Graph { return g.g }

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.g.NumVertices() }

// NumEdges returns the number of temporal edges.
func (g *Graph) NumEdges() int { return g.g.NumEdges() }

// TimestampCount returns the number of distinct timestamps (the paper's
// tmax).
func (g *Graph) TimestampCount() int { return int(g.g.TMax()) }

// TimeSpan returns the smallest and largest raw timestamp.
func (g *Graph) TimeSpan() (min, max int64) {
	return g.g.RawTime(1), g.g.RawTime(g.g.TMax())
}

// KMax returns the maximum core number over the graph's full projection,
// the upper bound for useful query k values.
func (g *Graph) KMax() int { return kcore.KMax(g.g) }

// Core is one temporal k-core result: its tightest time interval in raw
// timestamps and its temporal edges.
type Core struct {
	Start, End int64
	Edges      []Edge
}

// Algorithm selects the enumeration strategy; see the internal/core docs.
type Algorithm = core.Algorithm

// Re-exported algorithm identifiers.
const (
	AlgoEnum     = core.AlgoEnum
	AlgoEnumBase = core.AlgoEnumBase
	AlgoOTCD     = core.AlgoOTCD
)

// Options tunes a query.
type Options struct {
	Algorithm Algorithm
}

// QueryStats reports phase timings and intermediate index sizes of a query.
type QueryStats struct {
	VCTSize int
	ECSSize int
	Cores   int64
	Edges   int64 // |R|: summed edges over all cores

	// CoreTime is the wall time of the CoreTime phase (VCT + ECS
	// construction, Algorithm 2); EnumTime the wall time of the
	// enumeration phase. For OTCD everything is EnumTime.
	CoreTime time.Duration
	EnumTime time.Duration
}

// CoresFunc streams every distinct temporal k-core of any window within
// [start, end] (raw timestamps, inclusive) to fn, each exactly once. fn may
// return false to stop early. The Core passed to fn (including its edge
// slice) is only valid during the call unless copied.
func (g *Graph) CoresFunc(k int, start, end int64, fn func(Core) bool, opts ...Options) (QueryStats, error) {
	var qs QueryStats
	if k < 1 {
		return qs, fmt.Errorf("temporalkcore: k must be >= 1, got %d", k)
	}
	w, err := g.window(start, end)
	if err != nil {
		return qs, err
	}
	opt := Options{}
	if len(opts) > 0 {
		opt = opts[0]
	}
	sink := &funcSink{g: g.g, fn: fn, qs: &qs}
	st, err := core.Query(g.g, k, w, sink, core.Options{Algorithm: opt.Algorithm})
	if err != nil {
		return qs, err
	}
	qs.VCTSize = st.VCTSize
	qs.ECSSize = st.ECSSize
	qs.CoreTime = st.CoreTime
	qs.EnumTime = st.EnumTime
	return qs, nil
}

type funcSink struct {
	g   *tgraph.Graph
	fn  func(Core) bool
	qs  *QueryStats
	buf []Edge
}

func (s *funcSink) Emit(tti tgraph.Window, eids []tgraph.EID) bool {
	s.buf = s.buf[:0]
	for _, e := range eids {
		te := s.g.Edge(e)
		s.buf = append(s.buf, Edge{
			U:    s.g.Label(te.U),
			V:    s.g.Label(te.V),
			Time: s.g.RawTime(te.T),
		})
	}
	rs, re := s.g.RawWindow(tti)
	s.qs.Cores++
	s.qs.Edges += int64(len(eids))
	return s.fn(Core{Start: rs, End: re, Edges: s.buf})
}

// Cores materialises every distinct temporal k-core of any window within
// [start, end].
func (g *Graph) Cores(k int, start, end int64, opts ...Options) ([]Core, error) {
	var out []Core
	_, err := g.CoresFunc(k, start, end, func(c Core) bool {
		cp := c
		cp.Edges = append([]Edge(nil), c.Edges...)
		out = append(out, cp)
		return true
	}, opts...)
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CountCores counts the distinct temporal k-cores and their total edge size
// (the paper's |R|) without materialising results.
func (g *Graph) CountCores(k int, start, end int64, opts ...Options) (QueryStats, error) {
	return g.CoresFunc(k, start, end, func(Core) bool { return true }, opts...)
}

// CoreTimeEntry is one label of a vertex's core time index in raw
// timestamps: from start times >= Start (until the next entry) the vertex
// first joins a k-core at end time CoreTime; Infinite marks "never again".
type CoreTimeEntry struct {
	Start    int64
	CoreTime int64
	Infinite bool
}

// CoreTimes computes the vertex core time index of a label over
// [start, end] — the VCT of Section IV. It answers "from which window on is
// this vertex part of a k-core".
func (g *Graph) CoreTimes(label int64, k int, start, end int64) ([]CoreTimeEntry, error) {
	v, ok := g.g.VertexOf(label)
	if !ok {
		return nil, fmt.Errorf("temporalkcore: unknown vertex %d", label)
	}
	w, err := g.window(start, end)
	if err != nil {
		return nil, err
	}
	ix, _, err := vct.Build(g.g, k, w)
	if err != nil {
		return nil, err
	}
	var out []CoreTimeEntry
	for _, ent := range ix.Entries(v) {
		e := CoreTimeEntry{Start: g.g.RawTime(ent.Start)}
		if ent.CT == tgraph.InfTime {
			e.Infinite = true
		} else {
			e.CoreTime = g.g.RawTime(ent.CT)
		}
		out = append(out, e)
	}
	return out, nil
}

// VertexSets enumerates the distinct vertex sets of all temporal k-cores in
// [start, end] — the compact representation the paper's future-work section
// proposes. Vertex labels are returned sorted per set.
func (g *Graph) VertexSets(k int, start, end int64) ([][]int64, error) {
	w, err := g.window(start, end)
	if err != nil {
		return nil, err
	}
	sink := enum.NewVertexSetSink(g.g)
	if _, err := core.Query(g.g, k, w, sink, core.Options{Algorithm: core.AlgoEnum}); err != nil {
		return nil, err
	}
	out := make([][]int64, len(sink.Sets))
	for i, set := range sink.Sets {
		labels := make([]int64, len(set))
		for j, v := range set {
			labels[j] = g.g.Label(v)
		}
		sort.Slice(labels, func(a, b int) bool { return labels[a] < labels[b] })
		out[i] = labels
	}
	return out, nil
}
