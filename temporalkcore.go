// Package temporalkcore enumerates temporal k-cores in time-range queries
// on temporal graphs. It implements "Accelerating K-Core Computation in
// Temporal Graphs" (EDBT 2026): given a temporal graph, an integer k and a
// time range [start, end], it streams every distinct k-core appearing in
// the snapshot of any sub-window, each exactly once, in time proportional
// to the size of the output.
//
// Quick start (API v2 — the composable request builder):
//
//	g, err := temporalkcore.NewGraph([]temporalkcore.Edge{
//		{U: 1, V: 2, Time: 10}, {U: 2, V: 3, Time: 11}, {U: 1, V: 3, Time: 12},
//	})
//	cores, err := g.Query(2).Window(10, 12).Collect(ctx)
//
//	for c, err := range g.Query(2).Window(10, 12).Seq(ctx) {
//		... // streamed; break stops the engine after the cores consumed
//	}
//
// Every execution mode — one-shot, prepared (PreparedQuery.Query), batch
// (RunBatch), the live sliding window (Watcher.Query), snapshot
// (k,h)-cores (Request.Snapshot) and the historical PHC index
// (HistoricalIndex.Query) — is reachable through the same Request type,
// and every execution takes a context.Context. The enumeration engines
// cancel both query phases promptly (bounded poll strides in the CoreTime
// settle loop and the enumeration sweep); the single-pass snapshot and
// historical lookups check the context once up front. The pre-v2 methods
// (Cores, CoresFunc, CountCores, QueryBatch, ...) remain as thin
// deprecated shims over the builder.
//
// Graphs also serve queries while a stream keeps appending: the writer
// publishes immutable epochs (Graph.Publish) and any number of reader
// goroutines query them lock-free via Graph.Latest / Snapshot, or through
// a Watcher's concurrent read path — see the Concurrency model section of
// the README and the Snapshot, Freeze and Watcher documentation.
//
// The package speaks raw timestamps and vertex labels; compression to the
// dense ranks the algorithms need happens internally. Algorithms other than
// the default optimal one (the EnumBase strawman and the OTCD baseline from
// the literature) are exposed for comparison via Request.Algorithm.
package temporalkcore

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"time"

	"temporalkcore/internal/core"
	"temporalkcore/internal/enum"
	"temporalkcore/internal/kcore"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// Edge is one undirected temporal interaction between two vertex labels at
// a raw timestamp.
type Edge struct {
	U, V int64
	Time int64
}

// Graph is a temporal graph ready for time-range k-core queries. It is
// immutable except for Append, which extends it at the time frontier.
//
// Concurrency model: a Graph is single-writer. All methods are safe for
// concurrent use by readers as long as no Append runs; to serve queries
// while a stream keeps appending, the writer publishes immutable epochs
// (Publish) and readers query them via Latest/Freeze — see Snapshot — or
// through a Watcher, whose read path is lock-free against the writer.
type Graph struct {
	g *tgraph.Graph

	// hub and origin are shared with every Snapshot frozen from this
	// graph: hub carries the published latest epoch, origin identifies the
	// live graph a snapshot derives from (so batches accept requests
	// pinned to different epochs of the same graph).
	hub    *epochHub
	origin *tgraph.Graph
}

// ErrNoTimestamps is returned when a query range covers no timestamp of the
// graph.
var ErrNoTimestamps = errors.New("temporalkcore: query range covers no timestamp of the graph")

// ErrEmptyRange is returned when a query range has start > end. An inverted
// range is a caller bug, distinguished from a well-formed range that merely
// misses every timestamp (ErrNoTimestamps).
var ErrEmptyRange = errors.New("temporalkcore: query range start exceeds end")

// window validates a raw query range and compresses it. Every public entry
// point that takes a (start, end) range resolves it here, so the error
// contract is uniform: ErrEmptyRange for inverted ranges, ErrNoTimestamps
// for ranges covering no timestamp.
func (g *Graph) window(start, end int64) (tgraph.Window, error) {
	return windowOf(g.g, start, end)
}

// windowOf is window against an explicit graph state — used by the
// historical tier, which resolves ranges on a pinned epoch rather than the
// live graph.
func windowOf(tg *tgraph.Graph, start, end int64) (tgraph.Window, error) {
	if start > end {
		return tgraph.Window{}, ErrEmptyRange
	}
	w, ok := tg.CompressRange(start, end)
	if !ok {
		return tgraph.Window{}, ErrNoTimestamps
	}
	return w, nil
}

// NewGraph builds a graph from raw edges. Self loops are dropped and exact
// duplicate edges are collapsed (the paper models the edge set as a set).
func NewGraph(edges []Edge) (*Graph, error) {
	var b tgraph.Builder
	for _, e := range edges {
		b.Add(e.U, e.V, e.Time)
	}
	g, err := b.Build()
	if err != nil {
		return nil, err
	}
	return newGraph(g), nil
}

// Load reads a whitespace-separated temporal edge list ("u v t", or
// "u v w t" with the weight ignored; '#'/'%' comments allowed).
func Load(r io.Reader) (*Graph, error) {
	g, err := tgraph.LoadText(r, tgraph.LoadOptions{})
	if err != nil {
		return nil, err
	}
	return newGraph(g), nil
}

// LoadFile reads an edge-list file; see Load.
func LoadFile(path string) (*Graph, error) {
	g, err := tgraph.LoadTextFile(path, tgraph.LoadOptions{})
	if err != nil {
		return nil, err
	}
	return newGraph(g), nil
}

// Internal returns the underlying internal graph. It is exported for the
// repository's own benchmarks and tools.
func (g *Graph) Internal() *tgraph.Graph { return g.g }

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.g.NumVertices() }

// NumEdges returns the number of temporal edges.
func (g *Graph) NumEdges() int { return g.g.NumEdges() }

// TimestampCount returns the number of distinct timestamps (the paper's
// tmax).
func (g *Graph) TimestampCount() int { return int(g.g.TMax()) }

// TimeSpan returns the smallest and largest raw timestamp.
func (g *Graph) TimeSpan() (min, max int64) {
	return g.g.RawTime(1), g.g.RawTime(g.g.TMax())
}

// KMax returns the maximum core number over the graph's full projection,
// the upper bound for useful query k values.
func (g *Graph) KMax() int { return kcore.KMax(g.g) }

// Core is one temporal k-core result: its tightest time interval in raw
// timestamps and, depending on the request's Projection, its temporal
// edges (ProjectEdges, the default) or its sorted distinct vertex labels
// (ProjectVertices). Under ProjectCount both slices are nil.
type Core struct {
	Start, End int64
	Edges      []Edge
	Vertices   []int64
}

// Algorithm selects the enumeration strategy; see the internal/core docs.
type Algorithm = core.Algorithm

// Re-exported algorithm identifiers.
const (
	AlgoEnum     = core.AlgoEnum
	AlgoEnumBase = core.AlgoEnumBase
	AlgoOTCD     = core.AlgoOTCD
)

// Options tunes a query.
type Options struct {
	Algorithm Algorithm
}

// QueryStats reports phase timings and intermediate index sizes of a query.
type QueryStats struct {
	VCTSize int
	ECSSize int
	Cores   int64
	Edges   int64 // |R|: summed edges over all cores

	// CoreTime is the wall time of the CoreTime phase (VCT + ECS
	// construction, Algorithm 2); EnumTime the wall time of the
	// enumeration phase. For OTCD everything is EnumTime. A query served
	// from the serving cache reports CoreTime zero — the phase was paid
	// by whichever execution built the entry.
	CoreTime time.Duration
	EnumTime time.Duration

	// CacheHit reports that the CoreTime phase was skipped because the
	// serving cache held (or a concurrent identical build produced) the
	// compiled tables for this (epoch, k, window); see SetCacheOptions.
	CacheHit bool
	// CacheShared reports that this execution neither built nor found the
	// tables resident, but shared a concurrent identical build
	// (singleflight) — a subset of CacheHit.
	CacheShared bool

	// Shards is the number of shard spans a sharded request scattered to;
	// zero for unsharded requests. For sharded requests CacheHit reports
	// that every span was served from resident (or shared) tables, and
	// CoreTime/EnumTime sum the spans' phase costs (CPU, not wall time —
	// spans run concurrently).
	Shards int
	// Patched counts the spans that extended a cached shard-local index
	// across its cut with a boundary re-settle instead of rebuilding.
	Patched int
}

// request compiles the legacy (k, range, Options) triple into a v2
// Request — the single execution plan every shimmed method delegates to.
func (g *Graph) request(k int, start, end int64, opts []Options) *Request {
	r := g.Query(k).Window(start, end)
	if len(opts) > 0 {
		r.Algorithm(opts[0].Algorithm)
	}
	return r
}

// CoresFunc streams every distinct temporal k-core of any window within
// [start, end] (raw timestamps, inclusive) to fn, each exactly once. fn may
// return false to stop early. The Core passed to fn (including its edge
// slice) is only valid during the call unless copied.
//
// Deprecated: use the v2 builder, which adds context cancellation and owns
// result copies: for c, err := range g.Query(k).Window(start, end).Seq(ctx).
//
// tkc:allow-background: deprecated v1 shim; the v2 builder threads ctx
func (g *Graph) CoresFunc(k int, start, end int64, fn func(Core) bool, opts ...Options) (QueryStats, error) {
	return g.request(k, start, end, opts).run(context.Background(), fn)
}

// Cores materialises every distinct temporal k-core of any window within
// [start, end].
//
// Deprecated: use the v2 builder:
// g.Query(k).Window(start, end).Collect(ctx).
//
// tkc:allow-background: deprecated v1 shim; the v2 builder threads ctx
func (g *Graph) Cores(k int, start, end int64, opts ...Options) ([]Core, error) {
	out, err := g.request(k, start, end, opts).Collect(context.Background())
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CountCores counts the distinct temporal k-cores and their total edge size
// (the paper's |R|) without materialising results.
//
// Deprecated: use the v2 builder:
// g.Query(k).Window(start, end).Count(ctx).
//
// tkc:allow-background: deprecated v1 shim; the v2 builder threads ctx
func (g *Graph) CountCores(k int, start, end int64, opts ...Options) (QueryStats, error) {
	return g.request(k, start, end, opts).Count(context.Background())
}

// CoreTimeEntry is one label of a vertex's core time index in raw
// timestamps: from start times >= Start (until the next entry) the vertex
// first joins a k-core at end time CoreTime; Infinite marks "never again".
type CoreTimeEntry struct {
	Start    int64
	CoreTime int64
	Infinite bool
}

// CoreTimes computes the vertex core time index of a label over
// [start, end] — the VCT of Section IV. It answers "from which window on is
// this vertex part of a k-core".
func (g *Graph) CoreTimes(label int64, k int, start, end int64) ([]CoreTimeEntry, error) {
	v, ok := g.g.VertexOf(label)
	if !ok {
		return nil, fmt.Errorf("temporalkcore: unknown vertex %d", label)
	}
	w, err := g.window(start, end)
	if err != nil {
		return nil, err
	}
	ix, _, err := vct.Build(g.g, k, w)
	if err != nil {
		return nil, err
	}
	var out []CoreTimeEntry
	for _, ent := range ix.Entries(v) {
		e := CoreTimeEntry{Start: g.g.RawTime(ent.Start)}
		if ent.CT == tgraph.InfTime {
			e.Infinite = true
		} else {
			e.CoreTime = g.g.RawTime(ent.CT)
		}
		out = append(out, e)
	}
	return out, nil
}

// VertexSets enumerates the distinct vertex sets of all temporal k-cores in
// [start, end] — the compact representation the paper's future-work section
// proposes. Vertex labels are returned sorted per set.
func (g *Graph) VertexSets(k int, start, end int64) ([][]int64, error) {
	w, err := g.window(start, end)
	if err != nil {
		return nil, err
	}
	sink := enum.NewVertexSetSink(g.g)
	if _, err := core.Query(g.g, k, w, sink, core.Options{Algorithm: core.AlgoEnum}); err != nil {
		return nil, err
	}
	out := make([][]int64, len(sink.Sets))
	for i, set := range sink.Sets {
		labels := make([]int64, len(set))
		for j, v := range set {
			labels[j] = g.g.Label(v)
		}
		sort.Slice(labels, func(a, b int) bool { return labels[a] < labels[b] })
		out[i] = labels
	}
	return out, nil
}
