// Package shard partitions the temporal graph's time axis into contiguous
// time-range shards and runs scatter-gather window queries across them.
//
// The append-only frontier makes the partition trivial to maintain: edges
// only ever arrive at (or after) the newest timestamp, so every shard but
// the last — the frontier — is sealed and immutable. A seal freezes the
// frontier's range at a cut one rank below the current maximum timestamp
// (Append may still add edges AT the maximum, so the cut rank itself can
// never change once sealed) and opens a new frontier above it.
//
// Queries decompose exactly along the start axis: the enumeration emits
// every distinct temporal k-core in ascending tightest-start order, and a
// core whose tightest start falls in shard i's range is fully determined
// by the edges in [start, queryEnd] — a suffix window the shard's task
// computes on the shared spine graph. Each overlapping shard therefore
// contributes the cores whose tightest start lands in its slice, boundary
// cores (those whose window crosses the cut) included: the shard's cached
// local CoreTime index vouches for in-shard core times, and a
// vct.PatchScratch boundary re-settle extends exactly the vertices whose
// core windows cross the cut. Concatenating the per-shard streams in shard
// order reproduces the unsharded enumeration byte for byte.
package shard

import (
	"fmt"

	"temporalkcore/internal/tgraph"
)

// Cut records one sealed shard boundary. A sealed shard's range never
// changes: RawEnd is one raw timestamp below the frontier maximum at seal
// time, so by Append's non-decreasing-time contract no later edge can land
// at or below it, and End (its compressed rank) is stable across every
// later epoch of the same lineage.
type Cut struct {
	RawEnd int64     // inclusive raw-time upper bound of the sealed shard
	End    tgraph.TS // rank of RawEnd on the spine graph
	Seq    int64     // spine mutation sequence at seal time
}

// Directory is the immutable routing table of a sharded graph: the ordered
// sealed cuts, with the open frontier shard implicitly covering everything
// above the last cut. A Directory is never mutated — Seal returns a new
// one — so readers may hold a directory while the writer seals.
//
// tkc:frozensource
type Directory struct {
	cuts []Cut
}

// NewDirectory builds a directory from ascending sealed cuts. The slice is
// copied.
func NewDirectory(cuts []Cut) (*Directory, error) {
	d := &Directory{cuts: append([]Cut(nil), cuts...)}
	for i := 1; i < len(d.cuts); i++ {
		if d.cuts[i].RawEnd <= d.cuts[i-1].RawEnd || d.cuts[i].End <= d.cuts[i-1].End {
			return nil, fmt.Errorf("shard: cuts not ascending at %d (%d then %d)",
				i, d.cuts[i-1].RawEnd, d.cuts[i].RawEnd)
		}
	}
	return d, nil
}

// Seal returns a new directory with one more sealed shard. The receiver is
// unchanged.
func (d *Directory) Seal(c Cut) (*Directory, error) {
	cuts := make([]Cut, len(d.cuts)+1)
	copy(cuts, d.cuts)
	cuts[len(d.cuts)] = c
	return NewDirectory(cuts)
}

// NumSealed returns the number of sealed shards.
func (d *Directory) NumSealed() int { return len(d.cuts) }

// NumShards returns the total shard count: every sealed shard plus the
// open frontier.
func (d *Directory) NumShards() int { return len(d.cuts) + 1 }

// Cuts returns the sealed cuts in order. The caller must not mutate the
// slice.
func (d *Directory) Cuts() []Cut { return d.cuts }

// start returns the first rank of shard i (0-based).
func (d *Directory) start(i int) tgraph.TS {
	if i == 0 {
		return 1
	}
	return d.cuts[i-1].End + 1
}

// Span is one shard's slice of a scatter-gather query: the shard emits
// exactly the cores whose tightest start falls in [Task.Start, LastStart],
// computed over the suffix window Task on the spine graph.
type Span struct {
	Shard  int  // 0-based shard id (== NumSealed() for the frontier)
	Sealed bool // false only for the frontier span

	// Task is the shard's compute window: [max(query start, shard start),
	// query end]. Core windows may extend past the shard's cut — that is
	// the boundary-stitch case — so the task window always runs to the
	// query end.
	Task tgraph.Window

	// LastStart bounds the emission: only cores with tightest start at
	// most LastStart belong to this shard (min of the query end and the
	// shard's cut rank).
	LastStart tgraph.TS

	// Local is the sealed shard's full local range [shard start, cut], the
	// window its cached CoreTime index covers. Zero for the frontier.
	Local tgraph.Window

	// Seq is the sealed shard's seal-time mutation sequence (the Shard
	// cache key namespace). Zero for the frontier.
	Seq int64
}

// Spans routes a query window to the shards whose range overlaps it, in
// ascending time order. Concatenating the spans' emissions in this order
// yields the unsharded enumeration order: per-span output ascends by
// tightest start, and the spans' start slices are disjoint, adjacent and
// ascending.
func (d *Directory) Spans(w tgraph.Window) []Span {
	spans := make([]Span, 0, len(d.cuts)+1)
	for i, c := range d.cuts {
		lo := d.start(i)
		if c.End < w.Start || lo > w.End {
			continue
		}
		start := lo
		if w.Start > start {
			start = w.Start
		}
		last := c.End
		if w.End < last {
			last = w.End
		}
		spans = append(spans, Span{
			Shard:     i,
			Sealed:    true,
			Task:      tgraph.Window{Start: start, End: w.End},
			LastStart: last,
			Local:     tgraph.Window{Start: lo, End: c.End},
			Seq:       c.Seq,
		})
	}
	if lo := d.start(len(d.cuts)); lo <= w.End {
		start := lo
		if w.Start > start {
			start = w.Start
		}
		spans = append(spans, Span{
			Shard:     len(d.cuts),
			Task:      tgraph.Window{Start: start, End: w.End},
			LastStart: w.End,
		})
	}
	return spans
}
