package shard

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"temporalkcore/internal/core"
	"temporalkcore/internal/enum"
	"temporalkcore/internal/qcache"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// ErrClosed reports a query against a runtime whose Close already ran.
var ErrClosed = errors.New("shard: runtime closed")

// chunkEdges is the emission batch size of a span task: a worker hands
// its consumer cores in chunks of roughly this many edge ids, amortising
// the channel handoff without letting a huge result run unbounded.
const chunkEdges = 4096

// chunk is one batch of cores streamed from a span task to the gathering
// consumer. offs[i] is the end of wins[i]'s edge run in eids (the run
// starts where the previous one ended).
type chunk struct {
	wins []tgraph.Window
	offs []int32
	eids []tgraph.EID
}

// taskResult closes out one span task.
type taskResult struct {
	err      error
	cacheHit bool // the span's CoreTime tables were resident (or shared)
	patched  bool // the span ran a boundary re-settle over its cut
	coreTime time.Duration
	enumTime time.Duration
}

// task is one span's unit of work, executed on the owning shard's replica
// pool. The out channel streams chunks and is closed by the worker; the
// final result lands on res.
type task struct {
	q    *query
	span Span
	out  chan chunk
	res  chan taskResult
}

// query is the shared state of one scatter-gather execution, pinned for
// its whole lifetime: the epoch's graph, the directory the spans were
// routed by, and the cancellation scope every task polls.
//
// tkc:frozensource
type query struct {
	g     *tgraph.Graph
	k     int
	w     tgraph.Window
	cache *qcache.Cache
	ctx   context.Context
}

// PoolStats are one shard pool's monotone serving counters.
type PoolStats struct {
	Tasks     int64 // span tasks executed
	CacheHits int64 // tasks whose CoreTime tables were resident or shared
	Patched   int64 // tasks that ran a boundary re-settle
}

// pool is one shard's replica set: M worker goroutines, each owning its
// private CoreTime and enumeration scratch, draining a shared task queue.
// Replication is what lets one hot shard serve several concurrent queries
// without the scratches contending.
type pool struct {
	tasks chan *task

	stTasks   atomic.Int64
	stHits    atomic.Int64
	stPatched atomic.Int64
}

// Runtime owns the per-shard replica pools of one sharded graph. Pools are
// created on demand as the directory grows (sealing adds a shard) and live
// until Close.
type Runtime struct {
	replicas int

	mu     sync.Mutex
	pools  []*pool // tkc:guardedby mu
	closed bool    // tkc:guardedby mu
	wg     sync.WaitGroup
}

// NewRuntime creates a runtime with replicas reader goroutines per shard
// (minimum 1).
func NewRuntime(replicas int) *Runtime {
	if replicas < 1 {
		replicas = 1
	}
	return &Runtime{replicas: replicas}
}

// Replicas returns the per-shard replica count.
func (rt *Runtime) Replicas() int { return rt.replicas }

// Close shuts every replica worker down and waits for in-flight tasks to
// finish. Queries must have drained first.
func (rt *Runtime) Close() {
	rt.mu.Lock()
	if rt.closed {
		rt.mu.Unlock()
		return
	}
	rt.closed = true
	pools := rt.pools
	rt.mu.Unlock()
	for _, p := range pools {
		close(p.tasks)
	}
	rt.wg.Wait()
}

// Stats returns the serving counters of shard i's pool (zero for shards
// without a pool yet).
func (rt *Runtime) Stats(i int) PoolStats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if i < 0 || i >= len(rt.pools) {
		return PoolStats{}
	}
	p := rt.pools[i]
	return PoolStats{
		Tasks:     p.stTasks.Load(),
		CacheHits: p.stHits.Load(),
		Patched:   p.stPatched.Load(),
	}
}

// ensure grows the pool set to at least n shards, spawning replica workers
// for the new ones. Returns false after Close.
func (rt *Runtime) ensure(n int) ([]*pool, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.closed {
		return nil, false
	}
	for len(rt.pools) < n {
		p := &pool{tasks: make(chan *task, rt.replicas)}
		for i := 0; i < rt.replicas; i++ {
			rt.wg.Add(1)
			// The workers' lifetime is bounded by Runtime.Close (the task
			// channel closes and wg waits), not by one request.
			// tkc:allow-background: replica workers live for the runtime, joined by Close
			go func() {
				defer rt.wg.Done()
				var vs vct.Scratch
				var es enum.Scratch
				for t := range p.tasks {
					runTask(t, p, &vs, &es)
				}
			}()
		}
		rt.pools = append(rt.pools, p)
	}
	return rt.pools, true
}

// Params describe one scatter-gather query over a pinned epoch.
type Params struct {
	G     *tgraph.Graph // the pinned epoch's graph (spine)
	K     int
	W     tgraph.Window // compressed query window on G
	Dir   *Directory    // the directory published with the epoch
	Cache *qcache.Cache // serving cache; nil runs every span uncached
}

// Stats aggregates one scatter-gather execution. CoreTime and EnumTime sum
// the spans' phase costs — spans run concurrently, so the sums are CPU
// cost, not wall time.
type Stats struct {
	Spans       int // shards the query scattered to
	SealedSpans int
	CacheHits   int // spans whose CoreTime tables were resident or shared
	Patched     int // spans that ran a boundary re-settle over their cut
	CoreTime    time.Duration
	EnumTime    time.Duration
}

// Query scatters w across the overlapping shards, runs every span on its
// shard's replica pool, and gathers the per-span core streams in shard
// order — which is exactly ascending tightest-start order, so the merged
// stream is byte-identical to the unsharded enumeration of the same
// window. emit follows the enum.Sink contract: the eids slice is only
// valid during the call, and returning false stops the query early.
func (rt *Runtime) Query(ctx context.Context, p Params, emit func(tgraph.Window, []tgraph.EID) bool) (Stats, error) {
	var st Stats
	spans := p.Dir.Spans(p.W)
	st.Spans = len(spans)
	if len(spans) == 0 {
		return st, nil
	}
	pools, ok := rt.ensure(p.Dir.NumShards())
	if !ok {
		return st, ErrClosed
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	q := &query{g: p.G, k: p.K, w: p.W, cache: p.Cache, ctx: ctx}
	tasks := make([]*task, len(spans))
	for i, sp := range spans {
		t := &task{q: q, span: sp, out: make(chan chunk, 2), res: make(chan taskResult, 1)}
		tasks[i] = t
		select {
		case pools[sp.Shard].tasks <- t:
		case <-ctx.Done():
			// Unsubmitted tasks never produce; mark them absent.
			tasks[i] = nil
		}
		if sp.Sealed {
			st.SealedSpans++
		}
	}

	var firstErr error
	stopped := false
	for _, t := range tasks {
		if t == nil {
			continue
		}
		for c := range t.out {
			if stopped || firstErr != nil {
				continue // draining a cancelled task's buffered chunks
			}
			lo := int32(0)
			for i := range c.wins {
				hi := c.offs[i]
				if !emit(c.wins[i], c.eids[lo:hi]) {
					stopped = true
					cancel()
					break
				}
				lo = hi
			}
		}
		r := <-t.res
		if r.err != nil && firstErr == nil && !stopped {
			firstErr = r.err
			cancel()
		}
		if r.cacheHit {
			st.CacheHits++
		}
		if r.patched {
			st.Patched++
		}
		st.CoreTime += r.coreTime
		st.EnumTime += r.enumTime
	}
	if firstErr == nil && !stopped {
		if err := ctx.Err(); err != nil {
			firstErr = err
		}
	}
	return st, firstErr
}

// chunkSink accumulates emissions into chunks and streams them on out,
// honouring cancellation so a worker never blocks on a consumer that went
// away.
type chunkSink struct {
	ctx context.Context
	out chan<- chunk
	cur chunk
}

func (s *chunkSink) Emit(tti tgraph.Window, eids []tgraph.EID) bool {
	s.cur.wins = append(s.cur.wins, tti)
	s.cur.eids = append(s.cur.eids, eids...)
	s.cur.offs = append(s.cur.offs, int32(len(s.cur.eids)))
	if len(s.cur.eids) >= chunkEdges {
		return s.flush()
	}
	return true
}

func (s *chunkSink) flush() bool {
	if len(s.cur.wins) == 0 {
		return true
	}
	c := s.cur
	s.cur = chunk{}
	select {
	case s.out <- c:
		return true
	case <-s.ctx.Done():
		return false
	}
}

// runTask executes one span on a replica worker: resolve the span's
// CoreTime tables (cached local index + boundary patch for sealed shards,
// plain cached build for the frontier), then enumerate the span's start
// slice and stream the cores out. The worker owns vs and es exclusively.
func runTask(t *task, p *pool, vs *vct.Scratch, es *enum.Scratch) {
	var r taskResult
	q := t.q
	p.stTasks.Add(1)
	defer func() {
		if r.cacheHit {
			p.stHits.Add(1)
		}
		if r.patched {
			p.stPatched.Add(1)
		}
		close(t.out)
		t.res <- r
	}()
	stop := core.StopFromCtx(q.ctx)

	began := time.Now()
	ecs, err := t.spanTables(&r, vs, stop)
	r.coreTime = time.Since(began)
	if err != nil {
		r.err = translateStop(q.ctx, err)
		return
	}

	sink := &chunkSink{ctx: q.ctx, out: t.out}
	began = time.Now()
	done, cancelled := enum.EnumerateRangeStop(q.g, ecs, sink, es, t.span.LastStart, stop)
	if done {
		done = sink.flush()
	}
	r.enumTime = time.Since(began)
	if !done || cancelled {
		r.err = q.ctx.Err()
	}
}

// spanTables resolves the span's CoreTime tables. Sealed shards serve from
// their cached local index — built once per (seal, k) under the shard's
// cache key namespace, immune to epoch retirement — extended across the
// cut by a PatchScratch re-settle: cached core times at or below the cut
// are pinned exact, and exactly the vertices whose core windows cross the
// cut re-settle against the suffix. The frontier span is an ordinary
// epoch-keyed cached build. Without a cache every span builds directly on
// the worker's scratch.
func (t *task) spanTables(r *taskResult, vs *vct.Scratch, stop func() bool) (*vct.ECS, error) {
	q := t.q
	sp := t.span
	if q.cache == nil {
		_, ecs, err := vct.BuildScratchStop(q.g, q.k, sp.Task, vs, stop)
		return ecs, err
	}
	if !sp.Sealed {
		key := qcache.Key{Seq: q.g.MutSeq(), K: q.k, W: sp.Task, Algo: qcache.AlgoEnum}
		ent, err := t.cached(r, key, sp.Task, stop)
		if err != nil {
			return nil, err
		}
		if ent == nil { // known-oversize key: zero-retention path
			_, ecs, err := vct.BuildScratchStop(q.g, q.k, sp.Task, vs, stop)
			return ecs, err
		}
		return ent.Ecs, nil
	}
	key := qcache.Key{Seq: sp.Seq, K: q.k, W: sp.Local, Algo: qcache.AlgoEnum, Shard: uint32(sp.Shard + 1)}
	ent, err := t.cached(r, key, sp.Local, stop)
	if err != nil {
		return nil, err
	}
	if ent == nil {
		// The local tables exceed the cache budget: build the span window
		// directly, skipping the stitch (nothing to stitch against).
		_, ecs, err := vct.BuildScratchStop(q.g, q.k, sp.Task, vs, stop)
		return ecs, err
	}
	if sp.Task == sp.Local {
		return ent.Ecs, nil // the query slice is exactly the shard
	}
	_, ecs, patched, err := vct.PatchScratchStop(q.g, q.k, sp.Task, ent.Ix, sp.Local.End+1, vs, stop)
	if err != nil {
		return nil, err
	}
	r.patched = patched
	return ecs, nil
}

// cached resolves one cache entry under key, building w's tables on a
// miss. A nil entry with a nil error means the key is known-oversize: the
// caller should take its uncached path.
func (t *task) cached(r *taskResult, key qcache.Key, w tgraph.Window, stop func() bool) (*qcache.Entry, error) {
	q := t.q
	if q.cache.Uncacheable(key) {
		return nil, nil
	}
	ent, outcome, err := q.cache.GetOrBuild(q.ctx, key, func() (*qcache.Entry, error) {
		began := time.Now()
		ix, ecs, err := vct.BuildStop(q.g, q.k, w, stop)
		if err != nil {
			return nil, translateStop(q.ctx, err)
		}
		return qcache.NewEntry(ix, ecs, time.Since(began)), nil
	})
	if err != nil {
		return nil, err
	}
	r.cacheHit = outcome != qcache.Built
	return ent, nil
}

// translateStop converts the engines' ErrStopped into the context's own
// error when cancellation is what fired, matching the public query paths.
func translateStop(ctx context.Context, err error) error {
	if errors.Is(err, vct.ErrStopped) {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
	}
	return err
}
