package shard_test

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"temporalkcore/internal/enum"
	"temporalkcore/internal/qcache"
	"temporalkcore/internal/shard"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

func randomGraph(r *rand.Rand, n, m, tmax int) *tgraph.Graph {
	var b tgraph.Builder
	b.KeepDuplicates = false
	for i := 0; i < m; i++ {
		u := r.Intn(n)
		v := r.Intn(n)
		for v == u {
			v = r.Intn(n)
		}
		b.Add(int64(u), int64(v), int64(1+r.Intn(tmax)))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// directoryFor slices g's rank axis into parts sealed shards plus a
// frontier, cutting at evenly spaced ranks.
func directoryFor(t *testing.T, g *tgraph.Graph, parts int) *shard.Directory {
	t.Helper()
	var cuts []shard.Cut
	tmax := int(g.TMax())
	for i := 1; i < parts; i++ {
		r := tgraph.TS(i * tmax / parts)
		if r < 1 || r >= g.TMax() {
			continue
		}
		if len(cuts) > 0 && r <= cuts[len(cuts)-1].End {
			continue
		}
		cuts = append(cuts, shard.Cut{RawEnd: g.RawTime(r), End: r, Seq: g.MutSeq()})
	}
	d, err := shard.NewDirectory(cuts)
	if err != nil {
		t.Fatalf("NewDirectory: %v", err)
	}
	return d
}

type emitted struct {
	win  tgraph.Window
	eids []tgraph.EID
}

func collectOracle(t *testing.T, g *tgraph.Graph, k int, w tgraph.Window) []emitted {
	t.Helper()
	_, ecs, err := vct.Build(g, k, w)
	if err != nil {
		t.Fatalf("vct.Build: %v", err)
	}
	var out []emitted
	sink := sinkFunc(func(win tgraph.Window, eids []tgraph.EID) bool {
		cp := make([]tgraph.EID, len(eids))
		copy(cp, eids)
		out = append(out, emitted{win, cp})
		return true
	})
	if done, _ := enum.EnumerateStop(g, ecs, sink, enum.GetScratch(), nil); !done {
		t.Fatal("oracle enumeration stopped early")
	}
	return out
}

type sinkFunc func(tgraph.Window, []tgraph.EID) bool

func (f sinkFunc) Emit(w tgraph.Window, eids []tgraph.EID) bool { return f(w, eids) }

func TestDirectorySpans(t *testing.T) {
	d, err := shard.NewDirectory([]shard.Cut{
		{RawEnd: 100, End: 10, Seq: 1},
		{RawEnd: 200, End: 20, Seq: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumShards() != 3 || d.NumSealed() != 2 {
		t.Fatalf("NumShards=%d NumSealed=%d", d.NumShards(), d.NumSealed())
	}

	cases := []struct {
		w    tgraph.Window
		want []shard.Span
	}{
		{ // spanning everything
			w: tgraph.Window{Start: 1, End: 30},
			want: []shard.Span{
				{Shard: 0, Sealed: true, Task: tgraph.Window{Start: 1, End: 30}, LastStart: 10, Local: tgraph.Window{Start: 1, End: 10}, Seq: 1},
				{Shard: 1, Sealed: true, Task: tgraph.Window{Start: 11, End: 30}, LastStart: 20, Local: tgraph.Window{Start: 11, End: 20}, Seq: 2},
				{Shard: 2, Task: tgraph.Window{Start: 21, End: 30}, LastStart: 30},
			},
		},
		{ // interior of one sealed shard
			w: tgraph.Window{Start: 12, End: 18},
			want: []shard.Span{
				{Shard: 1, Sealed: true, Task: tgraph.Window{Start: 12, End: 18}, LastStart: 18, Local: tgraph.Window{Start: 11, End: 20}, Seq: 2},
			},
		},
		{ // frontier only
			w: tgraph.Window{Start: 25, End: 30},
			want: []shard.Span{
				{Shard: 2, Task: tgraph.Window{Start: 25, End: 30}, LastStart: 30},
			},
		},
		{ // crossing the first cut only
			w: tgraph.Window{Start: 5, End: 15},
			want: []shard.Span{
				{Shard: 0, Sealed: true, Task: tgraph.Window{Start: 5, End: 15}, LastStart: 10, Local: tgraph.Window{Start: 1, End: 10}, Seq: 1},
				{Shard: 1, Sealed: true, Task: tgraph.Window{Start: 11, End: 15}, LastStart: 15, Local: tgraph.Window{Start: 11, End: 20}, Seq: 2},
			},
		},
	}
	for _, tc := range cases {
		got := d.Spans(tc.w)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Spans(%v):\n got %+v\nwant %+v", tc.w, got, tc.want)
		}
	}
}

func TestDirectorySealValidation(t *testing.T) {
	d, err := shard.NewDirectory([]shard.Cut{{RawEnd: 100, End: 10, Seq: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Seal(shard.Cut{RawEnd: 50, End: 5, Seq: 2}); err == nil {
		t.Fatal("descending seal accepted")
	}
	d2, err := d.Seal(shard.Cut{RawEnd: 200, End: 20, Seq: 2})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumSealed() != 1 || d2.NumSealed() != 2 {
		t.Fatal("Seal mutated the receiver or failed to extend")
	}
}

// TestQueryMatchesOracle locks the scatter-gather contract at the package
// level: merged span output is identical to the unsharded enumeration, for
// windows inside one shard, spanning cuts, and covering everything — with
// and without a cache, warm and cold.
func TestQueryMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 6; trial++ {
		g := randomGraph(rng, 16, 260, 24)
		d := directoryFor(t, g, 2+trial%3)
		rt := shard.NewRuntime(1 + trial%3)
		caches := []*qcache.Cache{nil, qcache.New(1 << 20)}
		for _, cache := range caches {
			for pass := 0; pass < 2; pass++ { // second pass hits the warm path
				for _, w := range []tgraph.Window{
					{Start: 1, End: g.TMax()},
					{Start: 2, End: g.TMax() - 1},
					{Start: g.TMax() / 3, End: 2 * g.TMax() / 3},
				} {
					if w.Start < 1 || w.End < w.Start {
						continue
					}
					want := collectOracle(t, g, 2, w)
					var got []emitted
					st, err := rt.Query(context.Background(), shard.Params{
						G: g, K: 2, W: w, Dir: d, Cache: cache,
					}, func(win tgraph.Window, eids []tgraph.EID) bool {
						cp := make([]tgraph.EID, len(eids))
						copy(cp, eids)
						got = append(got, emitted{win, cp})
						return true
					})
					if err != nil {
						t.Fatalf("Query: %v", err)
					}
					if len(got) != len(want) {
						t.Fatalf("trial %d w=%v: %d cores, want %d (stats %+v)", trial, w, len(got), len(want), st)
					}
					for i := range want {
						if !reflect.DeepEqual(got[i], want[i]) {
							t.Fatalf("trial %d w=%v core %d:\n got %+v\nwant %+v", trial, w, i, got[i], want[i])
						}
					}
				}
			}
		}
		rt.Close()
	}
}

// TestQueryWarmCacheHits asserts the second identical query serves every
// sealed span from its cached local index.
func TestQueryWarmCacheHits(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGraph(rng, 14, 200, 20)
	d := directoryFor(t, g, 3)
	rt := shard.NewRuntime(2)
	defer rt.Close()
	cache := qcache.New(1 << 20)
	w := tgraph.Window{Start: 1, End: g.TMax()}
	run := func() shard.Stats {
		st, err := rt.Query(context.Background(), shard.Params{G: g, K: 2, W: w, Dir: d, Cache: cache},
			func(tgraph.Window, []tgraph.EID) bool { return true })
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		return st
	}
	run()
	st := run()
	if st.CacheHits != st.Spans {
		t.Fatalf("warm query: %d/%d spans hit the cache (stats %+v)", st.CacheHits, st.Spans, st)
	}
	for i := 0; i < d.NumShards(); i++ {
		ps := rt.Stats(i)
		if ps.Tasks == 0 {
			t.Fatalf("shard %d pool served no tasks", i)
		}
	}
}

// TestQueryEarlyStop verifies the consumer can stop mid-stream without an
// error and without wedging the workers.
func TestQueryEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomGraph(rng, 14, 220, 20)
	d := directoryFor(t, g, 3)
	rt := shard.NewRuntime(1)
	defer rt.Close()
	w := tgraph.Window{Start: 1, End: g.TMax()}
	want := collectOracle(t, g, 2, w)
	if len(want) < 3 {
		t.Skip("graph too sparse for an early-stop test")
	}
	seen := 0
	_, err := rt.Query(context.Background(), shard.Params{G: g, K: 2, W: w, Dir: d},
		func(win tgraph.Window, eids []tgraph.EID) bool {
			seen++
			return seen < 2
		})
	if err != nil {
		t.Fatalf("early-stopped query returned error: %v", err)
	}
	if seen != 2 {
		t.Fatalf("sink saw %d cores, want 2", seen)
	}
}

// TestQueryAfterClose locks the shutdown contract.
func TestQueryAfterClose(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomGraph(rng, 10, 80, 10)
	d := directoryFor(t, g, 2)
	rt := shard.NewRuntime(1)
	rt.Close()
	rt.Close() // idempotent
	_, err := rt.Query(context.Background(), shard.Params{G: g, K: 2, W: tgraph.Window{Start: 1, End: g.TMax()}, Dir: d},
		func(tgraph.Window, []tgraph.EID) bool { return true })
	if err != shard.ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
}

// TestQueryCancelledContext verifies a cancelled context surfaces as its
// own error.
func TestQueryCancelledContext(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomGraph(rng, 12, 160, 16)
	d := directoryFor(t, g, 3)
	rt := shard.NewRuntime(1)
	defer rt.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := rt.Query(ctx, shard.Params{G: g, K: 2, W: tgraph.Window{Start: 1, End: g.TMax()}, Dir: d},
		func(tgraph.Window, []tgraph.EID) bool { return true })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
