package gen_test

import (
	"testing"

	"temporalkcore/internal/gen"
	"temporalkcore/internal/tgraph"
)

// TestDegreeSkew: the hub-core + preferential-attachment model must
// produce heavy-tailed degrees — a dense hub set far above the mean — or
// replica kmax values collapse and percentage-of-kmax queries degenerate.
func TestDegreeSkew(t *testing.T) {
	cfg := gen.Config{
		Name: "skew", Seed: 3,
		Vertices: 1000, Edges: 10000, Timestamps: 2000,
		HubCount: 30, HubEdgeProb: 0.3, MixEdgeProb: 0.3,
		Burstiness: 0.3, Communities: 5,
	}
	g, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := g.ComputeStats()
	if float64(st.MaxDegree) < 5*st.AvgDegree {
		t.Errorf("max degree %d not heavy-tailed vs avg %.1f", st.MaxDegree, st.AvgDegree)
	}
	// Hubs (labels 0..HubCount-1) must dominate the top of the degree
	// distribution.
	hubDegTotal, otherDegTotal := 0, 0
	hubSeen, otherSeen := 0, 0
	for v := tgraph.VID(0); v < tgraph.VID(g.NumVertices()); v++ {
		if g.Label(v) < int64(cfg.HubCount) {
			hubDegTotal += g.Degree(v)
			hubSeen++
		} else {
			otherDegTotal += g.Degree(v)
			otherSeen++
		}
	}
	if hubSeen == 0 || otherSeen == 0 {
		t.Fatalf("hub split broken: %d/%d", hubSeen, otherSeen)
	}
	hubAvg := float64(hubDegTotal) / float64(hubSeen)
	otherAvg := float64(otherDegTotal) / float64(otherSeen)
	if hubAvg < 3*otherAvg {
		t.Errorf("hub avg degree %.1f not clearly above periphery %.1f", hubAvg, otherAvg)
	}
}

// TestBurstTemporalLocality: with high burstiness, edge timestamps must
// concentrate — some timestamps carry far more edges than the uniform
// expectation — because temporal k-cores only emerge from such locality.
func TestBurstTemporalLocality(t *testing.T) {
	base := gen.Config{
		Name: "burst", Seed: 4,
		Vertices: 500, Edges: 8000, Timestamps: 4000,
		HubCount: 20, HubEdgeProb: 0.25, MixEdgeProb: 0.3,
		Communities: 4,
	}
	burstCfg := base
	burstCfg.Burstiness = 0.9
	uniformCfg := base
	uniformCfg.Burstiness = 0

	peak := func(cfg gen.Config) int {
		g, err := gen.Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		best := 0
		for ts := tgraph.TS(1); ts <= g.TMax(); ts++ {
			lo, hi := g.EdgesAt(ts)
			if int(hi-lo) > best {
				best = int(hi - lo)
			}
		}
		return best
	}
	pb, pu := peak(burstCfg), peak(uniformCfg)
	if pb < 2*pu {
		t.Errorf("bursty peak %d not clearly above uniform peak %d", pb, pu)
	}
}
