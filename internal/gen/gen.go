// Package gen generates deterministic synthetic temporal graphs. It stands
// in for the paper's fourteen SNAP/KONECT datasets (Table III), which are
// not redistributable here: each replica preserves the dataset's shape —
// vertex/edge ratio, number of distinct timestamps relative to edges (the
// property separating WikiTalk-like many-timestamp graphs from
// Prosper/Youtube-like few-timestamp graphs), degree skew, and a dense
// hub core that yields a nontrivial kmax — at a configurable scale.
//
// The model is a hub-core + community-burst graph:
//
//   - a small hub set interacts densely, producing the high-core structure
//     that k-core queries target;
//   - the remaining vertices attach preferentially, giving heavy-tailed
//     degrees as in real interaction networks;
//   - a fraction of edges is drawn from per-community temporal bursts, so
//     cohesive subgraphs appear inside narrow windows (the phenomenon
//     time-range k-core queries exist to find); the rest is uniform in time.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"temporalkcore/internal/tgraph"
)

// Config parameterises one synthetic graph.
type Config struct {
	Name       string
	Seed       int64
	Vertices   int
	Edges      int
	Timestamps int

	// HubCount is the size of the dense core; 0 picks a default from the
	// edge count.
	HubCount int
	// HubEdgeProb is the probability that an edge connects two hubs.
	HubEdgeProb float64
	// MixEdgeProb is the probability that an edge connects a hub with a
	// non-hub (preferentially chosen).
	MixEdgeProb float64
	// Burstiness is the fraction of edges whose timestamp is drawn from a
	// community burst instead of uniformly.
	Burstiness float64
	// Communities is the number of planted communities (minimum 1).
	Communities int
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Vertices < 2 {
		return fmt.Errorf("gen: need >= 2 vertices, got %d", c.Vertices)
	}
	if c.Edges < 1 {
		return fmt.Errorf("gen: need >= 1 edge, got %d", c.Edges)
	}
	if c.Timestamps < 1 {
		return fmt.Errorf("gen: need >= 1 timestamp, got %d", c.Timestamps)
	}
	if c.HubEdgeProb < 0 || c.MixEdgeProb < 0 || c.HubEdgeProb+c.MixEdgeProb > 1 {
		return fmt.Errorf("gen: hub/mix probabilities invalid: %f + %f", c.HubEdgeProb, c.MixEdgeProb)
	}
	if c.Burstiness < 0 || c.Burstiness > 1 {
		return fmt.Errorf("gen: burstiness %f outside [0,1]", c.Burstiness)
	}
	return nil
}

// Generate builds the synthetic graph. The same Config always produces the
// same graph.
func Generate(cfg Config) (*tgraph.Graph, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	n := cfg.Vertices
	hubs := cfg.HubCount
	if hubs <= 0 {
		hubs = int(3 * math.Sqrt(float64(cfg.Edges)/float64(n)+1) * 4)
	}
	if hubs < 3 {
		hubs = 3
	}
	if hubs > n {
		hubs = n
	}
	comms := cfg.Communities
	if comms < 1 {
		comms = 1
	}

	// Community of each vertex and burst centres per community.
	commOf := make([]int, n)
	for v := range commOf {
		commOf[v] = r.Intn(comms)
	}
	type burst struct {
		centre float64
		width  float64
	}
	bursts := make([][]burst, comms)
	for c := range bursts {
		nb := 1 + r.Intn(3)
		for i := 0; i < nb; i++ {
			bursts[c] = append(bursts[c], burst{
				centre: r.Float64() * float64(cfg.Timestamps),
				width:  (0.01 + 0.05*r.Float64()) * float64(cfg.Timestamps),
			})
		}
	}

	// Preferential pool of previously used endpoints.
	pool := make([]int32, 0, 2*cfg.Edges)
	pickRegular := func() int32 {
		if len(pool) > 0 && r.Float64() < 0.5 {
			return pool[r.Intn(len(pool))]
		}
		return int32(hubs + r.Intn(n-hubs))
	}
	if hubs == n {
		pickRegular = func() int32 { return int32(r.Intn(n)) }
	}

	timeFor := func(u int32) int64 {
		if r.Float64() < cfg.Burstiness {
			bs := bursts[commOf[u]]
			b := bs[r.Intn(len(bs))]
			t := b.centre + r.NormFloat64()*b.width
			if t < 0 {
				t = 0
			}
			if t >= float64(cfg.Timestamps) {
				t = float64(cfg.Timestamps) - 1
			}
			return int64(t) + 1
		}
		return int64(r.Intn(cfg.Timestamps)) + 1
	}

	type key struct {
		u, v int32
		t    int64
	}
	seen := make(map[key]struct{}, cfg.Edges)
	b := tgraph.Builder{}
	added := 0
	attempts := 0
	maxAttempts := 20*cfg.Edges + 1000
	for added < cfg.Edges && attempts < maxAttempts {
		attempts++
		var u, v int32
		roll := r.Float64()
		switch {
		case roll < cfg.HubEdgeProb:
			u = int32(r.Intn(hubs))
			v = int32(r.Intn(hubs))
		case roll < cfg.HubEdgeProb+cfg.MixEdgeProb:
			u = int32(r.Intn(hubs))
			v = pickRegular()
		default:
			u = pickRegular()
			v = pickRegular()
		}
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		t := timeFor(u)
		k := key{u: u, v: v, t: t}
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		b.Add(int64(u), int64(v), t)
		pool = append(pool, u, v)
		added++
	}
	if added == 0 {
		return nil, fmt.Errorf("gen: could not generate any edge for %q", cfg.Name)
	}
	return b.Build()
}
