package gen_test

import (
	"testing"

	"temporalkcore/internal/gen"
	"temporalkcore/internal/kcore"
	"temporalkcore/internal/tgraph"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := gen.Config{Name: "t", Seed: 7, Vertices: 200, Edges: 2000, Timestamps: 500,
		HubEdgeProb: 0.3, MixEdgeProb: 0.3, Burstiness: 0.4, Communities: 4}
	g1, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != g2.NumEdges() || g1.NumVertices() != g2.NumVertices() {
		t.Fatalf("not deterministic: %d/%d vs %d/%d edges/vertices",
			g1.NumEdges(), g1.NumVertices(), g2.NumEdges(), g2.NumVertices())
	}
	for i := 0; i < g1.NumEdges(); i++ {
		if g1.Edge(tgraph.EID(i)) != g2.Edge(tgraph.EID(i)) {
			t.Fatalf("edge %d differs", i)
		}
	}
	// Different seeds differ.
	cfg.Seed = 8
	g3, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := g3.NumEdges() == g1.NumEdges()
	if same {
		diff := false
		for i := 0; i < g1.NumEdges() && !diff; i++ {
			diff = g1.Edge(tgraph.EID(i)) != g3.Edge(tgraph.EID(i))
		}
		same = !diff
	}
	if same {
		t.Error("different seeds produced identical graphs")
	}
}

func TestGenerateTargets(t *testing.T) {
	cfg := gen.Config{Name: "t", Seed: 1, Vertices: 300, Edges: 3000, Timestamps: 100,
		HubEdgeProb: 0.25, MixEdgeProb: 0.3, Burstiness: 0.3, Communities: 3}
	g, err := gen.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() < cfg.Edges*9/10 {
		t.Errorf("generated %d edges, want ~%d", g.NumEdges(), cfg.Edges)
	}
	if g.NumVertices() > cfg.Vertices {
		t.Errorf("generated %d vertices > cap %d", g.NumVertices(), cfg.Vertices)
	}
	if int(g.TMax()) > cfg.Timestamps {
		t.Errorf("tmax %d > cap %d", g.TMax(), cfg.Timestamps)
	}
}

func TestGenerateValidation(t *testing.T) {
	bad := []gen.Config{
		{Vertices: 1, Edges: 5, Timestamps: 5},
		{Vertices: 5, Edges: 0, Timestamps: 5},
		{Vertices: 5, Edges: 5, Timestamps: 0},
		{Vertices: 5, Edges: 5, Timestamps: 5, HubEdgeProb: 0.8, MixEdgeProb: 0.5},
		{Vertices: 5, Edges: 5, Timestamps: 5, Burstiness: 1.5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestReplicasTable(t *testing.T) {
	reps := gen.Replicas()
	if len(reps) != 14 {
		t.Fatalf("got %d replicas, want 14", len(reps))
	}
	codes := map[string]bool{}
	for _, r := range reps {
		if codes[r.Code] {
			t.Errorf("duplicate code %s", r.Code)
		}
		codes[r.Code] = true
		if r.Paper.Edges <= 0 || r.Paper.Vertices <= 0 || r.Paper.Timestamps <= 0 || r.Paper.KMax <= 0 {
			t.Errorf("%s: incomplete paper stats %+v", r.Code, r.Paper)
		}
	}
	if _, err := gen.ReplicaByCode("CM"); err != nil {
		t.Error(err)
	}
	if _, err := gen.ReplicaByCode("XX"); err == nil {
		t.Error("unknown code accepted")
	}
}

// TestReplicaShape: a scaled replica must preserve the defining property of
// its dataset class — many distinct timestamps (CM) versus few (PL) — and
// produce a usable kmax.
func TestReplicaShape(t *testing.T) {
	cm, _ := gen.ReplicaByCode("CM")
	pl, _ := gen.ReplicaByCode("PL")
	gcm, err := cm.Generate(4000, 1)
	if err != nil {
		t.Fatal(err)
	}
	gpl, err := pl.Generate(4000, 1)
	if err != nil {
		t.Fatal(err)
	}
	// CM: timestamps ~ edges. PL: timestamps << edges.
	if int(gcm.TMax()) < gcm.NumEdges()/3 {
		t.Errorf("CM replica tmax=%d for %d edges; expected near-unique timestamps", gcm.TMax(), gcm.NumEdges())
	}
	if int(gpl.TMax()) > gpl.NumEdges()/10 {
		t.Errorf("PL replica tmax=%d for %d edges; expected few timestamps", gpl.TMax(), gpl.NumEdges())
	}
	for _, g := range []*tgraph.Graph{gcm, gpl} {
		if kmax := kcore.KMax(g); kmax < 4 {
			t.Errorf("replica kmax=%d too small to parameterise queries", kmax)
		}
	}
}

// TestReplicaFullScaleCap: asking for more edges than the paper's dataset
// has must cap at the paper's size.
func TestReplicaFullScaleCap(t *testing.T) {
	fb, _ := gen.ReplicaByCode("FB")
	cfg := fb.Config(1_000_000, 3)
	if cfg.Edges != fb.Paper.Edges {
		t.Errorf("edges = %d, want cap %d", cfg.Edges, fb.Paper.Edges)
	}
}
