package gen

import (
	"fmt"
	"math"

	"temporalkcore/internal/tgraph"
)

// PaperStats are the published Table III statistics of one dataset.
type PaperStats struct {
	Vertices   int
	Edges      int
	Timestamps int
	KMax       int
}

// Replica describes one of the paper's fourteen datasets and how to
// synthesise a scaled stand-in for it.
type Replica struct {
	Code     string
	FullName string
	Paper    PaperStats

	// hubEdgeProb/mixEdgeProb/burstiness capture the dataset's character;
	// dense few-timestamp datasets get higher hub density.
	hubEdgeProb float64
	mixEdgeProb float64
	burstiness  float64
}

// Replicas returns the Table III datasets in the paper's order.
func Replicas() []Replica {
	return []Replica{
		{Code: "FB", FullName: "FB-Forum", Paper: PaperStats{899, 33786, 33482, 19}, hubEdgeProb: 0.30, mixEdgeProb: 0.35, burstiness: 0.4},
		{Code: "BO", FullName: "BitcoinOtc", Paper: PaperStats{5881, 35592, 35444, 21}, hubEdgeProb: 0.30, mixEdgeProb: 0.35, burstiness: 0.3},
		{Code: "CM", FullName: "CollegeMsg", Paper: PaperStats{1899, 59835, 58911, 20}, hubEdgeProb: 0.25, mixEdgeProb: 0.35, burstiness: 0.4},
		{Code: "EM", FullName: "Email", Paper: PaperStats{986, 332334, 207880, 34}, hubEdgeProb: 0.30, mixEdgeProb: 0.40, burstiness: 0.3},
		{Code: "MC", FullName: "Mooc", Paper: PaperStats{7143, 411749, 345600, 76}, hubEdgeProb: 0.45, mixEdgeProb: 0.30, burstiness: 0.3},
		{Code: "MO", FullName: "MathOverflow", Paper: PaperStats{24818, 506550, 505784, 78}, hubEdgeProb: 0.45, mixEdgeProb: 0.30, burstiness: 0.3},
		{Code: "AU", FullName: "AskUbuntu", Paper: PaperStats{159316, 964437, 960866, 48}, hubEdgeProb: 0.35, mixEdgeProb: 0.35, burstiness: 0.3},
		{Code: "LR", FullName: "Lkml-reply", Paper: PaperStats{63399, 1096440, 881701, 91}, hubEdgeProb: 0.50, mixEdgeProb: 0.25, burstiness: 0.3},
		{Code: "EN", FullName: "Enron", Paper: PaperStats{87273, 1148072, 220364, 53}, hubEdgeProb: 0.40, mixEdgeProb: 0.30, burstiness: 0.4},
		{Code: "SU", FullName: "SuperUser", Paper: PaperStats{194085, 1443339, 1437199, 61}, hubEdgeProb: 0.40, mixEdgeProb: 0.30, burstiness: 0.3},
		{Code: "WT", FullName: "WikiTalk", Paper: PaperStats{1219241, 2284546, 1956001, 68}, hubEdgeProb: 0.40, mixEdgeProb: 0.30, burstiness: 0.3},
		{Code: "WK", FullName: "Wikipedia", Paper: PaperStats{91340, 2435731, 4518, 117}, hubEdgeProb: 0.55, mixEdgeProb: 0.25, burstiness: 0.2},
		{Code: "PL", FullName: "ProsperLoans", Paper: PaperStats{89269, 3394979, 1259, 111}, hubEdgeProb: 0.55, mixEdgeProb: 0.25, burstiness: 0.2},
		{Code: "YT", FullName: "Youtube", Paper: PaperStats{3223589, 9375374, 203, 88}, hubEdgeProb: 0.50, mixEdgeProb: 0.30, burstiness: 0.2},
	}
}

// ReplicaByCode looks a replica up by its two-letter code.
func ReplicaByCode(code string) (Replica, error) {
	for _, r := range Replicas() {
		if r.Code == code {
			return r, nil
		}
	}
	return Replica{}, fmt.Errorf("gen: unknown dataset code %q", code)
}

// Config derives a generator configuration scaled so the replica has about
// targetEdges edges (capped at the paper's size). Vertex count and the
// number of distinct timestamps shrink proportionally, preserving the
// dataset's edges-per-timestamp density, which drives the relative
// behaviour of the algorithms.
func (r Replica) Config(targetEdges int, seed int64) Config {
	f := float64(targetEdges) / float64(r.Paper.Edges)
	if f > 1 {
		f = 1
	}
	edges := int(math.Round(float64(r.Paper.Edges) * f))
	verts := int(math.Round(float64(r.Paper.Vertices) * f))
	if verts < 40 {
		verts = 40
	}
	if verts > edges+1 {
		verts = edges + 1
	}
	// Timestamps scale proportionally, with a floor so that percentage
	// ranges keep useful resolution on few-timestamp datasets (a PL-like
	// replica must still distinguish a 5% from a 40% range).
	ts := int(math.Round(float64(r.Paper.Timestamps) * f))
	if lb := min(r.Paper.Timestamps, 64); ts < lb {
		ts = lb
	}
	// kmax shrinks slowly with subsampling; aim for paper kmax scaled with
	// a soft exponent and size the hub set accordingly.
	kTarget := float64(r.Paper.KMax) * math.Pow(f, 0.25)
	if kTarget < 5 {
		kTarget = 5
	}
	hubs := int(kTarget * 1.6)
	if hubs < 8 {
		hubs = 8
	}
	if hubs > verts/2 {
		hubs = verts / 2
	}
	return Config{
		Name:        r.Code,
		Seed:        seed,
		Vertices:    verts,
		Edges:       edges,
		Timestamps:  ts,
		HubCount:    hubs,
		HubEdgeProb: r.hubEdgeProb,
		MixEdgeProb: r.mixEdgeProb,
		Burstiness:  r.burstiness,
		Communities: 1 + verts/200,
	}
}

// Generate synthesises the scaled replica.
func (r Replica) Generate(targetEdges int, seed int64) (*tgraph.Graph, error) {
	return Generate(r.Config(targetEdges, seed))
}
