package enum_test

import (
	"testing"

	"temporalkcore/internal/enum"
	"temporalkcore/internal/gen"
	"temporalkcore/internal/kcore"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

func benchSetup(b *testing.B, code string, edges int) (*tgraph.Graph, *vct.ECS) {
	b.Helper()
	rep, err := gen.ReplicaByCode(code)
	if err != nil {
		b.Fatal(err)
	}
	g, err := rep.Generate(edges, 1)
	if err != nil {
		b.Fatal(err)
	}
	kmax := kcore.KMax(g)
	k := kmax * 30 / 100
	if k < 2 {
		k = 2
	}
	_, ecs, err := vct.Build(g, k, g.FullWindow())
	if err != nil {
		b.Fatal(err)
	}
	return g, ecs
}

// BenchmarkEnumerate measures the optimal enumeration phase in isolation;
// ns/op divided by R-edges approximates the per-result-edge constant, the
// paper's O(|R|) claim.
func BenchmarkEnumerate(b *testing.B) {
	for _, code := range []string{"CM", "PL"} {
		b.Run(code, func(b *testing.B) {
			g, ecs := benchSetup(b, code, 5000)
			b.ReportAllocs()
			b.ResetTimer()
			var sink enum.CountSink
			for i := 0; i < b.N; i++ {
				sink = enum.CountSink{}
				enum.Enumerate(g, ecs, &sink)
			}
			b.ReportMetric(float64(sink.EdgeTotal), "R-edges")
			if sink.EdgeTotal > 0 {
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(sink.EdgeTotal), "ns/R-edge")
			}
		})
	}
}

// BenchmarkEnumerateBase measures the straightforward method on the same
// input for a direct Algorithm 3 vs Algorithm 5 comparison.
func BenchmarkEnumerateBase(b *testing.B) {
	for _, code := range []string{"CM", "PL"} {
		b.Run(code, func(b *testing.B) {
			g, ecs := benchSetup(b, code, 5000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var sink enum.CountSink
				enum.EnumerateBase(g, ecs, &sink, enum.BaseOptions{HashOnlyDedup: true})
			}
		})
	}
}
