package enum

import (
	"sync"

	"temporalkcore/internal/ds"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// node is one minimal core window in the per-start-time order L_ts. Nodes
// live in a flat arena and link to each other by index; -1 terminates.
type node struct {
	start, end tgraph.TS
	active     tgraph.TS
	eid        tgraph.EID
	prev, next int32
}

const nilNode = int32(-1)

// Scratch holds the node arena, the flat activation/start buckets and the
// edge buffer of Enumerate so repeated enumerations — batch workloads,
// PreparedQuery reuse — allocate nothing once warm. The zero value is ready
// to use; a Scratch must not be shared by concurrent enumerations.
type Scratch struct {
	nodes []node

	cnt          []int32 // counting-sort scratch, len tlen+1
	byEnd        []int32 // node indices ascending by window end
	baOff, baIdx []int32 // bucket Ba: windows activating at t, ascending end
	bsOff, bsIdx []int32 // bucket Bs: windows starting at t
	cur          []int32 // bucket-fill cursors

	edgeBuf []tgraph.EID
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch takes a Scratch from the shared pool.
//
// tkc:pool-get
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns a Scratch to the shared pool; the caller must not use
// it afterwards.
//
// tkc:pool-put
func PutScratch(s *Scratch) { scratchPool.Put(s) }

// Enumerate runs the paper's optimal algorithm (Algorithm 5 with AS-Output,
// Algorithm 4): it emits every distinct temporal k-core of the skyline's
// query range exactly once, identified by its tightest time interval, in
// time bounded by the total result size O(|R|). It returns false when the
// sink stopped the enumeration early. Working state comes from the shared
// scratch pool; EnumerateWith accepts caller-owned state instead.
func Enumerate(g *tgraph.Graph, ecs *vct.ECS, sink Sink) bool {
	s := GetScratch()
	defer PutScratch(s)
	return EnumerateWith(g, ecs, sink, s)
}

// EnumerateWith is Enumerate drawing every buffer from s, so a warm scratch
// makes repeated enumeration allocation-free. Each concurrent enumeration
// needs its own Scratch.
func EnumerateWith(g *tgraph.Graph, ecs *vct.ECS, sink Sink, s *Scratch) bool {
	done, _ := EnumerateStop(g, ecs, sink, s, nil)
	return done
}

// stopStride bounds how many start times the enumeration advances between
// cancellation polls.
const stopStride = 64

// EnumerateStop is EnumerateWith with a cancellation hook: stop (when
// non-nil) is polled every stopStride start times of the outer sweep.
// done is false when the sink stopped the enumeration early or stop fired;
// cancelled reports which of the two it was.
//
// tkc:cancellable
func EnumerateStop(g *tgraph.Graph, ecs *vct.ECS, sink Sink, s *Scratch, stop func() bool) (done, cancelled bool) {
	return EnumerateRangeStop(g, ecs, sink, s, ecs.Range.End, stop)
}

// EnumerateRangeStop is EnumerateStop bounded to cores whose tightest start
// is at most lastStart: the outer sweep ends after lastStart instead of the
// skyline range end, so a caller that only wants a prefix of the start axis
// — a time-range shard emitting its slice of a scatter-gather query — pays
// nothing for the starts beyond it. Cores are emitted in the same canonical
// order Enumerate uses; lastStart at or beyond ecs.Range.End is the full
// enumeration.
//
// tkc:cancellable
func EnumerateRangeStop(g *tgraph.Graph, ecs *vct.ECS, sink Sink, s *Scratch, lastStart tgraph.TS, stop func() bool) (done, cancelled bool) {
	w := ecs.Range
	tlen := int(w.End-w.Start) + 1
	// The buckets below are sized for the full skyline range — window ends
	// past lastStart still index them — so only the outer sweep is bounded.
	sweep := tlen
	if lastStart < w.End {
		if lastStart < w.Start {
			return true, false
		}
		sweep = int(lastStart-w.Start) + 1
	}
	lo, hi := ecs.EdgeRange()

	// Materialise window nodes with their active times (Definition 6:
	// the first window of an edge activates at Ts, each later window one
	// step after the preceding window's start).
	nodes := s.nodes[:0]
	for e := lo; e < hi; e++ {
		wins := ecs.Windows(e)
		for i, win := range wins {
			act := w.Start
			if i > 0 {
				act = wins[i-1].Start + 1
			}
			nodes = append(nodes, node{start: win.Start, end: win.End, active: act, eid: e})
		}
	}
	nn := len(nodes)

	// Order nodes by ascending end with a counting sort, then bucket them:
	// Ba[t] holds the windows activating at t in ascending end order (so
	// the merge insertion below is a single forward scan); Bs[t] holds the
	// windows starting at t (deleted when ts passes t). All buckets are
	// flat off/idx pairs carved out of the scratch — no per-t slices.
	cnt := ds.GrowZero(s.cnt, tlen+1)
	for i := range nodes {
		cnt[int(nodes[i].end-w.Start)+1]++
	}
	for t := 0; t < tlen; t++ {
		cnt[t+1] += cnt[t]
	}
	byEnd := ds.Grow(s.byEnd, nn)
	for i := range nodes {
		p := int(nodes[i].end - w.Start)
		byEnd[cnt[p]] = int32(i)
		cnt[p]++
	}

	baOff := ds.GrowZero(s.baOff, tlen+1)
	bsOff := ds.GrowZero(s.bsOff, tlen+1)
	for i := range nodes {
		baOff[int(nodes[i].active-w.Start)+1]++
		bsOff[int(nodes[i].start-w.Start)+1]++
	}
	for t := 0; t < tlen; t++ {
		baOff[t+1] += baOff[t]
		bsOff[t+1] += bsOff[t]
	}
	baIdx := ds.Grow(s.baIdx, nn)
	bsIdx := ds.Grow(s.bsIdx, nn)
	cur := ds.Grow(s.cur, tlen)
	copy(cur, baOff[:tlen])
	for _, ni := range byEnd { // byEnd order keeps each Ba bucket end-sorted
		a := int(nodes[ni].active - w.Start)
		baIdx[cur[a]] = ni
		cur[a]++
	}
	copy(cur, bsOff[:tlen])
	for i := range nodes {
		st := int(nodes[i].start - w.Start)
		bsIdx[cur[st]] = int32(i)
		cur[st]++
	}

	// Doubly linked list with a dummy head stored as head/first pointers.
	head := int32(nn)
	nodes = append(nodes, node{next: nilNode, prev: nilNode})

	// Persist grown buffers so the next run reuses them.
	s.nodes, s.cnt, s.byEnd = nodes, cnt, byEnd
	s.baOff, s.baIdx, s.bsOff, s.bsIdx, s.cur = baOff, baIdx, bsOff, bsIdx, cur

	edgeBuf := s.edgeBuf[:0]
	defer func() { s.edgeBuf = edgeBuf }()

	for off := 0; off < sweep; off++ {
		if stop != nil && off&(stopStride-1) == 0 && stop() {
			return false, true
		}
		t := w.Start + tgraph.TS(off)

		// Remove windows whose start time has passed (lines 14-16).
		if off > 0 {
			for _, ni := range bsIdx[bsOff[off-1]:bsOff[off]] {
				p, nx := nodes[ni].prev, nodes[ni].next
				nodes[p].next = nx
				if nx != nilNode {
					nodes[nx].prev = p
				}
			}
		}

		// Insert newly active windows with a single merge scan (lines
		// 17-22); the Ba bucket ascends by (end, eid) — equal ends within a
		// bucket are distinct edges in node-index order — so h never moves
		// backwards. Breaking end ties by eid keeps the whole list in
		// canonical (end, eid) order: the emitted edge order then depends
		// only on the skyline content, not on activation history, which is
		// what lets a restricted-range enumeration (a shard's slice of a
		// scatter-gather query) byte-match the full-window one.
		h := head
		for _, ni := range baIdx[baOff[off]:baOff[off+1]] {
			for nx := nodes[h].next; nx != nilNode &&
				(nodes[nx].end < nodes[ni].end ||
					(nodes[nx].end == nodes[ni].end && nodes[nx].eid < nodes[ni].eid)); nx = nodes[h].next {
				h = nx
			}
			nx := nodes[h].next
			nodes[ni].prev = h
			nodes[ni].next = nx
			nodes[h].next = ni
			if nx != nilNode {
				nodes[nx].prev = ni
			}
			h = ni
		}

		// No minimal core window starts at t: no temporal k-core has this
		// start time (Lemma 4).
		if bsOff[off] == bsOff[off+1] {
			continue
		}

		// AS-Output (Algorithm 4): walk L_t in ascending end order,
		// accumulating edges; once a window starting exactly at t has been
		// seen (Lemma 6) every equal-end run boundary is the TTI end of a
		// distinct temporal k-core.
		edgeBuf = edgeBuf[:0]
		valid := false
		for cur := nodes[head].next; cur != nilNode; {
			n := &nodes[cur]
			edgeBuf = append(edgeBuf, n.eid)
			if n.start == t {
				valid = true
			}
			nx := n.next
			if valid && (nx == nilNode || nodes[nx].end != n.end) {
				if !sink.Emit(tgraph.Window{Start: t, End: n.end}, edgeBuf) {
					return false, false
				}
			}
			cur = nx
		}
	}
	return true, false
}
