package enum

import (
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// node is one minimal core window in the per-start-time order L_ts. Nodes
// live in a flat arena and link to each other by index; -1 terminates.
type node struct {
	start, end tgraph.TS
	active     tgraph.TS
	eid        tgraph.EID
	prev, next int32
}

const nilNode = int32(-1)

// Enumerate runs the paper's optimal algorithm (Algorithm 5 with AS-Output,
// Algorithm 4): it emits every distinct temporal k-core of the skyline's
// query range exactly once, identified by its tightest time interval, in
// time bounded by the total result size O(|R|). It returns false when the
// sink stopped the enumeration early.
func Enumerate(g *tgraph.Graph, ecs *vct.ECS, sink Sink) bool {
	w := ecs.Range
	tlen := int(w.End-w.Start) + 1
	lo, hi := ecs.EdgeRange()

	// Materialise window nodes with their active times (Definition 6:
	// the first window of an edge activates at Ts, each later window one
	// step after the preceding window's start).
	nodes := make([]node, 0, ecs.Size())
	for e := lo; e < hi; e++ {
		wins := ecs.Windows(e)
		for i, win := range wins {
			act := w.Start
			if i > 0 {
				act = wins[i-1].Start + 1
			}
			nodes = append(nodes, node{start: win.Start, end: win.End, active: act, eid: e})
		}
	}

	// Bucket nodes: Ba[t] holds the windows activating at t in ascending
	// end order (so the merge insertion below is a single forward scan);
	// Bs[t] holds the windows starting at t (deleted when ts passes t).
	// Ascending-end order is obtained with a counting sort by end.
	endCnt := make([]int32, tlen+1)
	for i := range nodes {
		endCnt[nodes[i].end-w.Start+1]++
	}
	for t := 0; t < tlen; t++ {
		endCnt[t+1] += endCnt[t]
	}
	byEnd := make([]int32, len(nodes))
	for i := range nodes {
		pos := nodes[i].end - w.Start
		byEnd[endCnt[pos]] = int32(i)
		endCnt[pos]++
	}

	ba := make([][]int32, tlen)
	bs := make([][]int32, tlen)
	for _, ni := range byEnd {
		a := nodes[ni].active - w.Start
		ba[a] = append(ba[a], ni)
	}
	for i := range nodes {
		s := nodes[i].start - w.Start
		bs[s] = append(bs[s], int32(i))
	}

	// Doubly linked list with a dummy head stored as head/first pointers.
	head := int32(len(nodes))
	nodes = append(nodes, node{next: nilNode, prev: nilNode})

	edgeBuf := make([]tgraph.EID, 0, 1024)

	for off := 0; off < tlen; off++ {
		t := w.Start + tgraph.TS(off)

		// Remove windows whose start time has passed (lines 14-16).
		if off > 0 {
			for _, ni := range bs[off-1] {
				p, nx := nodes[ni].prev, nodes[ni].next
				nodes[p].next = nx
				if nx != nilNode {
					nodes[nx].prev = p
				}
			}
		}

		// Insert newly active windows with a single merge scan (lines
		// 17-22); ba[off] ascends by end, so h never moves backwards.
		h := head
		for _, ni := range ba[off] {
			for nodes[h].next != nilNode && nodes[nodes[h].next].end < nodes[ni].end {
				h = nodes[h].next
			}
			nx := nodes[h].next
			nodes[ni].prev = h
			nodes[ni].next = nx
			nodes[h].next = ni
			if nx != nilNode {
				nodes[nx].prev = ni
			}
			h = ni
		}

		// No minimal core window starts at t: no temporal k-core has this
		// start time (Lemma 4).
		if len(bs[off]) == 0 {
			continue
		}

		// AS-Output (Algorithm 4): walk L_t in ascending end order,
		// accumulating edges; once a window starting exactly at t has been
		// seen (Lemma 6) every equal-end run boundary is the TTI end of a
		// distinct temporal k-core.
		edgeBuf = edgeBuf[:0]
		valid := false
		for cur := nodes[head].next; cur != nilNode; {
			n := &nodes[cur]
			edgeBuf = append(edgeBuf, n.eid)
			if n.start == t {
				valid = true
			}
			nx := n.next
			if valid && (nx == nilNode || nodes[nx].end != n.end) {
				if !sink.Emit(tgraph.Window{Start: t, End: n.end}, edgeBuf) {
					return false
				}
			}
			cur = nx
		}
	}
	return true
}
