package enum_test

import (
	"math/rand"
	"reflect"
	"testing"

	"temporalkcore/internal/enum"
	"temporalkcore/internal/paperex"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// TestEnumerateWithReuse drives one enum.Scratch through skylines of many
// shapes — different k, shrinking and growing windows — and checks each
// enumeration against a fresh run. Stale bucket or arena state from an
// earlier, larger enumeration must never leak into a later one.
func TestEnumerateWithReuse(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	g := paperex.Graph()
	s := &enum.Scratch{}
	tmax := int(g.TMax())
	for trial := 0; trial < 150; trial++ {
		k := 1 + r.Intn(4)
		a := 1 + r.Intn(tmax)
		b := 1 + r.Intn(tmax)
		if a > b {
			a, b = b, a
		}
		w := tgraph.Window{Start: tgraph.TS(a), End: tgraph.TS(b)}
		_, ecs, err := vct.Build(g, k, w)
		if err != nil {
			t.Fatalf("vct.Build(k=%d, %v): %v", k, w, err)
		}
		var got, want enum.CollectSink
		if !enum.EnumerateWith(g, ecs, &got, s) {
			t.Fatal("EnumerateWith stopped early")
		}
		if !enum.Enumerate(g, ecs, &want) {
			t.Fatal("Enumerate stopped early")
		}
		enum.SortCores(got.Cores)
		enum.SortCores(want.Cores)
		if !reflect.DeepEqual(got.Cores, want.Cores) {
			t.Fatalf("k=%d %v: scratch reuse diverged (%d vs %d cores)", k, w, len(got.Cores), len(want.Cores))
		}
	}
}

// TestEnumerateWithEarlyStop checks that a sink stopping the enumeration
// leaves the scratch reusable.
func TestEnumerateWithEarlyStop(t *testing.T) {
	g := paperex.Graph()
	_, ecs, err := vct.Build(g, paperex.K, g.FullWindow())
	if err != nil {
		t.Fatal(err)
	}
	s := &enum.Scratch{}
	var all enum.CollectSink
	enum.EnumerateWith(g, ecs, &all, s)
	lim := enum.LimitSink{Inner: &enum.CountSink{}, Max: 1}
	if enum.EnumerateWith(g, ecs, &lim, s) {
		t.Fatal("limited enumeration was not stopped")
	}
	var again enum.CollectSink
	if !enum.EnumerateWith(g, ecs, &again, s) {
		t.Fatal("re-enumeration stopped early")
	}
	enum.SortCores(all.Cores)
	enum.SortCores(again.Cores)
	if !reflect.DeepEqual(all.Cores, again.Cores) {
		t.Fatal("scratch poisoned by early-stopped enumeration")
	}
}
