package enum_test

import (
	"math/rand"
	"testing"

	"temporalkcore/internal/enum"
	"temporalkcore/internal/otcd"
	"temporalkcore/internal/tgraph"
)

// multiGraph builds a random temporal graph keeping duplicate observations
// as distinct temporal edges, stressing the general multi-edge regime the
// paper leaves as a remark ("easily extended").
func multiGraph(r *rand.Rand, n, m, tmax int) *tgraph.Graph {
	b := tgraph.Builder{KeepDuplicates: true}
	for i := 0; i < m; i++ {
		// Deliberately small vertex pool: many parallel pair interactions.
		u := r.Intn(n)
		v := r.Intn(n)
		for v == u {
			v = r.Intn(n)
		}
		b.Add(int64(u), int64(v), int64(1+r.Intn(tmax)))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// TestMultiEdgeAllAlgorithmsAgree fuzzes the multi-edge regime across the
// oracle and all three algorithms.
func TestMultiEdgeAllAlgorithmsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(1234))
	iters := 60
	if testing.Short() {
		iters = 15
	}
	for it := 0; it < iters; it++ {
		n := 3 + r.Intn(6) // small pools force parallel edges
		m := 10 + r.Intn(50)
		tmax := 2 + r.Intn(8)
		g := multiGraph(r, n, m, tmax)
		k := 1 + r.Intn(3)
		w := g.FullWindow()

		want := enum.BruteForce(g, k, w)
		got := runEnum(t, g, k, w)
		if !enum.EqualCoreSets(got, want) {
			t.Fatalf("iter %d: Enum mismatch on multigraph (n=%d m=%d k=%d)\n got %+v\nwant %+v",
				it, n, m, k, got, want)
		}
		gotBase := runBase(t, g, k, w, false)
		if !enum.EqualCoreSets(gotBase, want) {
			t.Fatalf("iter %d: EnumBase mismatch on multigraph", it)
		}
		var sink enum.CollectSink
		otcd.Enumerate(g, k, w, &sink, otcd.Options{})
		enum.SortCores(sink.Cores)
		if !enum.EqualCoreSets(sink.Cores, want) {
			t.Fatalf("iter %d: OTCD mismatch on multigraph\n got %+v\nwant %+v", it, sink.Cores, want)
		}
	}
}

// TestParallelEdgesInOneCore: two parallel temporal edges inside the same
// window both belong to the core's edge set.
func TestParallelEdgesInOneCore(t *testing.T) {
	b := tgraph.Builder{KeepDuplicates: true}
	// Triangle at t=1..2 with a doubled edge 1-2.
	b.Add(1, 2, 1)
	b.Add(1, 2, 2)
	b.Add(2, 3, 1)
	b.Add(1, 3, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cores := runEnum(t, g, 2, g.FullWindow())
	if len(cores) != 1 {
		t.Fatalf("got %d cores: %+v", len(cores), cores)
	}
	if len(cores[0].Edges) != 4 {
		t.Errorf("core has %d edges, want all 4 (parallel edges included)", len(cores[0].Edges))
	}
	if cores[0].TTI != (tgraph.Window{Start: 1, End: 2}) {
		t.Errorf("TTI = %v", cores[0].TTI)
	}
}
