package enum_test

import (
	"math/rand"
	"testing"

	"temporalkcore/internal/enum"
	"temporalkcore/internal/kcore"
	"temporalkcore/internal/paperex"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

func runEnum(t *testing.T, g *tgraph.Graph, k int, w tgraph.Window) []enum.Core {
	t.Helper()
	_, ecs, err := vct.Build(g, k, w)
	if err != nil {
		t.Fatalf("vct.Build: %v", err)
	}
	var sink enum.CollectSink
	if !enum.Enumerate(g, ecs, &sink) {
		t.Fatal("Enumerate stopped early")
	}
	enum.SortCores(sink.Cores)
	return sink.Cores
}

func runBase(t *testing.T, g *tgraph.Graph, k int, w tgraph.Window, hashOnly bool) []enum.Core {
	t.Helper()
	_, ecs, err := vct.Build(g, k, w)
	if err != nil {
		t.Fatalf("vct.Build: %v", err)
	}
	var sink enum.CollectSink
	if !enum.EnumerateBase(g, ecs, &sink, enum.BaseOptions{HashOnlyDedup: hashOnly}) {
		t.Fatal("EnumerateBase stopped early")
	}
	enum.SortCores(sink.Cores)
	return sink.Cores
}

// TestPaperFigure2 reproduces Figure 2: exactly two temporal 2-cores for
// the query range [1,4], with the published TTIs and edge sets.
func TestPaperFigure2(t *testing.T) {
	g := paperex.Graph()
	w := tgraph.Window{Start: 1, End: 4}
	cores := runEnum(t, g, paperex.K, w)
	if len(cores) != len(paperex.Figure2) {
		t.Fatalf("got %d cores, want %d: %+v", len(cores), len(paperex.Figure2), cores)
	}
	for _, want := range paperex.Figure2 {
		found := false
		for _, got := range cores {
			if int64(got.TTI.Start) != want.TTI[0] || int64(got.TTI.End) != want.TTI[1] {
				continue
			}
			found = true
			if len(got.Edges) != len(want.Edges) {
				t.Errorf("TTI %v: %d edges, want %d", want.TTI, len(got.Edges), len(want.Edges))
				break
			}
			wantSet := map[paperex.ECSEdge]bool{}
			for _, e := range want.Edges {
				wantSet[e] = true
			}
			for _, eid := range got.Edges {
				te := g.Edge(eid)
				key := paperex.ECSEdge{U: g.Label(te.U), V: g.Label(te.V), T: g.RawTime(te.T)}
				if key.U > key.V {
					key.U, key.V = key.V, key.U
				}
				if !wantSet[key] {
					t.Errorf("TTI %v: unexpected edge %+v", want.TTI, key)
				}
			}
		}
		if !found {
			t.Errorf("expected core with TTI %v not emitted", want.TTI)
		}
	}
}

// TestPaperExample9StartTimes checks the enumeration of the full range
// against per-start-time expectations derived in Examples 8 and 9: the
// cores anchored at ts=1 have TTIs [1,4],[1,5],[1,6],[1,7] with sizes
// 6,11,12,14.
func TestPaperExample9StartTimes(t *testing.T) {
	g := paperex.Graph()
	cores := runEnum(t, g, paperex.K, g.FullWindow())
	var ts1 []enum.Core
	for _, c := range cores {
		if c.TTI.Start == 1 {
			ts1 = append(ts1, c)
		}
	}
	wantEnds := []tgraph.TS{4, 5, 6, 7}
	wantSizes := []int{6, 11, 12, 14}
	if len(ts1) != len(wantEnds) {
		t.Fatalf("ts=1 cores: got %d, want %d (%+v)", len(ts1), len(wantEnds), ts1)
	}
	for i, c := range ts1 {
		if c.TTI.End != wantEnds[i] || len(c.Edges) != wantSizes[i] {
			t.Errorf("ts=1 core %d: TTI end %d size %d, want end %d size %d",
				i, c.TTI.End, len(c.Edges), wantEnds[i], wantSizes[i])
		}
	}
}

// TestAgainstBruteForcePaper compares all three skyline-driven paths with
// the peeling oracle on the paper graph over every sub-range and k.
func TestAgainstBruteForcePaper(t *testing.T) {
	g := paperex.Graph()
	for k := 1; k <= 3; k++ {
		for ts := tgraph.TS(1); ts <= g.TMax(); ts++ {
			for te := ts; te <= g.TMax(); te++ {
				w := tgraph.Window{Start: ts, End: te}
				want := enum.BruteForce(g, k, w)
				got := runEnum(t, g, k, w)
				if !enum.EqualCoreSets(got, want) {
					t.Fatalf("k=%d w=[%d,%d]: Enum mismatch\n got %+v\nwant %+v", k, ts, te, got, want)
				}
				gotBase := runBase(t, g, k, w, false)
				if !enum.EqualCoreSets(gotBase, want) {
					t.Fatalf("k=%d w=[%d,%d]: EnumBase mismatch\n got %+v\nwant %+v", k, ts, te, gotBase, want)
				}
			}
		}
	}
}

// randomGraph generates a small random temporal multigraph.
func randomGraph(r *rand.Rand, n, m, tmax int) *tgraph.Graph {
	var b tgraph.Builder
	b.KeepDuplicates = false
	for i := 0; i < m; i++ {
		u := r.Intn(n)
		v := r.Intn(n)
		for v == u {
			v = r.Intn(n)
		}
		b.Add(int64(u), int64(v), int64(1+r.Intn(tmax)))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// TestAgainstBruteForceRandom fuzzes all algorithms against the oracle on
// random small graphs with varying density, k, and query ranges.
func TestAgainstBruteForceRandom(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	iters := 120
	if testing.Short() {
		iters = 25
	}
	for it := 0; it < iters; it++ {
		n := 4 + r.Intn(10)
		m := 5 + r.Intn(40)
		tmax := 2 + r.Intn(10)
		g := randomGraph(r, n, m, tmax)
		k := 1 + r.Intn(4)
		ts := tgraph.TS(1 + r.Intn(int(g.TMax())))
		te := ts + tgraph.TS(r.Intn(int(g.TMax()-ts)+1))
		w := tgraph.Window{Start: ts, End: te}

		want := enum.BruteForce(g, k, w)
		got := runEnum(t, g, k, w)
		if !enum.EqualCoreSets(got, want) {
			t.Fatalf("iter %d (n=%d m=%d tmax=%d k=%d w=[%d,%d]): Enum mismatch\n got %+v\nwant %+v",
				it, n, m, tmax, k, ts, te, got, want)
		}
		gotBase := runBase(t, g, k, w, it%2 == 0)
		if !enum.EqualCoreSets(gotBase, want) {
			t.Fatalf("iter %d: EnumBase mismatch\n got %+v\nwant %+v", it, gotBase, want)
		}
	}
}

// TestEmitInvariants checks structural invariants of every emitted core on
// random graphs: min degree >= k inside the core, the TTI is exactly the
// min/max edge time, and the window of every core edge per Lemma 3.
func TestEmitInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for it := 0; it < 40; it++ {
		g := randomGraph(r, 5+r.Intn(8), 10+r.Intn(50), 2+r.Intn(12))
		k := 1 + r.Intn(3)
		w := g.FullWindow()
		cores := runEnum(t, g, k, w)
		p := kcore.NewPeeler(g)
		seen := map[tgraph.Window]bool{}
		for _, c := range cores {
			// TTIs are unique across results.
			if seen[c.TTI] {
				t.Fatalf("iter %d: duplicate TTI %v", it, c.TTI)
			}
			seen[c.TTI] = true
			// TTI tightness.
			minT, maxT := tgraph.InfTime, tgraph.TS(0)
			deg := map[tgraph.VID]map[tgraph.VID]bool{}
			for _, e := range c.Edges {
				te := g.Edge(e)
				if te.T < minT {
					minT = te.T
				}
				if te.T > maxT {
					maxT = te.T
				}
				if deg[te.U] == nil {
					deg[te.U] = map[tgraph.VID]bool{}
				}
				if deg[te.V] == nil {
					deg[te.V] = map[tgraph.VID]bool{}
				}
				deg[te.U][te.V] = true
				deg[te.V][te.U] = true
			}
			if minT != c.TTI.Start || maxT != c.TTI.End {
				t.Fatalf("iter %d: TTI %v but edge span [%d,%d]", it, c.TTI, minT, maxT)
			}
			// Min degree >= k.
			for v, nbrs := range deg {
				if len(nbrs) < k {
					t.Fatalf("iter %d: vertex %d has %d distinct nbrs < k=%d in core %v", it, v, len(nbrs), k, c.TTI)
				}
			}
			// Maximality: the emitted edge set equals the k-core of its TTI.
			oracle := p.CoreEdgesOfWindow(k, c.TTI, nil)
			if len(oracle) != len(c.Edges) {
				t.Fatalf("iter %d: core of %v has %d edges, emitted %d", it, c.TTI, len(oracle), len(c.Edges))
			}
		}
	}
}

// TestLimitSink checks early termination propagates.
func TestLimitSink(t *testing.T) {
	g := paperex.Graph()
	_, ecs, err := vct.Build(g, 2, g.FullWindow())
	if err != nil {
		t.Fatal(err)
	}
	var inner enum.CollectSink
	sink := &enum.LimitSink{Inner: &inner, Max: 2}
	if enum.Enumerate(g, ecs, sink) {
		t.Error("Enumerate should report early stop")
	}
	if len(inner.Cores) != 2 {
		t.Errorf("collected %d cores, want 2", len(inner.Cores))
	}
}

// TestVertexSetSink checks the future-work vertex-set projection.
func TestVertexSetSink(t *testing.T) {
	g := paperex.Graph()
	_, ecs, err := vct.Build(g, 2, tgraph.Window{Start: 1, End: 4})
	if err != nil {
		t.Fatal(err)
	}
	sink := enum.NewVertexSetSink(g)
	enum.Enumerate(g, ecs, sink)
	if len(sink.Sets) != 2 {
		t.Fatalf("got %d vertex sets, want 2: %v", len(sink.Sets), sink.Sets)
	}
}

// TestCountSinkMatchesCollect cross-checks |R| accounting.
func TestCountSinkMatchesCollect(t *testing.T) {
	g := paperex.Graph()
	_, ecs, err := vct.Build(g, 2, g.FullWindow())
	if err != nil {
		t.Fatal(err)
	}
	var count enum.CountSink
	var collect enum.CollectSink
	enum.Enumerate(g, ecs, &count)
	enum.Enumerate(g, ecs, &collect)
	var edges int64
	for _, c := range collect.Cores {
		edges += int64(len(c.Edges))
	}
	if count.Cores != int64(len(collect.Cores)) || count.EdgeTotal != edges {
		t.Errorf("count (%d cores, %d edges) != collect (%d cores, %d edges)",
			count.Cores, count.EdgeTotal, len(collect.Cores), edges)
	}
}
