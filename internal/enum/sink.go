// Package enum enumerates all distinct temporal k-cores of a query time
// range from the edge core window skyline, implementing the paper's
// EnumBase (Algorithm 3) and the optimal Enum / AS-Output pair
// (Algorithms 4 and 5, Sections V-B and V-C). The optimal enumerator keeps
// its node arena and flat time buckets in a pooled Scratch, so repeated
// enumerations allocate nothing once warm.
package enum

import (
	"sort"

	"temporalkcore/internal/tgraph"
)

// Sink consumes enumerated temporal k-cores. Emit is called exactly once
// per distinct temporal k-core with the core's tightest time interval and
// its temporal edges. The eids slice is reused between calls: retain a copy,
// never the slice itself. Returning false stops the enumeration early.
type Sink interface {
	Emit(tti tgraph.Window, eids []tgraph.EID) bool
}

// CountSink counts results without retaining them. The paper's |R| is
// EdgeTotal: the summed number of edges over all resulting cores.
type CountSink struct {
	Cores     int64
	EdgeTotal int64
}

// Emit implements Sink.
func (s *CountSink) Emit(_ tgraph.Window, eids []tgraph.EID) bool {
	s.Cores++
	s.EdgeTotal += int64(len(eids))
	return true
}

// Core is one materialised temporal k-core.
type Core struct {
	TTI   tgraph.Window
	Edges []tgraph.EID // ascending edge ids (and therefore ascending time)
}

// CollectSink materialises every result.
type CollectSink struct {
	Cores []Core
}

// Emit implements Sink.
func (s *CollectSink) Emit(tti tgraph.Window, eids []tgraph.EID) bool {
	cp := make([]tgraph.EID, len(eids))
	copy(cp, eids)
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	s.Cores = append(s.Cores, Core{TTI: tti, Edges: cp})
	return true
}

// LimitSink forwards to Inner until Max cores have been emitted.
type LimitSink struct {
	Inner Sink
	Max   int64
	seen  int64
}

// Emit implements Sink.
func (s *LimitSink) Emit(tti tgraph.Window, eids []tgraph.EID) bool {
	if s.seen >= s.Max {
		return false
	}
	s.seen++
	if !s.Inner.Emit(tti, eids) {
		return false
	}
	return s.seen < s.Max
}

// VertexSetSink collects the distinct vertex sets of the enumerated cores,
// the compact representation the paper's future-work section motivates.
// Vertex sets of different cores often coincide; they are deduplicated.
type VertexSetSink struct {
	g    *tgraph.Graph
	Sets [][]tgraph.VID
	seen map[string]struct{}
	buf  []tgraph.VID
	mark []bool
}

// NewVertexSetSink returns a VertexSetSink for g.
func NewVertexSetSink(g *tgraph.Graph) *VertexSetSink {
	return &VertexSetSink{g: g, seen: make(map[string]struct{}), mark: make([]bool, g.NumVertices())}
}

// Emit implements Sink.
func (s *VertexSetSink) Emit(_ tgraph.Window, eids []tgraph.EID) bool {
	s.buf = s.buf[:0]
	for _, e := range eids {
		te := s.g.Edge(e)
		for _, v := range [2]tgraph.VID{te.U, te.V} {
			if !s.mark[v] {
				s.mark[v] = true
				s.buf = append(s.buf, v)
			}
		}
	}
	for _, v := range s.buf {
		s.mark[v] = false
	}
	sort.Slice(s.buf, func(i, j int) bool { return s.buf[i] < s.buf[j] })
	key := make([]byte, 0, len(s.buf)*4)
	for _, v := range s.buf {
		key = append(key, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	if _, ok := s.seen[string(key)]; ok {
		return true
	}
	s.seen[string(key)] = struct{}{}
	cp := make([]tgraph.VID, len(s.buf))
	copy(cp, s.buf)
	s.Sets = append(s.Sets, cp)
	return true
}
