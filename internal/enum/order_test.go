package enum_test

import (
	"math/rand"
	"testing"

	"temporalkcore/internal/enum"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// TestEnumerateDeterministic: two runs over the same skyline produce the
// same results in the same order.
func TestEnumerateDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(404))
	g := randomGraph(r, 10, 60, 10)
	_, ecs, err := vct.Build(g, 2, g.FullWindow())
	if err != nil {
		t.Fatal(err)
	}
	var a, b enum.CollectSink
	enum.Enumerate(g, ecs, &a)
	enum.Enumerate(g, ecs, &b)
	if len(a.Cores) != len(b.Cores) {
		t.Fatalf("runs differ in count: %d vs %d", len(a.Cores), len(b.Cores))
	}
	for i := range a.Cores {
		if a.Cores[i].TTI != b.Cores[i].TTI {
			t.Fatalf("runs differ in order at %d", i)
		}
	}
}

// TestEnumerateEmissionOrder: Algorithm 5 anchors start times in ascending
// order and AS-Output walks ends ascending, so within one start time the
// emitted TTIs have strictly ascending ends.
func TestEnumerateEmissionOrder(t *testing.T) {
	r := rand.New(rand.NewSource(405))
	for it := 0; it < 20; it++ {
		g := randomGraph(r, 8, 50, 8)
		_, ecs, err := vct.Build(g, 2, g.FullWindow())
		if err != nil {
			t.Fatal(err)
		}
		var sink enum.CollectSink
		enum.Enumerate(g, ecs, &sink)
		for i := 1; i < len(sink.Cores); i++ {
			prev, cur := sink.Cores[i-1].TTI, sink.Cores[i].TTI
			if cur.Start < prev.Start {
				t.Fatalf("start times not ascending: %v after %v", cur, prev)
			}
			if cur.Start == prev.Start && cur.End <= prev.End {
				t.Fatalf("ends not strictly ascending within start %d: %v after %v", cur.Start, cur, prev)
			}
		}
	}
}

// TestEmittedEdgesAscending: the edge slice passed to sinks by Enumerate
// accumulates along the end-ordered list; every edge's minimal window must
// fit the emitted TTI (Lemma 3 applied to the output).
func TestEmittedEdgesWindowContainment(t *testing.T) {
	r := rand.New(rand.NewSource(406))
	g := randomGraph(r, 8, 50, 8)
	_, ecs, err := vct.Build(g, 2, g.FullWindow())
	if err != nil {
		t.Fatal(err)
	}
	ok := enum.Enumerate(g, ecs, sinkFunc(func(tti tgraph.Window, eids []tgraph.EID) bool {
		for _, e := range eids {
			found := false
			for _, w := range ecs.Windows(e) {
				if tti.Contains(w) {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("edge %d emitted for TTI %v but no minimal window fits", e, tti)
				return false
			}
		}
		return true
	}))
	if !ok && !t.Failed() {
		t.Error("enumeration stopped unexpectedly")
	}
}

// sinkFunc adapts a function to the Sink interface.
type sinkFunc func(tgraph.Window, []tgraph.EID) bool

func (f sinkFunc) Emit(w tgraph.Window, eids []tgraph.EID) bool { return f(w, eids) }
