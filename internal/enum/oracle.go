package enum

import (
	"sort"

	"temporalkcore/internal/kcore"
	"temporalkcore/internal/tgraph"
)

// BruteForce enumerates all distinct temporal k-cores of [w.Start, w.End]
// by peeling every window from scratch. It is the ground-truth oracle used
// by the test suites and is quadratic in the range length; use only on
// small inputs.
func BruteForce(g *tgraph.Graph, k int, w tgraph.Window) []Core {
	p := kcore.NewPeeler(g)
	seen := make(map[string]struct{})
	var out []Core
	var buf []tgraph.EID
	for ts := w.Start; ts <= w.End; ts++ {
		for te := ts; te <= w.End; te++ {
			buf = p.CoreEdgesOfWindow(k, tgraph.Window{Start: ts, End: te}, buf[:0])
			if len(buf) == 0 {
				continue
			}
			key := edgeSetKey(buf)
			if _, ok := seen[key]; ok {
				continue
			}
			seen[key] = struct{}{}
			cp := make([]tgraph.EID, len(buf))
			copy(cp, buf)
			out = append(out, Core{TTI: ttiOf(g, cp), Edges: cp})
		}
	}
	SortCores(out)
	return out
}

// ttiOf computes the tightest time interval of a non-empty edge set.
func ttiOf(g *tgraph.Graph, eids []tgraph.EID) tgraph.Window {
	minT, maxT := g.Edge(eids[0]).T, g.Edge(eids[0]).T
	for _, e := range eids[1:] {
		t := g.Edge(e).T
		if t < minT {
			minT = t
		}
		if t > maxT {
			maxT = t
		}
	}
	return tgraph.Window{Start: minT, End: maxT}
}

func edgeSetKey(eids []tgraph.EID) string {
	s := make([]tgraph.EID, len(eids))
	copy(s, eids)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	b := make([]byte, 0, len(s)*4)
	for _, e := range s {
		b = append(b, byte(e), byte(e>>8), byte(e>>16), byte(e>>24))
	}
	return string(b)
}

// SortCores orders cores canonically (by TTI, then edge ids) so result sets
// from different algorithms can be compared directly.
func SortCores(cores []Core) {
	sort.Slice(cores, func(i, j int) bool {
		a, b := cores[i], cores[j]
		if a.TTI != b.TTI {
			if a.TTI.Start != b.TTI.Start {
				return a.TTI.Start < b.TTI.Start
			}
			return a.TTI.End < b.TTI.End
		}
		if len(a.Edges) != len(b.Edges) {
			return len(a.Edges) < len(b.Edges)
		}
		for k := range a.Edges {
			if a.Edges[k] != b.Edges[k] {
				return a.Edges[k] < b.Edges[k]
			}
		}
		return false
	})
}

// EqualCoreSets reports whether two canonically sorted core slices are
// identical.
func EqualCoreSets(a, b []Core) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].TTI != b[i].TTI || len(a[i].Edges) != len(b[i].Edges) {
			return false
		}
		for k := range a[i].Edges {
			if a[i].Edges[k] != b[i].Edges[k] {
				return false
			}
		}
	}
	return true
}
