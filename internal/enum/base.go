package enum

import (
	"sort"

	"temporalkcore/internal/ds"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// BaseOptions configures EnumerateBase.
type BaseOptions struct {
	// HashOnlyDedup replaces the exact duplicate check (which stores every
	// distinct core, as the paper's baseline does and as its Figure 12
	// memory numbers reflect) with a 128-bit signature set.
	HashOnlyDedup bool
	// Stop, when non-nil, is polled once per start time; returning true
	// aborts the enumeration (used to impose the experiments' time limit).
	Stop func() bool
}

// EnumerateBase is the straightforward method of Section V-A (Algorithm 3):
// for every start time it buckets each edge's first minimal core window not
// starting earlier by end time, accumulates buckets over ascending end
// times, and deduplicates the resulting cores against everything emitted so
// far. It visits O(tmax^2) windows in the worst case. It returns false when
// the sink stopped the enumeration early.
func EnumerateBase(g *tgraph.Graph, ecs *vct.ECS, sink Sink, opts BaseOptions) bool {
	w := ecs.Range
	tlen := int(w.End-w.Start) + 1
	lo, hi := ecs.EdgeRange()

	ptr := make([]int32, hi-lo) // per edge: first window with start >= ts
	buckets := make([][]tgraph.EID, tlen)
	used := make([]int32, 0, tlen)

	seenSigs := make(map[ds.Sig128]struct{})
	var stored map[ds.Sig128][][]tgraph.EID
	if !opts.HashOnlyDedup {
		stored = make(map[ds.Sig128][][]tgraph.EID)
	}

	c := make([]tgraph.EID, 0, 1024)
	sortedBuf := make([]tgraph.EID, 0, 1024)

	for off := 0; off < tlen; off++ {
		ts := w.Start + tgraph.TS(off)
		if opts.Stop != nil && opts.Stop() {
			return false
		}

		// Fill the buckets (Algorithm 3 lines 3-6).
		used = used[:0]
		anyBucket := false
		for e := lo; e < hi; e++ {
			wins := ecs.Windows(e)
			p := ptr[e-lo]
			for int(p) < len(wins) && wins[p].Start < ts {
				p++
			}
			ptr[e-lo] = p
			if int(p) == len(wins) {
				continue
			}
			bi := wins[p].End - w.Start
			if len(buckets[bi]) == 0 {
				used = append(used, int32(bi))
			}
			buckets[bi] = append(buckets[bi], e)
			anyBucket = true
		}
		if !anyBucket {
			continue
		}

		// Accumulate over ascending end times (lines 7-12). The TTI of the
		// accumulated core is the min/max edge time, maintained on the fly.
		c = c[:0]
		var sig ds.Sig128
		minT, maxT := tgraph.TS(0), tgraph.TS(0)
		for bi := 0; bi < tlen; bi++ {
			b := buckets[bi]
			if len(b) == 0 {
				continue
			}
			for _, e := range b {
				c = append(c, e)
				sig.Toggle(int32(e))
				t := g.Edge(e).T
				if minT == 0 || t < minT {
					minT = t
				}
				if t > maxT {
					maxT = t
				}
			}
			if opts.HashOnlyDedup {
				if _, ok := seenSigs[sig]; ok {
					continue
				}
				seenSigs[sig] = struct{}{}
			} else {
				// Exact duplicate check: store every distinct core, as the
				// paper's baseline does (signatures only narrow the search).
				sortedBuf = append(sortedBuf[:0], c...)
				sort.Slice(sortedBuf, func(i, j int) bool { return sortedBuf[i] < sortedBuf[j] })
				if containsEdgeSet(stored[sig], sortedBuf) {
					continue
				}
				cp := make([]tgraph.EID, len(sortedBuf))
				copy(cp, sortedBuf)
				stored[sig] = append(stored[sig], cp)
			}
			if !sink.Emit(tgraph.Window{Start: minT, End: maxT}, c) {
				return false
			}
		}

		for _, bi := range used {
			buckets[bi] = buckets[bi][:0]
		}
	}
	return true
}

func containsEdgeSet(sets [][]tgraph.EID, s []tgraph.EID) bool {
outer:
	for _, st := range sets {
		if len(st) != len(s) {
			continue
		}
		for i := range st {
			if st[i] != s[i] {
				continue outer
			}
		}
		return true
	}
	return false
}
