package enum_test

import (
	"testing"

	"temporalkcore/internal/enum"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// FuzzEnumerateMatchesOracle decodes the fuzz input as a temporal edge
// list plus a k and verifies Enum against the brute-force oracle. Run the
// seeds with the regular test suite or explore with
// `go test -fuzz FuzzEnumerateMatchesOracle ./internal/enum`.
func FuzzEnumerateMatchesOracle(f *testing.F) {
	f.Add([]byte{1, 2, 1, 2, 3, 1, 1, 3, 2}, byte(2))
	f.Add([]byte{0, 1, 1, 1, 2, 2, 2, 0, 3, 0, 1, 3}, byte(1))
	f.Add([]byte{5, 6, 9, 6, 7, 9, 5, 7, 9, 7, 8, 9}, byte(3))

	f.Fuzz(func(t *testing.T, data []byte, kb byte) {
		if len(data) < 3 || len(data) > 90 {
			return
		}
		var b tgraph.Builder
		b.KeepDuplicates = len(data)%2 == 0
		for i := 0; i+2 < len(data); i += 3 {
			u := int64(data[i] % 12)
			v := int64(data[i+1] % 12)
			ts := int64(data[i+2]%10) + 1
			if u == v {
				continue
			}
			b.Add(u, v, ts)
		}
		g, err := b.Build()
		if err != nil {
			return // all self loops: nothing to test
		}
		k := int(kb%4) + 1
		w := g.FullWindow()
		_, ecs, err := vct.Build(g, k, w)
		if err != nil {
			t.Fatalf("vct.Build: %v", err)
		}
		var sink enum.CollectSink
		if !enum.Enumerate(g, ecs, &sink) {
			t.Fatal("stopped early")
		}
		enum.SortCores(sink.Cores)
		want := enum.BruteForce(g, k, w)
		if !enum.EqualCoreSets(sink.Cores, want) {
			t.Fatalf("Enum disagrees with oracle (k=%d)\n got %+v\nwant %+v", k, sink.Cores, want)
		}
	})
}
