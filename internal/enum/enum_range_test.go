package enum_test

import (
	"math/rand"
	"reflect"
	"testing"

	"temporalkcore/internal/enum"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// rawSink records emissions in exact emission order without sorting, so
// tests can assert the canonical output order byte-for-byte.
type rawSink struct {
	cores []enum.Core
}

func (s *rawSink) Emit(tti tgraph.Window, eids []tgraph.EID) bool {
	cp := make([]tgraph.EID, len(eids))
	copy(cp, eids)
	s.cores = append(s.cores, enum.Core{TTI: tti, Edges: cp})
	return true
}

// TestEnumerateRangeStopPrefix locks the scatter-gather contract: bounding
// the sweep at lastStart emits exactly the full enumeration's prefix of
// cores with tightest start <= lastStart, in identical order with identical
// edge order.
func TestEnumerateRangeStopPrefix(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 20; trial++ {
		g := randomGraph(rng, 14, 120, 12)
		k := 2 + trial%2
		w := tgraph.Window{Start: 1, End: g.TMax()}
		_, ecs, err := vct.Build(g, k, w)
		if err != nil {
			t.Fatalf("vct.Build: %v", err)
		}
		var full rawSink
		if done, _ := enum.EnumerateStop(g, ecs, &full, enum.GetScratch(), nil); !done {
			t.Fatal("full enumeration stopped early")
		}
		for _, last := range []tgraph.TS{w.Start - 1, w.Start, (w.Start + w.End) / 2, w.End, w.End + 5} {
			var got rawSink
			if done, _ := enum.EnumerateRangeStop(g, ecs, &got, enum.GetScratch(), last, nil); !done {
				t.Fatal("range enumeration stopped early")
			}
			var want []enum.Core
			for _, c := range full.cores {
				if c.TTI.Start <= last {
					want = append(want, c)
				}
			}
			if len(got.cores) != len(want) {
				t.Fatalf("lastStart=%d: got %d cores, want %d", last, len(got.cores), len(want))
			}
			for i := range want {
				if !reflect.DeepEqual(got.cores[i], want[i]) {
					t.Fatalf("lastStart=%d core %d: got %+v want %+v", last, i, got.cores[i], want[i])
				}
			}
		}
	}
}

// TestEnumerateCanonicalOrder locks the (end, eid) list order: a core's
// edges are emitted ascending by (window end, edge id), so two
// enumerations that reach the same skyline content through different
// activation histories produce byte-identical output.
func TestEnumerateCanonicalOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		g := randomGraph(rng, 12, 90, 10)
		_, ecs, err := vct.Build(g, 2, tgraph.Window{Start: 1, End: g.TMax()})
		if err != nil {
			t.Fatalf("vct.Build: %v", err)
		}
		var sink rawSink
		if done, _ := enum.EnumerateStop(g, ecs, &sink, enum.GetScratch(), nil); !done {
			t.Fatal("enumeration stopped early")
		}
		// At tightest start t, the active window of an edge is its first
		// skyline window with Start >= t (each edge contributes at most one
		// node to L_t), so that window's end determines the canonical rank.
		activeEnd := func(eid tgraph.EID, at tgraph.TS) tgraph.TS {
			for _, win := range ecs.Windows(eid) {
				if win.Start >= at {
					return win.End
				}
			}
			t.Fatalf("edge %d has no window starting at or after %d", eid, at)
			return 0
		}
		for _, c := range sink.cores {
			prevEnd := tgraph.TS(-1)
			prevEID := tgraph.EID(0)
			for i, eid := range c.Edges {
				end := activeEnd(eid, c.TTI.Start)
				if i > 0 && (end < prevEnd || (end == prevEnd && eid <= prevEID)) {
					t.Fatalf("core %v: edges not in canonical (end, eid) order", c.TTI)
				}
				prevEnd, prevEID = end, eid
			}
		}
	}
}
