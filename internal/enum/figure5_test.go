package enum_test

import (
	"sort"
	"testing"

	"temporalkcore/internal/enum"
	"temporalkcore/internal/paperex"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// lts reconstructs the content of the paper's L_ts structure from the ECS:
// for each edge, the unique minimal core window whose activation interval
// [active, start] covers ts, sorted by ascending end time.
func lts(t *testing.T, g *tgraph.Graph, ecs *vct.ECS, ts tgraph.TS) []tgraph.Window {
	t.Helper()
	var out []tgraph.Window
	lo, hi := ecs.EdgeRange()
	for e := lo; e < hi; e++ {
		wins := ecs.Windows(e)
		active := ecs.Range.Start
		count := 0
		for _, w := range wins {
			if active <= ts && ts <= w.Start {
				out = append(out, w)
				count++
			}
			active = w.Start + 1
		}
		if count > 1 {
			t.Fatalf("edge %d has %d live windows at ts=%d (want <=1): %v", e, count, ts, wins)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		return out[i].Start < out[j].Start
	})
	return out
}

// TestPaperFigure5 validates the L_1 and L_2 window lists of Figure 5.
func TestPaperFigure5(t *testing.T) {
	g := paperex.Graph()
	_, ecs, err := vct.Build(g, paperex.K, g.FullWindow())
	if err != nil {
		t.Fatal(err)
	}

	want1 := []tgraph.Window{ // Figure 5(a): ts = 1
		{Start: 2, End: 3}, {Start: 2, End: 3}, {Start: 2, End: 3},
		{Start: 1, End: 4}, {Start: 1, End: 4}, {Start: 1, End: 4},
		{Start: 3, End: 5}, {Start: 3, End: 5},
		{Start: 5, End: 5}, {Start: 5, End: 5}, {Start: 5, End: 5},
		{Start: 2, End: 6},
		{Start: 6, End: 7}, {Start: 6, End: 7},
	}
	got1 := lts(t, g, ecs, 1)
	if len(got1) != len(want1) {
		t.Fatalf("L_1 has %d windows, want %d: %v", len(got1), len(want1), got1)
	}
	for i := range want1 {
		if got1[i] != want1[i] {
			t.Errorf("L_1[%d] = %v, want %v", i, got1[i], want1[i])
		}
	}

	want2 := []tgraph.Window{ // Figure 5(b): ts = 2
		{Start: 2, End: 3}, {Start: 2, End: 3}, {Start: 2, End: 3},
		{Start: 3, End: 5}, {Start: 3, End: 5},
		{Start: 5, End: 5}, {Start: 5, End: 5}, {Start: 5, End: 5},
		{Start: 2, End: 6}, {Start: 2, End: 6},
		{Start: 6, End: 7}, {Start: 6, End: 7},
	}
	got2 := lts(t, g, ecs, 2)
	if len(got2) != len(want2) {
		t.Fatalf("L_2 has %d windows, want %d: %v", len(got2), len(want2), got2)
	}
	for i := range want2 {
		if got2[i] != want2[i] {
			t.Errorf("L_2[%d] = %v, want %v", i, got2[i], want2[i])
		}
	}
}

// TestEnumerateEmptyECS: a k beyond kmax yields an empty skyline and no
// output, without errors.
func TestEnumerateEmptyECS(t *testing.T) {
	g := paperex.Graph()
	_, ecs, err := vct.Build(g, 5, g.FullWindow())
	if err != nil {
		t.Fatal(err)
	}
	if ecs.Size() != 0 {
		t.Fatalf("|ECS| = %d, want 0", ecs.Size())
	}
	var sink enum.CollectSink
	if ok := enum.Enumerate(g, ecs, &sink); !ok {
		t.Error("stopped early on empty input")
	}
	if len(sink.Cores) != 0 {
		t.Errorf("emitted %d cores from empty skyline", len(sink.Cores))
	}
}

// TestSingleTimestamp: a graph where every edge shares one timestamp has at
// most one core per k.
func TestSingleTimestamp(t *testing.T) {
	g := tgraph.MustFromTriples(
		[3]int64{1, 2, 9}, [3]int64{2, 3, 9}, [3]int64{1, 3, 9}, [3]int64{3, 4, 9},
	)
	_, ecs, err := vct.Build(g, 2, g.FullWindow())
	if err != nil {
		t.Fatal(err)
	}
	var sink enum.CollectSink
	enum.Enumerate(g, ecs, &sink)
	if len(sink.Cores) != 1 {
		t.Fatalf("got %d cores, want 1", len(sink.Cores))
	}
	if sink.Cores[0].TTI != (tgraph.Window{Start: 1, End: 1}) {
		t.Errorf("TTI = %v, want [1,1]", sink.Cores[0].TTI)
	}
	if len(sink.Cores[0].Edges) != 3 {
		t.Errorf("core has %d edges, want 3 (the triangle)", len(sink.Cores[0].Edges))
	}
}
