package khcore_test

import (
	"math/rand"
	"testing"

	"temporalkcore/internal/kcore"
	"temporalkcore/internal/khcore"
	"temporalkcore/internal/paperex"
	"temporalkcore/internal/tgraph"
)

func multiGraph(r *rand.Rand, n, m, tmax int) *tgraph.Graph {
	b := tgraph.Builder{KeepDuplicates: true}
	for i := 0; i < m; i++ {
		u := r.Intn(n)
		v := r.Intn(n)
		for v == u {
			v = r.Intn(n)
		}
		b.Add(int64(u), int64(v), int64(1+r.Intn(tmax)))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// TestH1MatchesPlainKCore: the (k,1)-core equals the snapshot k-core on
// random multigraphs, for every k and many windows.
func TestH1MatchesPlainKCore(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	for it := 0; it < 40; it++ {
		g := multiGraph(r, 4+r.Intn(8), 10+r.Intn(60), 2+r.Intn(8))
		kh := khcore.NewPeeler(g)
		pk := kcore.NewPeeler(g)
		for trial := 0; trial < 6; trial++ {
			k := 1 + r.Intn(4)
			ts := tgraph.TS(1 + r.Intn(int(g.TMax())))
			te := ts + tgraph.TS(r.Intn(int(g.TMax()-ts)+1))
			w := tgraph.Window{Start: ts, End: te}
			gotCore, gotN := kh.CoreOfWindow(k, 1, w)
			want := pk.CoreOfWindow(k, w)
			if gotN != want.Vertices {
				t.Fatalf("iter %d: (k=%d,h=1)-core has %d vertices, k-core has %d", it, k, gotN, want.Vertices)
			}
			for v := 0; v < g.NumVertices(); v++ {
				if gotCore[v] != want.InCore[v] {
					t.Fatalf("iter %d: membership of v%d differs", it, v)
				}
			}
		}
	}
}

// naive recomputes the (k,h)-core by iterated filtering from scratch.
func naive(g *tgraph.Graph, k, h int, w tgraph.Window) map[tgraph.VID]bool {
	alive := map[tgraph.VID]bool{}
	for v := 0; v < g.NumVertices(); v++ {
		alive[tgraph.VID(v)] = true
	}
	count := func(p int32) int {
		n := 0
		for _, t := range g.PairTimes(p) {
			if t >= w.Start && t <= w.End {
				n++
			}
		}
		return n
	}
	for {
		removed := false
		for v := 0; v < g.NumVertices(); v++ {
			u := tgraph.VID(v)
			if !alive[u] {
				continue
			}
			deg := 0
			for _, nb := range g.Neighbours(u) {
				if alive[nb.V] && count(nb.Pair) >= h {
					deg++
				}
			}
			if deg < k {
				alive[u] = false
				removed = true
			}
		}
		if !removed {
			break
		}
	}
	out := map[tgraph.VID]bool{}
	for v, a := range alive {
		if a {
			// Vertices with no supported pair at all are not core members.
			deg := 0
			for _, nb := range g.Neighbours(v) {
				if alive[nb.V] && count(nb.Pair) >= h {
					deg++
				}
			}
			if deg >= k {
				out[v] = true
			}
		}
	}
	return out
}

// TestAgainstNaive fuzzes the peeling against the fixed-point filter.
func TestAgainstNaive(t *testing.T) {
	r := rand.New(rand.NewSource(66))
	for it := 0; it < 40; it++ {
		g := multiGraph(r, 4+r.Intn(6), 15+r.Intn(60), 2+r.Intn(6))
		kh := khcore.NewPeeler(g)
		k := 1 + r.Intn(3)
		h := 1 + r.Intn(3)
		ts := tgraph.TS(1 + r.Intn(int(g.TMax())))
		te := ts + tgraph.TS(r.Intn(int(g.TMax()-ts)+1))
		w := tgraph.Window{Start: ts, End: te}
		got, n := kh.CoreOfWindow(k, h, w)
		want := naive(g, k, h, w)
		if n != len(want) {
			t.Fatalf("iter %d (k=%d h=%d w=%v): %d vertices, naive %d", it, k, h, w, n, len(want))
		}
		for v := 0; v < g.NumVertices(); v++ {
			if got[v] != want[tgraph.VID(v)] {
				t.Fatalf("iter %d: membership of v%d differs (k=%d h=%d)", it, v, k, h)
			}
		}
	}
}

// TestPaperGraphH2: the Figure 1 graph has no pair with two interactions,
// so every (k,2)-core is empty.
func TestPaperGraphH2(t *testing.T) {
	g := paperex.Graph()
	kh := khcore.NewPeeler(g)
	if _, n := kh.CoreOfWindow(1, 2, g.FullWindow()); n != 0 {
		t.Errorf("(1,2)-core should be empty on the example, got %d vertices", n)
	}
}

func TestRepeatedContacts(t *testing.T) {
	b := tgraph.Builder{KeepDuplicates: true}
	// Triangle where each pair interacts twice, plus a one-off attachment.
	for _, pr := range [][2]int64{{1, 2}, {2, 3}, {1, 3}} {
		b.Add(pr[0], pr[1], 1)
		b.Add(pr[0], pr[1], 2)
	}
	b.Add(3, 4, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	kh := khcore.NewPeeler(g)
	inCore, n := kh.CoreOfWindow(2, 2, g.FullWindow())
	if n != 3 {
		t.Fatalf("(2,2)-core has %d vertices, want 3", n)
	}
	v4, _ := g.VertexOf(4)
	if inCore[v4] {
		t.Error("one-off contact vertex must be excluded")
	}
	edges := kh.CoreEdges(2, 2, g.FullWindow(), nil)
	if len(edges) != 6 {
		t.Errorf("core edges = %d, want 6 (both interactions of each pair)", len(edges))
	}
	// Narrowing the window to one timestamp drops h=2 support entirely.
	if _, n := kh.CoreOfWindow(2, 2, tgraph.Window{Start: 1, End: 1}); n != 0 {
		t.Errorf("single-timestamp (2,2)-core should be empty, got %d", n)
	}
	if got := kh.MaxK(2, g.FullWindow()); got != 2 {
		t.Errorf("MaxK(h=2) = %d, want 2", got)
	}
	if got := kh.MaxK(3, g.FullWindow()); got != 0 {
		t.Errorf("MaxK(h=3) = %d, want 0", got)
	}
}
