// Package khcore implements the (k, h)-core model of Wu et al., "Core
// decomposition in large temporal graphs" (IEEE BigData 2015) — reference
// [22] of the reproduced paper's related-work survey. Where the plain
// k-core counts distinct neighbours, the (k, h)-core requires every vertex
// to have at least k neighbours with at least h temporal interactions
// each inside the window, a cohesion notion that is robust to one-off
// contacts. (k, 1)-cores coincide with ordinary snapshot k-cores, which
// the tests exploit as a cross-check against package kcore.
package khcore

import (
	"sort"

	"temporalkcore/internal/ds"
	"temporalkcore/internal/tgraph"
)

// Peeler computes (k, h)-cores of window snapshots with reusable buffers.
type Peeler struct {
	g     *tgraph.Graph
	deg   []int32 // h-supported distinct-neighbour degree
	alive []bool
	q     ds.Queue
}

// NewPeeler returns a Peeler for g.
func NewPeeler(g *tgraph.Graph) *Peeler {
	return &Peeler{
		g:     g,
		deg:   make([]int32, g.NumVertices()),
		alive: make([]bool, g.NumVertices()),
	}
}

// pairCountInWindow returns the number of interactions of pair p inside w.
func pairCountInWindow(g *tgraph.Graph, p int32, w tgraph.Window) int {
	times := g.PairTimes(p)
	lo := sort.Search(len(times), func(i int) bool { return times[i] >= w.Start })
	hi := sort.Search(len(times), func(i int) bool { return times[i] > w.End })
	return hi - lo
}

// CoreOfWindow computes the (k, h)-core of the snapshot over w. The
// returned InCore slice is owned by the Peeler and overwritten by the next
// call. k and h must be >= 1.
func (p *Peeler) CoreOfWindow(k, h int, w tgraph.Window) (inCore []bool, vertices int) {
	g := p.g
	for i := range p.deg {
		p.deg[i] = 0
		p.alive[i] = false
	}

	// Count h-supported degrees. Pairs present in the window are exactly
	// the pairs of edges in the window; visit each pair once via its first
	// edge occurrence.
	lo, hi := g.EdgesIn(w)
	touched := make([]int32, 0, int(hi-lo))
	seen := make(map[int32]struct{}, int(hi-lo))
	for e := lo; e < hi; e++ {
		pi := g.EdgePair(e)
		if _, ok := seen[pi]; ok {
			continue
		}
		seen[pi] = struct{}{}
		if pairCountInWindow(g, pi, w) < h {
			continue
		}
		touched = append(touched, pi)
		pr := g.Pair(pi)
		p.deg[pr.U]++
		p.deg[pr.V]++
		p.alive[pr.U] = true
		p.alive[pr.V] = true
	}

	// Peel.
	p.q.Reset()
	for _, pi := range touched {
		pr := g.Pair(pi)
		for _, u := range [2]tgraph.VID{pr.U, pr.V} {
			if p.alive[u] && int(p.deg[u]) < k {
				p.alive[u] = false
				p.q.Push(int32(u))
			}
		}
	}
	supported := make(map[int32]struct{}, len(touched))
	for _, pi := range touched {
		supported[pi] = struct{}{}
	}
	for p.q.Len() > 0 {
		u := tgraph.VID(p.q.Pop())
		for _, nb := range g.Neighbours(u) {
			if _, ok := supported[nb.Pair]; !ok {
				continue
			}
			if !p.alive[nb.V] {
				continue
			}
			p.deg[nb.V]--
			if int(p.deg[nb.V]) < k {
				p.alive[nb.V] = false
				p.q.Push(int32(nb.V))
			}
		}
	}

	for v := range p.alive {
		if p.alive[v] {
			vertices++
		}
	}
	return p.alive, vertices
}

// MaxK returns the largest k such that the (k, h)-core of the snapshot
// over w is non-empty (0 when even the (1, h)-core is empty).
func (p *Peeler) MaxK(h int, w tgraph.Window) int {
	lo, hi := 1, p.g.NumVertices()
	best := 0
	for lo <= hi {
		mid := (lo + hi) / 2
		if _, n := p.CoreOfWindow(mid, h, w); n > 0 {
			best = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return best
}

// CoreEdges appends the temporal edges of the (k, h)-core over w to dst:
// edges of h-supported pairs whose endpoints both survive.
func (p *Peeler) CoreEdges(k, h int, w tgraph.Window, dst []tgraph.EID) []tgraph.EID {
	inCore, n := p.CoreOfWindow(k, h, w)
	if n == 0 {
		return dst
	}
	g := p.g
	lo, hi := g.EdgesIn(w)
	for e := lo; e < hi; e++ {
		te := g.Edge(e)
		if !inCore[te.U] || !inCore[te.V] {
			continue
		}
		if pairCountInWindow(g, g.EdgePair(e), w) < h {
			continue
		}
		dst = append(dst, e)
	}
	return dst
}
