package paperex_test

import (
	"testing"

	"temporalkcore/internal/paperex"
)

// TestFixtureSelfConsistent guards the golden data itself: every skyline
// key matches an edge of the graph, every VCT vertex exists, and the
// Figure 2 edge sets are subsets of the edge list.
func TestFixtureSelfConsistent(t *testing.T) {
	g := paperex.Graph()
	if g.NumEdges() != len(paperex.Edges) {
		t.Fatalf("graph has %d edges, fixture lists %d", g.NumEdges(), len(paperex.Edges))
	}
	edgeSet := map[paperex.ECSEdge]bool{}
	for _, e := range paperex.Edges {
		u, v := e[0], e[1]
		if u > v {
			u, v = v, u
		}
		edgeSet[paperex.ECSEdge{U: u, V: v, T: e[2]}] = true
	}
	for key := range paperex.ECS {
		if !edgeSet[key] {
			t.Errorf("ECS key %+v is not an edge of the example", key)
		}
	}
	if len(paperex.ECS) != len(paperex.Edges) {
		t.Errorf("ECS covers %d edges, graph has %d", len(paperex.ECS), len(paperex.Edges))
	}
	for label := range paperex.VCT {
		if _, ok := g.VertexOf(label); !ok {
			t.Errorf("VCT vertex %d missing from graph", label)
		}
	}
	if len(paperex.VCT) != g.NumVertices() {
		t.Errorf("VCT covers %d vertices, graph has %d", len(paperex.VCT), g.NumVertices())
	}
	for _, core := range paperex.Figure2 {
		for _, e := range core.Edges {
			if !edgeSet[e] {
				t.Errorf("Figure 2 edge %+v not in the example", e)
			}
		}
		if core.TTI[0] > core.TTI[1] {
			t.Errorf("Figure 2 TTI inverted: %v", core.TTI)
		}
	}
	// Skyline windows in the golden table are themselves skylines:
	// strictly increasing starts and ends.
	for key, wins := range paperex.ECS {
		for i := 1; i < len(wins); i++ {
			if wins[i][0] <= wins[i-1][0] || wins[i][1] <= wins[i-1][1] {
				t.Errorf("golden skyline of %+v not strictly increasing: %v", key, wins)
			}
		}
	}
}
