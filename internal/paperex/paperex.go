// Package paperex provides the running example of the reproduced paper: the
// temporal graph of Figure 1 (edge list recoverable from Table II) and the
// published golden results for k = 2 — the vertex core time index of
// Table I, the edge core window skylines of Table II, and the temporal
// 2-cores of Figure 2. Tests across the repository validate against these.
//
// Table I of the paper contains a typo: the final entries of v3 are printed
// as "[3,7],[4,∞]", but v3 is in the 2-core of [4,7], [5,7] and [6,7] (the
// triangle v1-v3-v5 on edges (1,3,6), (3,5,6), (1,5,7)), so the correct
// entries are "[3,7],[7,∞]". Table II is only consistent with the corrected
// value — e.g. (v1,v3,6) having minimal window [6,7] requires a finite core
// time for v3 at start time 6. The golden data below uses the correction.
package paperex

import "temporalkcore/internal/tgraph"

// Edges is the temporal edge list of Figure 1, as (u, v, t) triples.
var Edges = [][3]int64{
	{2, 9, 1},
	{1, 4, 2},
	{2, 3, 2},
	{1, 2, 3},
	{2, 4, 3},
	{3, 9, 4},
	{4, 8, 4},
	{1, 6, 5},
	{1, 7, 5},
	{2, 8, 5},
	{6, 7, 5},
	{1, 3, 6},
	{3, 5, 6},
	{1, 5, 7},
}

// Graph builds the Figure 1 graph. Timestamps 1..7 are already dense, so
// compressed ranks equal raw times.
func Graph() *tgraph.Graph {
	return tgraph.MustFromTriples(Edges...)
}

// K is the query parameter used throughout the paper's example.
const K = 2

// Inf marks an infinite core time in the golden data.
const Inf = int64(-1)

// VCT is the corrected Table I: per vertex label, (start, core time) labels
// for k=2 over the full range [1,7].
var VCT = map[int64][][2]int64{
	1: {{1, 3}, {3, 5}, {6, 7}, {7, Inf}},
	2: {{1, 3}, {3, 5}, {4, Inf}},
	3: {{1, 4}, {2, 6}, {3, 7}, {7, Inf}}, // paper prints [4,∞]; see package doc
	4: {{1, 3}, {3, 5}, {4, Inf}},
	5: {{1, 7}, {7, Inf}},
	6: {{1, 5}, {6, Inf}},
	7: {{1, 5}, {6, Inf}},
	8: {{1, 5}, {4, Inf}},
	9: {{1, 4}, {2, Inf}},
}

// ECSEdge identifies a temporal edge of the example by labels and time.
type ECSEdge struct {
	U, V int64
	T    int64
}

// ECS is Table II: the minimal core windows of every edge for k=2 over the
// full range [1,7].
var ECS = map[ECSEdge][][2]int64{
	{2, 9, 1}: {{1, 4}},
	{1, 4, 2}: {{2, 3}},
	{2, 3, 2}: {{1, 4}, {2, 6}},
	{1, 2, 3}: {{2, 3}, {3, 5}},
	{2, 4, 3}: {{2, 3}, {3, 5}},
	{3, 9, 4}: {{1, 4}},
	{4, 8, 4}: {{3, 5}},
	{1, 6, 5}: {{5, 5}},
	{1, 7, 5}: {{5, 5}},
	{2, 8, 5}: {{3, 5}},
	{6, 7, 5}: {{5, 5}},
	{1, 3, 6}: {{2, 6}, {6, 7}},
	{3, 5, 6}: {{6, 7}},
	{1, 5, 7}: {{6, 7}},
}

// Figure2Core is one expected temporal 2-core of the query range [1,4].
type Figure2Core struct {
	TTI   [2]int64
	Edges []ECSEdge
}

// Figure2 lists the two temporal 2-cores of Figure 2 for range [1,4].
var Figure2 = []Figure2Core{
	{
		TTI:   [2]int64{1, 4},
		Edges: []ECSEdge{{2, 9, 1}, {1, 4, 2}, {2, 3, 2}, {1, 2, 3}, {2, 4, 3}, {3, 9, 4}},
	},
	{
		TTI:   [2]int64{2, 3},
		Edges: []ECSEdge{{1, 4, 2}, {1, 2, 3}, {2, 4, 3}},
	},
}
