package phc_test

import (
	"testing"

	"temporalkcore/internal/gen"
	"temporalkcore/internal/phc"
	"temporalkcore/internal/tgraph"
)

func benchGraph(b *testing.B) *tgraph.Graph {
	b.Helper()
	rep, err := gen.ReplicaByCode("FB")
	if err != nil {
		b.Fatal(err)
	}
	g, err := rep.Generate(3000, 1)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkBuild measures full multi-k index construction, the one-off
// cost a deployment pays before serving historical queries.
func BenchmarkBuild(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	var size int
	for i := 0; i < b.N; i++ {
		ix, err := phc.Build(g, g.FullWindow())
		if err != nil {
			b.Fatal(err)
		}
		size = ix.Size()
	}
	b.ReportMetric(float64(size), "labels")
}

// BenchmarkCoreVertices measures one historical k-core extraction from the
// prebuilt index (no peeling).
func BenchmarkCoreVertices(b *testing.B) {
	g := benchGraph(b)
	ix, err := phc.Build(g, g.FullWindow())
	if err != nil {
		b.Fatal(err)
	}
	k := ix.KMax * 30 / 100
	if k < 2 {
		k = 2
	}
	w := tgraph.Window{Start: g.TMax() / 4, End: g.TMax() / 2}
	var buf []tgraph.VID
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = ix.CoreVertices(g, k, w, buf[:0])
	}
}

// BenchmarkCoreNumber measures the per-vertex binary search over k.
func BenchmarkCoreNumber(b *testing.B) {
	g := benchGraph(b)
	ix, err := phc.Build(g, g.FullWindow())
	if err != nil {
		b.Fatal(err)
	}
	w := tgraph.Window{Start: 1, End: g.TMax()}
	n := tgraph.VID(g.NumVertices())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.CoreNumber(tgraph.VID(i)%n, w)
	}
}
