package phc_test

import (
	"bytes"
	"testing"

	"temporalkcore/internal/phc"
	"temporalkcore/internal/tgraph"
)

// decodeStream turns fuzz bytes into a time-ordered edge stream plus a
// batch-split recipe, mirroring the dyn fuzz harness: byte 0 sizes the
// vertex universe, byte 1 picks the number of append batches, each
// following byte triple is one edge whose third byte advances time by 0-2
// ranks.
func decodeStream(data []byte) (edges []tgraph.RawEdge, batches int) {
	if len(data) < 8 {
		return nil, 0
	}
	n := int64(data[0])%14 + 3
	batches = int(data[1])%4 + 1
	t := int64(1)
	for i := 2; i+2 < len(data); i += 3 {
		t += int64(data[i+2] % 3)
		edges = append(edges, tgraph.RawEdge{
			U:    int64(data[i]) % n,
			V:    int64(data[i+1]) % n,
			Time: t,
		})
	}
	return edges, batches
}

// FuzzPatchEquivalence feeds random edge batches through the append path,
// patching the multi-k index after every batch, and requires the final
// index to be byte-identical — every label of every k slice, the range and
// the fingerprint — to a one-shot Build on the grown graph.
func FuzzPatchEquivalence(f *testing.F) {
	f.Add([]byte("\x05\x02\x01\x02\x01\x02\x03\x01\x01\x03\x02\x03\x01\x00\x04\x05\x02\x01"))
	f.Add([]byte{9, 3, 1, 2, 0, 2, 3, 1, 3, 1, 0, 4, 5, 2, 1, 2, 2, 0, 3, 4, 1, 4, 5, 0, 5, 6, 2})
	f.Add([]byte{200, 250, 100, 101, 1, 102, 103, 0, 100, 102, 1, 101, 103, 0, 100, 103, 2, 101, 102, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		edges, batches := decodeStream(data)
		if len(edges) < 4 {
			return
		}
		cut := len(edges) / (batches + 1)
		if cut == 0 {
			return
		}
		g, err := tgraph.FromRawEdges(edges[:cut])
		if err != nil {
			return // prefix can be empty of usable edges (all self loops)
		}
		ix, err := phc.Build(g, g.FullWindow())
		if err != nil {
			t.Fatalf("prefix Build: %v", err)
		}
		for i := cut; i < len(edges); i += cut {
			j := i + cut
			if j > len(edges) {
				j = len(edges)
			}
			if _, err := g.Append(edges[i:j]); err != nil {
				t.Fatalf("Append(%d:%d): %v", i, j, err)
			}
			nix, _, err := ix.Patch(g, g.FullWindow(), tgraph.TS(ix.Fp.TMax))
			if err != nil {
				t.Fatalf("Patch after batch %d: %v", i/cut, err)
			}
			ix = nix
		}

		rebuilt, err := phc.Build(g, g.FullWindow())
		if err != nil {
			t.Fatalf("one-shot Build: %v", err)
		}
		var got, want bytes.Buffer
		if err := ix.Encode(&got); err != nil {
			t.Fatal(err)
		}
		if err := rebuilt.Encode(&want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("patched index diverges from one-shot build (kmax %d vs %d, size %d vs %d)",
				ix.KMax, rebuilt.KMax, ix.Size(), rebuilt.Size())
		}
	})
}
