package phc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

const indexMagic = "PHCX1\n"

// Encode writes the whole multi-k index; Decode reads it back. Building
// the index costs a pass per k over the graph, so persisting it is the
// natural deployment mode for repeated historical queries (as in [13]).
func (ix *Index) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(indexMagic); err != nil {
		return err
	}
	hdr := []int32{int32(ix.Range.Start), int32(ix.Range.End), int32(ix.KMax)}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	for _, sub := range ix.perK {
		if err := sub.Encode(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads an index written by Encode.
func Decode(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("phc: reading magic: %w", err)
	}
	if string(magic) != indexMagic {
		return nil, errors.New("phc: not a PHCX1 stream")
	}
	hdr := make([]int32, 3)
	if err := binary.Read(br, binary.LittleEndian, hdr); err != nil {
		return nil, fmt.Errorf("phc: reading header: %w", err)
	}
	kmax := int(hdr[2])
	if kmax < 0 || kmax > 1<<20 {
		return nil, fmt.Errorf("phc: implausible kmax %d", kmax)
	}
	ix := &Index{
		Range: tgraph.Window{Start: tgraph.TS(hdr[0]), End: tgraph.TS(hdr[1])},
		KMax:  kmax,
		perK:  make([]*vct.Index, kmax),
	}
	for k := 1; k <= kmax; k++ {
		sub, err := vct.DecodeIndex(br)
		if err != nil {
			return nil, fmt.Errorf("phc: decoding k=%d slice: %w", k, err)
		}
		if sub.K != k {
			return nil, fmt.Errorf("phc: slice order corrupt: got k=%d, want %d", sub.K, k)
		}
		ix.perK[k-1] = sub
	}
	return ix, nil
}
