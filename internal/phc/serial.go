package phc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// indexMagic versions the serial format. PHCX2 added the graph
// fingerprint; PHCX1 streams (which carried only the range end as a guard,
// not enough to detect a load against a different graph with a longer
// timeline) are rejected as unreadable rather than half-validated.
const indexMagic = "PHCX2\n"

// Encode writes the whole multi-k index, including the fingerprint of the
// graph state it was built against; Decode reads it back. Building the
// index costs a pass per k over the graph, so persisting it is the natural
// deployment mode for repeated historical queries (as in [13]).
func (ix *Index) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(indexMagic); err != nil {
		return err
	}
	hdr := []int64{
		int64(ix.Range.Start), int64(ix.Range.End), int64(ix.KMax),
		ix.Fp.Vertices, ix.Fp.Edges, ix.Fp.TMax, ix.Fp.MutSeq,
	}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	for _, sub := range ix.perK {
		if err := sub.Encode(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Decode reads an index written by Encode. The embedded fingerprint is
// returned with the index; callers loading against a live graph must
// verify it (Fingerprint.Matches) before serving queries.
func Decode(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("phc: reading magic: %w", err)
	}
	if string(magic) != indexMagic {
		return nil, errors.New("phc: not a PHCX2 stream")
	}
	hdr := make([]int64, 7)
	if err := binary.Read(br, binary.LittleEndian, hdr); err != nil {
		return nil, fmt.Errorf("phc: reading header: %w", err)
	}
	kmax := int(hdr[2])
	if kmax < 0 || kmax > 1<<20 {
		return nil, fmt.Errorf("phc: implausible kmax %d", kmax)
	}
	ix := &Index{
		Range: tgraph.Window{Start: tgraph.TS(hdr[0]), End: tgraph.TS(hdr[1])},
		KMax:  kmax,
		Fp:    Fingerprint{Vertices: hdr[3], Edges: hdr[4], TMax: hdr[5], MutSeq: hdr[6]},
		perK:  make([]*vct.Index, kmax),
	}
	if ix.Fp.Vertices < 0 || ix.Fp.Edges < 0 || ix.Fp.TMax < int64(ix.Range.End) {
		return nil, errors.New("phc: corrupt fingerprint")
	}
	for k := 1; k <= kmax; k++ {
		sub, err := vct.DecodeIndex(br)
		if err != nil {
			return nil, fmt.Errorf("phc: decoding k=%d slice: %w", k, err)
		}
		if sub.K != k {
			return nil, fmt.Errorf("phc: slice order corrupt: got k=%d, want %d", sub.K, k)
		}
		ix.perK[k-1] = sub
	}
	return ix, nil
}
