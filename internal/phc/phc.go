// Package phc implements the full PHC-style historical k-core index of
// Yu et al., "On Querying Historical K-Cores" (VLDB 2021) — reference [13]
// of the reproduced paper, which uses only the single-k slice of it (the
// VCT index of package vct).
//
// The index stores, for every k from 1 to kmax and every vertex, the
// compressed core-time labels over a time range. Once built it answers
// historical k-core queries — "which vertices/edges form the k-core of the
// snapshot over [ts, te]?" — without touching the graph's structure again:
// a vertex u belongs to the k-core of [ts, te] iff CT^k_ts(u) <= te, and a
// temporal edge (u, v, t) belongs iff additionally ts <= t and
// max(CT^k_ts(u), CT^k_ts(v)) <= te (Lemma 1 of the reproduced paper).
package phc

import (
	"fmt"

	"temporalkcore/internal/kcore"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// Index is a historical k-core index over one time range for every k in
// [1, KMax]. It is immutable and safe for concurrent use.
type Index struct {
	Range tgraph.Window
	KMax  int

	perK []*vct.Index // perK[k-1] is the VCT index for k
}

// Build constructs the index for every k from 1 to the core number bound
// of the projected snapshot over w. The cost is the sum of the per-k VCT
// constructions, each O(|VCT_k| · deg_avg).
func Build(g *tgraph.Graph, w tgraph.Window) (*Index, error) {
	if !w.Valid() || w.End > g.TMax() {
		return nil, fmt.Errorf("phc: window [%d,%d] outside graph range [1,%d]", w.Start, w.End, g.TMax())
	}
	_, kmax := kcore.Decompose(g, w)
	ix := &Index{Range: w, KMax: kmax, perK: make([]*vct.Index, kmax)}
	for k := 1; k <= kmax; k++ {
		sub, _, err := vct.Build(g, k, w)
		if err != nil {
			return nil, err
		}
		ix.perK[k-1] = sub
	}
	return ix, nil
}

// Size returns the total number of labels over all k, the paper's |PHC|.
func (ix *Index) Size() int {
	total := 0
	for _, sub := range ix.perK {
		if sub != nil {
			total += sub.Size()
		}
	}
	return total
}

// CoreTime returns CT^k_ts(u), or tgraph.InfTime when u is never in a
// k-core of a window starting at ts inside the index range. k beyond KMax
// is always infinite.
func (ix *Index) CoreTime(u tgraph.VID, k int, ts tgraph.TS) tgraph.TS {
	if k < 1 {
		return ix.Range.Start // every vertex is a 0-core member immediately
	}
	if k > ix.KMax {
		return tgraph.InfTime
	}
	return ix.perK[k-1].CoreTime(u, ts)
}

// InCore reports whether vertex u is in the k-core of the snapshot over
// [w.Start, w.End]. w must lie inside the index range.
func (ix *Index) InCore(u tgraph.VID, k int, w tgraph.Window) bool {
	if k < 1 {
		return true
	}
	if k > ix.KMax || !ix.Range.Contains(w) {
		return false
	}
	ct := ix.perK[k-1].CoreTime(u, w.Start)
	return ct != tgraph.InfTime && ct <= w.End
}

// CoreVertices appends the vertices of the k-core of the snapshot over w
// to dst. The scan is O(n) over the vertex universe plus the output.
func (ix *Index) CoreVertices(g *tgraph.Graph, k int, w tgraph.Window, dst []tgraph.VID) []tgraph.VID {
	if k < 1 || k > ix.KMax || !ix.Range.Contains(w) {
		return dst
	}
	sub := ix.perK[k-1]
	for u := tgraph.VID(0); u < tgraph.VID(g.NumVertices()); u++ {
		ct := sub.CoreTime(u, w.Start)
		if ct != tgraph.InfTime && ct <= w.End {
			dst = append(dst, u)
		}
	}
	return dst
}

// CoreEdges appends the temporal edges of the k-core of the snapshot over
// w to dst, scanning only the edges inside the window.
func (ix *Index) CoreEdges(g *tgraph.Graph, k int, w tgraph.Window, dst []tgraph.EID) []tgraph.EID {
	if k < 1 || k > ix.KMax || !ix.Range.Contains(w) {
		return dst
	}
	sub := ix.perK[k-1]
	lo, hi := g.EdgesIn(w)
	for e := lo; e < hi; e++ {
		te := g.Edge(e)
		cu := sub.CoreTime(te.U, w.Start)
		if cu == tgraph.InfTime || cu > w.End {
			continue
		}
		cv := sub.CoreTime(te.V, w.Start)
		if cv == tgraph.InfTime || cv > w.End {
			continue
		}
		dst = append(dst, e)
	}
	return dst
}

// CoreNumber returns the largest k such that u is in the k-core of the
// snapshot over w (0 when u is isolated there). Binary search over k uses
// the nesting of cores: the k-core contains the (k+1)-core.
func (ix *Index) CoreNumber(u tgraph.VID, w tgraph.Window) int {
	lo, hi := 1, ix.KMax
	best := 0
	for lo <= hi {
		mid := (lo + hi) / 2
		if ix.InCore(u, mid, w) {
			best = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return best
}
