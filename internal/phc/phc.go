// Package phc implements the full PHC-style historical k-core index of
// Yu et al., "On Querying Historical K-Cores" (VLDB 2021) — reference [13]
// of the reproduced paper, which uses only the single-k slice of it (the
// VCT index of package vct).
//
// The index stores, for every k from 1 to kmax and every vertex, the
// compressed core-time labels over a time range. Once built it answers
// historical k-core queries — "which vertices/edges form the k-core of the
// snapshot over [ts, te]?" — without touching the graph's structure again:
// a vertex u belongs to the k-core of [ts, te] iff CT^k_ts(u) <= te, and a
// temporal edge (u, v, t) belongs iff additionally ts <= t and
// max(CT^k_ts(u), CT^k_ts(v)) <= te (Lemma 1 of the reproduced paper).
//
// Under a growing graph the index is maintained incrementally: Patch
// re-settles only the dirty time-suffix an append touched (bounded by the
// tgraph.AppendStats FirstNewRank watermark, the same frontier trick the
// single-k dynamic tables use) instead of rebuilding every k slice from
// scratch, falling back to a full Build when the dirty region dominates
// the window.
package phc

import (
	"fmt"

	"temporalkcore/internal/kcore"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// Fingerprint pins the exact graph state an index was built against: the
// vertex/edge counts, the compressed rank ceiling and the mutation
// sequence number. On an append-only graph the quadruple identifies the
// edge prefix exactly, so it is both the staleness watermark carrier for
// Patch (TMax is the dirty low-water mark of any later append) and the
// load-time guard of the serial format (an index decoded against a
// different graph state is rejected instead of answering wrongly).
type Fingerprint struct {
	Vertices int64
	Edges    int64
	TMax     int64 // compressed rank ceiling (tgraph.Graph.TMax) at build
	MutSeq   int64 // mutation sequence number at build
}

// FingerprintOf captures the current state of g.
func FingerprintOf(g *tgraph.Graph) Fingerprint {
	return Fingerprint{
		Vertices: int64(g.NumVertices()),
		Edges:    int64(g.NumEdges()),
		TMax:     int64(g.TMax()),
		MutSeq:   g.MutSeq(),
	}
}

// Matches reports whether g is in exactly the state the fingerprint
// records.
func (fp Fingerprint) Matches(g *tgraph.Graph) bool { return fp == FingerprintOf(g) }

// Index is a historical k-core index over one time range for every k in
// [1, KMax]. It is immutable and safe for concurrent use.
type Index struct {
	Range tgraph.Window
	KMax  int

	// Fp records the graph state the index answers for; see Fingerprint.
	Fp Fingerprint

	perK []*vct.Index // perK[k-1] is the VCT index for k
}

// Build constructs the index for every k from 1 to the core number bound
// of the projected snapshot over w. The cost is the sum of the per-k VCT
// constructions, each O(|VCT_k| · deg_avg).
func Build(g *tgraph.Graph, w tgraph.Window) (*Index, error) {
	return BuildStop(g, w, nil)
}

// BuildStop is Build with a cancellation hook: stop (when non-nil) is
// polled inside every per-k CoreTime settle loop with the bounded stride
// of vct.BuildScratchStop, plus once per k slice, so even a build over a
// large window with a deep k hierarchy cancels within one stride of work.
// When it fires the partial index is abandoned and vct.ErrStopped is
// returned; callers translate it to their own cancellation error
// (typically ctx.Err()).
//
// tkc:cancellable
func BuildStop(g *tgraph.Graph, w tgraph.Window, stop func() bool) (*Index, error) {
	if !w.Valid() || w.End > g.TMax() {
		return nil, fmt.Errorf("phc: window [%d,%d] outside graph range [1,%d]", w.Start, w.End, g.TMax())
	}
	_, kmax := kcore.Decompose(g, w)
	ix := &Index{Range: w, KMax: kmax, Fp: FingerprintOf(g), perK: make([]*vct.Index, kmax)}
	for k := 1; k <= kmax; k++ {
		if stop != nil && stop() {
			return nil, vct.ErrStopped
		}
		sub, _, err := vct.BuildStop(g, k, w, stop)
		if err != nil {
			return nil, err
		}
		ix.perK[k-1] = sub
	}
	return ix, nil
}

// patchMinCleanNum/Den is the fallback threshold of Patch: when the clean
// prefix the cached index can vouch for covers less than 1/4 of the target
// window, the per-k patch bookkeeping (bucket replay, pin bitmap, output
// cloning) stops paying for itself and a straight Build is used instead.
const (
	patchMinCleanNum = 1
	patchMinCleanDen = 4
)

// Patch returns an index for (g, w) that reuses the labels of ix wherever
// the dirty watermark proves them still exact, re-settling only the dirty
// time-suffix; see PatchStop.
func (ix *Index) Patch(g *tgraph.Graph, w tgraph.Window, dirtyFrom tgraph.TS) (*Index, bool, error) {
	return ix.PatchStop(g, w, dirtyFrom, nil)
}

// PatchStop incrementally maintains the index after the graph grew at the
// time frontier: it builds the index for (g, w) using ix as an oracle for
// every snapshot the appends cannot have changed, so the fixed-point work
// per k concentrates on the dirty time-suffix instead of the whole window
// (the PR 2 frontier trick, applied to every PHC label array at once).
//
// ix must have been built against an earlier (or identical) state of the
// same append-only graph, and dirtyFrom must be a rank such that every
// snapshot [ts, te] with te < dirtyFrom is unchanged since ix was built.
// For pure appends that is the first rank that received a new edge
// (tgraph.AppendStats FirstNewRank); the TMax recorded in ix.Fp is a valid
// conservative choice, since time-ordered appends only ever add edges at
// ranks >= the frontier. The receiver is not modified; a fresh, self-owned
// Index is returned.
//
// patched reports whether the oracle was used. The indexed range need not
// contain w.Start: a window extended backwards past the indexed start runs
// its uncovered prefix as a plain build per k and reuses the clean overlap
// from there (vct.PatchScratchStop's partial-range mode). PatchStop falls
// back to a full BuildStop (patched == false) when the cache proves
// nothing — dirtyFrom precedes the first start the oracle covers inside w
// — and when the clean overlap covers less than a quarter of the window,
// in which case re-settling nearly everything through the patch machinery
// would cost more than building. stop follows the BuildStop contract;
// cancellation returns vct.ErrStopped with ix untouched.
//
// tkc:cancellable
func (ix *Index) PatchStop(g *tgraph.Graph, w tgraph.Window, dirtyFrom tgraph.TS, stop func() bool) (*Index, bool, error) {
	if !w.Valid() || w.End > g.TMax() {
		return nil, false, fmt.Errorf("phc: window [%d,%d] outside graph range [1,%d]", w.Start, w.End, g.TMax())
	}
	if dirtyFrom > ix.Range.End+1 {
		dirtyFrom = ix.Range.End + 1 // beyond its range the oracle proves nothing
	}
	// The clean region the oracle vouches for starts at the later of
	// w.Start and the indexed start — an index covering only a suffix of
	// the window still patches, it just rebuilds the uncovered prefix.
	cs := w.Start
	if ix.Range.Start > cs {
		cs = ix.Range.Start
	}
	clean := int64(dirtyFrom) - int64(cs)
	span := int64(w.End) - int64(w.Start) + 1
	if clean <= 0 || clean*patchMinCleanDen < span*patchMinCleanNum {
		nix, err := BuildStop(g, w, stop)
		return nix, false, err
	}

	_, kmax := kcore.Decompose(g, w)
	out := &Index{Range: w, KMax: kmax, Fp: FingerprintOf(g), perK: make([]*vct.Index, kmax)}
	s := vct.GetScratch()
	defer vct.PutScratch(s)
	for k := 1; k <= kmax; k++ {
		if stop != nil && stop() {
			return nil, false, vct.ErrStopped
		}
		if k <= ix.KMax {
			// The arena-backed patch output is cloned into self-owned
			// arrays; the scratch is reused across the k slices.
			sub, _, _, err := vct.PatchScratchStop(g, k, w, ix.perK[k-1], dirtyFrom, s, stop)
			if err != nil {
				return nil, false, err
			}
			out.perK[k-1] = sub.Clone()
			continue
		}
		// A k tier the old state never reached: nothing cached to patch
		// from, build the new slice outright (self-owned already).
		sub, _, err := vct.BuildStop(g, k, w, stop)
		if err != nil {
			return nil, false, err
		}
		out.perK[k-1] = sub
	}
	return out, true, nil
}

// Size returns the total number of labels over all k, the paper's |PHC|.
func (ix *Index) Size() int {
	total := 0
	for _, sub := range ix.perK {
		if sub != nil {
			total += sub.Size()
		}
	}
	return total
}

// MemBytes estimates the resident size of the index's backing arrays, the
// unit of the serving cache's byte budget.
func (ix *Index) MemBytes() int64 {
	var total int64
	for _, sub := range ix.perK {
		if sub != nil {
			total += sub.MemBytes()
		}
	}
	return total
}

// CoreTime returns CT^k_ts(u), or tgraph.InfTime when u is never in a
// k-core of a window starting at ts inside the index range. k beyond KMax
// is always infinite.
func (ix *Index) CoreTime(u tgraph.VID, k int, ts tgraph.TS) tgraph.TS {
	if k < 1 {
		return ix.Range.Start // every vertex is a 0-core member immediately
	}
	if k > ix.KMax {
		return tgraph.InfTime
	}
	return ix.perK[k-1].CoreTime(u, ts)
}

// InCore reports whether vertex u is in the k-core of the snapshot over
// [w.Start, w.End]. w must lie inside the index range.
func (ix *Index) InCore(u tgraph.VID, k int, w tgraph.Window) bool {
	if k < 1 {
		return true
	}
	if k > ix.KMax || !ix.Range.Contains(w) {
		return false
	}
	ct := ix.perK[k-1].CoreTime(u, w.Start)
	return ct != tgraph.InfTime && ct <= w.End
}

// CoreVertices appends the vertices of the k-core of the snapshot over w
// to dst. The scan is O(n) over the vertex universe plus the output.
func (ix *Index) CoreVertices(g *tgraph.Graph, k int, w tgraph.Window, dst []tgraph.VID) []tgraph.VID {
	if k < 1 || k > ix.KMax || !ix.Range.Contains(w) {
		return dst
	}
	sub := ix.perK[k-1]
	for u := tgraph.VID(0); u < tgraph.VID(g.NumVertices()); u++ {
		ct := sub.CoreTime(u, w.Start)
		if ct != tgraph.InfTime && ct <= w.End {
			dst = append(dst, u)
		}
	}
	return dst
}

// CoreEdges appends the temporal edges of the k-core of the snapshot over
// w to dst, scanning only the edges inside the window.
func (ix *Index) CoreEdges(g *tgraph.Graph, k int, w tgraph.Window, dst []tgraph.EID) []tgraph.EID {
	if k < 1 || k > ix.KMax || !ix.Range.Contains(w) {
		return dst
	}
	sub := ix.perK[k-1]
	lo, hi := g.EdgesIn(w)
	for e := lo; e < hi; e++ {
		te := g.Edge(e)
		cu := sub.CoreTime(te.U, w.Start)
		if cu == tgraph.InfTime || cu > w.End {
			continue
		}
		cv := sub.CoreTime(te.V, w.Start)
		if cv == tgraph.InfTime || cv > w.End {
			continue
		}
		dst = append(dst, e)
	}
	return dst
}

// CoreNumber returns the largest k such that u is in the k-core of the
// snapshot over w (0 when u is isolated there). Binary search over k uses
// the nesting of cores: the k-core contains the (k+1)-core.
func (ix *Index) CoreNumber(u tgraph.VID, w tgraph.Window) int {
	lo, hi := 1, ix.KMax
	best := 0
	for lo <= hi {
		mid := (lo + hi) / 2
		if ix.InCore(u, mid, w) {
			best = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return best
}
