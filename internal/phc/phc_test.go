package phc_test

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"temporalkcore/internal/kcore"
	"temporalkcore/internal/paperex"
	"temporalkcore/internal/phc"
	"temporalkcore/internal/tgraph"
)

func TestBuildPaperGraph(t *testing.T) {
	g := paperex.Graph()
	ix, err := phc.Build(g, g.FullWindow())
	if err != nil {
		t.Fatal(err)
	}
	if ix.KMax != 2 {
		t.Fatalf("KMax = %d, want 2", ix.KMax)
	}
	// The k=2 slice must answer Example 2: CT^2_1(v1)=3, CT^2_3(v1)=5.
	v1, _ := g.VertexOf(1)
	if got := ix.CoreTime(v1, 2, 1); got != 3 {
		t.Errorf("CT^2_1(v1) = %d, want 3", got)
	}
	if got := ix.CoreTime(v1, 2, 3); got != 5 {
		t.Errorf("CT^2_3(v1) = %d, want 5", got)
	}
	// k beyond kmax is infinite; k=0 is trivially immediate.
	if got := ix.CoreTime(v1, 3, 1); got != tgraph.InfTime {
		t.Errorf("CT^3 = %d, want inf", got)
	}
	if ix.CoreTime(v1, 0, 1) == tgraph.InfTime {
		t.Error("k=0 should never be infinite")
	}
	if ix.Size() <= 0 {
		t.Error("index has no labels")
	}
}

func randomGraph(r *rand.Rand, n, m, tmax int) *tgraph.Graph {
	var b tgraph.Builder
	for i := 0; i < m; i++ {
		u := r.Intn(n)
		v := r.Intn(n)
		for v == u {
			v = r.Intn(n)
		}
		b.Add(int64(u), int64(v), int64(1+r.Intn(tmax)))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// TestHistoricalQueriesMatchPeeler cross-checks every historical query kind
// against from-scratch peeling on random graphs: membership, vertex sets,
// edge sets, and core numbers, across all k and many windows.
func TestHistoricalQueriesMatchPeeler(t *testing.T) {
	r := rand.New(rand.NewSource(77))
	iters := 25
	if testing.Short() {
		iters = 6
	}
	for it := 0; it < iters; it++ {
		g := randomGraph(r, 5+r.Intn(10), 10+r.Intn(60), 2+r.Intn(8))
		ix, err := phc.Build(g, g.FullWindow())
		if err != nil {
			t.Fatal(err)
		}
		p := kcore.NewPeeler(g)
		for trial := 0; trial < 12; trial++ {
			ts := tgraph.TS(1 + r.Intn(int(g.TMax())))
			te := ts + tgraph.TS(r.Intn(int(g.TMax()-ts)+1))
			w := tgraph.Window{Start: ts, End: te}
			k := 1 + r.Intn(ix.KMax+1)

			res := p.CoreOfWindow(k, w)
			for u := tgraph.VID(0); u < tgraph.VID(g.NumVertices()); u++ {
				if got := ix.InCore(u, k, w); got != res.InCore[u] {
					t.Fatalf("iter %d: InCore(v%d, k=%d, %v) = %v, peeler says %v", it, u, k, w, got, res.InCore[u])
				}
			}
			verts := ix.CoreVertices(g, k, w, nil)
			if len(verts) != res.Vertices {
				t.Fatalf("iter %d: CoreVertices returned %d, want %d", it, len(verts), res.Vertices)
			}
			wantEdges := p.CoreEdgesOfWindow(k, w, nil)
			gotEdges := ix.CoreEdges(g, k, w, nil)
			if len(gotEdges) != len(wantEdges) {
				t.Fatalf("iter %d: CoreEdges returned %d, want %d", it, len(gotEdges), len(wantEdges))
			}
			for i := range wantEdges {
				if gotEdges[i] != wantEdges[i] {
					t.Fatalf("iter %d: edge lists differ at %d", it, i)
				}
			}
		}
		// Core numbers against a per-window decomposition.
		for trial := 0; trial < 4; trial++ {
			ts := tgraph.TS(1 + r.Intn(int(g.TMax())))
			te := ts + tgraph.TS(r.Intn(int(g.TMax()-ts)+1))
			w := tgraph.Window{Start: ts, End: te}
			want, _ := kcore.Decompose(g, w)
			for u := tgraph.VID(0); u < tgraph.VID(g.NumVertices()); u++ {
				if got := ix.CoreNumber(u, w); got != int(want[u]) {
					t.Fatalf("iter %d: CoreNumber(v%d, %v) = %d, want %d", it, u, w, got, want[u])
				}
			}
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	g := randomGraph(r, 12, 80, 9)
	ix, err := phc.Build(g, g.FullWindow())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := phc.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.KMax != ix.KMax || back.Range != ix.Range || back.Size() != ix.Size() {
		t.Fatalf("round trip changed shape: %d/%v/%d vs %d/%v/%d",
			back.KMax, back.Range, back.Size(), ix.KMax, ix.Range, ix.Size())
	}
	for u := tgraph.VID(0); u < tgraph.VID(g.NumVertices()); u++ {
		for k := 1; k <= ix.KMax; k++ {
			for ts := tgraph.TS(1); ts <= g.TMax(); ts++ {
				if back.CoreTime(u, k, ts) != ix.CoreTime(u, k, ts) {
					t.Fatalf("round trip changed CT^%d_%d(v%d)", k, ts, u)
				}
			}
		}
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	if _, err := phc.Decode(strings.NewReader("BOGUS!")); err == nil {
		t.Error("bad magic accepted")
	}
	g := paperex.Graph()
	ix, err := phc.Build(g, g.FullWindow())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	// Truncated stream.
	data := buf.Bytes()
	if _, err := phc.Decode(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("truncated stream accepted")
	}
}

func TestBuildValidation(t *testing.T) {
	g := paperex.Graph()
	if _, err := phc.Build(g, tgraph.Window{Start: 1, End: 99}); err == nil {
		t.Error("window past tmax accepted")
	}
	if _, err := phc.Build(g, tgraph.Window{Start: 5, End: 2}); err == nil {
		t.Error("inverted window accepted")
	}
}

func TestQueryOutsideRange(t *testing.T) {
	g := paperex.Graph()
	ix, err := phc.Build(g, tgraph.Window{Start: 2, End: 5})
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := g.VertexOf(1)
	if ix.InCore(v1, 2, tgraph.Window{Start: 1, End: 7}) {
		t.Error("window outside index range answered true")
	}
	if got := ix.CoreVertices(g, 2, tgraph.Window{Start: 1, End: 7}, nil); len(got) != 0 {
		t.Error("CoreVertices answered outside range")
	}
}
