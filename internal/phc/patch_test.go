package phc_test

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math/rand"
	"testing"

	"temporalkcore/internal/phc"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// randomStream generates a time-ordered edge stream appendable at any
// split point (times advance by 0-1 per edge).
func randomStream(r *rand.Rand, n, m int) []tgraph.RawEdge {
	t := int64(1)
	edges := make([]tgraph.RawEdge, 0, m)
	for i := 0; i < m; i++ {
		u := int64(r.Intn(n))
		v := int64(r.Intn(n))
		for v == u {
			v = int64(r.Intn(n))
		}
		t += int64(r.Intn(2))
		edges = append(edges, tgraph.RawEdge{U: u, V: v, Time: t})
	}
	return edges
}

func encodeBytes(t *testing.T, ix *phc.Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := ix.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestPatchMatchesBuild appends a time-suffix to random graphs and requires
// the patched index to be byte-identical (labels, ranges, fingerprint — the
// whole serial image) to a from-scratch build on the grown graph.
func TestPatchMatchesBuild(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	iters := 30
	if testing.Short() {
		iters = 8
	}
	patchedRuns := 0
	for it := 0; it < iters; it++ {
		edges := randomStream(r, 5+r.Intn(10), 40+r.Intn(80))
		cut := len(edges) * 3 / 4
		g, err := tgraph.FromRawEdges(edges[:cut])
		if err != nil {
			continue
		}
		old, err := phc.Build(g, g.FullWindow())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.Append(edges[cut:]); err != nil {
			t.Fatal(err)
		}
		w := g.FullWindow()
		nix, patched, err := old.Patch(g, w, tgraph.TS(old.Fp.TMax))
		if err != nil {
			t.Fatal(err)
		}
		if patched {
			patchedRuns++
		}
		rebuilt, err := phc.Build(g, w)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encodeBytes(t, nix), encodeBytes(t, rebuilt)) {
			t.Fatalf("iter %d (patched=%v): patched index differs from rebuilt", it, patched)
		}
		if !nix.Fp.Matches(g) {
			t.Fatalf("iter %d: patched fingerprint does not match the grown graph", it)
		}
	}
	if patchedRuns == 0 {
		t.Fatal("no iteration exercised the incremental path (all fell back to Build)")
	}
}

// TestPatchFallback drives the cases where the oracle proves nothing — a
// dirty watermark at the window start, and a window starting before the
// indexed range — and requires a correct full-build result with
// patched == false.
func TestPatchFallback(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	edges := randomStream(r, 9, 70)
	cut := len(edges) * 3 / 4
	g, err := tgraph.FromRawEdges(edges[:cut])
	if err != nil {
		t.Fatal(err)
	}
	full := g.FullWindow()
	old, err := phc.Build(g, full)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Append(edges[cut:]); err != nil {
		t.Fatal(err)
	}
	w := g.FullWindow()
	rebuilt, err := phc.Build(g, w)
	if err != nil {
		t.Fatal(err)
	}

	// Watermark at the window start: zero clean prefix.
	nix, patched, err := old.Patch(g, w, w.Start)
	if err != nil {
		t.Fatal(err)
	}
	if patched {
		t.Error("zero clean prefix reported patched")
	}
	if !bytes.Equal(encodeBytes(t, nix), encodeBytes(t, rebuilt)) {
		t.Error("fallback result differs from rebuilt")
	}

	// Oracle over a narrower range than the query window: the clean
	// overlap is reused (partial-range patch) and the result still matches
	// a rebuild exactly.
	if full.End < 4 {
		t.Fatalf("stream too short for sub-range test (tmax %d)", full.End)
	}
	sub, err := phc.Build(g, tgraph.Window{Start: 3, End: full.End})
	if err != nil {
		t.Fatal(err)
	}
	nix, patched, err = sub.Patch(g, w, tgraph.TS(sub.Fp.TMax))
	if err != nil {
		t.Fatal(err)
	}
	if !patched {
		t.Error("sub-range oracle with a large clean overlap fell back to Build")
	}
	if !bytes.Equal(encodeBytes(t, nix), encodeBytes(t, rebuilt)) {
		t.Error("sub-range patch differs from rebuilt")
	}

	// A sub-range oracle dirty from its own first covered start proves
	// nothing: fallback.
	nix, patched, err = sub.Patch(g, w, 3)
	if err != nil {
		t.Fatal(err)
	}
	if patched {
		t.Error("sub-range oracle with no clean overlap reported patched")
	}
	if !bytes.Equal(encodeBytes(t, nix), encodeBytes(t, rebuilt)) {
		t.Error("sub-range fallback differs from rebuilt")
	}

	// Invalid window is rejected like Build.
	if _, _, err := old.Patch(g, tgraph.Window{Start: 1, End: g.TMax() + 5}, w.Start); err == nil {
		t.Error("window past tmax accepted")
	}
}

// TestPatchStopCancels requires an already-fired stop hook to abandon the
// patch with vct.ErrStopped on both the incremental and the fallback path.
func TestPatchStopCancels(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	edges := randomStream(r, 9, 70)
	cut := len(edges) * 3 / 4
	g, err := tgraph.FromRawEdges(edges[:cut])
	if err != nil {
		t.Fatal(err)
	}
	old, err := phc.Build(g, g.FullWindow())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Append(edges[cut:]); err != nil {
		t.Fatal(err)
	}
	w := g.FullWindow()
	fired := func() bool { return true }
	if _, _, err := old.PatchStop(g, w, tgraph.TS(old.Fp.TMax), fired); err != vct.ErrStopped {
		t.Errorf("incremental path: err = %v, want ErrStopped", err)
	}
	if _, _, err := old.PatchStop(g, w, w.Start, fired); err != vct.ErrStopped {
		t.Errorf("fallback path: err = %v, want ErrStopped", err)
	}
	if _, err := phc.BuildStop(g, w, fired); err != vct.ErrStopped {
		t.Errorf("BuildStop: err = %v, want ErrStopped", err)
	}
}

// TestMemBytes: the serving-cache cost estimate is positive and grows
// with the label count.
func TestMemBytes(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	g := tgraphFrom(t, randomStream(r, 10, 60))
	ix, err := phc.Build(g, g.FullWindow())
	if err != nil {
		t.Fatal(err)
	}
	if ix.MemBytes() <= 0 {
		t.Fatalf("MemBytes = %d, want > 0", ix.MemBytes())
	}
	if ix.MemBytes() < int64(ix.Size()) {
		t.Fatalf("MemBytes %d smaller than one byte per label (%d labels)", ix.MemBytes(), ix.Size())
	}
	if v, _ := g.VertexOf(0); !ix.InCore(v, 0, g.FullWindow()) {
		t.Error("k=0 membership should be universally true")
	}
}

func tgraphFrom(t *testing.T, edges []tgraph.RawEdge) *tgraph.Graph {
	t.Helper()
	g, err := tgraph.FromRawEdges(edges)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestDecodeRejectsBadHeader flips individual header fields of a valid
// stream: an implausible kmax and each corrupt-fingerprint guard must be
// rejected rather than half-decoded.
func TestDecodeRejectsBadHeader(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	g := tgraphFrom(t, randomStream(r, 8, 50))
	ix, err := phc.Build(g, g.FullWindow())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	// Header layout: 6-byte magic, then 7 little-endian int64 fields
	// {Range.Start, Range.End, KMax, Vertices, Edges, TMax, MutSeq}.
	mutate := func(field int, v uint64) []byte {
		b := append([]byte(nil), good...)
		binary.LittleEndian.PutUint64(b[6+8*field:], v)
		return b
	}
	cases := map[string][]byte{
		"implausible kmax":  mutate(2, 1<<30),
		"negative vertices": mutate(3, ^uint64(0)),
		"negative edges":    mutate(4, ^uint64(0)),
		"tmax below range":  mutate(5, 0),
	}
	for name, data := range cases {
		if _, err := phc.Decode(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: corrupt header accepted", name)
		}
	}
	if _, err := phc.Decode(bytes.NewReader(good)); err != nil {
		t.Fatalf("pristine stream rejected: %v", err)
	}
}

// failWriter errors once its byte budget is exhausted, driving Encode's
// error returns (the index must be larger than bufio's buffer for the
// failure to surface mid-encode).
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	if len(p) > w.n {
		n := w.n
		w.n = 0
		return n, errors.New("writer full")
	}
	w.n -= len(p)
	return len(p), nil
}

func TestEncodeSurfacesWriterErrors(t *testing.T) {
	r := rand.New(rand.NewSource(6))
	g := tgraphFrom(t, randomStream(r, 20, 600))
	ix, err := phc.Build(g, g.FullWindow())
	if err != nil {
		t.Fatal(err)
	}
	var full bytes.Buffer
	if err := ix.Encode(&full); err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int{0, 1, full.Len() / 2, full.Len() - 1} {
		if err := ix.Encode(&failWriter{n: budget}); err == nil {
			t.Errorf("budget %d: write error swallowed", budget)
		}
	}
}
