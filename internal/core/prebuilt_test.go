package core_test

import (
	"context"
	"testing"

	"temporalkcore/internal/core"
	"temporalkcore/internal/enum"
	"temporalkcore/internal/paperex"
	"temporalkcore/internal/vct"
)

// TestEnumeratePrebuiltMatchesQuery pins the prebuilt-table execution the
// serving cache uses: enumerating cached tables must produce exactly the
// cores of a full Query, with CoreTime zero.
func TestEnumeratePrebuiltMatchesQuery(t *testing.T) {
	g := paperex.Graph()
	w := g.FullWindow()
	ix, ecs, err := vct.Build(g, 2, w)
	if err != nil {
		t.Fatal(err)
	}

	var want enum.CollectSink
	if _, err := core.Query(g, 2, w, &want, core.Options{}); err != nil {
		t.Fatal(err)
	}

	var got enum.CollectSink
	s := core.GetScratch()
	defer core.PutScratch(s)
	st, err := core.EnumeratePrebuilt(g, ix, ecs, &got, core.Options{}, s)
	if err != nil {
		t.Fatal(err)
	}
	if st.CoreTime != 0 {
		t.Errorf("prebuilt execution reported CoreTime %v, want 0", st.CoreTime)
	}
	if st.VCTSize != ix.Size() || st.ECSSize != ecs.Size() {
		t.Errorf("sizes (%d,%d) != tables (%d,%d)", st.VCTSize, st.ECSSize, ix.Size(), ecs.Size())
	}
	enum.SortCores(want.Cores)
	enum.SortCores(got.Cores)
	if !enum.EqualCoreSets(want.Cores, got.Cores) {
		t.Errorf("prebuilt enumeration: %d cores != %d from Query", len(got.Cores), len(want.Cores))
	}

	// Validation and cancellation paths.
	if _, err := core.EnumeratePrebuilt(nil, ix, ecs, &got, core.Options{}, s); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := core.EnumeratePrebuilt(g, nil, ecs, &got, core.Options{}, s); err == nil {
		t.Error("nil index accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := core.EnumeratePrebuilt(g, ix, ecs, &got, core.Options{Ctx: ctx}, s); err != context.Canceled {
		t.Errorf("pre-cancelled ctx returned %v, want context.Canceled", err)
	}
}

// TestQueryBatchPrebuilt pins the batch integration: items carrying
// prebuilt tables answer identically to items that build their own, and
// only AlgoEnum consumes them.
func TestQueryBatchPrebuilt(t *testing.T) {
	g := paperex.Graph()
	w := g.FullWindow()
	ix, ecs, err := vct.Build(g, 2, w)
	if err != nil {
		t.Fatal(err)
	}
	queries := []core.BatchQuery{
		{K: 2, W: w},                   // builds its own tables
		{K: 2, W: w, Ix: ix, Ecs: ecs}, // prebuilt fast path
		{K: 2, W: w, Ix: ix, Ecs: ecs, Opts: core.Options{Algorithm: core.AlgoEnumBase}}, // ignored: not AlgoEnum
	}
	sinks := make([]enum.CollectSink, len(queries))
	res := core.QueryBatch(context.Background(), g, queries, 2, func(i int) enum.Sink { return &sinks[i] })
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		enum.SortCores(sinks[i].Cores)
	}
	if res[0].Stats.CoreTime <= 0 {
		t.Error("self-building item reported zero CoreTime")
	}
	if res[1].Stats.CoreTime != 0 {
		t.Errorf("prebuilt item reported CoreTime %v, want 0", res[1].Stats.CoreTime)
	}
	if res[2].Stats.CoreTime <= 0 {
		t.Error("EnumBase item consumed prebuilt tables (CoreTime 0)")
	}
	for i := 1; i < len(sinks); i++ {
		if !enum.EqualCoreSets(sinks[0].Cores, sinks[i].Cores) {
			t.Errorf("item %d cores differ from the self-building item", i)
		}
	}
}
