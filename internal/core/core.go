// Package core wires the paper's framework together (Figure 3): it runs the
// CoreTime phase (vertex core times + edge core window skylines, package
// vct) and then one of the three enumeration algorithms — the optimal Enum,
// the straightforward EnumBase, or the OTCD baseline — over a query
// (k, [Ts, Te]), reporting the intermediate sizes the paper analyses
// (|VCT|, |ECS|, |R|). Both phases run on pooled Scratch state, and
// QueryBatch spreads many queries over a worker pool with one Scratch per
// worker.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"temporalkcore/internal/enum"
	"temporalkcore/internal/otcd"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// Scratch bundles the reusable working state of both query phases — the
// CoreTime builder's vectors and the enumerator's node arena — so one
// warmed-up Scratch makes a whole repeated (k, window) query allocate close
// to nothing. The zero value is ready; a Scratch serves one query at a time.
type Scratch struct {
	vct  vct.Scratch
	enum enum.Scratch
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch takes a Scratch from the shared pool.
//
// tkc:pool-get
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns a Scratch to the shared pool; the caller must not use
// it afterwards.
//
// tkc:pool-put
func PutScratch(s *Scratch) { scratchPool.Put(s) }

// Algorithm selects the enumeration strategy.
type Algorithm int

const (
	// AlgoEnum is the paper's optimal algorithm (Algorithms 2+4+5),
	// O(|VCT|·deg_avg + |R|).
	AlgoEnum Algorithm = iota
	// AlgoEnumBase is the straightforward method (Algorithms 2+3),
	// O(|VCT|·deg_avg + tmax² + dedup).
	AlgoEnumBase
	// AlgoOTCD is the decremental state-of-the-art baseline.
	AlgoOTCD
)

// String implements fmt.Stringer.
func (a Algorithm) String() string {
	switch a {
	case AlgoEnum:
		return "Enum"
	case AlgoEnumBase:
		return "EnumBase"
	case AlgoOTCD:
		return "OTCD"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Options configures a query run.
type Options struct {
	Algorithm Algorithm
	// EnumBase options.
	HashOnlyDedup bool
	// OTCD options.
	OTCD otcd.Options
	// Stop, when non-nil, imposes a time limit on the quadratic algorithms
	// (EnumBase, OTCD); it is polled once per start time.
	Stop func() bool
	// Ctx, when non-nil, cancels the whole query: both the CoreTime settle
	// loop and the enumeration poll it with a bounded stride and the query
	// returns Ctx.Err(). A nil Ctx (the zero value) never cancels.
	Ctx context.Context
}

// StopFromCtx converts a context into a poll hook for the stride-gated
// cancellation checks of the engines, or nil when the context can never be
// cancelled. Shared by every execution layer so the polling semantics live
// in one place.
func StopFromCtx(ctx context.Context) func() bool {
	if ctx == nil {
		return nil
	}
	done := ctx.Done()
	if done == nil {
		return nil
	}
	return func() bool {
		select {
		case <-done:
			return true
		default:
			return false
		}
	}
}

// mergeStop combines two optional poll hooks.
func mergeStop(a, b func() bool) func() bool {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	return func() bool { return a() || b() }
}

// Stats reports per-phase measurements of one query run.
type Stats struct {
	VCTSize  int // |VCT|: vertex core time index entries
	ECSSize  int // |ECS|: minimal core windows over all edges
	CoreTime time.Duration
	EnumTime time.Duration
	Stopped  bool // the sink ended the enumeration early
}

// Query validates and runs a time-range k-core query, streaming every
// distinct temporal k-core to sink. Working state is drawn from the shared
// scratch pool; QueryWith accepts caller-owned state instead.
func Query(g *tgraph.Graph, k int, w tgraph.Window, sink enum.Sink, opts Options) (Stats, error) {
	s := GetScratch()
	defer PutScratch(s)
	return QueryWith(g, k, w, sink, opts, s)
}

// QueryWith is Query running entirely on the caller's Scratch, so repeated
// queries reuse one allocation high-water mark. Each concurrent query needs
// its own Scratch (see QueryBatch).
func QueryWith(g *tgraph.Graph, k int, w tgraph.Window, sink enum.Sink, opts Options, s *Scratch) (Stats, error) {
	var st Stats
	if g == nil {
		return st, fmt.Errorf("core: nil graph")
	}
	if k < 1 {
		return st, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	if !w.Valid() || w.End > g.TMax() {
		return st, fmt.Errorf("core: window [%d,%d] outside graph range [1,%d]", w.Start, w.End, g.TMax())
	}
	if opts.Ctx != nil {
		if err := opts.Ctx.Err(); err != nil {
			return st, err
		}
	}
	cancel := StopFromCtx(opts.Ctx)

	if opts.Algorithm == AlgoOTCD {
		oo := opts.OTCD
		if oo.Stop == nil {
			oo.Stop = opts.Stop
		}
		oo.Stop = mergeStop(oo.Stop, cancel)
		start := time.Now()
		ok := otcd.Enumerate(g, k, w, sink, oo)
		st.EnumTime = time.Since(start)
		st.Stopped = !ok
		if err := ctxErr(opts.Ctx); err != nil {
			return st, err
		}
		return st, nil
	}

	start := time.Now()
	ix, ecs, err := vct.BuildScratchStop(g, k, w, &s.vct, cancel)
	if err != nil {
		if errors.Is(err, vct.ErrStopped) {
			if cerr := ctxErr(opts.Ctx); cerr != nil {
				err = cerr
			}
		}
		return st, err
	}
	st.CoreTime = time.Since(start)
	st.VCTSize = ix.Size()
	st.ECSSize = ecs.Size()

	start = time.Now()
	var ok bool
	switch opts.Algorithm {
	case AlgoEnum:
		var cancelled bool
		ok, cancelled = enum.EnumerateStop(g, ecs, sink, &s.enum, cancel)
		if cancelled {
			st.EnumTime = time.Since(start)
			if err := ctxErr(opts.Ctx); err != nil {
				return st, err
			}
		}
	case AlgoEnumBase:
		ok = enum.EnumerateBase(g, ecs, sink, enum.BaseOptions{HashOnlyDedup: opts.HashOnlyDedup, Stop: mergeStop(opts.Stop, cancel)})
		if err := ctxErr(opts.Ctx); err != nil {
			st.EnumTime = time.Since(start)
			return st, err
		}
	default:
		return st, fmt.Errorf("core: unknown algorithm %v", opts.Algorithm)
	}
	st.EnumTime = time.Since(start)
	st.Stopped = !ok
	return st, nil
}

// EnumeratePrebuilt runs only the enumeration phase of a query against
// prebuilt CoreTime tables — a serving-cache entry, or any immutable
// (Index, ECS) pair built for exactly this (g, k, w) — so repeat queries
// pay O(lookup + |R|) instead of the CoreTime phase. Stats.CoreTime stays
// zero: the build cost was paid by whoever produced the tables. Only the
// optimal AlgoEnum consumes prebuilt tables.
func EnumeratePrebuilt(g *tgraph.Graph, ix *vct.Index, ecs *vct.ECS, sink enum.Sink, opts Options, s *Scratch) (Stats, error) {
	var st Stats
	if g == nil {
		return st, fmt.Errorf("core: nil graph")
	}
	if ix == nil || ecs == nil {
		return st, fmt.Errorf("core: nil prebuilt tables")
	}
	if err := ctxErr(opts.Ctx); err != nil {
		return st, err
	}
	st.VCTSize = ix.Size()
	st.ECSSize = ecs.Size()
	start := time.Now()
	ok, cancelled := enum.EnumerateStop(g, ecs, sink, &s.enum, StopFromCtx(opts.Ctx))
	st.EnumTime = time.Since(start)
	if cancelled {
		if err := ctxErr(opts.Ctx); err != nil {
			return st, err
		}
	}
	st.Stopped = !ok
	return st, nil
}

// ctxErr is ctx.Err() tolerating a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
