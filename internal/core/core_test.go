package core_test

import (
	"testing"

	"temporalkcore/internal/core"
	"temporalkcore/internal/enum"
	"temporalkcore/internal/paperex"
	"temporalkcore/internal/tgraph"
)

func TestQueryAllAlgorithmsAgree(t *testing.T) {
	g := paperex.Graph()
	w := g.FullWindow()
	var ref []enum.Core
	for _, algo := range []core.Algorithm{core.AlgoEnum, core.AlgoEnumBase, core.AlgoOTCD} {
		var sink enum.CollectSink
		st, err := core.Query(g, 2, w, &sink, core.Options{Algorithm: algo})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if st.Stopped {
			t.Fatalf("%v stopped", algo)
		}
		enum.SortCores(sink.Cores)
		if ref == nil {
			ref = sink.Cores
			continue
		}
		if !enum.EqualCoreSets(ref, sink.Cores) {
			t.Errorf("%v disagrees with Enum: %d vs %d cores", algo, len(sink.Cores), len(ref))
		}
	}
}

func TestQueryStats(t *testing.T) {
	g := paperex.Graph()
	var sink enum.CountSink
	st, err := core.Query(g, 2, g.FullWindow(), &sink, core.Options{Algorithm: core.AlgoEnum})
	if err != nil {
		t.Fatal(err)
	}
	// Sizes of the paper example: Table I has 24 entries (corrected), and
	// Table II has 18 windows.
	if st.VCTSize != 24 {
		t.Errorf("|VCT| = %d, want 24", st.VCTSize)
	}
	if st.ECSSize != 18 {
		t.Errorf("|ECS| = %d, want 18", st.ECSSize)
	}
	if sink.Cores == 0 || sink.EdgeTotal == 0 {
		t.Errorf("no results counted: %+v", sink)
	}
}

func TestQueryValidation(t *testing.T) {
	g := paperex.Graph()
	var sink enum.CountSink
	if _, err := core.Query(nil, 2, g.FullWindow(), &sink, core.Options{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := core.Query(g, 0, g.FullWindow(), &sink, core.Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := core.Query(g, 2, tgraph.Window{Start: 0, End: 3}, &sink, core.Options{}); err == nil {
		t.Error("start 0 accepted")
	}
	if _, err := core.Query(g, 2, tgraph.Window{Start: 1, End: 100}, &sink, core.Options{}); err == nil {
		t.Error("end beyond tmax accepted")
	}
	if _, err := core.Query(g, 2, g.FullWindow(), &sink, core.Options{Algorithm: core.Algorithm(99)}); err == nil {
		t.Error("bogus algorithm accepted")
	}
}

func TestStopPropagates(t *testing.T) {
	g := paperex.Graph()
	var sink enum.CountSink
	stop := func() bool { return true }
	for _, algo := range []core.Algorithm{core.AlgoEnumBase, core.AlgoOTCD} {
		st, err := core.Query(g, 2, g.FullWindow(), &sink, core.Options{Algorithm: algo, Stop: stop})
		if err != nil {
			t.Fatal(err)
		}
		if !st.Stopped {
			t.Errorf("%v ignored Stop", algo)
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	for algo, want := range map[core.Algorithm]string{
		core.AlgoEnum:      "Enum",
		core.AlgoEnumBase:  "EnumBase",
		core.AlgoOTCD:      "OTCD",
		core.Algorithm(42): "Algorithm(42)",
	} {
		if got := algo.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(algo), got, want)
		}
	}
}
