package core

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"temporalkcore/internal/enum"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// BatchQuery is one (k, window) item of a batch run. G, when non-nil,
// overrides the batch-wide graph for this item — the hook that lets one
// batch mix requests pinned to different frozen epochs of the same graph.
//
// Ix and Ecs, when both non-nil, are prebuilt CoreTime tables for exactly
// (G, K, W) — typically a serving-cache entry — and the item skips the
// CoreTime phase entirely, paying only the enumeration. Prebuilt tables
// apply to AlgoEnum items only (OTCD has no CoreTime phase; EnumBase runs
// its own dedup pipeline) and must stay immutable for the batch's
// duration.
//
// Resolve, when non-nil (and Ix/Ecs are not already set), is called by the
// worker that claims the item to obtain its tables — the serving cache's
// hook: a hit returns instantly, a miss builds under the cache's
// singleflight so identical items in the batch (and concurrent executions
// outside it) share one build while workers keep pipelining other items.
// Returning an error (or nil tables) falls back to the item building its
// own tables via the ordinary engine.
type BatchQuery struct {
	G    *tgraph.Graph
	K    int
	W    tgraph.Window
	Opts Options

	Ix  *vct.Index
	Ecs *vct.ECS

	Resolve func(ctx context.Context) (*vct.Index, *vct.ECS, error)
}

// BatchResult is the outcome of one batch item.
type BatchResult struct {
	Stats Stats
	Err   error
	// Cancelled is true when the batch context was cancelled before this
	// item completed: either it never ran (Stats is zero) or it was cut
	// mid-query (its sink may have received a partial prefix of results).
	// Err carries the context error in both cases.
	Cancelled bool
}

// QueryBatch executes many time-range k-core queries concurrently across a
// pool of workers, each with its own pooled Scratch, so cross-query
// parallelism costs no per-query setup allocations. sinkFor(i) must return
// the sink for queries[i]; sinks of different items are used concurrently,
// so they must not share mutable state unless synchronised. Results arrive
// at the index of their query. parallelism <= 0 means GOMAXPROCS.
//
// ctx cancels the batch: workers stop claiming new queries, the running
// queries cancel at their next poll stride, and every item that did not
// complete reports Cancelled with Err = ctx.Err(). Items finished before
// the cancellation keep their results, so the batch returns partial work
// rather than discarding it. A nil ctx never cancels.
func QueryBatch(ctx context.Context, g *tgraph.Graph, queries []BatchQuery, parallelism int, sinkFor func(int) enum.Sink) []BatchResult {
	res := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return res
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}

	done := make([]atomic.Bool, len(queries))
	var next atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < parallelism; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := GetScratch()
			defer PutScratch(s)
			for {
				if ctx != nil && ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				q := queries[i]
				if q.Opts.Ctx == nil {
					q.Opts.Ctx = ctx
				}
				qg := q.G
				if qg == nil {
					qg = g
				}
				if q.Ix == nil && q.Resolve != nil && q.Opts.Algorithm == AlgoEnum {
					if ix, ecs, err := q.Resolve(q.Opts.Ctx); err == nil && ix != nil && ecs != nil {
						q.Ix, q.Ecs = ix, ecs
					}
					// On error (typically cancellation) fall through: the
					// ordinary engine re-checks the context and reports the
					// cancellation with the standard batch semantics.
				}
				if q.Ix != nil && q.Ecs != nil && q.Opts.Algorithm == AlgoEnum {
					res[i].Stats, res[i].Err = EnumeratePrebuilt(qg, q.Ix, q.Ecs, sinkFor(i), q.Opts, s)
				} else {
					res[i].Stats, res[i].Err = QueryWith(qg, q.K, q.W, sinkFor(i), q.Opts, s)
				}
				if res[i].Err != nil && ctx != nil && res[i].Err == ctx.Err() {
					res[i].Cancelled = true
				}
				done[i].Store(true)
			}
		}()
	}
	wg.Wait()

	// Items no worker reached before the cancellation.
	if ctx != nil {
		if err := ctx.Err(); err != nil {
			for i := range res {
				if !done[i].Load() {
					res[i].Err = err
					res[i].Cancelled = true
				}
			}
		}
	}
	return res
}
