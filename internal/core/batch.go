package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"temporalkcore/internal/enum"
	"temporalkcore/internal/tgraph"
)

// BatchQuery is one (k, window) item of a batch run.
type BatchQuery struct {
	K    int
	W    tgraph.Window
	Opts Options
}

// BatchResult is the outcome of one batch item.
type BatchResult struct {
	Stats Stats
	Err   error
}

// QueryBatch executes many time-range k-core queries concurrently across a
// pool of workers, each with its own pooled Scratch, so cross-query
// parallelism costs no per-query setup allocations. sinkFor(i) must return
// the sink for queries[i]; sinks of different items are used concurrently,
// so they must not share mutable state unless synchronised. Results arrive
// at the index of their query. parallelism <= 0 means GOMAXPROCS.
func QueryBatch(g *tgraph.Graph, queries []BatchQuery, parallelism int, sinkFor func(int) enum.Sink) []BatchResult {
	res := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return res
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(queries) {
		parallelism = len(queries)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < parallelism; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := GetScratch()
			defer PutScratch(s)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				q := queries[i]
				res[i].Stats, res[i].Err = QueryWith(g, q.K, q.W, sinkFor(i), q.Opts, s)
			}
		}()
	}
	wg.Wait()
	return res
}
