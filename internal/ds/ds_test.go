package ds_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"temporalkcore/internal/ds"
)

func TestSigToggleInverse(t *testing.T) {
	var s ds.Sig128
	s.Toggle(42)
	if s.Zero() {
		t.Error("signature of {42} is zero")
	}
	s.Toggle(42)
	if !s.Zero() {
		t.Error("toggle twice did not cancel")
	}
}

func TestSigOrderIndependent(t *testing.T) {
	a := ds.SigOf([]int32{1, 2, 3, 100})
	b := ds.SigOf([]int32{100, 3, 2, 1})
	if a != b {
		t.Error("signature depends on order")
	}
	c := ds.SigOf([]int32{1, 2, 3})
	if a == c {
		t.Error("different sets collide")
	}
}

func TestQuickSigIncremental(t *testing.T) {
	f := func(items []int32) bool {
		seen := map[int32]bool{}
		var uniq []int32
		for _, it := range items {
			if !seen[it] {
				seen[it] = true
				uniq = append(uniq, it)
			}
		}
		var inc ds.Sig128
		for _, it := range uniq {
			inc.Toggle(it)
		}
		return inc == ds.SigOf(uniq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSigDistinctSets(t *testing.T) {
	// Random distinct small sets should essentially never collide.
	r := rand.New(rand.NewSource(5))
	seen := map[ds.Sig128][]int32{}
	for i := 0; i < 5000; i++ {
		n := 1 + r.Intn(8)
		set := map[int32]bool{}
		for len(set) < n {
			set[int32(r.Intn(1<<20))] = true
		}
		var items []int32
		for it := range set {
			items = append(items, it)
		}
		sig := ds.SigOf(items)
		if prev, ok := seen[sig]; ok && !sameSet(prev, items) {
			t.Fatalf("collision between %v and %v", prev, items)
		}
		seen[sig] = items
	}
}

func sameSet(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[int32]bool{}
	for _, x := range a {
		m[x] = true
	}
	for _, x := range b {
		if !m[x] {
			return false
		}
	}
	return true
}

func TestQueueFIFO(t *testing.T) {
	var q ds.Queue
	for i := int32(0); i < 100; i++ {
		q.Push(i)
	}
	for i := int32(0); i < 100; i++ {
		if got := q.Pop(); got != i {
			t.Fatalf("pop %d, want %d", got, i)
		}
	}
	if q.Len() != 0 {
		t.Errorf("len = %d", q.Len())
	}
}

func TestQueueCompaction(t *testing.T) {
	var q ds.Queue
	// Interleave pushes and pops to force compaction.
	next, expect := int32(0), int32(0)
	for round := 0; round < 50; round++ {
		for i := 0; i < 100; i++ {
			q.Push(next)
			next++
		}
		for i := 0; i < 99; i++ {
			if got := q.Pop(); got != expect {
				t.Fatalf("pop %d, want %d", got, expect)
			}
			expect++
		}
	}
	for q.Len() > 0 {
		if got := q.Pop(); got != expect {
			t.Fatalf("drain pop %d, want %d", got, expect)
		}
		expect++
	}
	if expect != next {
		t.Errorf("drained %d items, pushed %d", expect, next)
	}
}

func TestQueueReset(t *testing.T) {
	var q ds.Queue
	q.Push(1)
	q.Push(2)
	q.Reset()
	if q.Len() != 0 {
		t.Errorf("len after reset = %d", q.Len())
	}
	q.Push(7)
	if q.Pop() != 7 {
		t.Error("queue broken after reset")
	}
}

func TestMix64NotIdentity(t *testing.T) {
	if ds.Mix64(0) == 0 && ds.Mix64(1) == 1 {
		t.Error("Mix64 looks like identity")
	}
	if ds.Mix64(12345) == ds.Mix64(12346) {
		t.Error("adjacent inputs collide")
	}
}

func TestGrowReusesCapacity(t *testing.T) {
	s := make([]int32, 8, 64)
	g := ds.Grow(s, 32)
	if len(g) != 32 {
		t.Fatalf("len = %d, want 32", len(g))
	}
	if &g[0] != &s[0] {
		t.Error("Grow within capacity reallocated")
	}
	g2 := ds.Grow(g, 128)
	if len(g2) != 128 {
		t.Fatalf("len = %d, want 128", len(g2))
	}
	if cap(g2) < 128 {
		t.Fatalf("cap = %d, want >= 128", cap(g2))
	}
	// Shrinking keeps the backing array.
	g3 := ds.Grow(g2, 4)
	if len(g3) != 4 || &g3[0] != &g2[0] {
		t.Error("Grow shrink reallocated")
	}
}

func TestGrowZeroClears(t *testing.T) {
	s := []int32{1, 2, 3, 4, 5, 6, 7, 8}
	g := ds.GrowZero(s[:8], 5)
	for i, v := range g {
		if v != 0 {
			t.Fatalf("g[%d] = %d after GrowZero, want 0", i, v)
		}
	}
	if &g[0] != &s[0] {
		t.Error("GrowZero within capacity reallocated")
	}
	// Growth path allocates fresh (and therefore zeroed) storage.
	g2 := ds.GrowZero(g, 1000)
	if len(g2) != 1000 {
		t.Fatalf("len = %d, want 1000", len(g2))
	}
	for i, v := range g2 {
		if v != 0 {
			t.Fatalf("g2[%d] = %d, want 0", i, v)
		}
	}
}

func TestGrowGenericTypes(t *testing.T) {
	type pair struct{ a, b int64 }
	p := ds.Grow([]pair(nil), 3)
	if len(p) != 3 {
		t.Fatalf("len = %d", len(p))
	}
	b := ds.GrowZero([]bool{true, true}, 2)
	if b[0] || b[1] {
		t.Error("GrowZero left true values")
	}
}
