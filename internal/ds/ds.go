// Package ds provides the small data structures shared by the temporal
// k-core algorithms: order-independent set signatures for deduplicating edge
// sets, and an int32 FIFO queue used by peeling cascades.
package ds

// Mix64 is the splitmix64 finaliser, a cheap high-quality 64-bit mixer.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix64b is a second, independent mixer (murmur3 finaliser with different
// stream constant) so signatures are effectively 128 bits wide.
func mix64b(x uint64) uint64 {
	x ^= 0x632be59bd9b4e019
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Sig128 is an order-independent 128-bit signature of a set of int32 items.
// Items are combined with XOR of two independent mixes, so the signature of
// a set can be maintained incrementally under insertion and deletion (XOR is
// its own inverse). Collisions between distinct sets are astronomically
// unlikely (~2^-128 per pair); exact comparisons are used in tests.
type Sig128 struct {
	Lo, Hi uint64
}

// Toggle adds item to the signature if absent, removes it if present.
func (s *Sig128) Toggle(item int32) {
	x := uint64(uint32(item))
	s.Lo ^= Mix64(x)
	s.Hi ^= mix64b(x)
}

// Zero reports whether the signature is the empty-set signature.
func (s Sig128) Zero() bool { return s.Lo == 0 && s.Hi == 0 }

// SigOf computes the signature of a set given as a slice (items must be
// distinct).
func SigOf(items []int32) Sig128 {
	var s Sig128
	for _, it := range items {
		s.Toggle(it)
	}
	return s
}

// Grow returns s with length n, reusing capacity when possible. The
// returned slice contents are unspecified; callers must fully overwrite
// them. It is the building block of the reusable scratch types that keep
// the repeated-query hot paths allocation-free.
func Grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// GrowZero returns s with length n and every element zeroed.
func GrowZero[T any](s []T, n int) []T {
	if cap(s) >= n {
		s = s[:n]
		clear(s)
		return s
	}
	return make([]T, n)
}

// Queue is a simple FIFO of int32 values backed by a growable ring-free
// slice: peeling cascades push each element at most once, so a head index
// with periodic compaction is enough and avoids modulo arithmetic.
type Queue struct {
	buf  []int32
	head int
}

// Push appends v.
func (q *Queue) Push(v int32) { q.buf = append(q.buf, v) }

// Pop removes and returns the oldest element. It panics when empty.
func (q *Queue) Pop() int32 {
	v := q.buf[q.head]
	q.head++
	if q.head > 1024 && q.head*2 >= len(q.buf) {
		n := copy(q.buf, q.buf[q.head:])
		q.buf = q.buf[:n]
		q.head = 0
	}
	return v
}

// Len returns the number of queued elements.
func (q *Queue) Len() int { return len(q.buf) - q.head }

// Reset empties the queue, retaining capacity.
func (q *Queue) Reset() {
	q.buf = q.buf[:0]
	q.head = 0
}
