// Package epochsclean exercises tkcepochsafety's negative space:
// read-only use of frozen views, mutating live values, and every accepted
// release discipline (defer, per-branch calls, ownership transfer,
// ok-false exemption) must produce no diagnostics.
package epochsclean

type view struct{ n int }

// tkc:frozensource
func freeze() *view { return &view{} }

// tkc:mutates
func (v *view) append(x int) { v.n += x }

// tkc:acquires
func pin() (*view, func(), bool) { return &view{}, func() {}, true }

func ReadsFrozen() int {
	v := freeze()
	return v.n
}

func MutatesLive() {
	v := &view{}
	v.append(1)
}

func DeferRelease() int {
	v, release, ok := pin()
	if !ok {
		return 0
	}
	defer release()
	return v.n
}

func ReleaseBothBranches(b bool) {
	_, release, ok := pin()
	if !ok {
		return
	}
	if b {
		release()
		return
	}
	release()
}

func TransferRelease() (func(), bool) {
	_, release, ok := pin()
	if !ok {
		return nil, false
	}
	return release, true
}

func PanicPathNotALeak(n int) {
	_, release, ok := pin()
	if !ok {
		return
	}
	if n > 0 {
		panic("invariant broken")
	}
	release()
}

type pinbox struct{ rel func() }

func StoreInLiteral() []pinbox {
	var out []pinbox
	_, release, ok := pin()
	if !ok {
		return out
	}
	out = append(out, pinbox{rel: release})
	return out
}

// tkc:mutates-frozen-ok: asserts the mutator rejects frozen receivers
func DeliberateRejectionProbe() {
	v := freeze()
	v.append(1)
}
