// Package epochs exercises tkcepochsafety diagnostics: frozen views
// reaching mutators, discarded release closures, and leaky release paths.
package epochs

type view struct{ n int }

// tkc:frozensource
func freeze() *view { return &view{} }

// tkc:mutates
func (v *view) append(x int) { v.n += x }

// tkc:acquires
func pin() (*view, func(), bool) { return &view{}, func() {}, true }

func MutatesFrozenLocal() {
	v := freeze()
	v.append(1) // want `append mutates a frozen epoch view`
}

func MutatesFrozenDirect() {
	freeze().append(2) // want `append mutates a frozen epoch view obtained directly`
}

func DiscardsRelease() bool {
	v, _, ok := pin() // want `release closure from pin discarded`
	_ = v
	return ok
}

func LeaksOnEarlyReturn(n int) {
	v, release, ok := pin() // want `release closure release from a tkc:acquires call may reach function exit`
	if !ok {
		return
	}
	if n > 0 {
		return
	}
	_ = v
	release()
}
