package epochsafety_test

import (
	"testing"

	"temporalkcore/internal/analysis/analyzertest"
	"temporalkcore/internal/analysis/epochsafety"
)

// TestFlagged proves the analyzer fires on frozen-view mutation (through
// a local and directly), discarded release closures, and release paths
// that leak on early return.
func TestFlagged(t *testing.T) {
	analyzertest.Run(t, ".", epochsafety.Analyzer, "epochs")
}

// TestClean proves read-only frozen use, live-value mutation, and every
// accepted release discipline (defer, per-branch, transfer, ok-false
// exemption) stay silent.
func TestClean(t *testing.T) {
	analyzertest.Run(t, ".", epochsafety.Analyzer, "epochsclean")
}
