// Package epochsafety implements the tkcepochsafety analyzer, the
// machine-checked form of the repository's MVCC epoch memory model: a
// frozen epoch (a copy-on-write snapshot sharing flat history arrays with
// the live graph) must never be mutated, and a refcounted epoch pin must
// be released on every path.
//
// Two function annotations drive it:
//
//	// tkc:frozensource
//
// marks a function or method whose first result is a frozen or pinned
// view (tgraph.Graph.Freeze, Graph.Latest, Graph.pinned, the epoch
// Guard's Acquire). Any value a caller obtains from such a function must
// never become the receiver of a method marked
//
//	// tkc:mutates
//
// (tgraph.Graph.Append and its segment-relocation helpers, the public
// Append). The flow is tracked per function through local variables and
// direct call chaining; cross-package annotation knowledge travels as
// analysis facts, so the public layer is checked against tgraph's
// annotations without any shared configuration.
//
//	// tkc:acquires [i]
//
// marks a function whose i-th result (default: the first func() result)
// is a release closure that must be called exactly once. The analyzer
// checks release-on-all-paths over the control-flow graph: every path
// from the acquisition must call the closure, defer it, or transfer
// ownership (return it, store it, pass it on). When the acquiring call
// also returns an ok bool, paths on which ok is false are exempt — the
// release closure is nil there by contract.
package epochsafety

import (
	"fmt"
	"go/ast"
	"go/types"
	"strconv"

	"temporalkcore/internal/analysis/directives"
	"temporalkcore/internal/analysis/noret"
	"temporalkcore/internal/xtools/go/analysis"
	"temporalkcore/internal/xtools/go/analysis/passes/ctrlflow"
	"temporalkcore/internal/xtools/go/analysis/passes/inspect"
	"temporalkcore/internal/xtools/go/ast/inspector"
	"temporalkcore/internal/xtools/go/cfg"
)

// FrozenSource marks a function whose first result is a frozen/pinned view.
type FrozenSource struct{}

// AFact marks FrozenSource as a serializable analysis fact.
func (*FrozenSource) AFact() {}

func (*FrozenSource) String() string { return "frozensource" }

// Mutator marks a function that mutates state frozen views share.
type Mutator struct{}

// AFact marks Mutator as a serializable analysis fact.
func (*Mutator) AFact() {}

func (*Mutator) String() string { return "mutates" }

// Acquires marks a function returning a release closure at result Result.
type Acquires struct{ Result int }

// AFact marks Acquires as a serializable analysis fact.
func (*Acquires) AFact() {}

func (a *Acquires) String() string { return fmt.Sprintf("acquires(%d)", a.Result) }

var Analyzer = &analysis.Analyzer{
	Name:      "tkcepochsafety",
	Doc:       "check that frozen epoch views are never mutated and epoch pins are released on all paths",
	Requires:  []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	FactTypes: []analysis.Fact{(*FrozenSource)(nil), (*Mutator)(nil), (*Acquires)(nil)},
	Run:       run,
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	// Pass 1: export annotation facts.
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		ds := directives.ForFunc(fd)
		if _, ok := directives.Find(ds, "frozensource"); ok {
			pass.ExportObjectFact(fn, &FrozenSource{})
		}
		if _, ok := directives.Find(ds, "mutates"); ok {
			pass.ExportObjectFact(fn, &Mutator{})
		}
		if d, ok := directives.Find(ds, "acquires"); ok {
			idx, found := -1, false
			if len(d.Args) == 1 {
				if i, err := strconv.Atoi(d.Args[0]); err == nil {
					idx, found = i, true
				}
			}
			if !found {
				idx, found = releaseResultIndex(fn)
			}
			if !found {
				pass.Reportf(fd.Pos(), "tkc:acquires on %s: no func() result to treat as the release closure", fn.Name())
				return
			}
			pass.ExportObjectFact(fn, &Acquires{Result: idx})
		}
	})

	calleeOf := func(call *ast.CallExpr) *types.Func {
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.SelectorExpr:
			if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
				return fn
			}
		case *ast.Ident:
			if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
				return fn
			}
		}
		return nil
	}
	hasFact := func(fn *types.Func, fact analysis.Fact) bool {
		return fn != nil && pass.ImportObjectFact(fn, fact)
	}

	// Pass 2: per-function flow checks.
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		var g *cfg.CFG
		frozenOK := false // tkc:mutates-frozen-ok: deliberate rejection tests
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body == nil {
				return
			}
			body, g = fn.Body, cfgs.FuncDecl(fn)
			_, frozenOK = directives.Find(directives.ForFunc(fn), "mutates-frozen-ok")
		case *ast.FuncLit:
			body, g = fn.Body, cfgs.FuncLit(fn)
		}

		// Frozen-value flow: locals assigned from a frozensource call.
		frozen := make(map[types.Object]bool)
		ast.Inspect(body, func(n ast.Node) bool {
			if _, isLit := n.(*ast.FuncLit); isLit && n != any(body) {
				// Nested literals are visited as their own function; but
				// frozen locals captured by a closure stay tracked there,
				// so don't prune — the closure visit re-derives its own
				// set and this one catches direct uses.
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				return true
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok || !hasFact(calleeOf(call), &FrozenSource{}) {
				return true
			}
			if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
				if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
					frozen[obj] = true
				}
			}
			return true
		})

		// Flag mutator calls whose receiver is frozen.
		ast.Inspect(body, func(n ast.Node) bool {
			if frozenOK {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(call)
			if !hasFact(fn, &Mutator{}) {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch recv := ast.Unparen(sel.X).(type) {
			case *ast.Ident:
				if frozen[pass.TypesInfo.ObjectOf(recv)] {
					pass.Reportf(call.Pos(), "%s mutates a frozen epoch view: %s comes from a tkc:frozensource call and must never reach a tkc:mutates method",
						fn.Name(), recv.Name)
				}
			case *ast.CallExpr:
				if hasFact(calleeOf(recv), &FrozenSource{}) {
					pass.Reportf(call.Pos(), "%s mutates a frozen epoch view obtained directly from a tkc:frozensource call", fn.Name())
				}
			}
			return true
		})

		// Release-on-all-paths for acquires calls.
		if g != nil {
			checkAcquires(pass, g, calleeOf, hasFact)
		}
	})
	return nil, nil
}

// releaseResultIndex finds the first result of type func() in fn's
// signature.
func releaseResultIndex(fn *types.Func) (int, bool) {
	res := fn.Type().(*types.Signature).Results()
	for i := 0; i < res.Len(); i++ {
		if sig, ok := res.At(i).Type().Underlying().(*types.Signature); ok &&
			sig.Params().Len() == 0 && sig.Results().Len() == 0 {
			return i, true
		}
	}
	return 0, false
}

// acquisition is one `v, release, ok := x.Acquire()` site under check.
type acquisition struct {
	stmt       *ast.AssignStmt
	releaseObj types.Object // the release closure variable
	okObj      types.Object // the trailing ok bool, if any
}

// checkAcquires verifies that every acquires-annotated call's release
// closure is called, deferred or transferred on every path from the
// acquisition to function exit (or re-acquisition).
func checkAcquires(pass *analysis.Pass, g *cfg.CFG, calleeOf func(*ast.CallExpr) *types.Func, hasFact func(*types.Func, analysis.Fact) bool) {
	// Find acquisitions.
	var acqs []*acquisition
	for _, b := range g.Blocks {
		for _, node := range b.Nodes {
			as, ok := node.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
			if !ok {
				continue
			}
			fn := calleeOf(call)
			var fact Acquires
			if fn == nil || !pass.ImportObjectFact(fn, &fact) {
				continue
			}
			if fact.Result >= len(as.Lhs) {
				continue // e.g. results assigned through a further call
			}
			a := &acquisition{stmt: as}
			if id, ok := as.Lhs[fact.Result].(*ast.Ident); ok {
				if id.Name == "_" {
					pass.Reportf(id.Pos(), "release closure from %s discarded: the epoch pin can never be released", fn.Name())
					continue
				}
				a.releaseObj = pass.TypesInfo.ObjectOf(id)
			}
			if a.releaseObj == nil {
				continue
			}
			// Trailing bool result, when present and bound, is the ok
			// guard: release is nil by contract when it is false.
			sig := fn.Type().(*types.Signature)
			last := sig.Results().Len() - 1
			if last >= 0 && last < len(as.Lhs) && last != fact.Result {
				if bt, ok := sig.Results().At(last).Type().Underlying().(*types.Basic); ok && bt.Kind() == types.Bool {
					if id, ok := as.Lhs[last].(*ast.Ident); ok && id.Name != "_" {
						a.okObj = pass.TypesInfo.ObjectOf(id)
					}
				}
			}
			acqs = append(acqs, a)
		}
	}

	for _, a := range acqs {
		checkReleasePaths(pass, g, a)
	}
}

// nodeEvent classifies what a node means for a tracked release closure.
type nodeEvent int

const (
	evNone      nodeEvent = iota
	evRelease             // release() called, deferred, or ownership moved
	evReacquire           // the tracked variable is reassigned
)

// classify inspects one CFG node for release/transfer events on obj.
func classify(info *types.Info, node ast.Node, a *acquisition) nodeEvent {
	if node == a.stmt {
		return evReacquire
	}
	ev := evNone
	ast.Inspect(node, func(n ast.Node) bool {
		if ev == evRelease {
			return false
		}
		switch nn := n.(type) {
		case *ast.CallExpr:
			// Direct call: release().
			if id, ok := ast.Unparen(nn.Fun).(*ast.Ident); ok && info.ObjectOf(id) == a.releaseObj {
				ev = evRelease
				return false
			}
			// Passed as an argument: ownership transferred.
			for _, arg := range nn.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.ObjectOf(id) == a.releaseObj {
					ev = evRelease
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, r := range nn.Results {
				if id, ok := ast.Unparen(r).(*ast.Ident); ok && info.ObjectOf(id) == a.releaseObj {
					ev = evRelease
					return false
				}
			}
		case *ast.CompositeLit:
			// Stored into a struct/slice/map literal (pin registries, test
			// bookkeeping): ownership transferred to that value.
			for _, el := range nn.Elts {
				e := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if id, ok := ast.Unparen(e).(*ast.Ident); ok && info.ObjectOf(id) == a.releaseObj {
					ev = evRelease
					return false
				}
			}
		case *ast.AssignStmt:
			if nn == a.stmt {
				return true
			}
			// Stored somewhere: ownership transferred. (Assigning INTO
			// the release var would be a reacquire-like event; both are
			// rare enough to treat as transfer conservatively.)
			for _, r := range nn.Rhs {
				if id, ok := ast.Unparen(r).(*ast.Ident); ok && info.ObjectOf(id) == a.releaseObj {
					ev = evRelease
					return false
				}
			}
		}
		return true
	})
	return ev
}

// okFalseBranch reports whether block b is entered only when a.okObj is
// false: the then branch of `if !ok` or the else branch of `if ok`.
func okFalseBranch(info *types.Info, b *cfg.Block, a *acquisition) bool {
	if a.okObj == nil {
		return false
	}
	ifs, ok := b.Stmt.(*ast.IfStmt)
	if !ok {
		return false
	}
	switch b.Kind {
	case cfg.KindIfThen:
		if un, ok := ifs.Cond.(*ast.UnaryExpr); ok && un.Op.String() == "!" {
			if id, ok := ast.Unparen(un.X).(*ast.Ident); ok && info.ObjectOf(id) == a.okObj {
				return true
			}
		}
	case cfg.KindIfElse, cfg.KindIfDone:
		// KindIfDone only implies !ok when the then branch cannot fall
		// through; be conservative and only accept the explicit else.
		if b.Kind == cfg.KindIfElse {
			if id, ok := ast.Unparen(ifs.Cond).(*ast.Ident); ok && info.ObjectOf(id) == a.okObj {
				return true
			}
		}
	}
	return false
}

// checkReleasePaths walks every CFG path from the acquisition and reports
// one that reaches function exit (or re-acquisition) with no release.
func checkReleasePaths(pass *analysis.Pass, g *cfg.CFG, a *acquisition) {
	// Locate the acquisition node.
	var acqBlock *cfg.Block
	acqIdx := -1
	for _, b := range g.Blocks {
		for i, node := range b.Nodes {
			if node == a.stmt {
				acqBlock, acqIdx = b, i
			}
		}
	}
	if acqBlock == nil {
		return
	}

	// scan looks for a release event in b.Nodes[from:]; it returns
	// (released, leakedHere) — leakedHere when the acquisition statement
	// itself is re-executed before any release.
	scan := func(b *cfg.Block, from int) (bool, bool) {
		for _, node := range b.Nodes[from:] {
			switch classify(pass.TypesInfo, node, a) {
			case evRelease:
				return true, false
			case evReacquire:
				return false, true
			}
		}
		return false, false
	}

	visited := make(map[*cfg.Block]bool)
	var leakAt *cfg.Block
	var walk func(b *cfg.Block, from int) bool // true = leak found
	walk = func(b *cfg.Block, from int) bool {
		released, reacquired := scan(b, from)
		if released {
			return false
		}
		if reacquired {
			leakAt = b
			return true
		}
		if len(b.Succs) == 0 {
			if b.Kind == cfg.KindUnreachable {
				return false // post-panic/no-return code: not a real path
			}
			if n := len(b.Nodes); n > 0 && noret.Terminates(pass.TypesInfo, b.Nodes[n-1]) {
				return false // path ends in panic/Fatal/Exit, not a return
			}
			leakAt = b
			return true // reached exit without release
		}
		for _, s := range b.Succs {
			if visited[s] {
				continue
			}
			if okFalseBranch(pass.TypesInfo, s, a) {
				continue // release is nil by contract on the !ok path
			}
			visited[s] = true
			if walk(s, 0) {
				return true
			}
		}
		return false
	}
	if walk(acqBlock, acqIdx+1) {
		where := "function exit"
		if leakAt != nil && leakAt.Kind != cfg.KindUnreachable && len(leakAt.Succs) != 0 {
			where = "re-acquisition"
		}
		pass.Reportf(a.stmt.Pos(), "release closure %s from a tkc:acquires call may reach %s without being called: the epoch pin leaks and its generation can never drain",
			a.releaseObj.Name(), where)
	}
}
