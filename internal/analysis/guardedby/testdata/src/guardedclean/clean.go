// Package guardedclean exercises tkcguardedby's negative space: correctly
// locked accesses, TryLock branches, defer'd Unlocks and tkc:guardheld
// exemptions must produce no diagnostics.
package guardedclean

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // tkc:guardedby mu
}

func (c *counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

func (c *counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func (c *counter) TryInc() bool {
	if c.mu.TryLock() {
		c.n++
		c.mu.Unlock()
		return true
	}
	return false
}

// tkc:guardheld mu: caller holds c.mu across the whole rebuild phase
func (c *counter) reset() { c.n = 0 }

var _ = (*counter).reset

type rec struct {
	count int // tkc:guardedby Recorder.mu
}

type Recorder struct {
	mu sync.Mutex
	m  map[string]*rec
}

func (r *Recorder) Add(k string) {
	r.mu.Lock()
	r.m[k].count++
	r.mu.Unlock()
}
