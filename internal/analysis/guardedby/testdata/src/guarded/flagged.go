// Package guarded exercises tkcguardedby diagnostics: every access here
// that touches a guarded field without its mutex must be flagged.
package guarded

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // tkc:guardedby mu
}

func (c *counter) Bad() int {
	return c.n // want `field n is guarded by "mu"`
}

func (c *counter) BadAfterUnlock() {
	c.mu.Lock()
	c.n = 1
	c.mu.Unlock()
	c.n = 2 // want `field n is guarded by "mu"`
}

func (c *counter) BadBranch(b bool) {
	if b {
		c.mu.Lock()
	}
	c.n++ // want `field n is guarded by "mu"`
	if b {
		c.mu.Unlock()
	}
}

type rec struct {
	count int // tkc:guardedby Recorder.mu
}

type Recorder struct {
	mu sync.Mutex
	m  map[string]*rec
}

func (r *Recorder) Bad(k string) {
	r.m[k].count++ // want `field count is guarded by "Recorder.mu"`
}
