// Package guardedby implements the tkcguardedby analyzer: struct fields
// annotated
//
//	// tkc:guardedby <mu>
//
// may only be accessed while <mu> is held in the accessing function. The
// guard names either a sibling field of the same struct ("mu", "labelMu")
// — the access c.field then requires a live c.mu.Lock()/RLock() — or, as
// "<Type>.<mu>", a mutex on another type whose critical sections cover
// this field (serve's endpointRec values live entirely inside
// Recorder.mu, for example).
//
// The lock state is tracked flow-sensitively over the control-flow graph:
// branches meet by intersection, defer'd Unlocks keep the lock held to
// function exit, and `if x.mu.TryLock()` holds the lock in the then
// branch only. Functions that access guarded fields without locking —
// because every caller already holds the mutex, or because the access is
// structurally race-free (a single-writer phase) — declare it with
//
//	// tkc:guardheld <mu>: <reason>
//
// which exempts that one function for that one guard, with the reason on
// record. There are deliberately no file- or package-level suppressions.
package guardedby

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"temporalkcore/internal/analysis/directives"
	"temporalkcore/internal/xtools/go/analysis"
	"temporalkcore/internal/xtools/go/analysis/passes/ctrlflow"
	"temporalkcore/internal/xtools/go/analysis/passes/inspect"
	"temporalkcore/internal/xtools/go/ast/inspector"
	"temporalkcore/internal/xtools/go/cfg"
)

// GuardedField is the fact exported for every annotated field, so guarded
// fields of one package are checked in every package that can reach them.
type GuardedField struct {
	Guard string // "mu" (sibling field) or "Type.mu"
}

// AFact marks GuardedField as a serializable analysis fact.
func (*GuardedField) AFact() {}

func (f *GuardedField) String() string { return "guardedby(" + f.Guard + ")" }

var Analyzer = &analysis.Analyzer{
	Name:      "tkcguardedby",
	Doc:       "check that tkc:guardedby-annotated fields are only accessed with their mutex held",
	Requires:  []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	FactTypes: []analysis.Fact{(*GuardedField)(nil)},
	Run:       run,
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	// Pass 1: collect and export the field annotations.
	ins.Preorder([]ast.Node{(*ast.StructType)(nil)}, func(n ast.Node) {
		st := n.(*ast.StructType)
		for _, field := range st.Fields.List {
			d, ok := directives.Find(directives.ForField(field), "guardedby")
			if !ok {
				continue
			}
			if len(d.Args) != 1 {
				pass.Reportf(field.Pos(), "malformed tkc:guardedby: want exactly one guard argument")
				continue
			}
			for _, name := range field.Names {
				if obj, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
					fact := &GuardedField{Guard: d.Args[0]}
					pass.ExportObjectFact(obj, fact)
				}
			}
		}
	})

	guardOf := func(obj *types.Var) (string, bool) {
		var fact GuardedField
		if pass.ImportObjectFact(obj, &fact) {
			return fact.Guard, true
		}
		return "", false
	}

	// Pass 2: check every function body. FuncLits inherit the exemptions
	// of the function they appear in.
	ins.WithStack([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		var g *cfg.CFG
		var exempt []string
		for _, outer := range stack {
			if fd, ok := outer.(*ast.FuncDecl); ok {
				for _, d := range directives.ForFunc(fd) {
					if d.Name == "guardheld" && len(d.Args) == 1 {
						exempt = append(exempt, d.Args[0])
					}
				}
			}
		}
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body == nil {
				return true
			}
			g = cfgs.FuncDecl(fn)
		case *ast.FuncLit:
			g = cfgs.FuncLit(fn)
		}
		if g != nil {
			checkFunc(pass, g, guardOf, exempt)
		}
		return true
	})
	return nil, nil
}

// tokenSet is a set of held-lock tokens. Each acquisition contributes an
// expression token ("c.mu") and, when the mutex is a field, a type token
// ("Cache.mu") used to satisfy Type.mu guards.
type tokenSet map[string]bool

func (s tokenSet) clone() tokenSet {
	c := make(tokenSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func (s tokenSet) intersect(o tokenSet) tokenSet {
	c := make(tokenSet)
	for k := range s {
		if o[k] {
			c[k] = true
		}
	}
	return c
}

func (s tokenSet) equal(o tokenSet) bool {
	if len(s) != len(o) {
		return false
	}
	for k := range s {
		if !o[k] {
			return false
		}
	}
	return true
}

// mutexCall reports whether call is a Lock/RLock/TryLock/Unlock/RUnlock on
// a sync.Mutex or sync.RWMutex (possibly behind a pointer), returning the
// tokens of the mutex expression and the method name.
func mutexCall(info *types.Info, call *ast.CallExpr) (toks []string, method string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
	default:
		return nil, "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return nil, "", false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil || !isSyncLock(recv.Type()) {
		return nil, "", false
	}
	toks = append(toks, types.ExprString(sel.X))
	// Type token: for g.labelMu, record "Graph.labelMu" so Type.mu guards
	// can be satisfied regardless of which variable holds the instance.
	if ms, isMS := sel.X.(*ast.SelectorExpr); isMS {
		if base := namedTypeName(info.TypeOf(ms.X)); base != "" {
			toks = append(toks, base+"."+ms.Sel.Name)
		}
	} else if id, isID := sel.X.(*ast.Ident); isID {
		// A mutex reached through the method receiver: r.mu where r is
		// the receiver of a method on the mutex's owner.
		_ = id
	}
	return toks, sel.Sel.Name, true
}

// isSyncLock reports whether t (or *t) is sync.Mutex or sync.RWMutex.
func isSyncLock(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// namedTypeName returns the bare name of t's named type (unwrapping one
// pointer), or "".
func namedTypeName(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	for {
		switch tt := t.(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt.Obj().Name()
		default:
			return ""
		}
	}
}

// condTryLockTokens returns the mutex tokens when stmt is `if x.TryLock()
// { ... }` (possibly with an init statement), so the then-branch can be
// seeded as holding the lock.
func condTryLockTokens(info *types.Info, stmt ast.Stmt) []string {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok {
		return nil
	}
	call, ok := ifs.Cond.(*ast.CallExpr)
	if !ok {
		return nil
	}
	toks, method, ok := mutexCall(info, call)
	if ok && (method == "TryLock" || method == "TryRLock") {
		return toks
	}
	return nil
}

// checkFunc runs the held-lock dataflow over one function's CFG and
// reports guarded-field accesses made without the guard held.
func checkFunc(pass *analysis.Pass, g *cfg.CFG, guardOf func(*types.Var) (string, bool), exempt []string) {
	if len(g.Blocks) == 0 {
		return
	}
	exempted := func(guard string) bool {
		for _, e := range exempt {
			if e == guard {
				return true
			}
		}
		return false
	}

	// Predecessors, for the meet.
	preds := make(map[*cfg.Block][]*cfg.Block)
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}

	// transfer applies block b's lock events to state, calling access for
	// every guarded-field access with the state current at that point.
	transfer := func(b *cfg.Block, state tokenSet, access func(sel *ast.SelectorExpr, fieldObj *types.Var, guard string, state tokenSet)) tokenSet {
		for _, node := range b.Nodes {
			skipUnlock := false
			if _, isDefer := node.(*ast.DeferStmt); isDefer {
				// defer mu.Unlock() keeps the lock held to function
				// exit; a deferred closure body is analyzed separately.
				skipUnlock = true
			}
			ast.Inspect(node, func(n ast.Node) bool {
				switch nn := n.(type) {
				case *ast.FuncLit:
					return false // analyzed as its own function
				case *ast.CallExpr:
					if toks, method, ok := mutexCall(pass.TypesInfo, nn); ok {
						switch method {
						case "Lock", "RLock":
							for _, t := range toks {
								state[t] = true
							}
						case "Unlock", "RUnlock":
							if !skipUnlock {
								for _, t := range toks {
									delete(state, t)
								}
							}
						}
					}
				case *ast.SelectorExpr:
					if sel, ok := pass.TypesInfo.Selections[nn]; ok && sel.Kind() == types.FieldVal {
						if fv, ok := sel.Obj().(*types.Var); ok {
							if guard, ok := guardOf(fv); ok && access != nil {
								access(nn, fv, guard, state)
							}
						}
					}
				}
				return true
			})
		}
		return state
	}

	// seed returns the extra tokens a block starts with beyond the meet:
	// the then-branch of `if x.TryLock()`.
	seed := func(b *cfg.Block) []string {
		if b.Kind == cfg.KindIfThen {
			return condTryLockTokens(pass.TypesInfo, b.Stmt)
		}
		return nil
	}

	// Fixpoint: in(b) = ∩ out(preds) [+ seed], out(b) = transfer(b, in).
	in := make(map[*cfg.Block]tokenSet)
	out := make(map[*cfg.Block]tokenSet)
	for _, b := range g.Blocks {
		in[b], out[b] = nil, nil // nil = ⊤ (not yet computed)
	}
	entry := g.Blocks[0]
	in[entry] = tokenSet{}
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			var st tokenSet
			if b == entry {
				st = tokenSet{}
			} else {
				for _, p := range preds[b] {
					if out[p] == nil {
						continue // ⊤: contributes nothing to the meet
					}
					if st == nil {
						st = out[p].clone()
					} else {
						st = st.intersect(out[p])
					}
				}
				if st == nil {
					continue // unreachable so far
				}
			}
			for _, t := range seed(b) {
				st[t] = true
			}
			if in[b] == nil || !in[b].equal(st) {
				in[b] = st
			}
			o := transfer(b, st.clone(), nil)
			if out[b] == nil || !out[b].equal(o) {
				out[b] = o
				changed = true
			}
		}
	}

	// Report pass with the converged states.
	reported := make(map[token.Pos]bool)
	for _, b := range g.Blocks {
		if in[b] == nil {
			continue // unreachable
		}
		transfer(b, in[b].clone(), func(sel *ast.SelectorExpr, fv *types.Var, guard string, state tokenSet) {
			if reported[sel.Sel.Pos()] || exempted(guard) {
				return
			}
			if heldFor(state, sel, guard) {
				return
			}
			reported[sel.Sel.Pos()] = true
			pass.Report(analysis.Diagnostic{
				Pos: sel.Sel.Pos(),
				Message: fmt.Sprintf("field %s is guarded by %q (tkc:guardedby) but accessed without holding it; lock it, or annotate the function with // tkc:guardheld %s: <reason>",
					fv.Name(), guard, guard),
			})
		})
	}
}

// heldFor reports whether state satisfies the guard for an access x.f:
// a sibling guard "mu" needs the token "<x>.mu"; a "Type.mu" guard needs
// any held mutex whose owner type matches.
func heldFor(state tokenSet, sel *ast.SelectorExpr, guard string) bool {
	if containsDot(guard) {
		return state[guard]
	}
	return state[types.ExprString(sel.X)+"."+guard]
}

func containsDot(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] == '.' {
			return true
		}
	}
	return false
}
