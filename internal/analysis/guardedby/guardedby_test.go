package guardedby_test

import (
	"testing"

	"temporalkcore/internal/analysis/analyzertest"
	"temporalkcore/internal/analysis/guardedby"
)

// TestFlagged proves the analyzer fires on unlocked accesses, including
// the flow-sensitive cases (unlock-then-access, one-armed-if meet).
func TestFlagged(t *testing.T) {
	analyzertest.Run(t, ".", guardedby.Analyzer, "guarded")
}

// TestClean proves correctly locked code, TryLock branches, defer'd
// Unlocks and tkc:guardheld exemptions stay silent.
func TestClean(t *testing.T) {
	analyzertest.Run(t, ".", guardedby.Analyzer, "guardedclean")
}
