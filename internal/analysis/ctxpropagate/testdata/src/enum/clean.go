// Package enum exercises tkcctxpropagate's negative space in an
// engine-named package: hooks delegated into builders, polled loops,
// named hook parameters, annotated root contexts and non-hook func
// parameters must produce no diagnostics.
package enum

import "context"

type runner struct{ stop func() bool }

// tkc:cancellable
func EnumerateStop(stop func() bool) {
	r := runner{stop: stop}
	r.run()
}

func (r *runner) run() {
	n := 0
	for {
		if r.stop != nil && r.stop() {
			return
		}
		n++
		if n > 3 {
			return
		}
	}
}

// tkc:cancellable halt
func PollLoop(halt func() bool) {
	for {
		if halt() {
			return
		}
	}
}

// tkc:allow-background: deprecated shim keeps the zero-config entry point alive
func Root() context.Context {
	return context.Background()
}

func NotStop(f func() int) { _ = f }
