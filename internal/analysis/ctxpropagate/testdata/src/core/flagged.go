// Package core exercises tkcctxpropagate diagnostics in an engine-named
// package: ignored stop hooks, unpolled unbounded loops, unannotated
// stop-taking exports, and root contexts minted in library code.
package core

import "context"

// tkc:cancellable
func IgnoresHook(stop func() bool) { // want `stop hook stop is never consumed`
	for i := 0; i < 3; i++ {
		_ = i
	}
}

// tkc:cancellable
func UnpolledLoop(stop func() bool) {
	if stop() {
		return
	}
	n := 0
	for { // want `unbounded loop does not poll stop hook stop`
		n++
		if n > 3 {
			return
		}
	}
}

func Unannotated(stop func() bool) { // want `takes a stop hook but is not annotated`
	_ = stop
}

func mint() context.Context {
	return context.Background() // want `context.Background in library code`
}

var _ = mint
