package ctxpropagate_test

import (
	"testing"

	"temporalkcore/internal/analysis/analyzertest"
	"temporalkcore/internal/analysis/ctxpropagate"
)

// TestFlagged proves the analyzer fires on ignored stop hooks, unpolled
// unbounded loops, unannotated stop-taking engine exports and root
// contexts minted in library code.
func TestFlagged(t *testing.T) {
	analyzertest.Run(t, ".", ctxpropagate.Analyzer, "core")
}

// TestClean proves delegated hooks, polled loops, named hook parameters,
// tkc:allow-background roots and non-hook func parameters stay silent.
func TestClean(t *testing.T) {
	analyzertest.Run(t, ".", ctxpropagate.Analyzer, "enum")
}
