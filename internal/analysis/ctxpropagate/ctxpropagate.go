// Package ctxpropagate implements the tkcctxpropagate analyzer: engine
// entry points must stay cancellable, and library code must not mint root
// contexts.
//
// A function annotated
//
//	// tkc:cancellable [param]
//
// declares that its stop hook (the named parameter, or by default the
// first parameter of type func() bool) is a live cancellation channel.
// The analyzer enforces that the hook is actually consumed: it must be
// polled, passed to a callee, or stored for a later phase — a hook that
// is accepted and then ignored silently turns a cancellable API into an
// uninterruptible one. When the hook is only ever polled locally, each
// condition-less `for { ... }` loop in the function must poll it, since
// those are exactly the loops that can spin for an unbounded number of
// iterations on adversarial inputs.
//
// Exported functions in the engine packages (vct, enum, phc, core, dyn)
// that take a func() bool parameter named "stop" must carry the
// annotation, so cancellability is a reviewed, machine-visible contract
// rather than an accident of a parameter name.
//
// Separately, calls to context.Background and context.TODO are banned in
// library code: a root context discards the caller's deadline and
// cancellation. Intentional roots (deprecated shims, process-lifetime
// daemons) are annotated
//
//	// tkc:allow-background: <reason>
//
// Package main and _test files are exempt — those are the places a root
// context legitimately begins.
package ctxpropagate

import (
	"go/ast"
	"go/types"
	"strings"

	"temporalkcore/internal/analysis/directives"
	"temporalkcore/internal/xtools/go/analysis"
	"temporalkcore/internal/xtools/go/analysis/passes/inspect"
	"temporalkcore/internal/xtools/go/ast/inspector"
)

// enginePackages are the packages whose exported stop-taking functions
// must be annotated tkc:cancellable.
var enginePackages = map[string]bool{
	"vct": true, "enum": true, "phc": true, "core": true, "dyn": true,
}

var Analyzer = &analysis.Analyzer{
	Name:     "tkcctxpropagate",
	Doc:      "check that stop hooks are consumed by cancellable engine code and that library code does not mint root contexts",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		ds := directives.ForFunc(fd)
		d, annotated := directives.Find(ds, "cancellable")
		if annotated {
			checkCancellable(pass, fd, d)
		} else if enginePackages[pass.Pkg.Name()] && fd.Name.IsExported() {
			if p := stopParam(pass, fd, directives.Directive{}); p != nil && p.Name() == "stop" {
				pass.Reportf(fd.Name.Pos(), "exported %s function %s takes a stop hook but is not annotated // tkc:cancellable: cancellability must be a declared contract", pass.Pkg.Name(), fd.Name.Name)
			}
		}
	})

	checkBackground(pass, ins)
	return nil, nil
}

// stopParam resolves the stop-hook parameter: the one named in the
// directive's first argument, else the first parameter of type
// func() bool.
func stopParam(pass *analysis.Pass, fd *ast.FuncDecl, d directives.Directive) *types.Var {
	fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return nil
	}
	params := fn.Type().(*types.Signature).Params()
	if len(d.Args) > 0 {
		for i := 0; i < params.Len(); i++ {
			if params.At(i).Name() == d.Args[0] {
				return params.At(i)
			}
		}
		return nil
	}
	for i := 0; i < params.Len(); i++ {
		if isStopFunc(params.At(i).Type()) {
			return params.At(i)
		}
	}
	return nil
}

// isStopFunc reports whether t is func() bool.
func isStopFunc(t types.Type) bool {
	sig, ok := t.Underlying().(*types.Signature)
	return ok && sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
		types.Identical(sig.Results().At(0).Type(), types.Typ[types.Bool])
}

// checkCancellable enforces consumption of the stop hook in one annotated
// function.
func checkCancellable(pass *analysis.Pass, fd *ast.FuncDecl, d directives.Directive) {
	p := stopParam(pass, fd, d)
	if p == nil {
		pass.Reportf(fd.Name.Pos(), "function %s is annotated // tkc:cancellable but has no stop hook parameter (named %q or of type func() bool)", fd.Name.Name, strings.Join(d.Args, " "))
		return
	}
	if fd.Body == nil {
		return
	}

	// Classify every use of the hook in the body.
	var polled, delegated bool
	usesHook := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.ObjectOf(id) == p
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch nn := n.(type) {
		case *ast.CallExpr:
			if usesHook(nn.Fun) {
				polled = true
			}
			for _, a := range nn.Args {
				if usesHook(a) {
					delegated = true // hook handed to a callee
				}
			}
		case *ast.AssignStmt:
			for _, r := range nn.Rhs {
				if usesHook(r) {
					delegated = true // hook stored for a later phase
				}
			}
		case *ast.CompositeLit:
			for _, el := range nn.Elts {
				e := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					e = kv.Value
				}
				if usesHook(e) {
					delegated = true
				}
			}
		}
		return true
	})

	if !polled && !delegated {
		pass.Reportf(fd.Name.Pos(), "stop hook %s is never consumed: %s accepts a cancellation hook (tkc:cancellable) but neither polls it, passes it on, nor stores it — the call is uninterruptible", p.Name(), fd.Name.Name)
		return
	}
	if delegated {
		// Responsibility handed off; loop-local polling is not required.
		return
	}

	// The hook is polled locally only: every condition-less for loop must
	// poll it, since those are the unbounded ones.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		loop, ok := n.(*ast.ForStmt)
		if !ok || loop.Cond != nil {
			return true
		}
		loopPolls := false
		ast.Inspect(loop.Body, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok && usesHook(call.Fun) {
				loopPolls = true
				return false
			}
			return true
		})
		if !loopPolls {
			pass.Reportf(loop.Pos(), "unbounded loop does not poll stop hook %s: a cancellable function (tkc:cancellable) must be able to exit every for-ever loop", p.Name())
		}
		return true
	})
}

// checkBackground bans context.Background/TODO in library code.
func checkBackground(pass *analysis.Pass, ins *inspector.Inspector) {
	if pass.Pkg.Name() == "main" {
		return
	}
	ins.WithStack([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		call := n.(*ast.CallExpr)
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
			return true
		}
		if fn.Name() != "Background" && fn.Name() != "TODO" {
			return true
		}
		file := pass.Fset.File(call.Pos())
		if file != nil && strings.HasSuffix(file.Name(), "_test.go") {
			return true
		}
		// Exempt when any enclosing function declaration carries
		// tkc:allow-background.
		for _, anc := range stack {
			if fd, ok := anc.(*ast.FuncDecl); ok {
				if _, ok := directives.Find(directives.ForFunc(fd), "allow-background"); ok {
					return true
				}
			}
		}
		pass.Reportf(call.Pos(), "context.%s in library code discards the caller's deadline and cancellation: thread a ctx parameter through, or annotate the function // tkc:allow-background: <reason>", fn.Name())
		return true
	})
}
