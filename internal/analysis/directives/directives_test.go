package directives_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"temporalkcore/internal/analysis/directives"
)

const src = `package p

import "sync"

// tkc:frozensource
// tkc:acquires 1
func Acquire() (int, func(), bool) { return 0, nil, false }

// tkc:guardheld mu: single-writer rebuild phase
func rebuild() {}

// Prose that merely mentions tkc:guardedby must not parse.
// tkc: this is prose too, not a directive.
func prose() {}

type S struct {
	mu sync.Mutex
	// tkc:guardedby mu
	doc int
	line int // tkc:guardedby mu
	plain int
}

// tkc:allow-background: deprecated shim
func shim() {}
`

func parse(t *testing.T) *ast.File {
	t.Helper()
	f, err := parser.ParseFile(token.NewFileSet(), "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func funcNamed(f *ast.File, name string) *ast.FuncDecl {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	return nil
}

func TestForFunc(t *testing.T) {
	f := parse(t)

	ds := directives.ForFunc(funcNamed(f, "Acquire"))
	if len(ds) != 2 {
		t.Fatalf("Acquire: got %d directives, want 2: %+v", len(ds), ds)
	}
	if _, ok := directives.Find(ds, "frozensource"); !ok {
		t.Error("Acquire: missing frozensource")
	}
	if d, ok := directives.Find(ds, "acquires"); !ok || len(d.Args) != 1 || d.Args[0] != "1" {
		t.Errorf("Acquire: acquires = %+v, want Args [1]", d)
	}

	ds = directives.ForFunc(funcNamed(f, "rebuild"))
	d, ok := directives.Find(ds, "guardheld")
	if !ok || len(d.Args) != 1 || d.Args[0] != "mu" || d.Reason != "single-writer rebuild phase" {
		t.Errorf("rebuild: guardheld = %+v", d)
	}

	if ds := directives.ForFunc(funcNamed(f, "prose")); len(ds) != 0 {
		t.Errorf("prose: parsed %d directives from prose, want 0: %+v", len(ds), ds)
	}

	ds = directives.ForFunc(funcNamed(f, "shim"))
	if d, ok := directives.Find(ds, "allow-background"); !ok || d.Reason != "deprecated shim" {
		t.Errorf("shim: allow-background = %+v", d)
	}
}

func TestForField(t *testing.T) {
	f := parse(t)
	var st *ast.StructType
	ast.Inspect(f, func(n ast.Node) bool {
		if s, ok := n.(*ast.StructType); ok {
			st = s
			return false
		}
		return true
	})
	if st == nil {
		t.Fatal("no struct in test source")
	}
	got := make(map[string]bool)
	for _, field := range st.Fields.List {
		if _, ok := directives.Find(directives.ForField(field), "guardedby"); ok {
			for _, n := range field.Names {
				got[n.Name] = true
			}
		}
	}
	for _, want := range []string{"doc", "line"} {
		if !got[want] {
			t.Errorf("field %s: guardedby directive not found", want)
		}
	}
	if got["plain"] || got["mu"] {
		t.Errorf("unannotated fields parsed as guarded: %v", got)
	}
}
