// Package directives parses the repository's machine-checked invariant
// annotations — comment lines of the form
//
//	// tkc:<name> <argument words...>[: free-text reason]
//
// attached to function declarations and struct fields. The analyzers in
// internal/analysis read these to know which invariants a declaration
// participates in:
//
//	tkc:guardedby <mu>      field: only accessed while <mu> is held
//	tkc:guardheld <mu>: why func: accesses <mu>-guarded fields lock-free
//	tkc:mutates             func: mutates graph state frozen views share
//	tkc:mutates-frozen-ok: why func: may call mutators on frozen views
//	tkc:frozensource        func: its result is a frozen/pinned view
//	tkc:acquires [i]        func: result i is a release fn due on all paths
//	tkc:pool-get            func: returns a pooled value (ownership moves)
//	tkc:pool-put            func: returns its argument to a pool
//	tkc:cancellable [p]     func: p is the stop hook loops must poll
//	tkc:allow-background: why  func: may call context.Background/TODO
package directives

import (
	"go/ast"
	"go/token"
	"strings"
)

// Prefix is the comment marker every directive starts with.
const Prefix = "tkc:"

// Directive is one parsed tkc: annotation.
type Directive struct {
	Name   string    // the word after "tkc:", e.g. "guardedby"
	Args   []string  // whitespace-separated arguments before any ": reason"
	Reason string    // free text after the first ": " separator, if any
	Pos    token.Pos // position of the comment line
}

// parseLine parses one comment line, returning ok=false when it carries no
// directive. Directives must start the line (after the comment marker):
// prose that merely mentions "tkc:guardedby" does not count.
func parseLine(text string, pos token.Pos) (Directive, bool) {
	s := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(text), "//"))
	if !strings.HasPrefix(s, Prefix) {
		return Directive{}, false
	}
	s = strings.TrimPrefix(s, Prefix)
	if s == "" || s[0] == ' ' || s[0] == '\t' {
		return Directive{}, false // "tkc: something" is prose, not a directive
	}
	var reason string
	if i := strings.Index(s, ": "); i >= 0 {
		reason = strings.TrimSpace(s[i+2:])
		s = s[:i]
	} else if strings.HasSuffix(s, ":") {
		s = strings.TrimSuffix(s, ":")
	}
	fields := strings.Fields(s)
	if len(fields) == 0 {
		return Directive{}, false
	}
	return Directive{Name: fields[0], Args: fields[1:], Reason: reason, Pos: pos}, true
}

// FromComments returns every directive in the comment groups, in order.
// Nil groups are allowed.
func FromComments(groups ...*ast.CommentGroup) []Directive {
	var out []Directive
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			// A comment "line" may be a /* */ block; split it.
			for _, line := range strings.Split(c.Text, "\n") {
				if d, ok := parseLine(line, c.Pos()); ok {
					out = append(out, d)
				}
			}
		}
	}
	return out
}

// ForFunc returns the directives attached to a function declaration's doc
// comment.
func ForFunc(fn *ast.FuncDecl) []Directive {
	return FromComments(fn.Doc)
}

// ForField returns the directives attached to a struct field, from its doc
// comment and its trailing line comment.
func ForField(f *ast.Field) []Directive {
	return FromComments(f.Doc, f.Comment)
}

// Find returns the first directive named name, if any.
func Find(ds []Directive, name string) (Directive, bool) {
	for _, d := range ds {
		if d.Name == name {
			return d, true
		}
	}
	return Directive{}, false
}
