// Package noret recognises statements that never let control proceed — a
// panic, os.Exit, runtime.Goexit, log.Fatal*, or a testing Fatal/Skip —
// so path-sensitive analyzers (release-on-all-paths, Put-on-all-paths)
// don't report a "leak" on a path that ends the goroutine anyway. The
// go/cfg builder truncates a block after such a call, leaving a block
// with no successors that is not a real function exit; this package is
// how the analyzers tell the two apart.
package noret

import (
	"go/ast"
	"go/types"
)

// terminators maps package path → function/method names that never return.
var terminators = map[string]map[string]bool{
	"os":      {"Exit": true},
	"runtime": {"Goexit": true},
	"log": {
		"Fatal": true, "Fatalf": true, "Fatalln": true,
		"Panic": true, "Panicf": true, "Panicln": true,
	},
	"testing": {
		"Fatal": true, "Fatalf": true, "FailNow": true,
		"Skip": true, "Skipf": true, "SkipNow": true,
	},
}

// Terminates reports whether node ends control flow: an expression
// statement calling panic or a known no-return function. It is
// deliberately a name-based approximation — false negatives only make the
// analyzers report a leak on a dead path, never hide a live one.
func Terminates(info *types.Info, node ast.Node) bool {
	es, ok := node.(*ast.ExprStmt)
	if !ok {
		return false
	}
	call, ok := ast.Unparen(es.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fun.Name == "panic" {
			if _, isBuiltin := info.Uses[fun].(*types.Builtin); isBuiltin {
				return true
			}
		}
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return isTerminator(fn)
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return isTerminator(fn)
		}
	}
	return false
}

func isTerminator(fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	names := terminators[pkg.Path()]
	return names != nil && names[fn.Name()]
}
