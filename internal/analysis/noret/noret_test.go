package noret

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

const src = `package p

import (
	"log"
	"os"
	"runtime"
)

func f(n int) int {
	if n == 0 {
		panic("zero")
	}
	if n == 1 {
		os.Exit(1)
	}
	if n == 2 {
		log.Fatalf("two: %d", n)
	}
	if n == 3 {
		runtime.Goexit()
	}
	if n == 4 {
		println("alive")
	}
	return n
}
`

func TestTerminates(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{Uses: map[*ast.Ident]types.Object{}}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}

	// The last statement of each if-body, keyed by the guard constant.
	want := map[int]bool{
		0: true,  // panic
		1: true,  // os.Exit
		2: true,  // log.Fatalf
		3: true,  // runtime.Goexit
		4: false, // println returns
	}
	fn := f.Decls[1].(*ast.FuncDecl)
	seen := 0
	for _, stmt := range fn.Body.List {
		ifs, ok := stmt.(*ast.IfStmt)
		if !ok {
			continue
		}
		cond := ifs.Cond.(*ast.BinaryExpr)
		n := int(cond.Y.(*ast.BasicLit).Value[0] - '0')
		last := ifs.Body.List[len(ifs.Body.List)-1]
		if got := Terminates(info, last); got != want[n] {
			t.Errorf("Terminates(branch n==%d) = %v, want %v", n, got, want[n])
		}
		seen++
	}
	if seen != len(want) {
		t.Fatalf("found %d branches, want %d", seen, len(want))
	}

	if Terminates(info, fn.Body.List[len(fn.Body.List)-1]) {
		t.Error("Terminates(return stmt) = true, want false")
	}
}
