package poolhygiene_test

import (
	"testing"

	"temporalkcore/internal/analysis/analyzertest"
	"temporalkcore/internal/analysis/poolhygiene"
)

// TestFlagged proves the analyzer fires on borrows leaking through early
// returns and on pooled values escaping via return, package-level store
// and channel send.
func TestFlagged(t *testing.T) {
	analyzertest.Run(t, ".", poolhygiene.Analyzer, "pools")
}

// TestClean proves defer'd Puts, Put-on-every-path, closure-deferred Puts
// and tkc:pool-get ownership transfer stay silent.
func TestClean(t *testing.T) {
	analyzertest.Run(t, ".", poolhygiene.Analyzer, "poolsclean")
}
