// Package pools exercises tkcpoolhygiene diagnostics: borrows leaking on
// early returns and pooled values escaping their borrow.
package pools

import "sync"

type buf struct{ b []byte }

var p = sync.Pool{New: func() interface{} { return new(buf) }}

// tkc:pool-get
func get() *buf { return p.Get().(*buf) }

// tkc:pool-put
func put(b *buf) { p.Put(b) }

func LeakOnEarlyReturn(n int) {
	b := get() // want `pooled value b may reach function exit without being Put`
	if n > 0 {
		return
	}
	put(b)
}

func EscapeReturn() *buf {
	b := p.Get().(*buf)
	return b // want `pooled value b escapes via return`
}

var global *buf

func EscapeGlobal() {
	b := get()
	global = b // want `pooled value b escapes into package-level variable global`
}

func EscapeSend(ch chan *buf) {
	b := get()
	ch <- b // want `pooled value b escapes via channel send`
}
