// Package poolsclean exercises tkcpoolhygiene's negative space: defer'd
// Puts, Put-on-every-path, closure-deferred Puts and ownership transfer
// out of tkc:pool-get wrappers must produce no diagnostics.
package poolsclean

import "sync"

type buf struct{ b []byte }

var p = sync.Pool{New: func() interface{} { return new(buf) }}

// tkc:pool-get
func get() *buf { return p.Get().(*buf) }

// tkc:pool-put
func put(b *buf) { p.Put(b) }

func DeferPut() int {
	b := get()
	defer put(b)
	return len(b.b)
}

func PutAllPaths(n int) int {
	b := p.Get().(*buf)
	if n > 0 {
		p.Put(b)
		return 1
	}
	p.Put(b)
	return 0
}

// tkc:pool-get
func GetWrapped() *buf {
	b := get()
	return b
}

func DeferClosure() {
	b := get()
	defer func() { put(b) }()
	b.b = b.b[:0]
}

func PanicPathNotALeak(n int) {
	b := get()
	if n > 0 {
		panic("invariant broken")
	}
	put(b)
}
