// Package poolhygiene implements the tkcpoolhygiene analyzer, the rule
// behind every "0 allocs warm" benchmark in this repository: a value taken
// from a sync.Pool must go back, and must not outlive its borrow.
//
// Tracked acquisitions are direct (*sync.Pool).Get calls (with or without
// a type assertion) and calls to functions annotated
//
//	// tkc:pool-get
//
// (the GetScratch wrappers), whose result is a borrowed pooled value.
// Releases are (*sync.Pool).Put with the tracked value as the argument,
// and calls to functions annotated
//
//	// tkc:pool-put
//
// (the PutScratch wrappers). Two diagnostics:
//
//   - leak: a path from the Get to function exit carries no Put and no
//     defer'd Put — the borrow never ends and the pool stops amortising.
//   - escape: the borrowed value is returned, sent on a channel, or
//     stored in a package-level variable by a function that is not itself
//     annotated tkc:pool-get (which is how ownership legitimately moves
//     out of a wrapper).
package poolhygiene

import (
	"go/ast"
	"go/types"

	"temporalkcore/internal/analysis/directives"
	"temporalkcore/internal/analysis/noret"
	"temporalkcore/internal/xtools/go/analysis"
	"temporalkcore/internal/xtools/go/analysis/passes/ctrlflow"
	"temporalkcore/internal/xtools/go/analysis/passes/inspect"
	"temporalkcore/internal/xtools/go/ast/inspector"
	"temporalkcore/internal/xtools/go/cfg"
)

// PoolGet marks a function whose result is a borrowed pooled value.
type PoolGet struct{}

// AFact marks PoolGet as a serializable analysis fact.
func (*PoolGet) AFact() {}

func (*PoolGet) String() string { return "pool-get" }

// PoolPut marks a function that returns its argument to a pool.
type PoolPut struct{}

// AFact marks PoolPut as a serializable analysis fact.
func (*PoolPut) AFact() {}

func (*PoolPut) String() string { return "pool-put" }

var Analyzer = &analysis.Analyzer{
	Name:      "tkcpoolhygiene",
	Doc:       "check that sync.Pool values are Put on every path and never escape their borrow",
	Requires:  []*analysis.Analyzer{inspect.Analyzer, ctrlflow.Analyzer},
	FactTypes: []analysis.Fact{(*PoolGet)(nil), (*PoolPut)(nil)},
	Run:       run,
}

func run(pass *analysis.Pass) (any, error) {
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	cfgs := pass.ResultOf[ctrlflow.Analyzer].(*ctrlflow.CFGs)

	// Pass 1: export wrapper annotations.
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok {
			return
		}
		ds := directives.ForFunc(fd)
		if _, ok := directives.Find(ds, "pool-get"); ok {
			pass.ExportObjectFact(fn, &PoolGet{})
		}
		if _, ok := directives.Find(ds, "pool-put"); ok {
			pass.ExportObjectFact(fn, &PoolPut{})
		}
	})

	// Pass 2: per-function borrow checking.
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var g *cfg.CFG
		transfers := false // tkc:pool-get functions may move ownership out
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body == nil {
				return
			}
			g = cfgs.FuncDecl(fn)
			_, transfers = directives.Find(directives.ForFunc(fn), "pool-get")
		case *ast.FuncLit:
			g = cfgs.FuncLit(fn)
		}
		if g != nil {
			checkFunc(pass, g, transfers)
		}
	})
	return nil, nil
}

// isPoolGet reports whether call borrows a pooled value: (*sync.Pool).Get
// or a tkc:pool-get function.
func isPoolGet(pass *analysis.Pass, call *ast.CallExpr) bool {
	fn := callee(pass, call)
	if fn == nil {
		return false
	}
	if fn.Name() == "Get" && isPoolMethod(fn) {
		return true
	}
	var fact PoolGet
	return pass.ImportObjectFact(fn, &fact)
}

// putsValue reports whether call releases obj: (*sync.Pool).Put(obj) or a
// tkc:pool-put function taking obj.
func putsValue(pass *analysis.Pass, call *ast.CallExpr, obj types.Object) bool {
	fn := callee(pass, call)
	if fn == nil {
		return false
	}
	isPut := fn.Name() == "Put" && isPoolMethod(fn)
	if !isPut {
		var fact PoolPut
		isPut = pass.ImportObjectFact(fn, &fact)
	}
	if !isPut {
		return false
	}
	for _, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
			return true
		}
	}
	return false
}

func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isPoolMethod reports whether fn is a method on *sync.Pool.
func isPoolMethod(fn *types.Func) bool {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "sync" && n.Obj().Name() == "Pool"
}

// borrow is one tracked pooled-value acquisition.
type borrow struct {
	stmt *ast.AssignStmt
	obj  types.Object
}

// checkFunc finds borrows in one function and checks release-on-all-paths
// plus escape rules.
func checkFunc(pass *analysis.Pass, g *cfg.CFG, transfers bool) {
	var borrows []*borrow
	deferred := make(map[types.Object]bool) // objs with a defer'd Put anywhere

	for _, b := range g.Blocks {
		for _, node := range b.Nodes {
			if as, ok := node.(*ast.AssignStmt); ok && len(as.Rhs) == 1 && len(as.Lhs) >= 1 {
				rhs := ast.Unparen(as.Rhs[0])
				// Unwrap x := pool.Get().(*T).
				if ta, ok := rhs.(*ast.TypeAssertExpr); ok {
					rhs = ast.Unparen(ta.X)
				}
				if call, ok := rhs.(*ast.CallExpr); ok && isPoolGet(pass, call) {
					if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
						if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
							borrows = append(borrows, &borrow{stmt: as, obj: obj})
						}
					}
				}
			}
			// A defer'd Put anywhere covers every path.
			if ds, ok := node.(*ast.DeferStmt); ok {
				for _, br := range borrowsIn(pass, ds.Call, borrows) {
					deferred[br] = true
				}
			}
		}
	}
	if len(borrows) == 0 {
		return
	}

	for _, br := range borrows {
		// Escape checks apply everywhere the object is visible.
		checkEscapes(pass, g, br, transfers)
		if deferred[br.obj] || transfers || escapes(pass, g, br) {
			// Deferred release, or ownership moved out: no path check.
			continue
		}
		checkPutPaths(pass, g, br)
	}
}

// borrowsIn returns the borrow objects among call's arguments when call is
// a Put-like call.
func borrowsIn(pass *analysis.Pass, call *ast.CallExpr, borrows []*borrow) []types.Object {
	var out []types.Object
	for _, br := range borrows {
		if putsValue(pass, call, br.obj) {
			out = append(out, br.obj)
		}
	}
	return out
}

// escapes reports whether the borrowed value's ownership moves out of the
// function — assigned into other storage, returned, or sent on a channel.
// A transfer suppresses the Put-on-all-paths check (someone else now owns
// the value); whether the transfer itself was legal is checkEscapes's job.
func escapes(pass *analysis.Pass, g *cfg.CFG, br *borrow) bool {
	usesObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.ObjectOf(id) == br.obj
	}
	found := false
	for _, b := range g.Blocks {
		for _, node := range b.Nodes {
			ast.Inspect(node, func(n ast.Node) bool {
				switch nn := n.(type) {
				case *ast.AssignStmt:
					if nn == br.stmt {
						return true
					}
					for _, r := range nn.Rhs {
						if usesObj(r) {
							found = true
						}
					}
				case *ast.ReturnStmt:
					for _, r := range nn.Results {
						if usesObj(r) {
							found = true
						}
					}
				case *ast.SendStmt:
					if usesObj(nn.Value) {
						found = true
					}
				}
				return true
			})
		}
	}
	return found
}

// checkEscapes reports borrow escapes: returns, channel sends and stores
// to package-level variables. transfers (a tkc:pool-get wrapper) allows
// returns — that is how ownership legitimately leaves the wrapper.
func checkEscapes(pass *analysis.Pass, g *cfg.CFG, br *borrow, transfers bool) {
	usesObj := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.ObjectOf(id) == br.obj
	}
	for _, b := range g.Blocks {
		for _, node := range b.Nodes {
			ast.Inspect(node, func(n ast.Node) bool {
				switch nn := n.(type) {
				case *ast.ReturnStmt:
					if transfers {
						return true
					}
					for _, r := range nn.Results {
						if usesObj(r) {
							pass.Reportf(nn.Pos(), "pooled value %s escapes via return: a borrowed sync.Pool value must be Put, not returned (annotate the function // tkc:pool-get if it transfers ownership by design)", br.obj.Name())
						}
					}
				case *ast.SendStmt:
					if usesObj(nn.Value) {
						pass.Reportf(nn.Pos(), "pooled value %s escapes via channel send: the receiver may use it after it is Put back", br.obj.Name())
					}
				case *ast.AssignStmt:
					if nn == br.stmt {
						return true
					}
					for i, r := range nn.Rhs {
						if !usesObj(r) || i >= len(nn.Lhs) {
							continue
						}
						if id, ok := ast.Unparen(nn.Lhs[i]).(*ast.Ident); ok {
							if v, ok := pass.TypesInfo.ObjectOf(id).(*types.Var); ok && v.Parent() == v.Pkg().Scope() {
								pass.Reportf(nn.Pos(), "pooled value %s escapes into package-level variable %s: the borrow outlives the function", br.obj.Name(), v.Name())
							}
						}
					}
				}
				return true
			})
		}
	}
}

// checkPutPaths verifies a Put on every path from the borrow to exit.
func checkPutPaths(pass *analysis.Pass, g *cfg.CFG, br *borrow) {
	var acqBlock *cfg.Block
	acqIdx := -1
	for _, b := range g.Blocks {
		for i, node := range b.Nodes {
			if node == br.stmt {
				acqBlock, acqIdx = b, i
			}
		}
	}
	if acqBlock == nil {
		return
	}
	released := func(node ast.Node) bool {
		found := false
		ast.Inspect(node, func(n ast.Node) bool {
			if found {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok && putsValue(pass, call, br.obj) {
				found = true
				return false
			}
			return true
		})
		return found
	}
	scan := func(b *cfg.Block, from int) (rel, reborrow bool) {
		for _, node := range b.Nodes[from:] {
			if node == br.stmt {
				return false, true
			}
			if released(node) {
				return true, false
			}
		}
		return false, false
	}
	visited := make(map[*cfg.Block]bool)
	var walk func(b *cfg.Block, from int) bool
	walk = func(b *cfg.Block, from int) bool {
		rel, reborrow := scan(b, from)
		if rel {
			return false
		}
		if reborrow {
			return true
		}
		if len(b.Succs) == 0 {
			if b.Kind == cfg.KindUnreachable {
				return false
			}
			if n := len(b.Nodes); n > 0 && noret.Terminates(pass.TypesInfo, b.Nodes[n-1]) {
				return false // path ends in panic/Fatal/Exit, not a return
			}
			return true
		}
		for _, s := range b.Succs {
			if visited[s] {
				continue
			}
			visited[s] = true
			if walk(s, 0) {
				return true
			}
		}
		return false
	}
	if walk(acqBlock, acqIdx+1) {
		pass.Reportf(br.stmt.Pos(), "pooled value %s may reach function exit without being Put: an early return leaks the borrow and the pool stops amortising (defer the Put, or Put on every path)", br.obj.Name())
	}
}
