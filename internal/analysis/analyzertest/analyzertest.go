// Package analyzertest is a minimal in-process replacement for
// golang.org/x/tools/go/analysis/analysistest, which the Go toolchain's
// vendored x/tools copy (internal/xtools) does not carry. It loads a
// testdata package with go/parser + go/types, runs an analyzer and its
// transitive Requires in dependency order with an in-memory fact store,
// and matches reported diagnostics against analysistest-style
//
//	// want "regexp" `another`
//
// comments on the same source line. Testdata packages must import only
// the standard library (resolved through the compiler's export data).
package analyzertest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"temporalkcore/internal/xtools/go/analysis"
)

// Run loads testdata/src/<pkgpath> relative to dir (usually the analyzer
// package directory) and checks a's diagnostics against // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	pkgdir := filepath.Join(dir, "testdata", "src", pkgpath)

	fset := token.NewFileSet()
	entries, err := os.ReadDir(pkgdir)
	if err != nil {
		t.Fatalf("analyzertest: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(pkgdir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("analyzertest: parse: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("analyzertest: no Go files in %s", pkgdir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check(pkgpath, fset, files, info)
	if err != nil {
		t.Fatalf("analyzertest: typecheck: %v", err)
	}

	diags := runAnalyzer(t, a, fset, files, pkg, info)
	checkDiagnostics(t, fset, files, diags)
}

// runAnalyzer runs a and its transitive Requires in topological order,
// returning a's diagnostics.
func runAnalyzer(t *testing.T, a *analysis.Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []analysis.Diagnostic {
	t.Helper()
	results := make(map[*analysis.Analyzer]any)
	objFacts := make(map[types.Object][]analysis.Fact)
	pkgFacts := make(map[*types.Package][]analysis.Fact)
	var diags []analysis.Diagnostic

	var runOne func(an *analysis.Analyzer)
	runOne = func(an *analysis.Analyzer) {
		if _, done := results[an]; done {
			return
		}
		for _, req := range an.Requires {
			runOne(req)
		}
		pass := &analysis.Pass{
			Analyzer:   an,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   results,
			Report: func(d analysis.Diagnostic) {
				if an == a {
					diags = append(diags, d)
				}
			},
			ReadFile: os.ReadFile,
			ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
				return importFact(objFacts[obj], fact)
			},
			ImportPackageFact: func(p *types.Package, fact analysis.Fact) bool {
				return importFact(pkgFacts[p], fact)
			},
			ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
				objFacts[obj] = append(objFacts[obj], fact)
			},
			ExportPackageFact: func(fact analysis.Fact) {
				pkgFacts[pkg] = append(pkgFacts[pkg], fact)
			},
			AllObjectFacts:  func() []analysis.ObjectFact { return nil },
			AllPackageFacts: func() []analysis.PackageFact { return nil },
		}
		res, err := an.Run(pass)
		if err != nil {
			t.Fatalf("analyzertest: analyzer %s: %v", an.Name, err)
		}
		results[an] = res
	}
	runOne(a)
	return diags
}

// importFact copies the stored fact of fact's concrete type into fact,
// mirroring the gob round-trip real drivers perform.
func importFact(stored []analysis.Fact, fact analysis.Fact) bool {
	want := reflect.TypeOf(fact)
	for _, s := range stored {
		if reflect.TypeOf(s) == want {
			reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(s).Elem())
			return true
		}
	}
	return false
}

// expectation is one // want pattern with its source position.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// checkDiagnostics matches diags against // want comments line-by-line.
func checkDiagnostics(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, pat := range splitPatterns(t, text[idx+len("want "):], pos) {
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("analyzertest: %s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		ok := false
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("analyzertest: unexpected diagnostic at %s:%d: %s", filepath.Base(pos.Filename), pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("analyzertest: no diagnostic at %s:%d matching %q", filepath.Base(w.file), w.line, w.re)
		}
	}
}

// splitPatterns parses the sequence of Go string literals after "want".
func splitPatterns(t *testing.T, s string, pos token.Position) []string {
	t.Helper()
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var lit string
		switch s[0] {
		case '"':
			end := 1
			for end < len(s) {
				if s[end] == '\\' {
					end += 2
					continue
				}
				if s[end] == '"' {
					break
				}
				end++
			}
			if end >= len(s) {
				t.Fatalf("analyzertest: %s: unterminated want pattern", pos)
			}
			lit, s = s[:end+1], strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				t.Fatalf("analyzertest: %s: unterminated want pattern", pos)
			}
			lit, s = s[:end+2], strings.TrimSpace(s[end+2:])
		default:
			t.Fatalf("analyzertest: %s: malformed want clause at %q", pos, s)
		}
		unq, err := strconv.Unquote(lit)
		if err != nil {
			t.Fatalf("analyzertest: %s: bad want literal %s: %v", pos, lit, err)
		}
		out = append(out, unq)
	}
	return out
}
