package serve_test

import (
	"bytes"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	tkc "temporalkcore"
	"temporalkcore/internal/serve"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden HTTP NDJSON files")

// httpGoldenCases lock the full /v1/query response body — the core stream
// AND the stats trailer line — byte for byte. The trailer carries only
// deterministic fields (cores, resultEdges, epoch, cacheHit; timings live
// in /metrics), precisely so this lock is possible. The graphs are the
// same hand-written edge sets the engine-level WriteCores golden suite
// uses, so a diff here but not there points at the serving layer.
var httpGoldenCases = []struct {
	name  string
	edges []tkc.Edge
	body  string
}{
	{
		name: "http_triangle_growing_edges",
		edges: []tkc.Edge{
			{U: 1, V: 2, Time: 10}, {U: 2, V: 3, Time: 11}, {U: 1, V: 3, Time: 12},
			{U: 3, V: 4, Time: 13}, {U: 1, V: 4, Time: 13}, {U: 2, V: 4, Time: 14},
		},
		body: `{"k":2,"start":10,"end":14}`,
	},
	{
		name: "http_triangle_growing_vertices",
		edges: []tkc.Edge{
			{U: 1, V: 2, Time: 10}, {U: 2, V: 3, Time: 11}, {U: 1, V: 3, Time: 12},
			{U: 3, V: 4, Time: 13}, {U: 1, V: 4, Time: 13}, {U: 2, V: 4, Time: 14},
		},
		body: `{"k":2,"start":10,"end":14,"project":"vertices"}`,
	},
	{
		name: "http_two_bursts_count",
		edges: []tkc.Edge{
			{U: 10, V: 20, Time: 1}, {U: 20, V: 30, Time: 1}, {U: 10, V: 30, Time: 2},
			{U: 40, V: 50, Time: 5}, {U: 50, V: 60, Time: 5}, {U: 40, V: 60, Time: 5},
			{U: 10, V: 40, Time: 6}, {U: 20, V: 50, Time: 6}, {U: 10, V: 20, Time: 7},
			{U: 10, V: 30, Time: 7}, {U: 20, V: 30, Time: 7},
		},
		body: `{"k":2,"project":"count"}`,
	},
	{
		name: "http_two_bursts_earlystop",
		edges: []tkc.Edge{
			{U: 10, V: 20, Time: 1}, {U: 20, V: 30, Time: 1}, {U: 10, V: 30, Time: 2},
			{U: 40, V: 50, Time: 5}, {U: 50, V: 60, Time: 5}, {U: 40, V: 60, Time: 5},
			{U: 10, V: 40, Time: 6}, {U: 20, V: 50, Time: 6}, {U: 10, V: 20, Time: 7},
			{U: 10, V: 30, Time: 7}, {U: 20, V: 30, Time: 7},
		},
		body: `{"k":2,"earlyStop":2}`,
	},
	{
		name: "http_no_cores",
		edges: []tkc.Edge{
			{U: 1, V: 2, Time: 1}, {U: 3, V: 4, Time: 2}, {U: 5, V: 6, Time: 3},
		},
		body: `{"k":2}`,
	},
}

func TestHTTPQueryGolden(t *testing.T) {
	for _, tc := range httpGoldenCases {
		t.Run(tc.name, func(t *testing.T) {
			g, err := tkc.NewGraph(tc.edges)
			if err != nil {
				t.Fatal(err)
			}
			_, ts := newTestServer(t, serve.Config{Graph: g})
			resp, err := http.Post(ts.URL+"/v1/query", "application/json",
				strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			got, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d: %s", resp.StatusCode, got)
			}

			path := filepath.Join("testdata", "golden", tc.name+".ndjson")
			if *updateGolden {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("HTTP response drifted from golden %s.\n--- got ---\n%s--- want ---\n%s",
					path, got, want)
			}
		})
	}
}
