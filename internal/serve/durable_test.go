package serve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	tkc "temporalkcore"
	"temporalkcore/internal/serve"
)

// postAppend posts body lines to /v1/append with the given per-request
// batch size, returning the status code and decoded JSON body (success and
// the structured append-error contract share the field set).
func postAppend(t testing.TB, base, body string, batch int) (int, appendBody) {
	t.Helper()
	url := base + "/v1/append"
	if batch > 0 {
		url = fmt.Sprintf("%s?batch=%d", url, batch)
	}
	resp, err := http.Post(url, "application/x-ndjson", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/append: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading append response: %v", err)
	}
	var ab appendBody
	if err := json.Unmarshal(raw, &ab); err != nil {
		t.Fatalf("undecodable append body %q: %v", raw, err)
	}
	return resp.StatusCode, ab
}

type appendBody struct {
	Error   string `json:"error"`
	Added   int    `json:"added"`
	Batches int    `json:"batches"`
	Epoch   int64  `json:"epoch"`
	Edges   int    `json:"edges"`
}

// pathEdges renders a simple path stream: edge i joins (i, i+1) at time
// i+1, so every batch is valid, distinct and strictly time-ordered.
func pathEdges(from, to int) string {
	var b strings.Builder
	for i := from; i < to; i++ {
		fmt.Fprintf(&b, "%d %d %d\n", i, i+1, i+1)
	}
	return b.String()
}

// TestDurableServeRestartWarm is the end-to-end warm-restart contract:
// ingest over HTTP into a data directory, query twice (cold then cached),
// snapshot, shut the durable tier down, reopen the directory with a fresh
// server — and the FIRST repeat query after the restart must already be a
// cache hit, byte-identical to the pre-restart response.
func TestDurableServeRestartWarm(t *testing.T) {
	dir := t.TempDir()
	d, err := tkc.OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	_, ts := newTestServer(t, serve.Config{Durable: d})

	edges := genEdges(t, 21, 300)
	status, ab := postAppend(t, ts.URL, ndjsonEdges(edges), 100)
	if status != http.StatusOK || ab.Error != "" {
		t.Fatalf("append: status %d, error %q", status, ab.Error)
	}

	const q = `{"k":2}`
	status, _, coldLines, cold := postQuery(t, ts.URL, q)
	if status != http.StatusOK || cold.Stats == nil {
		t.Fatalf("cold query: status %d", status)
	}
	if cold.Stats.CacheHit {
		t.Fatal("first query on a fresh durable server reported a cache hit")
	}
	_, _, _, warm := postQuery(t, ts.URL, q)
	if !warm.Stats.CacheHit {
		t.Fatal("repeat query did not hit the serving cache")
	}

	resp, err := http.Post(ts.URL+"/v1/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Snapshot int64 `json:"snapshot"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("snapshot body: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || snap.Snapshot != cold.Stats.Epoch {
		t.Fatalf("snapshot: status %d seq %d, want 200 at epoch %d", resp.StatusCode, snap.Snapshot, cold.Stats.Epoch)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Restart: a brand-new process image over the same directory.
	d2, err := tkc.OpenDir(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	if d2.Seq() != snap.Snapshot {
		t.Fatalf("recovered seq %d, want %d", d2.Seq(), snap.Snapshot)
	}
	if d2.WarmEntries() < 1 {
		t.Fatalf("warm spill re-admitted %d entries, want >= 1", d2.WarmEntries())
	}
	_, ts2 := newTestServer(t, serve.Config{Durable: d2})

	status, _, warmLines, first := postQuery(t, ts2.URL, q)
	if status != http.StatusOK || first.Stats == nil {
		t.Fatalf("post-restart query: status %d", status)
	}
	if !first.Stats.CacheHit {
		t.Fatal("first repeat query after restart was not a cache hit (warm spill not admitted)")
	}
	if first.Stats.Epoch != cold.Stats.Epoch {
		t.Fatalf("post-restart epoch %d, want %d", first.Stats.Epoch, cold.Stats.Epoch)
	}
	if !bytes.Equal(warmLines, coldLines) {
		t.Fatal("post-restart response differs from the pre-restart one")
	}

	// The restarted tier is live: appends continue past the recovered state
	// (timestamps beyond any the generator produced keep the stream ordered).
	status, ab = postAppend(t, ts2.URL, "1 2 1000000\n2 3 1000001\n3 4 1000002\n", 0)
	if status != http.StatusOK || ab.Epoch <= snap.Snapshot {
		t.Fatalf("append after restart: status %d epoch %d, want 200 past %d", status, ab.Epoch, snap.Snapshot)
	}
}

// TestAppendAtomicityContract locks the batch-granular error contract on
// the durable path: a failing batch is discarded whole — nothing applied,
// logged or published — earlier batches stay committed, the 400 body pins
// the committed frontier exactly, and a reopen of the data directory
// recovers that frontier and nothing more.
func TestAppendAtomicityContract(t *testing.T) {
	dir := t.TempDir()
	d, err := tkc.OpenDir(dir)
	if err != nil {
		t.Fatalf("OpenDir: %v", err)
	}
	_, ts := newTestServer(t, serve.Config{Durable: d})

	// Batch 1 bootstraps (5 edges), batch 2 commits (5 edges), batch 3 has
	// an out-of-order timestamp in its middle: the whole batch must vanish,
	// including the two valid edges before the bad one.
	body := pathEdges(0, 10) +
		"90 91 100\n91 92 101\n92 93 1\n93 94 102\n94 95 103\n"
	status, ab := postAppend(t, ts.URL, body, 5)
	if status != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", status)
	}
	if ab.Error == "" || !strings.Contains(ab.Error, "time order") {
		t.Fatalf("error %q does not name the time-order violation", ab.Error)
	}
	if ab.Added != 10 || ab.Batches != 2 || ab.Epoch != 1 {
		t.Fatalf("committed frontier {added:%d batches:%d epoch:%d}, want {10 2 1}", ab.Added, ab.Batches, ab.Epoch)
	}

	st := fetchStats(t, ts.URL)
	if st.Epoch != 1 || st.Edges != 10 {
		t.Fatalf("served state epoch %d edges %d, want 1/10: failed batch leaked", st.Epoch, st.Edges)
	}

	// A parse error inside a batch discards that batch the same way: the
	// valid lines before the garbage line are not applied.
	status, ab = postAppend(t, ts.URL, "10 11 50\n11 12 51\nnot an edge\n", 5)
	if status != http.StatusBadRequest || ab.Added != 0 || ab.Batches != 0 || ab.Epoch != 1 {
		t.Fatalf("parse failure: status %d body %+v, want 400 with zero new work at epoch 1", status, ab)
	}
	st = fetchStats(t, ts.URL)
	if st.Epoch != 1 || st.Edges != 10 {
		t.Fatalf("after parse failure: epoch %d edges %d, want 1/10", st.Epoch, st.Edges)
	}

	// Durability agrees with the contract: reopening the directory recovers
	// exactly the committed frontier (the rejected batches were WAL-logged
	// but replay rejects them identically).
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	d2, err := tkc.OpenDir(dir)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer d2.Close()
	if d2.Seq() != 1 || d2.Graph().NumEdges() != 10 {
		t.Fatalf("recovered seq %d edges %d, want 1/10", d2.Seq(), d2.Graph().NumEdges())
	}
}
