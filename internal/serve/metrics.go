package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// histBuckets is the number of exponential latency buckets: bucket i
// covers [1µs·2^(i-1), 1µs·2^i), so the range spans 1µs to ~1.1 minutes
// with the last bucket absorbing everything slower.
const histBuckets = 27

// histBase is the upper bound of the first bucket.
const histBase = time.Microsecond

// Recorder is the in-process metrics recorder behind /metrics and
// /v1/stats: per-endpoint request counts by status code and latency
// histograms from which p50/p99 are estimated. It allocates nothing per
// Record call beyond first sight of an (endpoint, code) pair, so
// instrumenting the hot serving path is free of measurable overhead.
type Recorder struct {
	mu  sync.Mutex
	eps map[string]*endpointRec // tkc:guardedby mu
}

// endpointRec values live entirely inside their Recorder's critical
// sections: every field is guarded by the owning Recorder's mu.
type endpointRec struct {
	codes map[int]int64      // tkc:guardedby Recorder.mu
	count int64              // tkc:guardedby Recorder.mu
	sum   time.Duration      // tkc:guardedby Recorder.mu
	hist  [histBuckets]int64 // tkc:guardedby Recorder.mu
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder {
	return &Recorder{eps: make(map[string]*endpointRec)}
}

// Record adds one observation for endpoint: its response code and latency.
func (r *Recorder) Record(endpoint string, code int, d time.Duration) {
	if d < 0 {
		d = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ep := r.eps[endpoint]
	if ep == nil {
		ep = &endpointRec{codes: make(map[int]int64)}
		r.eps[endpoint] = ep
	}
	ep.codes[code]++
	ep.count++
	ep.sum += d
	ep.hist[bucketOf(d)]++
}

// bucketOf maps a latency to its histogram bucket.
func bucketOf(d time.Duration) int {
	bound := histBase
	for i := 0; i < histBuckets-1; i++ {
		if d < bound {
			return i
		}
		bound <<= 1
	}
	return histBuckets - 1
}

// bucketBound returns the upper latency bound of bucket i.
func bucketBound(i int) time.Duration { return histBase << i }

// EndpointSnapshot is one endpoint's recorded state.
type EndpointSnapshot struct {
	Endpoint string
	Codes    map[int]int64
	Count    int64
	Sum      time.Duration
	P50      time.Duration
	P99      time.Duration
}

// Snapshot returns a copy of every endpoint's counters with estimated
// latency quantiles, sorted by endpoint name.
func (r *Recorder) Snapshot() []EndpointSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]EndpointSnapshot, 0, len(r.eps))
	for name, ep := range r.eps {
		s := EndpointSnapshot{
			Endpoint: name,
			Codes:    make(map[int]int64, len(ep.codes)),
			Count:    ep.count,
			Sum:      ep.sum,
			P50:      ep.quantile(0.50),
			P99:      ep.quantile(0.99),
		}
		for c, n := range ep.codes {
			s.Codes[c] = n
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Endpoint < out[j].Endpoint })
	return out
}

// quantile estimates the q-quantile from the histogram by linear
// interpolation inside the covering bucket. With no observations it
// returns 0.
//
// tkc:guardheld Recorder.mu: only called from Snapshot inside r.mu
func (ep *endpointRec) quantile(q float64) time.Duration {
	if ep.count == 0 {
		return 0
	}
	target := q * float64(ep.count)
	var cum float64
	for i, n := range ep.hist {
		if n == 0 {
			continue
		}
		next := cum + float64(n)
		if next >= target {
			lo := time.Duration(0)
			if i > 0 {
				lo = bucketBound(i - 1)
			}
			hi := bucketBound(i)
			frac := (target - cum) / float64(n)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum = next
	}
	return bucketBound(histBuckets - 1)
}

// WritePrometheus renders the recorder (and the extra gauge/counter pairs)
// in the Prometheus text exposition format.
func (r *Recorder) WritePrometheus(b *strings.Builder, extra map[string]float64) {
	snaps := r.Snapshot()
	b.WriteString("# HELP tkc_requests_total Requests served, by endpoint and status code.\n")
	b.WriteString("# TYPE tkc_requests_total counter\n")
	for _, s := range snaps {
		codes := make([]int, 0, len(s.Codes))
		for c := range s.Codes {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(b, "tkc_requests_total{endpoint=%q,code=\"%d\"} %d\n", s.Endpoint, c, s.Codes[c])
		}
	}
	b.WriteString("# HELP tkc_request_duration_seconds Request latency quantiles, estimated from an exponential histogram.\n")
	b.WriteString("# TYPE tkc_request_duration_seconds summary\n")
	for _, s := range snaps {
		fmt.Fprintf(b, "tkc_request_duration_seconds{endpoint=%q,quantile=\"0.5\"} %g\n", s.Endpoint, s.P50.Seconds())
		fmt.Fprintf(b, "tkc_request_duration_seconds{endpoint=%q,quantile=\"0.99\"} %g\n", s.Endpoint, s.P99.Seconds())
		fmt.Fprintf(b, "tkc_request_duration_seconds_sum{endpoint=%q} %g\n", s.Endpoint, s.Sum.Seconds())
		fmt.Fprintf(b, "tkc_request_duration_seconds_count{endpoint=%q} %d\n", s.Endpoint, s.Count)
	}
	names := make([]string, 0, len(extra))
	for n := range extra {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(b, "# TYPE %s gauge\n%s %g\n", n, n, extra[n])
	}
}
