package serve_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	tkc "temporalkcore"
	"temporalkcore/internal/serve"
)

// newShardedServer builds a sharded graph over a seeded edge list, mounts
// it on an httptest server and returns the graph plus the base URL.
func newShardedServer(t testing.TB, edges []tkc.Edge, o tkc.ShardOptions, cfg serve.Config) (*tkc.ShardedGraph, string) {
	t.Helper()
	g, err := tkc.NewGraph(edges)
	if err != nil {
		t.Fatal(err)
	}
	sg, err := tkc.ShardGraph(g, o)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sg.Close() })
	cfg.Sharded = sg
	_, ts := newTestServer(t, cfg)
	return sg, ts.URL
}

// TestShardedServeMatchesInProcess locks the sharded wire contract: the
// HTTP core stream (minus the trailer) byte-matches Request.WriteTo on the
// unsharded spine — the same oracle the engine-level differential uses —
// and the trailer reports the scatter width.
func TestShardedServeMatchesInProcess(t *testing.T) {
	edges := genEdges(t, 7, 300)
	sg, base := newShardedServer(t, edges, tkc.ShardOptions{Shards: 3, Replicas: 2}, serve.Config{})
	spine := sg.Spine()
	lo, hi := spine.TimeSpan()
	mid := lo + (hi-lo)/2

	cases := []struct {
		name string
		body string
		q    tkc.QueryJSON
	}{
		{"full_default", `{"k":2}`, tkc.QueryJSON{K: 2}},
		{"window_edges", fmt.Sprintf(`{"k":2,"start":%d,"end":%d}`, lo, mid),
			tkc.QueryJSON{K: 2, Start: &lo, End: &mid}},
		{"vertices", `{"k":3,"project":"vertices"}`, tkc.QueryJSON{K: 3, Project: "vertices"}},
		{"count", `{"k":2,"project":"count"}`, tkc.QueryJSON{K: 2, Project: "count"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, hdr, lines, tr := postQuery(t, base, tc.body)
			if status != http.StatusOK {
				t.Fatalf("status %d, error %q", status, tr.Error)
			}
			if hdr.Get("X-Tkc-Epoch") != "0" {
				t.Errorf("X-Tkc-Epoch = %q, want 0", hdr.Get("X-Tkc-Epoch"))
			}
			want := inProcess(t, spine, tc.q)
			if string(lines) != string(want) {
				t.Fatalf("sharded wire stream diverged from the unsharded oracle:\n got %q\nwant %q", lines, want)
			}
			if tr.Stats == nil || tr.Stats.Shards < 1 {
				t.Fatalf("trailer did not report shard spans: %+v", tr.Stats)
			}
		})
	}

	// The algorithm override is rejected eagerly on a sharded source.
	status, _, _, tr := postQuery(t, base, `{"k":2,"algorithm":"otcd"}`)
	if status != http.StatusBadRequest {
		t.Fatalf("algorithm override on a sharded server: status %d, error %q", status, tr.Error)
	}
}

// TestShardedServeAppendSealAndPinning drives the full lifecycle over the
// wire: appends route through the frontier shard (auto-sealing mid-stream),
// every batch publishes a retained sharded view, and a pinned epoch keeps
// answering with the directory it was published under.
func TestShardedServeAppendSealAndPinning(t *testing.T) {
	edges := genEdges(t, 11, 360)
	head, rest := edges[:240], edges[240:]
	sg, base := newShardedServer(t, head,
		tkc.ShardOptions{Shards: 2, MaxShardEdges: 60, Replicas: 2},
		serve.Config{EpochRetain: 16})
	startShards := sg.NumShards()

	_, _, beforeLines, beforeTr := postQuery(t, base, `{"k":2}`)
	if beforeTr.Stats == nil {
		t.Fatalf("no stats trailer: %+v", beforeTr)
	}
	pinned := beforeTr.Stats.Epoch

	resp, err := http.Post(base+"/v1/append?batch=40", "application/x-ndjson",
		strings.NewReader(ndjsonEdges(rest)))
	if err != nil {
		t.Fatal(err)
	}
	var ar struct {
		Added   int   `json:"added"`
		Batches int   `json:"batches"`
		Epoch   int64 `json:"epoch"`
		Edges   int   `json:"edges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ar.Added == 0 || ar.Batches < 3 {
		t.Fatalf("append: status %d body %+v", resp.StatusCode, ar)
	}
	if ar.Edges != sg.Spine().NumEdges() {
		t.Fatalf("append reported %d edges, spine has %d", ar.Edges, sg.Spine().NumEdges())
	}
	if sg.NumShards() <= startShards {
		t.Fatalf("appends never auto-sealed: %d shards before and after", startShards)
	}

	// Latest now serves the grown graph under more shards...
	_, _, afterLines, afterTr := postQuery(t, base, `{"k":2}`)
	if afterTr.Stats.Epoch != ar.Epoch {
		t.Fatalf("latest query epoch %d, append finished at %d", afterTr.Stats.Epoch, ar.Epoch)
	}
	if string(afterLines) == string(beforeLines) {
		t.Fatal("append did not change the k-core stream; the lifecycle test is vacuous")
	}
	// ...while the pinned epoch still answers with its publish-time state.
	status, hdr, pinnedLines, pinnedTr := postQuery(t, base, fmt.Sprintf(`{"k":2,"epoch":%d}`, pinned))
	if status != http.StatusOK {
		t.Fatalf("pinned query: status %d, error %q", status, pinnedTr.Error)
	}
	if hdr.Get("X-Tkc-Epoch") != fmt.Sprint(pinned) {
		t.Errorf("pinned X-Tkc-Epoch = %q, want %d", hdr.Get("X-Tkc-Epoch"), pinned)
	}
	if string(pinnedLines) != string(beforeLines) {
		t.Fatal("pinned sharded epoch served different bytes than it did at publish time")
	}
	// An unretained epoch is 410.
	if status, _, _, _ := postQuery(t, base, `{"k":2,"epoch":999999}`); status != http.StatusGone {
		t.Fatalf("unretained epoch: status %d, want 410", status)
	}

	// /v1/stats exposes the per-shard breakdown, frontier last.
	sr, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Epoch  int64 `json:"epoch"`
		Edges  int   `json:"edges"`
		Shards []struct {
			ID        int   `json:"id"`
			Sealed    bool  `json:"sealed"`
			Edges     int   `json:"edges"`
			Replicas  int   `json:"replicas"`
			Tasks     int64 `json:"tasks"`
			CacheHits int64 `json:"cacheHits"`
		} `json:"shards"`
	}
	if err := json.NewDecoder(sr.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	sr.Body.Close()
	if len(stats.Shards) != sg.NumShards() {
		t.Fatalf("/v1/stats has %d shards, graph has %d", len(stats.Shards), sg.NumShards())
	}
	total, tasks := 0, int64(0)
	for i, sh := range stats.Shards {
		if sh.ID != i {
			t.Fatalf("shards[%d].id = %d", i, sh.ID)
		}
		if sh.Sealed != (i < len(stats.Shards)-1) {
			t.Fatalf("shards[%d].sealed = %v", i, sh.Sealed)
		}
		if sh.Replicas < 1 {
			t.Fatalf("shards[%d].replicas = %d", i, sh.Replicas)
		}
		total += sh.Edges
		tasks += sh.Tasks
	}
	if total != stats.Edges {
		t.Fatalf("shard edges sum to %d, stats.edges = %d", total, stats.Edges)
	}
	if tasks == 0 {
		t.Fatal("no shard reported any executed span tasks after three queries")
	}

	// /metrics carries the labelled per-shard families.
	mr, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(mr.Body)
	mr.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(raw)
	for _, want := range []string{
		"# TYPE tkc_shard_edges gauge",
		`tkc_shard_sealed{shard="0"} 1`,
		fmt.Sprintf(`tkc_shard_sealed{shard="%d"} 0`, sg.NumShards()-1),
		`tkc_shard_tasks_total{shard="`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics is missing %q", want)
		}
	}

	// Without a data directory, snapshot is refused.
	if resp, err := http.Post(base+"/v1/snapshot", "application/json", nil); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("snapshot without -data: status %d, want 409", resp.StatusCode)
		}
	}
}

// TestShardedServeDurableSnapshot serves a durable sharded graph and
// exercises POST /v1/snapshot end to end.
func TestShardedServeDurableSnapshot(t *testing.T) {
	dir := t.TempDir()
	sg, err := tkc.BootstrapShardedDir(dir, genEdges(t, 13, 240), tkc.ShardOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer sg.Close()
	_, ts := newTestServer(t, serve.Config{Sharded: sg})
	base := ts.URL

	if status, _, _, tr := postQuery(t, base, `{"k":2}`); status != http.StatusOK {
		t.Fatalf("query on durable sharded server: status %d, error %q", status, tr.Error)
	}
	resp, err := http.Post(base+"/v1/snapshot", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var sr struct {
		Snapshot int64 `json:"snapshot"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || sr.Snapshot < 0 {
		t.Fatalf("snapshot: status %d body %+v", resp.StatusCode, sr)
	}
}
