package serve

import (
	"context"
	"sync/atomic"
	"time"
)

// admission is the semaphore-based admission controller in front of the
// query/append path. A request claims a slot before any engine work runs
// and releases it when its response completes; a request that cannot claim
// a slot within the configured wait is refused, and the handler answers
// 503 with Retry-After — the server sheds load at the front door instead
// of queuing goroutines (and their scratch arenas) unboundedly behind a
// saturated engine.
type admission struct {
	sem      chan struct{}
	wait     time.Duration
	rejected atomic.Int64
}

func newAdmission(slots int, wait time.Duration) *admission {
	return &admission{sem: make(chan struct{}, slots), wait: wait}
}

// acquire claims a slot, waiting at most the admission wait (or until ctx
// is done, whichever is sooner). It reports whether the slot was claimed;
// a refusal is counted.
func (a *admission) acquire(ctx context.Context) bool {
	select {
	case a.sem <- struct{}{}:
		return true
	default:
	}
	t := time.NewTimer(a.wait)
	defer t.Stop()
	select {
	case a.sem <- struct{}{}:
		return true
	case <-t.C:
	case <-ctx.Done():
	}
	a.rejected.Add(1)
	return false
}

// release returns a claimed slot.
func (a *admission) release() { <-a.sem }

// inflight returns the number of currently claimed slots.
func (a *admission) inflight() int { return len(a.sem) }

// rejectedTotal returns the number of refused requests so far.
func (a *admission) rejectedTotal() int64 { return a.rejected.Load() }
