package serve_test

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"testing"
	"time"

	tkc "temporalkcore"
	"temporalkcore/internal/bench"
	"temporalkcore/internal/serve"
)

// cmServeReplica mirrors the root package's cmReplica helper: a synthetic
// CM-shaped replica at the given edge scale, plus a mid-selectivity k.
func cmServeReplica(tb testing.TB, edges int) (*tkc.Graph, int) {
	tb.Helper()
	d, err := bench.LoadDataset("CM", edges, 42)
	if err != nil {
		tb.Fatal(err)
	}
	raw := make([]tkc.Edge, 0, d.G.NumEdges())
	for _, te := range d.G.Edges() {
		raw = append(raw, tkc.Edge{U: d.G.Label(te.U), V: d.G.Label(te.V), Time: d.G.RawTime(te.T)})
	}
	g, err := tkc.NewGraph(raw)
	if err != nil {
		tb.Fatal(err)
	}
	return g, d.K(30)
}

// BenchmarkServeQueryWarm is the headline serving number the bench gate
// tracks: a warm (qcache-served) point query — earlyStop:1 over a trailing
// window — through the whole HTTP stack: admission, JSON decode, cache
// lookup, chunked write, trailer. The in-process warm First on this
// replica is tens of microseconds (see the root warm benchmarks), so this
// benchmark is effectively the serving layer's per-request wire floor.
func BenchmarkServeQueryWarm(b *testing.B) {
	g, k := cmServeReplica(b, 6000)
	_, ts := newTestServer(b, serve.Config{Graph: g})
	lo, hi := g.TimeSpan()
	body := fmt.Sprintf(`{"k":%d,"start":%d,"end":%d,"project":"count","earlyStop":1}`,
		k, lo+(hi-lo)*7/10, hi)
	client := &http.Client{}

	warm := func() (int, error) {
		resp, err := client.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, nil
	}
	if code, err := warm(); err != nil || code != http.StatusOK {
		b.Fatalf("warmup: status %d err %v", code, err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code, err := warm(); err != nil || code != http.StatusOK {
			b.Fatalf("status %d err %v", code, err)
		}
	}
}

// TestWarmHTTPWithin2xInProcess is the latency acceptance bound: the p50
// of a warm windowed count query over loopback HTTP must stay within 2×
// the warm in-process run of the same request on the same graph (same
// qcache). The window is sized by measurement — widened until the warm
// in-process replay costs at least ~2ms — so the fixed per-request HTTP
// cost (connection handling, JSON decode, chunked framing; roughly
// hundreds of microseconds on loopback) must fit inside the 2× headroom
// rather than being compared against a microsecond-scale point query it
// could never beat. Both sides run in one process, so scheduler noise
// hits them alike.
func TestWarmHTTPWithin2xInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("latency measurement; skipped in -short")
	}
	g, k := cmServeReplica(t, 6000)
	_, ts := newTestServer(t, serve.Config{Graph: g})
	lo, hi := g.TimeSpan()
	span := hi - lo

	inprocOnce := func(q tkc.QueryJSON) time.Duration {
		req, err := q.Request(g)
		if err != nil {
			t.Fatal(err)
		}
		t0 := time.Now()
		if _, err := req.WriteTo(context.Background(), io.Discard); err != nil {
			t.Fatal(err)
		}
		return time.Since(t0)
	}

	// Widen the query window until the warm in-process replay is slow
	// enough to dominate the wire cost (first run per window is the cold
	// CoreTime build; the rest are warm measurements). Calibrate on the
	// minimum of several warm replays: background load can only inflate a
	// sample, and a single inflated sample here would pick a window whose
	// true cost is too small to amortise the fixed per-request HTTP floor.
	var q tkc.QueryJSON
	var qBody string
	for _, pct := range []int64{10, 20, 40, 70, 100} {
		s, e := hi-span*pct/100, hi
		q = tkc.QueryJSON{K: k, Start: &s, End: &e, Project: "count"}
		qBody = fmt.Sprintf(`{"k":%d,"start":%d,"end":%d,"project":"count"}`, k, s, e)
		inprocOnce(q)
		warm := inprocOnce(q)
		for i := 0; i < 2; i++ {
			if again := inprocOnce(q); again < warm {
				warm = again
			}
		}
		if warm >= 4*time.Millisecond {
			t.Logf("window: trailing %d%% of span (warm in-process ~%v)", pct, warm)
			break
		}
	}

	client := &http.Client{}
	httpOnce := func() time.Duration {
		t0 := time.Now()
		resp, err := client.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(qBody))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		d := time.Since(t0)
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d err %v", resp.StatusCode, err)
		}
		if !bytes.Contains(raw, []byte(`"cacheHit":true`)) {
			t.Fatalf("repeat query missed the cache; body tail: %s", raw[bytes.LastIndexByte(bytes.TrimSpace(raw), '\n')+1:])
		}
		return d
	}

	// Interleave the two sides sample by sample so background load during
	// the run (CI runs other jobs on this machine) skews both medians
	// alike instead of landing entirely on whichever side runs second.
	const iters = 25
	inLat, httpLat := make([]time.Duration, iters), make([]time.Duration, iters)
	for i := 0; i < iters; i++ {
		inLat[i] = inprocOnce(q)
		httpLat[i] = httpOnce()
	}
	p50 := func(lat []time.Duration) time.Duration {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[len(lat)/2]
	}
	inproc, httpP50 := p50(inLat), p50(httpLat)

	t.Logf("warm p50: in-process %v, http %v (%.2fx)", inproc, httpP50, float64(httpP50)/float64(inproc))
	if httpP50 > 2*inproc {
		t.Errorf("warm HTTP p50 %v exceeds 2x in-process %v", httpP50, inproc)
	}
}
