package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	tkc "temporalkcore"
	"temporalkcore/internal/gen"
	"temporalkcore/internal/serve"
	"temporalkcore/internal/tgraph"
)

// genEdges synthesises a deterministic seeded graph (the hub-core +
// community-burst model every differential suite uses) and returns its raw
// edges in time order, ready for NewGraph or for streaming appends.
func genEdges(t testing.TB, seed int64, n int) []tkc.Edge {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	cfg := gen.Config{
		Name:        "servetest",
		Seed:        seed,
		Vertices:    30 + r.Intn(40),
		Edges:       n,
		Timestamps:  n/6 + 10,
		HubEdgeProb: 0.25 + 0.2*r.Float64(),
		MixEdgeProb: 0.3,
		Burstiness:  0.3,
		Communities: 2,
	}
	ig, err := gen.Generate(cfg)
	if err != nil {
		t.Fatalf("seed %d: gen: %v", seed, err)
	}
	edges := make([]tkc.Edge, ig.NumEdges())
	for i := range edges {
		te := ig.Edge(tgraph.EID(i))
		edges[i] = tkc.Edge{U: ig.Label(te.U), V: ig.Label(te.V), Time: ig.RawTime(te.T)}
	}
	return edges
}

// newTestServer mounts a serve.Server on an httptest server.
func newTestServer(t testing.TB, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	s := serve.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// trailerJSON is the decoded last line of a /v1/query response.
type trailerJSON struct {
	Stats *struct {
		Cores       int64 `json:"cores"`
		ResultEdges int64 `json:"resultEdges"`
		Epoch       int64 `json:"epoch"`
		CacheHit    bool  `json:"cacheHit"`
		Shards      int   `json:"shards"`
	} `json:"stats"`
	Error string `json:"error"`
	Epoch int64  `json:"epoch"`
}

// postQuery posts a raw JSON body to /v1/query and splits the NDJSON
// response into core lines and the decoded trailer.
func postQuery(t testing.TB, base, body string) (status int, hdr http.Header, coreLines []byte, tr trailerJSON) {
	t.Helper()
	resp, err := http.Post(base+"/v1/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/query: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading query response: %v", err)
	}
	status = resp.StatusCode
	hdr = resp.Header
	if status != http.StatusOK {
		if err := json.Unmarshal(raw, &tr); err != nil {
			t.Fatalf("status %d with undecodable body %q: %v", status, raw, err)
		}
		return status, hdr, nil, tr
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))
	if len(lines) > 0 && len(lines[len(lines)-1]) == 0 {
		lines = lines[:len(lines)-1]
	}
	if len(lines) == 0 {
		t.Fatalf("200 response with empty body")
	}
	last := lines[len(lines)-1]
	if err := json.Unmarshal(last, &tr); err != nil || (tr.Stats == nil && tr.Error == "") {
		t.Fatalf("response has no stats/error trailer; last line %q (err %v)", last, err)
	}
	coreLines = raw[:len(raw)-len(last)]
	return status, hdr, coreLines, tr
}

// inProcess renders the same query through Request.WriteTo on g — the
// byte-exactness oracle for the wire format.
func inProcess(t testing.TB, g *tkc.Graph, q tkc.QueryJSON) []byte {
	t.Helper()
	req, err := q.Request(g)
	if err != nil {
		t.Fatalf("in-process request: %v", err)
	}
	var buf bytes.Buffer
	if _, err := req.WriteTo(context.Background(), &buf); err != nil {
		t.Fatalf("in-process WriteTo: %v", err)
	}
	return buf.Bytes()
}

// ndjsonEdges renders edges as the append wire format.
func ndjsonEdges(edges []tkc.Edge) string {
	var b strings.Builder
	for _, e := range edges {
		fmt.Fprintf(&b, "{\"u\":%d,\"v\":%d,\"t\":%d}\n", e.U, e.V, e.Time)
	}
	return b.String()
}

// TestQueryMatchesInProcess locks the end-to-end contract: the HTTP
// response body (minus the stats trailer) byte-matches Request.WriteTo on
// the same graph, across seeds, k values and projections.
func TestQueryMatchesInProcess(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		edges := genEdges(t, seed, 200+int(seed)*40)
		g, err := tkc.NewGraph(edges)
		if err != nil {
			t.Fatal(err)
		}
		_, ts := newTestServer(t, serve.Config{Graph: g})
		lo, hi := g.TimeSpan()
		mid := lo + (hi-lo)/2

		cases := []struct {
			name string
			body string
			q    tkc.QueryJSON
		}{
			{"full_default", `{"k":2}`, tkc.QueryJSON{K: 2}},
			{"window_edges", fmt.Sprintf(`{"k":2,"start":%d,"end":%d}`, lo, mid),
				tkc.QueryJSON{K: 2, Start: &lo, End: &mid}},
			{"vertices", `{"k":3,"project":"vertices"}`, tkc.QueryJSON{K: 3, Project: "vertices"}},
			{"count", `{"k":2,"project":"count"}`, tkc.QueryJSON{K: 2, Project: "count"}},
			{"base_algo", `{"k":2,"algorithm":"base"}`, tkc.QueryJSON{K: 2, Algorithm: "base"}},
		}
		for _, tc := range cases {
			t.Run(fmt.Sprintf("seed%d/%s", seed, tc.name), func(t *testing.T) {
				status, hdr, lines, tr := postQuery(t, ts.URL, tc.body)
				if status != http.StatusOK {
					t.Fatalf("status %d, error %q", status, tr.Error)
				}
				if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
					t.Errorf("Content-Type = %q", ct)
				}
				if hdr.Get("X-Tkc-Epoch") != "0" {
					t.Errorf("X-Tkc-Epoch = %q, want 0", hdr.Get("X-Tkc-Epoch"))
				}
				want := inProcess(t, g, tc.q)
				if !bytes.Equal(lines, want) {
					t.Errorf("HTTP body differs from in-process WriteTo.\n--- http ---\n%s--- in-process ---\n%s", lines, want)
				}
				if tr.Stats == nil {
					t.Fatalf("missing stats trailer")
				}
				if tr.Stats.Epoch != 0 {
					t.Errorf("trailer epoch = %d, want 0", tr.Stats.Epoch)
				}
			})
		}
	}
}

// TestAppendThenQueryMatchesDirect: edges ingested over HTTP produce the
// same served state as a direct Graph.Append, and each batch publishes an
// epoch the stats endpoint reports.
func TestAppendThenQueryMatchesDirect(t *testing.T) {
	edges := genEdges(t, 7, 240)
	baseN := 180
	g, err := tkc.NewGraph(edges[:baseN])
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, serve.Config{Graph: g, AppendBatch: 20})

	resp, err := http.Post(ts.URL+"/v1/append", "application/x-ndjson",
		strings.NewReader(ndjsonEdges(edges[baseN:])))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ar struct {
		Added, Batches, Edges int
		Epoch                 int64
	}
	if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("append: status %d, decode err %v", resp.StatusCode, err)
	}
	if ar.Batches < 3 {
		t.Errorf("append batches = %d, want >= 3 (60 edges / 20 per batch)", ar.Batches)
	}

	// Direct oracle replays the server's construction path — same base,
	// same 20-edge batch boundaries. (An appended graph's adjacency layout,
	// and hence WriteTo's intra-core edge order, depends on the batching;
	// core sets do not, which the differential suites cover.)
	direct, err := tkc.NewGraph(edges[:baseN])
	if err != nil {
		t.Fatal(err)
	}
	for i := baseN; i < len(edges); i += 20 {
		j := min(i+20, len(edges))
		if _, err := direct.Append(edges[i:j]...); err != nil {
			t.Fatal(err)
		}
	}
	if ar.Edges != direct.NumEdges() {
		t.Errorf("served graph has %d edges, direct append %d", ar.Edges, direct.NumEdges())
	}

	status, _, lines, tr := postQuery(t, ts.URL, `{"k":2,"project":"vertices"}`)
	if status != http.StatusOK {
		t.Fatalf("query after append: status %d %q", status, tr.Error)
	}
	want := inProcess(t, direct, tkc.QueryJSON{K: 2, Project: "vertices"})
	if !bytes.Equal(lines, want) {
		t.Errorf("HTTP state after append differs from direct Graph.Append.\n--- http ---\n%s--- direct ---\n%s", lines, want)
	}
	if tr.Stats.Epoch != ar.Epoch {
		t.Errorf("query served epoch %d, append reported %d", tr.Stats.Epoch, ar.Epoch)
	}

	st := fetchStats(t, ts.URL)
	if st.Epoch != ar.Epoch {
		t.Errorf("/v1/stats epoch = %d, append reported %d", st.Epoch, ar.Epoch)
	}
}

// TestBootstrapAppend: an empty server answers 409 until the first append
// bootstraps a graph from the stream.
func TestBootstrapAppend(t *testing.T) {
	edges := genEdges(t, 11, 150)
	_, ts := newTestServer(t, serve.Config{AppendBatch: 64})

	status, _, _, tr := postQuery(t, ts.URL, `{"k":2}`)
	if status != http.StatusConflict || tr.Error == "" {
		t.Fatalf("query on empty server: status %d, error %q; want 409 + error", status, tr.Error)
	}

	resp, err := http.Post(ts.URL+"/v1/append", "application/x-ndjson",
		strings.NewReader(ndjsonEdges(edges)))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bootstrap append: status %d", resp.StatusCode)
	}

	// Replay the bootstrap path: first 64 parsed edges become NewGraph, the
	// rest arrive as 64-edge append batches.
	oracle, err := tkc.NewGraph(edges[:64])
	if err != nil {
		t.Fatal(err)
	}
	for i := 64; i < len(edges); i += 64 {
		j := min(i+64, len(edges))
		if _, err := oracle.Append(edges[i:j]...); err != nil {
			t.Fatal(err)
		}
	}
	status, _, lines, _ := postQuery(t, ts.URL, `{"k":2}`)
	if status != http.StatusOK {
		t.Fatalf("query after bootstrap: status %d", status)
	}
	want := inProcess(t, oracle, tkc.QueryJSON{K: 2})
	if !bytes.Equal(lines, want) {
		t.Errorf("bootstrapped state differs from an equivalent direct build of the same stream")
	}
}

// TestEarlyStopOverTheWire: earlyStop bounds the stream — the response
// carries exactly n core lines plus the trailer, and the engine stopped
// (the trailer's core count matches the limit, not the full result).
func TestEarlyStopOverTheWire(t *testing.T) {
	edges := genEdges(t, 3, 300)
	g, err := tkc.NewGraph(edges)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, serve.Config{Graph: g})

	// Full result first, to know the query has plenty of cores.
	status, _, _, trFull := postQuery(t, ts.URL, `{"k":2,"project":"count"}`)
	if status != http.StatusOK {
		t.Fatal("count query failed")
	}
	if trFull.Stats.Cores < 5 {
		t.Skipf("graph yields only %d cores; want >= 5 for a meaningful early stop", trFull.Stats.Cores)
	}

	status, _, lines, tr := postQuery(t, ts.URL, `{"k":2,"earlyStop":2}`)
	if status != http.StatusOK {
		t.Fatalf("earlyStop query: status %d", status)
	}
	if got := bytes.Count(lines, []byte("\n")); got != 2 {
		t.Errorf("earlyStop:2 streamed %d core lines, want 2", got)
	}
	if tr.Stats.Cores != 2 {
		t.Errorf("trailer cores = %d, want 2 (engine must stop at the limit)", tr.Stats.Cores)
	}
	want := inProcess(t, g, tkc.QueryJSON{K: 2, EarlyStop: 2})
	if !bytes.Equal(lines, want) {
		t.Errorf("earlyStop wire bytes differ from in-process WriteTo")
	}
}

// TestWarmQueryHitsCache: a repeated (epoch, k, window) query over HTTP is
// served from the qcache — the trailer flips to cacheHit and the server's
// cache counters record the hit.
func TestWarmQueryHitsCache(t *testing.T) {
	edges := genEdges(t, 5, 400)
	g, err := tkc.NewGraph(edges)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, serve.Config{Graph: g})

	_, _, _, cold := postQuery(t, ts.URL, `{"k":2,"project":"count"}`)
	if cold.Stats.CacheHit {
		t.Fatalf("first query reported a cache hit on a fresh server")
	}
	_, _, _, warm := postQuery(t, ts.URL, `{"k":2,"project":"count"}`)
	if !warm.Stats.CacheHit {
		t.Errorf("repeat query did not hit the serving cache")
	}
	if cold.Stats.Cores != warm.Stats.Cores || cold.Stats.ResultEdges != warm.Stats.ResultEdges {
		t.Errorf("warm result differs from cold: %+v vs %+v", warm.Stats, cold.Stats)
	}
	st := fetchStats(t, ts.URL)
	if st.Cache.Hits < 1 {
		t.Errorf("server CacheStats.Hits = %d, want >= 1", st.Cache.Hits)
	}
}

// TestEpochPinning: a query may pin a retained epoch and keeps reading the
// pre-append state; an evicted sequence number answers 410.
func TestEpochPinning(t *testing.T) {
	edges := genEdges(t, 9, 200)
	g, err := tkc.NewGraph(edges[:150])
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, serve.Config{Graph: g, AppendBatch: 50})

	want0 := inProcess(t, g, tkc.QueryJSON{K: 2, Project: "vertices"})

	resp, err := http.Post(ts.URL+"/v1/append", "application/x-ndjson",
		strings.NewReader(ndjsonEdges(edges[150:])))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// Pinned to epoch 0: the pre-append bytes, even though newer epochs
	// exist.
	status, _, lines, tr := postQuery(t, ts.URL, `{"k":2,"project":"vertices","epoch":0}`)
	if status != http.StatusOK {
		t.Fatalf("pinned query: status %d %q", status, tr.Error)
	}
	if tr.Stats.Epoch != 0 {
		t.Errorf("pinned query served epoch %d, want 0", tr.Stats.Epoch)
	}
	if !bytes.Equal(lines, want0) {
		t.Errorf("epoch-pinned response differs from the frozen pre-append state")
	}

	// A sequence number that was never published answers 410.
	status, _, _, tr = postQuery(t, ts.URL, `{"k":2,"epoch":999}`)
	if status != http.StatusGone || tr.Error == "" {
		t.Errorf("unknown epoch: status %d, error %q; want 410 + error", status, tr.Error)
	}
}

// TestBadRequests locks the structured-error contract: malformed JSON and
// invalid builder inputs answer 400 with a one-line {"error": ...} body.
func TestBadRequests(t *testing.T) {
	edges := genEdges(t, 2, 120)
	g, err := tkc.NewGraph(edges)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, serve.Config{Graph: g})
	lo, hi := g.TimeSpan()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"malformed_json", `{"k": `, http.StatusBadRequest},
		{"not_json", `k=3`, http.StatusBadRequest},
		{"k_zero", `{"k":0}`, http.StatusBadRequest},
		{"k_negative", `{"k":-4}`, http.StatusBadRequest},
		{"unknown_projection", `{"k":2,"project":"everything"}`, http.StatusBadRequest},
		{"unknown_algorithm", `{"k":2,"algorithm":"magic"}`, http.StatusBadRequest},
		{"unknown_field", `{"k":2,"larlyStop":5}`, http.StatusBadRequest},
		{"inverted_range", fmt.Sprintf(`{"k":2,"start":%d,"end":%d}`, hi, lo), http.StatusBadRequest},
		{"range_misses_graph", fmt.Sprintf(`{"k":2,"start":%d,"end":%d}`, hi+1000, hi+2000), http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, _, _, tr := postQuery(t, ts.URL, tc.body)
			if status != tc.want {
				t.Errorf("status = %d, want %d", status, tc.want)
			}
			if tr.Error == "" {
				t.Errorf("missing structured error body")
			}
		})
	}

	// Wrong methods 405 via the mux method patterns.
	resp, err := http.Get(ts.URL + "/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/query status = %d, want 405", resp.StatusCode)
	}
}

// TestAdmissionSheds503: with one admission slot and a deliberately slow
// (cache-disabled) query holding it, a concurrent burst is refused with
// 503 + Retry-After within the admission wait instead of queuing.
func TestAdmissionSheds503(t *testing.T) {
	edges := genEdges(t, 13, 12000)
	g, err := tkc.NewGraph(edges)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, serve.Config{
		Graph:         g,
		Cache:         &tkc.CacheOptions{Disable: true}, // every query pays CoreTime
		MaxInFlight:   1,
		AdmissionWait: time.Millisecond,
	})

	const burst = 6
	type result struct {
		status     int
		retryAfter string
		elapsed    time.Duration
	}
	results := make([]result, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t0 := time.Now()
			resp, err := http.Post(ts.URL+"/v1/query", "application/json",
				strings.NewReader(`{"k":3,"project":"count"}`))
			if err != nil {
				t.Errorf("burst query %d: %v", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			results[i] = result{resp.StatusCode, resp.Header.Get("Retry-After"), time.Since(t0)}
		}(i)
	}
	wg.Wait()

	var ok, shed int
	for _, r := range results {
		switch r.status {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			shed++
			if r.retryAfter == "" {
				t.Errorf("503 without Retry-After header")
			}
			if r.elapsed > 2*time.Second {
				t.Errorf("503 took %v; load shedding must answer within the deadline", r.elapsed)
			}
		default:
			t.Errorf("unexpected status %d", r.status)
		}
	}
	if ok == 0 {
		t.Errorf("no query succeeded under saturation")
	}
	if shed == 0 {
		t.Errorf("no query was shed; admission control did not engage")
	}

	st := fetchStats(t, ts.URL)
	if st.AdmissionRejected < int64(shed) {
		t.Errorf("stats admissionRejected = %d, want >= %d", st.AdmissionRejected, shed)
	}
	body := fetchMetrics(t, ts.URL)
	if !strings.Contains(body, "tkc_admission_rejected_total") {
		t.Errorf("/metrics missing tkc_admission_rejected_total:\n%s", body)
	}
}

// TestGracefulShutdownDrains: Shutdown closes the listener but lets an
// in-flight chunked stream run to its trailer.
func TestGracefulShutdownDrains(t *testing.T) {
	edges := genEdges(t, 17, 8000)
	g, err := tkc.NewGraph(edges)
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(serve.Config{
		Graph: g,
		Cache: &tkc.CacheOptions{Disable: true}, // keep the query slow
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()
	base := "http://" + l.Addr().String()

	type qres struct {
		tr  trailerJSON
		err error
	}
	started := make(chan struct{})
	done := make(chan qres, 1)
	go func() {
		close(started)
		resp, err := http.Post(base+"/v1/query", "application/json",
			strings.NewReader(`{"k":3,"project":"count"}`))
		if err != nil {
			done <- qres{err: err}
			return
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			done <- qres{err: err}
			return
		}
		lines := bytes.Split(bytes.TrimSpace(raw), []byte("\n"))
		var tr trailerJSON
		err = json.Unmarshal(lines[len(lines)-1], &tr)
		done <- qres{tr: tr, err: err}
	}()

	<-started
	time.Sleep(20 * time.Millisecond) // let the query reach the engine
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	r := <-done
	if r.err != nil {
		t.Fatalf("in-flight query was cut by shutdown: %v", r.err)
	}
	if r.tr.Stats == nil {
		t.Fatalf("drained query has no stats trailer (error %q)", r.tr.Error)
	}
	if err := <-serveDone; err != http.ErrServerClosed {
		t.Errorf("Serve returned %v, want http.ErrServerClosed", err)
	}
}

// serverStatsJSON mirrors the /v1/stats body.
type serverStatsJSON struct {
	Epoch             int64          `json:"epoch"`
	Vertices          int            `json:"vertices"`
	Edges             int            `json:"edges"`
	Start             int64          `json:"start"`
	End               int64          `json:"end"`
	InFlight          int            `json:"inFlight"`
	AdmissionRejected int64          `json:"admissionRejected"`
	Cache             tkc.CacheStats `json:"cache"`
	Endpoints         map[string]struct {
		Count int64            `json:"count"`
		Codes map[string]int64 `json:"codes"`
		P50Ms float64          `json:"p50Ms"`
		P99Ms float64          `json:"p99Ms"`
	} `json:"endpoints"`
}

func fetchStats(t testing.TB, base string) serverStatsJSON {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st serverStatsJSON
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding /v1/stats: %v", err)
	}
	return st
}

func fetchMetrics(t testing.TB, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(raw)
}

// TestStatsAndMetricsShape: the observability endpoints report the served
// state and per-endpoint latency percentiles.
func TestStatsAndMetricsShape(t *testing.T) {
	edges := genEdges(t, 4, 150)
	g, err := tkc.NewGraph(edges)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, serve.Config{Graph: g})

	for i := 0; i < 3; i++ {
		postQuery(t, ts.URL, `{"k":2,"project":"count"}`)
	}
	st := fetchStats(t, ts.URL)
	if st.Edges != g.NumEdges() || st.Vertices != g.NumVertices() {
		t.Errorf("stats graph shape = %d/%d, want %d/%d", st.Vertices, st.Edges, g.NumVertices(), g.NumEdges())
	}
	q, ok := st.Endpoints["query"]
	if !ok || q.Count != 3 || q.Codes["200"] != 3 {
		t.Errorf("stats endpoints[query] = %+v, want 3×200", q)
	}
	if q.P50Ms <= 0 || q.P99Ms < q.P50Ms {
		t.Errorf("implausible quantiles: p50=%v p99=%v", q.P50Ms, q.P99Ms)
	}

	body := fetchMetrics(t, ts.URL)
	for _, want := range []string{
		`tkc_requests_total{endpoint="query",code="200"} 3`,
		`tkc_request_duration_seconds{endpoint="query",quantile="0.99"}`,
		"tkc_epoch_seq 0",
		"tkc_cache_hits_total",
		fmt.Sprintf("tkc_graph_edges %d", g.NumEdges()),
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status %d", resp.StatusCode)
	}
}
