package serve_test

import (
	"context"
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"

	tkc "temporalkcore"
	"temporalkcore/internal/serve"
)

// slowServer builds a server over a graph big enough that a cold
// full-range enumeration takes tens of milliseconds, with the serving
// cache disabled so every query pays CoreTime.
func slowServer(t testing.TB) (*tkc.Graph, string) {
	t.Helper()
	edges := genEdges(t, 21, 15000)
	g, err := tkc.NewGraph(edges)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, serve.Config{
		Graph: g,
		Cache: &tkc.CacheOptions{Disable: true},
	})
	return g, ts.URL
}

// TestServerDeadline504: a 1ms per-request deadline fires mid-CoreTime and
// the server answers promptly with 504 instead of finishing the build.
func TestServerDeadline504(t *testing.T) {
	_, base := slowServer(t)

	t0 := time.Now()
	status, _, _, tr := postQuery(t, base, `{"k":3,"project":"count","deadlineMs":1}`)
	elapsed := time.Since(t0)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (error %q), want 504", status, tr.Error)
	}
	if tr.Error == "" {
		t.Errorf("504 without structured error body")
	}
	// The engine polls ctx on bounded strides, so cancellation must land
	// well before the query would have finished (a full cold build here
	// runs far past this bound, especially under -race, which also slows
	// the poll strides ~15x — hence the generous ceiling).
	if elapsed > 15*time.Second {
		t.Errorf("deadline response took %v; cancellation is not prompt", elapsed)
	}
}

// TestDefaultDeadlineFromConfig: the configured server-wide default
// deadline applies when the request names none.
func TestDefaultDeadlineFromConfig(t *testing.T) {
	edges := genEdges(t, 21, 15000)
	g, err := tkc.NewGraph(edges)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, serve.Config{
		Graph:           g,
		Cache:           &tkc.CacheOptions{Disable: true},
		DefaultDeadline: time.Millisecond,
	})
	status, _, _, _ := postQuery(t, ts.URL, `{"k":3,"project":"count"}`)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 from the server default deadline", status)
	}
}

// TestClientDisconnectCancelsPlan: a client that walks away mid-CoreTime
// must cancel the plan context — the handler goroutine winds down instead
// of finishing the abandoned build. Detected as goroutine-count recovery.
func TestClientDisconnectCancelsPlan(t *testing.T) {
	_, base := slowServer(t)

	before := runtime.NumGoroutine()

	const n = 4
	client := &http.Client{}
	for i := 0; i < n; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/query",
			strings.NewReader(`{"k":3,"project":"count"}`))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		done := make(chan struct{})
		go func() {
			resp, err := client.Do(req)
			if err == nil {
				resp.Body.Close()
			}
			close(done)
		}()
		time.Sleep(15 * time.Millisecond) // request reaches the engine
		cancel()                          // client disconnects mid-CoreTime
		<-done
	}
	client.CloseIdleConnections()

	// The handlers observe ctx.Done() on the next poll stride and return;
	// allow a generous recovery window (strides run ~15x slower under
	// -race) before calling it a leak.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	buf := make([]byte, 1<<16)
	t.Errorf("goroutines: %d before, %d after disconnects — handler leak?\n%s",
		before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
}

// TestDeadlineCapped: a request asking for an absurd deadline is clamped
// to MaxDeadline rather than holding a slot forever.
func TestDeadlineCapped(t *testing.T) {
	edges := genEdges(t, 21, 15000)
	g, err := tkc.NewGraph(edges)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, serve.Config{
		Graph:       g,
		Cache:       &tkc.CacheOptions{Disable: true},
		MaxDeadline: time.Millisecond,
	})
	status, _, _, _ := postQuery(t, ts.URL,
		fmt.Sprintf(`{"k":3,"project":"count","deadlineMs":%d}`, int64(time.Hour/time.Millisecond)))
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (requested deadline must be capped at MaxDeadline)", status)
	}
}
