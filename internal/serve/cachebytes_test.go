package serve_test

import (
	"bytes"
	"testing"

	tkc "temporalkcore"
	"temporalkcore/internal/serve"
)

// TestCacheReplayBytes locks the invariant the racing-differential test
// builds on: a warm query served from the qcache replays byte-identical
// NDJSON to the cold CoreTime build, and both match a fresh rebuild of the
// same graph value.
func TestCacheReplayBytes(t *testing.T) {
	edges := genEdges(t, 31, 600)
	g, err := tkc.NewGraph(edges)
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, serve.Config{Graph: g})

	_, _, cold, trc := postQuery(t, ts.URL, `{"k":2}`)
	_, _, warm, trw := postQuery(t, ts.URL, `{"k":2}`)
	if trc.Stats.CacheHit || !trw.Stats.CacheHit {
		t.Fatalf("cache behaviour off: cold hit=%v, warm hit=%v", trc.Stats.CacheHit, trw.Stats.CacheHit)
	}
	if !bytes.Equal(cold, warm) {
		t.Errorf("cache replay is not byte-identical to the cold build")
	}
	// Same construction path (one NewGraph over the same edges) ⇒ the
	// rebuild is a valid byte oracle.
	og, err := tkc.NewGraph(edges)
	if err != nil {
		t.Fatal(err)
	}
	if want := inProcess(t, og, tkc.QueryJSON{K: 2}); !bytes.Equal(cold, want) {
		t.Errorf("served bytes differ from an identically-built graph's WriteTo")
	}
}
