// Package serve is the HTTP serving layer over Query API v2: it exposes
// the Request builder over the wire with the production concerns a network
// front-end owes its callers — admission control, per-request deadlines
// mapped onto the engine's context plumbing, epoch-pinned reads, and
// latency/cache observability.
//
// Endpoints:
//
//	POST /v1/query   {"k":3,"start":..,"end":..,"project":..,"algorithm":..,
//	                  "earlyStop":..,"epoch":..,"deadlineMs":..}
//	                 → chunked NDJSON core stream (the Request.WriteTo wire
//	                   format, byte for byte) followed by one stats trailer
//	                   line {"stats":{...}}. Queries execute against the
//	                   latest published epoch, or against a pinned epoch
//	                   when "epoch" names a still-retained sequence number.
//	POST /v1/append  NDJSON or text edge lines (the AppendReader formats),
//	                 appended in batches; every batch publishes a fresh
//	                 epoch, so concurrent readers stay snapshot-isolated.
//	GET  /v1/stats   JSON: epoch seq, graph shape, cache counters,
//	                 per-endpoint latency percentiles, admission state.
//	GET  /metrics    the same counters in Prometheus text format.
//	GET  /healthz    liveness.
//
// Admission control is a semaphore in front of the query/append path: a
// request that cannot claim a slot within the configured wait is refused
// with 503 and a Retry-After header instead of queuing unboundedly.
// Deadlines ride the existing ctx plumbing — the engine's bounded poll
// strides cancel a query mid-CoreTime when the deadline fires or the
// client disconnects. Shutdown drains in-flight streams.
package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	tkc "temporalkcore"
)

// Config parameterises a Server. The zero value of every field is a usable
// default.
type Config struct {
	// Graph is the graph to serve. Nil starts the server empty: queries
	// answer 409 until the first append bootstraps a graph. Ignored when
	// Durable is set.
	Graph *tkc.Graph

	// Durable, when non-nil, serves the graph recovered from (and persisted
	// to) a data directory: every append batch is WAL-logged before it is
	// applied, POST /v1/snapshot (and Server.Snapshot) persists segment
	// snapshots with a warm spill of the serving cache, and an empty
	// directory bootstraps from the first append. Takes precedence over
	// Graph.
	Durable *tkc.DurableGraph

	// Sharded, when non-nil, serves a time-range sharded graph: queries
	// scatter-gather across the shard set on per-shard replica pools,
	// appends route through the frontier shard (auto-sealing per its
	// ShardOptions), epoch pinning addresses published ShardedViews, and
	// /v1/stats + /metrics carry per-shard serving counters. Takes
	// precedence over Durable and Graph; pair it with a sharded data
	// directory (BootstrapShardedDir/OpenShardedDir) for durability.
	Sharded *tkc.ShardedGraph

	// Cache, when non-nil, reconfigures the graph's serving cache (it is
	// applied to a bootstrapped graph too). Nil keeps the graph's current
	// configuration (enabled at DefaultCacheMaxBytes for a fresh graph).
	Cache *tkc.CacheOptions

	// MaxInFlight bounds the number of query/append requests executing
	// concurrently; further requests wait up to AdmissionWait for a slot
	// and are then refused with 503. <= 0 means 8 slots per CPU.
	MaxInFlight int

	// AdmissionWait is how long a request may wait for an admission slot
	// before 503. <= 0 means 10ms: long enough to absorb a momentary
	// burst, short enough that a saturated server sheds load within its
	// deadline instead of queuing.
	AdmissionWait time.Duration

	// DefaultDeadline bounds a query that does not set deadlineMs.
	// <= 0 means 30s.
	DefaultDeadline time.Duration

	// MaxDeadline caps the per-request deadlineMs. <= 0 means 5m.
	MaxDeadline time.Duration

	// AppendBatch is the number of edges appended (and published) per
	// batch while ingesting an append body. <= 0 means 1024.
	AppendBatch int

	// EpochRetain is how many recently published epochs stay addressable
	// through the "epoch" request field (the latest epoch always is).
	// <= 0 means 8.
	EpochRetain int
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 8 * runtime.GOMAXPROCS(0)
	}
	if c.AdmissionWait <= 0 {
		c.AdmissionWait = 10 * time.Millisecond
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 30 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 5 * time.Minute
	}
	if c.AppendBatch <= 0 {
		c.AppendBatch = 1024
	}
	if c.EpochRetain <= 0 {
		c.EpochRetain = 8
	}
	return c
}

// Server serves a temporal k-core graph over HTTP. Create one with New,
// mount Handler on any http.Server, or use Serve/Shutdown for the built-in
// lifecycle. All handlers are safe for concurrent use; appends are
// serialised internally (the engine is single-writer), reads are served
// from published epochs and never block the writer.
type Server struct {
	cfg Config
	mux *http.ServeMux
	adm *admission
	rec *Recorder

	// writerMu serialises the append path (Graph.Append is single-writer)
	// and the first-append bootstrap of an empty server.
	writerMu sync.Mutex
	graph    atomic.Pointer[tkc.Graph]
	durable  *tkc.DurableGraph // nil when serving without a data directory
	sharded  *tkc.ShardedGraph // nil when serving unsharded

	// epochs is the ring of recently published snapshots that stay
	// addressable by sequence number through the "epoch" request field.
	// In sharded mode sviews is the ring instead: a pinned entry must
	// carry the shard directory that was current at publish time, not
	// just the epoch.
	epochsMu sync.Mutex
	epochs   []*tkc.Snapshot    // tkc:guardedby epochsMu
	sviews   []*tkc.ShardedView // tkc:guardedby epochsMu

	started time.Time

	hsMu sync.Mutex
	hs   *http.Server // tkc:guardedby hsMu
}

// New builds a Server from cfg. When cfg.Graph is set and has never been
// published, its current state is published as the first served epoch.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		adm:     newAdmission(cfg.MaxInFlight, cfg.AdmissionWait),
		rec:     NewRecorder(),
		started: time.Now(),
	}
	if cfg.Sharded != nil {
		s.sharded = cfg.Sharded
		if cfg.Cache != nil {
			cfg.Sharded.SetCacheOptions(*cfg.Cache)
		}
		v := cfg.Sharded.Latest()
		s.retainView(v)
		s.graph.Store(cfg.Sharded.Spine())
		s.mountMux()
		return s
	}
	if cfg.Durable != nil {
		s.durable = cfg.Durable
		cfg.Graph = cfg.Durable.Graph() // may be nil: empty data directory
		if cfg.Graph != nil && cfg.Cache != nil {
			// Reconfiguring the cache drops the entries OpenDir re-admitted
			// from the warm spill; load them again into the new cache.
			cfg.Graph.SetCacheOptions(*cfg.Cache)
			cfg.Durable.ReloadWarm()
			cfg.Cache = nil
		}
	}
	if cfg.Graph != nil {
		if cfg.Cache != nil {
			cfg.Graph.SetCacheOptions(*cfg.Cache)
		}
		ep := cfg.Graph.Latest()
		if ep == nil {
			ep = cfg.Graph.Publish()
		}
		s.retain(ep)
		s.graph.Store(cfg.Graph)
	}
	s.mountMux()
	return s
}

func (s *Server) mountMux() {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/query", s.instrument("query", s.handleQuery))
	mux.Handle("POST /v1/append", s.instrument("append", s.handleAppend))
	mux.Handle("POST /v1/snapshot", s.instrument("snapshot", s.handleSnapshot))
	mux.Handle("GET /v1/stats", s.instrument("stats", s.handleStats))
	mux.Handle("GET /metrics", s.instrument("metrics", s.handleMetrics))
	mux.Handle("GET /healthz", http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	}))
	s.mux = mux
}

// Handler returns the server's HTTP handler, for mounting on an external
// http.Server (or an httptest one).
func (s *Server) Handler() http.Handler { return s.mux }

// Serve accepts connections on l until Shutdown (or a listener error). It
// mirrors http.Server.Serve: the returned error is http.ErrServerClosed
// after a clean Shutdown.
func (s *Server) Serve(l net.Listener) error {
	hs := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
	}
	s.hsMu.Lock()
	s.hs = hs
	s.hsMu.Unlock()
	return hs.Serve(l)
}

// Shutdown gracefully stops a server started with Serve: the listener
// closes immediately, in-flight requests (including chunked query streams)
// drain to completion, bounded by ctx. When ctx expires first the
// remaining connections are closed forcefully.
func (s *Server) Shutdown(ctx context.Context) error {
	s.hsMu.Lock()
	hs := s.hs
	s.hsMu.Unlock()
	if hs == nil {
		return nil
	}
	if err := hs.Shutdown(ctx); err != nil {
		hs.Close()
		return err
	}
	return nil
}

// graphOrNil returns the served graph, nil while the server is empty.
func (s *Server) graphOrNil() *tkc.Graph { return s.graph.Load() }

// Snapshot persists the durable graph's current state (segment image plus
// warm-cache spill) and returns the persisted sequence number. It errors
// when the server has no data directory or no graph yet. Safe from any
// goroutine — the snapshot timer and the /v1/snapshot endpoint both funnel
// here — and concurrent appends proceed while the image is written.
func (s *Server) Snapshot() (int64, error) {
	if s.sharded != nil {
		if !s.sharded.Durable() {
			return -1, fmt.Errorf("serve: no data directory configured")
		}
		return s.sharded.SnapshotDurable()
	}
	if s.durable == nil {
		return -1, fmt.Errorf("serve: no data directory configured")
	}
	if s.graphOrNil() == nil {
		return -1, fmt.Errorf("serve: no graph loaded yet")
	}
	return s.durable.Snapshot()
}

// retain records ep in the addressable-epoch ring (deduplicating by
// sequence number) and drops entries beyond the retention bound.
func (s *Server) retain(ep *tkc.Snapshot) {
	s.epochsMu.Lock()
	defer s.epochsMu.Unlock()
	if n := len(s.epochs); n > 0 && s.epochs[n-1].Seq() == ep.Seq() {
		s.epochs[n-1] = ep
		return
	}
	s.epochs = append(s.epochs, ep)
	if over := len(s.epochs) - s.cfg.EpochRetain; over > 0 {
		copy(s.epochs, s.epochs[over:])
		s.epochs = s.epochs[:s.cfg.EpochRetain]
	}
}

// epochAt returns the retained snapshot with sequence number seq, or nil.
func (s *Server) epochAt(seq int64) *tkc.Snapshot {
	s.epochsMu.Lock()
	defer s.epochsMu.Unlock()
	for i := len(s.epochs) - 1; i >= 0; i-- {
		if s.epochs[i].Seq() == seq {
			return s.epochs[i]
		}
	}
	return nil
}

// retainView is retain for sharded mode: a pinned sharded epoch must keep
// the shard directory that was current at publish time, not just the
// snapshot, so the ring holds ShardedViews.
func (s *Server) retainView(v *tkc.ShardedView) {
	s.epochsMu.Lock()
	defer s.epochsMu.Unlock()
	if n := len(s.sviews); n > 0 && s.sviews[n-1].Seq() == v.Seq() {
		s.sviews[n-1] = v
		return
	}
	s.sviews = append(s.sviews, v)
	if over := len(s.sviews) - s.cfg.EpochRetain; over > 0 {
		copy(s.sviews, s.sviews[over:])
		s.sviews = s.sviews[:s.cfg.EpochRetain]
	}
}

// viewAt returns the retained sharded view with sequence number seq, or nil.
func (s *Server) viewAt(seq int64) *tkc.ShardedView {
	s.epochsMu.Lock()
	defer s.epochsMu.Unlock()
	for i := len(s.sviews) - 1; i >= 0; i-- {
		if s.sviews[i].Seq() == seq {
			return s.sviews[i]
		}
	}
	return nil
}
