package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"

	tkc "temporalkcore"
	"temporalkcore/internal/serve"
)

// TestConcurrentReadersDuringAppends is the HTTP racing-differential: N
// readers stream windowed queries while one writer posts append batches.
// Each append response reports the epoch it published; an oracle replays
// the server's exact construction path (same base, same batch boundaries —
// an appended graph's adjacency layout, and hence its WriteTo byte order,
// depends on the construction path) and records the expected response
// bytes per epoch. Afterwards every sampled response must byte-match the
// oracle for the epoch it claims — i.e. each response is internally
// consistent with exactly one published state, never a torn mix. Run under
// -race in CI, this also shakes out reader/writer data races.
func TestConcurrentReadersDuringAppends(t *testing.T) {
	edges := genEdges(t, 31, 900)
	const (
		baseN      = 600
		batchSize  = 30
		numBatches = 10 // 600 + 10*30 = 900
		readers    = 3
	)
	g, err := tkc.NewGraph(edges[:baseN])
	if err != nil {
		t.Fatal(err)
	}
	// A fixed window over the base span keeps every response small and
	// stays valid as the writer extends the frontier.
	lo, hi := g.TimeSpan()
	qlo, qhi := lo, lo+(hi-lo)/3
	queryBody := fmt.Sprintf(`{"k":2,"start":%d,"end":%d}`, qlo, qhi)

	// Oracle: replay the construction path, capturing the expected body per
	// epoch. The serving cache replays stored bytes verbatim (covered by
	// TestCacheReplayBytes), so one WriteTo per epoch is the full contract.
	oracle := func() map[int64][]byte {
		og, err := tkc.NewGraph(edges[:baseN])
		if err != nil {
			t.Fatal(err)
		}
		s, e := qlo, qhi
		render := func() []byte {
			req, err := tkc.QueryJSON{K: 2, Start: &s, End: &e}.Request(og)
			if err != nil {
				t.Fatal(err)
			}
			var b bytes.Buffer
			if _, err := req.WriteTo(context.Background(), &b); err != nil {
				t.Fatal(err)
			}
			return b.Bytes()
		}
		m := map[int64][]byte{og.Publish().Seq(): render()}
		for b := 0; b < numBatches; b++ {
			s := baseN + b*batchSize
			if _, err := og.Append(edges[s : s+batchSize]...); err != nil {
				t.Fatal(err)
			}
			m[og.Publish().Seq()] = render()
		}
		return m
	}()

	// AppendBatch larger than any single POST body ⇒ the server appends
	// each POST as one batch, matching the oracle's construction replay,
	// and publishes exactly one epoch per request.
	_, ts := newTestServer(t, serve.Config{Graph: g, AppendBatch: 4096, EpochRetain: 64})

	type sample struct {
		epoch int64
		body  []byte
	}
	var (
		samplesMu sync.Mutex
		samples   []sample
	)
	seqSeen := make(map[int64]bool)
	writerDone := make(chan struct{})
	var wg sync.WaitGroup

	// Writer: one POST per 30-edge slice, mirroring the oracle's batches.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(writerDone)
		for b := 0; b < numBatches; b++ {
			lo := baseN + b*batchSize
			resp, err := http.Post(ts.URL+"/v1/append", "application/x-ndjson",
				strings.NewReader(ndjsonEdges(edges[lo:lo+batchSize])))
			if err != nil {
				t.Errorf("append batch %d: %v", b, err)
				return
			}
			var ar struct {
				Epoch int64 `json:"epoch"`
			}
			err = json.NewDecoder(resp.Body).Decode(&ar)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Errorf("append batch %d: status %d, err %v", b, resp.StatusCode, err)
				return
			}
			seqSeen[ar.Epoch] = true
		}
	}()

	// Readers: stream the windowed query until the writer finishes, keeping
	// (claimed epoch, body) pairs for post-hoc verification.
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; ; i++ {
				select {
				case <-writerDone:
					if i > 0 {
						return
					}
				default:
				}
				resp, err := client.Post(ts.URL+"/v1/query", "application/json",
					strings.NewReader(queryBody))
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				epoch, perr := strconv.ParseInt(resp.Header.Get("X-Tkc-Epoch"), 10, 64)
				raw, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if perr != nil || err != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("reader %d: status %d, epoch %q, err %v", r, resp.StatusCode,
						resp.Header.Get("X-Tkc-Epoch"), err)
					return
				}
				samplesMu.Lock()
				samples = append(samples, sample{epoch, raw})
				samplesMu.Unlock()
			}
		}(r)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	verified := map[int64]int{}
	for _, s := range samples {
		want, ok := oracle[s.epoch]
		if !ok {
			t.Errorf("response claims epoch %d, which the replay never published", s.epoch)
			continue
		}
		idx := bytes.LastIndexByte(bytes.TrimRight(s.body, "\n"), '\n')
		coreLines, trailerLine := s.body[:idx+1], s.body[idx+1:]
		if !bytes.Equal(coreLines, want) {
			t.Errorf("epoch %d: streamed body inconsistent with its epoch (%d bytes, want %d)",
				s.epoch, len(coreLines), len(want))
			continue
		}
		var tr trailerJSON
		if err := json.Unmarshal(trailerLine, &tr); err != nil || tr.Stats == nil {
			t.Errorf("epoch %d: bad trailer %q", s.epoch, trailerLine)
			continue
		}
		if tr.Stats.Epoch != s.epoch {
			t.Errorf("header epoch %d but trailer epoch %d", s.epoch, tr.Stats.Epoch)
		}
		verified[s.epoch]++
	}
	if len(samples) < readers {
		t.Errorf("only %d responses sampled; race window too small", len(samples))
	}
	t.Logf("verified %d responses across %d distinct epochs (%d published by the writer)",
		len(samples), len(verified), len(seqSeen))
}
