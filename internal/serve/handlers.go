package serve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	tkc "temporalkcore"
)

// queryRequest is the /v1/query body: the engine's wire mapping plus the
// transport concerns the serving layer owns — epoch pinning and the
// per-request deadline.
type queryRequest struct {
	tkc.QueryJSON

	// Epoch pins the query to a specific published epoch (Snapshot.Seq).
	// Omitted means the latest published epoch. A sequence number no
	// longer retained answers 410: the caller must re-resolve from
	// /v1/stats and accept the newer state.
	Epoch *int64 `json:"epoch,omitempty"`

	// DeadlineMS bounds this query's execution (and streaming) in
	// milliseconds; the engine cancels mid-CoreTime when it fires.
	// Omitted means the server's default deadline; values beyond the
	// server's maximum are capped.
	DeadlineMS int64 `json:"deadlineMs,omitempty"`
}

// instrument wraps a handler with the admission-independent metrics
// recording: every request is timed and counted by final status code.
func (s *Server) instrument(name string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		h(sw, r)
		s.rec.Record(name, sw.code, time.Since(t0))
	})
}

// statusWriter records the response code and body bytes written, so the
// query handler can distinguish "nothing sent yet — a status code is still
// possible" from "mid-stream — errors must go on the wire as a trailer".
type statusWriter struct {
	http.ResponseWriter
	code        int
	wroteHeader bool
	n           int64
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wroteHeader {
		w.code = code
		w.wroteHeader = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wroteHeader = true
	n, err := w.ResponseWriter.Write(p)
	w.n += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// writeJSONError answers with a one-line structured error body.
func writeJSONError(w http.ResponseWriter, code int, format string, args ...any) {
	msg, _ := json.Marshal(fmt.Sprintf(format, args...))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"error\":%s}\n", msg)
}

// writeAppendError answers a failed append with the structured partial-
// progress body of the batch-atomicity contract: the error, the committed
// edge/batch counts, and the last published epoch.
func writeAppendError(w http.ResponseWriter, code, added, batches int, epoch int64, format string, args ...any) {
	msg, _ := json.Marshal(fmt.Sprintf(format, args...))
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"error\":%s,\"added\":%d,\"batches\":%d,\"epoch\":%d}\n", msg, added, batches, epoch)
}

// statusClientClosedRequest is recorded (nginx's 499 convention) when the
// client disconnected before the response completed; nothing more can be
// written to the connection.
const statusClientClosedRequest = 499

// handleQuery compiles the JSON body into a v2 Request against the
// resolved epoch and streams the result as chunked NDJSON via WriteTo,
// then appends one deterministic stats trailer line. First/EarlyStop stay
// cheap end to end: the engine stops once the limit is emitted, and a
// client that closes its connection cancels the plan context mid-phase.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !s.adm.acquire(r.Context()) {
		w.Header().Set("Retry-After", "1")
		writeJSONError(w, http.StatusServiceUnavailable, "server saturated (%d queries in flight); retry", s.adm.inflight())
		return
	}
	defer s.adm.release()

	var q queryRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&q); err != nil {
		writeJSONError(w, http.StatusBadRequest, "bad query body: %v", err)
		return
	}

	g := s.graphOrNil()
	if g == nil {
		writeJSONError(w, http.StatusConflict, "no graph loaded; POST edges to /v1/append first")
		return
	}
	// Resolve the query source: in sharded mode a pinned epoch must carry
	// the shard directory that was current at publish time, so the ring
	// holds ShardedViews; otherwise it is a plain pinned snapshot.
	var src tkc.Querier
	var seq int64
	if s.sharded != nil {
		v := s.sharded.Latest()
		if q.Epoch != nil {
			if v = s.viewAt(*q.Epoch); v == nil {
				writeJSONError(w, http.StatusGone, "epoch %d is not retained (latest is %d)", *q.Epoch, s.sharded.Latest().Seq())
				return
			}
		}
		src, seq = v, v.Seq()
	} else {
		snap := g.Latest()
		if q.Epoch != nil {
			if snap = s.epochAt(*q.Epoch); snap == nil {
				writeJSONError(w, http.StatusGone, "epoch %d is not retained (latest is %d)", *q.Epoch, g.Latest().Seq())
				return
			}
		}
		src, seq = snap.Graph, snap.Seq()
	}

	req, err := q.RequestFrom(src)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, "%v", err)
		return
	}

	deadline := s.cfg.DefaultDeadline
	if q.DeadlineMS > 0 {
		deadline = time.Duration(q.DeadlineMS) * time.Millisecond
	}
	if deadline > s.cfg.MaxDeadline {
		deadline = s.cfg.MaxDeadline
	}
	ctx, cancel := context.WithTimeout(r.Context(), deadline)
	defer cancel()

	sw := w.(*statusWriter)
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Tkc-Epoch", strconv.FormatInt(seq, 10))

	qs, err := req.WriteTo(ctx, w)
	if err != nil {
		s.queryError(sw, r, seq, err)
		return
	}
	// The stats trailer: one deterministic NDJSON line after the core
	// stream (timings live in /metrics, not here, so golden tests can
	// byte-lock the full body). Sharded requests add the shard-span count,
	// which is a deterministic property of the pinned view.
	if qs.Shards > 0 {
		fmt.Fprintf(w, "{\"stats\":{\"cores\":%d,\"resultEdges\":%d,\"epoch\":%d,\"cacheHit\":%v,\"shards\":%d}}\n",
			qs.Cores, qs.Edges, seq, qs.CacheHit, qs.Shards)
		return
	}
	fmt.Fprintf(w, "{\"stats\":{\"cores\":%d,\"resultEdges\":%d,\"epoch\":%d,\"cacheHit\":%v}}\n",
		qs.Cores, qs.Edges, seq, qs.CacheHit)
}

// queryError maps an execution error onto the wire. Before the first body
// byte a proper status code is still possible; mid-stream the error is
// delivered as a trailer line on the 200 stream, which consumers detect by
// the absence of a "stats" trailer.
func (s *Server) queryError(sw *statusWriter, r *http.Request, epoch int64, err error) {
	if sw.n == 0 {
		switch {
		case r.Context().Err() != nil:
			// The client went away (or sent its own deadline): nothing can
			// be delivered; record it as a closed request.
			sw.WriteHeader(statusClientClosedRequest)
		case errors.Is(err, context.DeadlineExceeded):
			writeJSONError(sw, http.StatusGatewayTimeout, "query deadline exceeded")
		case errors.Is(err, tkc.ErrEmptyRange), errors.Is(err, tkc.ErrNoTimestamps):
			writeJSONError(sw, http.StatusBadRequest, "%v", err)
		default:
			writeJSONError(sw, http.StatusInternalServerError, "%v", err)
		}
		return
	}
	if r.Context().Err() != nil {
		return // mid-stream disconnect: no one is listening
	}
	msg, _ := json.Marshal(err.Error())
	fmt.Fprintf(sw, "{\"error\":%s,\"epoch\":%d}\n", msg, epoch)
}

// handleAppend ingests an NDJSON/text edge stream (the AppendReader line
// formats) in batches, publishing one epoch per appended batch so
// concurrent readers advance in snapshot-isolated steps. On an empty
// server the first batch bootstraps the graph; with a data directory
// configured, batches are WAL-logged before they are applied. Appends are
// serialised: the engine is single-writer, and the writer lock is held for
// the whole body, so concurrent append requests execute one at a time
// while queries keep streaming from published epochs.
//
// Error contract — atomicity is batch-granular, never edge-granular. A
// batch that fails (parse error, time-order violation) is discarded whole:
// no edge of it is applied, logged or published. Batches before it are
// already committed and published and stay that way. The 400 body states
// exactly where the stream stopped:
//
//	{"error":..., "added":N, "batches":B, "epoch":S}
//
// added/batches count only fully committed work and epoch is the last
// published sequence, so a client can resume from the first edge of the
// failed batch against exactly the state the body names.
func (s *Server) handleAppend(w http.ResponseWriter, r *http.Request) {
	if !s.adm.acquire(r.Context()) {
		w.Header().Set("Retry-After", "1")
		writeJSONError(w, http.StatusServiceUnavailable, "server saturated; retry")
		return
	}
	defer s.adm.release()

	batch := s.cfg.AppendBatch
	if bs := r.URL.Query().Get("batch"); bs != "" {
		n, err := strconv.Atoi(bs)
		if err != nil || n < 1 {
			writeJSONError(w, http.StatusBadRequest, "bad batch parameter %q", bs)
			return
		}
		batch = n
	}

	s.writerMu.Lock()
	defer s.writerMu.Unlock()

	br := bufio.NewReaderSize(r.Body, 1<<16)
	g := s.graphOrNil()
	added, batches := 0, 0
	var lastSeq int64 = -1
	if g != nil {
		if ep := g.Latest(); ep != nil {
			lastSeq = ep.Seq()
		}
	}

	if g == nil {
		boot, err := readEdgeLines(br, batch)
		if err != nil {
			writeAppendError(w, http.StatusBadRequest, added, batches, lastSeq, "%v", err)
			return
		}
		if len(boot) == 0 {
			writeJSONError(w, http.StatusBadRequest, "no edges in append body to bootstrap a graph")
			return
		}
		if s.durable != nil {
			g, err = s.durable.Bootstrap(boot)
		} else {
			g, err = tkc.NewGraph(boot)
		}
		if err != nil {
			writeJSONError(w, http.StatusBadRequest, "bootstrap graph: %v", err)
			return
		}
		if s.cfg.Cache != nil {
			g.SetCacheOptions(*s.cfg.Cache)
		}
		ep := g.Publish()
		s.retain(ep)
		s.graph.Store(g)
		added += g.NumEdges()
		batches++
		lastSeq = ep.Seq()
	}

	ar := tkc.NewAppendReader(g, br)
	ar.BatchSize = batch
	switch {
	case s.sharded != nil:
		// Batches route through the frontier shard: WAL-logged when the
		// sharded graph is durable, auto-sealing per its ShardOptions, and
		// published internally — the publish below just retains the view.
		ar.Sink = s.sharded
	case s.durable != nil:
		ar.Sink = s.durable // WAL-log each batch before it is applied
	}
	publish := func() int64 {
		if s.sharded != nil {
			v := s.sharded.Latest()
			s.retainView(v)
			return v.Seq()
		}
		ep := g.Publish()
		s.retain(ep)
		return ep.Seq()
	}
	for {
		if err := r.Context().Err(); err != nil {
			writeAppendError(w, http.StatusBadRequest, added, batches, lastSeq, "append aborted: %v", err)
			return
		}
		n, err := ar.ReadBatch()
		if err == io.EOF {
			break
		}
		if err != nil {
			// The failing batch was discarded whole; earlier batches are
			// committed and published. The body pins the committed frontier.
			writeAppendError(w, http.StatusBadRequest, added, batches, lastSeq, "%v", err)
			return
		}
		if n == 0 {
			continue // batch fully collapsed into existing edges
		}
		added += n
		batches++
		lastSeq = publish()
	}

	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"added\":%d,\"batches\":%d,\"epoch\":%d,\"edges\":%d}\n",
		added, batches, lastSeq, g.NumEdges())
}

// handleSnapshot persists the durable graph's current state — segment
// image plus warm-cache spill — and reports the persisted sequence. 409
// without a data directory or before the first bootstrap.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if !s.adm.acquire(r.Context()) {
		w.Header().Set("Retry-After", "1")
		writeJSONError(w, http.StatusServiceUnavailable, "server saturated; retry")
		return
	}
	defer s.adm.release()
	if s.sharded != nil {
		if !s.sharded.Durable() {
			writeJSONError(w, http.StatusConflict, "server has no data directory (start with -data)")
			return
		}
	} else if s.durable == nil {
		writeJSONError(w, http.StatusConflict, "server has no data directory (start with -data)")
		return
	}
	if s.graphOrNil() == nil {
		writeJSONError(w, http.StatusConflict, "no graph loaded; POST edges to /v1/append first")
		return
	}
	seq, err := s.Snapshot()
	if err != nil {
		writeJSONError(w, http.StatusInternalServerError, "snapshot: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"snapshot\":%d}\n", seq)
}

// readEdgeLines reads up to limit edges from br (one per line, AppendReader
// formats), consuming exactly the lines it parses.
func readEdgeLines(br *bufio.Reader, limit int) ([]tkc.Edge, error) {
	var out []tkc.Edge
	lineNo := 0
	for len(out) < limit {
		line, err := br.ReadString('\n')
		if line != "" {
			lineNo++
			e, ok, perr := tkc.ParseEdgeLine(line)
			if perr != nil {
				return nil, fmt.Errorf("append body line %d: %w", lineNo, perr)
			}
			if ok {
				out = append(out, e)
			}
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("reading append body: %w", err)
		}
	}
	return out, nil
}

// statsResponse is the /v1/stats body.
type statsResponse struct {
	Epoch      int64 `json:"epoch"` // latest published epoch seq; -1 before bootstrap
	Vertices   int   `json:"vertices"`
	Edges      int   `json:"edges"`
	Timestamps int   `json:"timestamps"`
	Start      int64 `json:"start"` // raw time span of the latest epoch
	End        int64 `json:"end"`

	UptimeSeconds     float64 `json:"uptimeSeconds"`
	InFlight          int     `json:"inFlight"`
	AdmissionRejected int64   `json:"admissionRejected"`

	Cache     tkc.CacheStats          `json:"cache"`
	Endpoints map[string]endpointJSON `json:"endpoints"`

	// Shards is present only in sharded mode: one entry per time-range
	// shard, frontier last.
	Shards []shardJSON `json:"shards,omitempty"`
}

type shardJSON struct {
	ID        int   `json:"id"`
	Sealed    bool  `json:"sealed"`
	Start     int64 `json:"start"`
	End       int64 `json:"end"`
	Edges     int   `json:"edges"`
	Seq       int64 `json:"seq"`
	Replicas  int   `json:"replicas"`
	Tasks     int64 `json:"tasks"`
	CacheHits int64 `json:"cacheHits"`
	Patched   int64 `json:"patched"`
}

type endpointJSON struct {
	Count int64            `json:"count"`
	Codes map[string]int64 `json:"codes"`
	P50Ms float64          `json:"p50Ms"`
	P99Ms float64          `json:"p99Ms"`
}

// handleStats reports the serving state as JSON: the latest epoch and
// graph shape, cache hit counters, admission state and per-endpoint
// latency percentiles.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	resp := statsResponse{
		Epoch:             -1,
		UptimeSeconds:     time.Since(s.started).Seconds(),
		InFlight:          s.adm.inflight(),
		AdmissionRejected: s.adm.rejectedTotal(),
		Endpoints:         make(map[string]endpointJSON),
	}
	if g := s.graphOrNil(); g != nil {
		ep := g.Latest()
		resp.Epoch = ep.Seq()
		resp.Vertices = ep.NumVertices()
		resp.Edges = ep.NumEdges()
		resp.Timestamps = ep.TimestampCount()
		resp.Start, resp.End = ep.TimeSpan()
		resp.Cache = g.CacheStats()
	}
	if s.sharded != nil {
		for _, ss := range s.sharded.ShardStats() {
			resp.Shards = append(resp.Shards, shardJSON{
				ID: ss.ID, Sealed: ss.Sealed, Start: ss.StartTime, End: ss.EndTime,
				Edges: ss.Edges, Seq: ss.Seq, Replicas: ss.Replicas,
				Tasks: ss.Tasks, CacheHits: ss.CacheHits, Patched: ss.Patched,
			})
		}
	}
	for _, es := range s.rec.Snapshot() {
		ej := endpointJSON{
			Count: es.Count,
			Codes: make(map[string]int64, len(es.Codes)),
			P50Ms: float64(es.P50) / float64(time.Millisecond),
			P99Ms: float64(es.P99) / float64(time.Millisecond),
		}
		for c, n := range es.Codes {
			ej.Codes[strconv.Itoa(c)] = n
		}
		resp.Endpoints[es.Endpoint] = ej
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.Encode(resp)
}

// handleMetrics renders the Prometheus text exposition: request counters
// and latency summaries from the recorder, plus serving gauges (epoch,
// graph shape, cache counters, admission state).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	extra := map[string]float64{
		"tkc_admission_inflight":       float64(s.adm.inflight()),
		"tkc_admission_rejected_total": float64(s.adm.rejectedTotal()),
		"tkc_uptime_seconds":           time.Since(s.started).Seconds(),
	}
	if g := s.graphOrNil(); g != nil {
		ep := g.Latest()
		extra["tkc_epoch_seq"] = float64(ep.Seq())
		extra["tkc_graph_edges"] = float64(ep.NumEdges())
		extra["tkc_graph_vertices"] = float64(ep.NumVertices())
		cs := g.CacheStats()
		extra["tkc_cache_hits_total"] = float64(cs.Hits)
		extra["tkc_cache_misses_total"] = float64(cs.Misses)
		extra["tkc_cache_shared_total"] = float64(cs.SingleflightShared)
		extra["tkc_cache_evictions_total"] = float64(cs.Evictions)
		extra["tkc_cache_retired_total"] = float64(cs.Retired)
		extra["tkc_cache_entries"] = float64(cs.Entries)
		extra["tkc_cache_bytes"] = float64(cs.Bytes)
	}
	var b strings.Builder
	s.rec.WritePrometheus(&b, extra)
	if s.sharded != nil {
		// Per-shard families carry a shard label, which the flat extra map
		// cannot express; append them after the recorder's output.
		writeShardMetrics(&b, s.sharded.ShardStats())
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	io.WriteString(w, b.String())
}

// writeShardMetrics renders the per-shard gauge families, one labelled
// sample per shard.
func writeShardMetrics(b *strings.Builder, stats []tkc.ShardStats) {
	families := []struct {
		name string
		val  func(tkc.ShardStats) float64
	}{
		{"tkc_shard_sealed", func(s tkc.ShardStats) float64 {
			if s.Sealed {
				return 1
			}
			return 0
		}},
		{"tkc_shard_edges", func(s tkc.ShardStats) float64 { return float64(s.Edges) }},
		{"tkc_shard_replicas", func(s tkc.ShardStats) float64 { return float64(s.Replicas) }},
		{"tkc_shard_tasks_total", func(s tkc.ShardStats) float64 { return float64(s.Tasks) }},
		{"tkc_shard_cache_hits_total", func(s tkc.ShardStats) float64 { return float64(s.CacheHits) }},
		{"tkc_shard_patched_total", func(s tkc.ShardStats) float64 { return float64(s.Patched) }},
	}
	for _, f := range families {
		fmt.Fprintf(b, "# TYPE %s gauge\n", f.name)
		for _, s := range stats {
			fmt.Fprintf(b, "%s{shard=\"%d\"} %g\n", f.name, s.ID, f.val(s))
		}
	}
}
