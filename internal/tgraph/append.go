package tgraph

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// AppendStats summarises what one Append batch did.
type AppendStats struct {
	Added       int // temporal edges appended
	SelfLoops   int // dropped self loops
	Duplicates  int // dropped (u,v,t) duplicates, within the batch or vs the graph
	NewVertices int
	NewPairs    int

	// Relocations counts CSR segments (incidence, neighbour or pair-time)
	// moved to the array tail with geometrically grown capacity because the
	// batch overflowed their gap. Compactions counts full array rebuilds
	// reclaiming relocation holes. Both stay near zero on a warm stream:
	// each segment relocates O(log degree) times over its lifetime.
	Relocations int
	Compactions int

	// FirstNewRank is the smallest compressed rank that received a new
	// edge, the low-water mark of the dirty time-suffix for incremental
	// index maintenance. 0 when Added == 0.
	FirstNewRank TS
}

// gapCap returns the geometric segment capacity for a segment holding used
// entries: ~1.25x headroom plus a constant, so repeated single-edge appends
// to one vertex relocate its segment only O(log degree) times.
func gapCap(used int32) int32 { return used + used>>2 + 4 }

// Append extends the graph in place with a batch of raw edges whose
// timestamps are all at or after the graph's current maximum raw timestamp
// (streams must arrive in non-decreasing time order). Self loops are
// dropped and exact (u,v,t) duplicates are collapsed, matching Builder's
// default edge-set semantics.
//
// Unlike a full Build, Append never sorts or re-maps the existing history:
// the edge array, timestamp table and vertex labels grow at the end, and
// the flat CSR adjacency arrays (pair times, neighbour and incidence
// lists) carry per-segment gap capacity. A batch that fits in the gaps
// costs O(batch); a segment that overflows is relocated to the array tail
// with geometrically doubled capacity, and the holes relocations leave
// behind are reclaimed by an O(V+E) compaction only once they exceed half
// the array — so edge-at-a-time streaming is amortised O(1) per edge
// rather than O(V+E) per batch. Within one timestamp, appended edges
// follow the existing edges in batch order instead of the builder's (U,V)
// order; no algorithm in this module depends on intra-timestamp order.
//
// Append must not run concurrently with any reader of the same Graph
// value, and it invalidates indexes built on the previous state (see
// MutSeq). Readers of a snapshot taken with Freeze are unaffected: Append
// only writes memory no frozen directory references — it grows the flat
// arrays past every frozen length, writes batch data into per-segment gap
// capacity beyond the frozen segment ends, and relocations/compactions
// leave the old segment bytes intact — so any number of goroutines may
// query frozen snapshots while a single goroutine appends. A frozen
// snapshot itself rejects Append.
//
// tkc:mutates
func (g *Graph) Append(batch []RawEdge) (AppendStats, error) {
	var st AppendStats
	if g.frozen {
		return st, fmt.Errorf("tgraph: Append on a frozen snapshot (append to the live graph and re-Freeze)")
	}
	if len(batch) == 0 {
		return st, nil
	}
	maxRaw := g.rawTimes[len(g.rawTimes)-1]

	// Validate before mutating anything, so a bad batch leaves the graph
	// untouched.
	for _, e := range batch {
		if e.Time < maxRaw {
			return st, fmt.Errorf("tgraph: append of edge (%d,%d) at time %d violates time order (current maximum %d)",
				e.U, e.V, e.Time, maxRaw)
		}
	}

	oldN := int(g.n)
	oldTMax := g.TMax()
	oldEdgeCount := len(g.edges)
	oldPairCount := len(g.pairs)

	// Normalise: drop self loops, map labels to dense ids (extending the
	// vertex tables), canonicalise u < v on dense ids.
	type work struct {
		u, v VID
		t    int64 // raw timestamp
	}
	ws := make([]work, 0, len(batch))
	for _, e := range batch {
		if e.U == e.V {
			st.SelfLoops++
			continue
		}
		u, v := g.vidOrAdd(e.U), g.vidOrAdd(e.V)
		if u > v {
			u, v = v, u
		}
		ws = append(ws, work{u: u, v: v, t: e.Time})
	}
	st.NewVertices = len(g.labels) - oldN
	g.n = int32(len(g.labels))

	// Sort by (t, u, v) and drop duplicates within the batch.
	sort.Slice(ws, func(i, j int) bool {
		a, b := ws[i], ws[j]
		if a.t != b.t {
			return a.t < b.t
		}
		if a.u != b.u {
			return a.u < b.u
		}
		return a.v < b.v
	})
	out := ws[:0]
	for i, w := range ws {
		if i > 0 && w == ws[i-1] {
			st.Duplicates++
			continue
		}
		out = append(out, w)
	}
	ws = out

	// Drop duplicates against the existing graph. Only edges at exactly
	// the current maximum timestamp can collide; the collision test is
	// "the pair's last recorded interaction is the last rank".
	out = ws[:0]
	for _, w := range ws {
		if w.t == maxRaw && int(w.u) < oldN && int(w.v) < oldN {
			if p := g.findPair(w.u, w.v); p >= 0 {
				times := g.PairTimes(p)
				if times[len(times)-1] == oldTMax {
					st.Duplicates++
					continue
				}
			}
		}
		out = append(out, w)
	}
	ws = out
	if len(ws) == 0 {
		// The batch may still have introduced vertices (as self-loop or
		// duplicate endpoints they cannot, but keep the tables coherent).
		g.growVertexTables()
		return st, nil
	}

	// Extend the timestamp table and rank every new edge. ws is time
	// sorted, so a single forward walk suffices.
	ranks := make([]TS, len(ws))
	for i, w := range ws {
		if w.t > g.rawTimes[len(g.rawTimes)-1] {
			g.rawTimes = append(g.rawTimes, w.t)
		}
		ranks[i] = TS(len(g.rawTimes))
		if w.t == maxRaw {
			ranks[i] = oldTMax
		}
	}
	st.FirstNewRank = ranks[0]

	// Resolve the canonical pair of every new edge, creating pairs on
	// first touch, and collect the new interaction times per pair.
	type pairKey struct{ u, v VID }
	batchPair := make(map[pairKey]int32, len(ws))
	touched := make(map[int32][]TS, len(ws))
	pairOf := make([]int32, len(ws))
	for i, w := range ws {
		key := pairKey{w.u, w.v}
		p, ok := batchPair[key]
		if !ok {
			p = -1
			if int(w.u) < oldN && int(w.v) < oldN {
				p = g.findPair(w.u, w.v)
			}
			if p < 0 {
				p = int32(len(g.pairs))
				g.pairs = append(g.pairs, Pair{U: w.u, V: w.v})
				g.pairCap = append(g.pairCap, 0)
				st.NewPairs++
			}
			batchPair[key] = p
		}
		pairOf[i] = p
		// ws is time sorted and exact duplicates are gone, so per-pair
		// times arrive strictly ascending.
		touched[p] = append(touched[p], ranks[i])
	}

	// Grow the per-vertex segment tables for vertices first seen in this
	// batch (empty segments; the inserts below open their capacity).
	g.growVertexTables()

	// Merge the pair-time table: each touched pair appends into its gap,
	// relocating its segment with grown capacity when the gap is too small.
	for p, ts := range touched {
		pr := &g.pairs[p]
		if pr.Len+int32(len(ts)) > g.pairCap[p] {
			g.growPairSegment(p, int32(len(ts)), &st)
		}
		copy(g.pairTimes[pr.Off+pr.Len:], ts)
		pr.Len += int32(len(ts))
	}

	// Append the edge array; new edge ids continue the time order.
	for i, w := range ws {
		g.edges = append(g.edges, TemporalEdge{U: w.u, V: w.v, T: ranks[i]})
		g.edgePair = append(g.edgePair, pairOf[i])
	}

	// Extend the time groups in place. Offsets below the old last rank are
	// unchanged; the last old group grows by the equal-time appends and new
	// ranks continue after it.
	newTMax := int(g.TMax())
	addCnt := make([]int32, newTMax-int(oldTMax)+1)
	for _, r := range ranks {
		addCnt[int(r-oldTMax)]++
	}
	g.timeOff[oldTMax+1] += addCnt[0]
	for t := int(oldTMax) + 1; t <= newTMax; t++ {
		g.timeOff = append(g.timeOff, g.timeOff[t]+addCnt[t-int(oldTMax)])
	}

	// Insert the new pairs into the endpoint neighbour lists.
	for pi := oldPairCount; pi < len(g.pairs); pi++ {
		p := g.pairs[pi]
		g.insertNbr(p.U, Nbr{V: p.V, Pair: int32(pi)}, &st)
		g.insertNbr(p.V, Nbr{V: p.U, Pair: int32(pi)}, &st)
	}

	// Insert the new edges into the endpoint incidence lists. New edge ids
	// exceed every old id and their times are at or after the old maximum,
	// so per-vertex lists stay ascending by time.
	for i, w := range ws {
		e := EID(oldEdgeCount + i)
		g.insertInc(w.u, e, &st)
		g.insertInc(w.v, e, &st)
	}

	// Reclaim relocation holes once they dominate the arrays.
	g.maybeCompact(&st)

	st.Added = len(ws)
	atomic.AddInt64(&g.mutSeq, 1)
	return st, nil
}

// growVertexTables extends the per-vertex CSR segment tables to the current
// vertex count; new vertices start with empty zero-capacity segments.
//
// tkc:mutates
func (g *Graph) growVertexTables() {
	for u := len(g.incCap); u < int(g.n); u++ {
		it := int32(len(g.incEIDs))
		g.incSeg = append(g.incSeg, packSeg(it, it))
		g.incCap = append(g.incCap, 0)
		nt := int32(len(g.nbrs))
		g.nbrSeg = append(g.nbrSeg, packSeg(nt, nt))
		g.nbrCap = append(g.nbrCap, 0)
	}
}

// growPairSegment relocates pair p's time segment to the tail of pairTimes
// with capacity for need more entries, grown geometrically so a hot pair
// relocates only O(log interactions) times.
//
// tkc:mutates
func (g *Graph) growPairSegment(p, need int32, st *AppendStats) {
	pr := &g.pairs[p]
	newCap := max(2*g.pairCap[p], gapCap(pr.Len+need))
	off := int32(len(g.pairTimes))
	g.pairTimes = append(g.pairTimes, make([]TS, newCap)...)
	copy(g.pairTimes[off:], g.pairTimes[pr.Off:pr.Off+pr.Len])
	g.ptWaste += g.pairCap[p]
	pr.Off = off
	g.pairCap[p] = newCap
	st.Relocations++
}

// insertNbr appends nb to u's neighbour segment, relocating it on overflow.
//
// tkc:mutates
func (g *Graph) insertNbr(u VID, nb Nbr, st *AppendStats) {
	off, end := unpackSeg(g.nbrSeg[u])
	if end-off == g.nbrCap[u] {
		used := end - off
		newCap := max(2*g.nbrCap[u], gapCap(used+1))
		no := int32(len(g.nbrs))
		g.nbrs = append(g.nbrs, make([]Nbr, newCap)...)
		copy(g.nbrs[no:], g.nbrs[off:end])
		g.nbrWaste += g.nbrCap[u]
		g.nbrCap[u] = newCap
		off, end = no, no+used
		st.Relocations++
	}
	g.nbrs[end] = nb
	g.nbrSeg[u] = packSeg(off, end+1)
}

// insertInc appends e to u's incidence segment, relocating it on overflow.
//
// tkc:mutates
func (g *Graph) insertInc(u VID, e EID, st *AppendStats) {
	off, end := unpackSeg(g.incSeg[u])
	if end-off == g.incCap[u] {
		used := end - off
		newCap := max(2*g.incCap[u], gapCap(used+1))
		no := int32(len(g.incEIDs))
		g.incEIDs = append(g.incEIDs, make([]EID, newCap)...)
		copy(g.incEIDs[no:], g.incEIDs[off:end])
		g.incWaste += g.incCap[u]
		g.incCap[u] = newCap
		off, end = no, no+used
		st.Relocations++
	}
	g.incEIDs[end] = e
	g.incSeg[u] = packSeg(off, end+1)
}

// maybeCompact rebuilds any CSR array whose relocation holes exceed half
// its length, re-packing segments in index order with geometric gaps
// preserved. Amortised against the relocations that created the holes.
//
// tkc:mutates
func (g *Graph) maybeCompact(st *AppendStats) {
	if int(g.incWaste) > len(g.incEIDs)/2 && len(g.incEIDs) > 1024 {
		inc := make([]EID, 0, len(g.incEIDs)-int(g.incWaste))
		for u := 0; u < int(g.n); u++ {
			o, e := unpackSeg(g.incSeg[u])
			off, used := int32(len(inc)), e-o
			inc = append(inc, g.incEIDs[o:e]...)
			c := gapCap(used)
			inc = append(inc, make([]EID, c-used)...)
			g.incSeg[u] = packSeg(off, off+used)
			g.incCap[u] = c
		}
		g.incEIDs, g.incWaste = inc, 0
		st.Compactions++
	}
	if int(g.nbrWaste) > len(g.nbrs)/2 && len(g.nbrs) > 1024 {
		nbrs := make([]Nbr, 0, len(g.nbrs)-int(g.nbrWaste))
		for u := 0; u < int(g.n); u++ {
			o, e := unpackSeg(g.nbrSeg[u])
			off, used := int32(len(nbrs)), e-o
			nbrs = append(nbrs, g.nbrs[o:e]...)
			c := gapCap(used)
			nbrs = append(nbrs, make([]Nbr, c-used)...)
			g.nbrSeg[u] = packSeg(off, off+used)
			g.nbrCap[u] = c
		}
		g.nbrs, g.nbrWaste = nbrs, 0
		st.Compactions++
	}
	if int(g.ptWaste) > len(g.pairTimes)/2 && len(g.pairTimes) > 1024 {
		pt := make([]TS, 0, len(g.pairTimes)-int(g.ptWaste))
		for pi := range g.pairs {
			p := &g.pairs[pi]
			off := int32(len(pt))
			pt = append(pt, g.pairTimes[p.Off:p.Off+p.Len]...)
			c := gapCap(p.Len)
			pt = append(pt, make([]TS, c-p.Len)...)
			p.Off, g.pairCap[pi] = off, c
		}
		g.pairTimes, g.ptWaste = pt, 0
		st.Compactions++
	}
}

// MutSeq returns the graph's mutation sequence number, incremented by every
// Append that adds at least one edge. Indexes built over the graph record
// it to detect staleness. The read is atomic, so staleness checks may run
// concurrently with the writer; a frozen snapshot reports the sequence it
// was frozen at.
func (g *Graph) MutSeq() int64 { return atomic.LoadInt64(&g.mutSeq) }

// vidOrAdd returns the dense id of a label, extending the vertex tables on
// first sight.
//
// tkc:mutates
func (g *Graph) vidOrAdd(label int64) VID {
	g.labelMu.RLock()
	v, ok := g.labelOf[label]
	g.labelMu.RUnlock()
	if ok {
		return v
	}
	v = VID(len(g.labels))
	g.labelMu.Lock()
	g.labelOf[label] = v
	g.labelMu.Unlock()
	g.labels = append(g.labels, label)
	return v
}

// findPair returns the canonical pair index of (u, v), or -1 when the pair
// does not exist. It scans the shorter of the two neighbour lists.
func (g *Graph) findPair(u, v VID) int32 {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	for _, nb := range g.Neighbours(u) {
		if nb.V == v {
			return nb.Pair
		}
	}
	return -1
}
