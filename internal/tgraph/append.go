package tgraph

import (
	"fmt"
	"sort"
)

// AppendStats summarises what one Append batch did.
type AppendStats struct {
	Added       int // temporal edges appended
	SelfLoops   int // dropped self loops
	Duplicates  int // dropped (u,v,t) duplicates, within the batch or vs the graph
	NewVertices int
	NewPairs    int

	// FirstNewRank is the smallest compressed rank that received a new
	// edge, the low-water mark of the dirty time-suffix for incremental
	// index maintenance. 0 when Added == 0.
	FirstNewRank TS
}

// Append extends the graph in place with a batch of raw edges whose
// timestamps are all at or after the graph's current maximum raw timestamp
// (streams must arrive in non-decreasing time order). Self loops are
// dropped and exact (u,v,t) duplicates are collapsed, matching Builder's
// default edge-set semantics.
//
// Unlike a full Build, Append never sorts or re-maps the existing history:
// the edge array, timestamp table and vertex labels grow at the end, and
// only the flat CSR adjacency arrays (pair times, neighbour and incidence
// lists) are re-merged with a linear copy pass when the batch touches them.
// Within one timestamp, appended edges follow the existing edges in batch
// order instead of the builder's (U,V) order; no algorithm in this module
// depends on intra-timestamp order.
//
// Append must not run concurrently with any reader of the graph, and it
// invalidates indexes built on the previous state (see MutSeq).
func (g *Graph) Append(batch []RawEdge) (AppendStats, error) {
	var st AppendStats
	if len(batch) == 0 {
		return st, nil
	}
	maxRaw := g.rawTimes[len(g.rawTimes)-1]

	// Validate before mutating anything, so a bad batch leaves the graph
	// untouched.
	for _, e := range batch {
		if e.Time < maxRaw {
			return st, fmt.Errorf("tgraph: append of edge (%d,%d) at time %d violates time order (current maximum %d)",
				e.U, e.V, e.Time, maxRaw)
		}
	}

	oldN := int(g.n)
	oldTMax := g.TMax()
	oldEdgeCount := len(g.edges)
	oldPairCount := len(g.pairs)

	// Normalise: drop self loops, map labels to dense ids (extending the
	// vertex tables), canonicalise u < v on dense ids.
	type work struct {
		u, v VID
		t    int64 // raw timestamp
	}
	ws := make([]work, 0, len(batch))
	for _, e := range batch {
		if e.U == e.V {
			st.SelfLoops++
			continue
		}
		u, v := g.vidOrAdd(e.U), g.vidOrAdd(e.V)
		if u > v {
			u, v = v, u
		}
		ws = append(ws, work{u: u, v: v, t: e.Time})
	}
	st.NewVertices = len(g.labels) - oldN
	g.n = int32(len(g.labels))

	// Sort by (t, u, v) and drop duplicates within the batch.
	sort.Slice(ws, func(i, j int) bool {
		a, b := ws[i], ws[j]
		if a.t != b.t {
			return a.t < b.t
		}
		if a.u != b.u {
			return a.u < b.u
		}
		return a.v < b.v
	})
	out := ws[:0]
	for i, w := range ws {
		if i > 0 && w == ws[i-1] {
			st.Duplicates++
			continue
		}
		out = append(out, w)
	}
	ws = out

	// Drop duplicates against the existing graph. Only edges at exactly
	// the current maximum timestamp can collide; the collision test is
	// "the pair's last recorded interaction is the last rank".
	out = ws[:0]
	for _, w := range ws {
		if w.t == maxRaw && int(w.u) < oldN && int(w.v) < oldN {
			if p := g.findPair(w.u, w.v); p >= 0 {
				times := g.PairTimes(p)
				if times[len(times)-1] == oldTMax {
					st.Duplicates++
					continue
				}
			}
		}
		out = append(out, w)
	}
	ws = out
	if len(ws) == 0 {
		return st, nil
	}

	// Extend the timestamp table and rank every new edge. ws is time
	// sorted, so a single forward walk suffices.
	ranks := make([]TS, len(ws))
	for i, w := range ws {
		if w.t > g.rawTimes[len(g.rawTimes)-1] {
			g.rawTimes = append(g.rawTimes, w.t)
		}
		ranks[i] = TS(len(g.rawTimes))
		if w.t == maxRaw {
			ranks[i] = oldTMax
		}
	}
	st.FirstNewRank = ranks[0]

	// Resolve the canonical pair of every new edge, creating pairs on
	// first touch, and collect the new interaction times per pair.
	type pairKey struct{ u, v VID }
	batchPair := make(map[pairKey]int32, len(ws))
	touched := make(map[int32][]TS, len(ws))
	anyOldPair := false
	pairOf := make([]int32, len(ws))
	for i, w := range ws {
		key := pairKey{w.u, w.v}
		p, ok := batchPair[key]
		if !ok {
			p = -1
			if int(w.u) < oldN && int(w.v) < oldN {
				p = g.findPair(w.u, w.v)
			}
			if p < 0 {
				p = int32(len(g.pairs))
				g.pairs = append(g.pairs, Pair{U: w.u, V: w.v})
				st.NewPairs++
			}
			batchPair[key] = p
		}
		if p < int32(oldPairCount) {
			anyOldPair = true
		}
		pairOf[i] = p
		// ws is time sorted and exact duplicates are gone, so per-pair
		// times arrive strictly ascending.
		touched[p] = append(touched[p], ranks[i])
	}

	// Merge the pair-time table. When only new pairs gained times the old
	// packed array is untouched and the new times append at its end;
	// otherwise one linear copy pass re-packs it.
	if anyOldPair {
		npt := make([]TS, 0, len(g.pairTimes)+len(ws))
		for pi := range g.pairs {
			p := &g.pairs[pi]
			off := int32(len(npt))
			if pi < oldPairCount {
				npt = append(npt, g.pairTimes[p.Off:p.Off+p.Len]...)
			}
			npt = append(npt, touched[int32(pi)]...)
			p.Off = off
			p.Len = int32(len(npt)) - off
		}
		g.pairTimes = npt
	} else {
		for pi := oldPairCount; pi < len(g.pairs); pi++ {
			p := &g.pairs[pi]
			p.Off = int32(len(g.pairTimes))
			g.pairTimes = append(g.pairTimes, touched[int32(pi)]...)
			p.Len = int32(len(g.pairTimes)) - p.Off
		}
	}

	// Append the edge array; new edge ids continue the time order.
	for i, w := range ws {
		g.edges = append(g.edges, TemporalEdge{U: w.u, V: w.v, T: ranks[i]})
		g.edgePair = append(g.edgePair, pairOf[i])
	}

	// Extend the time groups. Offsets below the old last rank are
	// unchanged; the last old group grows by the equal-time appends and
	// new ranks continue after it.
	newTMax := int(g.TMax())
	addCnt := make([]int32, newTMax-int(oldTMax)+1)
	for _, r := range ranks {
		addCnt[int(r-oldTMax)]++
	}
	to := make([]int32, newTMax+2)
	copy(to, g.timeOff[:oldTMax+1])
	oldLast := g.timeOff[oldTMax+1] - g.timeOff[oldTMax]
	to[oldTMax+1] = to[oldTMax] + oldLast + addCnt[0]
	for t := int(oldTMax) + 1; t <= newTMax; t++ {
		to[t+1] = to[t] + addCnt[t-int(oldTMax)]
	}
	g.timeOff = to

	n := int(g.n)

	// Re-merge the distinct-neighbour lists when new pairs appeared.
	if st.NewPairs > 0 {
		off := make([]int32, n+1)
		for u := 0; u < oldN; u++ {
			off[u+1] = g.nbrOff[u+1] - g.nbrOff[u]
		}
		for pi := oldPairCount; pi < len(g.pairs); pi++ {
			p := g.pairs[pi]
			off[p.U+1]++
			off[p.V+1]++
		}
		for u := 0; u < n; u++ {
			off[u+1] += off[u]
		}
		nbrs := make([]Nbr, off[n])
		cur := make([]int32, n)
		copy(cur, off[:n])
		for u := 0; u < oldN; u++ {
			cur[u] += int32(copy(nbrs[cur[u]:], g.nbrs[g.nbrOff[u]:g.nbrOff[u+1]]))
		}
		for pi := oldPairCount; pi < len(g.pairs); pi++ {
			p := g.pairs[pi]
			nbrs[cur[p.U]] = Nbr{V: p.V, Pair: int32(pi)}
			cur[p.U]++
			nbrs[cur[p.V]] = Nbr{V: p.U, Pair: int32(pi)}
			cur[p.V]++
		}
		g.nbrOff, g.nbrs = off, nbrs
	}

	// Re-merge the incidence lists. New edge ids exceed every old id and
	// their times are at or after the old maximum, so per-vertex lists
	// stay ascending by time.
	{
		off := make([]int32, n+1)
		for u := 0; u < oldN; u++ {
			off[u+1] = g.incOff[u+1] - g.incOff[u]
		}
		for _, w := range ws {
			off[w.u+1]++
			off[w.v+1]++
		}
		for u := 0; u < n; u++ {
			off[u+1] += off[u]
		}
		inc := make([]EID, off[n])
		cur := make([]int32, n)
		copy(cur, off[:n])
		for u := 0; u < oldN; u++ {
			cur[u] += int32(copy(inc[cur[u]:], g.incEIDs[g.incOff[u]:g.incOff[u+1]]))
		}
		for i, w := range ws {
			e := EID(oldEdgeCount + i)
			inc[cur[w.u]] = e
			cur[w.u]++
			inc[cur[w.v]] = e
			cur[w.v]++
		}
		g.incOff, g.incEIDs = off, inc
	}

	st.Added = len(ws)
	g.mutSeq++
	return st, nil
}

// MutSeq returns the graph's mutation sequence number, incremented by every
// Append that adds at least one edge. Indexes built over the graph record
// it to detect staleness.
func (g *Graph) MutSeq() int64 { return g.mutSeq }

// vidOrAdd returns the dense id of a label, extending the vertex tables on
// first sight.
func (g *Graph) vidOrAdd(label int64) VID {
	if v, ok := g.labelOf[label]; ok {
		return v
	}
	v := VID(len(g.labels))
	g.labelOf[label] = v
	g.labels = append(g.labels, label)
	return v
}

// findPair returns the canonical pair index of (u, v), or -1 when the pair
// does not exist. It scans the shorter of the two neighbour lists.
func (g *Graph) findPair(u, v VID) int32 {
	if g.Degree(u) > g.Degree(v) {
		u, v = v, u
	}
	for _, nb := range g.Neighbours(u) {
		if nb.V == v {
			return nb.Pair
		}
	}
	return -1
}
