package tgraph_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"temporalkcore/internal/tgraph"
)

// graphFingerprint renders every reader-visible dimension of a graph into
// one comparable string: counts, per-vertex degree/incidence sums, pair
// time sums and the time-group table.
func graphFingerprint(g *tgraph.Graph) string {
	degSum, incSum := 0, 0
	for u := 0; u < g.NumVertices(); u++ {
		degSum += g.Degree(tgraph.VID(u))
		incSum += len(g.Incident(tgraph.VID(u)))
	}
	ptSum := 0
	for p := 0; p < g.NumPairs(); p++ {
		for _, t := range g.PairTimes(int32(p)) {
			ptSum += int(t)
		}
	}
	tgSum := 0
	for t := tgraph.TS(1); t <= g.TMax(); t++ {
		lo, hi := g.EdgesAt(t)
		tgSum += int(t) * int(hi-lo)
	}
	return fmt.Sprintf("v=%d e=%d p=%d tmax=%d deg=%d inc=%d pt=%d tg=%d seq=%d",
		g.NumVertices(), g.NumEdges(), g.NumPairs(), g.TMax(), degSum, incSum, ptSum, tgSum, g.MutSeq())
}

// TestFreezeIsolation appends batch after batch to a live graph, freezing
// before each batch; every snapshot's fingerprint must stay byte-identical
// to what it was at freeze time, no matter how far the live graph moves on.
func TestFreezeIsolation(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		r := rand.New(rand.NewSource(seed))
		edges := appendRandomEdges(r, 10+r.Intn(20), 400)
		g, err := tgraph.FromRawEdges(edges[:100])
		if err != nil {
			t.Fatal(err)
		}
		type snap struct {
			g    *tgraph.Graph
			want string
		}
		var snaps []snap
		for i := 100; i < len(edges); i += 30 {
			fz := g.Freeze()
			if !fz.Frozen() {
				t.Fatal("Freeze returned an unfrozen graph")
			}
			snaps = append(snaps, snap{g: fz, want: graphFingerprint(fz)})
			j := min(i+30, len(edges))
			if _, err := g.Append(edges[i:j]); err != nil {
				t.Fatal(err)
			}
			for si, s := range snaps {
				if got := graphFingerprint(s.g); got != s.want {
					t.Fatalf("seed %d: snapshot %d mutated after later appends:\n got %s\nwant %s", seed, si, got, s.want)
				}
			}
		}
	}
}

// tkc:mutates-frozen-ok: the test exists to assert that Append on a frozen
// snapshot is rejected with an error
func TestFreezeRejectsAppend(t *testing.T) {
	g := tgraph.MustFromTriples([3]int64{1, 2, 1}, [3]int64{2, 3, 2})
	fz := g.Freeze()
	if _, err := fz.Append([]tgraph.RawEdge{{U: 3, V: 4, Time: 5}}); err == nil {
		t.Fatal("Append on a frozen snapshot succeeded")
	}
	// The live graph still appends, and the snapshot's MutSeq stays put.
	before := fz.MutSeq()
	if _, err := g.Append([]tgraph.RawEdge{{U: 3, V: 4, Time: 5}}); err != nil {
		t.Fatal(err)
	}
	if fz.MutSeq() != before || g.MutSeq() != before+1 {
		t.Fatalf("MutSeq: frozen %d->%d, live %d", before, fz.MutSeq(), g.MutSeq())
	}
}

// TestFreezeVertexOf: labels first seen after the freeze are absent from
// the snapshot even though the label map is shared.
func TestFreezeVertexOf(t *testing.T) {
	g := tgraph.MustFromTriples([3]int64{1, 2, 1})
	fz := g.Freeze()
	if _, err := g.Append([]tgraph.RawEdge{{U: 2, V: 77, Time: 3}}); err != nil {
		t.Fatal(err)
	}
	if _, ok := g.VertexOf(77); !ok {
		t.Fatal("live graph lost a new label")
	}
	if _, ok := fz.VertexOf(77); ok {
		t.Fatal("snapshot sees a label first observed after the freeze")
	}
	if _, ok := fz.VertexOf(1); !ok {
		t.Fatal("snapshot lost a pre-freeze label")
	}
}

// TestFreezeRace is the memory-model torture test: one writer appends
// tiny batches (maximising relocations and in-place directory updates)
// while reader goroutines continuously walk snapshots frozen at batch
// boundaries. Run under -race this verifies the disjoint-write claim of
// the Freeze godoc; the fingerprint comparison verifies no torn reads.
func TestFreezeRace(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	edges := appendRandomEdges(r, 25, 3000)
	g, err := tgraph.FromRawEdges(edges[:500])
	if err != nil {
		t.Fatal(err)
	}

	type snap struct {
		g    *tgraph.Graph
		want string
	}
	snapCh := make(chan snap, 64)
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var held []snap
			for s := range snapCh {
				held = append(held, s)
				for _, h := range held {
					if got := graphFingerprint(h.g); got != h.want {
						t.Errorf("snapshot torn: got %s want %s", got, h.want)
						return
					}
				}
				if len(held) > 8 {
					held = held[1:]
				}
			}
		}()
	}

	for i := 500; i < len(edges); i += 7 {
		j := min(i+7, len(edges))
		if _, err := g.Append(edges[i:j]); err != nil {
			t.Fatal(err)
		}
		fz := g.Freeze()
		s := snap{g: fz, want: graphFingerprint(fz)}
		snapCh <- s
	}
	close(snapCh)
	wg.Wait()
}

// appendRandomEdges generates a time-ordered random edge stream suitable
// for batch-wise Append (timestamps non-decreasing).
func appendRandomEdges(r *rand.Rand, n, m int) []tgraph.RawEdge {
	edges := make([]tgraph.RawEdge, 0, m)
	time := int64(1)
	for len(edges) < m {
		if r.Intn(3) == 0 {
			time++
		}
		edges = append(edges, tgraph.RawEdge{U: int64(r.Intn(n)), V: int64(r.Intn(n)), Time: time})
	}
	return edges
}
