package tgraph

import (
	"fmt"
	"sort"
	"sync"
)

// Graph is a compact undirected temporal graph. It is immutable except for
// Append, which extends it at the time frontier (see append.go); readers
// and Append must not run concurrently on the same Graph value. For
// concurrent serving, Freeze (see snapshot.go) produces an immutable
// copy-on-write view that stays consistent while the original keeps
// appending — readers query the frozen view, the single writer mutates the
// original.
//
// Layout invariants:
//   - edges are sorted by T; EID is the index into edges, so edge ids
//     ascend with time and timeOff groups edges of equal timestamp. Within
//     one timestamp, Build orders edges by (U, V) and Append adds batch
//     edges after the existing ones; no algorithm depends on the
//     intra-timestamp order.
//   - pairs lists every distinct vertex pair (U < V); pairTimes[p.Off:p.Off+p.Len]
//     are the pair's interaction times, strictly ascending. The pair owns
//     the segment [p.Off, p.Off+pairCap[pi]); entries past p.Len are spare
//     gap capacity for Append (garbage, never read).
//   - nbrs[off:end] with (off, end) = unpacked nbrSeg[u] are u's distinct
//     neighbours; the vertex owns [off, off+nbrCap[u]) with the tail past
//     end as gap capacity. The segment is packed into one uint64
//     (off | end<<32) so the hot read path costs a single load and bounds
//     check, measurably faster than two separate index loads on the
//     CoreTime fixed-point loop.
//   - incEIDs[off:end] with (off, end) = unpacked incSeg[u] are the
//     temporal edges incident to u, ascending by time; the vertex owns
//     [off, off+incCap[u]) with the tail as gap capacity.
//
// Build packs every segment exactly (zero gaps, segments in vertex order).
// Append opens geometric per-segment gaps on overflow by relocating the
// overflowing segment to the array tail with doubled capacity, so streaming
// ingestion amortises to O(batch) instead of re-merging the whole CSR per
// batch; abandoned holes are reclaimed by a compaction pass once they
// exceed half the array (see append.go).
type Graph struct {
	n int32

	edges    []TemporalEdge
	edgePair []int32

	pairs     []Pair
	pairTimes []TS
	pairCap   []int32 // per pair: segment capacity in pairTimes
	ptWaste   int32   // dead entries abandoned by pair-segment relocations

	nbrSeg   []uint64 // per vertex: packed (offset | end<<32) into nbrs
	nbrCap   []int32  // per vertex: segment capacity
	nbrs     []Nbr
	nbrWaste int32

	incSeg   []uint64 // per vertex: packed (offset | end<<32) into incEIDs
	incCap   []int32  // per vertex: segment capacity
	incEIDs  []EID
	incWaste int32

	timeOff []int32 // len TMax+2; edges with T==t are edges[timeOff[t]:timeOff[t+1]]

	rawTimes []int64 // rank t (1-based) -> rawTimes[t-1]
	labels   []int64 // vid -> original label

	// labelOf is shared between a graph and its frozen snapshots (cloning
	// the map per epoch would dominate the freeze cost), so it is the one
	// structure both writer and readers touch: labelMu guards it. The hot
	// algorithm paths never take the lock — they speak dense ids.
	labelOf map[int64]VID // tkc:guardedby labelMu
	labelMu *sync.RWMutex

	mutSeq int64 // incremented by every edge-adding Append; read atomically

	// frozen marks a snapshot produced by Freeze: Append rejects it and its
	// directory tables (pairs, nbrSeg, incSeg, timeOff) are private copies
	// while the flat history arrays are shared with the live graph.
	frozen bool
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return int(g.n) }

// NumEdges returns the number of temporal edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// NumPairs returns the number of distinct vertex pairs.
func (g *Graph) NumPairs() int { return len(g.pairs) }

// TMax returns the number of distinct timestamps (the highest rank).
func (g *Graph) TMax() TS { return TS(len(g.rawTimes)) }

// Edge returns the temporal edge with id e.
func (g *Graph) Edge(e EID) TemporalEdge { return g.edges[e] }

// Edges returns the full time-sorted edge slice. Callers must not modify it.
func (g *Graph) Edges() []TemporalEdge { return g.edges }

// EdgePair returns the canonical pair index of edge e.
func (g *Graph) EdgePair(e EID) int32 { return g.edgePair[e] }

// Pair returns the canonical pair with index p.
func (g *Graph) Pair(p int32) Pair { return g.pairs[p] }

// PairTimes returns the ascending interaction times of pair p.
func (g *Graph) PairTimes(p int32) []TS {
	pr := g.pairs[p]
	return g.pairTimes[pr.Off : pr.Off+pr.Len]
}

// packSeg packs a segment's (offset, end) into the uint64 the per-vertex
// CSR tables store; unpackSeg reverses it.
func packSeg(off, end int32) uint64 { return uint64(uint32(off)) | uint64(uint32(end))<<32 }

func unpackSeg(s uint64) (off, end int32) { return int32(uint32(s)), int32(uint32(s >> 32)) }

// Neighbours returns the distinct-neighbour list of u.
func (g *Graph) Neighbours(u VID) []Nbr {
	s := g.nbrSeg[u]
	return g.nbrs[uint32(s):uint32(s>>32)]
}

// Degree returns the number of distinct neighbours of u over the whole graph.
func (g *Graph) Degree(u VID) int {
	s := g.nbrSeg[u]
	return int(uint32(s>>32) - uint32(s))
}

// Incident returns the temporal edges incident to u, ascending by time.
func (g *Graph) Incident(u VID) []EID {
	s := g.incSeg[u]
	return g.incEIDs[uint32(s):uint32(s>>32)]
}

// EdgesAt returns the edge-id range [lo, hi) of edges with timestamp t.
func (g *Graph) EdgesAt(t TS) (lo, hi EID) {
	if t < 1 || t > g.TMax() {
		return 0, 0
	}
	return EID(g.timeOff[t]), EID(g.timeOff[t+1])
}

// EdgesIn returns the edge-id range [lo, hi) of edges with timestamps in
// [w.Start, w.End]. Because edges are time sorted the range is contiguous.
func (g *Graph) EdgesIn(w Window) (lo, hi EID) {
	if !w.Valid() {
		return 0, 0
	}
	s, e := w.Start, w.End
	if s < 1 {
		s = 1
	}
	if e > g.TMax() {
		e = g.TMax()
	}
	if s > e {
		return 0, 0
	}
	return EID(g.timeOff[s]), EID(g.timeOff[e+1])
}

// RawTime returns the raw timestamp of rank t.
func (g *Graph) RawTime(t TS) int64 {
	if t < 1 || t > g.TMax() {
		panic(fmt.Sprintf("tgraph: rank %d out of range [1,%d]", t, g.TMax()))
	}
	return g.rawTimes[t-1]
}

// RawWindow converts a compressed window to raw timestamps.
func (g *Graph) RawWindow(w Window) (start, end int64) {
	return g.RawTime(w.Start), g.RawTime(w.End)
}

// RankCeil returns the smallest rank whose raw time is >= raw, or TMax+1 if
// every raw time is smaller.
func (g *Graph) RankCeil(raw int64) TS {
	i := sort.Search(len(g.rawTimes), func(i int) bool { return g.rawTimes[i] >= raw })
	return TS(i + 1)
}

// RankFloor returns the largest rank whose raw time is <= raw, or 0 if every
// raw time is larger.
func (g *Graph) RankFloor(raw int64) TS {
	i := sort.Search(len(g.rawTimes), func(i int) bool { return g.rawTimes[i] > raw })
	return TS(i)
}

// CompressRange maps a raw closed range [rawStart, rawEnd] to the compressed
// window of ranks whose raw times fall inside it. ok is false when the range
// covers no timestamp of the graph.
func (g *Graph) CompressRange(rawStart, rawEnd int64) (w Window, ok bool) {
	s := g.RankCeil(rawStart)
	e := g.RankFloor(rawEnd)
	if s < 1 || s > g.TMax() || e < 1 || s > e {
		return Window{}, false
	}
	return Window{Start: s, End: e}, true
}

// Label returns the original label of vertex v.
func (g *Graph) Label(v VID) int64 { return g.labels[v] }

// VertexOf returns the dense id of a label, if present. It is safe to call
// on a frozen snapshot while the live graph appends: the shared label map
// is lock-guarded, and labels first seen after the snapshot was frozen are
// reported as absent.
func (g *Graph) VertexOf(label int64) (VID, bool) {
	g.labelMu.RLock()
	v, ok := g.labelOf[label]
	g.labelMu.RUnlock()
	if ok && int32(v) >= g.n {
		return 0, false
	}
	return v, ok
}

// FullWindow returns the window covering every timestamp of the graph.
func (g *Graph) FullWindow() Window { return Window{Start: 1, End: g.TMax()} }

// FirstPairTimeAtOrAfter returns the earliest interaction time of pair p that
// is >= ts, or InfTime when there is none.
func (g *Graph) FirstPairTimeAtOrAfter(p int32, ts TS) TS {
	times := g.PairTimes(p)
	i := sort.Search(len(times), func(i int) bool { return times[i] >= ts })
	if i == len(times) {
		return InfTime
	}
	return times[i]
}
