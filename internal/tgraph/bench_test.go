package tgraph_test

import (
	"math/rand"
	"testing"

	"temporalkcore/internal/tgraph"
)

// BenchmarkBuild measures graph construction from raw edges (sorting,
// compression, CSR assembly).
func BenchmarkBuild(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	raw := make([]tgraph.RawEdge, 20000)
	for i := range raw {
		raw[i] = tgraph.RawEdge{
			U:    int64(r.Intn(2000)),
			V:    int64(r.Intn(2000)),
			Time: int64(r.Intn(10000)),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var bd tgraph.Builder
		for _, e := range raw {
			if e.U != e.V {
				bd.AddEdge(e)
			}
		}
		if _, err := bd.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEdgesIn measures the window slicing hot path.
func BenchmarkEdgesIn(b *testing.B) {
	var bd tgraph.Builder
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		u, v := r.Intn(2000), r.Intn(2000)
		if u == v {
			continue
		}
		bd.Add(int64(u), int64(v), int64(r.Intn(10000)))
	}
	g, err := bd.Build()
	if err != nil {
		b.Fatal(err)
	}
	tmax := g.TMax()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := tgraph.TS(i%int(tmax)) + 1
		e := s + tmax/10
		if e > tmax {
			e = tmax
		}
		g.EdgesIn(tgraph.Window{Start: s, End: e})
	}
}
