package tgraph_test

import (
	"math/rand"
	"testing"

	"temporalkcore/internal/tgraph"
)

// BenchmarkBuild measures graph construction from raw edges (sorting,
// compression, CSR assembly).
func BenchmarkBuild(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	raw := make([]tgraph.RawEdge, 20000)
	for i := range raw {
		raw[i] = tgraph.RawEdge{
			U:    int64(r.Intn(2000)),
			V:    int64(r.Intn(2000)),
			Time: int64(r.Intn(10000)),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var bd tgraph.Builder
		for _, e := range raw {
			if e.U != e.V {
				bd.AddEdge(e)
			}
		}
		if _, err := bd.Build(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEdgesIn measures the window slicing hot path.
func BenchmarkEdgesIn(b *testing.B) {
	var bd tgraph.Builder
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 20000; i++ {
		u, v := r.Intn(2000), r.Intn(2000)
		if u == v {
			continue
		}
		bd.Add(int64(u), int64(v), int64(r.Intn(10000)))
	}
	g, err := bd.Build()
	if err != nil {
		b.Fatal(err)
	}
	tmax := g.TMax()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := tgraph.TS(i%int(tmax)) + 1
		e := s + tmax/10
		if e > tmax {
			e = tmax
		}
		g.EdgesIn(tgraph.Window{Start: s, End: e})
	}
}

// BenchmarkAppendOneByOne measures worst-case streaming ingestion: one edge
// per Append call. With exact-packed CSR arrays every call re-merged
// O(V+E) state, making N single-edge appends quadratic in N; with
// per-segment gap capacity each call amortises to O(1) (relocations are
// geometric, compactions reclaim holes), so ns/op should stay flat as the
// graph grows.
func BenchmarkAppendOneByOne(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	base := make([]tgraph.RawEdge, 5000)
	for i := range base {
		base[i] = tgraph.RawEdge{
			U:    int64(r.Intn(1500)),
			V:    int64(r.Intn(1500)),
			Time: int64(i / 2),
		}
	}
	var bd tgraph.Builder
	for _, e := range base {
		if e.U != e.V {
			bd.AddEdge(e)
		}
	}
	g, err := bd.Build()
	if err != nil {
		b.Fatal(err)
	}
	t := int64(len(base) / 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%3 == 0 {
			t++ // mix same-timestamp and frontier-advancing appends
		}
		u, v := int64(r.Intn(1500)), int64(r.Intn(1500))
		if u == v {
			v = (v + 1) % 1500
		}
		if _, err := g.Append([]tgraph.RawEdge{{U: u, V: v, Time: t}}); err != nil {
			b.Fatal(err)
		}
	}
}
