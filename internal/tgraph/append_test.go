package tgraph_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"temporalkcore/internal/tgraph"
)

// rawTriple is one (u, v, t) edge in label space.
type rawTriple struct{ u, v, t int64 }

// canonicalForm flattens a graph into a sorted, label-space description of
// every structure an algorithm can observe, so graphs built by different
// paths can be compared without depending on intra-timestamp edge order.
func canonicalForm(t *testing.T, g *tgraph.Graph) string {
	t.Helper()
	var out []string

	out = append(out, fmt.Sprintf("n=%d m=%d tmax=%d", g.NumVertices(), g.NumEdges(), g.TMax()))

	// Edge multiset in raw label/time space.
	var edges []rawTriple
	for e := 0; e < g.NumEdges(); e++ {
		te := g.Edge(tgraph.EID(e))
		u, v := g.Label(te.U), g.Label(te.V)
		if u > v {
			u, v = v, u
		}
		edges = append(edges, rawTriple{u, v, g.RawTime(te.T)})
	}
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.t != b.t {
			return a.t < b.t
		}
		if a.u != b.u {
			return a.u < b.u
		}
		return a.v < b.v
	})
	for _, e := range edges {
		out = append(out, fmt.Sprintf("e %d %d @%d", e.u, e.v, e.t))
	}

	// Per-pair interaction times, keyed by labels.
	var pairLines []string
	for p := 0; p < g.NumPairs(); p++ {
		pr := g.Pair(int32(p))
		u, v := g.Label(pr.U), g.Label(pr.V)
		if u > v {
			u, v = v, u
		}
		line := fmt.Sprintf("p %d %d:", u, v)
		for _, ts := range g.PairTimes(int32(p)) {
			line += fmt.Sprintf(" %d", g.RawTime(ts))
		}
		pairLines = append(pairLines, line)
	}
	sort.Strings(pairLines)
	out = append(out, pairLines...)

	// Per-vertex neighbour label sets and incident edge times.
	var vertLines []string
	for u := 0; u < g.NumVertices(); u++ {
		vid := tgraph.VID(u)
		var nbs []int64
		for _, nb := range g.Neighbours(vid) {
			nbs = append(nbs, g.Label(nb.V))
		}
		sort.Slice(nbs, func(i, j int) bool { return nbs[i] < nbs[j] })
		var incs []int64
		prev := tgraph.TS(0)
		for _, e := range g.Incident(vid) {
			te := g.Edge(e)
			if te.T < prev {
				t.Fatalf("vertex %d: incidence list not time sorted", u)
			}
			prev = te.T
			incs = append(incs, g.RawTime(te.T))
		}
		vertLines = append(vertLines, fmt.Sprintf("v %d nbrs=%v inc=%v", g.Label(vid), nbs, incs))
	}
	sort.Strings(vertLines)
	out = append(out, vertLines...)

	// Time groups.
	for ts := tgraph.TS(1); ts <= g.TMax(); ts++ {
		lo, hi := g.EdgesAt(ts)
		for e := lo; e < hi; e++ {
			if g.Edge(e).T != ts {
				t.Fatalf("EdgesAt(%d): edge %d has T=%d", ts, e, g.Edge(e).T)
			}
		}
		out = append(out, fmt.Sprintf("t %d: %d edges", g.RawTime(ts), hi-lo))
	}

	s := ""
	for _, l := range out {
		s += l + "\n"
	}
	return s
}

func buildFrom(t *testing.T, triples []rawTriple) *tgraph.Graph {
	t.Helper()
	var b tgraph.Builder
	for _, tr := range triples {
		b.Add(tr.u, tr.v, tr.t)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// TestAppendEquivalentToBuild appends random time-ordered suffixes and
// requires the result to be observationally identical to a from-scratch
// build of the full edge list.
func TestAppendEquivalentToBuild(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := rand.New(rand.NewSource(seed))
		n := 5 + r.Intn(20)
		m := 10 + r.Intn(120)
		var triples []rawTriple
		time := int64(1)
		for len(triples) < m {
			u := int64(r.Intn(n))
			v := int64(r.Intn(n))
			if r.Intn(4) == 0 {
				time++ // advance time in bursts so ranks repeat
			}
			triples = append(triples, rawTriple{u, v, time})
		}
		// Split into a prefix built normally and 1-3 appended batches.
		// The split must respect time order: appended edges carry times
		// >= the prefix maximum, so cut at a time boundary.
		cutTime := triples[0].t + (time-triples[0].t)*int64(1+r.Intn(3))/4
		var prefix, suffix []rawTriple
		for _, tr := range triples {
			if tr.t <= cutTime {
				prefix = append(prefix, tr)
			} else {
				suffix = append(suffix, tr)
			}
		}
		if len(prefix) == 0 || len(suffix) == 0 {
			continue
		}
		// Also duplicate a few prefix-boundary edges into the suffix at
		// the boundary time to exercise equal-time dedup... they must be
		// at a time >= max(prefix) to be appendable; re-add the last
		// prefix edge verbatim.
		last := prefix[len(prefix)-1]
		maxPrefixTime := int64(0)
		for _, tr := range prefix {
			if tr.t > maxPrefixTime {
				maxPrefixTime = tr.t
			}
		}
		if last.t == maxPrefixTime {
			suffix = append([]rawTriple{last}, suffix...)
		}

		g := buildFrom(t, prefix)
		batches := 1 + r.Intn(3)
		per := (len(suffix) + batches - 1) / batches
		for i := 0; i < len(suffix); i += per {
			j := i + per
			if j > len(suffix) {
				j = len(suffix)
			}
			var raw []tgraph.RawEdge
			for _, tr := range suffix[i:j] {
				raw = append(raw, tgraph.RawEdge{U: tr.u, V: tr.v, Time: tr.t})
			}
			if _, err := g.Append(raw); err != nil {
				t.Fatalf("seed %d: Append: %v", seed, err)
			}
		}

		want := buildFrom(t, triples)
		if got, exp := canonicalForm(t, g), canonicalForm(t, want); got != exp {
			t.Fatalf("seed %d: appended graph differs from scratch build\n--- append ---\n%s--- build ---\n%s", seed, got, exp)
		}
	}
}

func TestAppendBasics(t *testing.T) {
	g := buildFrom(t, []rawTriple{{1, 2, 10}, {2, 3, 11}})

	// Out-of-order append is rejected and leaves the graph untouched.
	if _, err := g.Append([]tgraph.RawEdge{{U: 4, V: 5, Time: 9}}); err == nil {
		t.Fatal("Append before current maximum succeeded")
	}
	if g.NumEdges() != 2 || g.NumVertices() != 3 {
		t.Fatalf("failed append mutated the graph: %d edges %d vertices", g.NumEdges(), g.NumVertices())
	}

	// Equal-time append, duplicate and self loop handling.
	st, err := g.Append([]tgraph.RawEdge{
		{U: 3, V: 2, Time: 11}, // exact duplicate of (2,3,11)
		{U: 1, V: 3, Time: 11}, // new pair at the frontier time
		{U: 4, V: 4, Time: 12}, // self loop
		{U: 4, V: 1, Time: 12}, // new vertex
		{U: 4, V: 1, Time: 12}, // in-batch duplicate
	})
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	if st.Added != 2 || st.Duplicates != 2 || st.SelfLoops != 1 || st.NewVertices != 1 || st.NewPairs != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if st.FirstNewRank != 2 {
		t.Fatalf("FirstNewRank = %d, want 2 (rank of time 11)", st.FirstNewRank)
	}
	want := buildFrom(t, []rawTriple{{1, 2, 10}, {2, 3, 11}, {1, 3, 11}, {1, 4, 12}})
	if got, exp := canonicalForm(t, g), canonicalForm(t, want); got != exp {
		t.Fatalf("appended graph differs:\n--- append ---\n%s--- build ---\n%s", got, exp)
	}

	// Empty and all-duplicate batches do not bump MutSeq.
	seq := g.MutSeq()
	if _, err := g.Append(nil); err != nil {
		t.Fatal(err)
	}
	if st, err := g.Append([]tgraph.RawEdge{{U: 1, V: 4, Time: 12}}); err != nil || st.Added != 0 || st.Duplicates != 1 {
		t.Fatalf("duplicate re-append: st=%+v err=%v", st, err)
	}
	if g.MutSeq() != seq {
		t.Fatalf("MutSeq moved on no-op appends: %d -> %d", seq, g.MutSeq())
	}
}

// TestAppendOneByOneAmortised streams thousands of single-edge batches and
// checks both correctness (identical to a from-scratch build) and the
// amortisation accounting: segment relocations must be logarithmic per
// vertex, not linear in the number of appends, and compactions rare.
func TestAppendOneByOneAmortised(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	const n, base, stream = 120, 400, 4000
	var triples []rawTriple
	time := int64(0)
	for len(triples) < base {
		u, v := int64(r.Intn(n)), int64(r.Intn(n))
		if u == v {
			continue
		}
		if r.Intn(3) == 0 {
			time++
		}
		triples = append(triples, rawTriple{u, v, time})
	}
	g := buildFrom(t, triples)

	var reloc, compact int
	for i := 0; i < stream; i++ {
		if r.Intn(3) == 0 {
			time++
		}
		u, v := int64(r.Intn(n)), int64(r.Intn(n))
		if u == v {
			v = (v + 1) % n
		}
		st, err := g.Append([]tgraph.RawEdge{{U: u, V: v, Time: time}})
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		reloc += st.Relocations
		compact += st.Compactions
		if st.Added == 1 {
			triples = append(triples, rawTriple{u, v, time})
		}
	}

	want := buildFrom(t, triples)
	if got, exp := canonicalForm(t, g), canonicalForm(t, want); got != exp {
		t.Fatalf("streamed graph differs from scratch build\n--- append ---\n%s--- build ---\n%s", got, exp)
	}

	// Each of the ~n vertices/pairs relocates O(log degree) times; with
	// 2x growth and 1.25x compaction slack the total must stay well below
	// one relocation per appended edge.
	if reloc > stream {
		t.Errorf("relocations = %d for %d single-edge appends; amortisation failed", reloc, stream)
	}
	if compact > 40 {
		t.Errorf("compactions = %d for %d single-edge appends; compaction threshold broken", compact, stream)
	}
}
