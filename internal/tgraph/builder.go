package tgraph

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// RawEdge is an input edge with arbitrary integer vertex labels and a raw
// timestamp.
type RawEdge struct {
	U, V int64
	Time int64
}

// BuildStats summarises what the builder did with its input.
type BuildStats struct {
	InputEdges      int // edges passed to Add
	SelfLoops       int // dropped self loops
	ExactDuplicates int // dropped exact (u,v,t) duplicates
}

// Builder accumulates raw edges and produces an immutable Graph.
// The zero value is ready to use.
type Builder struct {
	raw   []RawEdge
	stats BuildStats

	// KeepSelfLoops makes Build return an error on self loops instead of
	// silently dropping them.
	ErrorOnSelfLoops bool
	// KeepDuplicates keeps exact (u,v,t) duplicate edges as distinct
	// temporal edges. The default drops them, matching the paper's edge-set
	// semantics where E is a set.
	KeepDuplicates bool
}

// ErrEmptyGraph is returned by Build when no usable edge was added.
var ErrEmptyGraph = errors.New("tgraph: graph has no edges")

// Add records one raw edge.
func (b *Builder) Add(u, v, t int64) {
	b.raw = append(b.raw, RawEdge{U: u, V: v, Time: t})
}

// AddEdge records one raw edge struct.
func (b *Builder) AddEdge(e RawEdge) { b.raw = append(b.raw, e) }

// Stats returns the statistics of the last Build call.
func (b *Builder) Stats() BuildStats { return b.stats }

// Build constructs the Graph. The builder can be reused afterwards.
func (b *Builder) Build() (*Graph, error) {
	b.stats = BuildStats{InputEdges: len(b.raw)}

	// Drop self loops (or reject them).
	in := make([]RawEdge, 0, len(b.raw))
	for _, e := range b.raw {
		if e.U == e.V {
			if b.ErrorOnSelfLoops {
				return nil, fmt.Errorf("tgraph: self loop on vertex %d at time %d", e.U, e.Time)
			}
			b.stats.SelfLoops++
			continue
		}
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		in = append(in, e)
	}
	if len(in) == 0 {
		return nil, ErrEmptyGraph
	}

	// Dense vertex ids in order of first appearance (deterministic).
	labelOf := make(map[int64]VID, len(in))
	labels := make([]int64, 0, 64)
	vid := func(l int64) VID {
		if v, ok := labelOf[l]; ok {
			return v
		}
		v := VID(len(labels))
		labelOf[l] = v
		labels = append(labels, l)
		return v
	}

	// Compress timestamps to dense ranks 1..tmax.
	rawTimes := make([]int64, len(in))
	for i, e := range in {
		rawTimes[i] = e.Time
	}
	sort.Slice(rawTimes, func(i, j int) bool { return rawTimes[i] < rawTimes[j] })
	rawTimes = dedupInt64(rawTimes)
	rank := func(t int64) TS {
		i := sort.Search(len(rawTimes), func(i int) bool { return rawTimes[i] >= t })
		return TS(i + 1)
	}

	type work struct {
		u, v VID
		t    TS
	}
	ws := make([]work, 0, len(in))
	for _, e := range in {
		u, v := vid(e.U), vid(e.V)
		if u > v {
			// Dense ids may invert the label order; canonicalise on ids so
			// pair grouping below is consistent.
			u, v = v, u
		}
		ws = append(ws, work{u: u, v: v, t: rank(e.Time)})
	}

	// Sort by (u, v, t) to group pairs and detect duplicates.
	sort.Slice(ws, func(i, j int) bool {
		a, b := ws[i], ws[j]
		if a.u != b.u {
			return a.u < b.u
		}
		if a.v != b.v {
			return a.v < b.v
		}
		return a.t < b.t
	})
	if !b.KeepDuplicates {
		out := ws[:0]
		for i, w := range ws {
			if i > 0 && w == ws[i-1] {
				b.stats.ExactDuplicates++
				continue
			}
			out = append(out, w)
		}
		ws = out
	}

	g := &Graph{
		n:        int32(len(labels)),
		rawTimes: rawTimes,
		labels:   labels,
		labelOf:  labelOf,
		labelMu:  new(sync.RWMutex),
	}

	// Pairs and per-pair times (strictly ascending; duplicates collapse).
	g.pairs = make([]Pair, 0, len(ws)/2+1)
	g.pairTimes = make([]TS, 0, len(ws))
	pairIdxOf := make([]int32, len(ws)) // by position in ws
	for i := 0; i < len(ws); {
		j := i
		for j < len(ws) && ws[j].u == ws[i].u && ws[j].v == ws[i].v {
			j++
		}
		p := Pair{U: ws[i].u, V: ws[i].v, Off: int32(len(g.pairTimes))}
		prev := TS(-1)
		for k := i; k < j; k++ {
			pairIdxOf[k] = int32(len(g.pairs))
			if ws[k].t != prev {
				g.pairTimes = append(g.pairTimes, ws[k].t)
				prev = ws[k].t
			}
		}
		p.Len = int32(len(g.pairTimes)) - p.Off
		g.pairs = append(g.pairs, p)
		i = j
	}

	// Edge array sorted by (t, u, v); remember pair of each edge.
	type tedge struct {
		e    TemporalEdge
		pair int32
	}
	tes := make([]tedge, len(ws))
	for i, w := range ws {
		tes[i] = tedge{e: TemporalEdge{U: w.u, V: w.v, T: w.t}, pair: pairIdxOf[i]}
	}
	sort.Slice(tes, func(i, j int) bool {
		a, b := tes[i].e, tes[j].e
		if a.T != b.T {
			return a.T < b.T
		}
		if a.U != b.U {
			return a.U < b.U
		}
		return a.V < b.V
	})
	g.edges = make([]TemporalEdge, len(tes))
	g.edgePair = make([]int32, len(tes))
	for i, te := range tes {
		g.edges[i] = te.e
		g.edgePair[i] = te.pair
	}

	// Time groups.
	tmax := int(g.TMax())
	g.timeOff = make([]int32, tmax+2)
	for _, e := range g.edges {
		g.timeOff[e.T+1]++
	}
	for t := 1; t <= tmax; t++ {
		g.timeOff[t+1] += g.timeOff[t]
	}

	// Distinct-neighbour lists. Build packs every CSR segment exactly: used
	// length == capacity, segments in vertex order, no gaps. Overflowing
	// Appends open geometric gaps later (see append.go).
	n := int(g.n)
	bnd := make([]int32, n+1)
	for _, p := range g.pairs {
		bnd[p.U+1]++
		bnd[p.V+1]++
	}
	for u := 0; u < n; u++ {
		bnd[u+1] += bnd[u]
	}
	g.nbrs = make([]Nbr, bnd[n])
	g.nbrSeg = make([]uint64, n)
	g.nbrCap = make([]int32, n)
	cur := make([]int32, n)
	copy(cur, bnd[:n])
	for u := 0; u < n; u++ {
		g.nbrSeg[u] = packSeg(bnd[u], bnd[u+1])
		g.nbrCap[u] = bnd[u+1] - bnd[u]
	}
	for pi, p := range g.pairs {
		g.nbrs[cur[p.U]] = Nbr{V: p.V, Pair: int32(pi)}
		cur[p.U]++
		g.nbrs[cur[p.V]] = Nbr{V: p.U, Pair: int32(pi)}
		cur[p.V]++
	}

	// Incidence lists, ascending by time because edge ids are time sorted.
	for u := range bnd {
		bnd[u] = 0
	}
	for _, e := range g.edges {
		bnd[e.U+1]++
		bnd[e.V+1]++
	}
	for u := 0; u < n; u++ {
		bnd[u+1] += bnd[u]
	}
	g.incEIDs = make([]EID, bnd[n])
	g.incSeg = make([]uint64, n)
	g.incCap = make([]int32, n)
	copy(cur, bnd[:n])
	for u := 0; u < n; u++ {
		g.incSeg[u] = packSeg(bnd[u], bnd[u+1])
		g.incCap[u] = bnd[u+1] - bnd[u]
	}
	for i, e := range g.edges {
		g.incEIDs[cur[e.U]] = EID(i)
		cur[e.U]++
		g.incEIDs[cur[e.V]] = EID(i)
		cur[e.V]++
	}

	g.pairCap = make([]int32, len(g.pairs))
	for pi := range g.pairs {
		g.pairCap[pi] = g.pairs[pi].Len
	}

	return g, nil
}

// FromRawEdges is a convenience wrapper building a graph from a slice of raw
// edges with default options.
func FromRawEdges(edges []RawEdge) (*Graph, error) {
	var b Builder
	for _, e := range edges {
		b.AddEdge(e)
	}
	return b.Build()
}

// MustFromTriples builds a graph from (u, v, t) triples and panics on error.
// It is intended for tests and examples.
func MustFromTriples(triples ...[3]int64) *Graph {
	var b Builder
	for _, tr := range triples {
		b.Add(tr[0], tr[1], tr[2])
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func dedupInt64(s []int64) []int64 {
	out := s[:0]
	for i, v := range s {
		if i > 0 && v == s[i-1] {
			continue
		}
		out = append(out, v)
	}
	return out
}
