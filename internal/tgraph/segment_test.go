package tgraph

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

// segGraph builds a graph with a builder prefix plus several append
// batches, so the snapshot covers both construction paths (exact-packed
// builder segments and gap-relocated append segments).
func segGraph(t *testing.T, seed int64, batches int) *Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var b Builder
	tm := int64(0)
	for i := 0; i < 200; i++ {
		if rng.Intn(3) == 0 {
			tm++
		}
		b.Add(rng.Int63n(40), rng.Int63n(40), tm)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	for bi := 0; bi < batches; bi++ {
		batch := make([]RawEdge, 0, 30)
		for i := 0; i < 30; i++ {
			if rng.Intn(3) == 0 {
				tm++
			}
			batch = append(batch, RawEdge{U: rng.Int63n(50), V: rng.Int63n(50), Time: tm})
		}
		if _, err := g.Append(batch); err != nil {
			t.Fatalf("append batch %d: %v", bi, err)
		}
	}
	return g
}

// requireSameGraph asserts that two graphs are operationally identical:
// same ids, same history, same adjacency content, same mutation sequence.
func requireSameGraph(t *testing.T, want, got *Graph) {
	t.Helper()
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() ||
		got.NumPairs() != want.NumPairs() || got.TMax() != want.TMax() || got.MutSeq() != want.MutSeq() {
		t.Fatalf("shape mismatch: got (%d v, %d e, %d p, %d t, seq %d), want (%d, %d, %d, %d, %d)",
			got.NumVertices(), got.NumEdges(), got.NumPairs(), got.TMax(), got.MutSeq(),
			want.NumVertices(), want.NumEdges(), want.NumPairs(), want.TMax(), want.MutSeq())
	}
	for e := 0; e < want.NumEdges(); e++ {
		if want.Edge(EID(e)) != got.Edge(EID(e)) || want.EdgePair(EID(e)) != got.EdgePair(EID(e)) {
			t.Fatalf("edge %d mismatch", e)
		}
	}
	for tr := TS(1); tr <= want.TMax(); tr++ {
		if want.RawTime(tr) != got.RawTime(tr) {
			t.Fatalf("raw time of rank %d mismatch", tr)
		}
		wl, wh := want.EdgesAt(tr)
		gl, gh := got.EdgesAt(tr)
		if wl != gl || wh != gh {
			t.Fatalf("time group %d mismatch", tr)
		}
	}
	for u := VID(0); u < VID(want.NumVertices()); u++ {
		if want.Label(u) != got.Label(u) {
			t.Fatalf("label of %d mismatch", u)
		}
		wn, gn := want.Neighbours(u), got.Neighbours(u)
		if len(wn) != len(gn) {
			t.Fatalf("neighbour count of %d mismatch", u)
		}
		for i := range wn {
			if wn[i] != gn[i] {
				t.Fatalf("neighbour %d of %d mismatch", i, u)
			}
		}
		wi, gi := want.Incident(u), got.Incident(u)
		if len(wi) != len(gi) {
			t.Fatalf("incidence count of %d mismatch", u)
		}
		for i := range wi {
			if wi[i] != gi[i] {
				t.Fatalf("incident edge %d of %d mismatch", i, u)
			}
		}
	}
	for p := int32(0); p < int32(want.NumPairs()); p++ {
		wp, gp := want.Pair(p), got.Pair(p)
		if wp.U != gp.U || wp.V != gp.V || wp.Len != gp.Len {
			t.Fatalf("pair %d mismatch", p)
		}
		wt, gt := want.PairTimes(p), got.PairTimes(p)
		for i := range wt {
			if wt[i] != gt[i] {
				t.Fatalf("pair %d times mismatch", p)
			}
		}
	}
}

func TestSegmentRoundTrip(t *testing.T) {
	for _, batches := range []int{0, 1, 7} {
		g := segGraph(t, int64(42+batches), batches)
		var buf bytes.Buffer
		if err := g.WriteSegments(&buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, err := ReadSegments(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		requireSameGraph(t, g, got)

		// The loaded graph is live: appending to both must stay identical.
		last := g.RawTime(g.TMax())
		batch := []RawEdge{{U: 1, V: 2, Time: last + 1}, {U: 2, V: 3, Time: last + 2}, {U: 1, V: 99, Time: last + 2}}
		if _, err := g.Append(batch); err != nil {
			t.Fatalf("append original: %v", err)
		}
		if _, err := got.Append(batch); err != nil {
			t.Fatalf("append loaded: %v", err)
		}
		requireSameGraph(t, g, got)
	}
}

func TestSegmentRoundTripFrozen(t *testing.T) {
	g := segGraph(t, 7, 3)
	fz := g.Freeze()
	last := g.RawTime(g.TMax())
	if _, err := g.Append([]RawEdge{{U: 5, V: 6, Time: last + 1}}); err != nil {
		t.Fatalf("append: %v", err)
	}
	// Serialising the frozen image while the live graph moved on must
	// still capture the frozen state.
	var buf bytes.Buffer
	if err := fz.WriteSegments(&buf); err != nil {
		t.Fatalf("write frozen: %v", err)
	}
	got, err := ReadSegments(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	requireSameGraph(t, fz, got)
	if got.Frozen() {
		t.Fatalf("loaded graph must be live, not frozen")
	}
}

// segLayout computes the byte offset of every section of g's TKSG1 image,
// mirroring the write order, so corruption tests can patch exact fields.
type segLayout struct {
	hdr, rawTimes, labels, flatE, edgePair, timeOff        int
	flatP, pairTimes, nbrCnt, flatN, incCnt, incEIDs, tail int
}

func layoutOf(g *Graph) segLayout {
	n, nEdges, nPairs := int(g.n), len(g.edges), len(g.pairs)
	tmax := len(g.rawTimes)
	var ptTotal, nbrTotal, incTotal int
	for pi := range g.pairs {
		ptTotal += int(g.pairs[pi].Len)
	}
	for u := 0; u < n; u++ {
		no, ne := unpackSeg(g.nbrSeg[u])
		io_, ie := unpackSeg(g.incSeg[u])
		nbrTotal += int(ne - no)
		incTotal += int(ie - io_)
	}
	var l segLayout
	l.hdr = len(segmentMagic)
	l.rawTimes = l.hdr + 8*8
	l.labels = l.rawTimes + 8*tmax
	l.flatE = l.labels + 8*n
	l.edgePair = l.flatE + 4*3*nEdges
	l.timeOff = l.edgePair + 4*nEdges
	l.flatP = l.timeOff + 4*(tmax+2)
	l.pairTimes = l.flatP + 4*3*nPairs
	l.nbrCnt = l.pairTimes + 4*ptTotal
	l.flatN = l.nbrCnt + 4*n
	l.incCnt = l.flatN + 4*2*nbrTotal
	l.incEIDs = l.incCnt + 4*n
	l.tail = l.incEIDs + 4*incTotal
	return l
}

// TestSegmentStructuralValidation patches one specific field per case and
// asserts ReadSegments reports that exact structural complaint — every
// validation branch, not just "some error".
func TestSegmentStructuralValidation(t *testing.T) {
	g := segGraph(t, 13, 3)
	var buf bytes.Buffer
	if err := g.WriteSegments(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	raw := buf.Bytes()
	l := layoutOf(g)
	if l.tail+4 != len(raw) {
		t.Fatalf("layout computes size %d, stream is %d bytes", l.tail+4, len(raw))
	}
	le := binary.LittleEndian
	n, nEdges, nPairs := int64(g.n), int64(len(g.edges)), int64(len(g.pairs))

	put64 := func(raw []byte, off int, v int64) { le.PutUint64(raw[off:], uint64(v)) }
	put32 := func(raw []byte, off int, v int32) { le.PutUint32(raw[off:], uint32(v)) }
	// firstPositive finds the first index of an int32 array section holding
	// a value > 0.
	firstPositive := func(raw []byte, off, count int) int {
		for i := 0; i < count; i++ {
			if int32(le.Uint32(raw[off+4*i:])) > 0 {
				return i
			}
		}
		t.Fatalf("no positive count in section at %d", off)
		return -1
	}

	cases := []struct {
		name  string
		patch func(raw []byte)
		want  string
	}{
		{"negative-mutseq", func(r []byte) { put64(r, l.hdr, -2) }, "negative mutation sequence"},
		{"implausible-count", func(r []byte) { put64(r, l.hdr+8, 1<<40) }, "implausible header count"},
		{"inconsistent-header", func(r []byte) { put64(r, l.hdr+4*8, 0) }, "inconsistent with"},
		{"rank-table-not-ascending", func(r []byte) { put64(r, l.rawTimes+8, int64(le.Uint64(r[l.rawTimes:]))) }, "not strictly ascending at rank"},
		{"duplicate-label", func(r []byte) { copy(r[l.labels+8:l.labels+16], r[l.labels:l.labels+8]) }, "duplicate vertex label"},
		{"edge-out-of-range", func(r []byte) { put32(r, l.flatE, int32(n)) }, "out of range"},
		{"edge-pair-out-of-range", func(r []byte) { put32(r, l.edgePair, int32(nPairs)) }, "pair " + itoa(nPairs) + " out of range"},
		{"timeoff-bounds", func(r []byte) { put32(r, l.timeOff, 1) }, "corrupt time offset bounds"},
		{"timeoff-not-monotone", func(r []byte) { put32(r, l.timeOff+8, -1) }, "not monotone"},
		{"pair-out-of-range", func(r []byte) { put32(r, l.flatP, int32(n)) }, "pair 0 ("},
		{"pair-len-sum", func(r []byte) { put32(r, l.flatP+8, int32(le.Uint32(r[l.flatP+8:]))+1) }, "pair lengths sum"},
		{"pair-times-out-of-range", func(r []byte) { put32(r, l.pairTimes, 0) }, "times not strictly ascending in range"},
		{"nbr-count-overflow", func(r []byte) { put32(r, l.nbrCnt, int32((l.incCnt-l.flatN)/8)+1) }, "neighbour counts overflow"},
		{"nbr-entry-out-of-range", func(r []byte) { put32(r, l.flatN, int32(n)) }, "neighbour entry of vertex"},
		{"nbr-count-sum", func(r []byte) {
			i := firstPositive(r, l.nbrCnt, int(n))
			put32(r, l.nbrCnt+4*i, int32(le.Uint32(r[l.nbrCnt+4*i:]))-1)
		}, "neighbour counts sum"},
		{"inc-count-overflow", func(r []byte) { put32(r, l.incCnt, int32((l.tail-l.incEIDs)/4)+1) }, "incidence counts overflow"},
		{"inc-entry-out-of-range", func(r []byte) { put32(r, l.incEIDs, int32(nEdges)) }, "incident edge of vertex"},
		{"inc-count-sum", func(r []byte) {
			i := firstPositive(r, l.incCnt, int(n))
			put32(r, l.incCnt+4*i, int32(le.Uint32(r[l.incCnt+4*i:]))-1)
		}, "incidence counts sum"},
		// A value change that passes every structural check must still be
		// caught by the trailing CRC: push the last raw timestamp far above
		// its predecessor (still strictly ascending).
		{"checksum-only", func(r []byte) {
			off := l.labels - 8
			put64(r, off, int64(le.Uint64(r[off:]))+(1<<40))
		}, "checksum mismatch"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mut := append([]byte(nil), raw...)
			tc.patch(mut)
			_, err := ReadSegments(bytes.NewReader(mut))
			if err == nil {
				t.Fatalf("corruption not detected")
			}
			if !bytes.Contains([]byte(err.Error()), []byte(tc.want)) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// One byte into every section: each read loop must surface a clean
	// error, never a panic or a zero graph.
	t.Run("truncated-each-section", func(t *testing.T) {
		for _, off := range []int{l.hdr, l.rawTimes, l.labels, l.flatE, l.edgePair,
			l.timeOff, l.flatP, l.pairTimes, l.nbrCnt, l.flatN, l.incCnt, l.incEIDs, l.tail} {
			if _, err := ReadSegments(bytes.NewReader(raw[:off+1])); err == nil {
				t.Fatalf("truncation inside section at %d not detected", off)
			}
		}
	})
}

func itoa(v int64) string { return fmt.Sprintf("%d", v) }

// failAfterWriter errors once more than limit bytes have been written —
// the disk-full / dying-device model for WriteSegments' error paths.
type failAfterWriter struct {
	limit int
	n     int
}

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n+len(p) > w.limit {
		return 0, errShortDisk
	}
	w.n += len(p)
	return len(p), nil
}

var errShortDisk = errors.New("short disk")

// TestSegmentWriteErrors drives WriteSegments against a writer that fails
// at a sweep of byte limits over a snapshot large enough that every big
// section spans a bufio flush boundary: each failure must surface as an
// error, never a silent short snapshot.
func TestSegmentWriteErrors(t *testing.T) {
	var b Builder
	for i := 0; i < 30000; i++ {
		b.Add(int64(i%180), int64((i+1+i%90)%180), int64(i/2+1))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	var buf bytes.Buffer
	if err := g.WriteSegments(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	size := buf.Len()
	step := size/41 + 1
	for limit := 0; limit < size; limit += step {
		if err := g.WriteSegments(&failAfterWriter{limit: limit}); err == nil {
			t.Fatalf("write into %d-byte device succeeded (need %d)", limit, size)
		}
	}
	if err := g.WriteSegments(&failAfterWriter{limit: size}); err != nil {
		t.Fatalf("write into exact-size device: %v", err)
	}
}

func TestSegmentCorruption(t *testing.T) {
	g := segGraph(t, 11, 2)
	var buf bytes.Buffer
	if err := g.WriteSegments(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	raw := buf.Bytes()

	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{3, 10, len(raw) / 2, len(raw) - 1} {
			if _, err := ReadSegments(bytes.NewReader(raw[:cut])); err == nil {
				t.Fatalf("truncation at %d not detected", cut)
			}
		}
	})
	t.Run("bitflip", func(t *testing.T) {
		for _, pos := range []int{8, 80, len(raw) / 2, len(raw) - 2} {
			mut := append([]byte(nil), raw...)
			mut[pos] ^= 0x40
			if _, err := ReadSegments(bytes.NewReader(mut)); err == nil {
				t.Fatalf("bit flip at %d not detected", pos)
			}
		}
	})
	t.Run("trailing-garbage", func(t *testing.T) {
		mut := append(append([]byte(nil), raw...), 0xAA)
		if _, err := ReadSegments(bytes.NewReader(mut)); err == nil {
			t.Fatalf("trailing garbage not detected")
		}
	})
	t.Run("wrong-magic", func(t *testing.T) {
		mut := append([]byte(nil), raw...)
		copy(mut, "TKCG1\n")
		if _, err := ReadSegments(bytes.NewReader(mut)); err == nil {
			t.Fatalf("wrong magic not detected")
		}
	})
}
