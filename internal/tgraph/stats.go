package tgraph

import "fmt"

// Stats summarises a graph in the shape of the paper's Table III (kmax is
// computed by package kcore and filled in by callers that need it).
type Stats struct {
	NumVertices int
	NumEdges    int
	NumPairs    int
	TMax        int
	MaxDegree   int
	AvgDegree   float64 // average number of distinct neighbours
}

// ComputeStats derives summary statistics of g.
func (g *Graph) ComputeStats() Stats {
	s := Stats{
		NumVertices: g.NumVertices(),
		NumEdges:    g.NumEdges(),
		NumPairs:    g.NumPairs(),
		TMax:        int(g.TMax()),
	}
	total := 0
	for u := VID(0); u < VID(g.n); u++ {
		d := g.Degree(u)
		total += d
		if d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	if s.NumVertices > 0 {
		s.AvgDegree = float64(total) / float64(s.NumVertices)
	}
	return s
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("|V|=%d |E|=%d pairs=%d tmax=%d degmax=%d degavg=%.2f",
		s.NumVertices, s.NumEdges, s.NumPairs, s.TMax, s.MaxDegree, s.AvgDegree)
}

// DegreeInWindow returns the number of distinct neighbours of u in the
// snapshot over w. It is O(deg(u) · log) and intended for diagnostics and
// oracles rather than inner loops.
func (g *Graph) DegreeInWindow(u VID, w Window) int {
	d := 0
	for _, nb := range g.Neighbours(u) {
		t := g.FirstPairTimeAtOrAfter(nb.Pair, w.Start)
		if t != InfTime && t <= w.End {
			d++
		}
	}
	return d
}
