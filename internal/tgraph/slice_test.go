package tgraph_test

import (
	"testing"

	"temporalkcore/internal/tgraph"
)

func TestSliceWindow(t *testing.T) {
	g := paperGraph()
	sub, err := g.SliceWindow(tgraph.Window{Start: 3, End: 5})
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumEdges() != 8 {
		t.Errorf("slice has %d edges, want 8", sub.NumEdges())
	}
	if sub.TMax() != 3 { // times 3,4,5 recompress to ranks 1..3
		t.Errorf("slice tmax = %d, want 3", sub.TMax())
	}
	if sub.RawTime(1) != 3 || sub.RawTime(3) != 5 {
		t.Errorf("raw times not preserved: %d..%d", sub.RawTime(1), sub.RawTime(3))
	}
	// Labels preserved: vertex 8 exists (edge (4,8,4)).
	if _, ok := sub.VertexOf(8); !ok {
		t.Error("label 8 missing from slice")
	}
	// Vertices with no edge in the window are absent.
	if _, ok := sub.VertexOf(5); ok {
		t.Error("label 5 should not be in slice [3,5]")
	}
}

func TestSliceRaw(t *testing.T) {
	g := paperGraph()
	sub, err := g.SliceRaw(6, 7)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumEdges() != 3 {
		t.Errorf("slice [6,7] has %d edges, want 3", sub.NumEdges())
	}
	if _, err := g.SliceRaw(100, 200); err == nil {
		t.Error("empty raw slice accepted")
	}
}

func TestSliceKeepsParallelEdges(t *testing.T) {
	b := tgraph.Builder{KeepDuplicates: true}
	b.Add(1, 2, 5)
	b.Add(1, 2, 5)
	b.Add(1, 2, 6)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	sub, err := g.SliceRaw(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumEdges() != 2 {
		t.Errorf("slice lost parallel edges: %d, want 2", sub.NumEdges())
	}
}
