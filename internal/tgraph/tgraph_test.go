package tgraph_test

import (
	"bytes"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"temporalkcore/internal/tgraph"
)

func paperGraph() *tgraph.Graph {
	return tgraph.MustFromTriples(
		[3]int64{2, 9, 1}, [3]int64{1, 4, 2}, [3]int64{2, 3, 2},
		[3]int64{1, 2, 3}, [3]int64{2, 4, 3}, [3]int64{3, 9, 4},
		[3]int64{4, 8, 4}, [3]int64{1, 6, 5}, [3]int64{1, 7, 5},
		[3]int64{2, 8, 5}, [3]int64{6, 7, 5}, [3]int64{1, 3, 6},
		[3]int64{3, 5, 6}, [3]int64{1, 5, 7},
	)
}

func TestBasicCounts(t *testing.T) {
	g := paperGraph()
	if g.NumVertices() != 9 {
		t.Errorf("vertices = %d, want 9", g.NumVertices())
	}
	if g.NumEdges() != 14 {
		t.Errorf("edges = %d, want 14", g.NumEdges())
	}
	if g.TMax() != 7 {
		t.Errorf("tmax = %d, want 7", g.TMax())
	}
	if g.NumPairs() != 14 {
		t.Errorf("pairs = %d, want 14 (all pairs unique in the example)", g.NumPairs())
	}
}

func TestEdgesSortedByTime(t *testing.T) {
	g := paperGraph()
	prev := tgraph.TS(0)
	for _, e := range g.Edges() {
		if e.T < prev {
			t.Fatalf("edges not time sorted: %d after %d", e.T, prev)
		}
		if e.U >= e.V {
			t.Fatalf("edge not canonical: %v", e)
		}
		prev = e.T
	}
}

func TestTimeGroups(t *testing.T) {
	g := paperGraph()
	total := 0
	for ts := tgraph.TS(1); ts <= g.TMax(); ts++ {
		lo, hi := g.EdgesAt(ts)
		for e := lo; e < hi; e++ {
			if g.Edge(e).T != ts {
				t.Fatalf("EdgesAt(%d) returned edge at %d", ts, g.Edge(e).T)
			}
			total++
		}
	}
	if total != g.NumEdges() {
		t.Errorf("time groups cover %d edges, want %d", total, g.NumEdges())
	}
	if lo, hi := g.EdgesAt(0); lo != hi {
		t.Error("EdgesAt(0) should be empty")
	}
	if lo, hi := g.EdgesAt(99); lo != hi {
		t.Error("EdgesAt(99) should be empty")
	}
}

func TestEdgesInWindow(t *testing.T) {
	g := paperGraph()
	lo, hi := g.EdgesIn(tgraph.Window{Start: 3, End: 5})
	count := 0
	for e := lo; e < hi; e++ {
		et := g.Edge(e).T
		if et < 3 || et > 5 {
			t.Fatalf("edge at %d outside [3,5]", et)
		}
		count++
	}
	if count != 8 {
		t.Errorf("window [3,5] has %d edges, want 8", count)
	}
	if lo, hi := g.EdgesIn(tgraph.Window{Start: 5, End: 3}); lo != hi {
		t.Error("inverted window should be empty")
	}
}

func TestPairTimesAscending(t *testing.T) {
	g := paperGraph()
	for p := 0; p < g.NumPairs(); p++ {
		times := g.PairTimes(int32(p))
		if len(times) == 0 {
			t.Fatalf("pair %d has no times", p)
		}
		for i := 1; i < len(times); i++ {
			if times[i] <= times[i-1] {
				t.Fatalf("pair %d times not strictly ascending: %v", p, times)
			}
		}
	}
}

func TestNeighbourSymmetry(t *testing.T) {
	g := paperGraph()
	for u := tgraph.VID(0); u < tgraph.VID(g.NumVertices()); u++ {
		for _, nb := range g.Neighbours(u) {
			back := false
			for _, nb2 := range g.Neighbours(nb.V) {
				if nb2.V == u && nb2.Pair == nb.Pair {
					back = true
				}
			}
			if !back {
				t.Fatalf("neighbour %d of %d has no back edge", nb.V, u)
			}
		}
	}
}

func TestIncidentSortedByTime(t *testing.T) {
	g := paperGraph()
	for u := tgraph.VID(0); u < tgraph.VID(g.NumVertices()); u++ {
		prev := tgraph.TS(0)
		for _, e := range g.Incident(u) {
			te := g.Edge(e)
			if te.U != u && te.V != u {
				t.Fatalf("edge %v not incident to %d", te, u)
			}
			if te.T < prev {
				t.Fatalf("incident edges of %d not time sorted", u)
			}
			prev = te.T
		}
	}
}

func TestSelfLoopsDropped(t *testing.T) {
	var b tgraph.Builder
	b.Add(1, 1, 5)
	b.Add(1, 2, 6)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("edges = %d, want 1 (self loop dropped)", g.NumEdges())
	}
	if b.Stats().SelfLoops != 1 {
		t.Errorf("SelfLoops = %d, want 1", b.Stats().SelfLoops)
	}
	b2 := tgraph.Builder{ErrorOnSelfLoops: true}
	b2.Add(1, 1, 5)
	if _, err := b2.Build(); err == nil {
		t.Error("ErrorOnSelfLoops did not fire")
	}
}

func TestDuplicateHandling(t *testing.T) {
	var b tgraph.Builder
	b.Add(1, 2, 5)
	b.Add(2, 1, 5) // same undirected edge, same time
	b.Add(1, 2, 6)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("edges = %d, want 2 (duplicate collapsed)", g.NumEdges())
	}
	if b.Stats().ExactDuplicates != 1 {
		t.Errorf("ExactDuplicates = %d, want 1", b.Stats().ExactDuplicates)
	}

	b2 := tgraph.Builder{KeepDuplicates: true}
	b2.Add(1, 2, 5)
	b2.Add(2, 1, 5)
	b2.Add(1, 2, 6)
	g2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 3 {
		t.Errorf("KeepDuplicates: edges = %d, want 3", g2.NumEdges())
	}
	if g2.NumPairs() != 1 {
		t.Errorf("KeepDuplicates: pairs = %d, want 1", g2.NumPairs())
	}
	// Pair times stay strictly ascending even with duplicates kept.
	times := g2.PairTimes(0)
	if len(times) != 2 {
		t.Errorf("pair times = %v, want 2 distinct", times)
	}
}

func TestEmptyGraph(t *testing.T) {
	var b tgraph.Builder
	if _, err := b.Build(); err == nil {
		t.Error("empty build should fail")
	}
	b.Add(3, 3, 1) // only a self loop
	if _, err := b.Build(); err == nil {
		t.Error("self-loop-only build should fail")
	}
}

func TestTimestampCompression(t *testing.T) {
	var b tgraph.Builder
	b.Add(1, 2, 1000)
	b.Add(2, 3, -50)
	b.Add(1, 3, 1000000)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.TMax() != 3 {
		t.Fatalf("tmax = %d, want 3", g.TMax())
	}
	if g.RawTime(1) != -50 || g.RawTime(2) != 1000 || g.RawTime(3) != 1000000 {
		t.Errorf("raw times: %d %d %d", g.RawTime(1), g.RawTime(2), g.RawTime(3))
	}
	if w, ok := g.CompressRange(-100, 2000); !ok || w != (tgraph.Window{Start: 1, End: 2}) {
		t.Errorf("CompressRange(-100,2000) = %v,%v", w, ok)
	}
	if _, ok := g.CompressRange(2000, 5000); ok {
		t.Error("range covering no timestamps should not compress")
	}
	if w, ok := g.CompressRange(1000, 1000); !ok || w != (tgraph.Window{Start: 2, End: 2}) {
		t.Errorf("point range = %v,%v", w, ok)
	}
}

func TestLabels(t *testing.T) {
	var b tgraph.Builder
	b.Add(100, 200, 1)
	b.Add(200, 300, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []int64{100, 200, 300} {
		v, ok := g.VertexOf(l)
		if !ok || g.Label(v) != l {
			t.Errorf("label %d does not round-trip", l)
		}
	}
	if _, ok := g.VertexOf(999); ok {
		t.Error("unknown label resolved")
	}
}

func TestLoadTextFormats(t *testing.T) {
	// 3-column with comments.
	in := "# comment\n% konect comment\n1 2 10\n2 3 11\n\n1 3 12\n"
	g, err := tgraph.LoadText(strings.NewReader(in), tgraph.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 || g.TMax() != 3 {
		t.Errorf("3col: edges=%d tmax=%d", g.NumEdges(), g.TMax())
	}
	// 4-column KONECT (weight ignored).
	in4 := "1 2 1 10\n2 3 1 11\n"
	g4, err := tgraph.LoadText(strings.NewReader(in4), tgraph.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g4.NumEdges() != 2 {
		t.Errorf("4col: edges=%d", g4.NumEdges())
	}
	// Float timestamps truncate.
	inF := "1 2 1 10.5\n2 3 1 11.2\n"
	gf, err := tgraph.LoadText(strings.NewReader(inF), tgraph.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if gf.TMax() != 2 {
		t.Errorf("float ts: tmax=%d", gf.TMax())
	}
	// Malformed input errors.
	for _, bad := range []string{"1\n", "a b c\n", "1 2 x\n", "1 2\n"} {
		if _, err := tgraph.LoadText(strings.NewReader(bad), tgraph.LoadOptions{}); err == nil {
			t.Errorf("malformed %q accepted", bad)
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	g := paperGraph()
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := tgraph.LoadText(&buf, tgraph.LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, g2) {
		t.Error("text round trip changed the graph")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	g := paperGraph()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := tgraph.LoadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !sameGraph(g, g2) {
		t.Error("binary round trip changed the graph")
	}
	// Corrupt magic.
	if _, err := tgraph.LoadBinary(strings.NewReader("BOGUS!")); err == nil {
		t.Error("bad magic accepted")
	}
}

func sameGraph(a, b *tgraph.Graph) bool {
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() || a.TMax() != b.TMax() {
		return false
	}
	ea := edgeTriples(a)
	eb := edgeTriples(b)
	return reflect.DeepEqual(ea, eb)
}

func edgeTriples(g *tgraph.Graph) [][3]int64 {
	out := make([][3]int64, 0, g.NumEdges())
	for _, e := range g.Edges() {
		u, v := g.Label(e.U), g.Label(e.V)
		if u > v {
			u, v = v, u
		}
		out = append(out, [3]int64{u, v, g.RawTime(e.T)})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < 3; k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// TestQuickRoundTrip is a property test: any random edge list round-trips
// through build + text serialisation.
func TestQuickRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var b tgraph.Builder
		n := 2 + r.Intn(12)
		m := 1 + r.Intn(60)
		for i := 0; i < m; i++ {
			u := r.Intn(n)
			v := r.Intn(n)
			if u == v {
				v = (v + 1) % n
			}
			b.Add(int64(u), int64(v), int64(r.Intn(20)-10))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := g.WriteText(&buf); err != nil {
			return false
		}
		g2, err := tgraph.LoadText(&buf, tgraph.LoadOptions{})
		if err != nil {
			return false
		}
		return sameGraph(g, g2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestQuickWindowContainment: Window.Contains is a partial order respected
// by EdgesIn.
func TestQuickWindowContainment(t *testing.T) {
	g := paperGraph()
	f := func(a, b, c, d uint8) bool {
		w1 := tgraph.Window{Start: tgraph.TS(a%7 + 1), End: tgraph.TS(b%7 + 1)}
		w2 := tgraph.Window{Start: tgraph.TS(c%7 + 1), End: tgraph.TS(d%7 + 1)}
		if !w1.Valid() || !w2.Valid() || !w1.Contains(w2) {
			return true
		}
		lo1, hi1 := g.EdgesIn(w1)
		lo2, hi2 := g.EdgesIn(w2)
		return lo1 <= lo2 && hi2 <= hi1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStats(t *testing.T) {
	g := paperGraph()
	s := g.ComputeStats()
	if s.NumVertices != 9 || s.NumEdges != 14 || s.TMax != 7 {
		t.Errorf("stats: %+v", s)
	}
	if s.MaxDegree != 6 { // v1 has 6 distinct neighbours
		t.Errorf("MaxDegree = %d, want 6", s.MaxDegree)
	}
	if s.AvgDegree <= 0 {
		t.Errorf("AvgDegree = %f", s.AvgDegree)
	}
	if !strings.Contains(s.String(), "|V|=9") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestDegreeInWindow(t *testing.T) {
	g := paperGraph()
	v1, _ := g.VertexOf(1)
	if d := g.DegreeInWindow(v1, tgraph.Window{Start: 5, End: 7}); d != 4 {
		t.Errorf("deg(v1, [5,7]) = %d, want 4 (v6,v7,v3,v5)", d)
	}
	if d := g.DegreeInWindow(v1, tgraph.Window{Start: 1, End: 1}); d != 0 {
		t.Errorf("deg(v1, [1,1]) = %d, want 0", d)
	}
}
