package tgraph

// SliceWindow builds a new independent Graph containing exactly the
// temporal edges of g inside the window w, preserving original labels and
// raw timestamps. It is useful for archiving or distributing the sub-graph
// a query range touches. Returns ErrEmptyGraph when the window holds no
// edges.
func (g *Graph) SliceWindow(w Window) (*Graph, error) {
	lo, hi := g.EdgesIn(w)
	var b Builder
	// The receiver graph already collapsed duplicates (or the caller chose
	// to keep them at build time); either way every edge is kept verbatim.
	b.KeepDuplicates = true
	for e := lo; e < hi; e++ {
		te := g.edges[e]
		b.Add(g.labels[te.U], g.labels[te.V], g.rawTimes[te.T-1])
	}
	return b.Build()
}

// SliceRaw is SliceWindow over a raw timestamp range.
func (g *Graph) SliceRaw(rawStart, rawEnd int64) (*Graph, error) {
	w, ok := g.CompressRange(rawStart, rawEnd)
	if !ok {
		return nil, ErrEmptyGraph
	}
	return g.SliceWindow(w)
}
