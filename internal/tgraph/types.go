// Package tgraph implements the temporal-graph substrate used by every
// algorithm in this repository: a compact CSR-style representation of an
// undirected temporal graph whose edges carry integer timestamps.
//
// Timestamps are compressed to dense ranks 1..TMax (the paper assumes "a
// continuous set of integers starting from 1"); the original raw timestamps
// are retained so the public API can speak in raw time. Vertices are mapped
// to dense int32 ids; original labels are retained likewise.
package tgraph

import "math"

// VID identifies a vertex with a dense id in [0, NumVertices).
type VID int32

// TS is a compressed timestamp rank in [1, TMax]. 0 is invalid.
type TS int32

// EID identifies a temporal edge: it is the index of the edge in the
// time-sorted edge array, so edge ids are themselves ordered by timestamp.
type EID int32

// InfTime is the "never" sentinel used for core times of vertices that are
// in no k-core of any window under consideration.
const InfTime TS = math.MaxInt32

// TemporalEdge is an undirected edge (U, V) observed at time T, with U < V.
type TemporalEdge struct {
	U, V VID
	T    TS
}

// Window is a closed time window [Start, End] in compressed timestamps.
type Window struct {
	Start, End TS
}

// Valid reports whether w is a non-empty window.
func (w Window) Valid() bool { return w.Start >= 1 && w.Start <= w.End }

// Contains reports whether o is fully contained in w.
func (w Window) Contains(o Window) bool { return w.Start <= o.Start && o.End <= w.End }

// ContainsTime reports whether t falls inside w.
func (w Window) ContainsTime(t TS) bool { return w.Start <= t && t <= w.End }

// Len is the number of timestamps covered by w (0 for invalid windows).
func (w Window) Len() int {
	if !w.Valid() {
		return 0
	}
	return int(w.End - w.Start + 1)
}

// Pair is a canonical vertex pair (U < V) together with the slice
// [Off, Off+Len) of the graph's pairTimes array holding the strictly
// ascending timestamps at which the pair interacts.
type Pair struct {
	U, V VID
	Off  int32
	Len  int32
}

// Nbr is one entry of a vertex's distinct-neighbour list: the neighbour id
// and the index of the canonical pair connecting them.
type Nbr struct {
	V    VID
	Pair int32
}
