package tgraph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
	"sync/atomic"
)

// Segment snapshot format (TKSG1): the durability tier's on-disk image of
// a graph. Unlike WriteBinary — which stores only the edge list and makes
// the loader re-run a full Build — a segment snapshot serialises the
// compiled CSR state itself as flat little-endian arrays, so loading is a
// single sequential pass with no sorting, no hashing and no fixed-point
// work, and the loaded graph is operationally identical to the one that
// was written: same dense vertex ids, same edge ids, same rank table,
// same mutation sequence number. That identity is what lets the store
// layer replay a WAL on top of a loaded snapshot and land on the exact
// epoch (MutSeq) the writer had published, and what lets persisted index
// fingerprints (internal/phc) validate against a recovered graph.
//
// Per-segment gap capacity is deliberately dropped at write time: gaps
// are spare Append headroom, never read, so the snapshot stores every
// pair-time/neighbour/incidence segment exactly packed (as a fresh Build
// would) and the loader reopens capacity lazily on the first overflowing
// Append. Queries cannot observe the difference.
//
// The stream ends with a CRC32 (IEEE) of everything after the magic; the
// loader verifies it after structural validation, so a torn or
// bit-flipped file is reported as an error instead of a wrong graph.

const segmentMagic = "TKSG1\n"

// crcWriter hashes everything it forwards.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p)
	return cw.w.Write(p)
}

// crcReader hashes everything it yields.
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, crc32.IEEETable, p[:n])
	return n, err
}

// WriteSegments writes the graph's full compiled state in the TKSG1
// segment snapshot format. The receiver may be a frozen snapshot (the
// intended use: serialise a Freeze() image while the live graph keeps
// appending) or a quiesced live graph.
func (g *Graph) WriteSegments(w io.Writer) error {
	cw := &crcWriter{w: w}
	if _, err := io.WriteString(w, segmentMagic); err != nil {
		return err
	}
	bw := bufio.NewWriterSize(cw, 1<<16)
	le := binary.LittleEndian

	// Exactly packed per-segment lengths.
	n := int(g.n)
	nbrCnt := make([]int32, n)
	incCnt := make([]int32, n)
	var nbrTotal, incTotal, ptTotal int64
	for u := 0; u < n; u++ {
		no, ne := unpackSeg(g.nbrSeg[u])
		io_, ie := unpackSeg(g.incSeg[u])
		nbrCnt[u] = ne - no
		incCnt[u] = ie - io_
		nbrTotal += int64(nbrCnt[u])
		incTotal += int64(incCnt[u])
	}
	for pi := range g.pairs {
		ptTotal += int64(g.pairs[pi].Len)
	}

	hdr := []int64{
		atomic.LoadInt64(&g.mutSeq),
		int64(n),
		int64(len(g.edges)),
		int64(len(g.pairs)),
		int64(len(g.rawTimes)),
		ptTotal, nbrTotal, incTotal,
	}
	if err := binary.Write(bw, le, hdr); err != nil {
		return err
	}
	if err := binary.Write(bw, le, g.rawTimes); err != nil {
		return err
	}
	if err := binary.Write(bw, le, g.labels); err != nil {
		return err
	}
	flatE := make([]int32, 0, 3*len(g.edges))
	for _, e := range g.edges {
		flatE = append(flatE, int32(e.U), int32(e.V), int32(e.T))
	}
	if err := binary.Write(bw, le, flatE); err != nil {
		return err
	}
	if err := binary.Write(bw, le, g.edgePair); err != nil {
		return err
	}
	if err := binary.Write(bw, le, g.timeOff); err != nil {
		return err
	}
	// Pairs as (U, V, Len); offsets are implied by packed order.
	flatP := make([]int32, 0, 3*len(g.pairs))
	for _, p := range g.pairs {
		flatP = append(flatP, int32(p.U), int32(p.V), p.Len)
	}
	if err := binary.Write(bw, le, flatP); err != nil {
		return err
	}
	for pi := range g.pairs {
		p := g.pairs[pi]
		if err := binary.Write(bw, le, g.pairTimes[p.Off:p.Off+p.Len]); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, le, nbrCnt); err != nil {
		return err
	}
	for u := 0; u < n; u++ {
		no, ne := unpackSeg(g.nbrSeg[u])
		flatN := make([]int32, 0, 2*(ne-no))
		for _, nb := range g.nbrs[no:ne] {
			flatN = append(flatN, int32(nb.V), nb.Pair)
		}
		if err := binary.Write(bw, le, flatN); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, le, incCnt); err != nil {
		return err
	}
	for u := 0; u < n; u++ {
		io_, ie := unpackSeg(g.incSeg[u])
		if err := binary.Write(bw, le, g.incEIDs[io_:ie]); err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	var tail [4]byte
	le.PutUint32(tail[:], cw.crc)
	_, err := w.Write(tail[:])
	return err
}

// segErr wraps a structural complaint with the format name.
func segErr(format string, args ...any) error {
	return fmt.Errorf("tgraph: segment snapshot: "+format, args...)
}

// ReadSegments loads a graph written by WriteSegments. Every array is
// structurally validated (offset monotonicity, id ranges) and the
// trailing CRC32 is verified, so a corrupted stream yields an error, never
// a panic or a silently wrong graph. The returned graph is live: Append
// works and continues the recorded mutation sequence.
//
// tkc:guardheld labelMu: the graph under construction is unshared until
// ReadSegments returns; no reader can observe labelOf before then
func ReadSegments(r io.Reader) (*Graph, error) {
	magic := make([]byte, len(segmentMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, segErr("reading magic: %v", err)
	}
	if string(magic) != segmentMagic {
		return nil, errors.New("tgraph: not a TKSG1 segment snapshot")
	}
	cr := &crcReader{r: r}
	br := bufio.NewReaderSize(cr, 1<<16)
	le := binary.LittleEndian

	hdr := make([]int64, 8)
	if err := binary.Read(br, le, hdr); err != nil {
		return nil, segErr("reading header: %v", err)
	}
	mutSeq := hdr[0]
	n, nEdges, nPairs, tmax := hdr[1], hdr[2], hdr[3], hdr[4]
	ptTotal, nbrTotal, incTotal := hdr[5], hdr[6], hdr[7]
	const limit = 1 << 31
	for _, v := range []int64{n, nEdges, nPairs, tmax, ptTotal, nbrTotal, incTotal} {
		if v < 0 || v > limit {
			return nil, segErr("implausible header count %d", v)
		}
	}
	if mutSeq < 0 {
		return nil, segErr("negative mutation sequence %d", mutSeq)
	}
	if nEdges > 0 && (n < 2 || tmax < 1 || nPairs < 1) {
		return nil, segErr("edge count %d inconsistent with %d vertices, %d pairs, %d ranks", nEdges, n, nPairs, tmax)
	}

	g := &Graph{
		n:        int32(n),
		rawTimes: make([]int64, tmax),
		labels:   make([]int64, n),
		labelMu:  &sync.RWMutex{},
	}
	if err := binary.Read(br, le, g.rawTimes); err != nil {
		return nil, segErr("reading rank table: %v", err)
	}
	for i := 1; i < len(g.rawTimes); i++ {
		if g.rawTimes[i] <= g.rawTimes[i-1] {
			return nil, segErr("rank table not strictly ascending at rank %d", i+1)
		}
	}
	if err := binary.Read(br, le, g.labels); err != nil {
		return nil, segErr("reading labels: %v", err)
	}
	g.labelOf = make(map[int64]VID, n)
	for v, lab := range g.labels {
		if _, dup := g.labelOf[lab]; dup {
			return nil, segErr("duplicate vertex label %d", lab)
		}
		g.labelOf[lab] = VID(v)
	}

	flatE := make([]int32, 3*nEdges)
	if err := binary.Read(br, le, flatE); err != nil {
		return nil, segErr("reading edges: %v", err)
	}
	g.edges = make([]TemporalEdge, nEdges)
	for i := range g.edges {
		u, v, t := flatE[3*i], flatE[3*i+1], flatE[3*i+2]
		if u < 0 || int64(u) >= n || v < 0 || int64(v) >= n || u >= v || t < 1 || int64(t) > tmax {
			return nil, segErr("edge %d (%d,%d,%d) out of range", i, u, v, t)
		}
		g.edges[i] = TemporalEdge{U: VID(u), V: VID(v), T: TS(t)}
	}
	g.edgePair = make([]int32, nEdges)
	if err := binary.Read(br, le, g.edgePair); err != nil {
		return nil, segErr("reading edge pairs: %v", err)
	}
	for i, p := range g.edgePair {
		if p < 0 || int64(p) >= nPairs {
			return nil, segErr("edge %d pair %d out of range", i, p)
		}
	}
	g.timeOff = make([]int32, tmax+2)
	if err := binary.Read(br, le, g.timeOff); err != nil {
		return nil, segErr("reading time offsets: %v", err)
	}
	if g.timeOff[0] != 0 || g.timeOff[1] != 0 || int64(g.timeOff[tmax+1]) != nEdges {
		return nil, segErr("corrupt time offset bounds")
	}
	for t := 1; t <= int(tmax); t++ {
		if g.timeOff[t+1] < g.timeOff[t] {
			return nil, segErr("time offsets not monotone at rank %d", t)
		}
	}

	flatP := make([]int32, 3*nPairs)
	if err := binary.Read(br, le, flatP); err != nil {
		return nil, segErr("reading pairs: %v", err)
	}
	g.pairs = make([]Pair, nPairs)
	g.pairCap = make([]int32, nPairs)
	var off int64
	for i := range g.pairs {
		u, v, l := flatP[3*i], flatP[3*i+1], flatP[3*i+2]
		if u < 0 || int64(u) >= n || v < 0 || int64(v) >= n || u >= v || l < 1 {
			return nil, segErr("pair %d (%d,%d) len %d out of range", i, u, v, l)
		}
		g.pairs[i] = Pair{U: VID(u), V: VID(v), Off: int32(off), Len: l}
		g.pairCap[i] = l
		off += int64(l)
	}
	if off != ptTotal {
		return nil, segErr("pair lengths sum %d, header says %d", off, ptTotal)
	}
	g.pairTimes = make([]TS, ptTotal)
	if err := binary.Read(br, le, g.pairTimes); err != nil {
		return nil, segErr("reading pair times: %v", err)
	}
	for pi := range g.pairs {
		times := g.PairTimes(int32(pi))
		for j, t := range times {
			if t < 1 || int64(t) > tmax || (j > 0 && t <= times[j-1]) {
				return nil, segErr("pair %d times not strictly ascending in range", pi)
			}
		}
	}

	nbrCnt := make([]int32, n)
	if err := binary.Read(br, le, nbrCnt); err != nil {
		return nil, segErr("reading neighbour counts: %v", err)
	}
	flatN := make([]int32, 2*nbrTotal)
	if err := binary.Read(br, le, flatN); err != nil {
		return nil, segErr("reading neighbours: %v", err)
	}
	g.nbrs = make([]Nbr, nbrTotal)
	g.nbrSeg = make([]uint64, n)
	g.nbrCap = make([]int32, n)
	var at int64
	for u := int64(0); u < n; u++ {
		c := nbrCnt[u]
		if c < 0 || at+int64(c) > nbrTotal {
			return nil, segErr("neighbour counts overflow at vertex %d", u)
		}
		g.nbrSeg[u] = packSeg(int32(at), int32(at)+c)
		g.nbrCap[u] = c
		for j := int64(0); j < int64(c); j++ {
			v, p := flatN[2*(at+j)], flatN[2*(at+j)+1]
			if v < 0 || int64(v) >= n || p < 0 || int64(p) >= nPairs {
				return nil, segErr("neighbour entry of vertex %d out of range", u)
			}
			g.nbrs[at+j] = Nbr{V: VID(v), Pair: p}
		}
		at += int64(c)
	}
	if at != nbrTotal {
		return nil, segErr("neighbour counts sum %d, header says %d", at, nbrTotal)
	}

	incCnt := make([]int32, n)
	if err := binary.Read(br, le, incCnt); err != nil {
		return nil, segErr("reading incidence counts: %v", err)
	}
	g.incEIDs = make([]EID, incTotal)
	if err := binary.Read(br, le, g.incEIDs); err != nil {
		return nil, segErr("reading incident edges: %v", err)
	}
	g.incSeg = make([]uint64, n)
	g.incCap = make([]int32, n)
	at = 0
	for u := int64(0); u < n; u++ {
		c := incCnt[u]
		if c < 0 || at+int64(c) > incTotal {
			return nil, segErr("incidence counts overflow at vertex %d", u)
		}
		g.incSeg[u] = packSeg(int32(at), int32(at)+c)
		g.incCap[u] = c
		for j := int64(0); j < int64(c); j++ {
			if e := g.incEIDs[at+j]; e < 0 || int64(e) >= nEdges {
				return nil, segErr("incident edge of vertex %d out of range", u)
			}
		}
		at += int64(c)
	}
	if at != incTotal {
		return nil, segErr("incidence counts sum %d, header says %d", at, incTotal)
	}

	var tail [4]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return nil, segErr("reading checksum: %v", err)
	}
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, segErr("trailing bytes after checksum")
	}
	// The hashing reader absorbed body and trailer alike (bufio reads
	// ahead through it), so cr.crc == CRC(body || trailer) with the stream
	// fully drained. CRC32 streams: extending the stored body digest with
	// the trailer bytes must reproduce it.
	stored := le.Uint32(tail[:])
	if cr.crc != crc32.Update(stored, crc32.IEEETable, tail[:]) {
		return nil, segErr("checksum mismatch (file corrupt)")
	}
	atomic.StoreInt64(&g.mutSeq, mutSeq)
	return g, nil
}
