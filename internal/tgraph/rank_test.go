package tgraph_test

import (
	"testing"

	"temporalkcore/internal/tgraph"
)

func gapGraph() *tgraph.Graph {
	// Raw times 10, 20, 40, 80 -> ranks 1..4.
	return tgraph.MustFromTriples(
		[3]int64{1, 2, 10}, [3]int64{2, 3, 20}, [3]int64{3, 4, 40}, [3]int64{4, 5, 80},
	)
}

func TestRankCeil(t *testing.T) {
	g := gapGraph()
	cases := []struct {
		raw  int64
		want tgraph.TS
	}{
		{5, 1}, {10, 1}, {11, 2}, {20, 2}, {21, 3}, {40, 3}, {79, 4}, {80, 4}, {81, 5},
	}
	for _, c := range cases {
		if got := g.RankCeil(c.raw); got != c.want {
			t.Errorf("RankCeil(%d) = %d, want %d", c.raw, got, c.want)
		}
	}
}

func TestRankFloor(t *testing.T) {
	g := gapGraph()
	cases := []struct {
		raw  int64
		want tgraph.TS
	}{
		{5, 0}, {10, 1}, {19, 1}, {20, 2}, {39, 2}, {40, 3}, {80, 4}, {100, 4},
	}
	for _, c := range cases {
		if got := g.RankFloor(c.raw); got != c.want {
			t.Errorf("RankFloor(%d) = %d, want %d", c.raw, got, c.want)
		}
	}
}

func TestRawWindow(t *testing.T) {
	g := gapGraph()
	s, e := g.RawWindow(tgraph.Window{Start: 2, End: 3})
	if s != 20 || e != 40 {
		t.Errorf("RawWindow = %d..%d, want 20..40", s, e)
	}
}

func TestRawTimePanicsOutOfRange(t *testing.T) {
	g := gapGraph()
	defer func() {
		if recover() == nil {
			t.Error("RawTime(0) did not panic")
		}
	}()
	g.RawTime(0)
}

func TestCompressRangeGaps(t *testing.T) {
	g := gapGraph()
	// A raw range falling entirely into a gap compresses to nothing.
	if _, ok := g.CompressRange(41, 79); ok {
		t.Error("gap range compressed")
	}
	// A range straddling a gap snaps to the inner ranks.
	w, ok := g.CompressRange(15, 75)
	if !ok || w != (tgraph.Window{Start: 2, End: 3}) {
		t.Errorf("CompressRange(15,75) = %v,%v", w, ok)
	}
}
