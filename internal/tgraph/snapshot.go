package tgraph

import (
	"slices"
	"sync/atomic"
)

// Freeze returns an immutable point-in-time snapshot of g: a *Graph that
// answers every read exactly as g does right now and keeps doing so while
// g itself continues to Append. It is the epoch primitive of the
// snapshot-isolated serving layer.
//
// Memory model. Freeze copies only the directory tables that Append
// mutates in place — the pair records (offset/length into pairTimes), the
// packed (off|end<<32) neighbour and incidence segment words, and the
// timestamp group offsets — an O(V + P + TMax) memcpy. The flat history
// arrays (edges, edge→pair, pair times, neighbour entries, incident edge
// ids, raw timestamps, labels) are shared by reference: Append only ever
// writes those arrays past every frozen segment end (per-segment gap
// capacity, tail growth, relocation targets), never at an index a frozen
// directory can reach, so snapshot reads and writer appends touch disjoint
// memory. The shared label→id map is the single exception and is guarded
// by a lock inside VertexOf.
//
// The resulting contract: one writer goroutine may Append to g while any
// number of goroutines read any number of snapshots, with no further
// synchronisation. Freeze itself reads g's mutable state, so it must be
// called from the writer goroutine (or while no Append runs). Appending to
// the returned snapshot is rejected with an error.
//
// tkc:frozensource
// tkc:guardheld labelMu: Freeze runs on the writer goroutine while no Append
// runs, so aliasing labelOf into the snapshot races with nothing
func (g *Graph) Freeze() *Graph {
	fz := &Graph{
		n: g.n,

		edges:    g.edges,
		edgePair: g.edgePair,

		pairs:     slices.Clone(g.pairs),
		pairTimes: g.pairTimes,

		nbrSeg: slices.Clone(g.nbrSeg),
		nbrs:   g.nbrs,

		incSeg:  slices.Clone(g.incSeg),
		incEIDs: g.incEIDs,

		timeOff: slices.Clone(g.timeOff),

		rawTimes: g.rawTimes,
		labels:   g.labels,
		labelOf:  g.labelOf,
		labelMu:  g.labelMu,

		frozen: true,
	}
	atomic.StoreInt64(&fz.mutSeq, atomic.LoadInt64(&g.mutSeq))
	return fz
}

// Frozen reports whether g is an immutable snapshot produced by Freeze.
func (g *Graph) Frozen() bool { return g.frozen }
