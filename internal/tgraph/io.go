package tgraph

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// TextFormat selects how columns of a whitespace-separated edge file are
// interpreted.
type TextFormat int

const (
	// FormatAuto infers the layout from the first data line: three columns
	// are read as "u v t", four or more as "u v w t" (KONECT style, the
	// weight column ignored).
	FormatAuto TextFormat = iota
	// FormatUVT reads "u v t".
	FormatUVT
	// FormatUVWT reads "u v w t" and ignores w.
	FormatUVWT
)

// LoadOptions configures text loading.
type LoadOptions struct {
	Format         TextFormat
	KeepDuplicates bool
}

// LoadText parses a SNAP/KONECT-style whitespace-separated temporal edge
// list. Lines starting with '#' or '%' and blank lines are skipped.
func LoadText(r io.Reader, opts LoadOptions) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	b := Builder{KeepDuplicates: opts.KeepDuplicates}
	format := opts.Format
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if format == FormatAuto {
			switch {
			case len(fields) == 3:
				format = FormatUVT
			case len(fields) >= 4:
				format = FormatUVWT
			default:
				return nil, fmt.Errorf("tgraph: line %d: want >=3 columns, got %d", lineNo, len(fields))
			}
		}
		var ucol, vcol, tcol = 0, 1, 2
		if format == FormatUVWT {
			tcol = 3
		}
		if len(fields) <= tcol {
			return nil, fmt.Errorf("tgraph: line %d: want >=%d columns, got %d", lineNo, tcol+1, len(fields))
		}
		u, err := strconv.ParseInt(fields[ucol], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("tgraph: line %d: bad vertex %q: %v", lineNo, fields[ucol], err)
		}
		v, err := strconv.ParseInt(fields[vcol], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("tgraph: line %d: bad vertex %q: %v", lineNo, fields[vcol], err)
		}
		// Timestamps may be floats in some KONECT dumps; truncate.
		t, err := strconv.ParseInt(fields[tcol], 10, 64)
		if err != nil {
			f, ferr := strconv.ParseFloat(fields[tcol], 64)
			if ferr != nil {
				return nil, fmt.Errorf("tgraph: line %d: bad timestamp %q: %v", lineNo, fields[tcol], err)
			}
			t = int64(f)
		}
		b.Add(u, v, t)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tgraph: reading edge list: %w", err)
	}
	return b.Build()
}

// LoadTextFile opens path and calls LoadText.
func LoadTextFile(path string, opts LoadOptions) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadText(f, opts)
}

// WriteText writes the graph as "u v t" lines using original labels and raw
// timestamps, so LoadText round-trips it.
func (g *Graph) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range g.edges {
		if _, err := fmt.Fprintf(bw, "%d %d %d\n", g.labels[e.U], g.labels[e.V], g.rawTimes[e.T-1]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

const binaryMagic = "TKCG1\n"

// WriteBinary writes a compact binary encoding of the graph's edge list
// (labels and raw timestamps), suitable for fast reloading with LoadBinary.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(len(g.edges)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [24]byte
	for _, e := range g.edges {
		binary.LittleEndian.PutUint64(buf[0:8], uint64(g.labels[e.U]))
		binary.LittleEndian.PutUint64(buf[8:16], uint64(g.labels[e.V]))
		binary.LittleEndian.PutUint64(buf[16:24], uint64(g.rawTimes[e.T-1]))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadBinary reads a graph written by WriteBinary.
func LoadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("tgraph: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, errors.New("tgraph: not a TKCG1 file")
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("tgraph: reading header: %w", err)
	}
	m := binary.LittleEndian.Uint64(hdr[:])
	const maxEdges = 1 << 32
	if m > maxEdges {
		return nil, fmt.Errorf("tgraph: implausible edge count %d", m)
	}
	var b Builder
	var buf [24]byte
	for i := uint64(0); i < m; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("tgraph: reading edge %d: %w", i, err)
		}
		b.Add(
			int64(binary.LittleEndian.Uint64(buf[0:8])),
			int64(binary.LittleEndian.Uint64(buf[8:16])),
			int64(binary.LittleEndian.Uint64(buf[16:24])),
		)
	}
	return b.Build()
}
