package epoch_test

import (
	"sync"
	"sync/atomic"
	"testing"

	"temporalkcore/internal/epoch"
)

func TestEmptyGuard(t *testing.T) {
	var g epoch.Guard[int]
	if _, _, ok := g.Acquire(); ok {
		t.Fatal("Acquire on empty guard reported ok")
	}
	if _, ok := g.Current(); ok {
		t.Fatal("Current on empty guard reported ok")
	}
}

func TestPublishCurrentAcquire(t *testing.T) {
	var g epoch.Guard[int]
	g.Publish(7, nil)
	if v, ok := g.Current(); !ok || v != 7 {
		t.Fatalf("Current = %d, %v", v, ok)
	}
	v, release, ok := g.Acquire()
	if !ok || v != 7 {
		t.Fatalf("Acquire = %d, %v", v, ok)
	}
	g.Publish(8, nil)
	if cv, _ := g.Current(); cv != 8 {
		t.Fatalf("Current after publish = %d", cv)
	}
	// The pinned generation stays readable after retirement.
	if v != 7 {
		t.Fatalf("pinned value mutated: %d", v)
	}
	release()
}

// TestDrainExactlyOnce retires generations with and without pinned readers
// and requires each drain hook to run exactly once, at the right moment.
func TestDrainExactlyOnce(t *testing.T) {
	var g epoch.Guard[int]
	drains := make(map[int]int)
	hook := func(v int) { drains[v]++ }

	g.Publish(1, hook)
	g.Publish(2, hook) // 1 retires with no readers: drains immediately
	if drains[1] != 1 {
		t.Fatalf("gen 1 drained %d times, want 1", drains[1])
	}

	_, rel, _ := g.Acquire() // pin 2
	g.Publish(3, hook)       // 2 retired but pinned
	if drains[2] != 0 {
		t.Fatalf("gen 2 drained while pinned")
	}
	rel()
	if drains[2] != 1 {
		t.Fatalf("gen 2 drained %d times after release, want 1", drains[2])
	}

	// Multiple pins: drain only after the last release.
	_, r1, _ := g.Acquire()
	_, r2, _ := g.Acquire()
	g.Publish(4, hook)
	r1()
	if drains[3] != 0 {
		t.Fatal("gen 3 drained with a reader outstanding")
	}
	r2()
	if drains[3] != 1 {
		t.Fatalf("gen 3 drained %d times, want 1", drains[3])
	}
}

// TestConcurrentAcquire hammers the guard with concurrent readers while a
// writer publishes; run under -race this is the protocol's torture test.
// Every acquired value must still be undrained while pinned, visibility
// must be monotone per reader, and total drains must equal total retired
// generations at the end.
func TestConcurrentAcquire(t *testing.T) {
	type val struct {
		seq     int
		drained atomic.Bool
	}
	var g epoch.Guard[*val]
	var drains atomic.Int64
	hook := func(v *val) {
		if v.drained.Swap(true) {
			t.Error("double drain")
		}
		drains.Add(1)
	}

	const gens = 2000
	const readers = 4
	var wg sync.WaitGroup
	stopped := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := -1
			for {
				select {
				case <-stopped:
					return
				default:
				}
				v, release, ok := g.Acquire()
				if !ok {
					continue
				}
				if v.drained.Load() {
					t.Error("acquired a drained generation")
				}
				if v.seq < last {
					t.Errorf("visibility went backwards: %d after %d", v.seq, last)
				}
				last = v.seq
				release()
			}
		}()
	}
	for i := 0; i < gens; i++ {
		g.Publish(&val{seq: i}, hook)
	}
	close(stopped)
	wg.Wait()
	g.Publish(&val{seq: gens}, nil) // retire the last hooked generation
	if got := drains.Load(); got != gens {
		t.Fatalf("drained %d generations, want %d", got, gens)
	}
}
