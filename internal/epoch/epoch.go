// Package epoch implements the single-writer / many-reader generation
// protocol behind the repository's snapshot-isolated serving layer: a
// writer publishes immutable generations of some value (a frozen graph, a
// patched CoreTime view), readers pin the current generation lock-free for
// the duration of a query, and a retired generation is reclaimed — its
// backing arenas handed back for reuse — exactly once, when its last
// reader drains.
//
// The protocol is wait-free for the writer and lock-free for readers: a
// reader's Acquire is one atomic pointer load plus one CAS on the
// generation's reference count, retried only in the unlikely window where
// the generation it loaded drained before the CAS landed.
package epoch

import "sync/atomic"

// generation is one published value plus its reader count. refs starts at 1
// (the publish reference, owned by the Guard while the generation is
// current); it is monotone after reaching zero: Acquire refuses to
// resurrect a drained generation, so onDrain runs exactly once.
type generation[T any] struct {
	val     T
	refs    atomic.Int64
	onDrain func(T)
}

// release drops one reference and runs the drain hook when the count hits
// zero. It may be called from any goroutine (readers release on their own
// goroutines), so onDrain must be safe to run anywhere.
func (g *generation[T]) release() {
	if g.refs.Add(-1) == 0 && g.onDrain != nil {
		g.onDrain(g.val)
	}
}

// Guard publishes refcounted immutable generations from a single writer to
// any number of readers. The zero value is ready to use (no generation
// published). Publish must be called from one goroutine at a time; Acquire
// and Current are safe from any goroutine.
type Guard[T any] struct {
	cur atomic.Pointer[generation[T]]
}

// Publish makes v the current generation and retires the previous one. The
// previous generation stays fully readable for readers that already pinned
// it; once the last of those releases, onDrain (of the retired generation,
// as passed to ITS Publish call) runs exactly once with the retired value —
// the hook where backing arenas return to a free list. A nil onDrain means
// the generation is simply dropped to the garbage collector on drain.
func (g *Guard[T]) Publish(v T, onDrain func(T)) {
	ng := &generation[T]{val: v, onDrain: onDrain}
	ng.refs.Store(1) // the publish reference
	if old := g.cur.Swap(ng); old != nil {
		old.release()
	}
}

// Acquire pins the current generation and returns its value plus the
// release closure the reader must call when done (release is idempotent-
// unsafe: call it exactly once). ok is false when nothing has been
// published yet. The returned value stays valid — never mutated, never
// reclaimed — until release is called, regardless of how many newer
// generations are published meanwhile.
//
// tkc:frozensource
// tkc:acquires
func (g *Guard[T]) Acquire() (v T, release func(), ok bool) {
	for {
		gen := g.cur.Load()
		if gen == nil {
			var zero T
			return zero, nil, false
		}
		r := gen.refs.Load()
		if r == 0 {
			// Drained between our load and now; a newer generation has
			// been published — retry against it.
			continue
		}
		if gen.refs.CompareAndSwap(r, r+1) {
			return gen.val, gen.release, true
		}
	}
}

// Current returns the current generation's value without pinning it. It is
// intended for the writer (which alone decides when generations retire and
// therefore cannot race its own Publish); readers must use Acquire.
func (g *Guard[T]) Current() (v T, ok bool) {
	gen := g.cur.Load()
	if gen == nil {
		var zero T
		return zero, false
	}
	return gen.val, true
}
