package vct_test

import (
	"bytes"
	"strings"
	"testing"

	"temporalkcore/internal/paperex"
	"temporalkcore/internal/vct"
)

func TestECSEncodeDecode(t *testing.T) {
	g := paperex.Graph()
	_, ecs, err := vct.Build(g, 2, g.FullWindow())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ecs.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := vct.DecodeECS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.K != ecs.K || back.Range != ecs.Range || back.Size() != ecs.Size() {
		t.Fatalf("shape changed: %+v vs %+v", back, ecs)
	}
	blo, bhi := back.EdgeRange()
	lo, hi := ecs.EdgeRange()
	if blo != lo || bhi != hi {
		t.Fatalf("edge range changed: [%d,%d) vs [%d,%d)", blo, bhi, lo, hi)
	}
	for e := lo; e < hi; e++ {
		ww, gw := ecs.Windows(e), back.Windows(e)
		if len(ww) != len(gw) {
			t.Fatalf("window count of edge %d changed", e)
		}
		for i := range ww {
			if ww[i] != gw[i] {
				t.Fatalf("window %d of edge %d changed", i, e)
			}
		}
	}
}

func TestDecodeECSRejectsGarbage(t *testing.T) {
	for _, c := range []string{"", "NOPE", "ECSX1\n"} {
		if _, err := vct.DecodeECS(strings.NewReader(c)); err == nil {
			t.Errorf("garbage %q accepted", c)
		}
	}
	g := paperex.Graph()
	_, ecs, err := vct.Build(g, 2, g.FullWindow())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ecs.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Break the offset table monotonicity / totals.
	mut := append([]byte(nil), data...)
	mut[ecsMagicLen()+6*4] ^= 0xFF
	if _, err := vct.DecodeECS(bytes.NewReader(mut)); err == nil {
		t.Errorf("corrupt offset table accepted")
	}
	// Truncated stream.
	if _, err := vct.DecodeECS(bytes.NewReader(data[:len(data)-3])); err == nil {
		t.Errorf("truncated stream accepted")
	}
}

func ecsMagicLen() int { return len("ECSX1\n") }
