// Package vct computes the Vertex Core Time index (VCT) and the Edge Core
// window Skyline (ECS) of a temporal graph for a fixed k and query range
// [Ts, Te], reproducing Section IV of "Accelerating K-Core Computation in
// Temporal Graphs" (EDBT 2026) and the single-k slice of the PHC index of
// Yu et al., "On Querying Historical K-Cores" (VLDB 2021, reference [13]).
//
// # Core-time fixed point
//
// For a fixed start time ts, define over the snapshot universe [ts, Te]
//
//	F(CT)(u) = k-th smallest over distinct neighbours v of u of
//	           max(CT(v), firstTime(u, v, >= ts))
//
// where firstTime is the earliest interaction of the pair at or after ts
// (contributions later than Te, and neighbours with CT = ∞, are discarded;
// fewer than k contributions means ∞). The true core-time vector CT_ts is
// the least fixed point of F above the lower bound L(u) = k-th smallest
// firstTime of u's pairs:
//
//   - CT_ts is a fixed point: u enters the k-core of [ts, te] exactly when k
//     of its neighbours are simultaneously present (edge seen by te) and in
//     the core (their own core time <= te); conversely if k neighbours
//     satisfy that at te, then core(ts, te) ∪ {u} has min degree >= k, so u
//     is in the k-core by maximality.
//   - Any fixed point X >= L satisfies X >= CT_ts: for S = {u : X(u) <= te},
//     every member has k neighbours in S with edges in [ts, te], so S is
//     contained in the k-core of [ts, te].
//   - Chaotic worklist iteration that only ever raises values converges to
//     the least fixed point >= L, which by the two points above equals CT_ts.
//
// Raising ts from s to s+1 only changes firstTime for pairs interacting at
// exactly s, so the worklist is reseeded with the endpoints of expiring
// edges and changes propagate outward; core times are monotone in ts, so
// values keep only rising across the whole run. This matches the paper's
// O(|VCT| · deg_avg) bound up to transient intermediate raises during a
// cascade (each pop costs one neighbourhood scan; pops that do not raise a
// value stop the propagation immediately).
//
// # Edge skylines (Algorithm 2)
//
// The core time of a temporal edge e = (u, v, t) for start s <= t is
// max(CT_s(u), CT_s(v), t) (Lemma 1). Whenever the edge core time rises
// between s and s+1, [s, CT_s(e)] is a minimal core window (Lemma 2), and
// the last finite value is flushed when the edge expires at s = t. The
// emitted windows per edge have strictly increasing starts and ends: they
// are exactly the edge's core-window skyline (Definition 5).
//
// # Scratch-pool design
//
// The builder's entire working state — core-time and record vectors, pair
// and incidence pointers, the worklist with its membership bits, the k-slot
// selection buffer and both record arenas — lives in a Scratch, a
// size-adaptive bundle cycled through a sync.Pool. Build borrows a pooled
// Scratch and copies its outputs; BuildScratch runs on a caller-owned
// Scratch and returns Index/ECS views aliasing its arenas, making a warm
// repeated build allocation-free. Per-query setup is O(|pairs| + |V|)
// pointer writes, each found by binary search restricted to the query
// window rather than a scan of the full time lists, and F(CT) evaluation
// selects the k-th smallest contribution with a bounded insertion buffer
// instead of sorting whole neighbourhoods. Workers that run queries
// concurrently each hold their own Scratch (see core.QueryBatch).
package vct
