package vct

import (
	"slices"
	"unsafe"

	"temporalkcore/internal/tgraph"
)

// Clone returns a deep copy of the index whose arrays are owned by the
// copy. Use it to hand arena-backed tables (BuildScratch outputs) to a
// holder that outlives the arena, such as the serving cache.
func (ix *Index) Clone() *Index {
	return &Index{
		K:       ix.K,
		Range:   ix.Range,
		off:     slices.Clone(ix.off),
		entries: slices.Clone(ix.entries),
	}
}

// MemBytes estimates the resident size of the index's backing arrays.
func (ix *Index) MemBytes() int64 {
	return int64(len(ix.off))*int64(unsafe.Sizeof(int32(0))) +
		int64(len(ix.entries))*int64(unsafe.Sizeof(Entry{}))
}

// Clone returns a deep copy of the skylines whose arrays are owned by the
// copy; see Index.Clone.
func (e *ECS) Clone() *ECS {
	return &ECS{
		K:     e.K,
		Range: e.Range,
		lo:    e.lo,
		hi:    e.hi,
		off:   slices.Clone(e.off),
		wins:  slices.Clone(e.wins),
	}
}

// MemBytes estimates the resident size of the skylines' backing arrays.
func (e *ECS) MemBytes() int64 {
	return int64(len(e.off))*int64(unsafe.Sizeof(int32(0))) +
		int64(len(e.wins))*int64(unsafe.Sizeof(tgraph.Window{}))
}
