package vct_test

import (
	"testing"

	"temporalkcore/internal/kcore"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// FuzzCoreTimes decodes the fuzz input as an edge list and checks the
// fixed-point core times against from-scratch peeling for every vertex and
// start time.
func FuzzCoreTimes(f *testing.F) {
	f.Add([]byte{1, 2, 1, 2, 3, 2, 1, 3, 3}, byte(2))
	f.Add([]byte{0, 1, 5, 1, 2, 5, 0, 2, 5, 2, 3, 6}, byte(2))

	f.Fuzz(func(t *testing.T, data []byte, kb byte) {
		if len(data) < 3 || len(data) > 60 {
			return
		}
		var b tgraph.Builder
		for i := 0; i+2 < len(data); i += 3 {
			u := int64(data[i] % 10)
			v := int64(data[i+1] % 10)
			ts := int64(data[i+2]%8) + 1
			if u == v {
				continue
			}
			b.Add(u, v, ts)
		}
		g, err := b.Build()
		if err != nil {
			return
		}
		k := int(kb%3) + 1
		w := g.FullWindow()
		ix, _, err := vct.Build(g, k, w)
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		p := kcore.NewPeeler(g)
		for u := tgraph.VID(0); u < tgraph.VID(g.NumVertices()); u++ {
			for ts := w.Start; ts <= w.End; ts++ {
				want := tgraph.InfTime
				for te := ts; te <= w.End; te++ {
					if p.CoreOfWindow(k, tgraph.Window{Start: ts, End: te}).InCore[u] {
						want = te
						break
					}
				}
				if got := ix.CoreTime(u, ts); got != want {
					t.Fatalf("CT_%d(v%d) = %d, want %d (k=%d)", ts, u, got, want, k)
				}
			}
		}
	})
}
