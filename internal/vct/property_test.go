package vct_test

import (
	"math/rand"
	"testing"

	"temporalkcore/internal/kcore"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// naiveCoreTime computes CT_ts(u) by peeling windows of increasing end.
func naiveCoreTime(p *kcore.Peeler, u tgraph.VID, k int, ts tgraph.TS, w tgraph.Window) tgraph.TS {
	for te := ts; te <= w.End; te++ {
		if p.CoreOfWindow(k, tgraph.Window{Start: ts, End: te}).InCore[u] {
			return te
		}
	}
	return tgraph.InfTime
}

func randomGraph(r *rand.Rand, n, m, tmax int) *tgraph.Graph {
	var b tgraph.Builder
	b.KeepDuplicates = r.Intn(2) == 0
	for i := 0; i < m; i++ {
		u := r.Intn(n)
		v := r.Intn(n)
		for v == u {
			v = r.Intn(n)
		}
		b.Add(int64(u), int64(v), int64(1+r.Intn(tmax)))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// TestCoreTimesMatchOracle compares the fixed-point index with the peeling
// oracle on random graphs for every (vertex, start time).
func TestCoreTimesMatchOracle(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	iters := 60
	if testing.Short() {
		iters = 15
	}
	for it := 0; it < iters; it++ {
		n := 4 + r.Intn(10)
		m := 5 + r.Intn(40)
		tmax := 2 + r.Intn(9)
		g := randomGraph(r, n, m, tmax)
		k := 1 + r.Intn(4)
		// Random sub-ranges too, not only the full window.
		ts0 := tgraph.TS(1 + r.Intn(int(g.TMax())))
		te0 := ts0 + tgraph.TS(r.Intn(int(g.TMax()-ts0)+1))
		w := tgraph.Window{Start: ts0, End: te0}

		ix, _, err := vct.Build(g, k, w)
		if err != nil {
			t.Fatal(err)
		}
		p := kcore.NewPeeler(g)
		for u := tgraph.VID(0); u < tgraph.VID(g.NumVertices()); u++ {
			for ts := w.Start; ts <= w.End; ts++ {
				want := naiveCoreTime(p, u, k, ts, w)
				got := ix.CoreTime(u, ts)
				if got != want {
					t.Fatalf("iter %d (k=%d w=%v): CT_%d(v%d) = %d, want %d\nentries: %v",
						it, k, w, ts, u, got, want, ix.Entries(u))
				}
			}
		}
	}
}

// TestSkylinesMatchOracle verifies, per edge, that the produced windows are
// exactly the minimal core windows of Definition 5.
func TestSkylinesMatchOracle(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	iters := 40
	if testing.Short() {
		iters = 10
	}
	for it := 0; it < iters; it++ {
		g := randomGraph(r, 4+r.Intn(8), 5+r.Intn(35), 2+r.Intn(8))
		k := 1 + r.Intn(3)
		w := g.FullWindow()
		_, ecs, err := vct.Build(g, k, w)
		if err != nil {
			t.Fatal(err)
		}
		p := kcore.NewPeeler(g)
		lo, hi := ecs.EdgeRange()
		inCore := func(e tgraph.EID, win tgraph.Window) bool {
			te := g.Edge(e)
			if te.T < win.Start || te.T > win.End {
				return false
			}
			res := p.CoreOfWindow(k, win)
			return res.InCore[te.U] && res.InCore[te.V]
		}
		for e := lo; e < hi; e++ {
			wins := ecs.Windows(e)
			// (a) Every reported window is minimal: edge in core of the
			// window but in no proper sub-window.
			prev := tgraph.Window{}
			for _, win := range wins {
				if !inCore(e, win) {
					t.Fatalf("iter %d: edge %d not in core of reported window %v", it, e, win)
				}
				if win.Start < win.End {
					if inCore(e, tgraph.Window{Start: win.Start + 1, End: win.End}) ||
						inCore(e, tgraph.Window{Start: win.Start, End: win.End - 1}) {
						t.Fatalf("iter %d: window %v of edge %d not minimal", it, win, e)
					}
				}
				// (b) Windows strictly ascend in both coordinates.
				if prev.Valid() && (win.Start <= prev.Start || win.End <= prev.End) {
					t.Fatalf("iter %d: skyline not strictly ascending: %v", it, wins)
				}
				prev = win
			}
			// (c) Completeness: for every (ts, te) with the edge in the
			// core, some reported window is contained in it (Lemma 3).
			for ts := w.Start; ts <= w.End; ts++ {
				for te := ts; te <= w.End; te++ {
					win := tgraph.Window{Start: ts, End: te}
					want := inCore(e, win)
					got := false
					for _, mw := range wins {
						if win.Contains(mw) {
							got = true
							break
						}
					}
					if got != want {
						t.Fatalf("iter %d: edge %d window %v: containment %v, core membership %v (skyline %v)",
							it, e, win, got, want, wins)
					}
				}
			}
		}
	}
}

// TestCoreTimeMonotoneInStart: CT_ts(u) is non-decreasing in ts.
func TestCoreTimeMonotoneInStart(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for it := 0; it < 40; it++ {
		g := randomGraph(r, 4+r.Intn(10), 5+r.Intn(40), 2+r.Intn(10))
		k := 1 + r.Intn(3)
		ix, _, err := vct.Build(g, k, g.FullWindow())
		if err != nil {
			t.Fatal(err)
		}
		for u := tgraph.VID(0); u < tgraph.VID(g.NumVertices()); u++ {
			prev := tgraph.TS(0)
			for _, ent := range ix.Entries(u) {
				if ent.CT != tgraph.InfTime && ent.CT < prev {
					t.Fatalf("iter %d: core times of v%d not monotone: %v", it, u, ix.Entries(u))
				}
				if ent.CT != tgraph.InfTime {
					prev = ent.CT
				}
				// A finite core time never precedes its start.
				if ent.CT != tgraph.InfTime && ent.CT < ent.Start {
					t.Fatalf("iter %d: v%d entry %v has CT before start", it, u, ent)
				}
			}
		}
	}
}

// TestEntriesDistinctAndOrdered: index entries have strictly increasing
// starts and strictly increasing core times (that is what makes the index a
// compressed representation).
func TestEntriesDistinctAndOrdered(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	for it := 0; it < 40; it++ {
		g := randomGraph(r, 4+r.Intn(10), 5+r.Intn(40), 2+r.Intn(10))
		ix, _, err := vct.Build(g, 2, g.FullWindow())
		if err != nil {
			t.Fatal(err)
		}
		for u := tgraph.VID(0); u < tgraph.VID(g.NumVertices()); u++ {
			ents := ix.Entries(u)
			for i := 1; i < len(ents); i++ {
				if ents[i].Start <= ents[i-1].Start {
					t.Fatalf("v%d entry starts not ascending: %v", u, ents)
				}
				if ents[i-1].CT == tgraph.InfTime {
					t.Fatalf("v%d has an entry after ∞: %v", u, ents)
				}
				if ents[i].CT != tgraph.InfTime && ents[i].CT <= ents[i-1].CT {
					t.Fatalf("v%d core times not strictly increasing: %v", u, ents)
				}
			}
		}
	}
}

// TestActiveTimePartition: for each edge, the [active, start] intervals of
// consecutive windows partition [Ts, last start] (Definition 6), so exactly
// one window per edge is live at any start time it covers.
func TestActiveTimePartition(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	for it := 0; it < 40; it++ {
		g := randomGraph(r, 4+r.Intn(10), 5+r.Intn(40), 2+r.Intn(10))
		k := 1 + r.Intn(3)
		w := g.FullWindow()
		_, ecs, err := vct.Build(g, k, w)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := ecs.EdgeRange()
		for e := lo; e < hi; e++ {
			wins := ecs.Windows(e)
			if len(wins) == 0 {
				continue
			}
			expectActive := w.Start
			for _, win := range wins {
				if expectActive > win.Start {
					t.Fatalf("iter %d edge %d: active interval empty for %v (skyline %v)", it, e, win, wins)
				}
				expectActive = win.Start + 1
			}
		}
	}
}
