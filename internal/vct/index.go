package vct

import (
	"sort"

	"temporalkcore/internal/tgraph"
)

// Entry is one label of the vertex core time index: the core time of the
// vertex is CT for every start time from Start until the next entry's Start
// (exclusive). CT == tgraph.InfTime records "in no k-core from here on".
type Entry struct {
	Start tgraph.TS
	CT    tgraph.TS
}

// Index is the Vertex Core Time index (VCT) for one k and one query range.
type Index struct {
	K     int
	Range tgraph.Window

	off     []int32
	entries []Entry
}

// Entries returns the index labels of vertex u in ascending start order.
func (ix *Index) Entries(u tgraph.VID) []Entry {
	return ix.entries[ix.off[u]:ix.off[u+1]]
}

// CoreTime returns CT_ts(u), the earliest end time te such that u is in the
// k-core of the snapshot over [ts, te], or tgraph.InfTime when there is
// none. ts must lie inside the index range.
func (ix *Index) CoreTime(u tgraph.VID, ts tgraph.TS) tgraph.TS {
	ents := ix.Entries(u)
	// Find the last entry with Start <= ts.
	i := sort.Search(len(ents), func(i int) bool { return ents[i].Start > ts }) - 1
	if i < 0 {
		return tgraph.InfTime
	}
	return ents[i].CT
}

// Size returns |VCT|, the total number of index entries.
func (ix *Index) Size() int { return len(ix.entries) }

// ECS is the Edge Core window Skyline of every temporal edge inside the
// query range: the set of minimal core windows (Definition 5), per edge in
// strictly increasing start (and end) order.
type ECS struct {
	K     int
	Range tgraph.Window

	lo, hi tgraph.EID // edge-id range of the query window
	off    []int32    // indexed by eid-lo, len hi-lo+1
	wins   []tgraph.Window
}

// EdgeRange returns the [lo, hi) edge-id range the skyline covers.
func (e *ECS) EdgeRange() (lo, hi tgraph.EID) { return e.lo, e.hi }

// Windows returns the minimal core windows of edge eid (possibly empty).
func (e *ECS) Windows(eid tgraph.EID) []tgraph.Window {
	i := eid - e.lo
	return e.wins[e.off[i]:e.off[i+1]]
}

// Size returns |ECS|, the total number of minimal core windows.
func (e *ECS) Size() int { return len(e.wins) }
