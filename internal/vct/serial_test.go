package vct_test

import (
	"bytes"
	"strings"
	"testing"

	"temporalkcore/internal/paperex"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

func TestIndexEncodeDecode(t *testing.T) {
	g := paperex.Graph()
	ix, _, err := vct.Build(g, 2, g.FullWindow())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := vct.DecodeIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.K != ix.K || back.Range != ix.Range || back.Size() != ix.Size() || back.NumVertices() != ix.NumVertices() {
		t.Fatalf("shape changed: %+v vs %+v", back, ix)
	}
	for u := tgraph.VID(0); u < tgraph.VID(g.NumVertices()); u++ {
		for ts := tgraph.TS(1); ts <= g.TMax(); ts++ {
			if back.CoreTime(u, ts) != ix.CoreTime(u, ts) {
				t.Fatalf("CT_%d(v%d) changed after round trip", ts, u)
			}
		}
	}
}

func TestDecodeIndexRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"NOPE",
		"VCTX1\n", // header missing
	}
	for _, c := range cases {
		if _, err := vct.DecodeIndex(strings.NewReader(c)); err == nil {
			t.Errorf("garbage %q accepted", c)
		}
	}
	// Corrupt the offset table: flip a byte in a valid stream.
	g := paperex.Graph()
	ix, _, err := vct.Build(g, 2, g.FullWindow())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Offsets start after magic (6 bytes) + 5 int32 header (20 bytes).
	data[6+20] = 0xFF
	if _, err := vct.DecodeIndex(bytes.NewReader(data)); err == nil {
		t.Error("corrupt offset table accepted")
	}
}
