package vct_test

import (
	"testing"

	"temporalkcore/internal/gen"
	"temporalkcore/internal/kcore"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

func benchGraph(b *testing.B, code string, edges int) (*tgraph.Graph, int) {
	b.Helper()
	rep, err := gen.ReplicaByCode(code)
	if err != nil {
		b.Fatal(err)
	}
	g, err := rep.Generate(edges, 1)
	if err != nil {
		b.Fatal(err)
	}
	kmax := kcore.KMax(g)
	k := kmax * 30 / 100
	if k < 2 {
		k = 2
	}
	return g, k
}

// BenchmarkBuildFullRange measures VCT+ECS construction over the whole
// graph (the paper's CoreTime phase at its most expensive).
func BenchmarkBuildFullRange(b *testing.B) {
	for _, code := range []string{"CM", "PL"} {
		b.Run(code, func(b *testing.B) {
			g, k := benchGraph(b, code, 5000)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ix, ecs, err := vct.Build(g, k, g.FullWindow())
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(ix.Size()), "VCT")
					b.ReportMetric(float64(ecs.Size()), "ECS")
				}
			}
		})
	}
}

// BenchmarkCoreTimeQuery measures point lookups into the index.
func BenchmarkCoreTimeQuery(b *testing.B) {
	g, k := benchGraph(b, "CM", 5000)
	ix, _, err := vct.Build(g, k, g.FullWindow())
	if err != nil {
		b.Fatal(err)
	}
	n := tgraph.VID(g.NumVertices())
	tmax := g.TMax()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := tgraph.VID(i) % n
		ts := tgraph.TS(i%int(tmax)) + 1
		_ = ix.CoreTime(u, ts)
	}
}
