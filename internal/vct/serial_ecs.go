package vct

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"temporalkcore/internal/tgraph"
)

const ecsMagic = "ECSX1\n"

// Encode writes a compact binary form of the edge core skyline. The
// encoding is self-contained and versioned; DecodeECS reads it back.
func (e *ECS) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(ecsMagic); err != nil {
		return err
	}
	hdr := []int32{
		int32(e.K),
		int32(e.Range.Start), int32(e.Range.End),
		int32(e.lo), int32(e.hi),
		int32(len(e.wins)),
	}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, e.off); err != nil {
		return err
	}
	flat := make([]int32, 0, 2*len(e.wins))
	for _, win := range e.wins {
		flat = append(flat, int32(win.Start), int32(win.End))
	}
	if err := binary.Write(bw, binary.LittleEndian, flat); err != nil {
		return err
	}
	return bw.Flush()
}

// DecodeECS reads a skyline written by Encode.
func DecodeECS(r io.Reader) (*ECS, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(ecsMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("vct: reading magic: %w", err)
	}
	if string(magic) != ecsMagic {
		return nil, errors.New("vct: not an ECSX1 stream")
	}
	hdr := make([]int32, 6)
	if err := binary.Read(br, binary.LittleEndian, hdr); err != nil {
		return nil, fmt.Errorf("vct: reading header: %w", err)
	}
	lo, hi, nWins := int(hdr[3]), int(hdr[4]), int(hdr[5])
	const limit = 1 << 31
	if lo < 0 || hi < lo || hi-lo >= limit || nWins < 0 || nWins > limit {
		return nil, fmt.Errorf("vct: implausible sizes lo=%d hi=%d wins=%d", lo, hi, nWins)
	}
	e := &ECS{
		K:     int(hdr[0]),
		Range: tgraph.Window{Start: tgraph.TS(hdr[1]), End: tgraph.TS(hdr[2])},
		lo:    tgraph.EID(lo),
		hi:    tgraph.EID(hi),
		off:   make([]int32, hi-lo+1),
		wins:  make([]tgraph.Window, nWins),
	}
	if err := binary.Read(br, binary.LittleEndian, e.off); err != nil {
		return nil, fmt.Errorf("vct: reading offsets: %w", err)
	}
	flat := make([]int32, 2*nWins)
	if err := binary.Read(br, binary.LittleEndian, flat); err != nil {
		return nil, fmt.Errorf("vct: reading windows: %w", err)
	}
	for i := range e.wins {
		e.wins[i] = tgraph.Window{Start: tgraph.TS(flat[2*i]), End: tgraph.TS(flat[2*i+1])}
	}
	// Structural validation so a corrupted stream cannot cause panics.
	if e.off[0] != 0 || int(e.off[len(e.off)-1]) != nWins {
		return nil, errors.New("vct: corrupt skyline offset table")
	}
	for i := 1; i < len(e.off); i++ {
		if e.off[i] < e.off[i-1] {
			return nil, errors.New("vct: skyline offset table not monotone")
		}
	}
	return e, nil
}
