package vct_test

import (
	"reflect"
	"testing"

	"temporalkcore/internal/paperex"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// TestBuildStopMatchesBuild pins the self-owned stoppable build: with a
// quiet stop hook it must produce exactly Build's output, and with a
// firing hook it must return ErrStopped.
func TestBuildStopMatchesBuild(t *testing.T) {
	g := paperex.Graph()
	w := g.FullWindow()
	ix, ecs, err := vct.Build(g, paperex.K, w)
	if err != nil {
		t.Fatal(err)
	}
	ix2, ecs2, err := vct.BuildStop(g, paperex.K, w, func() bool { return false })
	if err != nil {
		t.Fatal(err)
	}
	if ix2.Size() != ix.Size() || ecs2.Size() != ecs.Size() {
		t.Fatalf("BuildStop sizes (%d,%d) != Build sizes (%d,%d)", ix2.Size(), ecs2.Size(), ix.Size(), ecs.Size())
	}
	for u := 0; u < g.NumVertices(); u++ {
		if !reflect.DeepEqual(ix2.Entries(tgraph.VID(u)), ix.Entries(tgraph.VID(u))) {
			t.Fatalf("vertex %d entries differ", u)
		}
	}

	// The stop hook is polled with a bounded stride (once per 2048 settle
	// pops), so on this tiny example it never fires — the cancellation
	// branch itself is exercised by the larger-graph ctx tests. Validation
	// still applies.
	if _, _, err := vct.BuildStop(g, 0, w, nil); err == nil {
		t.Fatal("k=0 accepted")
	}
}

// TestCloneIsDeepAndSized pins Clone (deep, independent copies) and the
// MemBytes estimators the serving cache budgets with.
func TestCloneIsDeepAndSized(t *testing.T) {
	g, ix, ecs := buildPaper(t)

	cix, cecs := ix.Clone(), ecs.Clone()
	if cix.K != ix.K || cix.Range != ix.Range || cix.Size() != ix.Size() {
		t.Fatalf("index clone header differs: %+v vs %+v", cix, ix)
	}
	lo, hi := ecs.EdgeRange()
	clo, chi := cecs.EdgeRange()
	if clo != lo || chi != hi || cecs.Size() != ecs.Size() || cecs.K != ecs.K || cecs.Range != ecs.Range {
		t.Fatal("skyline clone header differs")
	}
	for u := 0; u < g.NumVertices(); u++ {
		got, want := cix.Entries(tgraph.VID(u)), ix.Entries(tgraph.VID(u))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("vertex %d: clone entries %v != %v", u, got, want)
		}
		// Deep: the clone's backing array is its own.
		if len(got) > 0 && &got[0] == &want[0] {
			t.Fatal("index clone shares backing memory")
		}
	}
	for e := lo; e < hi; e++ {
		got, want := cecs.Windows(e), ecs.Windows(e)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("edge %d: clone windows %v != %v", e, got, want)
		}
		if len(got) > 0 && &got[0] == &want[0] {
			t.Fatal("skyline clone shares backing memory")
		}
	}

	if ix.MemBytes() <= 0 || ecs.MemBytes() <= 0 {
		t.Fatalf("MemBytes: ix=%d ecs=%d, want > 0", ix.MemBytes(), ecs.MemBytes())
	}
	if cix.MemBytes() != ix.MemBytes() || cecs.MemBytes() != ecs.MemBytes() {
		t.Fatal("clone MemBytes differ from the original")
	}
}
