package vct

import (
	"sync"

	"temporalkcore/internal/ds"
	"temporalkcore/internal/tgraph"
)

// Scratch holds every piece of working state the CoreTime builder needs —
// the core-time and record vectors, the pair/incidence pointers, the
// worklist and its membership bits, and the output arenas — so repeated
// Build calls on the same graph reuse one allocation high-water mark
// instead of re-allocating ~10 O(|V|)/O(|pairs|) slices per query.
//
// A Scratch is size-adaptive: prepare grows every buffer to the needs of
// the (graph, k, window) at hand and retains the capacity afterwards, so a
// Scratch cycled through a sync.Pool converges to the largest query it has
// served. The zero value is ready to use. A Scratch must not be used by two
// builds concurrently; use one Scratch per worker (see core.QueryBatch).
type Scratch struct {
	ct      []tgraph.TS // current core time per vertex
	lastRec []tgraph.TS // last value recorded into the index
	pairPtr []int32     // per pair: first time index >= current start
	incPtr  []int32     // per vertex: first incident edge with time >= current start

	ect []tgraph.TS // per edge (eid-lo): current edge core time

	q       ds.Queue
	inQ     []bool
	buf     []tgraph.TS  // k-slot selection buffer of eval/lowerBound
	changed []tgraph.VID // vertices raised during the current transition
	chMark  []bool

	vctRecs []vctRec
	ecsRecs []ecsRec

	cur []int32 // counting-sort cursor of the output assembly

	// Patch-only state (see PatchScratch). frozen is truncated to zero
	// length by prepare, so normal builds skip the frozen gate in push.
	frozen []bool  // per vertex: cached core time is exact, keep pinned
	entIdx []int32 // per vertex: absolute index of its active cached entry
	bktOff []int32 // cached entries bucketed by start time
	bktU   []tgraph.VID

	// Arena-backed outputs of BuildScratch; aliased, not returned to
	// callers of the copying Build.
	ix  Index
	ecs ECS
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch takes a Scratch from the shared pool.
//
// tkc:pool-get
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns a Scratch to the shared pool. The caller must not use
// the Scratch — or any BuildScratch output backed by it — afterwards.
//
// tkc:pool-put
func PutScratch(s *Scratch) { scratchPool.Put(s) }

// prepare sizes the scratch for one build. Buffers that the build fully
// overwrites are only re-lengthed; the worklist state is cleared.
func (s *Scratch) prepare(g *tgraph.Graph, nEdges int) {
	n := g.NumVertices()
	s.ct = ds.Grow(s.ct, n)
	s.lastRec = ds.Grow(s.lastRec, n)
	s.pairPtr = ds.Grow(s.pairPtr, g.NumPairs())
	s.incPtr = ds.Grow(s.incPtr, n)
	s.ect = ds.Grow(s.ect, nEdges)
	s.inQ = ds.GrowZero(s.inQ, n)
	s.chMark = ds.GrowZero(s.chMark, n)
	s.q.Reset()
	s.frozen = s.frozen[:0]
	s.buf = s.buf[:0]
	s.changed = s.changed[:0]
	s.vctRecs = s.vctRecs[:0]
	s.ecsRecs = s.ecsRecs[:0]
}
