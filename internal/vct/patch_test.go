package vct_test

import (
	"math/rand"
	"testing"

	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// randomStream generates a time-ordered random edge list and a cut index
// such that every edge after the cut has a time >= every edge before it.
func randomStream(r *rand.Rand) (prefix, suffix []tgraph.RawEdge) {
	n := 5 + r.Intn(25)
	m := 20 + r.Intn(200)
	var all []tgraph.RawEdge
	time := int64(1)
	for len(all) < m {
		if r.Intn(3) == 0 {
			time++
		}
		all = append(all, tgraph.RawEdge{
			U:    int64(r.Intn(n)),
			V:    int64(r.Intn(n)),
			Time: time,
		})
	}
	cutTime := 1 + int64(float64(time)*(0.5+0.4*r.Float64()))
	for _, e := range all {
		if e.Time <= cutTime {
			prefix = append(prefix, e)
		} else {
			suffix = append(suffix, e)
		}
	}
	return prefix, suffix
}

func indexesEqual(t *testing.T, g *tgraph.Graph, a, b *vct.Index) bool {
	t.Helper()
	if a.K != b.K || a.Range != b.Range || a.Size() != b.Size() {
		return false
	}
	for u := 0; u < g.NumVertices(); u++ {
		ea, eb := a.Entries(tgraph.VID(u)), b.Entries(tgraph.VID(u))
		if len(ea) != len(eb) {
			return false
		}
		for i := range ea {
			if ea[i] != eb[i] {
				return false
			}
		}
	}
	return true
}

func ecsEqual(t *testing.T, a, b *vct.ECS) bool {
	t.Helper()
	alo, ahi := a.EdgeRange()
	blo, bhi := b.EdgeRange()
	if alo != blo || ahi != bhi || a.Size() != b.Size() {
		return false
	}
	for e := alo; e < ahi; e++ {
		wa, wb := a.Windows(e), b.Windows(e)
		if len(wa) != len(wb) {
			return false
		}
		for i := range wa {
			if wa[i] != wb[i] {
				return false
			}
		}
	}
	return true
}

// TestPatchMatchesBuild checks that patching a cached index across appends
// and window moves produces exactly the tables a from-scratch build does.
func TestPatchMatchesBuild(t *testing.T) {
	var scratch vct.Scratch
	patchedRuns := 0
	for seed := int64(0); seed < 30; seed++ {
		r := rand.New(rand.NewSource(seed))
		prefix, suffix := randomStream(r)
		if len(prefix) == 0 || len(suffix) == 0 {
			continue
		}
		g, err := tgraph.FromRawEdges(prefix)
		if err != nil {
			continue
		}
		oldTMax := g.TMax()
		for _, k := range []int{2, 3} {
			// Cache built on the pre-append state over a random window —
			// sometimes ending BEFORE the pre-append frontier, so the
			// patch crosses the cached range end mid-loop (the dirty
			// time-suffix then starts strictly inside the window).
			ws := tgraph.TS(1 + r.Intn(int(oldTMax)))
			we := oldTMax - tgraph.TS(r.Intn(3))
			if we < ws {
				we = ws
			}
			wOld := tgraph.Window{Start: ws, End: we}
			cached, _, err := vct.Build(g, k, wOld)
			if err != nil {
				t.Fatalf("seed %d k %d: Build cached: %v", seed, k, err)
			}

			st, err := g.Append(suffix)
			if err != nil {
				t.Fatalf("seed %d: Append: %v", seed, err)
			}
			if st.Added == 0 {
				break
			}

			newTMax := g.TMax()
			windows := []tgraph.Window{
				{Start: ws, End: newTMax},                        // extended end
				{Start: ws + tgraph.TS(r.Intn(3)), End: newTMax}, // slide start too
				{Start: ws, End: oldTMax},                        // same end, dirty tail
			}
			for _, wNew := range windows {
				if !wNew.Valid() || wNew.End > newTMax {
					continue
				}
				wantIx, wantEcs, err := vct.Build(g, k, wNew)
				if err != nil {
					t.Fatalf("seed %d: Build want: %v", seed, err)
				}
				gotIx, gotEcs, patched, err := vct.PatchScratch(g, k, wNew, cached, st.FirstNewRank, &scratch)
				if err != nil {
					t.Fatalf("seed %d: Patch: %v", seed, err)
				}
				if patched {
					patchedRuns++
				}
				if !indexesEqual(t, g, gotIx, wantIx) {
					t.Fatalf("seed %d k %d w %v: patched VCT differs from built VCT (cached %v, dirtyFrom %d)",
						seed, k, wNew, wOld, st.FirstNewRank)
				}
				if !ecsEqual(t, gotEcs, wantEcs) {
					t.Fatalf("seed %d k %d w %v: patched ECS differs from built ECS", seed, k, wNew)
				}
			}
			// Rebuild the pre-append graph for the next k round.
			g, err = tgraph.FromRawEdges(prefix)
			if err != nil {
				t.Fatal(err)
			}
		}
	}
	if patchedRuns == 0 {
		t.Fatal("no run exercised the patched path; the test is vacuous")
	}
}

// TestPatchCleanWindowMoves patches with no appends at all (dirtyFrom
// infinite): shrinking the end or sliding the start must still reproduce
// the scratch build exactly.
func TestPatchCleanWindowMoves(t *testing.T) {
	var scratch vct.Scratch
	for seed := int64(100); seed < 110; seed++ {
		r := rand.New(rand.NewSource(seed))
		prefix, suffix := randomStream(r)
		g, err := tgraph.FromRawEdges(append(prefix, suffix...))
		if err != nil {
			continue
		}
		tmax := g.TMax()
		if tmax < 4 {
			continue
		}
		k := 2
		cached, _, err := vct.Build(g, k, tgraph.Window{Start: 1, End: tmax})
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []tgraph.Window{
			{Start: 1, End: tmax - 1},
			{Start: 2, End: tmax},
			{Start: 1 + tmax/4, End: tmax - tmax/4},
		} {
			if !w.Valid() {
				continue
			}
			wantIx, wantEcs, err := vct.Build(g, k, w)
			if err != nil {
				t.Fatal(err)
			}
			gotIx, gotEcs, patched, err := vct.PatchScratch(g, k, w, cached, tgraph.InfTime, &scratch)
			if err != nil {
				t.Fatal(err)
			}
			if !patched {
				t.Fatalf("seed %d w %v: expected a patched build", seed, w)
			}
			if !indexesEqual(t, g, gotIx, wantIx) || !ecsEqual(t, gotEcs, wantEcs) {
				t.Fatalf("seed %d w %v: clean patch differs from build", seed, w)
			}
		}
	}
}

// TestPatchPartialRange extends query windows backwards past the cached
// range start — the case that used to force a full rebuild — and requires
// the partial-range patch to reproduce the scratch build exactly, both
// with and without appended dirty suffixes.
func TestPatchPartialRange(t *testing.T) {
	var scratch vct.Scratch
	patchedRuns := 0
	for seed := int64(200); seed < 230; seed++ {
		r := rand.New(rand.NewSource(seed))
		prefix, suffix := randomStream(r)
		if len(prefix) == 0 {
			continue
		}
		g, err := tgraph.FromRawEdges(prefix)
		if err != nil {
			continue
		}
		oldTMax := g.TMax()
		if oldTMax < 6 {
			continue
		}
		k := 2
		// Cache covers only a suffix of the eventual query window.
		cs := tgraph.TS(2 + r.Intn(int(oldTMax)/3))
		cached, _, err := vct.Build(g, k, tgraph.Window{Start: cs, End: oldTMax})
		if err != nil {
			t.Fatal(err)
		}
		dirtyFrom := tgraph.InfTime
		if len(suffix) > 0 && r.Intn(2) == 0 {
			st, err := g.Append(suffix)
			if err != nil {
				t.Fatal(err)
			}
			if st.Added > 0 {
				dirtyFrom = st.FirstNewRank
			}
		}
		for _, w := range []tgraph.Window{
			{Start: 1, End: g.TMax()},      // extend past the cached start
			{Start: cs - 1, End: g.TMax()}, // one step before it
			{Start: 1, End: oldTMax},       // old frontier end
			{Start: cs + 1, End: g.TMax()}, // still inside (regression guard)
		} {
			if !w.Valid() || w.End > g.TMax() {
				continue
			}
			wantIx, wantEcs, err := vct.Build(g, k, w)
			if err != nil {
				t.Fatal(err)
			}
			gotIx, gotEcs, patched, err := vct.PatchScratch(g, k, w, cached, dirtyFrom, &scratch)
			if err != nil {
				t.Fatalf("seed %d w %v: %v", seed, w, err)
			}
			if patched && w.Start < cs {
				patchedRuns++
			}
			if !indexesEqual(t, g, gotIx, wantIx) || !ecsEqual(t, gotEcs, wantEcs) {
				t.Fatalf("seed %d w %v (cached [%d,%d], dirtyFrom %d, patched %v): partial-range patch differs from build",
					seed, w, cs, oldTMax, dirtyFrom, patched)
			}
		}
	}
	if patchedRuns == 0 {
		t.Fatal("no run exercised the partial-range patched path; the test is vacuous")
	}
}

// TestPatchFallsBack covers the conditions under which the cache is
// unusable and a full build must run.
func TestPatchFallsBack(t *testing.T) {
	g := tgraph.MustFromTriples(
		[3]int64{1, 2, 1}, [3]int64{2, 3, 2}, [3]int64{1, 3, 3}, [3]int64{2, 4, 4},
	)
	full := tgraph.Window{Start: 1, End: g.TMax()}
	cached, _, err := vct.Build(g, 2, full)
	if err != nil {
		t.Fatal(err)
	}
	var s vct.Scratch
	// Nil cache.
	if _, _, patched, err := vct.PatchScratch(g, 2, full, nil, 1, &s); err != nil || patched {
		t.Fatalf("nil cache: patched=%v err=%v", patched, err)
	}
	// Different k.
	if _, _, patched, err := vct.PatchScratch(g, 3, full, cached, tgraph.InfTime, &s); err != nil || patched {
		t.Fatalf("k mismatch: patched=%v err=%v", patched, err)
	}
	// Cached range starts after the requested window: the overlap is
	// still usable (partial-range mode), so this patches.
	late, _, err := vct.Build(g, 2, tgraph.Window{Start: 2, End: g.TMax()})
	if err != nil {
		t.Fatal(err)
	}
	wantIx, wantEcs, err := vct.Build(g, 2, full)
	if err != nil {
		t.Fatal(err)
	}
	gotIx, gotEcs, patched, err := vct.PatchScratch(g, 2, full, late, tgraph.InfTime, &s)
	if err != nil || !patched {
		t.Fatalf("late cache with clean overlap: patched=%v err=%v", patched, err)
	}
	if !indexesEqual(t, g, gotIx, wantIx) || !ecsEqual(t, gotEcs, wantEcs) {
		t.Fatal("late-cache patch differs from build")
	}
	// Late cache that is dirty from its very first covered start proves
	// nothing and must fall back.
	if _, _, patched, err := vct.PatchScratch(g, 2, full, late, 2, &s); err != nil || patched {
		t.Fatalf("late cache, no clean overlap: patched=%v err=%v", patched, err)
	}
	// Everything dirty.
	if _, _, patched, err := vct.PatchScratch(g, 2, full, cached, 1, &s); err != nil || patched {
		t.Fatalf("all dirty: patched=%v err=%v", patched, err)
	}
}

// TestPatchStop cancels a patch mid-settle: PatchScratchStop must return
// ErrStopped, leave the cached index intact, and leave the Scratch fully
// reusable for an immediately following (uncancelled) patch that matches a
// scratch build exactly.
func TestPatchStop(t *testing.T) {
	var scratch vct.Scratch
	stoppedRuns := 0
	for seed := int64(0); seed < 40 && stoppedRuns == 0; seed++ {
		r := rand.New(rand.NewSource(seed))
		prefix, suffix := randomStream(r)
		if len(prefix) == 0 || len(suffix) == 0 {
			continue
		}
		g, err := tgraph.FromRawEdges(prefix)
		if err != nil {
			continue
		}
		cached, _, err := vct.Build(g, 2, g.FullWindow())
		if err != nil {
			t.Fatal(err)
		}
		st, err := g.Append(suffix)
		if err != nil || st.Added == 0 {
			continue
		}
		w := g.FullWindow()

		// Fire the hook on its first poll: with a bounded stride the patch
		// must abandon promptly wherever it happens to be.
		_, _, _, err = vct.PatchScratchStop(g, 2, w, cached, st.FirstNewRank, &scratch, func() bool { return true })
		if err == nil {
			continue // patch finished before the first poll; try another seed
		}
		if err != vct.ErrStopped {
			t.Fatalf("seed %d: PatchScratchStop = %v, want ErrStopped", seed, err)
		}
		stoppedRuns++

		// The scratch and the cache must both still be good.
		wantIx, wantEcs, err := vct.Build(g, 2, w)
		if err != nil {
			t.Fatal(err)
		}
		gotIx, gotEcs, patched, err := vct.PatchScratchStop(g, 2, w, cached, st.FirstNewRank, &scratch, nil)
		if err != nil || !patched {
			t.Fatalf("seed %d: retry after stop: patched=%v err=%v", seed, patched, err)
		}
		if !indexesEqual(t, g, gotIx, wantIx) || !ecsEqual(t, gotEcs, wantEcs) {
			t.Fatalf("seed %d: patch after a stopped patch differs from build", seed)
		}
	}
	if stoppedRuns == 0 {
		t.Skip("no seed produced a patch long enough to observe the stop")
	}
}

// TestPatchStopFallback: the stop hook also covers the full-rebuild
// fallback (nil cache).
func TestPatchStopFallback(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	prefix, _ := randomStream(r)
	g, err := tgraph.FromRawEdges(prefix)
	if err != nil {
		t.Fatal(err)
	}
	var s vct.Scratch
	_, _, patched, err := vct.PatchScratchStop(g, 2, g.FullWindow(), nil, 1, &s, func() bool { return true })
	if patched {
		t.Fatal("nil cache reported patched")
	}
	if err != nil && err != vct.ErrStopped {
		t.Fatalf("fallback stop: %v", err)
	}
}
