package vct

import (
	"cmp"
	"errors"
	"fmt"
	"slices"

	"temporalkcore/internal/ds"
	"temporalkcore/internal/tgraph"
)

// ErrStopped is returned by BuildScratchStop when its stop hook fired
// before the build completed. Callers translate it to their own
// cancellation error (typically ctx.Err()).
var ErrStopped = errors.New("vct: build stopped")

// Build computes the vertex core time index and the edge core window
// skylines of g for parameter k over the query range w (Algorithm 2 plus
// the single-k PHC computation it builds on). k must be >= 1 and w must be a
// valid window inside [1, g.TMax()].
//
// Build draws its working state from the shared scratch pool and returns
// freshly allocated outputs that the caller may retain indefinitely. For
// the repeated-query hot path that drops the outputs after enumerating,
// BuildScratch avoids even the output allocations.
func Build(g *tgraph.Graph, k int, w tgraph.Window) (*Index, *ECS, error) {
	return BuildStop(g, k, w, nil)
}

// BuildStop is Build with a cancellation hook (see BuildScratchStop for the
// polling contract): the outputs are freshly allocated and self-owned, so
// callers that retain tables indefinitely — the serving cache — get memory
// no scratch arena can later reclaim.
//
// tkc:cancellable
func BuildStop(g *tgraph.Graph, k int, w tgraph.Window, stop func() bool) (*Index, *ECS, error) {
	if err := validate(g, k, w); err != nil {
		return nil, nil, err
	}
	s := GetScratch()
	defer PutScratch(s)
	b := newBuilder(g, k, w, s)
	b.stop = stop
	b.run()
	if b.stopped {
		return nil, nil, ErrStopped
	}
	return b.index(), b.skylines(), nil
}

// BuildScratch is Build with caller-owned working state: the returned Index
// and ECS are backed by s's arenas and stay valid only until the next build
// with s (or until s is returned to the pool). Between builds with separate
// Scratch values there is no shared state, so concurrent use is safe as
// long as each goroutine brings its own Scratch.
func BuildScratch(g *tgraph.Graph, k int, w tgraph.Window, s *Scratch) (*Index, *ECS, error) {
	return BuildScratchStop(g, k, w, s, nil)
}

// BuildScratchStop is BuildScratch with a cancellation hook: stop (when
// non-nil) is polled every stopStride worklist pops of the settle loop and
// once per start-time transition. When it fires the build abandons its
// partial state (the Scratch stays reusable) and returns ErrStopped, so a
// runaway CoreTime phase cancels within one stride of work.
//
// tkc:cancellable
func BuildScratchStop(g *tgraph.Graph, k int, w tgraph.Window, s *Scratch, stop func() bool) (*Index, *ECS, error) {
	if err := validate(g, k, w); err != nil {
		return nil, nil, err
	}
	b := newBuilder(g, k, w, s)
	b.stop = stop
	b.run()
	if b.stopped {
		return nil, nil, ErrStopped
	}
	b.indexInto(&s.ix)
	b.skylinesInto(&s.ecs)
	return &s.ix, &s.ecs, nil
}

const inf = tgraph.InfTime

type vctRec struct {
	u     tgraph.VID
	entry Entry
}

type ecsRec struct {
	e   tgraph.EID
	win tgraph.Window
}

// stopStride bounds how much settle work runs between cancellation polls.
const stopStride = 2048

type builder struct {
	g *tgraph.Graph
	k int
	w tgraph.Window

	lo, hi tgraph.EID // edges inside w

	stop    func() bool // optional cancellation hook, polled with a stride
	stopped bool

	*Scratch
}

func validate(g *tgraph.Graph, k int, w tgraph.Window) error {
	if k < 1 {
		return fmt.Errorf("vct: k must be >= 1, got %d", k)
	}
	if !w.Valid() || w.End > g.TMax() {
		return fmt.Errorf("vct: window [%d,%d] outside graph range [1,%d]", w.Start, w.End, g.TMax())
	}
	return nil
}

func newBuilder(g *tgraph.Graph, k int, w tgraph.Window, s *Scratch) builder {
	lo, hi := g.EdgesIn(w)
	s.prepare(g, int(hi-lo))
	return builder{g: g, k: k, w: w, lo: lo, hi: hi, Scratch: s}
}

func (b *builder) run() {
	g, w := b.g, b.w

	// Position every pair pointer at the first interaction >= w.Start, and
	// every incidence pointer at the first incident edge inside the window.
	// Both arrays are time sorted, so a binary search replaces the full
	// linear scan; incident edge ids ascend with time, so the incidence
	// search compares ids against b.lo directly.
	for p := 0; p < g.NumPairs(); p++ {
		b.pairPtr[p] = searchGE(g.PairTimes(int32(p)), w.Start)
	}
	for u := 0; u < g.NumVertices(); u++ {
		b.incPtr[u] = searchGE(g.Incident(tgraph.VID(u)), b.lo)
	}

	// Lower-bound initialisation: k-th smallest usable first time.
	for u := 0; u < g.NumVertices(); u++ {
		b.ct[u] = b.lowerBound(tgraph.VID(u))
	}
	// Fixed point for the first start time.
	for u := 0; u < g.NumVertices(); u++ {
		if b.ct[u] != inf {
			b.push(tgraph.VID(u))
		}
	}
	b.settle(false)
	if b.stopped {
		return
	}

	// Record the initial index labels and edge core times.
	for u := 0; u < g.NumVertices(); u++ {
		b.lastRec[u] = b.ct[u]
		if b.ct[u] != inf {
			b.vctRecs = append(b.vctRecs, vctRec{u: tgraph.VID(u), entry: Entry{Start: w.Start, CT: b.ct[u]}})
		}
	}
	for e := b.lo; e < b.hi; e++ {
		te := g.Edge(e)
		b.ect[e-b.lo] = maxTS3(b.ct[te.U], b.ct[te.V], te.T)
	}

	// Advance the start time.
	for s := w.Start; s < w.End; s++ {
		b.transition(s)
		if b.stopped {
			return
		}
	}

	// Flush the final windows of edges alive at the last start time (their
	// timestamp is exactly w.End; everything earlier expired in the loop).
	elo, ehi := g.EdgesAt(w.End)
	for e := elo; e < ehi; e++ {
		if v := b.ect[e-b.lo]; v != inf {
			b.ecsRecs = append(b.ecsRecs, ecsRec{e: e, win: tgraph.Window{Start: w.End, End: v}})
		}
	}
}

// transition moves the start time from s to s+1.
func (b *builder) transition(s tgraph.TS) {
	b.expire(s)

	// Re-settle the fixed point for start time s+1.
	b.settle(true)
	if b.stopped {
		return
	}

	b.record(s)
}

// expire handles the edges timestamped s leaving the window: it flushes
// their final skyline window ([s, ect] with last valid start s = t_e) and
// advances the pair pointers, seeding the worklist with the affected
// endpoints.
func (b *builder) expire(s tgraph.TS) {
	g := b.g
	elo, ehi := g.EdgesAt(s)
	for e := elo; e < ehi; e++ {
		if v := b.ect[e-b.lo]; v != inf {
			b.ecsRecs = append(b.ecsRecs, ecsRec{e: e, win: tgraph.Window{Start: s, End: v}})
		}
	}
	for e := elo; e < ehi; e++ {
		p := g.EdgePair(e)
		pr := g.Pair(p)
		times := g.PairTimes(p)
		j := b.pairPtr[p]
		for int(j) < len(times) && times[j] <= s {
			j++
		}
		b.pairPtr[p] = j
		b.push(pr.U)
		b.push(pr.V)
	}
}

// record logs the vertices whose core time changed in the transition from
// start time s and updates the core times of their alive incident edges
// (Algorithm 2 lines 6-11).
func (b *builder) record(s tgraph.TS) {
	g := b.g
	for _, u := range b.changed {
		b.chMark[u] = false
		if b.ct[u] == b.lastRec[u] {
			continue
		}
		b.lastRec[u] = b.ct[u]
		b.vctRecs = append(b.vctRecs, vctRec{u: u, entry: Entry{Start: s + 1, CT: b.ct[u]}})

		inc := g.Incident(u)
		j := b.incPtr[u]
		for int(j) < len(inc) && g.Edge(inc[j]).T <= s {
			j++
		}
		b.incPtr[u] = j
		for ; int(j) < len(inc); j++ {
			e := inc[j]
			te := g.Edge(e)
			if te.T > b.w.End {
				break
			}
			nv := maxTS3(b.ct[te.U], b.ct[te.V], te.T)
			old := b.ect[e-b.lo]
			if nv > old {
				if old != inf {
					b.ecsRecs = append(b.ecsRecs, ecsRec{e: e, win: tgraph.Window{Start: s, End: old}})
				}
				b.ect[e-b.lo] = nv
			}
		}
	}
	b.changed = b.changed[:0]
}

// settle runs the worklist until no core time can be raised. When track is
// true the raised vertices are appended to b.changed. A cancelled build
// abandons the worklist mid-settle; callers check b.stopped. The stop hook
// poll is hoisted behind a single predictable branch plus a local stride
// counter so uncancellable builds pay nothing on this hot loop.
func (b *builder) settle(track bool) {
	poll := b.stop != nil
	tick := 0
	for b.q.Len() > 0 {
		if poll {
			if tick++; tick&(stopStride-1) == 0 && b.stop() {
				b.stopped = true
				return
			}
		}
		u := tgraph.VID(b.q.Pop())
		b.inQ[u] = false
		nv := b.eval(u)
		if nv <= b.ct[u] {
			continue
		}
		b.ct[u] = nv
		if track && !b.chMark[u] {
			b.chMark[u] = true
			b.changed = append(b.changed, u)
		}
		for _, nb := range b.g.Neighbours(u) {
			if b.ct[nb.V] != inf {
				b.push(nb.V)
			}
		}
	}
}

func (b *builder) push(u tgraph.VID) {
	if b.inQ[u] || b.ct[u] == inf {
		return
	}
	// Patched builds pin vertices whose cached core time is still exact;
	// they never enter the worklist (len(frozen) is 0 on normal builds).
	if len(b.frozen) > 0 && b.frozen[u] {
		return
	}
	b.inQ[u] = true
	b.q.Push(int32(u))
}

// insertKth pushes v into the ascending k-slot selection buffer, keeping
// only the k smallest values seen so far. Once the buffer is saturated most
// candidates fail the single buf[k-1] comparison, so F(CT) evaluation costs
// O(deg + k·shifts) instead of the O(deg·log deg) of a full sort.
func (b *builder) insertKth(v tgraph.TS) {
	buf := b.buf
	i := len(buf)
	if i == b.k {
		if v >= buf[i-1] {
			return
		}
		i--
	} else {
		buf = append(buf, 0)
	}
	for i > 0 && buf[i-1] > v {
		buf[i] = buf[i-1]
		i--
	}
	buf[i] = v
	b.buf = buf
}

// eval computes F(CT)(u): the k-th smallest max(CT(v), firstTime(u,v)) over
// usable neighbours.
func (b *builder) eval(u tgraph.VID) tgraph.TS {
	b.buf = b.buf[:0]
	for _, nb := range b.g.Neighbours(u) {
		cv := b.ct[nb.V]
		if cv == inf {
			continue
		}
		p := nb.Pair
		pr := b.g.Pair(p)
		j := b.pairPtr[p]
		if j >= pr.Len {
			continue
		}
		ft := b.g.PairTimes(p)[j]
		if ft > b.w.End {
			continue
		}
		if ft > cv {
			cv = ft
		}
		b.insertKth(cv)
	}
	if len(b.buf) < b.k {
		return inf
	}
	return b.buf[b.k-1]
}

// lowerBound is the k-th smallest usable first time of u's pairs, a valid
// lower bound on the core time.
func (b *builder) lowerBound(u tgraph.VID) tgraph.TS {
	b.buf = b.buf[:0]
	for _, nb := range b.g.Neighbours(u) {
		p := nb.Pair
		pr := b.g.Pair(p)
		j := b.pairPtr[p]
		if j >= pr.Len {
			continue
		}
		ft := b.g.PairTimes(p)[j]
		if ft > b.w.End {
			continue
		}
		b.insertKth(ft)
	}
	if len(b.buf) < b.k {
		return inf
	}
	return b.buf[b.k-1]
}

// index assembles the recorded labels into a freshly allocated Index.
func (b *builder) index() *Index {
	ix := &Index{}
	b.fillIndex(ix, make([]int32, b.g.NumVertices()+1), make([]Entry, len(b.vctRecs)))
	return ix
}

// indexInto assembles the recorded labels into ix reusing its arenas.
func (b *builder) indexInto(ix *Index) {
	b.fillIndex(ix, ds.GrowZero(ix.off, b.g.NumVertices()+1), ds.Grow(ix.entries, len(b.vctRecs)))
}

// fillIndex performs a stable counting sort of the records by vertex
// (records are already in ascending start order). off must be zeroed.
func (b *builder) fillIndex(ix *Index, off []int32, entries []Entry) {
	n := b.g.NumVertices()
	ix.K, ix.Range, ix.off, ix.entries = b.k, b.w, off, entries
	for _, r := range b.vctRecs {
		off[r.u+1]++
	}
	for u := 0; u < n; u++ {
		off[u+1] += off[u]
	}
	cur := ds.Grow(b.cur, n)
	copy(cur, off[:n])
	for _, r := range b.vctRecs {
		entries[cur[r.u]] = r.entry
		cur[r.u]++
	}
	b.cur = cur
}

// skylines assembles the recorded windows into a freshly allocated ECS.
func (b *builder) skylines() *ECS {
	e := &ECS{}
	b.fillSkylines(e, make([]int32, int(b.hi-b.lo)+1), make([]tgraph.Window, len(b.ecsRecs)))
	return e
}

// skylinesInto assembles the recorded windows into e reusing its arenas.
func (b *builder) skylinesInto(e *ECS) {
	b.fillSkylines(e, ds.GrowZero(e.off, int(b.hi-b.lo)+1), ds.Grow(e.wins, len(b.ecsRecs)))
}

// fillSkylines performs a stable counting sort of the windows by edge
// (per-edge order is ascending start = emission order). off must be zeroed.
func (b *builder) fillSkylines(e *ECS, off []int32, wins []tgraph.Window) {
	m := int(b.hi - b.lo)
	e.K, e.Range, e.lo, e.hi, e.off, e.wins = b.k, b.w, b.lo, b.hi, off, wins
	for _, r := range b.ecsRecs {
		off[r.e-b.lo+1]++
	}
	for i := 0; i < m; i++ {
		off[i+1] += off[i]
	}
	cur := ds.Grow(b.cur, m)
	copy(cur, off[:m])
	for _, r := range b.ecsRecs {
		wins[cur[r.e-b.lo]] = r.win
		cur[r.e-b.lo]++
	}
	b.cur = cur
}

// searchGE returns the first index of xs (ascending) holding a value >= v.
func searchGE[T cmp.Ordered](xs []T, v T) int32 {
	i, _ := slices.BinarySearch(xs, v)
	return int32(i)
}

func maxTS3(a, b, c tgraph.TS) tgraph.TS {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	if a >= inf {
		return inf
	}
	return a
}
