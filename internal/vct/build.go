package vct

import (
	"fmt"
	"slices"

	"temporalkcore/internal/ds"
	"temporalkcore/internal/tgraph"
)

// Build computes the vertex core time index and the edge core window
// skylines of g for parameter k over the query range w (Algorithm 2 plus
// the single-k PHC computation it builds on). k must be >= 1 and w must be a
// valid window inside [1, g.TMax()].
func Build(g *tgraph.Graph, k int, w tgraph.Window) (*Index, *ECS, error) {
	if k < 1 {
		return nil, nil, fmt.Errorf("vct: k must be >= 1, got %d", k)
	}
	if !w.Valid() || w.End > g.TMax() {
		return nil, nil, fmt.Errorf("vct: window [%d,%d] outside graph range [1,%d]", w.Start, w.End, g.TMax())
	}
	b := newBuilder(g, k, w)
	b.run()
	return b.index(), b.skylines(), nil
}

const inf = tgraph.InfTime

type vctRec struct {
	u     tgraph.VID
	entry Entry
}

type ecsRec struct {
	e   tgraph.EID
	win tgraph.Window
}

type builder struct {
	g *tgraph.Graph
	k int
	w tgraph.Window

	ct      []tgraph.TS // current core time per vertex
	lastRec []tgraph.TS // last value recorded into the index
	pairPtr []int32     // per pair: first time index >= current start
	incPtr  []int32     // per vertex: first incident edge with time >= current start

	lo, hi tgraph.EID  // edges inside w
	ect    []tgraph.TS // per edge (eid-lo): current edge core time

	q       ds.Queue
	inQ     []bool
	buf     []tgraph.TS
	changed []tgraph.VID // vertices raised during the current transition
	chMark  []bool

	vctRecs []vctRec
	ecsRecs []ecsRec
}

func newBuilder(g *tgraph.Graph, k int, w tgraph.Window) *builder {
	n := g.NumVertices()
	lo, hi := g.EdgesIn(w)
	b := &builder{
		g: g, k: k, w: w,
		ct:      make([]tgraph.TS, n),
		lastRec: make([]tgraph.TS, n),
		pairPtr: make([]int32, g.NumPairs()),
		incPtr:  make([]int32, n),
		lo:      lo, hi: hi,
		ect:    make([]tgraph.TS, hi-lo),
		inQ:    make([]bool, n),
		chMark: make([]bool, n),
	}
	return b
}

func (b *builder) run() {
	g, w := b.g, b.w

	// Position every pair pointer at the first interaction >= w.Start, and
	// every incidence pointer at the first incident edge inside the window.
	for p := 0; p < g.NumPairs(); p++ {
		times := g.PairTimes(int32(p))
		j := 0
		for j < len(times) && times[j] < w.Start {
			j++
		}
		b.pairPtr[p] = int32(j)
	}
	for u := 0; u < g.NumVertices(); u++ {
		inc := g.Incident(tgraph.VID(u))
		j := 0
		for j < len(inc) && g.Edge(inc[j]).T < w.Start {
			j++
		}
		b.incPtr[u] = int32(j)
	}

	// Lower-bound initialisation: k-th smallest usable first time.
	for u := 0; u < g.NumVertices(); u++ {
		b.ct[u] = b.lowerBound(tgraph.VID(u))
	}
	// Fixed point for the first start time.
	for u := 0; u < g.NumVertices(); u++ {
		if b.ct[u] != inf {
			b.push(tgraph.VID(u))
		}
	}
	b.settle(false)

	// Record the initial index labels and edge core times.
	for u := 0; u < g.NumVertices(); u++ {
		b.lastRec[u] = b.ct[u]
		if b.ct[u] != inf {
			b.vctRecs = append(b.vctRecs, vctRec{u: tgraph.VID(u), entry: Entry{Start: w.Start, CT: b.ct[u]}})
		}
	}
	for e := b.lo; e < b.hi; e++ {
		te := g.Edge(e)
		b.ect[e-b.lo] = maxTS3(b.ct[te.U], b.ct[te.V], te.T)
	}

	// Advance the start time.
	for s := w.Start; s < w.End; s++ {
		b.transition(s)
	}

	// Flush the final windows of edges alive at the last start time (their
	// timestamp is exactly w.End; everything earlier expired in the loop).
	elo, ehi := g.EdgesAt(w.End)
	for e := elo; e < ehi; e++ {
		if v := b.ect[e-b.lo]; v != inf {
			b.ecsRecs = append(b.ecsRecs, ecsRec{e: e, win: tgraph.Window{Start: w.End, End: v}})
		}
	}
}

// transition moves the start time from s to s+1.
func (b *builder) transition(s tgraph.TS) {
	g := b.g

	// Edges timestamped s leave the window: flush their final skyline
	// window ([s, ect] with last valid start s = t_e) and advance the pair
	// pointers, seeding the worklist with the affected endpoints.
	elo, ehi := g.EdgesAt(s)
	for e := elo; e < ehi; e++ {
		if v := b.ect[e-b.lo]; v != inf {
			b.ecsRecs = append(b.ecsRecs, ecsRec{e: e, win: tgraph.Window{Start: s, End: v}})
		}
	}
	for e := elo; e < ehi; e++ {
		p := g.EdgePair(e)
		pr := g.Pair(p)
		times := g.PairTimes(p)
		j := b.pairPtr[p]
		for int(j) < len(times) && times[j] <= s {
			j++
		}
		b.pairPtr[p] = j
		b.push(pr.U)
		b.push(pr.V)
	}

	// Re-settle the fixed point for start time s+1.
	b.settle(true)

	// Record changed vertices and update the core times of their alive
	// incident edges (Algorithm 2 lines 6-11).
	for _, u := range b.changed {
		b.chMark[u] = false
		if b.ct[u] == b.lastRec[u] {
			continue
		}
		b.lastRec[u] = b.ct[u]
		b.vctRecs = append(b.vctRecs, vctRec{u: u, entry: Entry{Start: s + 1, CT: b.ct[u]}})

		inc := g.Incident(u)
		j := b.incPtr[u]
		for int(j) < len(inc) && g.Edge(inc[j]).T <= s {
			j++
		}
		b.incPtr[u] = j
		for ; int(j) < len(inc); j++ {
			e := inc[j]
			te := g.Edge(e)
			if te.T > b.w.End {
				break
			}
			nv := maxTS3(b.ct[te.U], b.ct[te.V], te.T)
			old := b.ect[e-b.lo]
			if nv > old {
				if old != inf {
					b.ecsRecs = append(b.ecsRecs, ecsRec{e: e, win: tgraph.Window{Start: s, End: old}})
				}
				b.ect[e-b.lo] = nv
			}
		}
	}
	b.changed = b.changed[:0]
}

// settle runs the worklist until no core time can be raised. When track is
// true the raised vertices are appended to b.changed.
func (b *builder) settle(track bool) {
	for b.q.Len() > 0 {
		u := tgraph.VID(b.q.Pop())
		b.inQ[u] = false
		nv := b.eval(u)
		if nv <= b.ct[u] {
			continue
		}
		b.ct[u] = nv
		if track && !b.chMark[u] {
			b.chMark[u] = true
			b.changed = append(b.changed, u)
		}
		for _, nb := range b.g.Neighbours(u) {
			if b.ct[nb.V] != inf {
				b.push(nb.V)
			}
		}
	}
}

func (b *builder) push(u tgraph.VID) {
	if b.inQ[u] || b.ct[u] == inf {
		return
	}
	b.inQ[u] = true
	b.q.Push(int32(u))
}

// eval computes F(CT)(u): the k-th smallest max(CT(v), firstTime(u,v)) over
// usable neighbours.
func (b *builder) eval(u tgraph.VID) tgraph.TS {
	b.buf = b.buf[:0]
	for _, nb := range b.g.Neighbours(u) {
		cv := b.ct[nb.V]
		if cv == inf {
			continue
		}
		p := nb.Pair
		pr := b.g.Pair(p)
		j := b.pairPtr[p]
		if j >= pr.Len {
			continue
		}
		ft := b.g.PairTimes(p)[j]
		if ft > b.w.End {
			continue
		}
		if ft > cv {
			cv = ft
		}
		b.buf = append(b.buf, cv)
	}
	if len(b.buf) < b.k {
		return inf
	}
	slices.Sort(b.buf)
	return b.buf[b.k-1]
}

// lowerBound is the k-th smallest usable first time of u's pairs, a valid
// lower bound on the core time.
func (b *builder) lowerBound(u tgraph.VID) tgraph.TS {
	b.buf = b.buf[:0]
	for _, nb := range b.g.Neighbours(u) {
		p := nb.Pair
		pr := b.g.Pair(p)
		j := b.pairPtr[p]
		if j >= pr.Len {
			continue
		}
		ft := b.g.PairTimes(p)[j]
		if ft > b.w.End {
			continue
		}
		b.buf = append(b.buf, ft)
	}
	if len(b.buf) < b.k {
		return inf
	}
	slices.Sort(b.buf)
	return b.buf[b.k-1]
}

// index assembles the recorded labels into the final Index via a stable
// counting sort by vertex (records are already in ascending start order).
func (b *builder) index() *Index {
	n := b.g.NumVertices()
	ix := &Index{K: b.k, Range: b.w, off: make([]int32, n+1)}
	for _, r := range b.vctRecs {
		ix.off[r.u+1]++
	}
	for u := 0; u < n; u++ {
		ix.off[u+1] += ix.off[u]
	}
	ix.entries = make([]Entry, len(b.vctRecs))
	cur := make([]int32, n)
	copy(cur, ix.off[:n])
	for _, r := range b.vctRecs {
		ix.entries[cur[r.u]] = r.entry
		cur[r.u]++
	}
	return ix
}

// skylines assembles the recorded windows into the final ECS, stably
// grouped by edge (per-edge order is ascending start = emission order).
func (b *builder) skylines() *ECS {
	m := int(b.hi - b.lo)
	e := &ECS{K: b.k, Range: b.w, lo: b.lo, hi: b.hi, off: make([]int32, m+1)}
	for _, r := range b.ecsRecs {
		e.off[r.e-b.lo+1]++
	}
	for i := 0; i < m; i++ {
		e.off[i+1] += e.off[i]
	}
	e.wins = make([]tgraph.Window, len(b.ecsRecs))
	cur := make([]int32, m)
	copy(cur, e.off[:m])
	for _, r := range b.ecsRecs {
		e.wins[cur[r.e-b.lo]] = r.win
		cur[r.e-b.lo]++
	}
	return e
}

func maxTS3(a, b, c tgraph.TS) tgraph.TS {
	if b > a {
		a = b
	}
	if c > a {
		a = c
	}
	if a >= inf {
		return inf
	}
	return a
}
