package vct

import (
	"sort"

	"temporalkcore/internal/ds"
	"temporalkcore/internal/tgraph"
)

// PatchScratch rebuilds the CoreTime tables for (g, k, w) like BuildScratch,
// but uses a previously built index as an oracle for everything that cannot
// have changed, so the fixed-point work concentrates on the dirty
// time-suffix instead of the whole window.
//
// cached must be a correct index for the same k whose range overlaps
// [w.Start, w.End], built against an earlier (or identical) state of g, and
// dirtyFrom must be a rank such that every snapshot [ts, te] with
// te < dirtyFrom is unchanged since cached was built. For pure appends that
// is the first rank that received a new edge (tgraph.AppendStats
// FirstNewRank); PatchScratch additionally clamps dirtyFrom to one past the
// cached range end (beyond it the cache proves nothing) and one past w.End
// (a shrunk window invalidates core times that overshoot it). Cached
// entries with CT < dirtyFrom are then exact for the current graph and are
// pinned; everything else re-settles from valid lower bounds.
//
// The cached range need not contain w.Start: when it starts later, the
// prefix [w.Start, cached.Range.Start) runs as a plain build and the oracle
// takes over at the first start time it can vouch for, so a window extended
// backwards past the indexed start still reuses the clean overlap instead
// of rebuilding everything.
//
// cached must not be backed by s (ping-pong two Scratch values to patch an
// index in a loop). The returned Index and ECS are backed by s exactly as
// in BuildScratch. patched reports whether the cache was usable; when it is
// false a full BuildScratch ran instead.
func PatchScratch(g *tgraph.Graph, k int, w tgraph.Window, cached *Index, dirtyFrom tgraph.TS, s *Scratch) (ix *Index, ecs *ECS, patched bool, err error) {
	return PatchScratchStop(g, k, w, cached, dirtyFrom, s, nil)
}

// PatchScratchStop is PatchScratch with a cancellation hook, polled with
// the same bounded stride as BuildScratchStop (every stopStride worklist
// pops of the settle loop and once per start-time transition). When it
// fires the patch abandons its partial state — the Scratch stays reusable,
// the cached index is untouched — and returns ErrStopped, so even a
// live-window refresh over a large dirty suffix cancels within one stride
// of work. The hook also covers the full-rebuild fallback.
//
// tkc:cancellable
func PatchScratchStop(g *tgraph.Graph, k int, w tgraph.Window, cached *Index, dirtyFrom tgraph.TS, s *Scratch, stop func() bool) (ix *Index, ecs *ECS, patched bool, err error) {
	if err := validate(g, k, w); err != nil {
		return nil, nil, false, err
	}
	if cached != nil {
		if dirtyFrom > cached.Range.End+1 {
			dirtyFrom = cached.Range.End + 1
		}
		if dirtyFrom > w.End+1 {
			dirtyFrom = w.End + 1
		}
	}
	// cs is the first start time the oracle can vouch for inside the
	// window; no clean prefix past it means nothing to reuse.
	cs := w.Start
	if cached != nil && cached.Range.Start > cs {
		cs = cached.Range.Start
	}
	if cached == nil || cached.K != k || dirtyFrom <= cs {
		ix, ecs, err := BuildScratchStop(g, k, w, s, stop)
		return ix, ecs, false, err
	}

	p := patcher{
		builder:     newBuilder(g, k, w, s),
		cached:      cached,
		dirtyFrom:   dirtyFrom,
		cachedStart: cs,
	}
	p.stop = stop
	p.cachedEnd = cached.Range.End
	if p.cachedEnd > w.End {
		p.cachedEnd = w.End
	}
	p.run()
	if p.stopped {
		return nil, nil, true, ErrStopped
	}
	p.indexInto(&s.ix)
	p.skylinesInto(&s.ecs)
	return &s.ix, &s.ecs, true, nil
}

type patcher struct {
	builder
	cached      *Index
	dirtyFrom   tgraph.TS
	cachedStart tgraph.TS // first start time the cache can vouch for
	cachedEnd   tgraph.TS // last start time the cache can vouch for
	frozenLive  bool      // some vertex may still be pinned
}

func (p *patcher) run() {
	g, w := p.g, p.w
	n := g.NumVertices()

	// Position the pair and incidence pointers exactly like builder.run.
	for pi := 0; pi < g.NumPairs(); pi++ {
		p.pairPtr[pi] = searchGE(g.PairTimes(int32(pi)), w.Start)
	}
	for u := 0; u < n; u++ {
		p.incPtr[u] = searchGE(g.Incident(tgraph.VID(u)), p.lo)
	}

	p.frozen = ds.GrowZero(p.frozen, n)
	p.entIdx = ds.Grow(p.entIdx, n)
	p.buildBuckets()

	if p.cachedStart == w.Start {
		// First start time: pin vertices whose cached value is still
		// exact; settle the rest from lower bounds (which the dirty
		// threshold tightens — no unchanged snapshot below dirtyFrom holds
		// a core for a dirty vertex, so its new core time is at least
		// dirtyFrom).
		p.frozenLive = true
		cachedN := len(p.cached.off) - 1 // vertices appended since the cache was built have no entries
		for u := 0; u < n; u++ {
			uu := tgraph.VID(u)
			c := inf
			if u < cachedN {
				ents := p.cached.Entries(uu)
				i := sort.Search(len(ents), func(i int) bool { return ents[i].Start > w.Start }) - 1
				p.entIdx[u] = p.cached.off[uu] + int32(i)
				if i >= 0 {
					c = ents[i].CT
				}
			}
			if c < p.dirtyFrom {
				p.ct[u] = c
				p.frozen[u] = true
				continue
			}
			lb := p.lowerBound(uu)
			if lb != inf && lb < p.dirtyFrom {
				lb = p.dirtyFrom
			}
			p.ct[u] = lb
		}
	} else {
		// The cached range starts inside the window: the prefix up to
		// cachedStart has no oracle, so the first start time initialises
		// exactly like a plain build (the dirty threshold says nothing
		// about starts the cache never covered). enterOracle pins what it
		// can once the loop reaches cachedStart.
		for u := 0; u < n; u++ {
			p.ct[u] = p.lowerBound(tgraph.VID(u))
		}
	}
	for u := 0; u < n; u++ {
		if !p.frozen[u] && p.ct[u] != inf {
			p.push(tgraph.VID(u))
		}
	}
	p.settle(false)
	if p.stopped {
		return
	}

	// Record the initial index labels and edge core times (as builder.run).
	for u := 0; u < n; u++ {
		p.lastRec[u] = p.ct[u]
		if p.ct[u] != inf {
			p.vctRecs = append(p.vctRecs, vctRec{u: tgraph.VID(u), entry: Entry{Start: w.Start, CT: p.ct[u]}})
		}
	}
	for e := p.lo; e < p.hi; e++ {
		te := g.Edge(e)
		p.ect[e-p.lo] = maxTS3(p.ct[te.U], p.ct[te.V], te.T)
	}

	for s := w.Start; s < w.End; s++ {
		// Past the cached range nothing is pinned any more: the remaining
		// time-suffix rebuilds exactly like builder.run, starting from the
		// exact values of the previous start. Unpin BEFORE expire so the
		// leaving-edge worklist pushes of this very transition are not
		// dropped by the frozen gate.
		if s+1 > p.cachedEnd && p.frozenLive {
			clear(p.frozen)
			p.frozenLive = false
		}
		p.expire(s)
		if s+1 == p.cachedStart {
			p.enterOracle()
		} else {
			p.applyCache(s + 1)
		}
		p.settle(true)
		if p.stopped {
			return
		}
		p.record(s)
	}

	// Flush the final windows of edges alive at the last start time.
	elo, ehi := g.EdgesAt(w.End)
	for e := elo; e < ehi; e++ {
		if v := p.ect[e-p.lo]; v != inf {
			p.ecsRecs = append(p.ecsRecs, ecsRec{e: e, win: tgraph.Window{Start: w.End, End: v}})
		}
	}
}

// buildBuckets groups the cached entries with start times in
// (cachedStart, cachedEnd] by start, so each transition applies its start's
// cached changes in O(changes) instead of scanning the index. Entries at or
// before cachedStart are consumed wholesale by the initialisation (or by
// enterOracle when the cached range starts inside the window). Buckets stay
// based at w.Start so applyCache's arithmetic is uniform.
func (p *patcher) buildBuckets() {
	span := int(p.cachedEnd) - int(p.w.Start)
	if span < 0 {
		span = 0
	}
	p.bktOff = ds.GrowZero(p.bktOff, span+1)
	total := 0
	for _, e := range p.cached.entries {
		if e.Start > p.cachedStart && e.Start <= p.cachedEnd {
			p.bktOff[e.Start-p.w.Start]++
			total++
		}
	}
	for b := 0; b < span; b++ {
		p.bktOff[b+1] += p.bktOff[b]
	}
	p.bktU = ds.Grow(p.bktU, total)
	cur := ds.Grow(p.cur, span)
	copy(cur, p.bktOff[:span])
	cachedN := len(p.cached.off) - 1
	for u := 0; u < cachedN; u++ {
		for _, e := range p.cached.Entries(tgraph.VID(u)) {
			if e.Start > p.cachedStart && e.Start <= p.cachedEnd {
				b := e.Start - p.w.Start - 1
				p.bktU[cur[b]] = tgraph.VID(u)
				cur[b]++
			}
		}
	}
	p.cur = cur
}

// enterOracle runs on the transition whose new start time is cachedStart,
// the first start the cached index covers: from here on the oracle is
// live. Each vertex's entry pointer is positioned at its last entry with
// Start <= cachedStart; clean cached values (CT < dirtyFrom) are adopted as
// exact and pinned — the current ct is CT(cachedStart-1) <= CT(cachedStart),
// so adoption only ever raises — and dirty vertices tighten to dirtyFrom
// (an unchanged snapshot below dirtyFrom cannot hold a core for them).
func (p *patcher) enterOracle() {
	g := p.g
	n := g.NumVertices()
	cachedN := len(p.cached.off) - 1
	p.frozenLive = true
	for u := 0; u < n; u++ {
		uu := tgraph.VID(u)
		c := inf
		if u < cachedN {
			ents := p.cached.Entries(uu)
			i := sort.Search(len(ents), func(i int) bool { return ents[i].Start > p.cachedStart }) - 1
			p.entIdx[u] = p.cached.off[uu] + int32(i)
			if i >= 0 {
				c = ents[i].CT
			}
		}
		if c < p.dirtyFrom {
			if c > p.ct[u] {
				p.ct[u] = c
				p.markChanged(uu)
				for _, nb := range g.Neighbours(uu) {
					p.push(nb.V)
				}
			}
			p.frozen[u] = true
			continue
		}
		// Dirty: the running ct (exact for the previous start) is already a
		// valid lower bound; only a tightening to dirtyFrom needs pushes.
		if p.dirtyFrom > p.ct[u] {
			p.ct[u] = p.dirtyFrom
			p.markChanged(uu)
			for _, nb := range g.Neighbours(uu) {
				p.push(nb.V)
			}
			p.push(uu)
		}
	}
}

// applyCache replays the cached core-time changes of start time target:
// pinned vertices take their new exact value directly (no F evaluation),
// and vertices whose cached value crosses the dirty threshold unpin into
// the worklist with a tightened lower bound.
func (p *patcher) applyCache(target tgraph.TS) {
	if target <= p.cachedStart || target > p.cachedEnd {
		return // no oracle outside (cachedStart, cachedEnd]; run() and
		// enterOracle own the boundaries
	}
	g := p.g
	b := int(target - p.w.Start - 1)
	for _, u := range p.bktU[p.bktOff[b]:p.bktOff[b+1]] {
		p.entIdx[u]++ // the entry whose Start == target
		if !p.frozen[u] {
			continue // already dirty; the worklist owns it
		}
		if c := p.cached.entries[p.entIdx[u]].CT; c < p.dirtyFrom {
			// Still exact: adopt the raise and wake the neighbours whose
			// fixed point may depend on it.
			if c > p.ct[u] {
				p.ct[u] = c
				p.markChanged(u)
				for _, nb := range g.Neighbours(u) {
					p.push(nb.V)
				}
			}
			continue
		}
		// Crossed the dirty threshold: the cached value is no longer
		// trustworthy. Its previous exact value and dirtyFrom are both
		// valid lower bounds; settle computes the truth.
		p.frozen[u] = false
		if p.dirtyFrom > p.ct[u] {
			p.ct[u] = p.dirtyFrom
			p.markChanged(u)
			for _, nb := range g.Neighbours(u) {
				p.push(nb.V)
			}
		}
		p.push(u)
	}
}

func (p *patcher) markChanged(u tgraph.VID) {
	if !p.chMark[u] {
		p.chMark[u] = true
		p.changed = append(p.changed, u)
	}
}
