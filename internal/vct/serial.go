package vct

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"temporalkcore/internal/tgraph"
)

const indexMagic = "VCTX1\n"

// Encode writes a compact binary form of the index. The encoding is
// self-contained and versioned; DecodeIndex reads it back.
func (ix *Index) Encode(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(indexMagic); err != nil {
		return err
	}
	hdr := []int32{
		int32(ix.K),
		int32(ix.Range.Start), int32(ix.Range.End),
		int32(len(ix.off)), int32(len(ix.entries)),
	}
	if err := binary.Write(bw, binary.LittleEndian, hdr); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, ix.off); err != nil {
		return err
	}
	flat := make([]int32, 0, 2*len(ix.entries))
	for _, e := range ix.entries {
		flat = append(flat, int32(e.Start), int32(e.CT))
	}
	if err := binary.Write(bw, binary.LittleEndian, flat); err != nil {
		return err
	}
	return bw.Flush()
}

// DecodeIndex reads an index written by Encode.
func DecodeIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("vct: reading magic: %w", err)
	}
	if string(magic) != indexMagic {
		return nil, errors.New("vct: not a VCTX1 stream")
	}
	hdr := make([]int32, 5)
	if err := binary.Read(br, binary.LittleEndian, hdr); err != nil {
		return nil, fmt.Errorf("vct: reading header: %w", err)
	}
	nOff, nEnt := int(hdr[3]), int(hdr[4])
	const limit = 1 << 31
	if nOff < 1 || nOff > limit || nEnt < 0 || nEnt > limit {
		return nil, fmt.Errorf("vct: implausible sizes %d/%d", nOff, nEnt)
	}
	ix := &Index{
		K:       int(hdr[0]),
		Range:   tgraph.Window{Start: tgraph.TS(hdr[1]), End: tgraph.TS(hdr[2])},
		off:     make([]int32, nOff),
		entries: make([]Entry, nEnt),
	}
	if err := binary.Read(br, binary.LittleEndian, ix.off); err != nil {
		return nil, fmt.Errorf("vct: reading offsets: %w", err)
	}
	flat := make([]int32, 2*nEnt)
	if err := binary.Read(br, binary.LittleEndian, flat); err != nil {
		return nil, fmt.Errorf("vct: reading entries: %w", err)
	}
	for i := range ix.entries {
		ix.entries[i] = Entry{Start: tgraph.TS(flat[2*i]), CT: tgraph.TS(flat[2*i+1])}
	}
	// Structural validation so a corrupted stream cannot cause panics.
	if ix.off[0] != 0 || int(ix.off[nOff-1]) != nEnt {
		return nil, errors.New("vct: corrupt offset table")
	}
	for i := 1; i < nOff; i++ {
		if ix.off[i] < ix.off[i-1] {
			return nil, errors.New("vct: offset table not monotone")
		}
	}
	return ix, nil
}

// NumVertices returns the number of vertices the index covers.
func (ix *Index) NumVertices() int { return len(ix.off) - 1 }
