package vct_test

import (
	"testing"

	"temporalkcore/internal/paperex"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

func buildPaper(t *testing.T) (*tgraph.Graph, *vct.Index, *vct.ECS) {
	t.Helper()
	g := paperex.Graph()
	ix, ecs, err := vct.Build(g, paperex.K, g.FullWindow())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g, ix, ecs
}

// TestPaperTableI checks the vertex core time index against the paper's
// Table I (with the v3 correction documented in package paperex).
func TestPaperTableI(t *testing.T) {
	g, ix, _ := buildPaper(t)
	for label, want := range paperex.VCT {
		v, ok := g.VertexOf(label)
		if !ok {
			t.Fatalf("vertex %d missing", label)
		}
		got := ix.Entries(v)
		if len(got) != len(want) {
			t.Errorf("v%d: got %d entries %v, want %d %v", label, len(got), got, len(want), want)
			continue
		}
		for i, w := range want {
			wantCT := tgraph.TS(w[1])
			if w[1] == paperex.Inf {
				wantCT = tgraph.InfTime
			}
			if got[i].Start != tgraph.TS(w[0]) || got[i].CT != wantCT {
				t.Errorf("v%d entry %d: got [%d,%d], want [%d,%d]", label, i, got[i].Start, got[i].CT, w[0], w[1])
			}
		}
	}
}

// TestPaperTableII checks the edge core window skylines against Table II.
func TestPaperTableII(t *testing.T) {
	g, _, ecs := buildPaper(t)
	lo, hi := ecs.EdgeRange()
	if lo != 0 || int(hi) != g.NumEdges() {
		t.Fatalf("edge range [%d,%d), want [0,%d)", lo, hi, g.NumEdges())
	}
	seen := 0
	for e := lo; e < hi; e++ {
		te := g.Edge(e)
		key := paperex.ECSEdge{U: g.Label(te.U), V: g.Label(te.V), T: g.RawTime(te.T)}
		if key.U > key.V {
			key.U, key.V = key.V, key.U
		}
		want, ok := paperex.ECS[key]
		if !ok {
			t.Fatalf("edge %+v not in Table II", key)
		}
		seen++
		got := ecs.Windows(e)
		if len(got) != len(want) {
			t.Errorf("edge %+v: got %v, want %v", key, got, want)
			continue
		}
		for i, w := range want {
			if got[i].Start != tgraph.TS(w[0]) || got[i].End != tgraph.TS(w[1]) {
				t.Errorf("edge %+v window %d: got [%d,%d], want [%d,%d]", key, i, got[i].Start, got[i].End, w[0], w[1])
			}
		}
	}
	if seen != len(paperex.ECS) {
		t.Errorf("covered %d edges, Table II has %d", seen, len(paperex.ECS))
	}
}

// TestExample2 checks the core times called out in the paper's Example 2:
// CT_1(v1)=3 and CT_3(v1)=5.
func TestExample2(t *testing.T) {
	g, ix, _ := buildPaper(t)
	v1, _ := g.VertexOf(1)
	if got := ix.CoreTime(v1, 1); got != 3 {
		t.Errorf("CT_1(v1) = %d, want 3", got)
	}
	if got := ix.CoreTime(v1, 3); got != 5 {
		t.Errorf("CT_3(v1) = %d, want 5", got)
	}
	if got := ix.CoreTime(v1, 2); got != 3 {
		t.Errorf("CT_2(v1) = %d, want 3 (entry [1,3] covers ts=2)", got)
	}
	if got := ix.CoreTime(v1, 7); got != tgraph.InfTime {
		t.Errorf("CT_7(v1) = %d, want ∞", got)
	}
}

// TestSubRangeECS recomputes the skylines for the query range [1,4] used by
// Figure 2 and checks the truncated expectations.
func TestSubRangeECS(t *testing.T) {
	g := paperex.Graph()
	_, ecs, err := vct.Build(g, 2, tgraph.Window{Start: 1, End: 4})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	want := map[paperex.ECSEdge][][2]int64{
		{U: 2, V: 9, T: 1}: {{1, 4}},
		{U: 1, V: 4, T: 2}: {{2, 3}},
		{U: 2, V: 3, T: 2}: {{1, 4}},
		{U: 1, V: 2, T: 3}: {{2, 3}},
		{U: 2, V: 4, T: 3}: {{2, 3}},
		{U: 3, V: 9, T: 4}: {{1, 4}},
		{U: 4, V: 8, T: 4}: nil,
	}
	lo, hi := ecs.EdgeRange()
	for e := lo; e < hi; e++ {
		te := g.Edge(e)
		key := paperex.ECSEdge{U: g.Label(te.U), V: g.Label(te.V), T: g.RawTime(te.T)}
		if key.U > key.V {
			key.U, key.V = key.V, key.U
		}
		w, ok := want[key]
		if !ok {
			t.Fatalf("unexpected edge %+v in range [1,4]", key)
		}
		got := ecs.Windows(e)
		if len(got) != len(w) {
			t.Errorf("edge %+v: got %v, want %v", key, got, w)
			continue
		}
		for i := range w {
			if got[i].Start != tgraph.TS(w[i][0]) || got[i].End != tgraph.TS(w[i][1]) {
				t.Errorf("edge %+v window %d: got %v, want %v", key, i, got[i], w[i])
			}
		}
	}
}

func TestBuildValidation(t *testing.T) {
	g := paperex.Graph()
	if _, _, err := vct.Build(g, 0, g.FullWindow()); err == nil {
		t.Error("k=0 accepted")
	}
	if _, _, err := vct.Build(g, 2, tgraph.Window{Start: 3, End: 2}); err == nil {
		t.Error("inverted window accepted")
	}
	if _, _, err := vct.Build(g, 2, tgraph.Window{Start: 1, End: 99}); err == nil {
		t.Error("window past tmax accepted")
	}
}

// TestHighKEmpty checks that k beyond kmax yields empty indexes.
func TestHighKEmpty(t *testing.T) {
	g := paperex.Graph()
	ix, ecs, err := vct.Build(g, 10, g.FullWindow())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if ix.Size() != 0 {
		t.Errorf("|VCT| = %d, want 0", ix.Size())
	}
	if ecs.Size() != 0 {
		t.Errorf("|ECS| = %d, want 0", ecs.Size())
	}
}

// TestK1 sanity-checks k=1: every edge's skyline is the single window
// [t, t] (an edge alone is a 1-core).
func TestK1(t *testing.T) {
	g := paperex.Graph()
	_, ecs, err := vct.Build(g, 1, g.FullWindow())
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	lo, hi := ecs.EdgeRange()
	for e := lo; e < hi; e++ {
		wins := ecs.Windows(e)
		et := g.Edge(e).T
		if len(wins) != 1 || wins[0] != (tgraph.Window{Start: et, End: et}) {
			t.Errorf("edge %d (t=%d): windows %v, want [[%d,%d]]", e, et, wins, et, et)
		}
	}
}
