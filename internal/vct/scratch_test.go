package vct_test

import (
	"math/rand"
	"testing"

	"temporalkcore/internal/paperex"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

func sameIndex(t *testing.T, g *tgraph.Graph, a, b *vct.Index) {
	t.Helper()
	if a.Size() != b.Size() {
		t.Fatalf("index sizes differ: %d vs %d", a.Size(), b.Size())
	}
	for u := 0; u < g.NumVertices(); u++ {
		ea, eb := a.Entries(tgraph.VID(u)), b.Entries(tgraph.VID(u))
		if len(ea) != len(eb) {
			t.Fatalf("v%d: %d entries vs %d", u, len(ea), len(eb))
		}
		for i := range ea {
			if ea[i] != eb[i] {
				t.Fatalf("v%d entry %d: %v vs %v", u, i, ea[i], eb[i])
			}
		}
	}
}

func sameECS(t *testing.T, a, b *vct.ECS) {
	t.Helper()
	alo, ahi := a.EdgeRange()
	blo, bhi := b.EdgeRange()
	if alo != blo || ahi != bhi || a.Size() != b.Size() {
		t.Fatalf("skyline shape differs: [%d,%d) size %d vs [%d,%d) size %d", alo, ahi, a.Size(), blo, bhi, b.Size())
	}
	for e := alo; e < ahi; e++ {
		wa, wb := a.Windows(e), b.Windows(e)
		if len(wa) != len(wb) {
			t.Fatalf("edge %d: %d windows vs %d", e, len(wa), len(wb))
		}
		for i := range wa {
			if wa[i] != wb[i] {
				t.Fatalf("edge %d window %d: %v vs %v", e, i, wa[i], wb[i])
			}
		}
	}
}

// TestBuildScratchMatchesBuild drives one Scratch through many different
// (k, window) builds — shrinking, growing, shifting — and checks each
// result against a fresh Build. This is the reuse contract: stale state
// from an earlier, larger query must never leak into a later one.
func TestBuildScratchMatchesBuild(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	g := paperex.Graph()
	s := &vct.Scratch{}
	tmax := int(g.TMax())
	for trial := 0; trial < 200; trial++ {
		k := 1 + r.Intn(4)
		a := 1 + r.Intn(tmax)
		b := 1 + r.Intn(tmax)
		if a > b {
			a, b = b, a
		}
		w := tgraph.Window{Start: tgraph.TS(a), End: tgraph.TS(b)}
		ix, ecs, err := vct.BuildScratch(g, k, w, s)
		if err != nil {
			t.Fatalf("BuildScratch(k=%d, %v): %v", k, w, err)
		}
		wantIx, wantECS, err := vct.Build(g, k, w)
		if err != nil {
			t.Fatalf("Build(k=%d, %v): %v", k, w, err)
		}
		sameIndex(t, g, wantIx, ix)
		sameECS(t, wantECS, ecs)
	}
}

// TestBuildScratchPooled checks the pool round trip: scratches cycled
// through Get/Put keep producing correct results.
func TestBuildScratchPooled(t *testing.T) {
	g := paperex.Graph()
	w := g.FullWindow()
	wantIx, wantECS, err := vct.Build(g, paperex.K, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		s := vct.GetScratch()
		ix, ecs, err := vct.BuildScratch(g, paperex.K, w, s)
		if err != nil {
			t.Fatal(err)
		}
		sameIndex(t, g, wantIx, ix)
		sameECS(t, wantECS, ecs)
		vct.PutScratch(s)
	}
}

// TestBuildScratchInvalid checks that validation errors leave the scratch
// reusable.
func TestBuildScratchInvalid(t *testing.T) {
	g := paperex.Graph()
	s := &vct.Scratch{}
	if _, _, err := vct.BuildScratch(g, 0, g.FullWindow(), s); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, _, err := vct.BuildScratch(g, 2, tgraph.Window{Start: 1, End: g.TMax() + 1}, s); err == nil {
		t.Fatal("out-of-range window accepted")
	}
	ix, ecs, err := vct.BuildScratch(g, paperex.K, g.FullWindow(), s)
	if err != nil {
		t.Fatal(err)
	}
	wantIx, wantECS, _ := vct.Build(g, paperex.K, g.FullWindow())
	sameIndex(t, g, wantIx, ix)
	sameECS(t, wantECS, ecs)
}

// BenchmarkBuildScratchReuse is the zero-alloc contract of the engine: a
// warm Scratch must make repeated CoreTime builds allocation-free.
func BenchmarkBuildScratchReuse(b *testing.B) {
	for _, code := range []string{"CM", "PL"} {
		b.Run(code, func(b *testing.B) {
			g, k := benchGraph(b, code, 5000)
			s := &vct.Scratch{}
			if _, _, err := vct.BuildScratch(g, k, g.FullWindow(), s); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := vct.BuildScratch(g, k, g.FullWindow(), s); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
