package otcd

import (
	"temporalkcore/internal/ds"
	"temporalkcore/internal/tgraph"
)

// state is a decrementally maintained temporal k-core: the subgraph of
// alive temporal edges together with per-vertex distinct-neighbour degrees
// and per-pair multiplicities. Alive edges form an intrusive doubly linked
// list in edge-id (= time) order, so the TTI is read off the ends of the
// list and the edge set is collected in O(|core|).
type state struct {
	g *tgraph.Graph
	k int
	w tgraph.Window

	lo, hi tgraph.EID

	aliveE  []bool  // per edge, indexed eid-lo
	nextE   []int32 // per edge + sentinel head/tail, indexed eid-lo
	prevE   []int32
	pairCnt []int32 // alive interactions per pair
	deg     []int32 // alive distinct neighbours per vertex
	aliveV  []bool

	edgeCount int
	sig       ds.Sig128
	q         ds.Queue
}

func newState(g *tgraph.Graph, k int, w tgraph.Window) *state {
	lo, hi := g.EdgesIn(w)
	m := int(hi - lo)
	return &state{
		g: g, k: k, w: w, lo: lo, hi: hi,
		aliveE:  make([]bool, m),
		nextE:   make([]int32, m+2),
		prevE:   make([]int32, m+2),
		pairCnt: make([]int32, g.NumPairs()),
		deg:     make([]int32, g.NumVertices()),
		aliveV:  make([]bool, g.NumVertices()),
	}
}

// Sentinel list slots: index m is the head, m+1 the tail.
func (s *state) headIdx() int32 { return int32(s.hi - s.lo) }
func (s *state) tailIdx() int32 { return int32(s.hi-s.lo) + 1 }

// initFull loads every edge of the query range and seeds the peeling queue
// with every under-degree vertex.
func (s *state) initFull() {
	m := int(s.hi - s.lo)
	head, tail := s.headIdx(), s.tailIdx()
	for i := 0; i < m; i++ {
		s.aliveE[i] = true
		s.nextE[i] = int32(i + 1)
		s.prevE[i] = int32(i - 1)
	}
	if m > 0 {
		s.prevE[0] = head
		s.nextE[m-1] = tail
		s.nextE[head] = 0
		s.prevE[tail] = int32(m - 1)
	} else {
		s.nextE[head] = tail
		s.prevE[tail] = head
	}
	s.prevE[head] = -1
	s.nextE[tail] = -1

	for i := range s.pairCnt {
		s.pairCnt[i] = 0
	}
	for i := range s.deg {
		s.deg[i] = 0
		s.aliveV[i] = false
	}
	s.sig = ds.Sig128{}
	s.edgeCount = m
	for e := s.lo; e < s.hi; e++ {
		p := s.g.EdgePair(e)
		pr := s.g.Pair(p)
		if s.pairCnt[p] == 0 {
			s.deg[pr.U]++
			s.deg[pr.V]++
		}
		s.pairCnt[p]++
		s.aliveV[pr.U] = true
		s.aliveV[pr.V] = true
		s.sig.Toggle(int32(e))
	}
	s.q.Reset()
	for v := range s.deg {
		if s.aliveV[v] && int(s.deg[v]) < s.k {
			s.aliveV[v] = false
			s.q.Push(int32(v))
		}
	}
}

// copyFrom clones o into s. Both states must stem from the same graph,
// k and window.
func (s *state) copyFrom(o *state) {
	copy(s.aliveE, o.aliveE)
	copy(s.nextE, o.nextE)
	copy(s.prevE, o.prevE)
	copy(s.pairCnt, o.pairCnt)
	copy(s.deg, o.deg)
	copy(s.aliveV, o.aliveV)
	s.edgeCount = o.edgeCount
	s.sig = o.sig
	s.q.Reset()
}

// removeEdge unlinks one alive edge and updates degrees, enqueueing
// endpoints that drop below k.
func (s *state) removeEdge(e tgraph.EID) {
	i := int32(e - s.lo)
	s.aliveE[i] = false
	p, n := s.prevE[i], s.nextE[i]
	s.nextE[p] = n
	s.prevE[n] = p
	s.sig.Toggle(int32(e))
	s.edgeCount--

	pi := s.g.EdgePair(e)
	s.pairCnt[pi]--
	if s.pairCnt[pi] == 0 {
		pr := s.g.Pair(pi)
		for _, v := range [2]tgraph.VID{pr.U, pr.V} {
			s.deg[v]--
			if s.aliveV[v] && int(s.deg[v]) < s.k {
				s.aliveV[v] = false
				s.q.Push(int32(v))
			}
		}
	}
}

// peel drains the cascade queue, removing dead vertices' edges.
func (s *state) peel() {
	for s.q.Len() > 0 {
		u := tgraph.VID(s.q.Pop())
		for _, e := range s.g.Incident(u) {
			if e >= s.lo && e < s.hi && s.aliveE[e-s.lo] {
				s.removeEdge(e)
			}
		}
	}
}

// removeTimesAbove removes every alive edge with a timestamp greater than
// te by walking back from the list tail (edge ids ascend with time).
func (s *state) removeTimesAbove(te tgraph.TS) {
	for {
		i := s.prevE[s.tailIdx()]
		if i == s.headIdx() {
			return
		}
		e := s.lo + tgraph.EID(i)
		if s.g.Edge(e).T <= te {
			return
		}
		s.removeEdge(e)
	}
}

// removeTimesBelow removes every alive edge with a timestamp smaller than
// ts by walking forward from the list head.
func (s *state) removeTimesBelow(ts tgraph.TS) {
	for {
		i := s.nextE[s.headIdx()]
		if i == s.tailIdx() {
			return
		}
		e := s.lo + tgraph.EID(i)
		if s.g.Edge(e).T >= ts {
			return
		}
		s.removeEdge(e)
	}
}

// tti returns the tightest time interval of the alive edge set; the state
// must be non-empty.
func (s *state) tti() tgraph.Window {
	first := s.lo + tgraph.EID(s.nextE[s.headIdx()])
	last := s.lo + tgraph.EID(s.prevE[s.tailIdx()])
	return tgraph.Window{Start: s.g.Edge(first).T, End: s.g.Edge(last).T}
}

// appendEdges appends the alive edges in time order to dst.
func (s *state) appendEdges(dst []tgraph.EID) []tgraph.EID {
	for i := s.nextE[s.headIdx()]; i != s.tailIdx(); i = s.nextE[i] {
		dst = append(dst, s.lo+tgraph.EID(i))
	}
	return dst
}
