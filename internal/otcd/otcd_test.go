package otcd_test

import (
	"math/rand"
	"testing"

	"temporalkcore/internal/enum"
	"temporalkcore/internal/otcd"
	"temporalkcore/internal/paperex"
	"temporalkcore/internal/tgraph"
)

func runOTCD(t *testing.T, g *tgraph.Graph, k int, w tgraph.Window, opts otcd.Options) []enum.Core {
	t.Helper()
	var sink enum.CollectSink
	if !otcd.Enumerate(g, k, w, &sink, opts) {
		t.Fatal("Enumerate stopped early")
	}
	enum.SortCores(sink.Cores)
	return sink.Cores
}

func TestPaperFigure2(t *testing.T) {
	g := paperex.Graph()
	cores := runOTCD(t, g, 2, tgraph.Window{Start: 1, End: 4}, otcd.Options{})
	if len(cores) != 2 {
		t.Fatalf("got %d cores, want 2: %+v", len(cores), cores)
	}
	if cores[0].TTI != (tgraph.Window{Start: 1, End: 4}) || len(cores[0].Edges) != 6 {
		t.Errorf("core 0: %+v, want TTI [1,4] with 6 edges", cores[0])
	}
	if cores[1].TTI != (tgraph.Window{Start: 2, End: 3}) || len(cores[1].Edges) != 3 {
		t.Errorf("core 1: %+v, want TTI [2,3] with 3 edges", cores[1])
	}
}

func TestAgainstBruteForcePaper(t *testing.T) {
	g := paperex.Graph()
	for k := 1; k <= 3; k++ {
		for ts := tgraph.TS(1); ts <= g.TMax(); ts++ {
			for te := ts; te <= g.TMax(); te++ {
				w := tgraph.Window{Start: ts, End: te}
				want := enum.BruteForce(g, k, w)
				got := runOTCD(t, g, k, w, otcd.Options{})
				if !enum.EqualCoreSets(got, want) {
					t.Fatalf("k=%d w=[%d,%d]: mismatch\n got %+v\nwant %+v", k, ts, te, got, want)
				}
			}
		}
	}
}

func randomGraph(r *rand.Rand, n, m, tmax int) *tgraph.Graph {
	var b tgraph.Builder
	for i := 0; i < m; i++ {
		u := r.Intn(n)
		v := r.Intn(n)
		for v == u {
			v = r.Intn(n)
		}
		b.Add(int64(u), int64(v), int64(1+r.Intn(tmax)))
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// TestAgainstBruteForceRandom fuzzes OTCD (all pruning variants) against
// the oracle.
func TestAgainstBruteForceRandom(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	iters := 100
	if testing.Short() {
		iters = 20
	}
	variants := []otcd.Options{
		{},
		{DisableRowJump: true},
		{DisableTTIJump: true},
		{DisableRowJump: true, DisableTTIJump: true},
	}
	for it := 0; it < iters; it++ {
		n := 4 + r.Intn(10)
		m := 5 + r.Intn(40)
		tmax := 2 + r.Intn(10)
		g := randomGraph(r, n, m, tmax)
		k := 1 + r.Intn(4)
		ts := tgraph.TS(1 + r.Intn(int(g.TMax())))
		te := ts + tgraph.TS(r.Intn(int(g.TMax()-ts)+1))
		w := tgraph.Window{Start: ts, End: te}
		want := enum.BruteForce(g, k, w)
		opts := variants[it%len(variants)]
		got := runOTCD(t, g, k, w, opts)
		if !enum.EqualCoreSets(got, want) {
			t.Fatalf("iter %d (n=%d m=%d tmax=%d k=%d w=[%d,%d] opts=%+v): mismatch\n got %+v\nwant %+v",
				it, n, m, tmax, k, ts, te, opts, got, want)
		}
	}
}

// TestEmptyRange checks graceful behaviour on ranges without cores.
func TestEmptyRange(t *testing.T) {
	g := paperex.Graph()
	var sink enum.CollectSink
	if !otcd.Enumerate(g, 5, g.FullWindow(), &sink, otcd.Options{}) {
		t.Fatal("stopped early")
	}
	if len(sink.Cores) != 0 {
		t.Errorf("k=5 should have no cores, got %d", len(sink.Cores))
	}
	// Single-timestamp window with no core.
	sink.Cores = nil
	otcd.Enumerate(g, 2, tgraph.Window{Start: 7, End: 7}, &sink, otcd.Options{})
	if len(sink.Cores) != 0 {
		t.Errorf("window [7,7] should have no 2-core, got %d", len(sink.Cores))
	}
}

// TestEarlyStop checks sink-driven termination.
func TestEarlyStop(t *testing.T) {
	g := paperex.Graph()
	var inner enum.CollectSink
	sink := &enum.LimitSink{Inner: &inner, Max: 1}
	if otcd.Enumerate(g, 2, g.FullWindow(), sink, otcd.Options{}) {
		t.Error("should report early stop")
	}
	if len(inner.Cores) != 1 {
		t.Errorf("collected %d, want 1", len(inner.Cores))
	}
}
