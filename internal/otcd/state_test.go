package otcd

import (
	"testing"

	"temporalkcore/internal/tgraph"
)

func triGraph() *tgraph.Graph {
	return tgraph.MustFromTriples(
		[3]int64{1, 2, 1}, [3]int64{2, 3, 2}, [3]int64{1, 3, 3},
		[3]int64{3, 4, 4}, [3]int64{4, 5, 5},
	)
}

func TestStateInitFull(t *testing.T) {
	g := triGraph()
	s := newState(g, 2, g.FullWindow())
	s.initFull()
	if s.edgeCount != 5 {
		t.Fatalf("edgeCount = %d, want 5", s.edgeCount)
	}
	if got := s.tti(); got != (tgraph.Window{Start: 1, End: 5}) {
		t.Errorf("tti = %v", got)
	}
	s.peel()
	// Only the triangle 1-2-3 survives a 2-core peel.
	if s.edgeCount != 3 {
		t.Errorf("after peel: %d edges, want 3", s.edgeCount)
	}
	if got := s.tti(); got != (tgraph.Window{Start: 1, End: 3}) {
		t.Errorf("tti after peel = %v", got)
	}
	edges := s.appendEdges(nil)
	if len(edges) != 3 {
		t.Fatalf("appendEdges: %v", edges)
	}
	// Edges come out in time order.
	for i := 1; i < len(edges); i++ {
		if g.Edge(edges[i]).T < g.Edge(edges[i-1]).T {
			t.Errorf("edges not time ordered: %v", edges)
		}
	}
}

func TestStateRemoveTimes(t *testing.T) {
	g := triGraph()
	s := newState(g, 1, g.FullWindow())
	s.initFull()
	s.peel()
	if s.edgeCount != 5 {
		t.Fatalf("1-core should keep all edges, got %d", s.edgeCount)
	}
	s.removeTimesAbove(3)
	s.peel()
	if s.edgeCount != 3 {
		t.Errorf("after cut at 3: %d edges", s.edgeCount)
	}
	s.removeTimesBelow(2)
	s.peel()
	if s.edgeCount != 2 {
		t.Errorf("after floor at 2: %d edges", s.edgeCount)
	}
	if got := s.tti(); got != (tgraph.Window{Start: 2, End: 3}) {
		t.Errorf("tti = %v", got)
	}
}

func TestStateCopyIndependence(t *testing.T) {
	g := triGraph()
	row := newState(g, 1, g.FullWindow())
	row.initFull()
	row.peel()
	work := newState(g, 1, g.FullWindow())
	work.copyFrom(row)
	work.removeTimesAbove(2)
	work.peel()
	if row.edgeCount != 5 {
		t.Errorf("row mutated by work: %d edges", row.edgeCount)
	}
	if work.edgeCount != 2 {
		t.Errorf("work = %d edges, want 2", work.edgeCount)
	}
	// Signatures diverge and reconverge deterministically.
	work2 := newState(g, 1, g.FullWindow())
	work2.copyFrom(row)
	work2.removeTimesAbove(2)
	work2.peel()
	if work.sig != work2.sig {
		t.Error("same operations produced different signatures")
	}
}

func TestStateSubWindow(t *testing.T) {
	g := triGraph()
	w := tgraph.Window{Start: 2, End: 4}
	s := newState(g, 1, w)
	s.initFull()
	s.peel()
	if s.edgeCount != 3 {
		t.Errorf("window [2,4]: %d edges, want 3", s.edgeCount)
	}
	if got := s.tti(); got != (tgraph.Window{Start: 2, End: 4}) {
		t.Errorf("tti = %v", got)
	}
}

func TestStatePairMultiplicity(t *testing.T) {
	b := tgraph.Builder{KeepDuplicates: true}
	b.Add(1, 2, 1)
	b.Add(1, 2, 2)
	b.Add(2, 3, 1)
	b.Add(1, 3, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	s := newState(g, 2, g.FullWindow())
	s.initFull()
	s.peel()
	if s.edgeCount != 4 {
		t.Fatalf("all edges should survive, got %d", s.edgeCount)
	}
	// Removing one of the two parallel 1-2 edges must not change degrees.
	s.removeTimesAbove(1)
	s.peel()
	if s.edgeCount != 3 {
		t.Errorf("after cut: %d edges, want 3 (triangle at t=1)", s.edgeCount)
	}
}
