// Package otcd reimplements the state-of-the-art baseline of Yang et al.,
// "Scalable Time-Range K-Core Query on Temporal Graphs" (VLDB 2023,
// reference [12] of the reproduced paper): Optimized Temporal Core
// Decomposition (Algorithm 1). The algorithm anchors the start time,
// decrements the end time, and maintains the temporal k-core decrementally
// with peeling cascades.
//
// Pruning follows the paper's TTI rules in an equivalent form (see
// DESIGN.md): after the core C of [ts, te] with TTI [ts', te'] is computed,
// every window [ts, y] with te' <= y <= te has exactly the core C, so the
// end-time scan jumps straight to te'-1 (Pruning-on-the-Right); likewise
// every row x with ts < x <= ts' has the same row core and produces the same
// descent, so the row scan jumps to ts'+1 (Pruning-on-the-Underside /
// Pruning-on-the-Left). A signature table guarantees distinct output across
// the remaining windows.
package otcd

import (
	"temporalkcore/internal/ds"
	"temporalkcore/internal/enum"
	"temporalkcore/internal/tgraph"
)

// Options tunes the baseline, mainly for ablation benchmarks.
type Options struct {
	// DisableRowJump processes every start time even when the row core's
	// TTI proves the following rows identical.
	DisableRowJump bool
	// DisableTTIJump decrements the end time one step at a time instead of
	// jumping to the TTI end.
	DisableTTIJump bool
	// Stop, when non-nil, is polled once per start time; returning true
	// aborts the enumeration (used to impose the experiments' time limit).
	Stop func() bool
}

// Enumerate runs OTCD for parameter k over the query range w and emits
// every distinct temporal k-core exactly once. It returns false when the
// sink stopped the enumeration early.
func Enumerate(g *tgraph.Graph, k int, w tgraph.Window, sink Sink, opts Options) bool {
	return enumerate(g, k, w, sink, opts)
}

// Sink is the result consumer; it matches package enum's Sink.
type Sink = enum.Sink

func enumerate(g *tgraph.Graph, k int, w tgraph.Window, sink Sink, opts Options) bool {
	if k < 1 || !w.Valid() || w.Start > g.TMax() {
		return true
	}
	if w.End > g.TMax() {
		w.End = g.TMax()
	}

	row := newState(g, k, w)
	row.initFull()
	row.peel()

	work := newState(g, k, w)
	seen := make(map[ds.Sig128]struct{})
	edgeBuf := make([]tgraph.EID, 0, 1024)

	ts := w.Start
	for ts <= w.End {
		if opts.Stop != nil && opts.Stop() {
			return false
		}
		if row.edgeCount == 0 {
			// The row core is empty; every remaining window's core is a
			// subset of it, so the whole enumeration is done.
			return true
		}
		rowTTI := row.tti()

		// Descend the end time for this row.
		work.copyFrom(row)
		te := w.End
		for work.edgeCount > 0 {
			tti := work.tti()
			sig := work.sig
			if _, ok := seen[sig]; !ok {
				seen[sig] = struct{}{}
				edgeBuf = work.appendEdges(edgeBuf[:0])
				if !sink.Emit(tti, edgeBuf) {
					return false
				}
			}
			// Windows [ts, y] for tti.End <= y <= te share this core:
			// continue from te = tti.End - 1 (PoR).
			next := tti.End - 1
			if opts.DisableTTIJump {
				next = te - 1
			}
			if next < ts {
				break
			}
			work.removeTimesAbove(next)
			work.peel()
			te = next
		}

		// Advance the row. Rows (ts, rowTTI.Start] are provably identical
		// to this one (PoU/PoL): jump past them.
		nextTs := ts + 1
		if !opts.DisableRowJump && rowTTI.Start+1 > nextTs {
			nextTs = rowTTI.Start + 1
		}
		if nextTs > w.End {
			return true
		}
		row.removeTimesBelow(nextTs)
		row.peel()
		ts = nextTs
	}
	return true
}
