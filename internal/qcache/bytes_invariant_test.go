package qcache

import (
	"math/rand"
	"testing"
)

// TestBytesInvariantUnderSpill drives the cache through the spill
// lifecycle — insert, Dump, RetireBelow, re-admit the dumped entries under
// a newer epoch, retire again — and asserts after every step that the
// Bytes estimate equals the exact sum over resident entries, and that full
// retirement returns Bytes to zero. Retired-then-re-admitted entries must
// not double-count their estimated cost.
func TestBytesInvariantUnderSpill(t *testing.T) {
	const budget = 1 << 20
	c := New(budget)
	rng := rand.New(rand.NewSource(1))

	checkExact := func(step string) {
		t.Helper()
		var want int64
		n := 0
		c.Dump(func(_ Key, e *Entry) bool {
			want += e.Bytes
			n++
			return true
		})
		st := c.Stats()
		if st.Bytes != want {
			t.Fatalf("%s: Stats.Bytes=%d, sum over resident entries=%d", step, st.Bytes, want)
		}
		if st.Entries != n {
			t.Fatalf("%s: Stats.Entries=%d, Dump walked %d", step, st.Entries, n)
		}
		if st.Bytes > budget {
			t.Fatalf("%s: Bytes=%d exceeds budget %d", step, st.Bytes, budget)
		}
	}

	for seq := int64(1); seq <= 4; seq++ {
		for k := 1; k <= 40; k++ {
			c.Add(key(seq, k), entry(1024+int64(rng.Intn(64*1024))))
			if k%7 == 0 {
				// Duplicate-key insert: the resident entry is kept and the
				// estimate must not be added twice.
				c.Add(key(seq, k), entry(1024+int64(rng.Intn(64*1024))))
			}
		}
		checkExact("after insert wave")
	}

	// Spill: dump the resident working set, as the snapshot writer does.
	type spilled struct {
		k Key
		e *Entry
	}
	var warm []spilled
	c.Dump(func(k Key, e *Entry) bool {
		warm = append(warm, spilled{k, e})
		return true
	})
	checkExact("after dump")

	// Retire the older epochs, then re-admit every spilled entry rekeyed to
	// the surviving epoch (the warm-load path after a restart).
	c.RetireBelow(4)
	checkExact("after partial retirement")
	for _, s := range warm {
		k := s.k
		k.Seq = 4
		c.Add(k, s.e)
	}
	checkExact("after warm re-admission")

	// Full retirement must return the estimate to exactly zero.
	c.RetireBelow(1 << 30)
	checkExact("after full retirement")
	if st := c.Stats(); st.Bytes != 0 || st.Entries != 0 {
		t.Fatalf("after full retirement: Bytes=%d Entries=%d, want 0/0", st.Bytes, st.Entries)
	}

	// And the cache must still admit fresh entries normally afterwards.
	c.Add(key(1<<30, 1), entry(2048))
	if st := c.Stats(); st.Bytes != 2048 || st.Entries != 1 {
		t.Fatalf("post-retirement insert: Bytes=%d Entries=%d, want 2048/1", st.Bytes, st.Entries)
	}
}

// TestDumpOrderAndStop pins Dump's contract: MRU-first order, no recency
// promotion, early stop.
func TestDumpOrderAndStop(t *testing.T) {
	c := New(1 << 20)
	c.Add(key(1, 1), entry(100))
	c.Add(key(1, 2), entry(100))
	c.Add(key(1, 3), entry(100))
	if _, ok := c.Probe(key(1, 1)); !ok { // promote 1 to MRU
		t.Fatal("probe failed")
	}
	var got []int
	c.Dump(func(k Key, _ *Entry) bool {
		got = append(got, k.K)
		return true
	})
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 2 {
		t.Fatalf("dump order = %v, want [1 3 2]", got)
	}
	hitsBefore := c.Stats().Hits
	var first []int
	c.Dump(func(k Key, _ *Entry) bool {
		first = append(first, k.K)
		return false
	})
	if len(first) != 1 || first[0] != 1 {
		t.Fatalf("early stop walked %v, want [1]", first)
	}
	if c.Stats().Hits != hitsBefore {
		t.Fatal("Dump counted hits")
	}
	var after []int
	c.Dump(func(k Key, _ *Entry) bool {
		after = append(after, k.K)
		return true
	})
	for i := range got {
		if got[i] != after[i] {
			t.Fatalf("Dump changed recency order: %v -> %v", got, after)
		}
	}
}
