// Package qcache memoises compiled CoreTime results for the serving layer:
// a concurrency-safe cache of (vertex core time index, edge core window
// skyline) pairs keyed by (epoch seq, k, window, algorithm). On an
// append-only temporal graph the mutation sequence number identifies the
// graph state exactly, so a published epoch's CoreTime tables are a pure
// function of the key — entries never go stale, they only stop being asked
// for. That makes invalidation structural: new epochs produce new keys,
// and retired epochs' entries are dropped by RetireBelow when the serving
// layer drains them (plus byte-bounded LRU eviction for everything else).
//
// The cache also deduplicates concurrent identical builds (singleflight):
// when N goroutines miss on the same key at once, one runs the build and
// the other N-1 wait and share the result, so a thundering herd of
// identical queries under load costs one CoreTime phase.
//
// Besides per-k CoreTime tables (AlgoEnum keys) the cache holds whole
// historical multi-k PHC indexes (AlgoPHC keys, Entry.Phc payloads) under
// the same epoch keying, LRU budget, singleflight and retirement rules —
// the historical tier's builds are far more expensive than a single
// CoreTime phase, which makes them the cache's best-paying tenants.
package qcache

import (
	"container/list"
	"context"
	"errors"
	"sync"
	"time"

	"temporalkcore/internal/phc"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// AlgoEnum is the Key.Algo discriminator for the paper's optimal Enum
// algorithm — the only enumeration algorithm whose CoreTime phase is
// memoised today. Every layer that builds keys (the public query paths,
// dyn refreshes) must use this constant rather than a raw algorithm
// value, so keys stay compatible even if the public Algorithm iota order
// ever changes.
const AlgoEnum uint8 = 0

// AlgoPHC is the Key.Algo discriminator for historical multi-k PHC
// indexes (Entry.Phc payloads). PHC keys cover every k at once, so their
// Key.K is always 0 — a value no CoreTime key uses (k >= 1), keeping the
// two families disjoint inside one LRU/retirement domain.
const AlgoPHC uint8 = 1

// Key identifies one compiled CoreTime result. Seq is the graph's mutation
// sequence number at build time (tgraph.Graph.MutSeq) — on an append-only
// graph it pins the exact edge prefix, so equal keys imply byte-identical
// tables. W is the compressed query window, which is stable per seq
// (appends only ever add ranks at the frontier).
type Key struct {
	Seq  int64
	K    int
	W    tgraph.Window
	Algo uint8

	// Shard is the 1-based shard id of a sealed time-range shard's local
	// CoreTime table, or 0 for ordinary whole-graph entries. Sealed shards
	// are immutable, so their tables stay correct across every later epoch:
	// a non-zero Shard exempts the entry from RetireBelow (its Seq is the
	// seal-time sequence, which epoch retirement would otherwise sweep
	// away) and leaves the LRU byte bound as its only eviction path.
	Shard uint32
}

// Entry is one cached compiled result: immutable, self-owned tables (never
// arena-backed — eviction must not be able to corrupt a reader that still
// holds the entry) plus the wall time the build cost and an estimate of
// the resident bytes the entry pins. CoreTime entries (AlgoEnum keys)
// carry Ix/Ecs; historical index entries (AlgoPHC keys) carry Phc.
type Entry struct {
	Ix  *vct.Index
	Ecs *vct.ECS

	// Phc is the multi-k historical index payload of AlgoPHC entries
	// (nil on CoreTime entries).
	Phc *phc.Index

	// CoreTime is the wall cost of the build that produced the tables.
	CoreTime time.Duration
	// Bytes estimates the entry's resident cost, the unit of the cache's
	// MaxBytes budget. NewEntry fills it from the tables.
	Bytes int64
}

// entryOverhead approximates the fixed per-entry cost (the Index and ECS
// headers, the LRU node, the map slot).
const entryOverhead = 256

// NewEntry wraps self-owned tables as a cache entry. The tables must not
// be backed by a reusable scratch arena: build them with vct.Build /
// vct.BuildStop, or Clone arena-backed ones first.
func NewEntry(ix *vct.Index, ecs *vct.ECS, coreTime time.Duration) *Entry {
	return &Entry{
		Ix:       ix,
		Ecs:      ecs,
		CoreTime: coreTime,
		Bytes:    ix.MemBytes() + ecs.MemBytes() + entryOverhead,
	}
}

// NewPHCEntry wraps a historical multi-k index as a cache entry (AlgoPHC
// keys). phc indexes are always self-owned, so there is no arena caveat.
func NewPHCEntry(ix *phc.Index, buildTime time.Duration) *Entry {
	return &Entry{
		Phc:      ix,
		CoreTime: buildTime,
		Bytes:    ix.MemBytes() + entryOverhead,
	}
}

// Outcome reports how a GetOrBuild call was served.
type Outcome int

const (
	// Hit: the entry was already resident.
	Hit Outcome = iota
	// Built: this call ran the build and inserted the entry.
	Built
	// Shared: another goroutine was already building the same key; this
	// call waited and shares its result (singleflight deduplication).
	Shared
)

// Stats are the cache's monotone counters plus its current occupancy.
type Stats struct {
	Hits               int64 // lookups served from a resident entry
	Misses             int64 // lookups that ran a build
	SingleflightShared int64 // lookups that waited on another goroutine's build
	Evictions          int64 // entries dropped by the LRU byte bound
	Retired            int64 // entries dropped because their epoch drained
	Oversize           int64 // built entries refused admission (larger than the budget)

	Entries int   // resident entries
	Bytes   int64 // resident byte estimate
}

// flight is one in-progress build other goroutines may wait on.
type flight struct {
	done chan struct{}
	ent  *Entry
	err  error
}

// Cache is a byte-bounded, epoch-keyed LRU of compiled CoreTime results.
// All methods are safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	max     int64
	bytes   int64                 // tkc:guardedby mu
	ll      *list.List            // tkc:guardedby mu
	m       map[Key]*list.Element // tkc:guardedby mu
	flights map[Key]*flight       // tkc:guardedby mu
	// oversize remembers keys whose built tables exceeded the whole
	// budget, so repeat queries on such a key take their zero-alloc
	// uncached path instead of re-running a fully-allocating build whose
	// result can never be admitted. Bounded: retired with the floor, and
	// reset wholesale beyond a hard cap.
	oversize map[Key]struct{} // tkc:guardedby mu
	// floor is the highest RetireBelow seq seen (keeps retirement monotone).
	floor int64 // tkc:guardedby mu
	stats Stats // tkc:guardedby mu
}

type node struct {
	key Key
	ent *Entry
}

// New creates a cache bounded to maxBytes of estimated entry cost.
// maxBytes <= 0 yields a cache that stores nothing (every lookup builds),
// which callers normally express by not using a cache at all.
func New(maxBytes int64) *Cache {
	return &Cache{
		max:      maxBytes,
		ll:       list.New(),
		m:        make(map[Key]*list.Element),
		flights:  make(map[Key]*flight),
		oversize: make(map[Key]struct{}),
	}
}

// MaxBytes returns the configured byte budget.
func (c *Cache) MaxBytes() int64 { return c.max } // immutable after New

// Admits reports whether an entry whose tables estimate to tableBytes
// (before the fixed per-entry overhead) could be admitted at all. Callers
// that must pay a copy to produce a self-owned entry (the watcher's
// insert path) check this first so oversize tables skip the copy.
func (c *Cache) Admits(tableBytes int64) bool { return tableBytes+entryOverhead <= c.max }

// Probe returns the resident entry for key, if any, promoting it to most
// recently used and counting a hit. It never builds, never waits on an
// in-progress build, and an absent key counts nothing — Stats.Misses
// keeps meaning "a build ran", which matters for callers whose fallback
// is not a build (the watcher's incremental patch path).
func (c *Cache) Probe(key Key) (*Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.stats.Hits++
	return el.Value.(*node).ent, true
}

// Uncacheable reports that a previous build for key produced tables
// larger than the whole budget: the entry can never be admitted, so the
// caller should take its uncached (pooled-scratch) path instead of
// re-building retained tables that will only be dropped.
func (c *Cache) Uncacheable(key Key) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.oversize[key]
	return ok
}

// Add inserts an entry built outside the cache (no singleflight), evicting
// from the LRU tail to honour the byte budget. Entries larger than the
// whole budget are not admitted.
func (c *Cache) Add(key Key, ent *Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.insert(key, ent)
}

// GetOrBuild returns the entry for key, running build on a miss and
// inserting its result. Concurrent calls for the same key are deduplicated:
// one runs build, the rest wait and share. A waiter stops waiting when its
// own ctx cancels; if the builder itself failed with a cancellation, a
// still-live waiter retries (and may become the new builder) rather than
// inheriting someone else's cancellation.
func (c *Cache) GetOrBuild(ctx context.Context, key Key, build func() (*Entry, error)) (*Entry, Outcome, error) {
	sharedCounted := false
	for {
		c.mu.Lock()
		if el, ok := c.m[key]; ok {
			c.ll.MoveToFront(el)
			c.stats.Hits++
			ent := el.Value.(*node).ent
			c.mu.Unlock()
			return ent, Hit, nil
		}
		if f, ok := c.flights[key]; ok {
			if !sharedCounted {
				// One logical lookup shares at most once, no matter how
				// many cancelled builders it retries past.
				c.stats.SingleflightShared++
				sharedCounted = true
			}
			c.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return nil, Shared, ctx.Err()
			}
			if f.err == nil {
				return f.ent, Shared, nil
			}
			if err := ctx.Err(); err != nil {
				return nil, Shared, err
			}
			if isCancel(f.err) {
				continue // the builder was cancelled, not us: try again
			}
			return nil, Shared, f.err
		}
		f := &flight{done: make(chan struct{})}
		c.flights[key] = f
		c.stats.Misses++
		c.mu.Unlock()

		// A panicking build must not wedge the key: unregister the flight
		// and wake the waiters with an error before the panic continues
		// (they see a non-cancel error and propagate it).
		finished := false
		defer func() {
			if !finished {
				c.mu.Lock()
				delete(c.flights, key)
				c.mu.Unlock()
				f.err = errBuildPanicked
				close(f.done)
			}
		}()
		f.ent, f.err = build()
		c.mu.Lock()
		delete(c.flights, key)
		if f.err == nil {
			c.insert(key, f.ent)
		}
		c.mu.Unlock()
		finished = true
		close(f.done)
		return f.ent, Built, f.err
	}
}

// errBuildPanicked is what waiters of a flight observe when its builder
// panicked; the panic itself propagates on the builder's goroutine.
var errBuildPanicked = errors.New("qcache: build panicked")

// isCancel reports errors that mean "the builder gave up", not "the build
// is impossible" — a waiter with a live context should retry after them.
func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, vct.ErrStopped)
}

// RetireBelow drops every resident entry whose epoch sequence number is
// below seq. The serving layer calls it when an epoch drains (no reader
// can pin it anymore), so a retired epoch's entries stop occupying budget
// without waiting for LRU pressure. Retirement is advisory, not a ban: a
// long-held snapshot that queries a retired epoch rebuilds on miss and
// re-inserts — an insert below the floor implies an active querier, and
// the next retirement simply drops it again. The floor is monotone: calls
// with a lower seq are no-ops. Sealed-shard entries (Key.Shard != 0) are
// exempt: their tables are pinned to an immutable shard, not to a drained
// epoch, so only the LRU byte bound evicts them.
func (c *Cache) RetireBelow(seq int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if seq <= c.floor {
		return
	}
	c.floor = seq
	for el := c.ll.Front(); el != nil; {
		next := el.Next()
		n := el.Value.(*node)
		if n.key.Seq < seq && n.key.Shard == 0 {
			c.remove(el)
			c.stats.Retired++
		}
		el = next
	}
	for k := range c.oversize {
		if k.Seq < seq && k.Shard == 0 {
			delete(c.oversize, k)
		}
	}
}

// Dump calls fn for every resident entry in most-recently-used order,
// without changing recency or counting hits. The snapshot layer uses it to
// spill the warm working set to disk; fn must not call back into the cache
// (the cache lock is held) and must treat the entry as immutable (it is
// shared with concurrent readers). fn returning false stops the walk.
func (c *Cache) Dump(fn func(Key, *Entry) bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; el = el.Next() {
		n := el.Value.(*node)
		if !fn(n.key, n.ent) {
			return
		}
	}
}

// Stats returns a snapshot of the counters and occupancy.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := c.stats
	st.Entries = c.ll.Len()
	st.Bytes = c.bytes
	return st
}

// insert adds (or replaces) an entry and evicts from the LRU tail until the
// budget holds.
//
// tkc:guardheld mu: callers hold c.mu
func (c *Cache) insert(key Key, ent *Entry) {
	if ent.Bytes > c.max {
		c.stats.Oversize++
		if len(c.oversize) >= 4096 {
			clear(c.oversize) // hard cap against unbounded key churn
		}
		c.oversize[key] = struct{}{}
		return
	}
	if el, ok := c.m[key]; ok {
		// A racing build of the same key landed first; keep the resident
		// entry (both are byte-identical by construction).
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&node{key: key, ent: ent})
	c.m[key] = el
	c.bytes += ent.Bytes
	for c.bytes > c.max {
		tail := c.ll.Back()
		if tail == nil || tail == el {
			break
		}
		c.remove(tail)
		c.stats.Evictions++
	}
}

// remove unlinks an element.
//
// tkc:guardheld mu: callers hold c.mu
func (c *Cache) remove(el *list.Element) {
	n := el.Value.(*node)
	c.ll.Remove(el)
	delete(c.m, n.key)
	c.bytes -= n.ent.Bytes
}
