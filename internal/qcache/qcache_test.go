package qcache

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"temporalkcore/internal/tgraph"
)

func key(seq int64, k int) Key {
	return Key{Seq: seq, K: k, W: tgraph.Window{Start: 1, End: 10}}
}

func entry(bytes int64) *Entry { return &Entry{Bytes: bytes} }

func TestLRUEvictionUnderPressure(t *testing.T) {
	c := New(1000)
	c.Add(key(1, 1), entry(400))
	c.Add(key(1, 2), entry(400))
	if _, ok := c.Probe(key(1, 1)); !ok {
		t.Fatal("entry 1 missing before pressure")
	}
	// Touching key 1 made key 2 the LRU tail; the next insert must evict 2.
	c.Add(key(1, 3), entry(400))
	if _, ok := c.Probe(key(1, 2)); ok {
		t.Fatal("LRU tail survived eviction pressure")
	}
	if _, ok := c.Probe(key(1, 1)); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, ok := c.Probe(key(1, 3)); !ok {
		t.Fatal("newest entry was evicted")
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes > 1000 {
		t.Fatalf("resident bytes %d exceed the %d budget", st.Bytes, 1000)
	}
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2", st.Entries)
	}
}

func TestOversizeEntryNotAdmitted(t *testing.T) {
	c := New(1000)
	c.Add(key(1, 1), entry(50))
	c.Add(key(1, 2), entry(1001)) // larger than the whole budget
	if _, ok := c.Probe(key(1, 2)); ok {
		t.Fatal("oversize entry was admitted")
	}
	if _, ok := c.Probe(key(1, 1)); !ok {
		t.Fatal("resident entry was disturbed by a rejected insert")
	}
	// The rejection is remembered, so callers can route repeat queries to
	// their uncached path instead of rebuilding, and counted.
	if !c.Uncacheable(key(1, 2)) {
		t.Fatal("oversize key not remembered as uncacheable")
	}
	if c.Uncacheable(key(1, 1)) {
		t.Fatal("admitted key marked uncacheable")
	}
	if st := c.Stats(); st.Oversize != 1 {
		t.Fatalf("oversize = %d, want 1", st.Oversize)
	}
	// Admits adds the fixed per-entry overhead to the table estimate.
	if c.Admits(1000-entryOverhead+1) || !c.Admits(1000-entryOverhead) {
		t.Fatal("Admits disagrees with the budget")
	}
	// Retirement clears the memo with the epochs.
	c.RetireBelow(2)
	if c.Uncacheable(key(1, 2)) {
		t.Fatal("retired oversize memo survived")
	}
}

func TestProbeCountsNoMiss(t *testing.T) {
	c := New(1 << 10)
	if _, ok := c.Probe(key(1, 1)); ok {
		t.Fatal("probe hit an empty cache")
	}
	c.Add(key(1, 1), entry(64))
	if _, ok := c.Probe(key(1, 1)); !ok {
		t.Fatal("probe missed a resident entry")
	}
	st := c.Stats()
	if st.Misses != 0 || st.Hits != 1 {
		t.Fatalf("probe accounting: hits=%d misses=%d, want 1/0", st.Hits, st.Misses)
	}
}

func TestBuildPanicDoesNotWedgeKey(t *testing.T) {
	c := New(1 << 20)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("build panic did not propagate")
			}
		}()
		c.GetOrBuild(context.Background(), key(1, 1), func() (*Entry, error) { panic("boom") })
	}()
	// The flight was cleaned up: a fresh build runs and succeeds.
	ent, how, err := c.GetOrBuild(context.Background(), key(1, 1), func() (*Entry, error) {
		return entry(64), nil
	})
	if err != nil || ent == nil || how != Built {
		t.Fatalf("key wedged after builder panic: ent=%v how=%v err=%v", ent, how, err)
	}
}

func TestSingleflightDedup(t *testing.T) {
	c := New(1 << 20)
	var builds atomic.Int64
	release := make(chan struct{})
	build := func() (*Entry, error) {
		builds.Add(1)
		<-release
		return entry(64), nil
	}

	const readers = 8
	outcomes := make([]Outcome, readers)
	var wg sync.WaitGroup
	started := make(chan struct{}, readers)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			ent, how, err := c.GetOrBuild(context.Background(), key(1, 1), build)
			if err != nil || ent == nil {
				t.Errorf("reader %d: ent=%v err=%v", i, ent, err)
			}
			outcomes[i] = how
		}(i)
	}
	for i := 0; i < readers; i++ {
		<-started
	}
	time.Sleep(20 * time.Millisecond) // let every goroutine reach the flight
	close(release)
	wg.Wait()

	if n := builds.Load(); n != 1 {
		t.Fatalf("build ran %d times, want 1", n)
	}
	built, shared := 0, 0
	for _, o := range outcomes {
		switch o {
		case Built:
			built++
		case Shared:
			shared++
		}
	}
	if built != 1 || shared != readers-1 {
		t.Fatalf("outcomes: %d built / %d shared, want 1 / %d", built, shared, readers-1)
	}
	st := c.Stats()
	if st.Misses != 1 || st.SingleflightShared != int64(readers-1) {
		t.Fatalf("stats: misses=%d shared=%d, want 1 / %d", st.Misses, st.SingleflightShared, readers-1)
	}

	// Every subsequent lookup is a plain hit.
	if _, how, err := c.GetOrBuild(context.Background(), key(1, 1), build); err != nil || how != Hit {
		t.Fatalf("post-flight lookup: outcome=%v err=%v, want Hit", how, err)
	}
}

func TestSingleflightWaiterRetriesAfterBuilderCancel(t *testing.T) {
	c := New(1 << 20)
	waiterIn := make(chan struct{})
	var calls atomic.Int64
	build := func() (*Entry, error) {
		if calls.Add(1) == 1 {
			<-waiterIn // hold the flight open until the waiter joins
			return nil, context.Canceled
		}
		return entry(64), nil
	}

	errs := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrBuild(context.Background(), key(1, 1), build)
		errs <- err
	}()
	// Wait for the leader's flight, then join it as a waiter.
	for {
		c.mu.Lock()
		n := len(c.flights)
		c.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	done := make(chan error, 1)
	go func() {
		ent, _, err := c.GetOrBuild(context.Background(), key(1, 1), build)
		if err == nil && ent == nil {
			err = errors.New("nil entry without error")
		}
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(waiterIn)

	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader error = %v, want context.Canceled", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("waiter should have retried past the cancelled builder, got %v", err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("build ran %d times, want 2 (cancelled leader + retrying waiter)", n)
	}
}

func TestWaiterOwnContextCancels(t *testing.T) {
	c := New(1 << 20)
	release := make(chan struct{})
	defer close(release)
	go c.GetOrBuild(context.Background(), key(1, 1), func() (*Entry, error) {
		<-release
		return entry(64), nil
	})
	for {
		c.mu.Lock()
		n := len(c.flights)
		c.mu.Unlock()
		if n == 1 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.GetOrBuild(ctx, key(1, 1), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("waiter error = %v, want its own context.Canceled", err)
	}
}

func TestRetireBelow(t *testing.T) {
	c := New(1 << 20)
	for seq := int64(1); seq <= 3; seq++ {
		c.Add(key(seq, 1), entry(64))
	}
	c.RetireBelow(3)
	for seq := int64(1); seq <= 2; seq++ {
		if _, ok := c.Probe(key(seq, 1)); ok {
			t.Fatalf("entry at retired seq %d survived", seq)
		}
	}
	if _, ok := c.Probe(key(3, 1)); !ok {
		t.Fatal("entry at the floor seq was dropped")
	}
	if st := c.Stats(); st.Retired != 2 {
		t.Fatalf("retired = %d, want 2", st.Retired)
	}

	// Retirement is advisory: a later insert below the floor (a long-held
	// snapshot rebuilding on miss) is admitted again, and the next
	// retirement drops it again. Lower floors are no-ops.
	c.Add(key(2, 9), entry(64))
	if _, ok := c.Probe(key(2, 9)); !ok {
		t.Fatal("re-insert below the retire floor was refused")
	}
	c.RetireBelow(1)
	if _, ok := c.Probe(key(2, 9)); !ok {
		t.Fatal("a lower RetireBelow disturbed resident entries")
	}
	c.RetireBelow(4) // the next (higher) retirement drops the re-insert
	if _, ok := c.Probe(key(2, 9)); ok {
		t.Fatal("the next retirement did not drop the re-inserted entry")
	}
}

// TestRetireBelowSparesShardEntries locks the sealed-shard exemption: a
// Key with Shard != 0 pins an immutable time-range shard, not an epoch, so
// epoch retirement must leave it resident (only LRU pressure evicts it).
func TestRetireBelowSparesShardEntries(t *testing.T) {
	c := New(1 << 20)
	plain := key(1, 1)
	shardK := key(1, 1)
	shardK.Shard = 1
	c.Add(plain, entry(64))
	c.Add(shardK, entry(64))
	c.RetireBelow(10)
	if _, ok := c.Probe(plain); ok {
		t.Fatal("plain entry below the floor survived retirement")
	}
	if _, ok := c.Probe(shardK); !ok {
		t.Fatal("sealed-shard entry was swept by epoch retirement")
	}
	if st := c.Stats(); st.Retired != 1 {
		t.Fatalf("retired = %d, want 1", st.Retired)
	}
}

func TestConcurrentMixedUse(t *testing.T) {
	c := New(8 << 10)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key(int64(i%7), w%3)
				switch i % 4 {
				case 0:
					c.Add(k, entry(256))
				case 1:
					c.Probe(k)
				case 2:
					if _, _, err := c.GetOrBuild(context.Background(), k, func() (*Entry, error) {
						return entry(256), nil
					}); err != nil {
						t.Errorf("GetOrBuild: %v", err)
					}
				case 3:
					c.RetireBelow(int64(i % 5))
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > 8<<10 {
		t.Fatalf("budget exceeded: %d bytes resident", st.Bytes)
	}
	if st.Entries < 0 || st.Bytes < 0 {
		t.Fatalf("negative occupancy: %+v", st)
	}
}

func TestStatsString(t *testing.T) {
	// Smoke: the stats snapshot is plain data usable in reports.
	c := New(1 << 10)
	c.Add(key(1, 1), entry(100))
	c.Probe(key(1, 1))
	if _, _, err := c.GetOrBuild(context.Background(), key(9, 9), func() (*Entry, error) {
		return entry(100), nil
	}); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	s := fmt.Sprintf("%+v", st)
	if st.Hits != 1 || st.Misses != 1 || s == "" {
		t.Fatalf("unexpected stats %+v", st)
	}
}
