package qcache

import (
	"testing"

	"temporalkcore/internal/paperex"
	"temporalkcore/internal/phc"
)

// TestPHCEntrySharesCache: PHC index entries live in the same LRU under
// AlgoPHC keys — sized by the index's resident bytes, disjoint from
// CoreTime keys over the same window, and retired with their epoch.
func TestPHCEntrySharesCache(t *testing.T) {
	g := paperex.Graph()
	ix, err := phc.Build(g, g.FullWindow())
	if err != nil {
		t.Fatal(err)
	}
	ent := NewPHCEntry(ix, 0)
	if ent.Phc != ix {
		t.Fatal("entry does not carry the index")
	}
	if ent.Bytes != ix.MemBytes()+entryOverhead {
		t.Fatalf("entry bytes = %d, want MemBytes %d + overhead %d", ent.Bytes, ix.MemBytes(), entryOverhead)
	}

	c := New(1 << 20)
	w := g.FullWindow()
	phcKey := Key{Seq: 3, W: w, Algo: AlgoPHC}
	ctKey := Key{Seq: 3, K: 0, W: w}
	c.Add(phcKey, ent)
	if _, ok := c.Probe(ctKey); ok {
		t.Fatal("PHC entry answered a CoreTime key over the same window")
	}
	got, ok := c.Probe(phcKey)
	if !ok {
		t.Fatal("PHC entry not resident")
	}
	if got.Phc != ix {
		t.Fatal("probe returned a different index")
	}

	// Epoch retirement is payload-agnostic: draining epochs below 4 drops
	// the seq-3 PHC entry like any CoreTime entry.
	c.RetireBelow(4)
	if _, ok := c.Probe(phcKey); ok {
		t.Fatal("retired PHC entry still resident")
	}
	if st := c.Stats(); st.Retired != 1 {
		t.Fatalf("retired = %d, want 1", st.Retired)
	}

	// An index bigger than the whole budget is refused and remembered, so
	// the serving layer routes repeats to its uncached path.
	small := New(ent.Bytes - entryOverhead - 1)
	small.Add(phcKey, ent)
	if !small.Uncacheable(phcKey) {
		t.Fatal("oversize PHC entry not remembered as uncacheable")
	}
}
