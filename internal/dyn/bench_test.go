package dyn_test

import (
	"testing"

	"temporalkcore/internal/core"
	"temporalkcore/internal/dyn"
	"temporalkcore/internal/enum"
	"temporalkcore/internal/gen"
	"temporalkcore/internal/tgraph"
)

// benchStream synthesises the CM (CollegeMsg) replica and splits its
// time-sorted edge list into a 99% base and a 1% append tail.
func benchStream(b *testing.B, edges int) (base, tail []tgraph.RawEdge) {
	b.Helper()
	rep, err := gen.ReplicaByCode("CM")
	if err != nil {
		b.Fatal(err)
	}
	g, err := rep.Generate(edges, 42)
	if err != nil {
		b.Fatal(err)
	}
	all := make([]tgraph.RawEdge, g.NumEdges())
	for i := range all {
		te := g.Edge(tgraph.EID(i))
		all[i] = tgraph.RawEdge{U: g.Label(te.U), V: g.Label(te.V), Time: g.RawTime(te.T)}
	}
	cut := len(all) * 99 / 100
	return all[:cut], all[cut:]
}

// trailing returns the window covering the last 2% of the ranks — the
// live span a streaming monitor re-queries after each batch.
func trailing(g *tgraph.Graph) tgraph.Window {
	return tgraph.Window{Start: 1 + g.TMax()*49/50, End: g.TMax()}
}

// BenchmarkAppendVsRebuild measures the streaming scenario the dynamic
// subsystem exists for: 1% new edges arrive on the CM replica and the
// trailing-window core count must be refreshed. The append path extends
// the graph in place and patches the CoreTime tables; the rebuild path
// re-ingests every edge into a fresh graph and builds the tables from
// scratch. The acceptance bar for PR 2 is append >= 5x faster.
func BenchmarkAppendVsRebuild(b *testing.B) {
	const k = 8
	base, tail := benchStream(b, 59835)
	all := append(append([]tgraph.RawEdge(nil), base...), tail...)

	b.Run("append", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			g, err := tgraph.FromRawEdges(base)
			if err != nil {
				b.Fatal(err)
			}
			d, err := dyn.New(g, k, trailing(g))
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()

			if _, err := g.Append(tail); err != nil {
				b.Fatal(err)
			}
			if err := d.Refresh(trailing(g)); err != nil {
				b.Fatal(err)
			}
			sink := &enum.CountSink{}
			d.Enumerate(sink)
		}
	})

	b.Run("rebuild", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			g, err := tgraph.FromRawEdges(all)
			if err != nil {
				b.Fatal(err)
			}
			sink := &enum.CountSink{}
			if _, err := core.Query(g, k, trailing(g), sink, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkPatchVsBuild isolates the CoreTime-table maintenance cost from
// graph ingestion: same 1% append, but only the index refresh is timed,
// against a from-scratch BuildScratch over the same window.
func BenchmarkPatchVsBuild(b *testing.B) {
	const k = 8
	base, tail := benchStream(b, 59835)

	b.Run("patch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			g, err := tgraph.FromRawEdges(base)
			if err != nil {
				b.Fatal(err)
			}
			d, err := dyn.New(g, k, trailing(g))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := g.Append(tail); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			if err := d.Refresh(trailing(g)); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("build", func(b *testing.B) {
		b.ReportAllocs()
		b.StopTimer()
		g, err := tgraph.FromRawEdges(append(append([]tgraph.RawEdge(nil), base...), tail...))
		if err != nil {
			b.Fatal(err)
		}
		d, err := dyn.New(g, k, trailing(g))
		if err != nil {
			b.Fatal(err)
		}
		_ = d
		b.StartTimer()
		for i := 0; i < b.N; i++ {
			if _, err := dyn.New(g, k, trailing(g)); err != nil {
				b.Fatal(err)
			}
		}
	})
}
