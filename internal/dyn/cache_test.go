package dyn_test

import (
	"math/rand"
	"testing"

	"temporalkcore/internal/dyn"
	"temporalkcore/internal/qcache"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// TestRefreshNoopOnRepublishedEpoch pins the stale-repair short-circuit:
// a refresh targeting the same (epoch seq, window) as the current view
// must not recompute anything just because the target is a different
// *Graph value (a re-publish of an unchanged graph).
func TestRefreshNoopOnRepublishedEpoch(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	g, err := tgraph.FromRawEdges(randomEdges(r, 12, 120))
	if err != nil {
		t.Fatal(err)
	}
	d, err := dyn.New(g, 2, g.FullWindow())
	if err != nil {
		t.Fatal(err)
	}

	// First frozen target: the view is still bound to the mutable graph,
	// so it must rebind (one patch/rebuild) even though seq and window are
	// unchanged — a view published for concurrent readers must never point
	// at mutable state.
	fz1 := g.Freeze()
	if err := d.RefreshAt(fz1, fz1.FullWindow(), nil); err != nil {
		t.Fatal(err)
	}
	before := d.Stats()
	if before.Noops != 0 {
		t.Fatalf("rebinding to the first frozen epoch was a noop: %+v", before)
	}

	// Re-publishing the unchanged graph must short-circuit: same seq, same
	// window, already epoch-bound.
	fz2 := g.Freeze()
	if err := d.RefreshAt(fz2, fz2.FullWindow(), nil); err != nil {
		t.Fatal(err)
	}
	after := d.Stats()
	if after.Noops != before.Noops+1 {
		t.Fatalf("re-published identical epoch did not short-circuit: %+v -> %+v", before, after)
	}
	if after.Patches != before.Patches || after.Rebuilds != before.Rebuilds {
		t.Fatalf("re-published identical epoch recomputed tables: %+v -> %+v", before, after)
	}

	// The view must still answer correctly after the noop.
	if got, want := countDyn(t, d), countQuery(t, g, 2, g.FullWindow()); got != want {
		t.Fatalf("after noop: %s != %s", got, want)
	}
}

// TestRefreshAdoptsCacheEntry pins the serving-cache integration: when the
// cache holds tables for the exact refresh target, the refresh adopts them
// without patching, and freshly patched tables are inserted for others.
func TestRefreshAdoptsCacheEntry(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	edges := randomEdges(r, 12, 160)
	cut := len(edges) * 3 / 4
	g, err := tgraph.FromRawEdges(edges[:cut])
	if err != nil {
		t.Fatal(err)
	}
	const k = 2
	d, err := dyn.New(g, k, g.FullWindow())
	if err != nil {
		t.Fatal(err)
	}
	c := qcache.New(1 << 20)
	d.SetCache(c)

	// First refresh after an append: a miss that patches and inserts.
	if _, err := g.Append(edges[cut:]); err != nil {
		t.Fatal(err)
	}
	fz := g.Freeze()
	if err := d.RefreshAt(fz, fz.FullWindow(), nil); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.CacheAdopts != 0 {
		t.Fatalf("first refresh adopted from an empty cache: %+v", st)
	}
	key := qcache.Key{Seq: fz.MutSeq(), K: k, W: fz.FullWindow()}
	ent, ok := c.Probe(key)
	if !ok {
		t.Fatal("refresh did not insert its patched tables into the cache")
	}

	// A second index targeting the same epoch adopts the entry instead of
	// patching, and answers identically.
	dAdopt, err := dyn.New(fz, k, tgraph.Window{Start: 1, End: fz.TMax() / 2})
	if err != nil {
		t.Fatal(err)
	}
	dAdopt.SetCache(c)
	if err := dAdopt.RefreshAt(fz, fz.FullWindow(), nil); err != nil {
		t.Fatal(err)
	}
	if st := dAdopt.Stats(); st.CacheAdopts != 1 {
		t.Fatalf("refresh with a resident entry did not adopt: %+v", st)
	}
	if got, want := countDyn(t, dAdopt), countQuery(t, fz, k, fz.FullWindow()); got != want {
		t.Fatalf("adopted view answers differently: %s != %s", got, want)
	}
	if ent.Ix.Size() == 0 && ent.Ecs.Size() == 0 {
		t.Fatal("cached entry is empty")
	}

	// The adopted entry's tables serve as the next patch's oracle: append
	// again and refresh; the result must still match a one-shot query.
	if _, err := g.Append([]tgraph.RawEdge{{U: 1, V: 2, Time: edges[len(edges)-1].Time + 1}}); err != nil {
		t.Fatal(err)
	}
	fz2 := g.Freeze()
	if err := dAdopt.RefreshAt(fz2, fz2.FullWindow(), nil); err != nil {
		t.Fatal(err)
	}
	if got, want := countDyn(t, dAdopt), countQuery(t, fz2, k, fz2.FullWindow()); got != want {
		t.Fatalf("patch from adopted oracle diverged: %s != %s", got, want)
	}
}

// TestDrainRetiresCacheEntries pins invalidation-by-drain: when a retired
// view's last reader releases, cache entries of epochs strictly older than
// the drained one are dropped (entries of the drained epoch itself survive
// one more generation — a snapshot pinned to it may still query).
func TestDrainRetiresCacheEntries(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	edges := randomEdges(r, 10, 180)
	cut := len(edges) / 3
	g, err := tgraph.FromRawEdges(edges[:cut])
	if err != nil {
		t.Fatal(err)
	}
	const k = 2
	d, err := dyn.New(g, k, g.FullWindow())
	if err != nil {
		t.Fatal(err)
	}
	c := qcache.New(1 << 20)
	d.SetCache(c)

	// Seed an entry at the pre-append epoch seq.
	oldKey := qcache.Key{Seq: g.MutSeq(), K: k, W: tgraph.Window{Start: 1, End: 1}}
	ix, ecs, err := vct.Build(g, k, oldKey.W)
	if err != nil {
		t.Fatal(err)
	}
	c.Add(oldKey, qcache.NewEntry(ix, ecs, 0))

	// First append: the refresh retires the initial view. Pin the new view
	// so the NEXT retirement's drain timing is observable.
	if _, err := g.Append(edges[cut : 2*cut]); err != nil {
		t.Fatal(err)
	}
	fz1 := g.Freeze()
	if err := d.RefreshAt(fz1, fz1.FullWindow(), nil); err != nil {
		t.Fatal(err)
	}
	_, release := d.Acquire() // pins the seq-1 view
	if _, ok := c.Probe(oldKey); !ok {
		t.Fatal("seq-0 entry dropped too early (only the seq-0 view drained so far)")
	}

	// Second append: the pinned seq-1 view is retired but must not drain —
	// and therefore must not retire the seq-0 entry — until released.
	if _, err := g.Append(edges[2*cut:]); err != nil {
		t.Fatal(err)
	}
	fz2 := g.Freeze()
	if err := d.RefreshAt(fz2, fz2.FullWindow(), nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Probe(oldKey); !ok {
		t.Fatal("entry dropped while a reader still pinned the seq-1 view")
	}
	release() // last reader of the seq-1 view: drain retires seqs < 1
	if _, ok := c.Probe(oldKey); ok {
		t.Fatal("drained view did not retire older epochs' cache entries")
	}
}
