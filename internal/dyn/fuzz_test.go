package dyn_test

import (
	"fmt"
	"testing"

	"temporalkcore/internal/core"
	"temporalkcore/internal/dyn"
	"temporalkcore/internal/enum"
	"temporalkcore/internal/tgraph"
)

// decodeStream turns fuzz bytes into a time-ordered edge stream plus a
// batch-split recipe. Byte 0 sizes the vertex universe, byte 1 picks the
// number of append batches; each following byte triple is one edge whose
// third byte advances time by 0-2 ranks, so any split point is appendable.
func decodeStream(data []byte) (edges []tgraph.RawEdge, batches int) {
	if len(data) < 8 {
		return nil, 0
	}
	n := int64(data[0])%14 + 3
	batches = int(data[1])%4 + 1
	t := int64(1)
	for i := 2; i+2 < len(data); i += 3 {
		t += int64(data[i+2] % 3)
		edges = append(edges, tgraph.RawEdge{
			U:    int64(data[i]) % n,
			V:    int64(data[i+1]) % n,
			Time: t,
		})
	}
	return edges, batches
}

// countAll renders the full observable result of count queries for a range
// of k values into one string, so equivalence checks are byte-exact.
func countAll(g *tgraph.Graph, d *dyn.Index) (string, error) {
	out := ""
	w := g.FullWindow()
	for k := 1; k <= 3; k++ {
		sink := &enum.CountSink{}
		st, err := core.Query(g, k, w, sink, core.Options{})
		if err != nil {
			return "", err
		}
		out += fmt.Sprintf("k=%d cores=%d edges=%d vct=%d ecs=%d\n", k, sink.Cores, sink.EdgeTotal, st.VCTSize, st.ECSSize)
	}
	if d != nil {
		sink := &enum.CountSink{}
		d.Enumerate(sink)
		out += fmt.Sprintf("dyn k=%d cores=%d edges=%d vct=%d ecs=%d\n", d.K(), sink.Cores, sink.EdgeTotal, d.VCT().Size(), d.ECS().Size())
	}
	return out, nil
}

// FuzzAppendEquivalence feeds random edge batches through the append path
// (graph Append + dyn.Index patching) and requires byte-identical count
// results versus building the same graph in one shot.
func FuzzAppendEquivalence(f *testing.F) {
	f.Add([]byte("\x05\x02\x01\x02\x01\x02\x03\x01\x01\x03\x02\x03\x01\x00\x04\x05\x02\x01"))
	f.Add([]byte{9, 3, 1, 2, 0, 2, 3, 1, 3, 1, 0, 4, 5, 2, 1, 2, 2, 0, 3, 4, 1, 4, 5, 0, 5, 6, 2})
	f.Add([]byte{200, 250, 100, 101, 1, 102, 103, 0, 100, 102, 1, 101, 103, 0, 100, 103, 2, 101, 102, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		edges, batches := decodeStream(data)
		if len(edges) < 4 {
			return
		}
		cut := len(edges) / (batches + 1)
		if cut == 0 {
			return
		}

		// Append path: prefix build, then batches through Append with a
		// dyn.Index refreshed after each batch.
		g, err := tgraph.FromRawEdges(edges[:cut])
		if err != nil {
			return // prefix can be empty of usable edges (all self loops)
		}
		d, err := dyn.New(g, 2, g.FullWindow())
		if err != nil {
			t.Fatalf("dyn.New: %v", err)
		}
		for i := cut; i < len(edges); i += cut {
			j := i + cut
			if j > len(edges) {
				j = len(edges)
			}
			if _, err := g.Append(edges[i:j]); err != nil {
				t.Fatalf("Append(%d:%d): %v", i, j, err)
			}
			if err := d.Refresh(g.FullWindow()); err != nil {
				t.Fatalf("Refresh: %v", err)
			}
		}
		got, err := countAll(g, d)
		if err != nil {
			t.Fatalf("append path query: %v", err)
		}

		// One-shot path on an identically parameterised fresh build.
		gFull, err := tgraph.FromRawEdges(edges)
		if err != nil {
			t.Fatalf("one-shot build: %v", err)
		}
		dFull, err := dyn.New(gFull, 2, gFull.FullWindow())
		if err != nil {
			t.Fatalf("one-shot dyn.New: %v", err)
		}
		want, err := countAll(gFull, dFull)
		if err != nil {
			t.Fatalf("one-shot query: %v", err)
		}

		if got != want {
			t.Fatalf("append path diverges from one-shot build\n--- append ---\n%s--- one-shot ---\n%s", got, want)
		}
	})
}
