package dyn_test

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"temporalkcore/internal/core"
	"temporalkcore/internal/dyn"
	"temporalkcore/internal/enum"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// countQuery runs a one-shot count query and renders every observable
// result dimension into a comparable string.
func countQuery(t *testing.T, g *tgraph.Graph, k int, w tgraph.Window) string {
	t.Helper()
	sink := &enum.CountSink{}
	st, err := core.Query(g, k, w, sink, core.Options{})
	if err != nil {
		t.Fatalf("core.Query(k=%d, w=%v): %v", k, w, err)
	}
	return fmt.Sprintf("cores=%d edges=%d vct=%d ecs=%d", sink.Cores, sink.EdgeTotal, st.VCTSize, st.ECSSize)
}

// countDyn renders the same dimensions out of a dyn.Index.
func countDyn(t *testing.T, d *dyn.Index) string {
	t.Helper()
	sink := &enum.CountSink{}
	d.Enumerate(sink)
	return fmt.Sprintf("cores=%d edges=%d vct=%d ecs=%d", sink.Cores, sink.EdgeTotal, d.VCT().Size(), d.ECS().Size())
}

func randomEdges(r *rand.Rand, n, m int) []tgraph.RawEdge {
	var edges []tgraph.RawEdge
	time := int64(1)
	for len(edges) < m {
		if r.Intn(3) == 0 {
			time++
		}
		edges = append(edges, tgraph.RawEdge{U: int64(r.Intn(n)), V: int64(r.Intn(n)), Time: time})
	}
	return edges
}

// TestIndexFollowsAppends grows a graph batch by batch; after every batch
// the refreshed index must answer exactly like a one-shot query on the
// current graph, over both the full range and a trailing window.
func TestIndexFollowsAppends(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		r := rand.New(rand.NewSource(seed))
		edges := randomEdges(r, 6+r.Intn(20), 60+r.Intn(200))
		nb := 2 + r.Intn(4)
		cut := len(edges) / (nb + 1)
		g, err := tgraph.FromRawEdges(edges[:cut])
		if err != nil {
			t.Fatal(err)
		}
		k := 2 + r.Intn(2)
		d, err := dyn.New(g, k, g.FullWindow())
		if err != nil {
			t.Fatal(err)
		}
		for i := cut; i < len(edges); i += cut {
			j := i + cut
			if j > len(edges) {
				j = len(edges)
			}
			if _, err := g.Append(edges[i:j]); err != nil {
				t.Fatalf("seed %d: Append: %v", seed, err)
			}
			// Trailing window: last ~half of the ranks.
			w := tgraph.Window{Start: 1 + g.TMax()/2, End: g.TMax()}
			for _, win := range []tgraph.Window{g.FullWindow(), w} {
				if err := d.Refresh(win); err != nil {
					t.Fatalf("seed %d: Refresh(%v): %v", seed, win, err)
				}
				if got, want := countDyn(t, d), countQuery(t, g, k, win); got != want {
					t.Fatalf("seed %d k=%d w=%v after append: dyn %q != one-shot %q", seed, k, win, got, want)
				}
			}
		}
		st := d.Stats()
		if st.Patches == 0 {
			t.Fatalf("seed %d: no refresh used the patch path (stats %+v)", seed, st)
		}
	}
}

// TestIndexShortCachedWindow regresses the cachedEnd-crossing bug: an
// index whose cached window ends before the graph frontier must still
// refresh to a wider window correctly (the transition crossing the cached
// range end must not drop the leaving-edge worklist pushes of vertices
// that were pinned until that very transition).
func TestIndexShortCachedWindow(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		r := rand.New(rand.NewSource(seed))
		edges := randomEdges(r, 5+r.Intn(15), 40+r.Intn(150))
		cut := len(edges) * 3 / 4
		g, err := tgraph.FromRawEdges(edges[:cut])
		if err != nil {
			t.Fatal(err)
		}
		if g.TMax() < 3 {
			continue
		}
		k := 2
		// Cached window ends 1-2 ranks before the pre-append frontier.
		short := tgraph.Window{Start: 1, End: g.TMax() - tgraph.TS(1+r.Intn(2))}
		d, err := dyn.New(g, k, short)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := g.Append(edges[cut:]); err != nil {
			t.Fatal(err)
		}
		if err := d.Refresh(g.FullWindow()); err != nil {
			t.Fatal(err)
		}
		if got, want := countDyn(t, d), countQuery(t, g, k, g.FullWindow()); got != want {
			t.Fatalf("seed %d: refresh from short cached window %v: dyn %q != one-shot %q", seed, short, got, want)
		}
	}
}

func TestIndexNoopAndStale(t *testing.T) {
	g := tgraph.MustFromTriples(
		[3]int64{1, 2, 1}, [3]int64{2, 3, 1}, [3]int64{1, 3, 2}, [3]int64{3, 4, 3},
	)
	d, err := dyn.New(g, 2, g.FullWindow())
	if err != nil {
		t.Fatal(err)
	}
	if d.Stale(g.FullWindow()) {
		t.Fatal("fresh index reported stale")
	}
	if err := d.Refresh(g.FullWindow()); err != nil {
		t.Fatal(err)
	}
	if st := d.Stats(); st.Noops != 1 {
		t.Fatalf("stats = %+v, want one noop", st)
	}
	if _, err := g.Append([]tgraph.RawEdge{{U: 1, V: 4, Time: 5}}); err != nil {
		t.Fatal(err)
	}
	if !d.Stale(g.FullWindow()) {
		t.Fatal("index not stale after append")
	}
	if err := d.Refresh(tgraph.Window{Start: 1, End: g.TMax() + 1}); err == nil {
		t.Fatal("refresh beyond TMax succeeded")
	}
	if err := d.Refresh(g.FullWindow()); err != nil {
		t.Fatal(err)
	}
	if d.Stale(g.FullWindow()) {
		t.Fatal("index stale after refresh")
	}
}

// countView renders the dimensions of a pinned View by enumerating it
// with a private scratch, the way concurrent readers do.
func countView(v *dyn.View) string {
	sink := &enum.CountSink{}
	var s enum.Scratch
	enum.EnumerateStop(v.G, v.Ecs, sink, &s, nil)
	return fmt.Sprintf("cores=%d edges=%d vct=%d ecs=%d", sink.Cores, sink.EdgeTotal, v.Ix.Size(), v.Ecs.Size())
}

// TestViewPinnedAcrossRefreshes: a pinned View must keep answering for its
// own epoch byte-identically while the writer appends, freezes and
// refreshes through several newer generations (whose arenas would have
// overwritten a naive ping-pong pair).
func TestViewPinnedAcrossRefreshes(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	edges := randomEdges(r, 15, 400)
	g, err := tgraph.FromRawEdges(edges[:150])
	if err != nil {
		t.Fatal(err)
	}
	d, err := dyn.New(g, 2, g.FullWindow())
	if err != nil {
		t.Fatal(err)
	}

	type pinned struct {
		v       *dyn.View
		release func()
		want    string
	}
	var pins []pinned
	for i := 150; i < len(edges); i += 50 {
		fz := g.Freeze()
		if err := d.RefreshAt(fz, fz.FullWindow(), nil); err != nil {
			t.Fatal(err)
		}
		v, release := d.Acquire()
		if v.G != fz || !v.G.Frozen() {
			t.Fatal("published View not bound to the frozen epoch")
		}
		pins = append(pins, pinned{v: v, release: release, want: countView(v)})

		j := min(i+50, len(edges))
		if _, err := g.Append(edges[i:j]); err != nil {
			t.Fatal(err)
		}
		for pi, p := range pins {
			if got := countView(p.v); got != p.want {
				t.Fatalf("pinned view %d changed under later refreshes:\n got %s\nwant %s", pi, got, p.want)
			}
		}
	}
	// Each pinned view must also match a quiesced one-shot rebuild of its
	// own epoch.
	for pi, p := range pins {
		if got, want := countView(p.v), countQuery(t, p.v.G, d.K(), p.v.W); got != want {
			t.Fatalf("pinned view %d: %q != quiesced rebuild %q", pi, got, want)
		}
		p.release()
	}
}

// TestRefreshAtStop: a cancelled refresh returns vct.ErrStopped, keeps the
// current generation serving, and a retried refresh succeeds.
func TestRefreshAtStop(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	edges := randomEdges(r, 20, 600)
	g, err := tgraph.FromRawEdges(edges[:200])
	if err != nil {
		t.Fatal(err)
	}
	d, err := dyn.New(g, 2, g.FullWindow())
	if err != nil {
		t.Fatal(err)
	}
	before := countDyn(t, d)
	if _, err := g.Append(edges[200:]); err != nil {
		t.Fatal(err)
	}
	err = d.RefreshAt(g, g.FullWindow(), func() bool { return true })
	if err == nil {
		t.Skip("refresh finished before the first cancellation poll")
	}
	if !errors.Is(err, vct.ErrStopped) {
		t.Fatalf("cancelled refresh = %v, want vct.ErrStopped", err)
	}
	if got := countDyn(t, d); got != before {
		t.Fatalf("cancelled refresh disturbed the current view: %q != %q", got, before)
	}
	if err := d.RefreshAt(g, g.FullWindow(), nil); err != nil {
		t.Fatal(err)
	}
	if got, want := countDyn(t, d), countQuery(t, g, d.K(), g.FullWindow()); got != want {
		t.Fatalf("refresh after a cancelled refresh: %q != %q", got, want)
	}
}
