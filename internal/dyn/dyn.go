// Package dyn maintains time-range k-core query state over a growing
// temporal graph. Where package core answers one-shot queries against a
// frozen graph, dyn.Index follows a graph through tgraph.Append calls and
// window moves: each Refresh patches the cached CoreTime tables (VCT +
// ECS) for the dirty time-suffix via vct.PatchScratch instead of
// rebuilding them, which is what makes continuously ingesting workloads
// (fraud streams, contact traces) affordable.
//
// Concurrency. The tables live in refcounted generations (Views): the
// single writer Refreshes — building the next generation in a spare arena
// while the current one keeps serving — and publishes it atomically; any
// number of readers Acquire the current View lock-free and enumerate it
// for as long as they hold the pin, regardless of how many refreshes
// happen meanwhile. A retired View's arena returns to the index's free
// list when its last reader drains, so steady-state serving ping-pongs
// between a bounded set of arenas instead of allocating per refresh.
package dyn

import (
	"fmt"
	"sync"
	"time"

	"temporalkcore/internal/enum"
	"temporalkcore/internal/epoch"
	"temporalkcore/internal/qcache"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// View is one immutable generation of the maintained tables: the CoreTime
// index and edge core window skylines over window W, built against graph
// state G (the live graph for quiescent use, a frozen epoch under
// concurrent serving). A View acquired from Index.Acquire stays valid —
// tables unmodified, arena unreclaimed — until its release fn is called.
type View struct {
	G   *tgraph.Graph // graph state the tables were built against
	Ix  *vct.Index
	Ecs *vct.ECS
	W   tgraph.Window
	Seq int64 // G.MutSeq() when the tables were built

	seqTMax tgraph.TS // G.TMax() at build: the dirty watermark for the next patch
	s       *vct.Scratch
}

// Index is a dynamically maintained CoreTime view: one (k, window) whose
// tables follow the graph through appends. Refresh and the other write
// methods are single-writer (one goroutine at a time, not concurrent with
// Append on the live graph); Acquire is lock-free and safe from any
// goroutine.
type Index struct {
	g *tgraph.Graph
	k int

	guard epoch.Guard[*View]

	// cache, when non-nil, is the graph's serving cache: Refresh consults
	// it before patching (adopting a resident entry for the exact target
	// (epoch seq, k, window) without recomputing) and inserts a self-owned
	// clone of freshly patched tables so other execution paths hit. When a
	// retired View drains — its epoch has no reader left — entries of
	// older epochs are retired with it.
	cache *qcache.Cache

	mu   sync.Mutex     // guards free (drains release arenas on reader goroutines)
	free []*vct.Scratch // tkc:guardedby mu

	enumScratch enum.Scratch

	stats Stats
}

// Stats counts how refreshes were served.
type Stats struct {
	Patches  int // incremental patched refreshes
	Rebuilds int // full scratch rebuilds, the initial build included
	Noops    int // refreshes that found the tables current
	// CacheAdopts counts refreshes served by adopting a serving-cache
	// entry for the exact target (epoch seq, k, window) — no patching, no
	// rebuilding, one cache lookup.
	CacheAdopts int

	// PatchTime and RebuildTime accumulate the wall time spent in each.
	PatchTime   time.Duration
	RebuildTime time.Duration
}

// New builds the initial tables for (k, w).
func New(g *tgraph.Graph, k int, w tgraph.Window) (*Index, error) {
	if g == nil {
		return nil, fmt.Errorf("dyn: nil graph")
	}
	d := &Index{g: g, k: k}
	began := time.Now()
	s := new(vct.Scratch)
	ix, ecs, err := vct.BuildScratch(g, k, w, s)
	if err != nil {
		return nil, err
	}
	d.publish(&View{G: g, Ix: ix, Ecs: ecs, W: w, Seq: g.MutSeq(), seqTMax: g.TMax(), s: s})
	d.stats.Rebuilds++
	d.stats.RebuildTime += time.Since(began)
	return d, nil
}

// SetCache attaches the graph's serving cache (nil detaches). Writer-side:
// call it before the index is shared with readers, not concurrently with
// Refresh.
func (d *Index) SetCache(c *qcache.Cache) { d.cache = c }

func (d *Index) publish(v *View) {
	d.guard.Publish(v, func(old *View) {
		if old.s != nil { // cache-adopted views own no arena
			d.mu.Lock()
			d.free = append(d.free, old.s)
			d.mu.Unlock()
		}
		if d.cache != nil {
			// The drained epoch has no watcher reader left; entries of
			// strictly older epochs can only serve long-held snapshots,
			// which stay correct (they rebuild on miss).
			d.cache.RetireBelow(old.Seq)
		}
	})
}

// spare returns an arena no live or pinned View references.
func (d *Index) spare() *vct.Scratch {
	d.mu.Lock()
	defer d.mu.Unlock()
	if n := len(d.free); n > 0 {
		s := d.free[n-1]
		d.free = d.free[:n-1]
		return s
	}
	return new(vct.Scratch)
}

// Refresh re-targets the view to w against the live graph, reflecting
// every append since the last refresh. See RefreshAt for the general form.
func (d *Index) Refresh(w tgraph.Window) error { return d.RefreshAt(d.g, w, nil) }

// RefreshAt re-targets the view to w against graph state at — the live
// graph, or a frozen epoch of it under concurrent serving, in which case
// the published View is bound to that epoch and readers never touch the
// mutable graph. The cached tables serve as the patch oracle: appends
// dirty only ranks at or after the TMax recorded when they were built
// (appends are time-ordered), so everything older is reused verbatim.
//
// stop, when non-nil, cancels the patch (and its full-rebuild fallback)
// with a bounded poll stride: RefreshAt then returns vct.ErrStopped, the
// current View keeps serving unchanged, and the spare arena returns to the
// free list — cancelled refreshes leak nothing.
//
// tkc:cancellable
func (d *Index) RefreshAt(at *tgraph.Graph, w tgraph.Window, stop func() bool) error {
	if at == nil {
		at = d.g
	}
	if !w.Valid() || w.End > at.TMax() {
		return fmt.Errorf("dyn: window [%d,%d] outside graph range [1,%d]", w.Start, w.End, at.TMax())
	}
	cur, _ := d.guard.Current()
	// Short-circuit on identical (epoch seq, window): the tables are a pure
	// function of that pair on an append-only graph, so a refresh targeting
	// the same state recomputes nothing — even when `at` is a different
	// *Graph value (a re-publish of an unchanged graph). The current View's
	// binding is only kept when that is safe for concurrent readers: either
	// it is the exact same graph value, or it is already an immutable
	// epoch. A View still bound to the mutable live graph must rebind to
	// the frozen `at`, so it falls through.
	if w == cur.W && at.MutSeq() == cur.Seq && (at == cur.G || cur.G.Frozen()) {
		d.stats.Noops++
		return nil
	}
	key := qcache.Key{Seq: at.MutSeq(), K: d.k, W: w, Algo: qcache.AlgoEnum}
	if d.cache != nil {
		if ent, ok := d.cache.Probe(key); ok {
			d.publish(&View{G: at, Ix: ent.Ix, Ecs: ent.Ecs, W: w, Seq: at.MutSeq(), seqTMax: at.TMax()})
			d.stats.CacheAdopts++
			return nil
		}
	}
	dirtyFrom := tgraph.InfTime
	if at.MutSeq() != cur.Seq {
		dirtyFrom = cur.seqTMax
	}
	began := time.Now()
	s := d.spare()
	ix, ecs, patched, err := vct.PatchScratchStop(at, d.k, w, cur.Ix, dirtyFrom, s, stop)
	if err != nil {
		d.mu.Lock()
		d.free = append(d.free, s)
		d.mu.Unlock()
		return err
	}
	d.publish(&View{G: at, Ix: ix, Ecs: ecs, W: w, Seq: at.MutSeq(), seqTMax: at.TMax(), s: s})
	took := time.Since(began)
	if patched {
		d.stats.Patches++
		d.stats.PatchTime += took
	} else {
		d.stats.Rebuilds++
		d.stats.RebuildTime += took
	}
	if d.cache != nil && d.cache.Admits(ix.MemBytes()+ecs.MemBytes()) {
		// Insert a self-owned clone (the View's tables are arena-backed and
		// the arena is recycled when the View drains) so one-shot, batch and
		// prepared queries on this epoch's window skip their CoreTime phase.
		// Tables too large to ever be admitted skip the clone entirely.
		d.cache.Add(key, qcache.NewEntry(ix.Clone(), ecs.Clone(), took))
	}
	return nil
}

// Acquire pins the current View for a reader and returns it with the
// release closure the reader must call exactly once when done. It is
// lock-free and safe from any goroutine, concurrently with Refresh.
//
// tkc:frozensource
// tkc:acquires
func (d *Index) Acquire() (*View, func()) {
	v, release, _ := d.guard.Acquire() // New always publishes; ok cannot be false
	return v, release
}

// K returns the core parameter.
func (d *Index) K() int { return d.k }

// current returns the live View without pinning (writer-side only).
func (d *Index) current() *View {
	v, _ := d.guard.Current()
	return v
}

// Window returns the compressed window the tables currently cover.
func (d *Index) Window() tgraph.Window { return d.current().W }

// VCT returns the live vertex core time index. Writer-side: it is only
// guaranteed valid until the next Refresh (readers pin a View instead).
func (d *Index) VCT() *vct.Index { return d.current().Ix }

// ECS returns the live edge core window skylines; same contract as VCT.
func (d *Index) ECS() *vct.ECS { return d.current().Ecs }

// Stale reports whether the live graph has been appended to since the last
// refresh, or the tables cover a different window than w.
func (d *Index) Stale(w tgraph.Window) bool { return d.StaleAt(d.g, w) }

// StaleAt is Stale against an explicit graph state (a frozen epoch under
// concurrent serving).
func (d *Index) StaleAt(at *tgraph.Graph, w tgraph.Window) bool {
	cur := d.current()
	return w != cur.W || at.MutSeq() != cur.Seq
}

// Enumerate streams every distinct temporal k-core of the current window
// to sink, reusing the index's enumeration scratch (writer-side; readers
// Acquire a View and run package enum with their own scratch). It returns
// false when the sink stopped early.
func (d *Index) Enumerate(sink enum.Sink) bool {
	done, _ := d.EnumerateStop(sink, nil)
	return done
}

// EnumerateStop is Enumerate with a cancellation hook polled with a
// bounded stride; see enum.EnumerateStop.
//
// tkc:cancellable
func (d *Index) EnumerateStop(sink enum.Sink, stop func() bool) (done, cancelled bool) {
	v := d.current()
	return enum.EnumerateStop(v.G, v.Ecs, sink, &d.enumScratch, stop)
}

// Stats returns the refresh counters.
func (d *Index) Stats() Stats { return d.stats }
