// Package dyn maintains time-range k-core query state over a growing
// temporal graph. Where package core answers one-shot queries against a
// frozen graph, dyn.Index follows a graph through tgraph.Append calls and
// window moves: each Refresh patches the cached CoreTime tables (VCT +
// ECS) for the dirty time-suffix via vct.PatchScratch instead of
// rebuilding them, which is what makes continuously ingesting workloads
// (fraud streams, contact traces) affordable.
package dyn

import (
	"fmt"
	"time"

	"temporalkcore/internal/enum"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// Index is a dynamically maintained CoreTime view: one (k, window) whose
// tables follow the graph through appends. An Index is single-writer:
// Refresh and the query methods must not run concurrently with each other
// or with Graph.Append.
type Index struct {
	g *tgraph.Graph
	k int

	w   tgraph.Window
	ix  *vct.Index
	ecs *vct.ECS

	// Ping-pong arenas: the live tables are backed by cur; a refresh
	// patches from them into spare, then the two swap. Two arenas instead
	// of one is what lets the patcher read the cached index while it
	// assembles the replacement.
	cur, spare *vct.Scratch

	enumScratch enum.Scratch

	seq     int64     // graph mutation sequence the tables reflect
	seqTMax tgraph.TS // graph TMax at that sequence

	stats Stats
}

// Stats counts how refreshes were served.
type Stats struct {
	Patches  int // incremental patched refreshes
	Rebuilds int // full scratch rebuilds, the initial build included
	Noops    int // refreshes that found the tables current

	// PatchTime and RebuildTime accumulate the wall time spent in each.
	PatchTime   time.Duration
	RebuildTime time.Duration
}

// New builds the initial tables for (k, w).
func New(g *tgraph.Graph, k int, w tgraph.Window) (*Index, error) {
	if g == nil {
		return nil, fmt.Errorf("dyn: nil graph")
	}
	d := &Index{g: g, k: k, cur: new(vct.Scratch), spare: new(vct.Scratch)}
	began := time.Now()
	ix, ecs, err := vct.BuildScratch(g, k, w, d.spare)
	if err != nil {
		return nil, err
	}
	d.adopt(w, ix, ecs)
	d.stats.Rebuilds++
	d.stats.RebuildTime += time.Since(began)
	return d, nil
}

func (d *Index) adopt(w tgraph.Window, ix *vct.Index, ecs *vct.ECS) {
	d.cur, d.spare = d.spare, d.cur
	d.w, d.ix, d.ecs = w, ix, ecs
	d.seq = d.g.MutSeq()
	d.seqTMax = d.g.TMax()
}

// Refresh re-targets the view to w, reflecting every append since the last
// refresh. The cached tables serve as the patch oracle: appends dirty only
// ranks at or after the TMax recorded when the tables were built (appends
// are time-ordered), so everything older is reused verbatim.
func (d *Index) Refresh(w tgraph.Window) error {
	if !w.Valid() || w.End > d.g.TMax() {
		return fmt.Errorf("dyn: window [%d,%d] outside graph range [1,%d]", w.Start, w.End, d.g.TMax())
	}
	if w == d.w && d.g.MutSeq() == d.seq {
		d.stats.Noops++
		return nil
	}
	dirtyFrom := tgraph.InfTime
	if d.g.MutSeq() != d.seq {
		dirtyFrom = d.seqTMax
	}
	began := time.Now()
	ix, ecs, patched, err := vct.PatchScratch(d.g, d.k, w, d.ix, dirtyFrom, d.spare)
	if err != nil {
		return err
	}
	d.adopt(w, ix, ecs)
	if patched {
		d.stats.Patches++
		d.stats.PatchTime += time.Since(began)
	} else {
		d.stats.Rebuilds++
		d.stats.RebuildTime += time.Since(began)
	}
	return nil
}

// K returns the core parameter.
func (d *Index) K() int { return d.k }

// Window returns the compressed window the tables currently cover.
func (d *Index) Window() tgraph.Window { return d.w }

// VCT returns the live vertex core time index. It is only valid until the
// next Refresh.
func (d *Index) VCT() *vct.Index { return d.ix }

// ECS returns the live edge core window skylines; valid until the next
// Refresh.
func (d *Index) ECS() *vct.ECS { return d.ecs }

// Stale reports whether the graph has been appended to since the last
// refresh, or the tables cover a different window than w.
func (d *Index) Stale(w tgraph.Window) bool {
	return w != d.w || d.g.MutSeq() != d.seq
}

// Enumerate streams every distinct temporal k-core of the current window
// to sink, reusing the index's enumeration scratch. It returns false when
// the sink stopped early.
func (d *Index) Enumerate(sink enum.Sink) bool {
	done, _ := d.EnumerateStop(sink, nil)
	return done
}

// EnumerateStop is Enumerate with a cancellation hook polled with a
// bounded stride; see enum.EnumerateStop.
func (d *Index) EnumerateStop(sink enum.Sink, stop func() bool) (done, cancelled bool) {
	return enum.EnumerateStop(d.g, d.ecs, sink, &d.enumScratch, stop)
}

// Stats returns the refresh counters.
func (d *Index) Stats() Stats { return d.stats }
