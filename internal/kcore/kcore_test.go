package kcore_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"temporalkcore/internal/kcore"
	"temporalkcore/internal/paperex"
	"temporalkcore/internal/tgraph"
)

func TestPaperWindows(t *testing.T) {
	g := paperex.Graph()
	p := kcore.NewPeeler(g)
	cases := []struct {
		ts, te tgraph.TS
		k      int
		want   []int64 // expected core vertex labels
	}{
		{1, 4, 2, []int64{1, 2, 3, 4, 9}},
		{2, 3, 2, []int64{1, 2, 4}},
		{6, 7, 2, []int64{1, 3, 5}},
		{5, 5, 2, []int64{1, 6, 7}},
		{3, 5, 2, []int64{1, 2, 4, 6, 7, 8}},
		{7, 7, 2, nil},
		{1, 7, 3, nil}, // kmax of the example graph is 2
	}
	for _, c := range cases {
		res := p.CoreOfWindow(c.k, tgraph.Window{Start: c.ts, End: c.te})
		got := map[int64]bool{}
		for v := 0; v < g.NumVertices(); v++ {
			if res.InCore[v] {
				got[g.Label(tgraph.VID(v))] = true
			}
		}
		if len(got) != len(c.want) {
			t.Errorf("core(%d,[%d,%d]): got %v, want %v", c.k, c.ts, c.te, got, c.want)
			continue
		}
		for _, l := range c.want {
			if !got[l] {
				t.Errorf("core(%d,[%d,%d]): missing %d", c.k, c.ts, c.te, l)
			}
		}
	}
}

func TestCoreEdges(t *testing.T) {
	g := paperex.Graph()
	p := kcore.NewPeeler(g)
	edges := p.CoreEdgesOfWindow(2, tgraph.Window{Start: 1, End: 4}, nil)
	if len(edges) != 6 {
		t.Errorf("core edges of [1,4]: %d, want 6", len(edges))
	}
	for _, e := range edges {
		te := g.Edge(e)
		if te.T < 1 || te.T > 4 {
			t.Errorf("edge outside window: %v", te)
		}
	}
}

func TestPeelerReuse(t *testing.T) {
	g := paperex.Graph()
	p := kcore.NewPeeler(g)
	// Interleave windows; results must be independent of call history.
	a1 := p.CoreOfWindow(2, tgraph.Window{Start: 1, End: 4}).Vertices
	_ = p.CoreOfWindow(2, tgraph.Window{Start: 5, End: 7}).Vertices
	a2 := p.CoreOfWindow(2, tgraph.Window{Start: 1, End: 4}).Vertices
	if a1 != a2 {
		t.Errorf("peeler not reusable: %d then %d", a1, a2)
	}
}

func TestDecomposePaper(t *testing.T) {
	g := paperex.Graph()
	core, kmax := kcore.Decompose(g, g.FullWindow())
	if kmax != 2 {
		t.Errorf("kmax = %d, want 2", kmax)
	}
	// Every vertex of the example participates in some 2-core.
	for v := 0; v < g.NumVertices(); v++ {
		if core[v] < 1 {
			t.Errorf("vertex %d core number %d", v, core[v])
		}
	}
	if kcore.KMax(g) != 2 {
		t.Errorf("KMax = %d", kcore.KMax(g))
	}
}

// naiveCoreNumber peels iteratively for each k to cross-check Decompose.
func naiveCoreNumbers(g *tgraph.Graph, w tgraph.Window) []int32 {
	p := kcore.NewPeeler(g)
	out := make([]int32, g.NumVertices())
	for k := 1; ; k++ {
		res := p.CoreOfWindow(k, w)
		any := false
		for v := range out {
			if res.InCore[v] {
				out[v] = int32(k)
				any = true
			}
		}
		if !any {
			return out
		}
	}
}

func TestQuickDecomposeMatchesPeeling(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var b tgraph.Builder
		n := 3 + r.Intn(12)
		m := 3 + r.Intn(60)
		for i := 0; i < m; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				v = (v + 1) % n
			}
			b.Add(int64(u), int64(v), int64(1+r.Intn(8)))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		w := g.FullWindow()
		want := naiveCoreNumbers(g, w)
		got, kmax := kcore.Decompose(g, w)
		maxSeen := int32(0)
		for v := range want {
			if got[v] != want[v] {
				return false
			}
			if got[v] > maxSeen {
				maxSeen = got[v]
			}
		}
		return kmax == int(maxSeen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestQuickCoreProperties: every peeling result has min degree >= k inside
// the core and is maximal (no peeled vertex has k core neighbours).
func TestQuickCoreProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		var b tgraph.Builder
		n := 3 + r.Intn(10)
		m := 3 + r.Intn(50)
		tmax := 1 + r.Intn(8)
		for i := 0; i < m; i++ {
			u, v := r.Intn(n), r.Intn(n)
			if u == v {
				v = (v + 1) % n
			}
			b.Add(int64(u), int64(v), int64(1+r.Intn(tmax)))
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		k := 1 + r.Intn(4)
		ts := tgraph.TS(1 + r.Intn(int(g.TMax())))
		te := ts + tgraph.TS(r.Intn(int(g.TMax()-ts)+1))
		w := tgraph.Window{Start: ts, End: te}
		p := kcore.NewPeeler(g)
		res := p.CoreOfWindow(k, w)
		for v := 0; v < g.NumVertices(); v++ {
			d := 0
			for _, nb := range g.Neighbours(tgraph.VID(v)) {
				ft := g.FirstPairTimeAtOrAfter(nb.Pair, w.Start)
				if ft != tgraph.InfTime && ft <= w.End && res.InCore[nb.V] {
					d++
				}
			}
			if res.InCore[v] && d < k {
				return false // not a k-core
			}
			if !res.InCore[v] && d >= k {
				return false // not maximal
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestMultiEdgeDegreeCountsDistinctNeighbours(t *testing.T) {
	var b tgraph.Builder
	b.KeepDuplicates = true
	// u-v interact 5 times; a 2-core must not exist on multiplicity alone.
	for i := 0; i < 5; i++ {
		b.Add(1, 2, int64(i+1))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	p := kcore.NewPeeler(g)
	if res := p.CoreOfWindow(2, g.FullWindow()); res.Vertices != 0 {
		t.Errorf("multi-edge pair must not form a 2-core, got %d vertices", res.Vertices)
	}
	if res := p.CoreOfWindow(1, g.FullWindow()); res.Vertices != 2 {
		t.Errorf("1-core should keep both endpoints, got %d", res.Vertices)
	}
}
