// Package kcore implements static k-core computation on snapshots of a
// temporal graph: the classic peeling algorithm (used as the ground-truth
// oracle for every temporal algorithm in this repository) and the
// Batagelj–Zaveršnik core decomposition used to obtain kmax for the
// experiment parameterisation (k chosen as a percentage of kmax, §VI).
//
// A snapshot over a window [ts, te] is the unlabelled simple graph induced
// by all temporal edges falling in the window; parallel temporal edges
// between the same vertex pair collapse, so degrees count distinct
// neighbours (Definition 1/2 of the paper).
package kcore

import (
	"temporalkcore/internal/ds"
	"temporalkcore/internal/tgraph"
)

// Peeler computes k-cores of window snapshots. It owns reusable buffers so
// that repeated window queries do not allocate; a zero Peeler is not usable,
// construct with NewPeeler.
type Peeler struct {
	g     *tgraph.Graph
	deg   []int32
	alive []bool
	inWin []bool // per pair: pair has an interaction inside the window
	q     ds.Queue
}

// NewPeeler returns a Peeler for g.
func NewPeeler(g *tgraph.Graph) *Peeler {
	return &Peeler{
		g:     g,
		deg:   make([]int32, g.NumVertices()),
		alive: make([]bool, g.NumVertices()),
		inWin: make([]bool, g.NumPairs()),
	}
}

// Result is the k-core of one window snapshot.
type Result struct {
	// InCore[v] reports whether vertex v belongs to the k-core. The slice is
	// owned by the Peeler and overwritten by the next call.
	InCore []bool
	// Vertices is the number of core vertices.
	Vertices int
}

// CoreOfWindow computes the k-core of the snapshot over w and returns which
// vertices survive. k must be >= 1.
func (p *Peeler) CoreOfWindow(k int, w tgraph.Window) Result {
	g := p.g
	lo, hi := g.EdgesIn(w)
	for i := range p.deg {
		p.deg[i] = 0
		p.alive[i] = false
	}
	// Mark pairs present in the window and count distinct-neighbour degrees.
	touched := make([]int32, 0, int(hi-lo))
	for e := lo; e < hi; e++ {
		pi := g.EdgePair(e)
		if p.inWin[pi] {
			continue
		}
		p.inWin[pi] = true
		touched = append(touched, pi)
		pr := g.Pair(pi)
		p.deg[pr.U]++
		p.deg[pr.V]++
		p.alive[pr.U] = true
		p.alive[pr.V] = true
	}

	// Peel.
	p.q.Reset()
	for e := lo; e < hi; e++ {
		pi := g.EdgePair(e)
		pr := g.Pair(pi)
		for _, u := range [2]tgraph.VID{pr.U, pr.V} {
			if p.alive[u] && int(p.deg[u]) < k {
				p.alive[u] = false
				p.q.Push(int32(u))
			}
		}
	}
	for p.q.Len() > 0 {
		u := tgraph.VID(p.q.Pop())
		for _, nb := range g.Neighbours(u) {
			if !p.inWin[nb.Pair] || !p.alive[nb.V] {
				continue
			}
			p.deg[nb.V]--
			if int(p.deg[nb.V]) < k {
				p.alive[nb.V] = false
				p.q.Push(int32(nb.V))
			}
		}
	}

	// Reset the pair marks for the next call.
	for _, pi := range touched {
		p.inWin[pi] = false
	}
	count := 0
	for v := range p.alive {
		if p.alive[v] {
			count++
		}
	}
	return Result{InCore: p.alive, Vertices: count}
}

// CoreEdgesOfWindow computes the k-core of the snapshot over w and returns
// the temporal edges of the core (both endpoints in the core and the edge
// time inside w), appended to dst.
func (p *Peeler) CoreEdgesOfWindow(k int, w tgraph.Window, dst []tgraph.EID) []tgraph.EID {
	res := p.CoreOfWindow(k, w)
	g := p.g
	lo, hi := g.EdgesIn(w)
	for e := lo; e < hi; e++ {
		te := g.Edge(e)
		if res.InCore[te.U] && res.InCore[te.V] {
			dst = append(dst, e)
		}
	}
	return dst
}

// HasCoreInWindow reports whether the snapshot over w has a non-empty
// k-core. Because k-cores are monotone under edge insertion, a query range
// [Ts, Te] contains at least one temporal k-core iff the widest window does.
func (p *Peeler) HasCoreInWindow(k int, w tgraph.Window) bool {
	return p.CoreOfWindow(k, w).Vertices > 0
}

// Decompose computes the core number of every vertex of the snapshot over w
// using the bucket-based Batagelj–Zaveršnik algorithm, and returns the core
// numbers together with kmax. Vertices with no edge in w have core number 0.
func Decompose(g *tgraph.Graph, w tgraph.Window) (core []int32, kmax int) {
	n := g.NumVertices()
	core = make([]int32, n)
	deg := make([]int32, n)
	inWin := make([]bool, g.NumPairs())
	lo, hi := g.EdgesIn(w)
	maxDeg := int32(0)
	for e := lo; e < hi; e++ {
		pi := g.EdgePair(e)
		if inWin[pi] {
			continue
		}
		inWin[pi] = true
		pr := g.Pair(pi)
		deg[pr.U]++
		deg[pr.V]++
		if deg[pr.U] > maxDeg {
			maxDeg = deg[pr.U]
		}
		if deg[pr.V] > maxDeg {
			maxDeg = deg[pr.V]
		}
	}

	// Bucket sort vertices by degree.
	bin := make([]int32, maxDeg+2)
	for v := 0; v < n; v++ {
		bin[deg[v]]++
	}
	start := int32(0)
	for d := int32(0); d <= maxDeg; d++ {
		cnt := bin[d]
		bin[d] = start
		start += cnt
	}
	pos := make([]int32, n)
	vert := make([]int32, n)
	for v := 0; v < n; v++ {
		pos[v] = bin[deg[v]]
		vert[pos[v]] = int32(v)
		bin[deg[v]]++
	}
	for d := maxDeg; d >= 1; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0

	cur := make([]int32, n)
	copy(cur, deg)
	for i := 0; i < n; i++ {
		v := tgraph.VID(vert[i])
		core[v] = cur[v]
		if int(core[v]) > kmax {
			kmax = int(core[v])
		}
		for _, nb := range g.Neighbours(v) {
			if !inWin[nb.Pair] {
				continue
			}
			u := nb.V
			if cur[u] > cur[v] {
				// Move u one bucket down.
				du := cur[u]
				pu := pos[u]
				pw := bin[du]
				wv := vert[pw]
				if int32(u) != wv {
					pos[u] = pw
					vert[pu] = wv
					pos[wv] = pu
					vert[pw] = int32(u)
				}
				bin[du]++
				cur[u]--
			}
		}
	}
	return core, kmax
}

// KMax returns the maximum core number over the whole graph's projected
// snapshot, the quantity the paper's Table III calls kmax.
func KMax(g *tgraph.Graph) int {
	_, kmax := Decompose(g, g.FullWindow())
	return kmax
}
