package kcore_test

import (
	"testing"

	"temporalkcore/internal/gen"
	"temporalkcore/internal/kcore"
	"temporalkcore/internal/tgraph"
)

func benchGraph(b *testing.B) *tgraph.Graph {
	b.Helper()
	rep, err := gen.ReplicaByCode("CM")
	if err != nil {
		b.Fatal(err)
	}
	g, err := rep.Generate(5000, 1)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// BenchmarkPeelWindow measures one from-scratch snapshot peeling, the unit
// cost B the OTCD complexity O(tmax^2 * B) is built from.
func BenchmarkPeelWindow(b *testing.B) {
	g := benchGraph(b)
	p := kcore.NewPeeler(g)
	w := tgraph.Window{Start: 1, End: g.TMax() / 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.CoreOfWindow(5, w)
	}
}

// BenchmarkDecompose measures the full core decomposition used for kmax.
func BenchmarkDecompose(b *testing.B) {
	g := benchGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kcore.Decompose(g, g.FullWindow())
	}
}
