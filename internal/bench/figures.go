package bench

import (
	"fmt"
	"time"

	"temporalkcore/internal/core"
)

// Suite holds shared configuration for regenerating the paper's figures.
type Suite struct {
	// TargetEdges scales every dataset replica (edges capped at the
	// paper's real size).
	TargetEdges int
	// QueriesPerPoint is the number of random query ranges averaged per
	// data point (the paper uses 100).
	QueriesPerPoint int
	// Timeout is the per-query time limit for EnumBase and OTCD (the paper
	// uses 6 hours).
	Timeout time.Duration
	// Seed drives replica generation and query sampling.
	Seed int64
	// Datasets restricts which dataset codes run (nil = figure defaults).
	Datasets []string
	// Parallelism > 1 (or < 0 for GOMAXPROCS) runs each workload's queries
	// concurrently on a worker pool; see RunOptions.Parallelism.
	Parallelism int

	cache map[string]*Dataset
}

// DefaultSuite returns a laptop-scale configuration.
func DefaultSuite() *Suite {
	return &Suite{
		TargetEdges:     20000,
		QueriesPerPoint: 3,
		Timeout:         30 * time.Second,
		Seed:            1,
	}
}

// DefaultK and DefaultRange are the paper's default parameters.
const (
	DefaultKPct     = 30 // k = 30% of kmax
	DefaultRangePct = 10 // range = 10% of tmax
)

// Figure 6/9/12 use all fourteen datasets; Figure 4 uses the seven
// representative ones; Figures 7/8/10/11 use the four highlighted ones.
var (
	AllDatasets   = []string{"FB", "BO", "CM", "EM", "MC", "MO", "AU", "LR", "EN", "SU", "WT", "WK", "PL", "YT"}
	Fig4Datasets  = []string{"CM", "EM", "MC", "LR", "EN", "SU", "WT"}
	SweepDatasets = []string{"CM", "EM", "WT", "PL"}
)

func (s *Suite) datasets(def []string) []string {
	if len(s.Datasets) > 0 {
		return s.Datasets
	}
	return def
}

// Dataset loads (and caches) one replica.
func (s *Suite) Dataset(code string) (*Dataset, error) {
	if s.cache == nil {
		s.cache = make(map[string]*Dataset)
	}
	if d, ok := s.cache[code]; ok {
		return d, nil
	}
	d, err := LoadDataset(code, s.TargetEdges, s.Seed)
	if err != nil {
		return nil, err
	}
	s.cache[code] = d
	return d, nil
}

// Table3 reproduces Table III: dataset statistics, paper versus replica.
func (s *Suite) Table3() (*Table, error) {
	t := &Table{
		Title:  "Table III — datasets (paper statistics vs generated replica)",
		Header: []string{"name", "|V|", "|E|", "tmax", "kmax", "repl|V|", "repl|E|", "repl tmax", "repl kmax"},
	}
	for _, code := range s.datasets(AllDatasets) {
		d, err := s.Dataset(code)
		if err != nil {
			return nil, err
		}
		p := d.Replica.Paper
		t.AddRow(code,
			FmtCount(int64(p.Vertices)), FmtCount(int64(p.Edges)), FmtCount(int64(p.Timestamps)), fmt.Sprintf("%d", p.KMax),
			FmtCount(int64(d.Stats.NumVertices)), FmtCount(int64(d.Stats.NumEdges)), FmtCount(int64(d.Stats.TMax)), fmt.Sprintf("%d", d.KMax))
	}
	t.AddNote("replicas are synthetic stand-ins scaled to ~%d edges (see internal/gen)", s.TargetEdges)
	return t, nil
}

// Figure4 reproduces Figure 4: |VCT|, |VCT|*deg_avg and |R| under default
// parameters for the seven representative datasets.
func (s *Suite) Figure4() (*Table, error) {
	t := &Table{
		Title:  "Figure 4 — |VCT|, |VCT|*deg_avg, |R| (defaults: k=30% kmax, range=10% tmax)",
		Header: []string{"dataset", "|VCT|", "|VCT|*degavg", "|R|", "|R| / |VCT|*degavg"},
	}
	for _, code := range s.datasets(Fig4Datasets) {
		d, err := s.Dataset(code)
		if err != nil {
			return nil, err
		}
		k := d.K(DefaultKPct)
		queries := d.Queries(k, DefaultRangePct, s.QueriesPerPoint, s.Seed)
		if len(queries) == 0 {
			t.AddRow(code, "-", "-", "-", "-")
			continue
		}
		m, err := Run(d, k, queries, core.AlgoEnum, RunOptions{Parallelism: s.Parallelism})
		if err != nil {
			return nil, err
		}
		vct := int64(m.VCTSize) / int64(len(queries))
		vctDeg := float64(vct) * d.Stats.AvgDegree
		r := m.REdges / int64(len(queries))
		ratio := "-"
		if vctDeg > 0 {
			ratio = fmt.Sprintf("%.1fx", float64(r)/vctDeg)
		}
		t.AddRow(code, FmtCount(vct), FmtCount(int64(vctDeg)), FmtCount(r), ratio)
	}
	t.AddNote("the paper reports |R| 2-4 orders of magnitude above |VCT|*deg_avg")
	return t, nil
}

// Figure6 reproduces Figure 6: average per-query running time of OTCD, the
// CoreTime phase, EnumBase and Enum on every dataset under defaults.
func (s *Suite) Figure6() (*Table, error) {
	t := &Table{
		Title:  "Figure 6 — average running time in seconds (k=30% kmax, range=10% tmax)",
		Header: []string{"dataset", "OTCD", "CoreTime", "EnumBase", "Enum", "cores/query"},
	}
	for _, code := range s.datasets(AllDatasets) {
		d, err := s.Dataset(code)
		if err != nil {
			return nil, err
		}
		k := d.K(DefaultKPct)
		queries := d.Queries(k, DefaultRangePct, s.QueriesPerPoint, s.Seed)
		if len(queries) == 0 {
			t.AddRow(code, "-", "-", "-", "-", "0")
			continue
		}
		n := time.Duration(len(queries))
		mEnum, err := Run(d, k, queries, core.AlgoEnum, RunOptions{Timeout: s.Timeout, Parallelism: s.Parallelism})
		if err != nil {
			return nil, err
		}
		mBase, err := Run(d, k, queries, core.AlgoEnumBase, RunOptions{Timeout: s.Timeout, Parallelism: s.Parallelism})
		if err != nil {
			return nil, err
		}
		mOTCD, err := Run(d, k, queries, core.AlgoOTCD, RunOptions{Timeout: s.Timeout, Parallelism: s.Parallelism})
		if err != nil {
			return nil, err
		}
		t.AddRow(code,
			FmtDurTL(mOTCD.Total/n, mOTCD.TimedOut),
			FmtDur(mEnum.CoreTime/n),
			FmtDurTL(mBase.Total/n, mBase.TimedOut),
			FmtDur(mEnum.Total/n),
			FmtCount(int64(mEnum.AvgCores())))
	}
	t.AddNote("TL marks runs that hit the %v per-query time limit", s.Timeout)
	t.AddNote("CoreTime is the shared VCT+ECS phase, included in both EnumBase and Enum totals")
	return t, nil
}

// sweep runs Enum+CoreTime / EnumBase+CoreTime / OTCD over one varying
// parameter, reproducing the layout of Figures 7 and 8.
func (s *Suite) sweep(title string, points []int, setup func(d *Dataset, point int) (k int, rangePct int)) (*Table, error) {
	t := &Table{Title: title, Header: []string{"dataset", "point", "Enum+CoreTime", "EnumBase+CoreTime", "OTCD", "cores/query"}}
	for _, code := range s.datasets(SweepDatasets) {
		d, err := s.Dataset(code)
		if err != nil {
			return nil, err
		}
		for _, pt := range points {
			k, rangePct := setup(d, pt)
			queries := d.Queries(k, rangePct, s.QueriesPerPoint, s.Seed+int64(pt))
			if len(queries) == 0 {
				t.AddRow(code, fmt.Sprintf("%d%%", pt), "-", "-", "-", "0")
				continue
			}
			n := time.Duration(len(queries))
			mEnum, err := Run(d, k, queries, core.AlgoEnum, RunOptions{Timeout: s.Timeout, Parallelism: s.Parallelism})
			if err != nil {
				return nil, err
			}
			mBase, err := Run(d, k, queries, core.AlgoEnumBase, RunOptions{Timeout: s.Timeout, Parallelism: s.Parallelism})
			if err != nil {
				return nil, err
			}
			mOTCD, err := Run(d, k, queries, core.AlgoOTCD, RunOptions{Timeout: s.Timeout, Parallelism: s.Parallelism})
			if err != nil {
				return nil, err
			}
			t.AddRow(code, fmt.Sprintf("%d%%", pt),
				FmtDur(mEnum.Total/n),
				FmtDurTL(mBase.Total/n, mBase.TimedOut),
				FmtDurTL(mOTCD.Total/n, mOTCD.TimedOut),
				FmtCount(int64(mEnum.AvgCores())))
		}
	}
	return t, nil
}

// Figure7 varies k between 10% and 40% of kmax at the default range.
func (s *Suite) Figure7() (*Table, error) {
	return s.sweep(
		"Figure 7 — average running time (s) varying k (10-40% of kmax), range=10% tmax",
		[]int{10, 20, 30, 40},
		func(d *Dataset, pt int) (int, int) { return d.K(pt), DefaultRangePct },
	)
}

// Figure8 varies the query range between 5% and 40% of tmax at default k.
func (s *Suite) Figure8() (*Table, error) {
	return s.sweep(
		"Figure 8 — average running time (s) varying range (5-40% of tmax), k=30% kmax",
		[]int{5, 10, 20, 40},
		func(d *Dataset, pt int) (int, int) { return d.K(DefaultKPct), pt },
	)
}

// Figure9 reproduces Figure 9: the average number of temporal k-cores per
// dataset under defaults.
func (s *Suite) Figure9() (*Table, error) {
	t := &Table{
		Title:  "Figure 9 — average number of temporal k-cores (defaults)",
		Header: []string{"dataset", "cores/query", "|R|/query"},
	}
	for _, code := range s.datasets(AllDatasets) {
		d, err := s.Dataset(code)
		if err != nil {
			return nil, err
		}
		k := d.K(DefaultKPct)
		queries := d.Queries(k, DefaultRangePct, s.QueriesPerPoint, s.Seed)
		if len(queries) == 0 {
			t.AddRow(code, "0", "0")
			continue
		}
		m, err := Run(d, k, queries, core.AlgoEnum, RunOptions{Parallelism: s.Parallelism})
		if err != nil {
			return nil, err
		}
		t.AddRow(code, FmtCount(int64(m.AvgCores())), FmtCount(m.REdges/int64(len(queries))))
	}
	return t, nil
}

// countSweep renders Figures 10 and 11 (result counts under a sweep).
func (s *Suite) countSweep(title string, points []int, setup func(d *Dataset, point int) (k int, rangePct int)) (*Table, error) {
	t := &Table{Title: title, Header: []string{"dataset", "point", "cores/query", "|R|/query"}}
	for _, code := range s.datasets(SweepDatasets) {
		d, err := s.Dataset(code)
		if err != nil {
			return nil, err
		}
		for _, pt := range points {
			k, rangePct := setup(d, pt)
			queries := d.Queries(k, rangePct, s.QueriesPerPoint, s.Seed+int64(pt))
			if len(queries) == 0 {
				t.AddRow(code, fmt.Sprintf("%d%%", pt), "0", "0")
				continue
			}
			m, err := Run(d, k, queries, core.AlgoEnum, RunOptions{Parallelism: s.Parallelism})
			if err != nil {
				return nil, err
			}
			t.AddRow(code, fmt.Sprintf("%d%%", pt), FmtCount(int64(m.AvgCores())), FmtCount(m.REdges/int64(len(queries))))
		}
	}
	return t, nil
}

// Figure10 counts results varying k.
func (s *Suite) Figure10() (*Table, error) {
	return s.countSweep(
		"Figure 10 — average number of temporal k-cores varying k (10-40% kmax)",
		[]int{10, 20, 30, 40},
		func(d *Dataset, pt int) (int, int) { return d.K(pt), DefaultRangePct },
	)
}

// Figure11 counts results varying the time range.
func (s *Suite) Figure11() (*Table, error) {
	return s.countSweep(
		"Figure 11 — average number of temporal k-cores varying range (5-40% tmax)",
		[]int{5, 10, 20, 40},
		func(d *Dataset, pt int) (int, int) { return d.K(DefaultKPct), pt },
	)
}

// Figure12 reproduces Figure 12: the peak memory of each algorithm under
// defaults.
func (s *Suite) Figure12() (*Table, error) {
	t := &Table{
		Title:  "Figure 12 — peak heap above baseline in MB (defaults)",
		Header: []string{"dataset", "OTCD", "EnumBase", "Enum"},
	}
	for _, code := range s.datasets(AllDatasets) {
		d, err := s.Dataset(code)
		if err != nil {
			return nil, err
		}
		k := d.K(DefaultKPct)
		queries := d.Queries(k, DefaultRangePct, s.QueriesPerPoint, s.Seed)
		if len(queries) == 0 {
			t.AddRow(code, "-", "-", "-")
			continue
		}
		cells := make([]string, 0, 3)
		for _, algo := range []core.Algorithm{core.AlgoOTCD, core.AlgoEnumBase, core.AlgoEnum} {
			// Memory runs stay sequential regardless of Suite.Parallelism:
			// the figure reproduces per-query peak heap, and N concurrent
			// queries each holding scratch would inflate it ~N-fold.
			m, err := Run(d, k, queries, algo, RunOptions{Timeout: s.Timeout, TrackMemory: true})
			if err != nil {
				return nil, err
			}
			if m.TimedOut {
				cells = append(cells, "TL")
			} else {
				cells = append(cells, FmtBytes(m.PeakHeap))
			}
		}
		t.AddRow(append([]string{code}, cells...)...)
	}
	t.AddNote("paper: OTCD ~7GB, EnumBase more, Enum <2GB at full scale; compare relative order")
	return t, nil
}

// Figures maps figure ids to their runners.
func (s *Suite) Figures() map[string]func() (*Table, error) {
	return map[string]func() (*Table, error){
		"table3": s.Table3,
		"4":      s.Figure4,
		"6":      s.Figure6,
		"7":      s.Figure7,
		"8":      s.Figure8,
		"9":      s.Figure9,
		"10":     s.Figure10,
		"11":     s.Figure11,
		"12":     s.Figure12,
	}
}

// FigureOrder is the canonical rendering order.
var FigureOrder = []string{"table3", "4", "6", "7", "8", "9", "10", "11", "12"}
