package bench_test

import (
	"strings"
	"testing"

	"temporalkcore/internal/bench"
)

func TestRenderCSV(t *testing.T) {
	tbl := &bench.Table{Title: "T", Header: []string{"a", "b"}}
	tbl.AddRow("1", "x,y") // comma must be quoted
	tbl.AddNote("n1")
	s, err := tbl.CSVString()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), s)
	}
	if lines[0] != "# T" || lines[1] != "a,b" {
		t.Errorf("header lines: %q", lines[:2])
	}
	if lines[2] != `1,"x,y"` {
		t.Errorf("data line = %q", lines[2])
	}
	if lines[3] != "# n1" {
		t.Errorf("note line = %q", lines[3])
	}
}
