package bench

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a rendered experiment result: one header row plus data rows,
// printed with aligned columns in the shape of the paper's tables/series.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the aligned table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	b.WriteString(t.Title)
	b.WriteByte('\n')
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("  note: ")
		b.WriteString(n)
		b.WriteByte('\n')
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}

// FmtDur renders a duration in seconds with adaptive precision, matching
// the paper's log-scale second-based plots.
func FmtDur(d time.Duration) string {
	s := d.Seconds()
	switch {
	case s == 0:
		return "0"
	case s < 0.001:
		return fmt.Sprintf("%.2e", s)
	case s < 1:
		return fmt.Sprintf("%.4f", s)
	default:
		return fmt.Sprintf("%.3f", s)
	}
}

// FmtDurTL renders a duration, or "TL" when the time limit was hit
// (matching the paper's missing bars for OTCD/EnumBase runs that did not
// finish).
func FmtDurTL(d time.Duration, timedOut bool) string {
	if timedOut {
		return "TL"
	}
	return FmtDur(d)
}

// FmtCount renders large counts compactly.
func FmtCount(c int64) string {
	switch {
	case c >= 1_000_000_000:
		return fmt.Sprintf("%.2fG", float64(c)/1e9)
	case c >= 1_000_000:
		return fmt.Sprintf("%.2fM", float64(c)/1e6)
	case c >= 10_000:
		return fmt.Sprintf("%.1fk", float64(c)/1e3)
	default:
		return fmt.Sprintf("%d", c)
	}
}

// FmtBytes renders a byte count in MB, the unit of Figure 12.
func FmtBytes(b uint64) string {
	return fmt.Sprintf("%.2f", float64(b)/(1<<20))
}
