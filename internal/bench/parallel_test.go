package bench_test

import (
	"testing"

	"temporalkcore/internal/bench"
	"temporalkcore/internal/core"
)

// TestRunParallelMatchesSequential checks that the harness's batch path
// counts exactly what the sequential loop counts.
func TestRunParallelMatchesSequential(t *testing.T) {
	d, err := bench.LoadDataset("FB", 900, 2)
	if err != nil {
		t.Fatal(err)
	}
	k := d.K(bench.DefaultKPct)
	qs := d.Queries(k, bench.DefaultRangePct, 4, 3)
	if len(qs) < 2 {
		t.Skipf("only %d query ranges", len(qs))
	}
	seq, err := bench.Run(d, k, qs, core.AlgoEnum, bench.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{2, -1} {
		got, err := bench.Run(d, k, qs, core.AlgoEnum, bench.RunOptions{Parallelism: par})
		if err != nil {
			t.Fatalf("parallel=%d: %v", par, err)
		}
		if got.Cores != seq.Cores || got.REdges != seq.REdges ||
			got.VCTSize != seq.VCTSize || got.ECSSize != seq.ECSSize {
			t.Errorf("parallel=%d: counts diverge: %+v vs %+v", par, got, seq)
		}
		if got.Queries != seq.Queries || got.TimedOut {
			t.Errorf("parallel=%d: queries=%d timedOut=%v", par, got.Queries, got.TimedOut)
		}
		if got.Total <= 0 {
			t.Errorf("parallel=%d: non-positive wall time %v", par, got.Total)
		}
	}
}
