package bench_test

import (
	"testing"
	"time"

	"temporalkcore/internal/bench"
)

// tinySuite keeps sweep smoke tests fast.
func tinySuite() *bench.Suite {
	return &bench.Suite{
		TargetEdges:     900,
		QueriesPerPoint: 1,
		Timeout:         20 * time.Second,
		Seed:            2,
		Datasets:        []string{"FB"},
	}
}

func TestSweepFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := tinySuite()
	for name, run := range map[string]func() (*bench.Table, error){
		"fig7":  s.Figure7,
		"fig8":  s.Figure8,
		"fig10": s.Figure10,
		"fig11": s.Figure11,
	} {
		tbl, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(tbl.Rows) != 4 { // one dataset, four points
			t.Errorf("%s: %d rows, want 4", name, len(tbl.Rows))
		}
		for _, row := range tbl.Rows {
			if len(row) != len(tbl.Header) {
				t.Errorf("%s: ragged row %v", name, row)
			}
		}
	}
}

func TestFigure9Small(t *testing.T) {
	s := tinySuite()
	tbl, err := s.Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestTable3Small(t *testing.T) {
	s := tinySuite()
	tbl, err := s.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 || len(tbl.Rows[0]) != 9 {
		t.Fatalf("unexpected shape: %+v", tbl.Rows)
	}
}

func TestSuiteUnknownDataset(t *testing.T) {
	s := tinySuite()
	s.Datasets = []string{"??"}
	if _, err := s.Figure9(); err == nil {
		t.Error("unknown dataset accepted")
	}
}
