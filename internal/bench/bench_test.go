package bench_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"temporalkcore/internal/bench"
	"temporalkcore/internal/core"
	"temporalkcore/internal/tgraph"
)

func smallSuite() *bench.Suite {
	return &bench.Suite{
		TargetEdges:     1500,
		QueriesPerPoint: 2,
		Timeout:         20 * time.Second,
		Seed:            1,
	}
}

func TestLoadDataset(t *testing.T) {
	d, err := bench.LoadDataset("CM", 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	if d.G.NumEdges() < 1500 {
		t.Errorf("replica too small: %d edges", d.G.NumEdges())
	}
	if d.KMax < 4 {
		t.Errorf("kmax = %d, too small for percentage queries", d.KMax)
	}
	if d.K(10) < 2 {
		t.Errorf("K(10) = %d", d.K(10))
	}
	if _, err := bench.LoadDataset("nope", 2000, 1); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestQueriesContainCores(t *testing.T) {
	d, err := bench.LoadDataset("CM", 2000, 1)
	if err != nil {
		t.Fatal(err)
	}
	k := d.K(bench.DefaultKPct)
	qs := d.Queries(k, bench.DefaultRangePct, 4, 99)
	if len(qs) == 0 {
		t.Fatal("no valid queries found")
	}
	for _, w := range qs {
		m, err := bench.Run(d, k, []tgraph.Window{w}, core.AlgoEnum, bench.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if m.Cores == 0 {
			t.Errorf("query %v guaranteed a core but produced none", w)
		}
		wantLen := int(d.G.TMax()) * bench.DefaultRangePct / 100
		if w.Len() != wantLen {
			t.Errorf("query %v has length %d, want %d", w, w.Len(), wantLen)
		}
	}
}

func TestRunAgreement(t *testing.T) {
	d, err := bench.LoadDataset("FB", 1200, 3)
	if err != nil {
		t.Fatal(err)
	}
	k := d.K(bench.DefaultKPct)
	qs := d.Queries(k, 20, 2, 7)
	if len(qs) == 0 {
		t.Skip("no valid queries at this scale")
	}
	var results []bench.Measurement
	for _, algo := range []core.Algorithm{core.AlgoEnum, core.AlgoEnumBase, core.AlgoOTCD} {
		m, err := bench.Run(d, k, qs, algo, bench.RunOptions{Timeout: time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		if m.TimedOut {
			t.Fatalf("%v timed out at test scale", algo)
		}
		results = append(results, m)
	}
	for i := 1; i < len(results); i++ {
		if results[i].Cores != results[0].Cores || results[i].REdges != results[0].REdges {
			t.Errorf("%v found %d cores / %d edges, %v found %d / %d",
				results[i].Algo, results[i].Cores, results[i].REdges,
				results[0].Algo, results[0].Cores, results[0].REdges)
		}
	}
}

func TestTableRender(t *testing.T) {
	tbl := &bench.Table{Title: "T", Header: []string{"a", "bb"}}
	tbl.AddRow("x", "y")
	tbl.AddNote("hello %d", 42)
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"T\n", "a", "bb", "x", "y", "hello 42"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestFormatters(t *testing.T) {
	if got := bench.FmtDur(0); got != "0" {
		t.Errorf("FmtDur(0) = %q", got)
	}
	if got := bench.FmtDur(1500 * time.Millisecond); got != "1.500" {
		t.Errorf("FmtDur(1.5s) = %q", got)
	}
	if got := bench.FmtDurTL(time.Second, true); got != "TL" {
		t.Errorf("FmtDurTL = %q", got)
	}
	if got := bench.FmtCount(1234); got != "1234" {
		t.Errorf("FmtCount(1234) = %q", got)
	}
	if got := bench.FmtCount(2_500_000); got != "2.50M" {
		t.Errorf("FmtCount(2.5M) = %q", got)
	}
	if got := bench.FmtBytes(1 << 20); got != "1.00" {
		t.Errorf("FmtBytes(1MB) = %q", got)
	}
}

// TestFigure4Small smoke-tests a figure runner end to end at tiny scale.
func TestFigure4Small(t *testing.T) {
	s := smallSuite()
	s.Datasets = []string{"CM"}
	tbl, err := s.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

// TestFigure6Small smoke-tests the headline comparison on two datasets.
func TestFigure6Small(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := smallSuite()
	s.Datasets = []string{"FB", "PL"}
	tbl, err := s.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

// TestFigure12Small smoke-tests memory tracking.
func TestFigure12Small(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := smallSuite()
	s.Datasets = []string{"FB"}
	tbl, err := s.Figure12()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 || len(tbl.Rows[0]) != 4 {
		t.Fatalf("unexpected table shape: %+v", tbl.Rows)
	}
}

func TestFigureRegistry(t *testing.T) {
	s := smallSuite()
	figs := s.Figures()
	for _, id := range bench.FigureOrder {
		if _, ok := figs[id]; !ok {
			t.Errorf("figure %q missing from registry", id)
		}
	}
}
