package bench

import (
	"encoding/csv"
	"io"
	"strings"
)

// RenderCSV writes the table as CSV (header row first, notes as trailing
// comment-style rows prefixed with "#"), so figure data can be fed to
// external plotting tools.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	title := []string{"# " + t.Title}
	if err := cw.Write(title); err != nil {
		return err
	}
	if err := cw.Write(t.Header); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if err := cw.Write([]string{"# " + n}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// CSVString renders the table to a CSV string (convenience for tests and
// small tools).
func (t *Table) CSVString() (string, error) {
	var b strings.Builder
	if err := t.RenderCSV(&b); err != nil {
		return "", err
	}
	return b.String(), nil
}
