// Package bench is the measurement harness for the paper's evaluation
// (Section VI): it loads scaled dataset replicas, draws random query
// workloads with the paper's parameterisation (k as a percentage of kmax,
// range length as a percentage of tmax, every range guaranteed to contain a
// temporal k-core), runs the algorithms under a time limit, and renders the
// series of every figure and table.
package bench

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"time"

	"temporalkcore/internal/core"
	"temporalkcore/internal/enum"
	"temporalkcore/internal/gen"
	"temporalkcore/internal/kcore"
	"temporalkcore/internal/tgraph"
)

// Dataset is a loaded replica ready for experiments.
type Dataset struct {
	Code    string
	Replica gen.Replica
	G       *tgraph.Graph
	KMax    int
	Stats   tgraph.Stats
}

// LoadDataset generates the scaled replica for a dataset code and computes
// its statistics.
func LoadDataset(code string, targetEdges int, seed int64) (*Dataset, error) {
	rep, err := gen.ReplicaByCode(code)
	if err != nil {
		return nil, err
	}
	g, err := rep.Generate(targetEdges, seed)
	if err != nil {
		return nil, err
	}
	return &Dataset{
		Code:    code,
		Replica: rep,
		G:       g,
		KMax:    kcore.KMax(g),
		Stats:   g.ComputeStats(),
	}, nil
}

// K returns the query k for a percentage of kmax (at least 2, as k=1 cores
// are degenerate).
func (d *Dataset) K(pct int) int {
	k := d.KMax * pct / 100
	if k < 2 {
		k = 2
	}
	return k
}

// Queries draws count random query ranges of length pct% of tmax, each
// guaranteed to contain at least one temporal k-core (the paper's setup).
// Ranges may overlap. When fewer than count valid ranges can be found the
// returned slice is shorter.
func (d *Dataset) Queries(k, pct, count int, seed int64) []tgraph.Window {
	r := rand.New(rand.NewSource(seed))
	tmax := int(d.G.TMax())
	length := tmax * pct / 100
	if length < 1 {
		length = 1
	}
	if length > tmax {
		length = tmax
	}
	p := kcore.NewPeeler(d.G)
	var out []tgraph.Window
	attempts := 0
	for len(out) < count && attempts < 200*count {
		attempts++
		start := 1 + r.Intn(tmax-length+1)
		w := tgraph.Window{Start: tgraph.TS(start), End: tgraph.TS(start + length - 1)}
		// A range contains a temporal k-core iff its widest window does
		// (k-cores are monotone under edge insertion).
		if p.HasCoreInWindow(k, w) {
			out = append(out, w)
		}
	}
	return out
}

// Measurement is the outcome of running one algorithm over one workload.
type Measurement struct {
	Algo     core.Algorithm
	CoreTime time.Duration // VCT+ECS construction (zero for OTCD)
	EnumTime time.Duration // enumeration phase
	Total    time.Duration
	Cores    int64
	REdges   int64 // |R|
	VCTSize  int
	ECSSize  int
	PeakHeap uint64 // peak heap during the run, minus the baseline
	TimedOut bool
	Queries  int
}

// RunOptions tunes a measurement run.
type RunOptions struct {
	Timeout     time.Duration // per query; 0 = none
	TrackMemory bool          // sample the heap to estimate the peak
	// Parallelism > 1 runs the queries of the workload concurrently on a
	// worker pool (core.QueryBatch) with per-worker scratch; 0 or 1 keeps
	// the sequential loop. <0 means GOMAXPROCS workers.
	Parallelism int
}

// Run executes one algorithm over all query windows and accumulates the
// measurements. Results are counted, not materialised, matching the paper's
// |R| metric.
//
// With RunOptions.Parallelism engaged, Measurement.Total is the batch wall
// time while CoreTime/EnumTime stay summed per-query times — Total well
// below CoreTime+EnumTime is the parallel speedup. Timeouts count from
// batch submission, so heavily oversubscribed parallel runs can time out
// while queueing.
func Run(d *Dataset, k int, queries []tgraph.Window, algo core.Algorithm, opts RunOptions) (Measurement, error) {
	m := Measurement{Algo: algo, Queries: len(queries)}

	var sampler *heapSampler
	if opts.TrackMemory {
		sampler = startHeapSampler()
		defer sampler.stop()
	}

	if (opts.Parallelism > 1 || opts.Parallelism < 0) && len(queries) > 1 {
		items := make([]core.BatchQuery, len(queries))
		sinks := make([]enum.CountSink, len(queries))
		for i, w := range queries {
			var stop func() bool
			if opts.Timeout > 0 {
				deadline := time.Now().Add(opts.Timeout)
				stop = func() bool { return time.Now().After(deadline) }
			}
			items[i] = core.BatchQuery{K: k, W: w, Opts: core.Options{Algorithm: algo, Stop: stop}}
		}
		wall := time.Now()
		res := core.QueryBatch(nil, d.G, items, opts.Parallelism, func(i int) enum.Sink { return &sinks[i] })
		m.Total = time.Since(wall)
		for i, r := range res {
			if r.Err != nil {
				return m, fmt.Errorf("bench: %s on %s: %w", algo, d.Code, r.Err)
			}
			m.CoreTime += r.Stats.CoreTime
			m.EnumTime += r.Stats.EnumTime
			m.Cores += sinks[i].Cores
			m.REdges += sinks[i].EdgeTotal
			m.VCTSize += r.Stats.VCTSize
			m.ECSSize += r.Stats.ECSSize
			if r.Stats.Stopped {
				m.TimedOut = true
			}
		}
		if sampler != nil {
			m.PeakHeap = sampler.peak()
		}
		return m, nil
	}

	for _, w := range queries {
		var deadline time.Time
		var stop func() bool
		if opts.Timeout > 0 {
			deadline = time.Now().Add(opts.Timeout)
			stop = func() bool { return time.Now().After(deadline) }
		}
		sink := &enum.CountSink{}
		st, err := core.Query(d.G, k, w, sink, core.Options{Algorithm: algo, Stop: stop})
		if err != nil {
			return m, fmt.Errorf("bench: %s on %s: %w", algo, d.Code, err)
		}
		m.CoreTime += st.CoreTime
		m.EnumTime += st.EnumTime
		m.Cores += sink.Cores
		m.REdges += sink.EdgeTotal
		m.VCTSize += st.VCTSize
		m.ECSSize += st.ECSSize
		if st.Stopped {
			m.TimedOut = true
		}
	}
	m.Total = m.CoreTime + m.EnumTime
	if sampler != nil {
		m.PeakHeap = sampler.peak()
	}
	return m, nil
}

// AvgTotal is the average wall time per query.
func (m Measurement) AvgTotal() time.Duration {
	if m.Queries == 0 {
		return 0
	}
	return m.Total / time.Duration(m.Queries)
}

// AvgCores is the average number of results per query.
func (m Measurement) AvgCores() float64 {
	if m.Queries == 0 {
		return 0
	}
	return float64(m.Cores) / float64(m.Queries)
}

// heapSampler estimates the peak heap occupancy during a run by polling
// runtime.ReadMemStats from a background goroutine. The baseline before the
// run is subtracted so the number approximates the algorithm's footprint.
type heapSampler struct {
	baseline uint64
	max      atomic.Uint64
	done     chan struct{}
	finished chan struct{}
}

func startHeapSampler() *heapSampler {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := &heapSampler{baseline: ms.HeapAlloc, done: make(chan struct{}), finished: make(chan struct{})}
	go func() {
		defer close(s.finished)
		tick := time.NewTicker(2 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-s.done:
				return
			case <-tick.C:
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				if cur := ms.HeapAlloc; cur > s.max.Load() {
					s.max.Store(cur)
				}
			}
		}
	}()
	return s
}

func (s *heapSampler) stop() {
	select {
	case <-s.done:
	default:
		close(s.done)
	}
	<-s.finished
}

func (s *heapSampler) peak() uint64 {
	// One final synchronous sample so short runs are not missed.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if cur := ms.HeapAlloc; cur > s.max.Load() {
		s.max.Store(cur)
	}
	p := s.max.Load()
	if p < s.baseline {
		return 0
	}
	return p - s.baseline
}
