package bench_test

import (
	"testing"
	"time"

	"temporalkcore/internal/bench"
	"temporalkcore/internal/core"
)

// TestRunTimeoutFlag: an absurdly small time limit must mark the
// measurement as timed out for the quadratic algorithms instead of hanging
// or erroring.
func TestRunTimeoutFlag(t *testing.T) {
	d, err := bench.LoadDataset("CM", 3000, 1)
	if err != nil {
		t.Fatal(err)
	}
	k := d.K(bench.DefaultKPct)
	qs := d.Queries(k, 40, 1, 3)
	if len(qs) == 0 {
		t.Skip("no queries at this scale")
	}
	for _, algo := range []core.Algorithm{core.AlgoEnumBase, core.AlgoOTCD} {
		m, err := bench.Run(d, k, qs, algo, bench.RunOptions{Timeout: time.Nanosecond})
		if err != nil {
			t.Fatal(err)
		}
		if !m.TimedOut {
			t.Errorf("%v with 1ns budget did not report a timeout", algo)
		}
	}
	// Enum has no Stop hook (it is the output-optimal algorithm); the
	// harness must still complete it correctly.
	m, err := bench.Run(d, k, qs, core.AlgoEnum, bench.RunOptions{Timeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	if m.Cores == 0 {
		t.Error("Enum produced nothing")
	}
}

// TestMeasurementAverages covers the per-query averaging helpers.
func TestMeasurementAverages(t *testing.T) {
	m := bench.Measurement{Total: 4 * time.Second, Cores: 10, Queries: 2}
	if m.AvgTotal() != 2*time.Second {
		t.Errorf("AvgTotal = %v", m.AvgTotal())
	}
	if m.AvgCores() != 5 {
		t.Errorf("AvgCores = %f", m.AvgCores())
	}
	var zero bench.Measurement
	if zero.AvgTotal() != 0 || zero.AvgCores() != 0 {
		t.Error("zero-query averages should be zero")
	}
}
