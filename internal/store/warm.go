package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"

	"temporalkcore/internal/phc"
	"temporalkcore/internal/qcache"
	"temporalkcore/internal/tgraph"
	"temporalkcore/internal/vct"
)

// The warm file ("TKCC1" format) spills the serving cache's resident
// entries for the sequence being snapshotted, so the first repeat query
// after a restart hits the warm path instead of re-running its CoreTime or
// PHC build. It is advisory: any decode or CRC problem just stops the load
// (the entries rebuild on miss), and entries are re-admitted only when
// their key's sequence equals the recovered graph's — for PHC entries the
// full fingerprint is additionally verified against the recovered state.
//
// File layout:
//
//	"TKCC1\n"  magic
//	seq        int64 LE — the snapshot sequence the spill belongs to
//	frames     [payloadLen uint32][crc32(payload) uint32][payload]...
//
// Frame payload:
//
//	algo       uint8  — qcache.AlgoEnum | qcache.AlgoPHC
//	k          int64
//	wstart     int64  — compressed window of the cache key
//	wend       int64
//	seq        int64  — Key.Seq of the entry
//	coreTimeNs int64  — the build cost the entry recorded
//	ixLen      uint32 — length of the first table blob
//	blobs      AlgoEnum: [VCTX1 of ixLen bytes][ECSX1 to end]
//	           AlgoPHC:  [PHCX2 of ixLen bytes]
const warmMagic = "TKCC1\n"

// maxWarmFrame bounds one entry's serialized size (plausibility check).
const maxWarmFrame = 1 << 30

// WriteWarm spills every resident cache entry keyed to the pending
// snapshot's sequence into warm-<seq>.tkcc (atomically), returning the
// number of entries written. Entries of other sequences are useless after
// recovery and are skipped. A nil cache writes nothing.
func (p *Pending) WriteWarm(c *qcache.Cache) (int, error) {
	if c == nil {
		return 0, nil
	}
	type spilled struct {
		key qcache.Key
		ent *qcache.Entry
	}
	var warm []spilled
	c.Dump(func(k qcache.Key, e *qcache.Entry) bool {
		if k.Seq == p.seq {
			warm = append(warm, spilled{k, e})
		}
		return true
	})
	if len(warm) == 0 {
		return 0, nil
	}

	written := 0
	err := writeFileAtomic(p.s.warmPath(p.seq), func(f *os.File) error {
		bw := bufio.NewWriterSize(f, 1<<16)
		if _, err := bw.WriteString(warmMagic); err != nil {
			return err
		}
		var hdr [8]byte
		binary.LittleEndian.PutUint64(hdr[:], uint64(p.seq))
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		var payload bytes.Buffer
		for _, s := range warm {
			payload.Reset()
			n, err := encodeWarmEntry(&payload, s.key, s.ent)
			if err != nil || !n {
				continue // entry kind we cannot serialize; skip
			}
			pb := payload.Bytes()
			var fh [8]byte
			binary.LittleEndian.PutUint32(fh[0:4], uint32(len(pb)))
			binary.LittleEndian.PutUint32(fh[4:8], crc32.ChecksumIEEE(pb))
			if _, err := bw.Write(fh[:]); err != nil {
				return err
			}
			if _, err := bw.Write(pb); err != nil {
				return err
			}
			written++
		}
		return bw.Flush()
	})
	if err != nil {
		return 0, fmt.Errorf("store: writing warm spill: %w", err)
	}
	return written, nil
}

// encodeWarmEntry serializes one cache entry; ok is false for entry shapes
// the spill does not cover.
func encodeWarmEntry(buf *bytes.Buffer, key qcache.Key, ent *qcache.Entry) (ok bool, err error) {
	var ix bytes.Buffer
	switch key.Algo {
	case qcache.AlgoEnum:
		if ent.Ix == nil || ent.Ecs == nil {
			return false, nil
		}
		if err := ent.Ix.Encode(&ix); err != nil {
			return false, err
		}
	case qcache.AlgoPHC:
		if ent.Phc == nil {
			return false, nil
		}
		if err := ent.Phc.Encode(&ix); err != nil {
			return false, err
		}
	default:
		return false, nil
	}
	buf.WriteByte(key.Algo)
	var h [8]byte
	for _, v := range []int64{int64(key.K), int64(key.W.Start), int64(key.W.End), key.Seq, int64(ent.CoreTime)} {
		binary.LittleEndian.PutUint64(h[:], uint64(v))
		buf.Write(h[:])
	}
	var l [4]byte
	binary.LittleEndian.PutUint32(l[:], uint32(ix.Len()))
	buf.Write(l[:])
	buf.Write(ix.Bytes())
	if key.Algo == qcache.AlgoEnum {
		if err := ent.Ecs.Encode(buf); err != nil {
			return false, err
		}
	}
	return true, nil
}

// LoadWarm re-admits spilled cache entries whose sequence matches the
// recovered graph exactly. PHC entries are additionally fingerprint-checked
// against the recovered state and reported through onPHC (which the public
// layer uses to seed the patch oracle); onPHC may be nil. The load is
// advisory: a missing or damaged warm file admits fewer (or zero) entries
// and returns no error, but a present-and-readable file reports how many
// entries it admitted.
func (s *Store) LoadWarm(c *qcache.Cache, onPHC func(*phc.Index)) (admitted int, err error) {
	if c == nil || s.g == nil {
		return 0, nil
	}
	cur := s.Seq()
	f, err := os.Open(s.warmPath(cur))
	if err != nil {
		return 0, nil // no spill for this exact state: cold start
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)

	magic := make([]byte, len(warmMagic))
	if _, err := io.ReadFull(br, magic); err != nil || string(magic) != warmMagic {
		return 0, nil
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil
	}
	if int64(binary.LittleEndian.Uint64(hdr[:])) != cur {
		return 0, nil // file body disagrees with its name; distrust it
	}

	for {
		var fh [8]byte
		if _, err := io.ReadFull(br, fh[:]); err != nil {
			return admitted, nil // clean end or torn tail: stop
		}
		plen := binary.LittleEndian.Uint32(fh[0:4])
		want := binary.LittleEndian.Uint32(fh[4:8])
		if plen < 45 || plen > maxWarmFrame {
			return admitted, nil
		}
		p := make([]byte, plen)
		if _, err := io.ReadFull(br, p); err != nil {
			return admitted, nil
		}
		if crc32.ChecksumIEEE(p) != want {
			return admitted, nil
		}
		if s.admitWarmEntry(c, p, cur, onPHC) {
			admitted++
		}
	}
}

// admitWarmEntry decodes one frame payload and inserts it when it matches
// the recovered state.
func (s *Store) admitWarmEntry(c *qcache.Cache, p []byte, cur int64, onPHC func(*phc.Index)) bool {
	algo := p[0]
	rd := func(i int) int64 { return int64(binary.LittleEndian.Uint64(p[1+8*i : 9+8*i])) }
	key := qcache.Key{
		Seq:  rd(3),
		K:    int(rd(0)),
		W:    tgraph.Window{Start: tgraph.TS(rd(1)), End: tgraph.TS(rd(2))},
		Algo: algo,
	}
	coreTime := time.Duration(rd(4))
	if key.Seq != cur || key.W.End > s.g.TMax() {
		return false
	}
	ixLen := int(binary.LittleEndian.Uint32(p[41:45]))
	if 45+ixLen > len(p) {
		return false
	}
	blob := p[45 : 45+ixLen]
	rest := p[45+ixLen:]

	switch algo {
	case qcache.AlgoEnum:
		ix, err := vct.DecodeIndex(bytes.NewReader(blob))
		if err != nil || ix.K != key.K || ix.Range != key.W || ix.NumVertices() != s.g.NumVertices() {
			return false
		}
		ecs, err := vct.DecodeECS(bytes.NewReader(rest))
		if err != nil || ecs.K != key.K || ecs.Range != key.W {
			return false
		}
		c.Add(key, qcache.NewEntry(ix, ecs, coreTime))
		return true
	case qcache.AlgoPHC:
		ix, err := phc.Decode(bytes.NewReader(blob))
		if err != nil || !ix.Fp.Matches(s.g) || ix.Range != key.W {
			return false
		}
		c.Add(key, qcache.NewPHCEntry(ix, coreTime))
		if onPHC != nil {
			onPHC(ix)
		}
		return true
	}
	return false
}
