// Package store is the on-disk durability tier of the engine: a data
// directory holding the graph history as flat segment snapshots
// (internal/tgraph's TKSG1 format, serialized from a Freeze() COW image so
// the writer never blocks on IO), an append WAL that makes every batch
// durable before it is applied, and a warm-cache spill of the serving
// cache's resident entries so a restarted process answers its first repeat
// query from the warm path.
//
// Directory layout:
//
//	snapshot-<seq>.tkcs  full segment image of the graph at MutSeq <seq>
//	wal-<base>.tkcw      append WAL; <base> is the MutSeq it starts from
//	wal-<base>.tkcw      (older WALs remain until the next snapshot compacts them)
//	warm-<seq>.tkcc      serving-cache spill taken with snapshot <seq>
//	*.tmp                in-progress writes; ignored and removed on open
//
// Recovery (Open) loads the newest snapshot, replays every WAL in base
// order — records below the recovered sequence are skipped, a gap above it
// is corruption — and rotates a fresh WAL for the new process generation.
// Because bootstrap replays through tgraph.Builder and batches through
// Graph.Append, exactly like the original writer, the recovered graph is
// bit-identical to the pre-crash state up to the last durable record:
// vertex ids, compressed ranks and MutSeq all agree, which is what lets
// fingerprinted cache entries survive a restart.
//
// Store methods are writer-side: the caller serialises Bootstrap, Append,
// BeginSnapshot and Close against each other (the public DurableGraph
// wrapper holds that lock). Pending.Commit — the slow snapshot write — may
// run concurrently with appends; it reads only the frozen image captured
// by BeginSnapshot.
package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"temporalkcore/internal/tgraph"
)

// Store is one open data directory.
type Store struct {
	dir     string
	g       *tgraph.Graph // nil until a bootstrap record or snapshot exists
	wal     *walWriter
	snapSeq int64 // seq of the newest on-disk snapshot, -1 when none
}

// Open opens (creating if needed) the data directory at dir and recovers
// the graph from its newest snapshot plus the WAL chain. An empty
// directory yields a store with a nil Graph awaiting Bootstrap.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, snapSeq: -1}

	snaps, wals, _, err := s.scan()
	if err != nil {
		return nil, err
	}

	if len(snaps) > 0 {
		seq := snaps[len(snaps)-1]
		f, err := os.Open(s.snapshotPath(seq))
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		g, err := tgraph.ReadSegments(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("store: snapshot %d: %w", seq, err)
		}
		if g.MutSeq() != seq {
			return nil, fmt.Errorf("store: snapshot file %d holds sequence %d", seq, g.MutSeq())
		}
		s.g = g
		s.snapSeq = seq
	}

	for _, base := range wals {
		if err := s.replayWAL(s.walPath(base)); err != nil {
			return nil, err
		}
	}

	w, err := createWAL(s.walPath(s.Seq()), s.Seq())
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.wal = w
	return s, nil
}

// replayWAL applies the records of one WAL file on top of the current
// state. Records the state already covers are skipped; a record starting
// above the current sequence means a hole in the chain and is an error.
func (s *Store) replayWAL(path string) error {
	_, recs, err := readWAL(path)
	if err != nil {
		return err
	}
	for i, rec := range recs {
		switch rec.kind {
		case recBootstrap:
			if s.g != nil {
				continue // an older generation's bootstrap; the snapshot covers it
			}
			g, err := tgraph.FromRawEdges(rec.edges)
			if err != nil {
				// The original bootstrap failed identically and applied
				// nothing; the record is a no-op.
				continue
			}
			s.g = g
		case recAppend:
			cur := s.Seq()
			if rec.seqBefore < cur {
				continue // already inside the snapshot / an earlier WAL
			}
			if rec.seqBefore > cur || s.g == nil {
				return fmt.Errorf("store: wal %s record %d starts at seq %d but the store is at %d", path, i, rec.seqBefore, cur)
			}
			// An invalid batch failed identically before the crash and
			// changed nothing; replay tolerates it the same way.
			if _, err := s.g.Append(rec.edges); err != nil {
				continue
			}
		}
	}
	return nil
}

// Graph returns the recovered live graph, or nil when the store is empty
// (no bootstrap yet).
func (s *Store) Graph() *tgraph.Graph { return s.g }

// Seq returns the current mutation sequence, -1 when the store is empty.
// The value is what the next WAL record applies on top of.
func (s *Store) Seq() int64 {
	if s.g == nil {
		return -1
	}
	return s.g.MutSeq()
}

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.dir }

// Bootstrap creates the store's graph from an initial edge list, logging
// it to the WAL first. The store must be empty.
func (s *Store) Bootstrap(edges []tgraph.RawEdge) (*tgraph.Graph, error) {
	if s.g != nil {
		return nil, fmt.Errorf("store: already bootstrapped (seq %d)", s.Seq())
	}
	if s.wal == nil {
		return nil, errClosed
	}
	if err := s.wal.logBatch(recBootstrap, -1, edges); err != nil {
		return nil, fmt.Errorf("store: wal: %w", err)
	}
	g, err := tgraph.FromRawEdges(edges)
	if err != nil {
		return nil, err
	}
	s.g = g
	return g, nil
}

// Append logs the batch, then applies it to the graph. The WAL write comes
// first: a batch that cannot be made durable is never applied, and a batch
// the graph rejects is logged but rejected identically on replay.
//
// tkc:mutates
func (s *Store) Append(batch []tgraph.RawEdge) (tgraph.AppendStats, error) {
	if s.g == nil {
		return tgraph.AppendStats{}, fmt.Errorf("store: empty store: Bootstrap first")
	}
	if s.wal == nil {
		return tgraph.AppendStats{}, errClosed
	}
	if err := s.wal.logBatch(recAppend, s.g.MutSeq(), batch); err != nil {
		return tgraph.AppendStats{}, fmt.Errorf("store: wal: %w", err)
	}
	return s.g.Append(batch)
}

// Pending is a snapshot in progress: the cheap cut (freeze + WAL rotation)
// has happened, the expensive serialization has not. Commit it from any
// goroutine; appends proceed concurrently against the new WAL.
type Pending struct {
	s   *Store
	fz  *tgraph.Graph // frozen image being persisted
	seq int64
}

// BeginSnapshot cuts a snapshot point: it freezes the graph (COW, cheap),
// syncs and closes the active WAL and rotates a fresh one starting at the
// frozen sequence. Writer-side, like Append.
func (s *Store) BeginSnapshot() (*Pending, error) {
	if s.g == nil {
		return nil, fmt.Errorf("store: empty store: nothing to snapshot")
	}
	if s.wal == nil {
		return nil, errClosed
	}
	fz := s.g.Freeze()
	seq := fz.MutSeq()
	if err := s.wal.close(); err != nil {
		return nil, fmt.Errorf("store: rotating wal: %w", err)
	}
	w, err := createWAL(s.walPath(seq), seq)
	if err != nil {
		return nil, fmt.Errorf("store: rotating wal: %w", err)
	}
	s.wal = w
	return &Pending{s: s, fz: fz, seq: seq}, nil
}

// Frozen returns the immutable image the snapshot will persist.
func (p *Pending) Frozen() *tgraph.Graph { return p.fz }

// Seq returns the sequence number the snapshot captures.
func (p *Pending) Seq() int64 { return p.seq }

// Commit writes the segment snapshot (temp file, fsync, atomic rename) and
// then compacts: older snapshots, WALs made redundant by the new snapshot,
// and stale warm spills are deleted. On error the directory still recovers
// — the previous snapshot and the full WAL chain remain.
func (p *Pending) Commit() error {
	s := p.s
	path := s.snapshotPath(p.seq)
	if err := writeFileAtomic(path, func(f *os.File) error { return p.fz.WriteSegments(f) }); err != nil {
		return fmt.Errorf("store: writing snapshot %d: %w", p.seq, err)
	}
	s.snapSeq = p.seq
	s.compact(p.seq)
	return nil
}

// compact removes files the snapshot at seq made redundant: earlier
// snapshots, WALs whose whole record range precedes seq, and warm files of
// other sequences. Best-effort; leftovers are retried at the next compact.
func (s *Store) compact(seq int64) {
	snaps, wals, warms, err := s.scan()
	if err != nil {
		return
	}
	for _, sq := range snaps {
		if sq < seq {
			os.Remove(s.snapshotPath(sq))
		}
	}
	// A WAL with base b covers records up to the next WAL's base; it is
	// redundant once that entire range is at or below seq. Equivalent test:
	// delete every WAL whose SUCCESSOR's base is <= seq (the newest WAL is
	// always kept — it is the active one).
	for i := 0; i+1 < len(wals); i++ {
		if wals[i+1] <= seq {
			os.Remove(s.walPath(wals[i]))
		}
	}
	for _, sq := range warms {
		if sq != seq {
			os.Remove(s.warmPath(sq))
		}
	}
	syncDir(s.dir)
}

// errClosed is returned by mutating methods after Close.
var errClosed = fmt.Errorf("store: closed")

// Close syncs and closes the active WAL. The graph stays usable in memory;
// further mutations return an error.
func (s *Store) Close() error {
	if s.wal == nil {
		return nil
	}
	err := s.wal.close()
	s.wal = nil
	return err
}

// ---- file naming, scanning, atomic writes ----

func (s *Store) snapshotPath(seq int64) string {
	return filepath.Join(s.dir, fmt.Sprintf("snapshot-%d.tkcs", seq))
}

func (s *Store) walPath(base int64) string {
	return filepath.Join(s.dir, fmt.Sprintf("wal-%d.tkcw", base))
}

func (s *Store) warmPath(seq int64) string {
	return filepath.Join(s.dir, fmt.Sprintf("warm-%d.tkcc", seq))
}

// scan lists the directory's snapshots, WALs and warm files (each sorted
// ascending by sequence) and removes leftover temp files.
func (s *Store) scan() (snaps, wals, warms []int64, err error) {
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("store: %w", err)
	}
	for _, ent := range ents {
		name := ent.Name()
		if strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(s.dir, name))
			continue
		}
		if seq, ok := parseSeqName(name, "snapshot-", ".tkcs"); ok {
			snaps = append(snaps, seq)
		} else if seq, ok := parseSeqName(name, "wal-", ".tkcw"); ok {
			wals = append(wals, seq)
		} else if seq, ok := parseSeqName(name, "warm-", ".tkcc"); ok {
			warms = append(warms, seq)
		}
	}
	for _, v := range [][]int64{snaps, wals, warms} {
		sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	}
	return snaps, wals, warms, nil
}

func parseSeqName(name, prefix, suffix string) (int64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	seq, err := strconv.ParseInt(name[len(prefix):len(name)-len(suffix)], 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// writeFileAtomic writes via a temp file in the same directory, fsyncs,
// renames into place and fsyncs the directory.
func writeFileAtomic(path string, fill func(*os.File) error) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := fill(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}

// syncDir fsyncs a directory so renames/creates inside it are durable.
// Best-effort: some filesystems reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
