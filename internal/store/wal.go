package store

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"temporalkcore/internal/tgraph"
)

// The append WAL ("TKCW1" format) makes batches durable before they are
// applied: every Bootstrap/Append logs one CRC-framed record and flushes it
// to the OS before the graph mutates, so a crash at any point loses at most
// the batches whose frames never reached the file — never a half-applied
// one. Replay applies records through the exact same code paths the live
// writer used (Builder for bootstrap, Graph.Append for batches), which on
// an append-only graph reproduces the surviving prefix byte-for-byte,
// vertex ids, ranks and MutSeq included.
//
// File layout:
//
//	"TKCW1\n"  magic
//	baseSeq    int64 LE — the MutSeq the first record applies on top of
//	           (-1 when the store had no graph yet)
//	frames     [payloadLen uint32][crc32(payload) uint32][payload]...
//
// Frame payload:
//
//	kind      uint8  — recBootstrap | recAppend
//	seqBefore int64  — MutSeq the writer observed before applying
//	count     int64  — number of edges
//	edges     count × (u, v, t) int64 — raw labels and raw timestamps
//
// A torn tail — a frame whose length, CRC or body is incomplete — ends
// replay cleanly at the last whole frame; by log-before-apply the dropped
// suffix was never guaranteed durable.
const walMagic = "TKCW1\n"

const (
	recBootstrap = 1
	recAppend    = 2
)

// maxWALBatch bounds a single record's edge count (a plausibility check
// against corrupt length fields, far above any real batch).
const maxWALBatch = 1 << 26

// walRecord is one replayable unit.
type walRecord struct {
	kind      byte
	seqBefore int64
	edges     []tgraph.RawEdge
}

// walWriter appends frames to an open WAL file.
type walWriter struct {
	f    *os.File
	bw   *bufio.Writer
	path string
	buf  []byte // frame assembly buffer, reused
}

// createWAL creates (truncating) the WAL at path with the given base
// sequence and syncs the header so the file is well-formed on disk before
// any record lands.
func createWAL(path string, baseSeq int64) (*walWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	w := &walWriter{f: f, bw: bufio.NewWriterSize(f, 1<<16), path: path}
	if _, err := w.bw.WriteString(walMagic); err != nil {
		f.Close()
		return nil, err
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(baseSeq))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		f.Close()
		return nil, err
	}
	if err := w.sync(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// logBatch frames and flushes one record. The flush pushes the frame to
// the OS before the caller mutates the graph, so a killed process never
// leaves an applied-but-unlogged batch.
func (w *walWriter) logBatch(kind byte, seqBefore int64, edges []tgraph.RawEdge) error {
	need := 1 + 8 + 8 + 24*len(edges)
	if cap(w.buf) < need {
		w.buf = make([]byte, 0, need+need/2)
	}
	p := w.buf[:0]
	p = append(p, kind)
	p = binary.LittleEndian.AppendUint64(p, uint64(seqBefore))
	p = binary.LittleEndian.AppendUint64(p, uint64(len(edges)))
	for _, e := range edges {
		p = binary.LittleEndian.AppendUint64(p, uint64(e.U))
		p = binary.LittleEndian.AppendUint64(p, uint64(e.V))
		p = binary.LittleEndian.AppendUint64(p, uint64(e.Time))
	}
	w.buf = p
	var fh [8]byte
	binary.LittleEndian.PutUint32(fh[0:4], uint32(len(p)))
	binary.LittleEndian.PutUint32(fh[4:8], crc32.ChecksumIEEE(p))
	if _, err := w.bw.Write(fh[:]); err != nil {
		return err
	}
	if _, err := w.bw.Write(p); err != nil {
		return err
	}
	return w.bw.Flush()
}

// sync flushes buffered frames and fsyncs the file.
func (w *walWriter) sync() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	return w.f.Sync()
}

// close syncs and closes the file.
func (w *walWriter) close() error {
	err := w.sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// readWAL reads every whole record of the WAL at path. A torn tail (short
// frame or CRC mismatch) ends the read cleanly. So does a torn HEADER —
// a file shorter than magic + base seq whose bytes prefix-match the
// magic: createWAL fsyncs the header before returning, so a short header
// means the rotation died mid-create, no record was ever logged to this
// file, and no batch was acknowledged on top of it (rotation holds the
// writer lock). The file is an empty WAL. A present-but-wrong magic is
// an error — the file never was a WAL.
func readWAL(path string) (baseSeq int64, recs []walRecord, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)

	magic := make([]byte, len(walMagic))
	n, err := io.ReadFull(br, magic)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		if string(magic[:n]) == walMagic[:n] {
			return 0, nil, nil // torn header: died mid-create, nothing logged
		}
		return 0, nil, fmt.Errorf("store: %s is not a TKCW1 wal", path)
	}
	if err != nil {
		return 0, nil, fmt.Errorf("store: wal %s: reading magic: %w", path, err)
	}
	if string(magic) != walMagic {
		return 0, nil, fmt.Errorf("store: %s is not a TKCW1 wal", path)
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return 0, nil, nil // torn base seq: same mid-create death
		}
		return 0, nil, fmt.Errorf("store: wal %s: reading header: %w", path, err)
	}
	baseSeq = int64(binary.LittleEndian.Uint64(hdr[:]))

	for {
		var fh [8]byte
		if _, err := io.ReadFull(br, fh[:]); err != nil {
			return baseSeq, recs, nil // clean EOF or torn frame header
		}
		plen := binary.LittleEndian.Uint32(fh[0:4])
		want := binary.LittleEndian.Uint32(fh[4:8])
		if plen < 17 || (plen-17)%24 != 0 || (plen-17)/24 > maxWALBatch {
			return baseSeq, recs, nil // implausible length: torn/corrupt tail
		}
		p := make([]byte, plen)
		if _, err := io.ReadFull(br, p); err != nil {
			return baseSeq, recs, nil // torn body
		}
		if crc32.ChecksumIEEE(p) != want {
			return baseSeq, recs, nil // corrupt frame: treat as tail, stop
		}
		rec := walRecord{
			kind:      p[0],
			seqBefore: int64(binary.LittleEndian.Uint64(p[1:9])),
		}
		count := int(binary.LittleEndian.Uint64(p[9:17]))
		if count != int(plen-17)/24 || (rec.kind != recBootstrap && rec.kind != recAppend) {
			return baseSeq, recs, nil // frame inconsistent with its own length
		}
		rec.edges = make([]tgraph.RawEdge, count)
		off := 17
		for i := 0; i < count; i++ {
			rec.edges[i] = tgraph.RawEdge{
				U:    int64(binary.LittleEndian.Uint64(p[off : off+8])),
				V:    int64(binary.LittleEndian.Uint64(p[off+8 : off+16])),
				Time: int64(binary.LittleEndian.Uint64(p[off+16 : off+24])),
			}
			off += 24
		}
		recs = append(recs, rec)
	}
}
