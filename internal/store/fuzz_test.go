package store

import (
	"bytes"
	"testing"

	"temporalkcore/internal/tgraph"
)

// decodeFuzzBatches interprets fuzz bytes as a batched edge stream: three
// bytes per edge (endpoint labels mod 12, a time advance of 0-2 so batches
// mix duplicates, self loops and fresh edges), with the high bit of the
// third byte closing the current batch.
func decodeFuzzBatches(data []byte) [][]tgraph.RawEdge {
	var batches [][]tgraph.RawEdge
	var cur []tgraph.RawEdge
	t := int64(1)
	for i := 0; i+2 < len(data); i += 3 {
		t += int64(data[i+2] % 3)
		cur = append(cur, tgraph.RawEdge{
			U:    int64(data[i] % 12),
			V:    int64(data[i+1] % 12),
			Time: t,
		})
		if data[i+2]&0x80 != 0 {
			batches = append(batches, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		batches = append(batches, cur)
	}
	return batches
}

// FuzzWALReplay feeds arbitrary batched edge streams through the store —
// bootstrap, appends, sometimes a mid-stream snapshot — then closes, reopens
// and requires the recovered graph to be byte-identical (segment encoding
// and MutSeq) both to the pre-close live graph and to a one-shot quiesced
// rebuild of the same batches through plain tgraph calls. Batches the graph
// rejects (time-order violations) must be rejected identically on replay.
func FuzzWALReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 0x81, 3, 4, 1, 4, 5, 0x82, 5, 6, 2})
	f.Add([]byte{0, 0, 0, 1, 1, 1, 2, 3, 0x80, 2, 3, 0x80, 7, 8, 1})
	f.Add(bytes.Repeat([]byte{9, 4, 0x81, 6, 2, 2}, 40))

	f.Fuzz(func(t *testing.T, data []byte) {
		batches := decodeFuzzBatches(data)
		if len(batches) == 0 {
			return
		}
		dir := t.TempDir()
		st, err := Open(dir)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		if _, err := st.Bootstrap(batches[0]); err != nil {
			// All-self-loop bootstraps are invalid; nothing durable exists,
			// and a reopen must agree the store is still empty.
			st.Close()
			re, err := Open(dir)
			if err != nil {
				t.Fatalf("reopen after failed bootstrap: %v", err)
			}
			if re.Graph() != nil {
				t.Fatal("failed bootstrap left a recoverable graph behind")
			}
			re.Close()
			return
		}
		snapAt := -1
		if len(batches) > 2 {
			snapAt = int(data[0]) % (len(batches) - 1)
		}
		for i, b := range batches[1:] {
			st.Append(b) // rejections are part of the contract under test
			if i == snapAt {
				p, err := st.BeginSnapshot()
				if err != nil {
					t.Fatalf("snapshot: %v", err)
				}
				if err := p.Commit(); err != nil {
					t.Fatalf("commit: %v", err)
				}
			}
		}
		liveSeq := st.Seq()
		liveBytes := segBytes(t, st.Graph())
		if err := st.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}

		re, err := Open(dir)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer re.Close()
		if re.Seq() != liveSeq {
			t.Fatalf("recovered seq %d, live writer had %d", re.Seq(), liveSeq)
		}
		if !bytes.Equal(segBytes(t, re.Graph()), liveBytes) {
			t.Fatal("recovered graph differs from the pre-close live graph")
		}

		ref, err := tgraph.FromRawEdges(batches[0])
		if err != nil {
			t.Fatalf("reference bootstrap succeeded in store but not standalone: %v", err)
		}
		for _, b := range batches[1:] {
			ref.Append(b) // must reject exactly where the store's writer did
		}
		if ref.MutSeq() != liveSeq || !bytes.Equal(segBytes(t, ref), liveBytes) {
			t.Fatalf("one-shot rebuild diverged: seq %d vs %d", ref.MutSeq(), liveSeq)
		}
	})
}
