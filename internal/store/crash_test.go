package store

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCrashHelper is the victim process of the crash-recovery differential:
// it opens the store named by TKC_STORE_CRASH_DIR, bootstraps, and appends
// deterministic batches — taking a full snapshot (with compaction) every 20
// batches — until the parent SIGKILLs it. It is skipped in normal runs.
func TestCrashHelper(t *testing.T) {
	if os.Getenv("TKC_STORE_CRASH_HELPER") == "" {
		t.Skip("crash helper: only runs as a subprocess")
	}
	dir := os.Getenv("TKC_STORE_CRASH_DIR")
	st, err := Open(dir)
	if err != nil {
		t.Fatalf("helper open: %v", err)
	}
	if _, err := st.Bootstrap(bootEdges()); err != nil {
		t.Fatalf("helper bootstrap: %v", err)
	}
	for i := 0; i < 1<<22; i++ {
		if _, err := st.Append(batchAt(i)); err != nil {
			t.Fatalf("helper batch %d: %v", i, err)
		}
		if (i+1)%20 == 0 {
			p, err := st.BeginSnapshot()
			if err != nil {
				t.Fatalf("helper snapshot at %d: %v", i, err)
			}
			if err := p.Commit(); err != nil {
				t.Fatalf("helper commit at %d: %v", i, err)
			}
		}
	}
}

// TestCrashRecoveryDifferential SIGKILLs a writer mid-append (three rounds,
// killed at different lifecycle points: WAL-only, after the first snapshot,
// deep into repeated snapshot+compaction cycles), reopens the directory, and
// byte-matches the recovered graph against a quiesced rebuild of the same
// batch prefix through plain tgraph calls. Because every helper batch adds
// edges, the recovered sequence IS the number of surviving batches — the
// reference needs nothing from the store but that one number.
func TestCrashRecoveryDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess crash rounds are slow under -short")
	}
	waitFor := []func(dir string) bool{
		// Round 0: the WAL has a few whole records; likely pre-snapshot.
		func(dir string) bool { return fileSize(filepath.Join(dir, "wal--1.tkcw")) > 2<<10 },
		// Round 1: at least one snapshot committed.
		func(dir string) bool { return maxSnapshotSeq(dir) >= 20 },
		// Round 2: several snapshot+compaction cycles behind us.
		func(dir string) bool { return maxSnapshotSeq(dir) >= 100 },
	}
	for round, ready := range waitFor {
		dir := t.TempDir()
		cmd := exec.Command(os.Args[0], "-test.run=TestCrashHelper$", "-test.v")
		cmd.Env = append(os.Environ(),
			"TKC_STORE_CRASH_HELPER=1",
			"TKC_STORE_CRASH_DIR="+dir)
		if err := cmd.Start(); err != nil {
			t.Fatalf("round %d: starting helper: %v", round, err)
		}
		deadline := time.Now().Add(20 * time.Second)
		for !ready(dir) && time.Now().Before(deadline) {
			time.Sleep(2 * time.Millisecond)
		}
		if err := cmd.Process.Kill(); err != nil {
			t.Fatalf("round %d: SIGKILL: %v", round, err)
		}
		cmd.Wait()

		st, err := Open(dir)
		if err != nil {
			t.Fatalf("round %d: recovery open: %v", round, err)
		}
		seq := st.Seq()
		if seq < 1 {
			t.Fatalf("round %d: recovered seq %d, helper never got going", round, seq)
		}
		t.Logf("round %d: recovered %d batches", round, seq)
		requireSegEqual(t, st.Graph(), refGraph(t, int(seq)),
			"crash recovery round "+strings.Repeat("I", round+1))

		// The recovered store is live: it accepts the very next batch and
		// survives one more (clean) reopen.
		if _, err := st.Append(batchAt(int(seq))); err != nil {
			t.Fatalf("round %d: append after recovery: %v", round, err)
		}
		if err := st.Close(); err != nil {
			t.Fatalf("round %d: close: %v", round, err)
		}
		re, err := Open(dir)
		if err != nil {
			t.Fatalf("round %d: reopen: %v", round, err)
		}
		requireSegEqual(t, re.Graph(), refGraph(t, int(seq)+1), "post-crash generation")
		re.Close()
	}
}

func fileSize(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return fi.Size()
}

func maxSnapshotSeq(dir string) int64 {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return -1
	}
	best := int64(-1)
	for _, ent := range ents {
		if seq, ok := parseSeqName(ent.Name(), "snapshot-", ".tkcs"); ok && seq > best {
			best = seq
		}
	}
	return best
}
